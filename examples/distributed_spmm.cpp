/**
 * @file
 * Distributed SpMM, end to end: functionally executes Y = A * X across a
 * 1-D-partitioned cluster (verifying bit-exact results against a
 * single-node run) and reports the simulated end-to-end speedup with
 * per-node SPADE accelerators and NetSparse communication - the
 * experiment behind the paper's Figure 13.
 */

#include <cstdio>
#include <vector>

#include "baseline/baselines.hh"
#include "runtime/cluster.hh"
#include "runtime/end_to_end.hh"
#include "sim/rng.hh"
#include "sparse/generators.hh"
#include "sparse/kernels.hh"

using namespace netsparse;

namespace {

/** Deterministic pseudo-random dense operand. */
std::vector<float>
makeProperties(std::uint32_t count, std::uint32_t k)
{
    std::vector<float> x(static_cast<std::size_t>(count) * k);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(splitmix64(i) % 1000) / 1000.0f;
    return x;
}

} // namespace

int
main()
{
    const std::uint32_t k = 16;
    const std::uint32_t nodes = 32;

    Csr a = makeBenchmarkMatrix(MatrixKind::Queen, 0.25);
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    std::vector<float> x = makeProperties(a.cols, k);

    std::printf("SpMM: %u x %u, %zu nnz, K=%u, %u nodes\n", a.rows, a.cols,
                a.nnz(), k, nodes);

    // --- Functional distributed execution ---
    // Each node gathers the X rows its nonzeros reference (locally here;
    // the transport itself is validated by the simulator's end-to-end
    // checksums) and computes its own Y rows.
    std::vector<float> y_dist(static_cast<std::size_t>(a.rows) * k, 0.0f);
    for (NodeId node = 0; node < nodes; ++node) {
        for (std::uint32_t r = part.begin(node); r < part.end(node); ++r) {
            float *yr = y_dist.data() + static_cast<std::size_t>(r) * k;
            for (std::uint64_t i = a.rowPtr[r]; i < a.rowPtr[r + 1]; ++i) {
                const float *xc =
                    x.data() + static_cast<std::size_t>(a.colIdx[i]) * k;
                for (std::uint32_t j = 0; j < k; ++j)
                    yr[j] += xc[j];
            }
        }
    }
    std::vector<float> y_ref = spmm(a, x, k);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
        if (y_ref[i] != y_dist[i]) {
            std::fprintf(stderr, "MISMATCH at %zu\n", i);
            return 1;
        }
    }
    std::printf("functional check: distributed result matches "
                "single-node SpMM\n\n");

    // --- Simulated end-to-end timing ---
    ClusterConfig cfg = defaultClusterConfig(nodes);
    ClusterSim sim(cfg);
    GatherRunResult comm = sim.runGather(a, part, k);

    std::vector<Tick> per_node_comm(nodes);
    for (NodeId i = 0; i < nodes; ++i)
        per_node_comm[i] = comm.nodes[i].finishTick;

    EndToEndConfig e2e{spadeAccelerator(), 0.5};
    EndToEndResult r = composeEndToEnd(a, part, k, per_node_comm, e2e);
    Tick t1 = singleNodeTime(a, k, e2e.device);

    std::printf("single-node time        : %9.1f us\n",
                ticks::toNs(t1) / 1e3);
    std::printf("%u-node NetSparse time : %9.1f us  (speedup %.1fx)\n",
                nodes, ticks::toNs(r.totalTicks) / 1e3,
                double(t1) / r.totalTicks);
    std::printf("  tail comm/comp        : %.1f / %.1f us\n",
                ticks::toNs(r.tailCommTicks) / 1e3,
                ticks::toNs(r.tailCompTicks) / 1e3);
    std::printf("ideal (no-comm) speedup : %.1fx\n",
                double(t1) / r.idealTicks);

    // For contrast: the SUOpt software baseline on the same workload.
    BaselineParams bp;
    BaselineResult su = runSuOpt(a, part, k, bp);
    EndToEndResult rsu =
        composeEndToEnd(a, part, k, su.perNodeTicks, e2e);
    std::printf("SUOpt software speedup  : %.1fx\n",
                double(t1) / rsu.totalTicks);
    return 0;
}
