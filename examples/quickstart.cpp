/**
 * @file
 * Quickstart: simulate one distributed sparse gather on a small
 * NetSparse cluster and print what the hardware did.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "runtime/cluster.hh"
#include "sparse/generators.hh"

using namespace netsparse;

int
main()
{
    // A 16-node cluster, two racks of 8, paper-default hardware.
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 8;

    // A small power-law "web crawl" matrix (arabic-2005 style).
    WebCrawlParams wp;
    wp.rows = 1 << 14;
    wp.avgDeg = 16;
    Csr matrix = Csr::fromCoo(makeWebCrawl(wp));
    Partition1D part = Partition1D::equalRows(matrix.rows, cfg.numNodes);

    std::printf("matrix: %u x %u, %zu nonzeros\n", matrix.rows,
                matrix.cols, matrix.nnz());

    // Gather the input properties (K = 16 floats per property) that
    // every node's nonzeros need, through the full NetSparse stack:
    // RIG units -> Idx Filter -> concatenators -> switches -> caches.
    const std::uint32_t k = 16;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(matrix, part, k);

    const NodeRunStats &tail = r.tail();
    std::printf("\ncommunication finished in %.2f us (tail node %u)\n",
                ticks::toNs(r.commTicks) / 1000.0, r.tailNode);
    std::printf("  idxs processed      : %llu\n",
                (unsigned long long)tail.idxsProcessed);
    std::printf("  PRs issued          : %llu\n",
                (unsigned long long)tail.prsIssued);
    std::printf("  filtered + coalesced: %llu + %llu  (F+C rate %.0f%%)\n",
                (unsigned long long)tail.filtered,
                (unsigned long long)tail.coalesced, 100.0 * tail.fcRate());
    std::printf("  avg PRs per packet  : %.1f\n", r.avgPrsPerPacket);
    std::printf("  property-cache hits : %llu / %llu lookups (%.0f%%)\n",
                (unsigned long long)r.cacheHits,
                (unsigned long long)r.cacheLookups,
                100.0 * r.cacheHitRate());
    std::printf("  tail line util      : %.1f%%\n",
                100.0 * r.tailLineUtil);
    std::printf("  tail goodput        : %.1f%%\n", 100.0 * r.tailGoodput);
    return 0;
}
