/**
 * @file
 * telemetry_report: rank the bottlenecks of a simulated run.
 *
 * Consumes the netsparse-telemetry-v1 timeline written by
 * `netsparse_sim --telemetry-out` (and, optionally, the matching
 * `--stats-json` snapshot for the PR latency decomposition) and
 * prints saturated links and switches, phase boundaries, the dominant
 * lifecycle stage, and per-tenant slices on multi-tenant runs. With
 * `--spans SPANS.json` (the `--spans-out` document) it also prints
 * the critical-path breakdown of the tail exemplars and the makespan
 * finishers. See docs/observability.md for the report format.
 *
 * Usage:
 *   telemetry_report TELEMETRY.json [STATS.json] [--spans SPANS.json]
 *                    [--run N]
 *   telemetry_report --spans SPANS.json [--run N]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/critical_path.hh"
#include "analysis/telemetry_report.hh"

using namespace netsparse;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [TELEMETRY.json [STATS.json]] "
                 "[--spans SPANS.json] [--run N]\n",
                 argv0);
    std::exit(2);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    out = os.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string telemetry_path, stats_path, spans_path;
    std::size_t run_index = 0;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--run") {
            if (++i >= argc)
                usage(argv[0]);
            run_index = static_cast<std::size_t>(std::atoi(argv[i]));
        } else if (a == "--spans") {
            if (++i >= argc)
                usage(argv[0]);
            spans_path = argv[i];
        } else if (telemetry_path.empty()) {
            telemetry_path = a;
        } else if (stats_path.empty()) {
            stats_path = a;
        } else {
            usage(argv[0]);
        }
    }
    if (telemetry_path.empty() && spans_path.empty())
        usage(argv[0]);

    try {
        if (!telemetry_path.empty()) {
            std::string text;
            if (!readFile(telemetry_path, text)) {
                std::fprintf(stderr, "cannot read %s\n",
                             telemetry_path.c_str());
                return 1;
            }
            jsonlite::Value telemetry = jsonlite::parse(text);
            jsonlite::Value stats;
            bool have_stats = false;
            if (!stats_path.empty()) {
                std::string stext;
                if (!readFile(stats_path, stext)) {
                    std::fprintf(stderr, "cannot read %s\n",
                                 stats_path.c_str());
                    return 1;
                }
                stats = jsonlite::parse(stext);
                have_stats = true;
            }
            TelemetryReport report = analyzeTelemetry(
                telemetry, have_stats ? &stats : nullptr, run_index);
            printTelemetryReport(report, std::cout);
        }
        if (!spans_path.empty()) {
            std::string stext;
            if (!readFile(spans_path, stext)) {
                std::fprintf(stderr, "cannot read %s\n",
                             spans_path.c_str());
                return 1;
            }
            jsonlite::Value spans = jsonlite::parse(stext);
            if (!telemetry_path.empty())
                std::cout << '\n';
            SpanReport sreport = analyzeSpans(spans, run_index);
            printSpanReport(sreport, std::cout);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "telemetry_report: %s\n", e.what());
        return 1;
    }
    return 0;
}
