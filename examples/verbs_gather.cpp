/**
 * @file
 * Programming-model demo: drive a Remote Indexed Gather through the
 * verbs-style host API (Section 5.4) on a hand-assembled two-node
 * "cluster" - two NetSparse SNICs joined by one switch - posting
 * IBV_WR_RIG work requests and polling the completion queue.
 */

#include <cstdio>
#include <vector>

#include "host/verbs.hh"
#include "net/switch.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "snic/snic.hh"

using namespace netsparse;

int
main()
{
    EventQueue eq;
    ProtocolParams proto;

    // Two nodes: node 0 gathers, node 1 serves. Properties with an even
    // idx live on node 0, odd on node 1.
    auto owner_of = [](PropIdx idx) {
        return static_cast<NodeId>(idx % 2);
    };
    const std::uint64_t num_props = 4096;

    SnicConfig scfg;
    scfg.proto = proto;
    scfg.concat.proto = proto;
    scfg.concat.delay = 200 * ticks::ns;
    Snic snic0(eq, scfg, 0, owner_of, num_props, "snic0");
    Snic snic1(eq, scfg, 1, owner_of, num_props, "snic1");

    SwitchConfig swcfg;
    swcfg.proto = proto;
    Switch sw(eq, swcfg, 0, "tor");

    LinkConfig lc; // 400 Gbps, 450 ns
    Link down0(eq, lc, proto, &snic0, 0, "tor->n0");
    Link down1(eq, lc, proto, &snic1, 0, "tor->n1");
    Link up0(eq, lc, proto, &sw, 0, "n0->tor");
    Link up1(eq, lc, proto, &sw, 1, "n1->tor");
    sw.attachPort(0, &down0, true);
    sw.attachPort(1, &down1, true);
    sw.setRouteFn([](NodeId dest) { return dest; });
    snic0.attachEgress(&up0);
    snic1.attachEgress(&up1);

    // The application's idx list: every odd property, some repeatedly.
    std::vector<std::uint32_t> idxs;
    for (std::uint32_t i = 0; i < 2000; ++i)
        idxs.push_back(1 + 2 * (i % 700));

    RigQueuePair qp(eq, snic0);
    IbvSendWr wr;
    wr.wrId = 42;
    wr.opcode = IbvWrOpcode::Rig;
    wr.rig.idxList = idxs.data();
    wr.rig.numIdxs = idxs.size();
    wr.rig.propBytes = 64; // K = 16

    if (!qp.postSend(wr)) {
        std::fprintf(stderr, "no free RIG unit\n");
        return 1;
    }
    std::printf("posted IBV_WR_RIG: %zu idxs, 64 B properties\n",
                idxs.size());

    eq.run();

    IbvWc wc;
    if (!qp.pollCq(wc) || wc.status != IbvWc::Status::Success) {
        std::fprintf(stderr, "gather failed\n");
        return 1;
    }
    RigClientStats st = snic0.aggregateClientStats();
    std::printf("completion for wr %llu after %.2f us\n",
                (unsigned long long)wc.wrId, ticks::toNs(eq.now()) / 1e3);
    std::printf("  PRs issued %llu, filtered %llu, coalesced %llu "
                "(700 unique idxs)\n",
                (unsigned long long)st.prsIssued,
                (unsigned long long)st.filtered,
                (unsigned long long)st.coalesced);
    return 0;
}
