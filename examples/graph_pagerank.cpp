/**
 * @file
 * Domain example: PageRank over a web-crawl graph on a NetSparse
 * cluster. PageRank is repeated SpMV - exactly the multi-iteration
 * sparse kernel of the paper's Section 2.1: each iteration's output
 * property array (the rank vector) becomes the next iteration's input,
 * and every iteration re-gathers the remote ranks its edges reference.
 *
 * The example runs the distributed executor with hardware simulation
 * on, then reports both the numeric result (top-ranked pages) and what
 * the cluster did per iteration.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "runtime/distributed_kernels.hh"
#include "sparse/generators.hh"

using namespace netsparse;

int
main()
{
    const std::uint32_t nodes = 16;
    const std::uint32_t iterations = 5;
    const float damping = 0.85f;

    // A small uk-2002-style web crawl; A^T so that rank flows along
    // in-links (column j of A^T = out-links of page j).
    WebCrawlParams wp;
    wp.rows = 1 << 14;
    wp.avgDeg = 12;
    Csr graph = Csr::fromCoo(makeWebCrawl(wp)).transposed();

    // Column-stochastic normalization: divide each column by its
    // out-degree so every page distributes one unit of rank.
    std::vector<float> out_degree(graph.cols, 0.0f);
    for (auto c : graph.colIdx)
        out_degree[c] += 1.0f;
    graph.vals.resize(graph.nnz());
    for (std::size_t i = 0; i < graph.nnz(); ++i)
        graph.vals[i] = 1.0f / std::max(out_degree[graph.colIdx[i]], 1.0f);

    Partition1D part = Partition1D::equalRows(graph.rows, nodes);
    ClusterConfig cfg = defaultClusterConfig(nodes);

    std::printf("PageRank: %u pages, %zu links, %u nodes, %u "
                "iterations\n\n",
                graph.rows, graph.nnz(), nodes, iterations);

    // Iterate r <- d * A r + (1 - d)/N by hand around the distributed
    // SpMV so the damping stays outside the kernel.
    std::vector<float> rank(graph.rows, 1.0f / graph.rows);
    Tick total_comm = 0;
    for (std::uint32_t it = 0; it < iterations; ++it) {
        DistributedKernelResult step =
            distributedSpmv(cfg, graph, part, rank);
        for (std::uint32_t v = 0; v < graph.rows; ++v) {
            rank[v] = damping * step.output[v] +
                      (1.0f - damping) / graph.rows;
        }
        const GatherRunResult &comm = step.iterations.front();
        total_comm += comm.commTicks;
        std::printf("iteration %u: comm %7.1f us, tail F+C %3.0f%%, "
                    "PRs/pkt %4.1f, cache %3.0f%%\n",
                    it + 1, ticks::toNs(comm.commTicks) / 1e3,
                    100.0 * comm.tail().fcRate(), comm.avgPrsPerPacket,
                    100.0 * comm.cacheHitRate());
    }

    std::vector<std::uint32_t> order(graph.rows);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          return rank[a] > rank[b];
                      });
    std::printf("\ntop pages: ");
    for (int i = 0; i < 5; ++i)
        std::printf("%u(%.5f) ", order[i], rank[order[i]]);
    std::printf("\ntotal gather time: %.1f us over %u iterations\n",
                ticks::toNs(total_comm) / 1e3, iterations);
    return 0;
}
