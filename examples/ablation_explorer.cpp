/**
 * @file
 * Interactive ablation explorer: pick a matrix, a property size and a
 * cluster size on the command line and see how each NetSparse mechanism
 * contributes (the Table 8 methodology, on demand).
 *
 * Usage:
 *   ablation_explorer [matrix] [K] [nodes] [scale]
 *     matrix : arabic | europe | queen | stokes | uk   (default arabic)
 *     K      : property elements, 1..128               (default 16)
 *     nodes  : cluster size                            (default 32)
 *     scale  : matrix scale factor                     (default 0.25)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/baselines.hh"
#include "runtime/cluster.hh"
#include "sparse/generators.hh"

using namespace netsparse;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "arabic";
    std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 16;
    std::uint32_t nodes = argc > 3 ? std::atoi(argv[3]) : 32;
    double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

    MatrixKind kind = MatrixKind::Arabic;
    bool found = false;
    for (auto cand : allMatrixKinds()) {
        if (name == matrixName(cand)) {
            kind = cand;
            found = true;
        }
    }
    if (!found || k == 0 || k > 128 || nodes < 2) {
        std::fprintf(stderr,
                     "usage: %s [arabic|europe|queen|stokes|uk] [K] "
                     "[nodes] [scale]\n",
                     argv[0]);
        return 1;
    }

    Csr m = makeBenchmarkMatrix(kind, scale);
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    std::printf("%s: %u rows, %zu nnz, K=%u, %u nodes\n\n", name.c_str(),
                m.rows, m.nnz(), k, nodes);

    BaselineParams bp;
    BaselineResult su = runSuOpt(m, part, k, bp);
    std::printf("%-10s %10s %10s %8s %8s %8s\n", "config", "time(us)",
                "spd vs SU", "F+C", "PR/pkt", "cache");

    std::printf("%-10s %10.1f %10s %8s %8s %8s\n", "SUOpt",
                ticks::toNs(su.commTicks) / 1e3, "1.0x", "-", "-", "-");

    for (std::uint32_t stage = 0; stage <= 4; ++stage) {
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.features = FeatureSet::ablationStage(stage);
        ClusterSim sim(cfg);
        GatherRunResult r = sim.runGather(m, part, k);
        char fc[32], ppp[32], cache[32];
        std::snprintf(fc, sizeof fc, "%.0f%%", 100.0 * r.tail().fcRate());
        std::snprintf(ppp, sizeof ppp, "%.1f", r.avgPrsPerPacket);
        std::snprintf(cache, sizeof cache, "%.0f%%",
                      100.0 * r.cacheHitRate());
        std::printf("%-10s %10.1f %9.1fx %8s %8s %8s\n",
                    FeatureSet::stageName(stage),
                    ticks::toNs(r.commTicks) / 1e3,
                    double(su.commTicks) / r.commTicks, fc, ppp, cache);
    }
    return 0;
}
