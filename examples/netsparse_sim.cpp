/**
 * @file
 * netsparse_sim: the command-line front end to the cluster simulator.
 *
 * Runs one distributed gather with full control over the workload and
 * the hardware configuration, and prints either a human summary or the
 * complete stats registry. This is the tool a user points at their own
 * Matrix Market file to see what NetSparse would do for their workload.
 *
 * Usage:
 *   netsparse_sim [options]
 *     --matrix NAME|FILE   arabic|europe|queen|stokes|uk or a .mtx path
 *                          (default arabic)
 *     --scale S            generator scale factor        (default 1.0)
 *     --nodes N            cluster size                  (default 128)
 *     --k K                property elements, 1..128     (default 16)
 *     --stage S            ablation stage 0..4           (default full)
 *     --topology T         leafspine|hyperx|dragonfly
 *     --batch B            RIG batch size (0 = auto)
 *     --adaptive           adaptive batch policy (Section 9.4)
 *     --virtual-cqs        virtualized concatenation queues (Section 7.2)
 *     --no-cache           disable the Property Cache
 *     --cache-bytes B      Property Cache capacity per ToR
 *     --partition P        rows|nnz                      (default rows)
 *     --stream             stream-generate the matrix directly into
 *                          per-node partitions (named matrices only;
 *                          no global COO/CSR is ever held - the
 *                          paper-scale path, see docs/scaling.md)
 *     --batched-events     coarser event batching (delivery trains +
 *                          batched server reads); the paper-scale
 *                          preset. Figure reproductions leave it off.
 *     --fidelity M         network fidelity: exact (default), hybrid
 *                          (analytical fast-forward of uncongested
 *                          links, packet-exact under congestion), or
 *                          flow (always analytical; validation only).
 *                          See docs/performance.md.
 *     --memory-stats       export per-shard arena accounting under
 *                          cluster.memory.* in the stats registry
 *                          (host diagnostic; off by default)
 *     --faults SPEC        fault injection, e.g.
 *                          drop:1e-4,corrupt:1e-5,down:1e-6,downUs:5,
 *                          degrade:1e-5,degradeUs:20,degradeFactor:0.25,
 *                          seed:1 (see docs/resilience.md)
 *     --jobs J             concurrent gather jobs (tenants) on one
 *                          fabric (default 1; see docs/observability.md
 *                          for the cluster.tenant<t>.* metrics)
 *     --background SPEC    synthetic background traffic
 *                          pattern:load[:packets[:bytes]], pattern in
 *                          incast|alltoall|storage, load a fraction of
 *                          the NIC line rate (e.g. incast:0.5:2000)
 *     --switch-queue Q     fifo (default) or fq (per-tenant
 *                          deficit-round-robin fair queueing at switch
 *                          output ports)
 *     --cache-mode M       shared (default) or partitioned per-tenant
 *                          ToR Property Cache slices
 *     --shards N           parallel-engine shards; 0 consults
 *                          NETSPARSE_SIM_SHARDS             (default 0)
 *     --stats              dump the full stats registry
 *     --stats-json FILE    write a JSON stats snapshot (the
 *                          docs/observability.md metrics contract)
 *     --trace-out FILE     capture a Chrome-trace/Perfetto event trace
 *     --telemetry-out FILE write the interval-telemetry timeline
 *                          (netsparse-telemetry-v1; enables the PR
 *                          latency lifecycle stats as a side effect)
 *     --telemetry-interval US
 *                          sampling interval in simulated microseconds
 *                          (default 10)
 *     --spans-out FILE     write per-PR causal span trees
 *                          (netsparse-spans-v1; defaults to 1/64
 *                          sampling when no span knob is given)
 *     --span-sample N      trace 1 in N issued PRs (deterministic
 *                          hash sampling; 0 disables sampling)
 *     --span-tail-keep K   flight recorder: keep the K slowest spans
 *                          of the run (records all PRs, prunes
 *                          retroactively)
 *     --span-tail-threshold-us US
 *                          also keep every span slower than US
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "runtime/cluster.hh"
#include "runtime/job_scheduler.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sim/trace.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"
#include "sparse/stream_gen.hh"

using namespace netsparse;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--matrix NAME|FILE] [--scale S] [--nodes N]"
                 " [--k K]\n"
                 "  [--stage 0..4] [--topology leafspine|hyperx|"
                 "dragonfly]\n"
                 "  [--batch B] [--adaptive] [--virtual-cqs] "
                 "[--no-cache]\n"
                 "  [--cache-bytes B] [--partition rows|nnz] "
                 "[--shards N] [--stats]\n"
                 "  [--stream] [--batched-events] "
                 "[--fidelity exact|hybrid|flow]\n"
                 "  [--memory-stats]\n"
                 "  [--faults drop:R,corrupt:R,down:R,downUs:T,"
                 "degrade:R,degradeUs:T,\n"
                 "            degradeFactor:F,seed:S]\n"
                 "  [--jobs J] [--background pattern:load[:packets"
                 "[:bytes]]]\n"
                 "  [--switch-queue fifo|fq] "
                 "[--cache-mode shared|partitioned]\n"
                 "  [--stats-json FILE] [--trace-out FILE] "
                 "[--telemetry-out FILE]\n"
                 "  [--telemetry-interval US]\n"
                 "  [--spans-out FILE] [--span-sample N] "
                 "[--span-tail-keep K]\n"
                 "  [--span-tail-threshold-us US]\n",
                 argv0);
    std::exit(2);
}

/**
 * Checked unsigned-integer parse for CLI flags. std::atoi silently
 * returns 0 on garbage and accepts negatives, which downstream code
 * then treats as valid configuration; here anything that is not a
 * plain non-negative integer fails loudly, naming the flag.
 */
std::uint64_t
parseUint(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr) {
        std::fprintf(stderr,
                     "%s: expected a non-negative integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string matrix_arg = "arabic";
    double scale = 1.0;
    std::uint32_t nodes = 128;
    std::uint32_t k = 16;
    int stage = -1;
    std::string topology = "leafspine";
    std::uint32_t batch = 0;
    bool adaptive = false, virtual_cqs = false, no_cache = false;
    std::uint64_t cache_bytes = 0;
    std::string partition = "rows";
    std::uint32_t shards = 0;
    bool stream = false, batched_events = false;
    FidelityMode fidelity = FidelityMode::Exact;
    bool memory_stats = false;
    bool dump_stats = false;
    std::string stats_json, trace_out, faults_spec, telemetry_out;
    double telemetry_interval_us = 10.0;
    std::string spans_out;
    std::uint64_t span_sample = 0, span_tail_keep = 0;
    double span_tail_threshold_us = 0.0;
    bool span_knob = false;
    std::uint32_t num_jobs = 1;
    std::string background_spec, switch_queue = "fifo",
                cache_mode = "shared";

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (a == "--matrix")
            matrix_arg = next();
        else if (a == "--scale")
            scale = std::atof(next());
        else if (a == "--nodes")
            nodes = static_cast<std::uint32_t>(
                parseUint("--nodes", next()));
        else if (a == "--k")
            k = static_cast<std::uint32_t>(parseUint("--k", next()));
        else if (a == "--stage")
            stage = static_cast<int>(parseUint("--stage", next()));
        else if (a == "--topology")
            topology = next();
        else if (a == "--batch")
            batch = static_cast<std::uint32_t>(
                parseUint("--batch", next()));
        else if (a == "--adaptive")
            adaptive = true;
        else if (a == "--virtual-cqs")
            virtual_cqs = true;
        else if (a == "--no-cache")
            no_cache = true;
        else if (a == "--cache-bytes")
            cache_bytes = parseUint("--cache-bytes", next());
        else if (a == "--partition")
            partition = next();
        else if (a == "--shards")
            shards = static_cast<std::uint32_t>(
                parseUint("--shards", next()));
        else if (a == "--stream")
            stream = true;
        else if (a == "--batched-events")
            batched_events = true;
        else if (a == "--fidelity") {
            if (!parseFidelity(next(), fidelity))
                usage(argv[0]);
        } else if (a.rfind("--fidelity=", 0) == 0) {
            if (!parseFidelity(a.substr(11), fidelity))
                usage(argv[0]);
        } else if (a == "--memory-stats")
            memory_stats = true;
        else if (a == "--faults")
            faults_spec = next();
        else if (a.rfind("--faults=", 0) == 0)
            faults_spec = a.substr(9);
        else if (a == "--stats")
            dump_stats = true;
        else if (a == "--stats-json")
            stats_json = next();
        else if (a == "--trace-out")
            trace_out = next();
        else if (a == "--telemetry-out")
            telemetry_out = next();
        else if (a == "--telemetry-interval")
            telemetry_interval_us = std::atof(next());
        else if (a == "--spans-out")
            spans_out = next();
        else if (a == "--span-sample") {
            span_sample = parseUint("--span-sample", next());
            span_knob = true;
        } else if (a == "--span-tail-keep") {
            span_tail_keep = parseUint("--span-tail-keep", next());
            span_knob = true;
        } else if (a == "--span-tail-threshold-us") {
            span_tail_threshold_us = std::atof(next());
            span_knob = true;
        }
        else if (a == "--jobs")
            num_jobs = static_cast<std::uint32_t>(
                parseUint("--jobs", next()));
        else if (a == "--background")
            background_spec = next();
        else if (a.rfind("--background=", 0) == 0)
            background_spec = a.substr(13);
        else if (a == "--switch-queue")
            switch_queue = next();
        else if (a == "--cache-mode")
            cache_mode = next();
        else
            usage(argv[0]);
    }
    if (num_jobs < 1)
        usage(argv[0]);
    if (switch_queue != "fifo" && switch_queue != "fq")
        usage(argv[0]);
    if (cache_mode != "shared" && cache_mode != "partitioned")
        usage(argv[0]);
    BackgroundTrafficConfig bg;
    if (!background_spec.empty() &&
        !BackgroundTrafficConfig::parse(background_spec, bg)) {
        std::fprintf(stderr,
                     "--background: expected pattern:load[:packets"
                     "[:bytes]] with pattern in incast|alltoall|"
                     "storage, got '%s'\n",
                     background_spec.c_str());
        return 2;
    }
    if (k < 1 || k > 128 || nodes < 2)
        usage(argv[0]);

    // --- Workload ---
    Csr m;
    GatherWorkload work;
    std::uint64_t mat_rows = 0, mat_cols = 0, mat_nnz = 0;
    bool named = false;
    MatrixKind named_kind = MatrixKind::Arabic;
    for (auto kind : allMatrixKinds()) {
        if (matrix_arg == matrixName(kind)) {
            named = true;
            named_kind = kind;
        }
    }
    if (stream) {
        if (!named) {
            std::fprintf(stderr,
                         "--stream generates; it cannot read a .mtx "
                         "file\n");
            return 1;
        }
        if (partition == "nnz") {
            std::fprintf(stderr,
                         "--stream builds equal-rows partitions\n");
            return 1;
        }
        PartitionedMatrix pm =
            buildPartitionedBenchmark(named_kind, scale, nodes);
        mat_rows = pm.rows;
        mat_cols = pm.cols;
        mat_nnz = pm.nnz;
        work.numIdxs = pm.cols;
        work.part = pm.part;
        work.streams = pm.takeStreams();
    } else {
        if (named) {
            m = makeBenchmarkMatrix(named_kind, scale);
        } else {
            Coo coo = readMatrixMarketFile(matrix_arg);
            if (coo.rows != coo.cols) {
                std::fprintf(stderr,
                             "distributed gathers need a square "
                             "matrix\n");
                return 1;
            }
            m = Csr::fromCoo(coo);
        }
        mat_rows = m.rows;
        mat_cols = m.cols;
        mat_nnz = m.nnz();
    }
    Partition1D part;
    if (!stream)
        part = partition == "nnz" ? Partition1D::equalNnz(m, nodes)
                                  : Partition1D::equalRows(m.rows, nodes);

    // --- Cluster ---
    ClusterConfig cfg = defaultClusterConfig(nodes);
    if (stage >= 0)
        cfg.features = FeatureSet::ablationStage(
            static_cast<std::uint32_t>(stage));
    if (topology == "hyperx")
        cfg.topology = TopologyKind::HyperX;
    else if (topology == "dragonfly")
        cfg.topology = TopologyKind::Dragonfly;
    else if (topology != "leafspine")
        usage(argv[0]);
    cfg.host.batchSize = batch;
    if (adaptive) {
        cfg.host.policy = BatchPolicy::Adaptive;
        if (batch == 0)
            cfg.host.batchSize = 4096;
    }
    cfg.virtualizedCqs = virtual_cqs;
    if (no_cache) {
        cfg.features.switchCache = false;
    }
    if (cache_bytes)
        cfg.propertyCacheBytes = cache_bytes;
    cfg.simShards = shards;
    cfg.eventBatching = batched_events;
    cfg.fidelity = fidelity;
    cfg.memoryStats = memory_stats;
    cfg.fairQueue = switch_queue == "fq";
    cfg.tenantCachePartitioned = cache_mode == "partitioned";
    if (!faults_spec.empty())
        cfg.faults = FaultConfig::parse(faults_spec);
    cfg.telemetryInterval = static_cast<Tick>(
        telemetry_interval_us * static_cast<double>(ticks::us));
    if (!telemetry_out.empty() && cfg.telemetryInterval == 0) {
        std::fprintf(stderr,
                     "--telemetry-out needs a positive "
                     "--telemetry-interval\n");
        return 1;
    }
    if (span_knob && spans_out.empty()) {
        std::fprintf(stderr,
                     "--span-sample/--span-tail-* need --spans-out\n");
        return 1;
    }
    if (!spans_out.empty()) {
        cfg.spans.sampleEvery = static_cast<std::uint32_t>(span_sample);
        cfg.spans.tailKeep = static_cast<std::uint32_t>(span_tail_keep);
        cfg.spans.tailThreshold = static_cast<Tick>(
            span_tail_threshold_us * static_cast<double>(ticks::us));
        // A bare --spans-out means "give me a representative sample".
        if (!span_knob)
            cfg.spans.sampleEvery = 64;
        if (!cfg.spans.enabled()) {
            std::fprintf(stderr,
                         "--spans-out: all span knobs are zero; nothing "
                         "would be recorded\n");
            return 1;
        }
    }

    std::printf("netsparse_sim: %s (%llu x %llu, %llu nnz%s), %u nodes, "
                "K=%u, %s\n",
                matrix_arg.c_str(), (unsigned long long)mat_rows,
                (unsigned long long)mat_cols, (unsigned long long)mat_nnz,
                stream ? ", streamed" : "", nodes, k, topology.c_str());

    // Every output path is probe-opened before the simulation starts:
    // a path into a missing directory fails here with a clear message
    // instead of wasting the whole run on a silent empty result.
    if (!stats_json.empty() &&
        !StatsExport::instance().setOutputPath(stats_json)) {
        std::fprintf(stderr, "cannot open --stats-json output %s\n",
                     stats_json.c_str());
        return 1;
    }
    if (!trace_out.empty() && !TraceWriter::instance().open(trace_out)) {
        std::fprintf(stderr, "cannot open --trace-out output %s\n",
                     trace_out.c_str());
        return 1;
    }
    if (!telemetry_out.empty() &&
        !TelemetrySink::instance().setOutputPath(telemetry_out)) {
        std::fprintf(stderr, "cannot open --telemetry-out output %s\n",
                     telemetry_out.c_str());
        return 1;
    }
    if (!spans_out.empty() &&
        !SpanSink::instance().setOutputPath(spans_out)) {
        std::fprintf(stderr, "cannot open --spans-out output %s\n",
                     spans_out.c_str());
        return 1;
    }

    // Multi-tenant runs (several jobs, or one job sharing the fabric
    // with background traffic) go through the scheduler; its stats
    // document is the cluster.tenant<t>.* schema, so the flat --stats
    // dump of legacy cluster keys does not apply.
    if (num_jobs > 1 || bg.enabled()) {
        if (dump_stats) {
            std::fprintf(stderr,
                         "--stats dumps the single-job document; use "
                         "--stats-json with --jobs/--background\n");
            return 2;
        }
        auto make_work = [&]() {
            GatherWorkload w;
            if (stream) {
                PartitionedMatrix pm =
                    buildPartitionedBenchmark(named_kind, scale, nodes);
                w.numIdxs = pm.cols;
                w.part = pm.part;
                w.streams = pm.takeStreams();
                return w;
            }
            w.numIdxs = m.cols;
            w.part = part;
            w.streams.reserve(nodes);
            for (NodeId nid = 0; nid < nodes; ++nid)
                w.streams.emplace_back(
                    m.colIdx.begin() + m.rowPtr[part.begin(nid)],
                    m.colIdx.begin() + m.rowPtr[part.end(nid)]);
            return w;
        };
        std::vector<JobSpec> specs(num_jobs);
        for (std::uint32_t j = 0; j < num_jobs; ++j) {
            specs[j].work = stream && j == 0 ? std::move(work)
                                             : make_work();
            specs[j].k = k;
            specs[j].name = "job" + std::to_string(j);
        }
        JobScheduler sched(cfg);
        MultiJobResult mr = sched.run(std::move(specs), bg);

        TraceWriter::instance().close();
        StatsExport::instance().writeFile();
        TelemetrySink::instance().writeFile();
        SpanSink::instance().writeFile();

        std::printf("\nmakespan           : %10.2f us  (%u jobs, %s "
                    "queues, %s cache)\n",
                    ticks::toNs(mr.makespanTicks) / 1e3, num_jobs,
                    cfg.fairQueue ? "fq" : "fifo",
                    cfg.tenantCachePartitioned ? "partitioned"
                                               : "shared");
        for (std::uint32_t j = 0; j < mr.jobs.size(); ++j) {
            const GatherRunResult &jr = mr.jobs[j];
            std::printf("  job%u             : %10.2f us  (tail node "
                        "%u), goodput %.1f%%, %llu PRs in-switch\n",
                        j, ticks::toNs(jr.commTicks) / 1e3, jr.tailNode,
                        100 * jr.tailGoodput,
                        (unsigned long long)jr.prsServedByCache);
        }
        if (bg.enabled())
            std::printf("background         : %10llu packets injected "
                        "(%llu delivered, %.1f MB)\n",
                        (unsigned long long)mr.backgroundPackets,
                        (unsigned long long)mr.backgroundDelivered,
                        static_cast<double>(mr.backgroundDeliveredBytes) /
                            1e6);
        if (mr.simShards > 1)
            std::printf("parallel engine    : %10u shards, %llu epochs, "
                        "lookahead %.0f ns\n",
                        mr.simShards, (unsigned long long)mr.epochs,
                        ticks::toNs(mr.lookaheadTicks));
        return 0;
    }

    ClusterSim sim(cfg);
    GatherRunResult r = stream ? sim.runGather(std::move(work), k)
                               : sim.runGather(m, part, k);

    TraceWriter::instance().close();
    StatsExport::instance().writeFile();
    TelemetrySink::instance().writeFile();
    SpanSink::instance().writeFile();

    if (dump_stats) {
        StatRegistry reg;
        r.exportStats(reg);
        reg.dump(std::cout);
        return 0;
    }

    const NodeRunStats &tail = r.tail();
    std::printf("\ncommunication time : %10.2f us  (tail node %u)\n",
                ticks::toNs(r.commTicks) / 1e3, r.tailNode);
    std::printf("PRs issued         : %10llu  (F+C rate %.0f%%)\n",
                (unsigned long long)(tail.prsIssued), 100 * tail.fcRate());
    std::printf("PRs per packet     : %10.1f\n", r.avgPrsPerPacket);
    std::printf("cache hit rate     : %9.0f%%  (%llu PRs served in-"
                "switch)\n",
                100 * r.cacheHitRate(),
                (unsigned long long)r.prsServedByCache);
    std::printf("tail line util     : %9.1f%%\n", 100 * r.tailLineUtil);
    std::printf("tail goodput       : %9.1f%%\n", 100 * r.tailGoodput);
    if (r.simShards > 1) {
        std::printf("parallel engine    : %10u shards, %llu epochs, "
                    "lookahead %.0f ns\n",
                    r.simShards, (unsigned long long)r.epochs,
                    ticks::toNs(r.lookaheadTicks));
    }
    if (r.fidelity != FidelityMode::Exact) {
        std::printf("fidelity           : %10s  (%llu flow packets, "
                    "%llu demotions)\n",
                    fidelityName(r.fidelity),
                    (unsigned long long)r.flowPackets,
                    (unsigned long long)r.flowDemotions);
    }
    if (r.faultsEnabled) {
        auto sum = [&r](auto field) { return r.sumNodes(field); };
        std::printf("faults injected    : %10llu drops (%llu link-down), "
                    "%llu corrupt PRs\n",
                    (unsigned long long)r.packetsDropped,
                    (unsigned long long)r.linkDownDrops,
                    (unsigned long long)r.corruptedPrs);
        std::printf("recovery           : %10llu retransmits, %llu "
                    "nacks, %llu command retries, %llu permanent "
                    "failures\n",
                    (unsigned long long)sum([](const NodeRunStats &n) {
                        return n.retransmits;
                    }),
                    (unsigned long long)sum([](const NodeRunStats &n) {
                        return n.nacks;
                    }),
                    (unsigned long long)sum([](const NodeRunStats &n) {
                        return n.commandRetries;
                    }),
                    (unsigned long long)sum([](const NodeRunStats &n) {
                        return n.permanentFailures;
                    }));
    }
    return 0;
}
