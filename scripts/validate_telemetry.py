#!/usr/bin/env python3
"""Validate a netsparse-telemetry-v1 document (stdlib only).

Checks the structural contract documented in docs/observability.md:
the schema tag, the per-run required fields, and that every entity
series is a numeric array aligned to sampleTicks. Exits nonzero with
one message per violation, so CI can gate on it:

    python3 scripts/validate_telemetry.py telemetry.json
"""

import json
import sys

SCHEMA = "netsparse-telemetry-v1"
KINDS = {"link", "switch", "rig", "sim", "tenant"}


def check(doc, errors):
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        errors.append("runs is not an array")
        return
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        if run.get("run") != i:
            errors.append(f"{where}.run is {run.get('run')!r}, want {i}")
        if not isinstance(run.get("label"), str):
            errors.append(f"{where}.label is not a string")
        for field in ("intervalTicks", "finalTick"):
            v = run.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}.{field} is not a tick count")
        ticks = run.get("sampleTicks")
        if not isinstance(ticks, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in ticks
        ):
            errors.append(f"{where}.sampleTicks is not an integer array")
            continue
        if ticks != sorted(ticks):
            errors.append(f"{where}.sampleTicks is not sorted")
        n = len(ticks)
        entities = run.get("entities")
        if not isinstance(entities, list):
            errors.append(f"{where}.entities is not an array")
            continue
        seen_ids = set()
        for j, ent in enumerate(entities):
            ewhere = f"{where}.entities[{j}]"
            if not isinstance(ent, dict):
                errors.append(f"{ewhere} is not an object")
                continue
            eid = ent.get("id")
            if not isinstance(eid, str) or not eid:
                errors.append(f"{ewhere}.id is not a non-empty string")
            elif eid in seen_ids:
                errors.append(f"{ewhere}.id {eid!r} is duplicated")
            else:
                seen_ids.add(eid)
            if ent.get("kind") not in KINDS:
                errors.append(
                    f"{ewhere}.kind is {ent.get('kind')!r}, "
                    f"want one of {sorted(KINDS)}"
                )
            series = ent.get("series")
            if not isinstance(series, dict):
                errors.append(f"{ewhere}.series is not an object")
                continue
            for name, vals in series.items():
                if not isinstance(vals, list) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in vals
                ):
                    errors.append(
                        f"{ewhere}.series[{name!r}] is not a numeric array"
                    )
                elif len(vals) != n:
                    errors.append(
                        f"{ewhere}.series[{name!r}] has {len(vals)} "
                        f"values for {n} sampleTicks"
                    )


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} TELEMETRY.json", file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{argv[1]}: {e}", file=sys.stderr)
        return 1
    errors = []
    check(doc, errors)
    for e in errors:
        print(f"{argv[1]}: {e}", file=sys.stderr)
    if not errors:
        runs = doc["runs"]
        samples = sum(len(r["sampleTicks"]) for r in runs)
        print(
            f"{argv[1]}: valid {SCHEMA}: {len(runs)} run(s), "
            f"{samples} sample(s)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
