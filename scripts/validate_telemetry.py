#!/usr/bin/env python3
"""Validate a netsparse-telemetry-v1 document (stdlib only).

Kept for compatibility with existing CI wiring and docs: the checks
live in validate_outputs.py, which schema-sniffs and also validates
netsparse-spans-v1 documents. This wrapper pins the expected schema
to telemetry, so pointing it at a spans file still fails loudly:

    python3 scripts/validate_telemetry.py telemetry.json
"""

import sys

from validate_outputs import TELEMETRY_SCHEMA, validate_file


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} TELEMETRY.json", file=sys.stderr)
        return 2
    errors = validate_file(argv[1], want_schema=TELEMETRY_SCHEMA)
    for e in errors:
        print(f"{argv[1]}: {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
