#!/usr/bin/env python3
"""Plot a netsparse-telemetry-v1 timeline as small multiples.

One panel per metric class, all sharing the simulated-time axis: link
utilization, switch output backlog, Property-Cache activity, in-flight
PRs and simulator event throughput. Panels with many entities (links,
switches) draw every series as a thin gray context line and highlight
only the top few bottlenecks - ranked the same way as
examples/telemetry_report - with direct labels, so the plot answers
"where and when did the run saturate" at a glance.

    python3 scripts/plot_telemetry.py telemetry.json -o telemetry.png

Needs matplotlib; everything else is stdlib.
"""

import argparse
import json
import sys

# Categorical palette, first three slots only (validated for
# any-pair-adjacent use, light mode; see docs/observability.md).
SERIES_COLORS = ["#2a78d6", "#eb6834", "#1baf7a"]
CONTEXT = "#c8c7c2"  # de-emphasized non-highlighted series
TEXT = "#0b0b0b"
TEXT_MUTED = "#52514e"
GRID = "#e4e3de"
SURFACE = "#fcfcfb"


def load_run(path, run_index):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "netsparse-telemetry-v1":
        sys.exit(f"{path}: not a netsparse-telemetry-v1 document")
    try:
        return doc["runs"][run_index]
    except (KeyError, IndexError):
        sys.exit(f"{path}: no run {run_index}")


def by_kind(run, kind):
    return [e for e in run["entities"] if e["kind"] == kind]


def saturation_rank(entity):
    """Links rank by time at >= 90% utilization, then by peak."""
    util = entity["series"]["utilization"]
    above = sum(1 for u in util if u >= 0.9)
    return (above, max(util, default=0.0))


def plot_ranked(ax, t_us, entities, series, rank_key, top, scale=1.0):
    """Gray context lines plus direct-labeled top-N highlights."""
    ranked = sorted(entities, key=rank_key, reverse=True)
    highlights = [e for e in ranked[:top] if rank_key(e) > (0, 0.0)]
    for e in ranked[len(highlights):]:
        ax.plot(t_us, [v * scale for v in e["series"][series]],
                color=CONTEXT, linewidth=0.8, zorder=1)
    for i, e in enumerate(reversed(highlights)):
        color = SERIES_COLORS[len(highlights) - 1 - i]
        vals = [v * scale for v in e["series"][series]]
        ax.plot(t_us, vals, color=color, linewidth=1.8, zorder=3)
        ax.annotate(e["id"], (t_us[-1], vals[-1]),
                    xytext=(4, 0), textcoords="offset points",
                    color=color, fontsize=8, va="center")


def style(ax, title, ylabel):
    ax.set_title(title, loc="left", fontsize=9, color=TEXT)
    ax.set_ylabel(ylabel, fontsize=8, color=TEXT_MUTED)
    ax.set_facecolor(SURFACE)
    ax.grid(True, color=GRID, linewidth=0.6, zorder=0)
    ax.tick_params(labelsize=8, colors=TEXT_MUTED)
    for side in ("top", "right"):
        ax.spines[side].set_visible(False)
    for side in ("left", "bottom"):
        ax.spines[side].set_color(GRID)
    ax.margins(x=0)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("telemetry", help="netsparse-telemetry-v1 JSON file")
    ap.add_argument("-o", "--out", default="telemetry.png",
                    help="output image (default telemetry.png)")
    ap.add_argument("--run", type=int, default=0,
                    help="run index to plot (default 0)")
    ap.add_argument("--top", type=int, default=3,
                    help="highlighted series per panel (default 3, max 3)")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_telemetry.py needs matplotlib "
                 "(the validator scripts/validate_telemetry.py does not)")

    run = load_run(args.telemetry, args.run)
    t_us = [t / 1e6 for t in run["sampleTicks"]]  # ticks (ps) -> us
    if not t_us:
        sys.exit(f"{args.telemetry}: run {args.run} has no samples")
    top = max(1, min(args.top, len(SERIES_COLORS)))

    fig, axes = plt.subplots(5, 1, figsize=(9, 11), sharex=True)
    fig.patch.set_facecolor(SURFACE)
    links, switches = by_kind(run, "link"), by_kind(run, "switch")
    rigs, sims = by_kind(run, "rig"), by_kind(run, "sim")

    ax = axes[0]
    plot_ranked(ax, t_us, links, "utilization", saturation_rank, top,
                scale=100.0)
    ax.axhline(90.0, color=TEXT_MUTED, linewidth=0.8, linestyle=":",
               zorder=2)
    ax.set_ylim(0, 105)
    style(ax, f"Link utilization (top {top} by time at >= 90%, dotted)",
          "%")

    ax = axes[1]
    plot_ranked(ax, t_us, switches, "outQueueBytes",
                lambda e: (0, max(e["series"]["outQueueBytes"],
                                  default=0.0)),
                top, scale=1e-3)
    style(ax, f"Switch output backlog (top {top} by peak)", "KB")

    ax = axes[2]
    cache_series = ["cacheHits", "cacheMisses", "cacheInserts"]
    for i, name in enumerate(cache_series):
        total = [sum(sw["series"][name][k] for sw in switches)
                 for k in range(len(t_us))]
        ax.plot(t_us, total, color=SERIES_COLORS[i], linewidth=1.8,
                label=name, zorder=3)
    ax.legend(loc="upper right", fontsize=8, frameon=False,
              labelcolor=TEXT_MUTED)
    style(ax, "Property-Cache activity, all switches", "per interval")

    ax = axes[3]
    inflight = [sum(r["series"]["inflightPrs"][k] for r in rigs)
                for k in range(len(t_us))]
    ax.plot(t_us, inflight, color=SERIES_COLORS[0], linewidth=1.8,
            zorder=3)
    style(ax, "In-flight PRs, all nodes", "PRs")

    ax = axes[4]
    for sim in sims:
        ax.plot(t_us, sim["series"]["events"], color=SERIES_COLORS[0],
                linewidth=1.8, zorder=3)
    style(ax, "Simulator event throughput", "events/interval")
    ax.set_xlabel("simulated time (us)", fontsize=8, color=TEXT_MUTED)

    label = run.get("label", f"run {args.run}")
    fig.suptitle(f"NetSparse telemetry: {label}", x=0.01, ha="left",
                 fontsize=11, color=TEXT)
    fig.tight_layout(rect=(0, 0, 1, 0.98))
    fig.savefig(args.out, dpi=150, facecolor=SURFACE)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
