#!/usr/bin/env python3
"""Perf regression gate over bench_perf's BENCH_perf.json.

Compares the measured sequential throughput (events_per_second, the
CPU-time-based metric chosen for its robustness to runner noise) against
the committed baseline in bench/perf_baseline.json and fails when it
drops more than the allowed fraction below it. Also re-asserts the
exact-vs-hybrid fidelity delta gate that bench_perf already evaluated,
and writes the deltas to a small JSON artifact for CI upload.

The committed baseline records the reference container's numbers;
heterogeneous runners can scale the floor with
NETSPARSE_PERF_BASELINE_SCALE (e.g. 0.5 halves the required
throughput) or point NETSPARSE_PERF_BASELINE at a different baseline
file. Raising the baseline after a genuine improvement is a one-line
edit to bench/perf_baseline.json reviewed like any other change.

Usage:
    check_perf_regression.py BENCH_perf.json [--baseline FILE]
        [--tolerance 0.20] [--delta-out FILE]

Exit codes: 0 pass, 1 regression or gate failure, 2 bad input.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf_regression: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result", help="BENCH_perf.json from bench_perf")
    ap.add_argument("--baseline",
                    default=os.environ.get(
                        "NETSPARSE_PERF_BASELINE",
                        os.path.join(os.path.dirname(__file__), "..",
                                     "bench", "perf_baseline.json")))
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop below baseline")
    ap.add_argument("--delta-out", default=None,
                    help="write the measured deltas as JSON here")
    args = ap.parse_args()

    result = load(args.result)
    baseline = load(args.baseline)

    schema = result.get("schema", "")
    if not schema.startswith("netsparse-perf-"):
        print(f"check_perf_regression: unexpected schema {schema!r}",
              file=sys.stderr)
        sys.exit(2)

    measured = result.get("events_per_second")
    reference = baseline.get("events_per_second")
    if not measured or not reference:
        print("check_perf_regression: missing events_per_second",
              file=sys.stderr)
        sys.exit(2)

    try:
        scale = float(
            os.environ.get("NETSPARSE_PERF_BASELINE_SCALE", "1.0"))
    except ValueError:
        print("check_perf_regression: NETSPARSE_PERF_BASELINE_SCALE "
              "is not a number", file=sys.stderr)
        sys.exit(2)
    if scale <= 0:
        print(f"check_perf_regression: baseline scale {scale:g} must "
              "be positive", file=sys.stderr)
        sys.exit(2)

    # The scale knob exists to move the FAILURE floor for slower (or
    # faster) runners; it must apply symmetrically to every derived
    # number, or a regression on a fast runner (scale < 1) reads as an
    # "improvement" against the unscaled reference. So the ratio and
    # the improvement watermark use the same scaled baseline the floor
    # does.
    scaled_reference = reference * scale
    floor = scaled_reference * (1.0 - args.tolerance)
    ratio = measured / scaled_reference
    improvement_mark = scaled_reference * (1.0 + args.tolerance)
    improved = measured > improvement_mark

    failures = []
    if measured < floor:
        failures.append(
            f"events_per_second {measured:.0f} is below the baseline "
            f"floor {floor:.0f} ({reference:.0f} * scale {scale:g} * "
            f"(1 - {args.tolerance:g}))")

    if not result.get("deterministic", False):
        failures.append("run was non-deterministic")

    fidelity = result.get("fidelity") or {}
    if fidelity and not fidelity.get("gate_pass", False):
        failures.append(
            "exact-vs-hybrid fidelity delta gate failed: "
            f"commTicks delta {fidelity.get('comm_ticks_rel_delta')}, "
            f"goodput delta {fidelity.get('goodput_rel_delta')}, "
            f"eps {fidelity.get('epsilon')}")

    summary = {
        "events_per_second": measured,
        "baseline_events_per_second": reference,
        "baseline_scale": scale,
        "ratio_vs_baseline": ratio,
        "tolerance": args.tolerance,
        "improved_vs_baseline": improved,
        "fidelity_delta": fidelity,
        "pass": not failures,
    }
    if args.delta_out:
        with open(args.delta_out, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")

    print(f"throughput : {measured:.0f} events/s "
          f"({ratio:.2f}x of scaled baseline, floor {floor:.0f})")
    if improved and scale == 1.0:
        print(f"note       : throughput beats the baseline by more than "
              f"{args.tolerance:.0%}; consider raising "
              f"bench/perf_baseline.json")
    if fidelity:
        print(f"fidelity   : commTicks delta "
              f"{fidelity.get('comm_ticks_rel_delta')}, goodput delta "
              f"{fidelity.get('goodput_rel_delta')} "
              f"(eps {fidelity.get('epsilon')}) -> "
              f"{'PASS' if fidelity.get('gate_pass') else 'FAIL'}")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print("perf regression gate: PASS")


if __name__ == "__main__":
    main()
