#!/usr/bin/env python3
"""Validate NetSparse observability documents (stdlib only).

Schema-sniffs each input file and checks the structural contract
documented in docs/observability.md:

  netsparse-telemetry-v1  interval timelines (--telemetry-out)
  netsparse-spans-v1      per-PR causal span trees (--spans-out)

Spans get the deep checks the span consumers rely on: hex span ids,
events in causal order, component ids that resolve against the run's
name table, and parent indices that reference an earlier event of the
same span (a dangling parent id is a hard error). Exits nonzero with
one message per violation, so CI can gate on it:

    python3 scripts/validate_outputs.py telemetry.json spans.json
"""

import json
import re
import sys

TELEMETRY_SCHEMA = "netsparse-telemetry-v1"
SPANS_SCHEMA = "netsparse-spans-v1"
TELEMETRY_KINDS = {"link", "switch", "rig", "sim", "tenant"}
SPAN_STAGES = {
    "issue",
    "retransmit",
    "nicEgress",
    "linkTx",
    "switchPipe",
    "cacheHit",
    "cacheMiss",
    "cacheBypass",
    "fetch",
    "retire",
}
HEX_ID = re.compile(r"^[0-9a-f]{16}$")


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_telemetry(doc, errors):
    runs = doc.get("runs")
    if not isinstance(runs, list):
        errors.append("runs is not an array")
        return
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        if run.get("run") != i:
            errors.append(f"{where}.run is {run.get('run')!r}, want {i}")
        if not isinstance(run.get("label"), str):
            errors.append(f"{where}.label is not a string")
        for field in ("intervalTicks", "finalTick"):
            if not is_count(run.get(field)):
                errors.append(f"{where}.{field} is not a tick count")
        ticks = run.get("sampleTicks")
        if not isinstance(ticks, list) or not all(
            is_count(t) for t in ticks
        ):
            errors.append(f"{where}.sampleTicks is not an integer array")
            continue
        if ticks != sorted(ticks):
            errors.append(f"{where}.sampleTicks is not sorted")
        n = len(ticks)
        entities = run.get("entities")
        if not isinstance(entities, list):
            errors.append(f"{where}.entities is not an array")
            continue
        seen_ids = set()
        for j, ent in enumerate(entities):
            ewhere = f"{where}.entities[{j}]"
            if not isinstance(ent, dict):
                errors.append(f"{ewhere} is not an object")
                continue
            eid = ent.get("id")
            if not isinstance(eid, str) or not eid:
                errors.append(f"{ewhere}.id is not a non-empty string")
            elif eid in seen_ids:
                errors.append(f"{ewhere}.id {eid!r} is duplicated")
            else:
                seen_ids.add(eid)
            if ent.get("kind") not in TELEMETRY_KINDS:
                errors.append(
                    f"{ewhere}.kind is {ent.get('kind')!r}, "
                    f"want one of {sorted(TELEMETRY_KINDS)}"
                )
            series = ent.get("series")
            if not isinstance(series, dict):
                errors.append(f"{ewhere}.series is not an object")
                continue
            for name, vals in series.items():
                if not isinstance(vals, list) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in vals
                ):
                    errors.append(
                        f"{ewhere}.series[{name!r}] is not a numeric array"
                    )
                elif len(vals) != n:
                    errors.append(
                        f"{ewhere}.series[{name!r}] has {len(vals)} "
                        f"values for {n} sampleTicks"
                    )


def check_span(span, ncomponents, where, errors):
    sid = span.get("spanId")
    if not isinstance(sid, str) or not HEX_ID.match(sid):
        errors.append(f"{where}.spanId is not a 16-digit hex string")
    for field in ("tenant", "src", "srcTid", "reqId", "issueTick",
                  "retireTick", "totalTicks", "retransmits"):
        if not is_count(span.get(field)):
            errors.append(f"{where}.{field} is not a non-negative int")
            return
    if span["retireTick"] < span["issueTick"]:
        errors.append(f"{where} retires before it issues")
    if span["totalTicks"] != span["retireTick"] - span["issueTick"]:
        errors.append(f"{where}.totalTicks does not match issue/retire")
    if not isinstance(span.get("servedByCache"), bool):
        errors.append(f"{where}.servedByCache is not a bool")
    if span.get("kept") not in ("sampled", "tail", "finisher"):
        errors.append(f"{where}.kept is {span.get('kept')!r}")
    if not isinstance(span.get("finisher"), bool):
        errors.append(f"{where}.finisher is not a bool")
    events = span.get("events")
    if not isinstance(events, list) or not events:
        errors.append(f"{where}.events is not a non-empty array")
        return
    prev_tick = None
    for k, ev in enumerate(events):
        vwhere = f"{where}.events[{k}]"
        if not isinstance(ev, dict):
            errors.append(f"{vwhere} is not an object")
            continue
        if ev.get("stage") not in SPAN_STAGES:
            errors.append(
                f"{vwhere}.stage is {ev.get('stage')!r}, want one of "
                f"{sorted(SPAN_STAGES)}"
            )
        for field in ("tick", "durTicks", "comp", "detail"):
            if not is_count(ev.get(field)):
                errors.append(f"{vwhere}.{field} is not a non-negative "
                              "int")
                return
        if ev["comp"] >= ncomponents:
            errors.append(
                f"{vwhere}.comp {ev['comp']} is outside the component "
                f"table ({ncomponents} entries)"
            )
        if prev_tick is not None and ev["tick"] < prev_tick:
            errors.append(f"{vwhere} is out of causal (tick) order")
        prev_tick = ev["tick"]
        parent = ev.get("parent")
        # The dangling-parent check: a parent must be an earlier event
        # of the same span (-1 marks the root), or the tree the
        # critical-path analyzer walks is broken.
        if (
            not isinstance(parent, int)
            or isinstance(parent, bool)
            or parent < -1
            or parent >= k
        ):
            errors.append(
                f"{vwhere}.parent {parent!r} dangles (want -1 or an "
                f"index below {k})"
            )


def check_spans(doc, errors):
    runs = doc.get("runs")
    if not isinstance(runs, list):
        errors.append("runs is not an array")
        return
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} is not an object")
            continue
        if run.get("run") != i:
            errors.append(f"{where}.run is {run.get('run')!r}, want {i}")
        if not isinstance(run.get("label"), str):
            errors.append(f"{where}.label is not a string")
        for field in ("sampleEvery", "tailKeep", "tailThresholdTicks",
                      "finalTick", "recordedSpans"):
            if not is_count(run.get(field)):
                errors.append(f"{where}.{field} is not a non-negative "
                              "int")
        seed = run.get("seed")
        if not isinstance(seed, str) or not HEX_ID.match(seed):
            errors.append(f"{where}.seed is not a 16-digit hex string")
        if not isinstance(run.get("fidelity"), str):
            errors.append(f"{where}.fidelity is not a string")
        components = run.get("components")
        if not isinstance(components, list) or not all(
            isinstance(c, str) for c in components
        ):
            errors.append(f"{where}.components is not a string array")
            continue
        spans = run.get("spans")
        if not isinstance(spans, list):
            errors.append(f"{where}.spans is not an array")
            continue
        if is_count(run.get("recordedSpans")) and len(spans) > run[
            "recordedSpans"
        ]:
            errors.append(
                f"{where} keeps {len(spans)} spans but records only "
                f"{run['recordedSpans']}"
            )
        seen = set()
        order = []
        for j, span in enumerate(spans):
            swhere = f"{where}.spans[{j}]"
            if not isinstance(span, dict):
                errors.append(f"{swhere} is not an object")
                continue
            check_span(span, len(components), swhere, errors)
            sid = span.get("spanId")
            if isinstance(sid, str):
                if sid in seen:
                    errors.append(f"{swhere}.spanId {sid} is duplicated")
                seen.add(sid)
            if is_count(span.get("totalTicks")) and isinstance(sid, str):
                order.append((-span["totalTicks"], sid))
        if order != sorted(order):
            errors.append(
                f"{where}.spans is not sorted by (total desc, id asc)"
            )


def validate_file(path, want_schema=None):
    """Returns a list of violation messages (empty = valid)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [str(e)]
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    schema = doc.get("schema")
    if want_schema is not None and schema != want_schema:
        return [f"schema is {schema!r}, want {want_schema!r}"]
    errors = []
    if schema == TELEMETRY_SCHEMA:
        check_telemetry(doc, errors)
    elif schema == SPANS_SCHEMA:
        check_spans(doc, errors)
    else:
        errors.append(
            f"schema is {schema!r}, want {TELEMETRY_SCHEMA!r} or "
            f"{SPANS_SCHEMA!r}"
        )
    if not errors:
        runs = doc["runs"]
        if schema == TELEMETRY_SCHEMA:
            samples = sum(len(r["sampleTicks"]) for r in runs)
            print(
                f"{path}: valid {schema}: {len(runs)} run(s), "
                f"{samples} sample(s)"
            )
        else:
            kept = sum(len(r["spans"]) for r in runs)
            recorded = sum(r["recordedSpans"] for r in runs)
            print(
                f"{path}: valid {schema}: {len(runs)} run(s), "
                f"{recorded} span(s) recorded, {kept} kept"
            )
    return errors


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} DOCUMENT.json...", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        for e in validate_file(path):
            print(f"{path}: {e}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
