/**
 * @file
 * Table 4: average number of unique remote destination nodes among 64
 * consecutive PRs from a node, in a 128-node system.
 *
 * Paper values: arabic 2.51, europe 7.43, queen 1.00, stokes 1.85,
 * uk 5.61. Low values mean strong temporal remote destination locality,
 * which is what makes PR concatenation effective (Figure 17).
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Temporal remote destination locality", "Table 4");
    std::uint32_t nodes = benchNodes();
    double scale = benchScale();

    std::printf("%-8s %26s\n", "matrix", "unique dests / 64 PRs");
    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        double u = avgUniqueDestinations(bm.matrix, part, 64);
        std::printf("%-8s %26.2f\n", bm.name.c_str(), u);
    }
    return 0;
}
