/**
 * @file
 * Table 4: average number of unique remote destination nodes among 64
 * consecutive PRs from a node, in a 128-node system.
 *
 * Paper values: arabic 2.51, europe 7.43, queen 1.00, stokes 1.85,
 * uk 5.61. Low values mean strong temporal remote destination locality,
 * which is what makes PR concatenation effective (Figure 17).
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Temporal remote destination locality", "Table 4");
    std::uint32_t nodes = benchNodes();
    double scale = benchScale();

    auto suite = benchmarkSuite(scale);
    std::vector<double> uniques(suite.size());
    runSweep(uniques.size(), [&](std::size_t i) {
        Partition1D part =
            Partition1D::equalRows(suite[i].matrix.rows, nodes);
        uniques[i] = avgUniqueDestinations(suite[i].matrix, part, 64);
    });

    std::printf("%-8s %26s\n", "matrix", "unique dests / 64 PRs");
    for (std::size_t m = 0; m < suite.size(); ++m)
        std::printf("%-8s %26.2f\n", suite[m].name.c_str(), uniques[m]);
    return 0;
}
