/**
 * @file
 * Figure 19: inter-node communication imbalance assuming no computation
 * cost - the number of nodes still actively communicating as execution
 * progresses (normalized time), from each node's communication volume.
 *
 * Shape to reproduce: queen stays near-fully active to the end (its
 * band partitions evenly); the web crawls and stokes tail off early,
 * leaving a few overloaded nodes to determine the finish time. The
 * imbalance comes from the partitioning, not the NetSparse hardware.
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale();
    banner("Active nodes vs normalized execution time", "Figure 19");
    std::printf("(%u nodes; volume = unique remote properties + serve "
                "load per node)\n\n",
                nodes);

    const std::uint32_t samples = 10;
    std::printf("%-8s", "matrix");
    for (std::uint32_t s = 0; s < samples; ++s)
        std::printf("%6.0f%%", 100.0 * s / samples);
    std::printf("\n");

    auto suite = benchmarkSuite(scale);
    std::vector<std::vector<std::uint32_t>> profiles(suite.size());
    runSweep(profiles.size(), [&](std::size_t i) {
        const auto &bm = suite[i];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        CommPattern cp = analyzeCommPattern(bm.matrix, part);

        // A node is busy while it still receives its unique remote
        // properties or serves other nodes' requests; both are
        // per-node wire volumes under sparsity-aware communication.
        std::vector<std::uint64_t> serve(nodes, 0);
        std::vector<bool> seen(bm.matrix.cols, false);
        std::vector<std::uint32_t> touched;
        for (NodeId n = 0; n < nodes; ++n) {
            touched.clear();
            for (std::uint32_t r = part.begin(n); r < part.end(n); ++r) {
                for (auto col : bm.matrix.rowCols(r)) {
                    NodeId owner = part.ownerOf(col);
                    if (owner == n || seen[col])
                        continue;
                    seen[col] = true;
                    touched.push_back(col);
                    ++serve[owner];
                }
            }
            for (auto col : touched)
                seen[col] = false;
        }
        std::vector<std::uint64_t> volume(nodes);
        for (NodeId n = 0; n < nodes; ++n)
            volume[n] = cp.nodes[n].uniqueRemote + serve[n];

        profiles[i] = activeNodeProfile(volume, samples);
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        std::printf("%-8s", suite[m].name.c_str());
        for (auto v : profiles[m])
            std::printf("%7u", v);
        std::printf("\n");
    }
    return 0;
}
