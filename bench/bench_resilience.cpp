/**
 * @file
 * Resilience sweep: goodput and communication-time degradation as the
 * per-packet drop rate rises, with the reliable-PR layer recovering
 * every loss (see docs/resilience.md).
 *
 * Shape to expect: goodput and comm time are flat up to ~1e-4 (the
 * retransmit tail hides inside the gather), then degrade smoothly as
 * retransmits start to serialize behind the timeout; permanent failures
 * stay at zero across the sweep - the layer never gives up on a
 * recoverable network.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Goodput vs packet-drop rate under reliable PRs",
           "the resilience extension (docs/resilience.md)");
    std::printf("(%u nodes, arabic analogue at scale %.2f, K=%u, "
                "corrupt rate = drop/10)\n\n",
                nodes, scale, k);

    const double rates[] = {0.0, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2};
    constexpr std::size_t nr = std::size(rates);
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, scale);
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    std::vector<GatherRunResult> results(nr);
    runSweep(nr, [&](std::size_t i) {
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.faults.dropRate = rates[i];
        cfg.faults.corruptRate = rates[i] / 10.0;
        cfg.faults.seed = 11;
        results[i] = ClusterSim(cfg).runGather(m, part, k);
    });

    std::printf("%-10s%12s%10s%10s%12s%8s%8s%8s\n", "droprate",
                "comm(us)", "slowdown", "goodput", "drops", "rexmit",
                "nacks", "fail");
    for (std::size_t i = 0; i < nr; ++i) {
        const GatherRunResult &r = results[i];
        auto sum = [&r](auto field) { return r.sumNodes(field); };
        std::printf(
            "%-10.0e%12.2f%9.2fx%9.1f%%%12llu%8llu%8llu%8llu\n",
            rates[i], ticks::toNs(r.commTicks) / 1e3,
            static_cast<double>(r.commTicks) / results[0].commTicks,
            100.0 * r.tailGoodput,
            (unsigned long long)r.packetsDropped,
            (unsigned long long)sum([](const NodeRunStats &n) {
                return n.retransmits;
            }),
            (unsigned long long)sum(
                [](const NodeRunStats &n) { return n.nacks; }),
            (unsigned long long)sum([](const NodeRunStats &n) {
                return n.permanentFailures;
            }));
    }
    std::printf("\n(goodput = tail node's useful payload fraction of "
                "line rate;\n retransmit timeouts and budgets per "
                "docs/resilience.md)\n");
    return 0;
}
