/**
 * @file
 * Figure 14: communication vs computation time on the tail node for
 * SAOpt and NetSparse (K=16, 128 nodes, SPADE compute).
 *
 * Shape to reproduce: SAOpt is dominated by communication on every
 * matrix; with NetSparse, communication becomes comparable to (or
 * cheaper than) accelerated computation for the reuse-heavy matrices,
 * while europe and stokes retain communication headroom.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"
#include "runtime/end_to_end.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Tail-node communication / computation breakdown (K=16)",
           "Figure 14");
    std::printf("(%u nodes, matrix scale %.2f)\n\n", nodes, scale);

    ComputeDevice dev = spadeAccelerator();

    struct Row
    {
        Tick comp = 0;
        Tick saComm = 0;
        Tick nsComm = 0;
    };
    auto suite = benchmarkSuite(scale);
    std::vector<Row> rows(suite.size());
    runSweep(rows.size(), [&](std::size_t i) {
        const auto &bm = suite[i];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);

        // Tail compute time across nodes.
        Tick comp = 0;
        for (NodeId n = 0; n < nodes; ++n) {
            std::uint64_t nnz = bm.matrix.rowPtr[part.end(n)] -
                                bm.matrix.rowPtr[part.begin(n)];
            comp = std::max(comp, spmmTime(dev, nnz, part.size(n), k));
        }

        BaselineParams bp;
        BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        GatherRunResult ns = ClusterSim(cfg).runGather(bm.matrix, part, k);
        rows[i] = Row{comp, sa.commTicks, ns.commTicks};
    });

    std::printf("%-8s %12s %14s %14s %12s\n", "matrix", "comp(us)",
                "SAOpt comm", "NS comm", "NS comm/comp");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        const Row &r = rows[m];
        std::printf("%-8s %12.1f %11.1f us %11.1f us %11.2f\n",
                    suite[m].name.c_str(), ticks::toNs(r.comp) / 1e3,
                    ticks::toNs(r.saComm) / 1e3,
                    ticks::toNs(r.nsComm) / 1e3,
                    static_cast<double>(r.nsComm) / r.comp);
    }
    return 0;
}
