/**
 * @file
 * Figure 15: sensitivity of NetSparse to the RIG batch size (nonzeros
 * per RIG command), shown as speedup over a 16k batch.
 *
 * Shape to reproduce: an interior optimum - tiny batches expose the
 * host's command-issue overhead and under-fill the client units; huge
 * batches serialize each node's stream onto too few units (intra-node
 * load imbalance). The best point is input-dependent.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to RIG batch size (speedup over 16k batches)",
           "Figure 15");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    const std::uint32_t batches[] = {1024, 4096, 16384, 65536, 262144};
    constexpr std::size_t nb = std::size(batches);
    std::printf("%-8s", "matrix");
    for (auto b : batches)
        std::printf("%9uk", b / 1024);
    std::printf("\n");

    auto suite = benchmarkSuite(scale);
    std::vector<Tick> times(suite.size() * nb);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nb];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.host.batchSize = batches[i % nb];
        times[i] = ClusterSim(cfg).runGather(bm.matrix, part, k).commTicks;
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        Tick base = times[m * nb + 2]; // the 16k column
        std::printf("%-8s", suite[m].name.c_str());
        for (std::size_t b = 0; b < nb; ++b)
            std::printf("%9.2fx",
                        static_cast<double>(base) / times[m * nb + b]);
        std::printf("\n");
    }
    return 0;
}
