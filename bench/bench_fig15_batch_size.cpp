/**
 * @file
 * Figure 15: sensitivity of NetSparse to the RIG batch size (nonzeros
 * per RIG command), shown as speedup over a 16k batch.
 *
 * Shape to reproduce: an interior optimum - tiny batches expose the
 * host's command-issue overhead and under-fill the client units; huge
 * batches serialize each node's stream onto too few units (intra-node
 * load imbalance). The best point is input-dependent.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to RIG batch size (speedup over 16k batches)",
           "Figure 15");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    const std::uint32_t batches[] = {1024, 4096, 16384, 65536, 262144};
    std::printf("%-8s", "matrix");
    for (auto b : batches)
        std::printf("%9uk", b / 1024);
    std::printf("\n");

    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        Tick base = 0;
        std::vector<Tick> times;
        for (auto b : batches) {
            ClusterConfig cfg = defaultClusterConfig(nodes);
            cfg.host.batchSize = b;
            GatherRunResult r =
                ClusterSim(cfg).runGather(bm.matrix, part, k);
            times.push_back(r.commTicks);
            if (b == 16384)
                base = r.commTicks;
        }
        std::printf("%-8s", bm.name.c_str());
        for (auto t : times)
            std::printf("%9.2fx", static_cast<double>(base) / t);
        std::printf("\n");
    }
    return 0;
}
