/**
 * @file
 * Table 3: contribution of packet headers to total SA network traffic
 * for different property widths K, assuming one PR per packet.
 *
 * The paper's stack (Slingshot RDMA) carries ~160 B of headers; the
 * NetSparse solo packet carries 78 B. The second row shows how
 * concatenating N=17 PRs (the queen average of Table 7) shrinks the
 * effective per-PR header to 12/17 + 18 bytes.
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"
#include "net/protocol.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Header share of SA traffic vs property width", "Table 3");
    ProtocolParams proto;

    std::printf("%-26s", "K");
    for (std::uint32_t k = 1; k <= 256; k *= 2)
        std::printf("%7u", k);
    std::printf("\n");

    auto row = [&](const char *name, double header_bytes) {
        std::printf("%-26s", name);
        for (std::uint32_t k = 1; k <= 256; k *= 2) {
            std::printf("%6.1f%%",
                        100.0 * headerShare(
                                    k, static_cast<std::uint32_t>(
                                           header_bytes)));
        }
        std::printf("\n");
    };
    row("paper stack (160B)", 160);
    row("NetSparse solo (78B)", proto.upperHeaderBytes +
                                    proto.soloHeaderBytes +
                                    proto.prHeaderBytes);
    // With concatenation, the fixed 62 B is shared across ~17 PRs.
    double concat_eff =
        proto.prHeaderBytes +
        static_cast<double>(proto.concatBaseBytes()) / 17.0;
    row("NetSparse concat (N=17)", concat_eff);
    return 0;
}
