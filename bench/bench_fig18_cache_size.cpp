/**
 * @file
 * Figure 18: speedup versus a cache-less NetSparse switch as the
 * Property Cache capacity grows from 0 to effectively infinite.
 *
 * Shape to reproduce: matrices with rack-level sharing (arabic, uk,
 * queen) gain from caching; stokes gains nothing at any size (its far
 * coupling partner is unique per node); the 32 MB design point captures
 * most of the available benefit.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to Property Cache size (speedup vs no cache)",
           "Figure 18");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    // "inf" = 256 MB, far above any matrix's unique off-rack working
    // set, so nothing ever evicts (a 4 GB array would only add way
    // metadata, not hits). The sub-MB sizes expose the capacity knee,
    // which sits lower than the paper's because the matrices are
    // smaller.
    const std::uint64_t sizes[] = {0,           64ull << 10,
                                   256ull << 10, 2ull << 20,
                                   32ull << 20, 256ull << 20};
    const char *labels[] = {"none", "64KB", "256KB", "2MB", "32MB",
                            "inf"};
    std::printf("%-8s", "matrix");
    for (auto *l : labels)
        std::printf("%9s", l);
    std::printf("%9s\n", "hit@32M");

    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        std::vector<Tick> times;
        double hit32 = 0.0;
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            ClusterConfig cfg = defaultClusterConfig(nodes);
            cfg.propertyCacheBytes = sizes[i];
            if (sizes[i] == 0)
                cfg.features.switchCache = false;
            GatherRunResult r =
                ClusterSim(cfg).runGather(bm.matrix, part, k);
            times.push_back(r.commTicks);
            if (sizes[i] == 32ull << 20)
                hit32 = r.cacheHitRate();
        }
        std::printf("%-8s", bm.name.c_str());
        for (auto t : times)
            std::printf("%8.2fx", static_cast<double>(times[0]) / t);
        std::printf("%8.0f%%\n", 100.0 * hit32);
    }
    return 0;
}
