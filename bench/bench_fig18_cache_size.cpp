/**
 * @file
 * Figure 18: speedup versus a cache-less NetSparse switch as the
 * Property Cache capacity grows from 0 to effectively infinite.
 *
 * Shape to reproduce: matrices with rack-level sharing (arabic, uk,
 * queen) gain from caching; stokes gains nothing at any size (its far
 * coupling partner is unique per node); the 32 MB design point captures
 * most of the available benefit.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to Property Cache size (speedup vs no cache)",
           "Figure 18");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    // "inf" = 256 MB, far above any matrix's unique off-rack working
    // set, so nothing ever evicts (a 4 GB array would only add way
    // metadata, not hits). The sub-MB sizes expose the capacity knee,
    // which sits lower than the paper's because the matrices are
    // smaller.
    const std::uint64_t sizes[] = {0,           64ull << 10,
                                   256ull << 10, 2ull << 20,
                                   32ull << 20, 256ull << 20};
    const char *labels[] = {"none", "64KB", "256KB", "2MB", "32MB",
                            "inf"};
    constexpr std::size_t ns = std::size(sizes);
    std::printf("%-8s", "matrix");
    for (auto *l : labels)
        std::printf("%9s", l);
    std::printf("%9s\n", "hit@32M");

    auto suite = benchmarkSuite(scale);
    std::vector<Tick> times(suite.size() * ns);
    std::vector<double> hits(suite.size() * ns);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / ns];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.propertyCacheBytes = sizes[i % ns];
        if (cfg.propertyCacheBytes == 0)
            cfg.features.switchCache = false;
        GatherRunResult r = ClusterSim(cfg).runGather(bm.matrix, part, k);
        times[i] = r.commTicks;
        hits[i] = r.cacheHitRate();
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        std::printf("%-8s", suite[m].name.c_str());
        for (std::size_t s = 0; s < ns; ++s)
            std::printf("%8.2fx", static_cast<double>(times[m * ns]) /
                                      times[m * ns + s]);
        std::printf("%8.0f%%\n", 100.0 * hits[m * ns + 4]); // 32MB column
    }
    return 0;
}
