/**
 * @file
 * Section 3 motivation: the fraction of useful off-rack PRs whose
 * property is useful to more than one node of the same 16-node rack
 * (the paper reports 85% on average), i.e. the sharing potential the
 * in-switch Property Cache exploits.
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Intra-rack property sharing potential", "Section 3, bullet 6");
    std::uint32_t nodes = benchNodes();
    std::uint32_t rack = 16;
    double scale = benchScale();

    auto suite = benchmarkSuite(scale);
    std::vector<double> fracs(suite.size());
    runSweep(fracs.size(), [&](std::size_t i) {
        Partition1D part =
            Partition1D::equalRows(suite[i].matrix.rows, nodes);
        fracs[i] = rackSharingFraction(suite[i].matrix, part, rack);
    });

    double sum = 0;
    std::printf("%-8s %22s\n", "matrix", "shared PR fraction");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        std::printf("%-8s %21.1f%%\n", suite[m].name.c_str(),
                    100.0 * fracs[m]);
        sum += fracs[m];
    }
    std::printf("%-8s %21.1f%%   (paper: 85%% average)\n", "mean",
                100.0 * sum / suite.size());
    return 0;
}
