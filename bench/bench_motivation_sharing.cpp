/**
 * @file
 * Section 3 motivation: the fraction of useful off-rack PRs whose
 * property is useful to more than one node of the same 16-node rack
 * (the paper reports 85% on average), i.e. the sharing potential the
 * in-switch Property Cache exploits.
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Intra-rack property sharing potential", "Section 3, bullet 6");
    std::uint32_t nodes = benchNodes();
    std::uint32_t rack = 16;
    double scale = benchScale();

    double sum = 0;
    int count = 0;
    std::printf("%-8s %22s\n", "matrix", "shared PR fraction");
    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        double f = rackSharingFraction(bm.matrix, part, rack);
        std::printf("%-8s %21.1f%%\n", bm.name.c_str(), 100.0 * f);
        sum += f;
        ++count;
    }
    std::printf("%-8s %21.1f%%   (paper: 85%% average)\n", "mean",
                100.0 * sum / count);
    return 0;
}
