/**
 * @file
 * Figure 22: NetSparse communication speedup over SUOpt on three
 * 128-node networks of similar bisection bandwidth: Leaf-Spine (the
 * design target), HyperX (4x4x2, width 4) and Dragonfly (4 groups).
 *
 * Shape to reproduce: NetSparse stays effective on all three; higher-
 * diameter networks (HyperX) lose some ground, most visibly for
 * stokes, whose far-coupling traffic takes the extra hops.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    double scale = benchScale(1.0);
    const std::uint32_t nodes = 128; // HyperX/Dragonfly configs are fixed
    const std::uint32_t k = 16;
    banner("NetSparse speedup over SUOpt across topologies", "Figure 22");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    struct TopoRow
    {
        TopologyKind kind;
        const char *name;
    };
    const TopoRow topos[] = {{TopologyKind::LeafSpine, "leaf-spine"},
                             {TopologyKind::HyperX, "hyperx"},
                             {TopologyKind::Dragonfly, "dragonfly"}};
    constexpr std::size_t nt = std::size(topos);

    std::printf("%-8s", "matrix");
    for (const auto &t : topos)
        std::printf("%12s", t.name);
    std::printf("\n");

    auto suite = benchmarkSuite(scale);
    std::vector<Tick> times(suite.size() * nt);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nt];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.topology = topos[i % nt].kind;
        times[i] = ClusterSim(cfg).runGather(bm.matrix, part, k).commTicks;
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        const auto &bm = suite[m];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        BaselineParams bp;
        BaselineResult su = runSuOpt(bm.matrix, part, k, bp);
        std::printf("%-8s", bm.name.c_str());
        for (std::size_t t = 0; t < nt; ++t)
            std::printf("%11.2fx", static_cast<double>(su.commTicks) /
                                       times[m * nt + t]);
        std::printf("\n");
    }
    return 0;
}
