/**
 * @file
 * Figure 20 and Table 9: area/power of the NetSparse hardware
 * extensions at 10 nm, from the anchored analytic model.
 *
 * Paper reference points: SNIC extensions ~1.43 mm^2 / 2.1 W peak /
 * ~3.5 MB SRAM (L2s dominate area and static power, RIG units dominate
 * dynamic power); RIG-unit area is 53% Pending PR Table; switch caches
 * ~21.3 mm^2 and concatenators ~1.5 mm^2 at ~10 W combined.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hwcost/hw_model.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

void
printReport(const char *title, const HwReport &r)
{
    std::printf("\n%s\n", title);
    std::printf("  %-18s %10s %10s %10s %10s\n", "component", "area mm2",
                "static W", "dynamic W", "SRAM KB");
    for (const auto &c : r.components) {
        std::printf("  %-18s %10.3f %10.3f %10.3f %10.1f\n",
                    c.name.c_str(), c.areaMm2, c.staticPowerW,
                    c.dynamicPowerW, c.sramBytes / 1024.0);
    }
    std::printf("  %-18s %10.3f %10.3f %10.3f %10.1f\n", "TOTAL",
                r.totalAreaMm2(), r.totalStaticW(), r.totalDynamicW(),
                r.totalSramBytes() / 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Hardware overheads of the NetSparse extensions",
           "Figure 20 and Table 9");

    printReport("SNIC extensions (Figure 20):", snicOverheads());
    printReport("Switch extensions (Section 9.5):", switchOverheads());

    std::printf("\nRIG unit area breakdown (Table 9):\n");
    for (const auto &[name, frac] : rigUnitAreaBreakdown())
        std::printf("  %-18s %5.1f%%\n", name.c_str(), 100.0 * frac);

    std::printf("\nTechnology scaling factors (45 nm -> 10 nm): "
                "area x%.3f, power x%.3f\n",
                TechScaling::areaFactor(45, 10),
                TechScaling::powerFactor(45, 10));
    return 0;
}
