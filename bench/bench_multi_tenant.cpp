/**
 * @file
 * Multi-tenant interference sweep: three concurrent gather jobs
 * (different matrices and K) share one fabric, optionally against an
 * incast background flow, under FIFO vs per-tenant fair-queueing
 * switch output queues and shared vs partitioned Property Caches.
 *
 * Not a paper figure: the paper runs one job per fabric. This bench
 * quantifies what the tenant isolation machinery (runtime/
 * job_scheduler.hh) buys - the headline column is job0's slowdown
 * versus running alone, which FIFO lets the background traffic
 * inflate and fair queueing bounds.
 */

#include <vector>

#include "bench_common.hh"
#include "runtime/job_scheduler.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

GatherWorkload
sliceWork(const Csr &m, std::uint32_t nodes)
{
    GatherWorkload w;
    w.numIdxs = m.cols;
    w.part = Partition1D::equalRows(m.rows, nodes);
    w.streams.reserve(nodes);
    for (NodeId nid = 0; nid < nodes; ++nid)
        w.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[w.part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[w.part.end(nid)]);
    return w;
}

struct Scenario
{
    const char *name;
    std::uint32_t jobs;
    bool fairQueue;
    bool partitionedCache;
    const char *background;
};

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Multi-tenant interference: FIFO vs fair queueing",
           "no single figure; Section 2 shared-fabric motivation");
    std::uint32_t nodes = benchNodes(16);
    double scale = benchScale();

    auto suite = benchmarkSuite(scale);
    const std::uint32_t ks[3] = {16, 8, 32};

    const std::vector<Scenario> scenarios = {
        {"job0 solo", 1, false, false, ""},
        {"3 jobs, fifo", 3, false, false, ""},
        {"3 jobs, fq", 3, true, false, ""},
        {"3 jobs + incast, fifo", 3, false, false, "incast:0.6:4000"},
        {"3 jobs + incast, fq", 3, true, false, "incast:0.6:4000"},
        {"  + partitioned cache", 3, true, true, "incast:0.6:4000"},
    };

    std::vector<MultiJobResult> results(scenarios.size());
    runSweep(scenarios.size(), [&](std::size_t i) {
        const Scenario &sc = scenarios[i];
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.fairQueue = sc.fairQueue;
        cfg.tenantCachePartitioned = sc.partitionedCache;
        BackgroundTrafficConfig bg;
        if (*sc.background)
            BackgroundTrafficConfig::parse(sc.background, bg);
        std::vector<JobSpec> specs(sc.jobs);
        for (std::uint32_t j = 0; j < sc.jobs; ++j) {
            specs[j].work =
                sliceWork(suite[j % suite.size()].matrix, nodes);
            specs[j].k = ks[j % 3];
            specs[j].name = "job" + std::to_string(j);
        }
        JobScheduler sched(cfg);
        results[i] = sched.run(std::move(specs), bg);
    });

    double solo_us = ticks::toNs(results[0].jobs[0].commTicks) / 1e3;
    std::printf("%-23s %9s %9s %9s %9s %9s %10s\n", "scenario",
                "job0 us", "job1 us", "job2 us", "mkspn us", "j0 slow",
                "bg pkts");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const MultiJobResult &mr = results[i];
        std::printf("%-23s %9.1f", scenarios[i].name,
                    ticks::toNs(mr.jobs[0].commTicks) / 1e3);
        for (std::size_t j = 1; j < 3; ++j) {
            if (j < mr.jobs.size())
                std::printf(" %9.1f",
                            ticks::toNs(mr.jobs[j].commTicks) / 1e3);
            else
                std::printf(" %9s", "-");
        }
        std::printf(" %9.1f %8.2fx %10llu\n",
                    ticks::toNs(mr.makespanTicks) / 1e3,
                    ticks::toNs(mr.jobs[0].commTicks) / 1e3 / solo_us,
                    (unsigned long long)mr.backgroundDelivered);
    }
    std::printf("\nj0 slow = job0 communication time over its solo "
                "run; fair queueing should\nhold it near the no-"
                "background contended value while FIFO lets the "
                "incast\nflow inflate it. See docs/observability.md "
                "(cluster.tenant<t>.*).\n");
    return 0;
}
