/**
 * @file
 * Shared helpers for the table/figure benchmark harness.
 *
 * Every bench binary reproduces one table or figure of the paper. The
 * matrices are synthetic structural analogues (see DESIGN.md), scaled by
 * NETSPARSE_BENCH_SCALE (default 1.0; the environment variable lets CI
 * trade fidelity for speed). Absolute numbers differ from the paper -
 * the matrices are ~100x smaller - but each bench prints the same rows
 * or series so the qualitative shape can be compared directly.
 */

#ifndef NETSPARSE_BENCH_COMMON_HH
#define NETSPARSE_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/span.hh"
#include "sim/stats_export.hh"
#include "sim/sweep.hh"
#include "sim/telemetry.hh"
#include "sim/trace.hh"
#include "sparse/generators.hh"
#include "sparse/partition.hh"

namespace netsparse::bench {

/**
 * Wire the shared observability flags into a bench binary: every bench
 * accepts `--trace-out FILE` (Chrome-trace/Perfetto event trace),
 * `--stats-json FILE` (JSON snapshot of every cluster run's stats
 * registry, one "runs[]" entry per runGather) and `--telemetry-out
 * FILE` (interval-telemetry timeline) and `--spans-out FILE` (per-PR
 * causal span trees at the default 1/64 sampling). The environment
 * variables NETSPARSE_TRACE_OUT / NETSPARSE_STATS_JSON /
 * NETSPARSE_TELEMETRY_OUT / NETSPARSE_SPANS_OUT are honored as
 * fallbacks so CI can collect artifacts without touching command
 * lines. Outputs are finalized at process exit. See
 * docs/observability.md for the schemas.
 */
inline void
initObservability(int argc, char **argv)
{
    const char *trace = std::getenv("NETSPARSE_TRACE_OUT");
    const char *stats = std::getenv("NETSPARSE_STATS_JSON");
    const char *telemetry = std::getenv("NETSPARSE_TELEMETRY_OUT");
    const char *spans = std::getenv("NETSPARSE_SPANS_OUT");
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--trace-out")
            trace = argv[i + 1];
        else if (std::string(argv[i]) == "--stats-json")
            stats = argv[i + 1];
        else if (std::string(argv[i]) == "--telemetry-out")
            telemetry = argv[i + 1];
        else if (std::string(argv[i]) == "--spans-out")
            spans = argv[i + 1];
    }
    if (trace && *trace)
        TraceWriter::instance().open(trace);
    if (stats && *stats)
        StatsExport::instance().setOutputPath(stats);
    if (telemetry && *telemetry)
        TelemetrySink::instance().setOutputPath(telemetry);
    if (spans && *spans)
        SpanSink::instance().setOutputPath(spans);
}

/** Scale factor for benchmark matrices (env NETSPARSE_BENCH_SCALE). */
inline double
benchScale(double fallback = 1.0)
{
    const char *env = std::getenv("NETSPARSE_BENCH_SCALE");
    if (!env)
        return fallback;
    double v = std::atof(env);
    return v > 0 ? v : fallback;
}

/** Number of cluster nodes (env NETSPARSE_BENCH_NODES, default 128). */
inline std::uint32_t
benchNodes(std::uint32_t fallback = 128)
{
    const char *env = std::getenv("NETSPARSE_BENCH_NODES");
    if (!env)
        return fallback;
    int v = std::atoi(env);
    return v > 1 ? static_cast<std::uint32_t>(v) : fallback;
}

/** Sweep worker count (env NETSPARSE_BENCH_JOBS, default 1). */
inline unsigned
benchJobs()
{
    return SweepExecutor::jobsFromEnv();
}

/**
 * Evaluate @p n independent sweep points with @p point(i), possibly in
 * parallel (NETSPARSE_BENCH_JOBS). Points must write their results into
 * pre-sized per-index storage and print nothing; the caller prints the
 * table afterwards, so output rows and stats runs appear in the same
 * order regardless of the worker count. See docs/performance.md.
 */
template <typename Fn>
inline void
runSweep(std::size_t n, Fn &&point)
{
    SweepExecutor exec(benchJobs());
    exec.run(n, std::function<void(std::size_t)>(std::forward<Fn>(point)));
}

/** Print a banner naming the experiment. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n(reproduces %s of the NetSparse paper)\n", experiment,
                paper_ref);
    std::printf("==============================================================\n");
}

} // namespace netsparse::bench

#endif // NETSPARSE_BENCH_COMMON_HH
