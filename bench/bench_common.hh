/**
 * @file
 * Shared helpers for the table/figure benchmark harness.
 *
 * Every bench binary reproduces one table or figure of the paper. The
 * matrices are synthetic structural analogues (see DESIGN.md), scaled by
 * NETSPARSE_BENCH_SCALE (default 1.0; the environment variable lets CI
 * trade fidelity for speed). Absolute numbers differ from the paper -
 * the matrices are ~100x smaller - but each bench prints the same rows
 * or series so the qualitative shape can be compared directly.
 */

#ifndef NETSPARSE_BENCH_COMMON_HH
#define NETSPARSE_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sparse/generators.hh"
#include "sparse/partition.hh"

namespace netsparse::bench {

/** Scale factor for benchmark matrices (env NETSPARSE_BENCH_SCALE). */
inline double
benchScale(double fallback = 1.0)
{
    const char *env = std::getenv("NETSPARSE_BENCH_SCALE");
    if (!env)
        return fallback;
    double v = std::atof(env);
    return v > 0 ? v : fallback;
}

/** Number of cluster nodes (env NETSPARSE_BENCH_NODES, default 128). */
inline std::uint32_t
benchNodes(std::uint32_t fallback = 128)
{
    const char *env = std::getenv("NETSPARSE_BENCH_NODES");
    if (!env)
        return fallback;
    int v = std::atoi(env);
    return v > 1 ? static_cast<std::uint32_t>(v) : fallback;
}

/** Print a banner naming the experiment. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n(reproduces %s of the NetSparse paper)\n", experiment,
                paper_ref);
    std::printf("==============================================================\n");
}

} // namespace netsparse::bench

#endif // NETSPARSE_BENCH_COMMON_HH
