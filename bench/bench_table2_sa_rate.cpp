/**
 * @file
 * Table 2: transfer rate, line utilization and goodput of a naive
 * (fine-grained RDMA, no aggregation) SA implementation on a 2-node
 * Slingshot-like setup with K=32.
 *
 * Paper values: rates 0.2-0.7 Gbps, line utilization 0.09-0.36%,
 * goodput 0.04-0.16% - i.e. orders of magnitude below the line rate,
 * which is the motivation for offloading PR generation to hardware.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Naive SA transfer rate on 2 nodes (K=32)", "Table 2");
    double scale = benchScale();
    NaiveSaParams p;

    auto suite = benchmarkSuite(scale);
    std::vector<NaiveSaResult> results(suite.size());
    // char, not bool: vector<bool> packs bits, which parallel sweep
    // points must not write to concurrently.
    std::vector<char> keep(suite.size(), 0);
    runSweep(results.size(), [&](std::size_t i) {
        if (suite[i].kind == MatrixKind::Stokes)
            return; // Table 2 reports arabic, europe, queen, uk
        results[i] = runNaiveSa2Node(suite[i].matrix, 32, p);
        keep[i] = 1;
    });

    std::printf("%-8s %14s %12s %10s\n", "matrix", "rate(Gbps)",
                "line util", "goodput");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        if (!keep[m])
            continue;
        std::printf("%-8s %14.2f %11.2f%% %9.2f%%\n",
                    suite[m].name.c_str(), results[m].transferRateGbps,
                    100.0 * results[m].lineUtilization,
                    100.0 * results[m].goodput);
    }
    return 0;
}
