/**
 * @file
 * Table 2: transfer rate, line utilization and goodput of a naive
 * (fine-grained RDMA, no aggregation) SA implementation on a 2-node
 * Slingshot-like setup with K=32.
 *
 * Paper values: rates 0.2-0.7 Gbps, line utilization 0.09-0.36%,
 * goodput 0.04-0.16% - i.e. orders of magnitude below the line rate,
 * which is the motivation for offloading PR generation to hardware.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Naive SA transfer rate on 2 nodes (K=32)", "Table 2");
    double scale = benchScale();
    NaiveSaParams p;

    std::printf("%-8s %14s %12s %10s\n", "matrix", "rate(Gbps)",
                "line util", "goodput");
    for (auto &bm : benchmarkSuite(scale)) {
        if (bm.kind == MatrixKind::Stokes)
            continue; // Table 2 reports arabic, europe, queen, uk
        NaiveSaResult r = runNaiveSa2Node(bm.matrix, 32, p);
        std::printf("%-8s %14.2f %11.2f%% %9.2f%%\n", bm.name.c_str(),
                    r.transferRateGbps, 100.0 * r.lineUtilization,
                    100.0 * r.goodput);
    }
    return 0;
}
