/**
 * @file
 * Ablations of the repository's design choices and of the paper's
 * Section 7 / Section 9.4 extensions (no single paper figure):
 *
 *  1. virtualized vs dedicated Concatenation Queues (Section 7.2):
 *     performance cost of a fixed pool of small physical CQs against
 *     2(N-1) MTU-sized dedicated queues, and the SRAM each needs;
 *  2. shared vs per-pipe Property Cache organization (Figure 8
 *     alternative; see src/net/switch.hh);
 *  3. static vs adaptive RIG batch sizing (the Section 9.4 future-work
 *     item, implemented as an AIMD policy in the host driver);
 *  4. equal-rows vs equal-nnz 1-D partitioning (the Section 9.4
 *     observation that partitioning, not the hardware, causes the
 *     remaining communication imbalance).
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

Tick
runOnce(const Csr &m, const Partition1D &part, ClusterConfig cfg,
        std::uint32_t k = 16)
{
    ClusterSim sim(std::move(cfg));
    return sim.runGather(m, part, k).commTicks;
}

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    banner("Design-choice and extension ablations",
           "Sections 7.2 / 9.4 / 6.2.1");
    std::printf("(%u nodes, matrix scale %.2f, K=16)\n\n", nodes, scale);

    // Variant order matches the printed columns: dedicated CQs (the
    // baseline), virtualized CQs, per-pipe caches, adaptive batching.
    constexpr std::size_t nv = 4;
    auto suite = benchmarkSuite(scale);
    std::vector<Tick> times(suite.size() * nv);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nv];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        switch (i % nv) {
          case 1:
            cfg.virtualizedCqs = true;
            break;
          case 2:
            cfg.cachePerPipe = true;
            break;
          case 3:
            cfg.host.policy = BatchPolicy::Adaptive;
            cfg.host.batchSize = 4096; // adapted from here
            break;
          default:
            break;
        }
        times[i] = runOnce(bm.matrix, part, cfg);
    });

    std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "matrix",
                "dedicated", "virtualCQ", "sharedCache", "perPipe",
                "staticB", "adaptiveB");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        Tick dedicated = times[m * nv + 0];
        std::printf("%-8s %9.1f us %9.1f us %9.1f us %9.1f us "
                    "%9.1f us %9.1f us\n",
                    suite[m].name.c_str(), ticks::toNs(dedicated) / 1e3,
                    ticks::toNs(times[m * nv + 1]) / 1e3,
                    ticks::toNs(dedicated) / 1e3,
                    ticks::toNs(times[m * nv + 2]) / 1e3,
                    ticks::toNs(dedicated) / 1e3,
                    ticks::toNs(times[m * nv + 3]) / 1e3);
    }
    std::printf("\n(dedicated CQ SRAM: 2(N-1) x MTU = %.0f KB; "
                "virtualized: 64 x 128 B = 8 KB)\n",
                2.0 * (nodes - 1) * 1500 / 1024.0);

    std::printf("\nPartitioning (Section 9.4): tail/mean communication "
                "volume imbalance\n");
    std::printf("%-8s %14s %14s\n", "matrix", "equal-rows", "equal-nnz");
    // Second sweep: per-matrix imbalance under the two partitionings
    // (index order fixes what used to be unspecified printf-argument
    // evaluation order).
    std::vector<double> imb(suite.size() * 2);
    runSweep(imb.size(), [&](std::size_t i) {
        const auto &bm = suite[i / 2];
        Partition1D part =
            i % 2 == 0 ? Partition1D::equalRows(bm.matrix.rows, nodes)
                       : Partition1D::equalNnz(bm.matrix, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        ClusterSim sim(cfg);
        GatherRunResult r = sim.runGather(bm.matrix, part, 16);
        std::uint64_t max_rx = 0, sum_rx = 0;
        for (const auto &n : r.nodes) {
            max_rx = std::max(max_rx, n.rxBytes);
            sum_rx += n.rxBytes;
        }
        imb[i] = sum_rx
                     ? static_cast<double>(max_rx) * nodes / sum_rx
                     : 0.0;
    });
    for (std::size_t m = 0; m < suite.size(); ++m)
        std::printf("%-8s %13.2fx %13.2fx\n", suite[m].name.c_str(),
                    imb[m * 2], imb[m * 2 + 1]);
    return 0;
}
