/**
 * @file
 * google-benchmark microbenchmarks dedicated to the EventQueue - the
 * structure every simulated nanosecond passes through. Four angles:
 *
 *  - raw bulk throughput (schedule n, run n) for near-ring and
 *    far-heap tick distributions;
 *  - self-scheduling event chains (the dominant pattern: link
 *    serialization, switch pipes and RIG units all reschedule
 *    themselves a few ns ahead), including many interleaved chains;
 *  - mixed ring/far workloads at a configurable far fraction,
 *    modeling watchdogs and congested-link arrivals cascading back
 *    into the wheel;
 *  - the delivery band (scheduleDelivery) the parallel engine merges
 *    cross-shard packets through.
 *
 * Run: build/bench/bench_event_queue [--benchmark_filter=...]
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace netsparse;

namespace {

/** schedule(n) then run(): bulk throughput with random ticks < span. */
void
BM_BulkScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const std::uint64_t span = static_cast<std::uint64_t>(state.range(1));
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>(splitmix64(i) % span),
                        [&sum] { ++sum; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
// span 4096 ticks: everything lands in the timing-wheel ring.
// span 16M ticks: most events start in the far heap and cascade in.
BENCHMARK(BM_BulkScheduleRun)
    ->Args({1 << 14, 1 << 12})
    ->Args({1 << 14, 1 << 24});

/**
 * A single self-rescheduling event chain: the steady-state shape of a
 * busy link or pipe. Tiny queue, maximal scheduling churn.
 */
void
BM_SelfSchedulingChain(benchmark::State &state)
{
    const std::uint64_t hops = static_cast<std::uint64_t>(state.range(0));
    const Tick step = 450; // a link-latency-ish stride
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t left = hops;
        std::function<void()> hop = [&] {
            if (--left)
                eq.scheduleIn(step, hop);
        };
        eq.schedule(0, hop);
        eq.run();
        benchmark::DoNotOptimize(left);
    }
    state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_SelfSchedulingChain)->Arg(1 << 16);

/**
 * Many interleaved self-scheduling chains with co-prime strides - the
 * whole-cluster picture where hundreds of links and pipes each keep
 * one event in flight.
 */
void
BM_InterleavedChains(benchmark::State &state)
{
    const int chains = static_cast<int>(state.range(0));
    const std::uint64_t total = 1 << 16;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t executed = 0;
        std::vector<std::function<void()>> hop(chains);
        for (int c = 0; c < chains; ++c) {
            Tick step = 100 + 7 * static_cast<Tick>(c);
            hop[c] = [&, c, step] {
                if (++executed < total)
                    eq.scheduleIn(step, hop[c]);
            };
            eq.schedule(static_cast<Tick>(c), hop[c]);
        }
        eq.run();
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_InterleavedChains)->Arg(16)->Arg(256);

/**
 * Ring/far mix: random short delays with every k-th event thrown far
 * ahead (watchdog-style), exercising the cascade path under load.
 * range(0) = one far event per this many near events.
 */
void
BM_RingFarMix(benchmark::State &state)
{
    const std::uint64_t farEvery =
        static_cast<std::uint64_t>(state.range(0));
    const std::uint64_t total = 1 << 15;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t executed = 0, i = 0;
        std::function<void()> next = [&] {
            if (++executed >= total)
                return;
            bool far = (++i % farEvery) == 0;
            Tick d = far ? 10'000'000 + splitmix64(i) % 1'000'000
                         : 1 + splitmix64(i) % 2000;
            eq.scheduleIn(d, next);
        };
        eq.schedule(0, next);
        eq.run();
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_RingFarMix)->Arg(1 << 30)->Arg(64)->Arg(8);

/**
 * The delivery band: per-link keyed arrivals as the parallel engine's
 * channel merge produces them, interleaved over several links.
 */
void
BM_DeliveryBand(benchmark::State &state)
{
    const int links = static_cast<int>(state.range(0));
    const std::uint64_t total = 1 << 15;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < total; ++i) {
            std::uint32_t link = static_cast<std::uint32_t>(i) % links;
            eq.scheduleDelivery(
                static_cast<Tick>(splitmix64(i) % 4096),
                EventQueue::deliveryKey(link, seq++),
                [&sum] { ++sum; });
        }
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_DeliveryBand)->Arg(4)->Arg(64);

} // namespace

BENCHMARK_MAIN();
