/**
 * @file
 * Figure 13: end-to-end strong scaling of distributed SpMM with
 * per-node SPADE accelerators, comparing SUOpt / SAOpt / NetSparse
 * communication against the ideal no-communication limit.
 *
 * Shape to reproduce: with accelerated compute, SUOpt barely scales (or
 * regresses), SAOpt scales a little, NetSparse gets a large fraction of
 * the ideal speedup.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"
#include "runtime/end_to_end.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("End-to-end SpMM speedup over one node (SPADE accelerators)",
           "Figure 13");
    std::printf("(matrix scale %.2f, K=%u, overlap alpha 0.5)\n\n", scale,
                k);

    EndToEndConfig e2e{spadeAccelerator(), 0.5};
    const std::uint32_t node_counts[] = {8, 32, 128};
    constexpr std::size_t nn = std::size(node_counts);

    struct Row
    {
        double su = 0, sa = 0, ns = 0, ideal = 0;
    };
    auto suite = benchmarkSuite(scale);
    std::vector<Row> rows(suite.size() * nn);
    runSweep(rows.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nn];
        std::uint32_t nodes = node_counts[i % nn];
        Tick t1 = singleNodeTime(bm.matrix, k, e2e.device);
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);

        BaselineParams bp;
        BaselineResult su = runSuOpt(bm.matrix, part, k, bp);
        BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        GatherRunResult ns = ClusterSim(cfg).runGather(bm.matrix, part, k);
        std::vector<Tick> ns_comm(nodes);
        for (NodeId n = 0; n < nodes; ++n)
            ns_comm[n] = ns.nodes[n].finishTick;

        auto speedup = [&](const std::vector<Tick> &comm) {
            EndToEndResult r =
                composeEndToEnd(bm.matrix, part, k, comm, e2e);
            return static_cast<double>(t1) / r.totalTicks;
        };
        EndToEndResult ideal_r = composeEndToEnd(
            bm.matrix, part, k, std::vector<Tick>(nodes, 0), e2e);
        rows[i] = Row{speedup(su.perNodeTicks), speedup(sa.perNodeTicks),
                      speedup(ns_comm),
                      static_cast<double>(t1) / ideal_r.idealTicks};
    });

    std::printf("%-8s %6s %9s %9s %9s %9s\n", "matrix", "nodes",
                "SUOpt", "SAOpt", "NetSparse", "ideal");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        for (std::size_t ni = 0; ni < nn; ++ni) {
            const Row &r = rows[m * nn + ni];
            std::printf("%-8s %6u %8.1fx %8.1fx %8.1fx %8.1fx\n",
                        suite[m].name.c_str(), node_counts[ni], r.su,
                        r.sa, r.ns, r.ideal);
        }
    }
    return 0;
}
