/**
 * @file
 * Figure 16: sensitivity to the number of RIG units per SNIC, as a
 * speedup over a 2-unit (1 client + 1 server) configuration.
 *
 * Shape to reproduce: speedups grow with the unit count and flatten by
 * 32 units (the paper's design point).
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to the number of RIG units (speedup over 2)",
           "Figure 16");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    const std::uint32_t unit_counts[] = {2, 4, 8, 16, 32, 64};
    constexpr std::size_t nu = std::size(unit_counts);
    std::printf("%-8s", "matrix");
    for (auto u : unit_counts)
        std::printf("%9u", u);
    std::printf("\n");

    auto suite = benchmarkSuite(scale);
    std::vector<Tick> times(suite.size() * nu);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nu];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.snic.numRigUnits = unit_counts[i % nu];
        times[i] = ClusterSim(cfg).runGather(bm.matrix, part, k).commTicks;
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        std::printf("%-8s", suite[m].name.c_str());
        for (std::size_t u = 0; u < nu; ++u)
            std::printf("%8.2fx", static_cast<double>(times[m * nu]) /
                                      times[m * nu + u]);
        std::printf("\n");
    }
    return 0;
}
