/**
 * @file
 * Figure 12: communication speedup of NetSparse and SAOpt over SUOpt on
 * the 128-node system for K = 1, 16, 128.
 *
 * Shape to reproduce: NetSparse beats both baselines on every matrix;
 * speedups grow with K (SUOpt's redundant traffic hurts more for wide
 * properties); SAOpt can fall below SUOpt where PR software costs
 * dominate. Absolute factors are smaller than the paper's because the
 * synthetic matrices are ~100x smaller, which deflates SU redundancy.
 */

#include <cmath>

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    banner("Communication speedup over SUOpt", "Figure 12");
    std::printf("(%u nodes, matrix scale %.2f)\n\n", nodes, scale);

    std::printf("%-8s", "matrix");
    for (std::uint32_t k : {1u, 16u, 128u})
        std::printf("   SA(K=%-3u) NS(K=%-3u)", k, k);
    std::printf("\n");

    double gmean_sa[3] = {1, 1, 1}, gmean_ns[3] = {1, 1, 1};
    int count = 0;
    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        std::printf("%-8s", bm.name.c_str());
        int ki = 0;
        for (std::uint32_t k : {1u, 16u, 128u}) {
            BaselineParams bp;
            BaselineResult su = runSuOpt(bm.matrix, part, k, bp);
            BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);

            ClusterConfig cfg = defaultClusterConfig(nodes);
            GatherRunResult ns =
                ClusterSim(cfg).runGather(bm.matrix, part, k);

            double s_sa = static_cast<double>(su.commTicks) / sa.commTicks;
            double s_ns = static_cast<double>(su.commTicks) / ns.commTicks;
            std::printf("   %8.2fx %8.2fx", s_sa, s_ns);
            gmean_sa[ki] *= s_sa;
            gmean_ns[ki] *= s_ns;
            ++ki;
        }
        std::printf("\n");
        ++count;
    }
    std::printf("%-8s", "gmean");
    for (int ki = 0; ki < 3; ++ki) {
        std::printf("   %8.2fx %8.2fx",
                    std::pow(gmean_sa[ki], 1.0 / count),
                    std::pow(gmean_ns[ki], 1.0 / count));
    }
    std::printf("\n");
    return 0;
}
