/**
 * @file
 * Figure 12: communication speedup of NetSparse and SAOpt over SUOpt on
 * the 128-node system for K = 1, 16, 128.
 *
 * Shape to reproduce: NetSparse beats both baselines on every matrix;
 * speedups grow with K (SUOpt's redundant traffic hurts more for wide
 * properties); SAOpt can fall below SUOpt where PR software costs
 * dominate. Absolute factors are smaller than the paper's because the
 * synthetic matrices are ~100x smaller, which deflates SU redundancy.
 */

#include <cmath>

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    banner("Communication speedup over SUOpt", "Figure 12");
    std::printf("(%u nodes, matrix scale %.2f)\n\n", nodes, scale);

    const std::uint32_t ks[] = {1, 16, 128};
    constexpr std::size_t nk = std::size(ks);
    std::printf("%-8s", "matrix");
    for (std::uint32_t k : ks)
        std::printf("   SA(K=%-3u) NS(K=%-3u)", k, k);
    std::printf("\n");

    auto suite = benchmarkSuite(scale);
    std::vector<double> s_sa(suite.size() * nk), s_ns(suite.size() * nk);
    runSweep(s_sa.size(), [&](std::size_t i) {
        const auto &bm = suite[i / nk];
        std::uint32_t k = ks[i % nk];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        BaselineParams bp;
        BaselineResult su = runSuOpt(bm.matrix, part, k, bp);
        BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        GatherRunResult ns = ClusterSim(cfg).runGather(bm.matrix, part, k);
        s_sa[i] = static_cast<double>(su.commTicks) / sa.commTicks;
        s_ns[i] = static_cast<double>(su.commTicks) / ns.commTicks;
    });

    double gmean_sa[nk] = {1, 1, 1}, gmean_ns[nk] = {1, 1, 1};
    for (std::size_t m = 0; m < suite.size(); ++m) {
        std::printf("%-8s", suite[m].name.c_str());
        for (std::size_t ki = 0; ki < nk; ++ki) {
            std::printf("   %8.2fx %8.2fx", s_sa[m * nk + ki],
                        s_ns[m * nk + ki]);
            gmean_sa[ki] *= s_sa[m * nk + ki];
            gmean_ns[ki] *= s_ns[m * nk + ki];
        }
        std::printf("\n");
    }
    std::printf("%-8s", "gmean");
    for (std::size_t ki = 0; ki < nk; ++ki) {
        std::printf("   %8.2fx %8.2fx",
                    std::pow(gmean_sa[ki], 1.0 / suite.size()),
                    std::pow(gmean_ns[ki], 1.0 / suite.size()));
    }
    std::printf("\n");
    return 0;
}
