/**
 * @file
 * Simulator throughput regression harness (no paper figure): runs the
 * canonical gather (arabic at scale 1.0, 128 nodes, K=16) a few times
 * sequentially and again under the parallel engine, and reports
 * events/second plus wall and CPU time, writing the result as
 * BENCH_perf.json (schema netsparse-perf-v2) for CI trend tracking.
 *
 * Sequential events/sec is computed against CPU time
 * (CLOCK_PROCESS_CPUTIME_ID) because CI runners and shared dev boxes
 * make wall clock noisy; wall time is reported alongside. The parallel
 * phase is judged on wall clock - that is the quantity sharding buys -
 * with the shard count picked as min(racks, host cores) unless
 * NETSPARSE_PERF_SHARDS overrides it. Every run's commTicks and event
 * count must be identical across repeats AND across engines - the
 * harness exits nonzero otherwise, so it doubles as a determinism
 * check of the conservative synchronization.
 *
 * Output path: --out FILE, else NETSPARSE_PERF_OUT, else
 * ./BENCH_perf.json. See docs/performance.md.
 */

#include <chrono>
#include <ctime>
#include <string>
#include <thread>

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

double
cpuSeconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct PhaseResult
{
    std::uint64_t events = 0;
    Tick comm = 0;
    std::uint64_t epochs = 0;
    std::uint32_t shards = 1;
    double bestCpu = 0;
    double bestWall = 0;
    double sumCpu = 0;
    bool deterministic = true;
};

PhaseResult
runPhase(const char *label, std::uint32_t shards, const Csr &m,
         const Partition1D &part, std::uint32_t nodes, std::uint32_t k,
         int repeats)
{
    PhaseResult ph;
    std::printf("%s\n%-6s %14s %12s %12s %14s\n", label, "run",
                "events", "cpu(s)", "wall(s)", "events/s(wall)");
    for (int r = 0; r < repeats; ++r) {
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.simShards = shards;
        // The perf harness measures the batched-execution engine (the
        // configuration the paper-scale runs use); NETSPARSE_PERF_EXACT=1
        // falls back to per-event execution for comparison.
        const char *exact = std::getenv("NETSPARSE_PERF_EXACT");
        cfg.eventBatching = !(exact && *exact && *exact != '0');
        double cpu0 = cpuSeconds(), wall0 = wallSeconds();
        GatherRunResult res = ClusterSim(cfg).runGather(m, part, k);
        double cpu = cpuSeconds() - cpu0, wall = wallSeconds() - wall0;

        if (r == 0) {
            ph.events = res.executedEvents;
            ph.comm = res.commTicks;
            ph.epochs = res.epochs;
            ph.shards = res.simShards;
        } else if (res.executedEvents != ph.events ||
                   res.commTicks != ph.comm) {
            ph.deterministic = false;
        }
        if (r == 0 || cpu < ph.bestCpu)
            ph.bestCpu = cpu;
        if (r == 0 || wall < ph.bestWall)
            ph.bestWall = wall;
        ph.sumCpu += cpu;
        std::printf("%-6d %14llu %12.3f %12.3f %14.0f\n", r,
                    (unsigned long long)res.executedEvents, cpu, wall,
                    res.executedEvents / wall);
    }
    std::printf("\n");
    return ph;
}

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::string out = "BENCH_perf.json";
    if (const char *env = std::getenv("NETSPARSE_PERF_OUT"); env && *env)
        out = env;
    int repeats = 3;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            out = argv[i + 1];
        else if (std::string(argv[i]) == "--repeats")
            repeats = std::max(1, std::atoi(argv[i + 1]));
    }

    const std::uint32_t nodes = 128;
    const double scale = 1.0;
    const std::uint32_t k = 16;
    const std::uint32_t racks = 8; // 128 nodes / 16 per rack
    const std::uint32_t host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    std::uint32_t par_shards = std::min(racks, host_cores);
    if (const char *env = std::getenv("NETSPARSE_PERF_SHARDS");
        env && *env)
        par_shards = std::max(1, std::atoi(env));

    banner("Simulator throughput (canonical gather)", "no figure");
    std::printf("(arabic, %u nodes, matrix scale %.2f, K=%u, %d "
                "repeats, %u host cores)\n\n",
                nodes, scale, k, repeats, host_cores);

    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, scale);
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    PhaseResult seq = runPhase("sequential (1 shard)", 1, m, part, nodes,
                               k, repeats);
    PhaseResult par = runPhase("parallel", par_shards, m, part, nodes, k,
                               repeats);

    bool deterministic = seq.deterministic && par.deterministic &&
                         par.events == seq.events &&
                         par.comm == seq.comm;

    double events_per_sec = seq.events / seq.bestCpu;
    double wall_speedup = seq.bestWall / par.bestWall;
    std::printf("sequential best : %.0f events/s (cpu), %.3f s cpu, "
                "%.3f s wall\n",
                events_per_sec, seq.bestCpu, seq.bestWall);
    std::printf("parallel best   : %.0f events/s (wall), %.3f s wall, "
                "%u shards, %llu epochs\n",
                par.events / par.bestWall, par.bestWall, par.shards,
                (unsigned long long)par.epochs);
    std::printf("wall speedup    : %.2fx on %u cores, commTicks %llu%s\n",
                wall_speedup, host_cores, (unsigned long long)seq.comm,
                deterministic ? "" : "  [NON-DETERMINISTIC]");

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"netsparse-perf-v2\",\n"
        "  \"benchmark\": \"canonical-gather\",\n"
        "  \"matrix\": \"arabic\",\n"
        "  \"nodes\": %u,\n"
        "  \"scale\": %.2f,\n"
        "  \"k\": %u,\n"
        "  \"repeats\": %d,\n"
        "  \"executed_events\": %llu,\n"
        "  \"comm_ticks\": %llu,\n"
        "  \"best_cpu_seconds\": %.6f,\n"
        "  \"mean_cpu_seconds\": %.6f,\n"
        "  \"best_wall_seconds\": %.6f,\n"
        "  \"events_per_second\": %.0f,\n"
        "  \"host_cores\": %u,\n"
        "  \"parallel_shards\": %u,\n"
        "  \"parallel_epochs\": %llu,\n"
        "  \"parallel_best_wall_seconds\": %.6f,\n"
        "  \"parallel_events_per_second_wall\": %.0f,\n"
        "  \"wall_speedup\": %.3f,\n"
        "  \"deterministic\": %s\n"
        "}\n",
        nodes, scale, k, repeats, (unsigned long long)seq.events,
        (unsigned long long)seq.comm, seq.bestCpu,
        seq.sumCpu / repeats, seq.bestWall, events_per_sec, host_cores,
        par.shards, (unsigned long long)par.epochs, par.bestWall,
        par.events / par.bestWall, wall_speedup,
        deterministic ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return deterministic ? 0 : 2;
}
