/**
 * @file
 * Simulator throughput regression harness (no paper figure): runs the
 * canonical gather (arabic at scale 1.0, 128 nodes, K=16) a few times
 * sequentially at exact and hybrid fidelity and again under the
 * parallel engine, and reports events/second plus wall and CPU time,
 * writing the result as BENCH_perf.json (schema netsparse-perf-v3) for
 * CI trend tracking and the scripts/check_perf_regression.py gate.
 *
 * Sequential events/sec is computed against CPU time
 * (CLOCK_PROCESS_CPUTIME_ID) because CI runners and shared dev boxes
 * make wall clock noisy; wall time is reported alongside. The parallel
 * phase is judged on wall clock - that is the quantity sharding buys -
 * with the shard count picked as min(racks, host cores) unless
 * NETSPARSE_PERF_SHARDS overrides it. On a single-core host the
 * parallel phase is skipped and wall_speedup is null: the shard workers
 * would timeslice one core, so the ratio would measure scheduler noise,
 * not the engine.
 *
 * Fidelity delta gate (docs/performance.md): the exact and hybrid
 * phases must execute the same logical event count and move the same
 * wire bytes, and their commTicks and tail goodput must agree within
 * kFidelityEps. The measured deltas are recorded in the JSON so CI can
 * upload them as an artifact. Every run's commTicks and event count
 * must also be identical across repeats AND across engines - the
 * harness exits nonzero otherwise, so it doubles as a determinism
 * check of the conservative synchronization.
 *
 * NETSPARSE_PERF_PAPER=1 appends a paper-scale smoke phase (streamed
 * arabic at scale 28, 1024 nodes, batched events - the docs/scaling.md
 * preset) at exact and hybrid fidelity, one run each.
 *
 * Output path: --out FILE, else NETSPARSE_PERF_OUT, else
 * ./BENCH_perf.json. Exit codes: 0 ok, 2 non-deterministic, 3 fidelity
 * delta gate failed. See docs/performance.md.
 */

#include <chrono>
#include <cmath>
#include <ctime>
#include <string>
#include <thread>

#include "bench_common.hh"
#include "runtime/cluster.hh"
#include "sparse/stream_gen.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

/** Relative tolerance of the exact-vs-hybrid timing statistics. */
constexpr double kFidelityEps = 0.02;

double
cpuSeconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v && *v != '0';
}

struct PhaseResult
{
    std::uint64_t events = 0;
    Tick comm = 0;
    std::uint64_t epochs = 0;
    std::uint32_t shards = 1;
    double bestCpu = 0;
    double bestWall = 0;
    double sumCpu = 0;
    bool deterministic = true;
    std::uint64_t wireBytes = 0;
    double goodput = 0;
    std::uint64_t flowPackets = 0;
    std::uint64_t flowDemotions = 0;
};

PhaseResult
runPhase(const char *label, const ClusterConfig &base, const Csr &m,
         const Partition1D &part, std::uint32_t k, int repeats)
{
    PhaseResult ph;
    std::printf("%s\n%-6s %14s %12s %12s %14s\n", label, "run",
                "events", "cpu(s)", "wall(s)", "events/s(wall)");
    for (int r = 0; r < repeats; ++r) {
        ClusterConfig cfg = base;
        double cpu0 = cpuSeconds(), wall0 = wallSeconds();
        GatherRunResult res = ClusterSim(cfg).runGather(m, part, k);
        double cpu = cpuSeconds() - cpu0, wall = wallSeconds() - wall0;

        if (r == 0) {
            ph.events = res.executedEvents;
            ph.comm = res.commTicks;
            ph.epochs = res.epochs;
            ph.shards = res.simShards;
            ph.wireBytes = res.totalWireBytes;
            ph.goodput = res.tailGoodput;
            ph.flowPackets = res.flowPackets;
            ph.flowDemotions = res.flowDemotions;
        } else if (res.executedEvents != ph.events ||
                   res.commTicks != ph.comm) {
            ph.deterministic = false;
        }
        if (r == 0 || cpu < ph.bestCpu)
            ph.bestCpu = cpu;
        if (r == 0 || wall < ph.bestWall)
            ph.bestWall = wall;
        ph.sumCpu += cpu;
        std::printf("%-6d %14llu %12.3f %12.3f %14.0f\n", r,
                    (unsigned long long)res.executedEvents, cpu, wall,
                    res.executedEvents / wall);
    }
    std::printf("\n");
    return ph;
}

double
relDelta(double a, double b)
{
    return a != 0.0 ? std::fabs(b - a) / std::fabs(a)
                    : std::fabs(b - a);
}

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::string out = "BENCH_perf.json";
    if (const char *env = std::getenv("NETSPARSE_PERF_OUT"); env && *env)
        out = env;
    int repeats = 3;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            out = argv[i + 1];
        else if (std::string(argv[i]) == "--repeats")
            repeats = std::max(1, std::atoi(argv[i + 1]));
    }

    const std::uint32_t nodes = 128;
    const double scale = 1.0;
    const std::uint32_t k = 16;
    const std::uint32_t racks = 8; // 128 nodes / 16 per rack
    const std::uint32_t host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    std::uint32_t par_shards = std::min(racks, host_cores);
    bool shards_forced = false;
    if (const char *env = std::getenv("NETSPARSE_PERF_SHARDS");
        env && *env) {
        par_shards = std::max(1, std::atoi(env));
        shards_forced = true;
    }
    // One core cannot exhibit a parallel speedup - the workers would
    // timeslice it - so skip the phase unless the user forced a shard
    // count, and report wall_speedup as null.
    bool run_parallel = host_cores > 1 || shards_forced;

    banner("Simulator throughput (canonical gather)", "no figure");
    std::printf("(arabic, %u nodes, matrix scale %.2f, K=%u, %d "
                "repeats, %u host cores)\n\n",
                nodes, scale, k, repeats, host_cores);

    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, scale);
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterConfig base = defaultClusterConfig(nodes);
    base.simShards = 1;
    // The perf harness measures the batched-execution engine (the
    // configuration the paper-scale runs use); NETSPARSE_PERF_EXACT=1
    // falls back to per-event execution for comparison.
    base.eventBatching = !envSet("NETSPARSE_PERF_EXACT");

    PhaseResult seq = runPhase("sequential (1 shard, exact fidelity)",
                               base, m, part, k, repeats);

    ClusterConfig hyb_cfg = base;
    hyb_cfg.fidelity = FidelityMode::Hybrid;
    PhaseResult hyb = runPhase("sequential (1 shard, hybrid fidelity)",
                               hyb_cfg, m, part, k, repeats);

    PhaseResult par;
    if (run_parallel) {
        ClusterConfig par_cfg = base;
        par_cfg.simShards = par_shards;
        par = runPhase("parallel (exact fidelity)", par_cfg, m, part, k,
                       repeats);
    }

    bool deterministic = seq.deterministic && hyb.deterministic &&
                         (!run_parallel || (par.deterministic &&
                                            par.events == seq.events &&
                                            par.comm == seq.comm));

    // Fidelity delta gate: hybrid must preserve the logical event and
    // byte accounting exactly, and the timing statistics within eps.
    double comm_delta = relDelta(static_cast<double>(seq.comm),
                                 static_cast<double>(hyb.comm));
    double goodput_delta = relDelta(seq.goodput, hyb.goodput);
    bool events_equal = hyb.events == seq.events;
    bool bytes_equal = hyb.wireBytes == seq.wireBytes;
    bool gate_pass = events_equal && bytes_equal &&
                     comm_delta <= kFidelityEps &&
                     goodput_delta <= kFidelityEps;

    double events_per_sec = seq.events / seq.bestCpu;
    double hybrid_events_per_sec = hyb.events / hyb.bestCpu;
    double hybrid_cpu_speedup = hyb.bestCpu > 0
                                    ? seq.bestCpu / hyb.bestCpu
                                    : 0.0;
    std::printf("sequential best : %.0f events/s (cpu), %.3f s cpu, "
                "%.3f s wall\n",
                events_per_sec, seq.bestCpu, seq.bestWall);
    std::printf("hybrid best     : %.0f events/s (cpu), %.3f s cpu, "
                "%.2fx vs exact, %llu flow pkts, %llu demotions\n",
                hybrid_events_per_sec, hyb.bestCpu, hybrid_cpu_speedup,
                (unsigned long long)hyb.flowPackets,
                (unsigned long long)hyb.flowDemotions);
    std::printf("fidelity deltas : commTicks %.2e, goodput %.2e "
                "(eps %.2g) -> %s\n",
                comm_delta, goodput_delta, kFidelityEps,
                gate_pass ? "PASS" : "FAIL");
    if (run_parallel) {
        std::printf("parallel best   : %.0f events/s (wall), %.3f s "
                    "wall, %u shards, %llu epochs\n",
                    par.events / par.bestWall, par.bestWall, par.shards,
                    (unsigned long long)par.epochs);
        std::printf("wall speedup    : %.2fx on %u cores, commTicks "
                    "%llu%s\n",
                    seq.bestWall / par.bestWall, host_cores,
                    (unsigned long long)seq.comm,
                    deterministic ? "" : "  [NON-DETERMINISTIC]");
    } else {
        std::printf("parallel phase  : skipped (single-core host), "
                    "commTicks %llu%s\n",
                    (unsigned long long)seq.comm,
                    deterministic ? "" : "  [NON-DETERMINISTIC]");
    }

    // Optional paper-scale smoke (docs/scaling.md preset): streamed
    // generation, batched events, one run per fidelity.
    bool paper = envSet("NETSPARSE_PERF_PAPER");
    PhaseResult pseq, phyb;
    std::uint64_t paper_nnz = 0;
    double paper_events_delta = 0.0, paper_comm_delta = 0.0;
    const std::uint32_t paper_nodes = 1024;
    const double paper_scale = 28.0;
    if (paper) {
        banner("Paper-scale smoke (streamed)", "no figure");
        PartitionedMatrix pm = buildPartitionedBenchmark(
            MatrixKind::Arabic, paper_scale, paper_nodes);
        paper_nnz = pm.nnz;
        std::printf("(arabic, %u nodes, matrix scale %.1f, %llu nnz, "
                    "batched events)\n\n",
                    paper_nodes, paper_scale,
                    (unsigned long long)paper_nnz);
        auto run_paper = [&](const char *label, FidelityMode fid) {
            // Stream generation is cheap relative to the run but the
            // workload is consumed by runGather, so regenerate per run.
            PartitionedMatrix gen = buildPartitionedBenchmark(
                MatrixKind::Arabic, paper_scale, paper_nodes);
            GatherWorkload work;
            work.numIdxs = gen.cols;
            work.part = gen.part;
            work.streams = gen.takeStreams();
            ClusterConfig cfg = defaultClusterConfig(paper_nodes);
            cfg.simShards = 1;
            cfg.eventBatching = true;
            cfg.fidelity = fid;
            PhaseResult ph;
            double cpu0 = cpuSeconds(), wall0 = wallSeconds();
            GatherRunResult res =
                ClusterSim(cfg).runGather(std::move(work), k);
            ph.bestCpu = cpuSeconds() - cpu0;
            ph.bestWall = wallSeconds() - wall0;
            ph.sumCpu = ph.bestCpu;
            ph.events = res.executedEvents;
            ph.comm = res.commTicks;
            ph.wireBytes = res.totalWireBytes;
            ph.goodput = res.tailGoodput;
            ph.flowPackets = res.flowPackets;
            ph.flowDemotions = res.flowDemotions;
            std::printf("%-28s %14llu events %10.3f s cpu %10.3f s "
                        "wall %12.0f events/s\n",
                        label, (unsigned long long)ph.events, ph.bestCpu,
                        ph.bestWall, ph.events / ph.bestWall);
            return ph;
        };
        pseq = run_paper("paper-scale exact", FidelityMode::Exact);
        phyb = run_paper("paper-scale hybrid", FidelityMode::Hybrid);
        std::printf("paper-scale hybrid speedup: %.2fx cpu, "
                    "%.2fx wall\n",
                    pseq.bestCpu / phyb.bestCpu,
                    pseq.bestWall / phyb.bestWall);
        // Under batched execution the event count is not an exact
        // invariant: trains hold regime-boundary packets past their
        // exact arrival, so packetization can drift a little between
        // the two runs (docs/performance.md). Hold it - and the
        // simulated time - to the same epsilon as the timing gate.
        paper_events_delta =
            relDelta(static_cast<double>(pseq.events),
                     static_cast<double>(phyb.events));
        paper_comm_delta = relDelta(static_cast<double>(pseq.comm),
                                    static_cast<double>(phyb.comm));
        bool paper_pass = paper_events_delta <= kFidelityEps &&
                          paper_comm_delta <= kFidelityEps;
        std::printf("paper-scale deltas: events %.2e, commTicks %.2e "
                    "(eps %.2g) -> %s\n\n",
                    paper_events_delta, paper_comm_delta, kFidelityEps,
                    paper_pass ? "PASS" : "FAIL");
        gate_pass = gate_pass && paper_pass;
    }

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"netsparse-perf-v3\",\n"
        "  \"benchmark\": \"canonical-gather\",\n"
        "  \"matrix\": \"arabic\",\n"
        "  \"nodes\": %u,\n"
        "  \"scale\": %.2f,\n"
        "  \"k\": %u,\n"
        "  \"repeats\": %d,\n"
        "  \"executed_events\": %llu,\n"
        "  \"comm_ticks\": %llu,\n"
        "  \"best_cpu_seconds\": %.6f,\n"
        "  \"mean_cpu_seconds\": %.6f,\n"
        "  \"best_wall_seconds\": %.6f,\n"
        "  \"events_per_second\": %.0f,\n"
        "  \"host_cores\": %u,\n",
        nodes, scale, k, repeats, (unsigned long long)seq.events,
        (unsigned long long)seq.comm, seq.bestCpu, seq.sumCpu / repeats,
        seq.bestWall, events_per_sec, host_cores);
    if (run_parallel) {
        std::fprintf(
            f,
            "  \"parallel_shards\": %u,\n"
            "  \"parallel_epochs\": %llu,\n"
            "  \"parallel_best_wall_seconds\": %.6f,\n"
            "  \"parallel_events_per_second_wall\": %.0f,\n"
            "  \"wall_speedup\": %.3f,\n",
            par.shards, (unsigned long long)par.epochs, par.bestWall,
            par.events / par.bestWall, seq.bestWall / par.bestWall);
    } else {
        std::fprintf(f,
                     "  \"parallel_shards\": null,\n"
                     "  \"parallel_epochs\": null,\n"
                     "  \"parallel_best_wall_seconds\": null,\n"
                     "  \"parallel_events_per_second_wall\": null,\n"
                     "  \"wall_speedup\": null,\n");
    }
    std::fprintf(
        f,
        "  \"fidelity\": {\n"
        "    \"hybrid_best_cpu_seconds\": %.6f,\n"
        "    \"hybrid_events_per_second\": %.0f,\n"
        "    \"hybrid_cpu_speedup\": %.3f,\n"
        "    \"flow_packets\": %llu,\n"
        "    \"flow_demotions\": %llu,\n"
        "    \"epsilon\": %.4f,\n"
        "    \"comm_ticks_rel_delta\": %.6e,\n"
        "    \"goodput_rel_delta\": %.6e,\n"
        "    \"executed_events_equal\": %s,\n"
        "    \"wire_bytes_equal\": %s,\n"
        "    \"gate_pass\": %s\n"
        "  },\n",
        hyb.bestCpu, hybrid_events_per_sec, hybrid_cpu_speedup,
        (unsigned long long)hyb.flowPackets,
        (unsigned long long)hyb.flowDemotions, kFidelityEps, comm_delta,
        goodput_delta, events_equal ? "true" : "false",
        bytes_equal ? "true" : "false", gate_pass ? "true" : "false");
    if (paper) {
        std::fprintf(
            f,
            "  \"paper_scale\": {\n"
            "    \"nodes\": %u,\n"
            "    \"scale\": %.1f,\n"
            "    \"nnz\": %llu,\n"
            "    \"exact_wall_seconds\": %.6f,\n"
            "    \"exact_cpu_seconds\": %.6f,\n"
            "    \"hybrid_wall_seconds\": %.6f,\n"
            "    \"hybrid_cpu_seconds\": %.6f,\n"
            "    \"hybrid_wall_speedup\": %.3f,\n"
            "    \"executed_events\": %llu,\n"
            "    \"hybrid_executed_events\": %llu,\n"
            "    \"events_rel_delta\": %.6e,\n"
            "    \"comm_ticks_rel_delta\": %.6e,\n"
            "    \"flow_packets\": %llu\n"
            "  },\n",
            paper_nodes, paper_scale, (unsigned long long)paper_nnz,
            pseq.bestWall, pseq.bestCpu, phyb.bestWall, phyb.bestCpu,
            pseq.bestWall / phyb.bestWall,
            (unsigned long long)pseq.events,
            (unsigned long long)phyb.events, paper_events_delta,
            paper_comm_delta,
            (unsigned long long)phyb.flowPackets);
    } else {
        std::fprintf(f, "  \"paper_scale\": null,\n");
    }
    std::fprintf(f, "  \"deterministic\": %s\n}\n",
                 deterministic ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    if (!deterministic)
        return 2;
    return gate_pass ? 0 : 3;
}
