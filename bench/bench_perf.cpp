/**
 * @file
 * Simulator throughput regression harness (no paper figure): runs the
 * canonical gather (arabic at scale 1.0, 128 nodes, K=16) a few times
 * and reports events/second plus wall and CPU time, writing the result
 * as BENCH_perf.json (schema netsparse-perf-v1) for CI trend tracking.
 *
 * Events/sec is computed against CPU time (CLOCK_PROCESS_CPUTIME_ID)
 * because CI runners and shared dev boxes make wall clock noisy; wall
 * time is reported alongside for reference. The commTicks of every run
 * must be identical - the harness exits nonzero otherwise, so it doubles
 * as a cheap determinism check.
 *
 * Output path: --out FILE, else NETSPARSE_PERF_OUT, else
 * ./BENCH_perf.json. See docs/performance.md.
 */

#include <chrono>
#include <ctime>
#include <string>

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

namespace {

double
cpuSeconds()
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::string out = "BENCH_perf.json";
    if (const char *env = std::getenv("NETSPARSE_PERF_OUT"); env && *env)
        out = env;
    int repeats = 3;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            out = argv[i + 1];
        else if (std::string(argv[i]) == "--repeats")
            repeats = std::max(1, std::atoi(argv[i + 1]));
    }

    const std::uint32_t nodes = 128;
    const double scale = 1.0;
    const std::uint32_t k = 16;
    banner("Simulator throughput (canonical gather)", "no figure");
    std::printf("(arabic, %u nodes, matrix scale %.2f, K=%u, %d "
                "repeats)\n\n",
                nodes, scale, k, repeats);

    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, scale);
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    std::uint64_t events = 0;
    Tick comm = 0;
    bool deterministic = true;
    double best_cpu = 0, best_wall = 0, sum_cpu = 0;
    std::printf("%-6s %14s %12s %12s %14s\n", "run", "events", "cpu(s)",
                "wall(s)", "events/s(cpu)");
    for (int r = 0; r < repeats; ++r) {
        ClusterConfig cfg = defaultClusterConfig(nodes);
        double cpu0 = cpuSeconds(), wall0 = wallSeconds();
        GatherRunResult res = ClusterSim(cfg).runGather(m, part, k);
        double cpu = cpuSeconds() - cpu0, wall = wallSeconds() - wall0;

        if (r == 0) {
            events = res.executedEvents;
            comm = res.commTicks;
        } else if (res.executedEvents != events ||
                   res.commTicks != comm) {
            deterministic = false;
        }
        if (r == 0 || cpu < best_cpu)
            best_cpu = cpu;
        if (r == 0 || wall < best_wall)
            best_wall = wall;
        sum_cpu += cpu;
        std::printf("%-6d %14llu %12.3f %12.3f %14.0f\n", r,
                    (unsigned long long)res.executedEvents, cpu, wall,
                    res.executedEvents / cpu);
    }

    double events_per_sec = events / best_cpu;
    std::printf("\nbest: %.0f events/s (cpu), %.3f s cpu, %.3f s wall, "
                "commTicks %llu%s\n",
                events_per_sec, best_cpu, best_wall,
                (unsigned long long)comm,
                deterministic ? "" : "  [NON-DETERMINISTIC]");

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"netsparse-perf-v1\",\n"
        "  \"benchmark\": \"canonical-gather\",\n"
        "  \"matrix\": \"arabic\",\n"
        "  \"nodes\": %u,\n"
        "  \"scale\": %.2f,\n"
        "  \"k\": %u,\n"
        "  \"repeats\": %d,\n"
        "  \"executed_events\": %llu,\n"
        "  \"comm_ticks\": %llu,\n"
        "  \"best_cpu_seconds\": %.6f,\n"
        "  \"mean_cpu_seconds\": %.6f,\n"
        "  \"best_wall_seconds\": %.6f,\n"
        "  \"events_per_second\": %.0f,\n"
        "  \"deterministic\": %s\n"
        "}\n",
        nodes, scale, k, repeats, (unsigned long long)events,
        (unsigned long long)comm, best_cpu, sum_cpu / repeats, best_wall,
        events_per_sec, deterministic ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return deterministic ? 0 : 2;
}
