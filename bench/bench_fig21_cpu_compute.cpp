/**
 * @file
 * Figure 21: end-to-end SpMM scaling when CPUs (Sapphire-Rapids-like,
 * DDR or HBM) replace the SPADE accelerators, at K=128.
 *
 * Shape to reproduce: all communication schemes look better against
 * slower compute (DDR), and worse against faster compute (HBM); the
 * ordering NetSparse > SAOpt > SUOpt holds everywhere, and NetSparse
 * approaches the ideal line.
 */

#include <array>

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"
#include "runtime/end_to_end.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 128;
    banner("End-to-end SpMM speedup with CPU compute (K=128)",
           "Figure 21");
    std::printf("(%u nodes, matrix scale %.2f)\n\n", nodes, scale);

    struct DevRow
    {
        std::string device;
        double su = 0, sa = 0, ns = 0, ideal = 0;
    };
    auto suite = benchmarkSuite(scale);
    std::vector<std::array<DevRow, 2>> rows(suite.size());
    runSweep(rows.size(), [&](std::size_t i) {
        const auto &bm = suite[i];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);

        BaselineParams bp;
        BaselineResult su = runSuOpt(bm.matrix, part, k, bp);
        BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        GatherRunResult ns = ClusterSim(cfg).runGather(bm.matrix, part, k);
        std::vector<Tick> ns_comm(nodes);
        for (NodeId n = 0; n < nodes; ++n)
            ns_comm[n] = ns.nodes[n].finishTick;

        std::size_t d = 0;
        for (const ComputeDevice &dev : {cpuDdr(), cpuHbm()}) {
            EndToEndConfig e2e{dev, 0.5};
            Tick t1 = singleNodeTime(bm.matrix, k, dev);
            auto speedup = [&](const std::vector<Tick> &comm) {
                EndToEndResult r =
                    composeEndToEnd(bm.matrix, part, k, comm, e2e);
                return static_cast<double>(t1) / r.totalTicks;
            };
            EndToEndResult ideal_r = composeEndToEnd(
                bm.matrix, part, k, std::vector<Tick>(nodes, 0), e2e);
            rows[i][d++] =
                DevRow{dev.name, speedup(su.perNodeTicks),
                       speedup(sa.perNodeTicks), speedup(ns_comm),
                       static_cast<double>(t1) / ideal_r.idealTicks};
        }
    });

    std::printf("%-8s %-8s %9s %9s %9s %9s\n", "matrix", "device",
                "SUOpt", "SAOpt", "NetSparse", "ideal");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        for (const DevRow &r : rows[m]) {
            std::printf("%-8s %-8s %8.1fx %8.1fx %8.1fx %8.1fx\n",
                        suite[m].name.c_str(), r.device.c_str(), r.su,
                        r.sa, r.ns, r.ideal);
        }
    }
    return 0;
}
