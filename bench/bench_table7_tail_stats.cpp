/**
 * @file
 * Table 7: tail-node performance statistics for NetSparse at K=16, plus
 * the comparison columns against SUOpt (traffic) and SAOpt (goodput and
 * PR count).
 *
 * Paper shapes: high F+C rates for the reuse-heavy matrices (arabic,
 * queen, stokes) and a low one for europe; many PRs per packet; cache
 * hit rates highest for arabic/queen/uk and lowest for europe/stokes;
 * NetSparse goodput far above SAOpt's; fewer PRs than SAOpt thanks to
 * node-wide (rather than per-rank) filtering.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(2.0);
    const std::uint32_t k = 16;
    banner("Tail-node statistics for NetSparse (K=16)", "Table 7");
    std::printf("(%u nodes, matrix scale %.2f)\n\n", nodes, scale);

    struct Row
    {
        double fcRate = 0, prPerPkt = 0, cacheHit = 0, goodput = 0;
        double lineUtil = 0, trfcVsSu = 0, saGoodput = 0, prVsSa = 0;
        /** Node finish-time tail percentiles in us, from the same
         *  histogram the stats JSON exports (cluster.finishTimeNs). */
        double finishP99Us = 0, finishP999Us = 0;
    };
    auto suite = benchmarkSuite(scale);
    std::vector<Row> rows(suite.size());
    runSweep(rows.size(), [&](std::size_t i) {
        const auto &bm = suite[i];
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);

        ClusterConfig cfg = defaultClusterConfig(nodes);
        GatherRunResult r = ClusterSim(cfg).runGather(bm.matrix, part, k);
        const NodeRunStats &tail = r.tail();

        BaselineParams bp;
        BaselineResult sa = runSaOpt(bm.matrix, part, k, bp);

        double tail_pr_per_pkt =
            tail.rxPackets ? static_cast<double>(tail.rxResponses +
                                                 tail.rxReads) /
                                 tail.rxPackets
                           : 0.0;
        // SUOpt delivers every non-local property to the tail node.
        double su_bytes = static_cast<double>(bm.matrix.cols -
                                              part.size(r.tailNode)) *
                          4.0 * k;
        double trfc_vs_su =
            tail.rxBytes ? su_bytes / tail.rxBytes : 0.0;

        std::uint64_t ns_prs = 0, sa_prs = 0;
        for (NodeId n = 0; n < nodes; ++n) {
            ns_prs += r.nodes[n].prsIssued;
            sa_prs += sa.perNodePrs[n];
        }
        double pr_vs_sa =
            ns_prs ? static_cast<double>(sa_prs) / ns_prs : 0.0;

        Histogram finish = r.finishTimeHistogram();
        rows[i] = Row{tail.fcRate(),   tail_pr_per_pkt, r.cacheHitRate(),
                      r.tailGoodput,   r.tailLineUtil,  trfc_vs_su,
                      sa.tailGoodput,  pr_vs_sa,
                      finish.percentile(99.0) / 1e3,
                      finish.percentile(99.9) / 1e3};
    });

    std::printf("%-8s %6s %8s %7s %6s %6s %9s %8s %8s %8s %8s\n",
                "matrix", "F+C", "PR/pkt", "cache", "Gput", "LUtil",
                "-TrfcSU", "GputSA", "-#PRvSA", "p99FT", "p99.9FT");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        const Row &r = rows[m];
        std::printf("%-8s %5.0f%% %8.1f %6.0f%% %5.0f%% %5.0f%% %8.1fx "
                    "%7.1f%% %7.2fx %6.1fus %6.1fus\n",
                    suite[m].name.c_str(), 100.0 * r.fcRate, r.prPerPkt,
                    100.0 * r.cacheHit, 100.0 * r.goodput,
                    100.0 * r.lineUtil, r.trfcVsSu, 100.0 * r.saGoodput,
                    r.prVsSa, r.finishP99Us, r.finishP999Us);
    }
    return 0;
}
