/**
 * @file
 * Figure 10: ideal SAOpt goodput (fraction of the 400 Gbps line) versus
 * the number of cores dedicated to communication, for two property
 * widths. Shape to reproduce: near-linear scaling with cores, yet far
 * from 100% even with 64 high-performance cores.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Ideal SAOpt goodput vs cores per node", "Figure 10");
    BaselineParams p;

    std::printf("%-8s", "cores");
    for (std::uint32_t c = 1; c <= 64; c *= 2)
        std::printf("%9u", c);
    std::printf("\n");
    for (std::uint32_t k : {32u, 128u}) {
        std::printf("K=%-6u", k);
        for (std::uint32_t c = 1; c <= 64; c *= 2)
            std::printf("%8.2f%%", 100.0 * saOptIdealGoodput(c, k, p));
        std::printf("\n");
    }
    std::printf("\n(per-PR software overhead calibrated to %.0f ns)\n",
                ticks::toNs(p.softwareOverheadPerPr));
    return 0;
}
