/**
 * @file
 * google-benchmark microbenchmarks for the core simulator components:
 * event-queue throughput, Property Cache operations, concatenator
 * pushes, Pending PR Table ops, Idx Filter probes, SpMM kernel and
 * matrix generation. These gate the wall-clock cost of the large
 * table/figure reproductions.
 */

#include <benchmark/benchmark.h>

#include "cache/property_cache.hh"
#include "concat/concatenator.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "snic/idx_filter.hh"
#include "snic/pending_table.hh"
#include "sparse/generators.hh"
#include "sparse/kernels.hh"

using namespace netsparse;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>(splitmix64(i) % 100000),
                        [&sum] { ++sum; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1 << 12)->Arg(1 << 16);

void
BM_PropertyCacheLookupInsert(benchmark::State &state)
{
    PropertyCacheConfig cfg;
    cfg.totalBytes = 4 << 20;
    PropertyCache cache(cfg);
    cache.configureForKernel(64);
    Rng rng(1);
    std::vector<PropIdx> idxs(4096);
    for (auto &i : idxs)
        i = rng.uniformInt(0, 1 << 20);
    std::size_t cursor = 0;
    for (auto _ : state) {
        PropIdx idx = idxs[cursor++ & 4095];
        std::uint64_t csum;
        if (!cache.lookup(idx, csum))
            cache.insert(idx, idx);
        benchmark::DoNotOptimize(csum);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PropertyCacheLookupInsert);

void
BM_ConcatenatorPush(benchmark::State &state)
{
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 100 * ticks::ns;
    std::uint64_t packets = 0;
    Concatenator cc(eq, cfg, [&](Packet &&) { ++packets; });
    PropIdx idx = 0;
    for (auto _ : state) {
        PropertyRequest pr;
        pr.type = PrType::Read;
        pr.idx = idx++;
        cc.push(std::move(pr), static_cast<NodeId>(idx % 64));
        if ((idx & 1023) == 0)
            eq.runUntil(eq.now() + 1 * ticks::us);
    }
    benchmark::DoNotOptimize(packets);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcatenatorPush);

void
BM_PendingTableCycle(benchmark::State &state)
{
    PendingPrTable table(256);
    PropIdx idx = 0;
    for (auto _ : state) {
        table.insert(idx);
        benchmark::DoNotOptimize(table.contains(idx));
        table.complete(idx);
        ++idx;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PendingTableCycle);

void
BM_IdxFilterProbe(benchmark::State &state)
{
    IdxFilter filter(1 << 24);
    Rng rng(2);
    std::vector<PropIdx> idxs(4096);
    for (auto &i : idxs)
        i = rng.uniformInt(0, (1 << 24) - 1);
    std::size_t cursor = 0;
    for (auto _ : state) {
        PropIdx idx = idxs[cursor++ & 4095];
        if (!filter.test(idx))
            filter.set(idx);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdxFilterProbe);

void
BM_SpmmKernel(benchmark::State &state)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t k = 16;
    std::vector<float> x(static_cast<std::size_t>(m.cols) * k, 1.0f);
    for (auto _ : state) {
        auto y = spmm(m, x, k);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * m.nnz() * k);
}
BENCHMARK(BM_SpmmKernel);

void
BM_MatrixGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
        benchmark::DoNotOptimize(m.colIdx.data());
        state.counters["nnz"] = static_cast<double>(m.nnz());
    }
}
BENCHMARK(BM_MatrixGeneration);

} // namespace

BENCHMARK_MAIN();
