/**
 * @file
 * Table 1: ratio of useful to redundant property transfers for the SU
 * and SA approaches in a 128-node system, per benchmark matrix.
 *
 * Paper values for reference (1 : redundant-per-useful):
 *   matrix  arabic  europe  queen  stokes  uk
 *   SU      1:1947  1:582   1:74   1:32    1:966
 *   SA      1:27    1:0.02  1:25   1:3.6   1:4.5
 *
 * The synthetic matrices are ~100x smaller than the SuiteSparse
 * originals, and SU redundancy scales with total matrix size, so the
 * absolute SU ratios here are proportionally smaller; the orderings and
 * the SU >> SA gap are the reproduced shape.
 */

#include "analysis/comm_pattern.hh"
#include "bench_common.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    banner("Useful vs redundant property transfers (SU and SA)",
           "Table 1");
    std::uint32_t nodes = benchNodes();
    double scale = benchScale();

    auto suite = benchmarkSuite(scale);
    std::vector<CommPattern> patterns(suite.size());
    runSweep(patterns.size(), [&](std::size_t i) {
        Partition1D part =
            Partition1D::equalRows(suite[i].matrix.rows, nodes);
        patterns[i] = analyzeCommPattern(suite[i].matrix, part);
    });

    std::printf("%-8s %12s %12s %10s %14s %14s\n", "matrix", "nnz",
                "remote-nnz", "useful", "SU(1:x)", "SA(1:x)");
    for (std::size_t m = 0; m < suite.size(); ++m) {
        const CommPattern &cp = patterns[m];
        std::printf("%-8s %12zu %12llu %10llu %14.1f %14.2f\n",
                    suite[m].name.c_str(), suite[m].matrix.nnz(),
                    (unsigned long long)cp.totalRemoteNnz,
                    (unsigned long long)cp.totalUseful,
                    cp.suRedundancyRatio(), cp.saRedundancyRatio());
    }
    return 0;
}
