/**
 * @file
 * Table 8: ablation study. NetSparse mechanisms are applied
 * cumulatively (RIG -> +Filter -> +Coalesce -> +ConcNIC -> +Switch) on
 * arabic (denser reuse) and europe (sparser), for K = 1, 16, 128;
 * speedup and tail traffic reduction are relative to SUOpt.
 *
 * Shape to reproduce: for arabic, filtering/coalescing contribute the
 * bulk; for europe, RIG offload itself is the dominant win and
 * filtering adds little; concatenation helps small K most; the switch
 * stage adds cross-node concatenation and cache traffic savings.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    banner("Cumulative ablation vs SUOpt", "Table 8");
    std::printf("(%u nodes, matrix scale %.2f)\n", nodes, scale);

    for (MatrixKind kind : {MatrixKind::Arabic, MatrixKind::Europe}) {
        Csr m = makeBenchmarkMatrix(kind, scale);
        Partition1D part = Partition1D::equalRows(m.rows, nodes);
        std::printf("\n--- %s ---\n", matrixName(kind));
        std::printf("%-10s", "stage");
        for (std::uint32_t k : {1u, 16u, 128u})
            std::printf("      Spd%-3u -Trfc%-3u  Gput%-3u", k, k, k);
        std::printf("\n");

        for (std::uint32_t stage = 0; stage <= 4; ++stage) {
            std::printf("%-10s", FeatureSet::stageName(stage));
            for (std::uint32_t k : {1u, 16u, 128u}) {
                BaselineParams bp;
                BaselineResult su = runSuOpt(m, part, k, bp);
                ClusterConfig cfg = defaultClusterConfig(nodes);
                cfg.features = FeatureSet::ablationStage(stage);
                GatherRunResult r = ClusterSim(cfg).runGather(m, part, k);

                double spd =
                    static_cast<double>(su.commTicks) / r.commTicks;
                double su_bytes =
                    static_cast<double>(m.cols - part.size(r.tailNode)) *
                    4.0 * k;
                double trfc = r.tail().rxBytes
                                  ? su_bytes / r.tail().rxBytes
                                  : 0.0;
                std::printf("   %7.2fx %7.1fx %6.1f%%", spd, trfc,
                            100.0 * r.tailGoodput);
            }
            std::printf("\n");
        }
    }
    return 0;
}
