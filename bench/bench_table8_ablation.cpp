/**
 * @file
 * Table 8: ablation study. NetSparse mechanisms are applied
 * cumulatively (RIG -> +Filter -> +Coalesce -> +ConcNIC -> +Switch) on
 * arabic (denser reuse) and europe (sparser), for K = 1, 16, 128;
 * speedup and tail traffic reduction are relative to SUOpt.
 *
 * Shape to reproduce: for arabic, filtering/coalescing contribute the
 * bulk; for europe, RIG offload itself is the dominant win and
 * filtering adds little; concatenation helps small K most; the switch
 * stage adds cross-node concatenation and cache traffic savings.
 */

#include "baseline/baselines.hh"
#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    banner("Cumulative ablation vs SUOpt", "Table 8");
    std::printf("(%u nodes, matrix scale %.2f)\n", nodes, scale);

    const MatrixKind kinds[] = {MatrixKind::Arabic, MatrixKind::Europe};
    const std::uint32_t ks[] = {1, 16, 128};
    constexpr std::size_t nm = std::size(kinds);
    constexpr std::size_t nstage = 5;
    constexpr std::size_t nk = std::size(ks);

    std::vector<Csr> mats;
    for (MatrixKind kind : kinds)
        mats.push_back(makeBenchmarkMatrix(kind, scale));

    struct Cell
    {
        double spd = 0, trfc = 0, gput = 0;
    };
    std::vector<Cell> cells(nm * nstage * nk);
    runSweep(cells.size(), [&](std::size_t i) {
        std::size_t mi = i / (nstage * nk);
        std::uint32_t stage =
            static_cast<std::uint32_t>((i / nk) % nstage);
        std::uint32_t k = ks[i % nk];
        const Csr &m = mats[mi];
        Partition1D part = Partition1D::equalRows(m.rows, nodes);

        BaselineParams bp;
        BaselineResult su = runSuOpt(m, part, k, bp);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        cfg.features = FeatureSet::ablationStage(stage);
        GatherRunResult r = ClusterSim(cfg).runGather(m, part, k);

        double spd = static_cast<double>(su.commTicks) / r.commTicks;
        double su_bytes =
            static_cast<double>(m.cols - part.size(r.tailNode)) * 4.0 *
            k;
        double trfc =
            r.tail().rxBytes ? su_bytes / r.tail().rxBytes : 0.0;
        cells[i] = Cell{spd, trfc, r.tailGoodput};
    });

    for (std::size_t mi = 0; mi < nm; ++mi) {
        std::printf("\n--- %s ---\n", matrixName(kinds[mi]));
        std::printf("%-10s", "stage");
        for (std::uint32_t k : ks)
            std::printf("      Spd%-3u -Trfc%-3u  Gput%-3u", k, k, k);
        std::printf("\n");

        for (std::uint32_t stage = 0; stage < nstage; ++stage) {
            std::printf("%-10s", FeatureSet::stageName(stage));
            for (std::size_t ki = 0; ki < nk; ++ki) {
                const Cell &c =
                    cells[mi * nstage * nk + stage * nk + ki];
                std::printf("   %7.2fx %7.1fx %6.1f%%", c.spd, c.trfc,
                            100.0 * c.gput);
            }
            std::printf("\n");
        }
    }
    return 0;
}
