/**
 * @file
 * google-benchmark microbenchmarks of the per-PR hop path - the work
 * every remote idx pays between leaving a RIG client and reaching the
 * wire, measured component by component so a regression in any stage of
 * the hop shows up at micro scale before it moves bench_perf:
 *
 *  - destination resolve: Partition1D::ownerOf on uniform (fast-path
 *    divide) and non-uniform (binary search) partitions;
 *  - concat push: Concatenator::push through CQ fill/expiry flushes,
 *    including the arena-backed PR buffer recycling
 *    (acquirePrBuffer/recyclePrBuffer, sim/arena.hh);
 *  - pending-table bookkeeping: PendingPrTable insert/complete and the
 *    coalescing addWaiter path at a configurable occupancy.
 *
 * Run: build/bench/bench_pr_hop [--benchmark_filter=...]
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "concat/concatenator.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "snic/pending_table.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

using namespace netsparse;

namespace {

/** ownerOf over a uniform partition: the divide fast path. */
void
BM_DestinationResolveUniform(benchmark::State &state)
{
    const std::uint32_t idxs = 1u << 20;
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    Partition1D part = Partition1D::equalRows(idxs, nodes);
    std::uint64_t i = 0, sum = 0;
    for (auto _ : state) {
        std::uint32_t idx =
            static_cast<std::uint32_t>(splitmix64(i++) % idxs);
        sum += part.ownerOf(idx);
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DestinationResolveUniform)->Arg(128)->Arg(1024);

/** ownerOf over a skewed partition: the binary-search slow path. */
void
BM_DestinationResolveSkewed(benchmark::State &state)
{
    const std::uint32_t idxs = 1u << 14;
    const std::uint32_t nodes = static_cast<std::uint32_t>(state.range(0));
    // equalNnz over a matrix with skewed row weights produces the
    // non-uniform boundaries that defeat the divide fast path.
    Csr m;
    m.rows = m.cols = idxs;
    m.rowPtr.resize(idxs + 1);
    for (std::uint32_t r = 0; r < idxs; ++r) {
        std::uint64_t w = 1 + (splitmix64(r) & 0x1F) +
                          (r < idxs / 8 ? 64 : 0);
        m.rowPtr[r + 1] = m.rowPtr[r] + w;
    }
    m.colIdx.resize(m.rowPtr.back(), 0);
    Partition1D part = Partition1D::equalNnz(m, nodes);
    std::uint64_t i = 0, sum = 0;
    for (auto _ : state) {
        std::uint32_t idx =
            static_cast<std::uint32_t>(splitmix64(i++) % idxs);
        sum += part.ownerOf(idx);
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DestinationResolveSkewed)->Arg(128)->Arg(1024);

/**
 * Concatenator::push at a configurable destination fan-out: PRs round-
 * robin over dests, CQs flush by fill or expiry, and every emitted
 * packet's PR buffer goes back through the arena.
 */
void
BM_ConcatPush(benchmark::State &state)
{
    const std::uint32_t dests = static_cast<std::uint32_t>(state.range(0));
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 62500; // ToR delay: 125 cycles at 2 GHz
    std::uint64_t packets = 0;
    Concatenator concat(eq, cfg,
                        [&packets](Packet &&pkt) {
                            ++packets;
                            recyclePrBuffer(std::move(pkt.prs));
                        },
                        "bench");
    std::uint64_t i = 0;
    for (auto _ : state) {
        PropertyRequest pr;
        pr.src = 0;
        pr.idx = static_cast<PropIdx>(splitmix64(i) & 0xFFFFF);
        pr.propBytes = 64;
        concat.push(std::move(pr),
                    static_cast<NodeId>(1 + (i % dests)));
        ++i;
        // Drain the expiry timers now and then so CQs do not just fill
        // monotonically; runUntil advances simulated time past every
        // armed deadline.
        if ((i & 0xFFF) == 0)
            eq.runUntil(eq.now() + 2 * cfg.delay);
    }
    benchmark::DoNotOptimize(packets);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcatPush)->Arg(8)->Arg(127);

/** insert/complete churn at a fixed occupancy: the no-coalesce path. */
void
BM_PendingTableChurn(benchmark::State &state)
{
    // 256 churning idxs toggling present/absent atop the prefill can
    // occupy at most 256 + occupancy entries; 1024 never fills.
    const std::uint32_t capacity = 1024;
    const std::uint32_t occupancy =
        static_cast<std::uint32_t>(state.range(0));
    PendingPrTable table(capacity);
    // Pre-fill to the target occupancy with distinct idxs.
    for (std::uint32_t n = 0; n < occupancy; ++n)
        table.insert(n);
    std::uint64_t i = 0, served = 0;
    for (auto _ : state) {
        PropIdx idx = 0x10000 + (splitmix64(i++) & 0xFF);
        if (table.contains(idx))
            served += table.complete(idx);
        else
            table.insert(idx);
    }
    benchmark::DoNotOptimize(served);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PendingTableChurn)->Arg(16)->Arg(256);

/** The coalescing path: one outstanding PR absorbing waiters. */
void
BM_PendingTableCoalesce(benchmark::State &state)
{
    PendingPrTable table(512);
    table.insert(42);
    std::uint64_t waiters = 0;
    for (auto _ : state) {
        table.addWaiter(42);
        if (++waiters == 0xFFF0) {
            // Retire before the 16-bit waiter counter saturates.
            table.complete(42);
            table.insert(42);
            waiters = 0;
        }
    }
    benchmark::DoNotOptimize(waiters);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PendingTableCoalesce);

} // namespace

BENCHMARK_MAIN();
