/**
 * @file
 * Figure 17: sensitivity to the concatenation delay (the maximum cycles
 * a PR may wait in a Concatenation Queue), as speedup over running with
 * concatenation disabled. The switch delay scales with the NIC delay as
 * in the paper (125/500 ratio).
 *
 * Shape to reproduce: an interior optimum - more waiting packs more PRs
 * per packet until the added latency outweighs the header savings; with
 * very large delays performance drops below the no-concatenation
 * baseline. Matrices with stronger destination locality (queen) gain
 * the most; europe gains the least.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to concatenation delay cycles "
           "(speedup over no concatenation)",
           "Figure 17");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    const std::uint32_t delays[] = {0, 125, 500, 2000, 10000, 50000};
    std::printf("%-8s", "matrix");
    for (auto d : delays)
        std::printf("%9u", d);
    std::printf("\n");

    for (auto &bm : benchmarkSuite(scale)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);

        // Baseline: concatenation fully disabled (solo packets).
        ClusterConfig base_cfg = defaultClusterConfig(nodes);
        base_cfg.features.concatNic = false;
        base_cfg.features.concatSwitch = false;
        base_cfg.features.switchCache = false;
        Tick base =
            ClusterSim(base_cfg).runGather(bm.matrix, part, k).commTicks;

        std::printf("%-8s", bm.name.c_str());
        for (auto d : delays) {
            ClusterConfig cfg = defaultClusterConfig(nodes);
            cfg.nicConcatDelayCycles = d;
            cfg.switchConcatDelayCycles = d / 4;
            GatherRunResult r =
                ClusterSim(cfg).runGather(bm.matrix, part, k);
            std::printf("%8.2fx", static_cast<double>(base) / r.commTicks);
        }
        std::printf("\n");
    }
    return 0;
}
