/**
 * @file
 * Figure 17: sensitivity to the concatenation delay (the maximum cycles
 * a PR may wait in a Concatenation Queue), as speedup over running with
 * concatenation disabled. The switch delay scales with the NIC delay as
 * in the paper (125/500 ratio).
 *
 * Shape to reproduce: an interior optimum - more waiting packs more PRs
 * per packet until the added latency outweighs the header savings; with
 * very large delays performance drops below the no-concatenation
 * baseline. Matrices with stronger destination locality (queen) gain
 * the most; europe gains the least.
 */

#include "bench_common.hh"
#include "runtime/cluster.hh"

using namespace netsparse;
using namespace netsparse::bench;

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    std::uint32_t nodes = benchNodes();
    double scale = benchScale(1.0);
    const std::uint32_t k = 16;
    banner("Sensitivity to concatenation delay cycles "
           "(speedup over no concatenation)",
           "Figure 17");
    std::printf("(%u nodes, matrix scale %.2f, K=%u)\n\n", nodes, scale,
                k);

    const std::uint32_t delays[] = {0, 125, 500, 2000, 10000, 50000};
    constexpr std::size_t nd = std::size(delays);
    std::printf("%-8s", "matrix");
    for (auto d : delays)
        std::printf("%9u", d);
    std::printf("\n");

    // Point 0 of each matrix's row is the no-concatenation baseline;
    // points 1..nd sweep the delay.
    auto suite = benchmarkSuite(scale);
    constexpr std::size_t np = nd + 1;
    std::vector<Tick> times(suite.size() * np);
    runSweep(times.size(), [&](std::size_t i) {
        const auto &bm = suite[i / np];
        std::size_t p = i % np;
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        ClusterConfig cfg = defaultClusterConfig(nodes);
        if (p == 0) {
            cfg.features.concatNic = false;
            cfg.features.concatSwitch = false;
            cfg.features.switchCache = false;
        } else {
            cfg.nicConcatDelayCycles = delays[p - 1];
            cfg.switchConcatDelayCycles = delays[p - 1] / 4;
        }
        times[i] = ClusterSim(cfg).runGather(bm.matrix, part, k).commTicks;
    });

    for (std::size_t m = 0; m < suite.size(); ++m) {
        Tick base = times[m * np];
        std::printf("%-8s", suite[m].name.c_str());
        for (std::size_t d = 1; d <= nd; ++d)
            std::printf("%8.2fx",
                        static_cast<double>(base) / times[m * np + d]);
        std::printf("\n");
    }
    return 0;
}
