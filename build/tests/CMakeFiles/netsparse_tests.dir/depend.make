# Empty dependencies file for netsparse_tests.
# This may be replaced when dependencies are built.
