
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_comm_pattern.cpp" "tests/CMakeFiles/netsparse_tests.dir/analysis/test_comm_pattern.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/analysis/test_comm_pattern.cpp.o.d"
  "/root/repo/tests/baseline/test_baselines.cpp" "tests/CMakeFiles/netsparse_tests.dir/baseline/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/baseline/test_baselines.cpp.o.d"
  "/root/repo/tests/cache/test_property_cache.cpp" "tests/CMakeFiles/netsparse_tests.dir/cache/test_property_cache.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/cache/test_property_cache.cpp.o.d"
  "/root/repo/tests/compute/test_compute.cpp" "tests/CMakeFiles/netsparse_tests.dir/compute/test_compute.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/compute/test_compute.cpp.o.d"
  "/root/repo/tests/concat/test_concat_timing.cpp" "tests/CMakeFiles/netsparse_tests.dir/concat/test_concat_timing.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/concat/test_concat_timing.cpp.o.d"
  "/root/repo/tests/concat/test_concatenator.cpp" "tests/CMakeFiles/netsparse_tests.dir/concat/test_concatenator.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/concat/test_concatenator.cpp.o.d"
  "/root/repo/tests/host/test_verbs.cpp" "tests/CMakeFiles/netsparse_tests.dir/host/test_verbs.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/host/test_verbs.cpp.o.d"
  "/root/repo/tests/hwcost/test_hw_model.cpp" "tests/CMakeFiles/netsparse_tests.dir/hwcost/test_hw_model.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/hwcost/test_hw_model.cpp.o.d"
  "/root/repo/tests/integration/test_distributed_kernels.cpp" "tests/CMakeFiles/netsparse_tests.dir/integration/test_distributed_kernels.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/integration/test_distributed_kernels.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/netsparse_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_fault_injection.cpp" "tests/CMakeFiles/netsparse_tests.dir/integration/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/integration/test_fault_injection.cpp.o.d"
  "/root/repo/tests/integration/test_gather.cpp" "tests/CMakeFiles/netsparse_tests.dir/integration/test_gather.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/integration/test_gather.cpp.o.d"
  "/root/repo/tests/integration/test_latency.cpp" "tests/CMakeFiles/netsparse_tests.dir/integration/test_latency.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/integration/test_latency.cpp.o.d"
  "/root/repo/tests/net/test_link.cpp" "tests/CMakeFiles/netsparse_tests.dir/net/test_link.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/net/test_link.cpp.o.d"
  "/root/repo/tests/net/test_protocol.cpp" "tests/CMakeFiles/netsparse_tests.dir/net/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/net/test_protocol.cpp.o.d"
  "/root/repo/tests/net/test_switch.cpp" "tests/CMakeFiles/netsparse_tests.dir/net/test_switch.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/net/test_switch.cpp.o.d"
  "/root/repo/tests/net/test_switch_pipes.cpp" "tests/CMakeFiles/netsparse_tests.dir/net/test_switch_pipes.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/net/test_switch_pipes.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/netsparse_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/net/test_topology.cpp.o.d"
  "/root/repo/tests/runtime/test_feature_set.cpp" "tests/CMakeFiles/netsparse_tests.dir/runtime/test_feature_set.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/runtime/test_feature_set.cpp.o.d"
  "/root/repo/tests/runtime/test_stats_export.cpp" "tests/CMakeFiles/netsparse_tests.dir/runtime/test_stats_export.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/runtime/test_stats_export.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/netsparse_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_logging.cpp" "tests/CMakeFiles/netsparse_tests.dir/sim/test_logging.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sim/test_logging.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/netsparse_tests.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/netsparse_tests.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sim/test_stats.cpp.o.d"
  "/root/repo/tests/sim/test_types.cpp" "tests/CMakeFiles/netsparse_tests.dir/sim/test_types.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sim/test_types.cpp.o.d"
  "/root/repo/tests/snic/test_idx_filter.cpp" "tests/CMakeFiles/netsparse_tests.dir/snic/test_idx_filter.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/snic/test_idx_filter.cpp.o.d"
  "/root/repo/tests/snic/test_pcie.cpp" "tests/CMakeFiles/netsparse_tests.dir/snic/test_pcie.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/snic/test_pcie.cpp.o.d"
  "/root/repo/tests/snic/test_pending_table.cpp" "tests/CMakeFiles/netsparse_tests.dir/snic/test_pending_table.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/snic/test_pending_table.cpp.o.d"
  "/root/repo/tests/snic/test_rig_unit.cpp" "tests/CMakeFiles/netsparse_tests.dir/snic/test_rig_unit.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/snic/test_rig_unit.cpp.o.d"
  "/root/repo/tests/snic/test_snic.cpp" "tests/CMakeFiles/netsparse_tests.dir/snic/test_snic.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/snic/test_snic.cpp.o.d"
  "/root/repo/tests/sparse/test_coo_csr.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_coo_csr.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_coo_csr.cpp.o.d"
  "/root/repo/tests/sparse/test_generator_properties.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_generator_properties.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_generator_properties.cpp.o.d"
  "/root/repo/tests/sparse/test_generators.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_generators.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_generators.cpp.o.d"
  "/root/repo/tests/sparse/test_kernels.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_kernels.cpp.o.d"
  "/root/repo/tests/sparse/test_mmio.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_mmio.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_mmio.cpp.o.d"
  "/root/repo/tests/sparse/test_partition.cpp" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_partition.cpp.o" "gcc" "tests/CMakeFiles/netsparse_tests.dir/sparse/test_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ns_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ns_host.dir/DependInfo.cmake"
  "/root/repo/build/src/snic/CMakeFiles/ns_snic.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/ns_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ns_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ns_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/concat/CMakeFiles/ns_concat.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ns_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/ns_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
