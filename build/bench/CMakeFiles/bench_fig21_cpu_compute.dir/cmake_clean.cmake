file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_cpu_compute.dir/bench_fig21_cpu_compute.cpp.o"
  "CMakeFiles/bench_fig21_cpu_compute.dir/bench_fig21_cpu_compute.cpp.o.d"
  "bench_fig21_cpu_compute"
  "bench_fig21_cpu_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_cpu_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
