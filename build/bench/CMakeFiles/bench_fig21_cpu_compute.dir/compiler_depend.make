# Empty compiler generated dependencies file for bench_fig21_cpu_compute.
# This may be replaced when dependencies are built.
