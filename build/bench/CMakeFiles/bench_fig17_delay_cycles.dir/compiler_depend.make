# Empty compiler generated dependencies file for bench_fig17_delay_cycles.
# This may be replaced when dependencies are built.
