# Empty dependencies file for bench_fig20_hw_overheads.
# This may be replaced when dependencies are built.
