# Empty compiler generated dependencies file for bench_table2_sa_rate.
# This may be replaced when dependencies are built.
