# Empty dependencies file for bench_table3_headers.
# This may be replaced when dependencies are built.
