file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_headers.dir/bench_table3_headers.cpp.o"
  "CMakeFiles/bench_table3_headers.dir/bench_table3_headers.cpp.o.d"
  "bench_table3_headers"
  "bench_table3_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
