file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_sharing.dir/bench_motivation_sharing.cpp.o"
  "CMakeFiles/bench_motivation_sharing.dir/bench_motivation_sharing.cpp.o.d"
  "bench_motivation_sharing"
  "bench_motivation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
