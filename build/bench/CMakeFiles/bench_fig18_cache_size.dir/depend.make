# Empty dependencies file for bench_fig18_cache_size.
# This may be replaced when dependencies are built.
