
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_cache_size.cpp" "bench/CMakeFiles/bench_fig18_cache_size.dir/bench_fig18_cache_size.cpp.o" "gcc" "bench/CMakeFiles/bench_fig18_cache_size.dir/bench_fig18_cache_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ns_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ns_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ns_host.dir/DependInfo.cmake"
  "/root/repo/build/src/snic/CMakeFiles/ns_snic.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/ns_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ns_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ns_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/concat/CMakeFiles/ns_concat.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ns_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/ns_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
