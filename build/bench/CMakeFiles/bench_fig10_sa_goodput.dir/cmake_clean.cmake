file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sa_goodput.dir/bench_fig10_sa_goodput.cpp.o"
  "CMakeFiles/bench_fig10_sa_goodput.dir/bench_fig10_sa_goodput.cpp.o.d"
  "bench_fig10_sa_goodput"
  "bench_fig10_sa_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sa_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
