# Empty compiler generated dependencies file for bench_table7_tail_stats.
# This may be replaced when dependencies are built.
