# Empty compiler generated dependencies file for bench_table1_redundancy.
# This may be replaced when dependencies are built.
