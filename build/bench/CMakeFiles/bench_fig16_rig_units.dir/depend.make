# Empty dependencies file for bench_fig16_rig_units.
# This may be replaced when dependencies are built.
