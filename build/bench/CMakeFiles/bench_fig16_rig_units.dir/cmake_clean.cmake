file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_rig_units.dir/bench_fig16_rig_units.cpp.o"
  "CMakeFiles/bench_fig16_rig_units.dir/bench_fig16_rig_units.cpp.o.d"
  "bench_fig16_rig_units"
  "bench_fig16_rig_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_rig_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
