# Empty dependencies file for bench_fig19_imbalance.
# This may be replaced when dependencies are built.
