file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_topologies.dir/bench_fig22_topologies.cpp.o"
  "CMakeFiles/bench_fig22_topologies.dir/bench_fig22_topologies.cpp.o.d"
  "bench_fig22_topologies"
  "bench_fig22_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
