# Empty dependencies file for bench_fig22_topologies.
# This may be replaced when dependencies are built.
