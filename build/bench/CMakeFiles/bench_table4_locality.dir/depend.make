# Empty dependencies file for bench_table4_locality.
# This may be replaced when dependencies are built.
