file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_locality.dir/bench_table4_locality.cpp.o"
  "CMakeFiles/bench_table4_locality.dir/bench_table4_locality.cpp.o.d"
  "bench_table4_locality"
  "bench_table4_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
