file(REMOVE_RECURSE
  "CMakeFiles/ns_runtime.dir/cluster.cc.o"
  "CMakeFiles/ns_runtime.dir/cluster.cc.o.d"
  "CMakeFiles/ns_runtime.dir/distributed_kernels.cc.o"
  "CMakeFiles/ns_runtime.dir/distributed_kernels.cc.o.d"
  "CMakeFiles/ns_runtime.dir/end_to_end.cc.o"
  "CMakeFiles/ns_runtime.dir/end_to_end.cc.o.d"
  "libns_runtime.a"
  "libns_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
