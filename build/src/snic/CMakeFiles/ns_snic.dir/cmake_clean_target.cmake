file(REMOVE_RECURSE
  "libns_snic.a"
)
