file(REMOVE_RECURSE
  "CMakeFiles/ns_snic.dir/rig_unit.cc.o"
  "CMakeFiles/ns_snic.dir/rig_unit.cc.o.d"
  "CMakeFiles/ns_snic.dir/snic.cc.o"
  "CMakeFiles/ns_snic.dir/snic.cc.o.d"
  "libns_snic.a"
  "libns_snic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_snic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
