# Empty dependencies file for ns_snic.
# This may be replaced when dependencies are built.
