
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baselines.cc" "src/baseline/CMakeFiles/ns_baseline.dir/baselines.cc.o" "gcc" "src/baseline/CMakeFiles/ns_baseline.dir/baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/ns_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/concat/CMakeFiles/ns_concat.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ns_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
