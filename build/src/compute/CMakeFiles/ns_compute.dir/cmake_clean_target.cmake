file(REMOVE_RECURSE
  "libns_compute.a"
)
