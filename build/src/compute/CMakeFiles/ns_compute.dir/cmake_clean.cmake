file(REMOVE_RECURSE
  "CMakeFiles/ns_compute.dir/models.cc.o"
  "CMakeFiles/ns_compute.dir/models.cc.o.d"
  "libns_compute.a"
  "libns_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
