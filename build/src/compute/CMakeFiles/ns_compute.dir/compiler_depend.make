# Empty compiler generated dependencies file for ns_compute.
# This may be replaced when dependencies are built.
