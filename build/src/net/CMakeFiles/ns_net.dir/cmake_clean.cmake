file(REMOVE_RECURSE
  "CMakeFiles/ns_net.dir/link.cc.o"
  "CMakeFiles/ns_net.dir/link.cc.o.d"
  "CMakeFiles/ns_net.dir/switch.cc.o"
  "CMakeFiles/ns_net.dir/switch.cc.o.d"
  "CMakeFiles/ns_net.dir/topology.cc.o"
  "CMakeFiles/ns_net.dir/topology.cc.o.d"
  "libns_net.a"
  "libns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
