file(REMOVE_RECURSE
  "libns_host.a"
)
