file(REMOVE_RECURSE
  "CMakeFiles/ns_host.dir/host_node.cc.o"
  "CMakeFiles/ns_host.dir/host_node.cc.o.d"
  "CMakeFiles/ns_host.dir/verbs.cc.o"
  "CMakeFiles/ns_host.dir/verbs.cc.o.d"
  "libns_host.a"
  "libns_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
