# Empty dependencies file for ns_host.
# This may be replaced when dependencies are built.
