# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("sparse")
subdirs("analysis")
subdirs("net")
subdirs("concat")
subdirs("cache")
subdirs("snic")
subdirs("host")
subdirs("compute")
subdirs("baseline")
subdirs("runtime")
subdirs("hwcost")
