file(REMOVE_RECURSE
  "CMakeFiles/ns_concat.dir/concatenator.cc.o"
  "CMakeFiles/ns_concat.dir/concatenator.cc.o.d"
  "libns_concat.a"
  "libns_concat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_concat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
