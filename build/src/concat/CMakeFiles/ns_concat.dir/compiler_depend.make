# Empty compiler generated dependencies file for ns_concat.
# This may be replaced when dependencies are built.
