file(REMOVE_RECURSE
  "libns_concat.a"
)
