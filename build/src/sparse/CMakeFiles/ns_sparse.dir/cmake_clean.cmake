file(REMOVE_RECURSE
  "CMakeFiles/ns_sparse.dir/coo.cc.o"
  "CMakeFiles/ns_sparse.dir/coo.cc.o.d"
  "CMakeFiles/ns_sparse.dir/csr.cc.o"
  "CMakeFiles/ns_sparse.dir/csr.cc.o.d"
  "CMakeFiles/ns_sparse.dir/generators.cc.o"
  "CMakeFiles/ns_sparse.dir/generators.cc.o.d"
  "CMakeFiles/ns_sparse.dir/kernels.cc.o"
  "CMakeFiles/ns_sparse.dir/kernels.cc.o.d"
  "CMakeFiles/ns_sparse.dir/mmio.cc.o"
  "CMakeFiles/ns_sparse.dir/mmio.cc.o.d"
  "CMakeFiles/ns_sparse.dir/partition.cc.o"
  "CMakeFiles/ns_sparse.dir/partition.cc.o.d"
  "libns_sparse.a"
  "libns_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
