# Empty dependencies file for ns_sparse.
# This may be replaced when dependencies are built.
