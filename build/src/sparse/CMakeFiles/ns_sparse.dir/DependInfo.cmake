
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cc" "src/sparse/CMakeFiles/ns_sparse.dir/coo.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/coo.cc.o.d"
  "/root/repo/src/sparse/csr.cc" "src/sparse/CMakeFiles/ns_sparse.dir/csr.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/csr.cc.o.d"
  "/root/repo/src/sparse/generators.cc" "src/sparse/CMakeFiles/ns_sparse.dir/generators.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/generators.cc.o.d"
  "/root/repo/src/sparse/kernels.cc" "src/sparse/CMakeFiles/ns_sparse.dir/kernels.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/kernels.cc.o.d"
  "/root/repo/src/sparse/mmio.cc" "src/sparse/CMakeFiles/ns_sparse.dir/mmio.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/mmio.cc.o.d"
  "/root/repo/src/sparse/partition.cc" "src/sparse/CMakeFiles/ns_sparse.dir/partition.cc.o" "gcc" "src/sparse/CMakeFiles/ns_sparse.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
