file(REMOVE_RECURSE
  "libns_sparse.a"
)
