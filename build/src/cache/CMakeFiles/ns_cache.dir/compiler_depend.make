# Empty compiler generated dependencies file for ns_cache.
# This may be replaced when dependencies are built.
