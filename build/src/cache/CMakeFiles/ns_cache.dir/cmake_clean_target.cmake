file(REMOVE_RECURSE
  "libns_cache.a"
)
