file(REMOVE_RECURSE
  "CMakeFiles/ns_cache.dir/property_cache.cc.o"
  "CMakeFiles/ns_cache.dir/property_cache.cc.o.d"
  "libns_cache.a"
  "libns_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
