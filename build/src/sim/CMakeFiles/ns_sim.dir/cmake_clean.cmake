file(REMOVE_RECURSE
  "CMakeFiles/ns_sim.dir/event_queue.cc.o"
  "CMakeFiles/ns_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ns_sim.dir/logging.cc.o"
  "CMakeFiles/ns_sim.dir/logging.cc.o.d"
  "CMakeFiles/ns_sim.dir/stats.cc.o"
  "CMakeFiles/ns_sim.dir/stats.cc.o.d"
  "libns_sim.a"
  "libns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
