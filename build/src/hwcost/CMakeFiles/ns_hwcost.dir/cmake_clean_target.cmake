file(REMOVE_RECURSE
  "libns_hwcost.a"
)
