# Empty compiler generated dependencies file for ns_hwcost.
# This may be replaced when dependencies are built.
