file(REMOVE_RECURSE
  "CMakeFiles/ns_hwcost.dir/hw_model.cc.o"
  "CMakeFiles/ns_hwcost.dir/hw_model.cc.o.d"
  "libns_hwcost.a"
  "libns_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
