file(REMOVE_RECURSE
  "CMakeFiles/ns_analysis.dir/comm_pattern.cc.o"
  "CMakeFiles/ns_analysis.dir/comm_pattern.cc.o.d"
  "libns_analysis.a"
  "libns_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
