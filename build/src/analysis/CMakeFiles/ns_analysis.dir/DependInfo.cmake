
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/comm_pattern.cc" "src/analysis/CMakeFiles/ns_analysis.dir/comm_pattern.cc.o" "gcc" "src/analysis/CMakeFiles/ns_analysis.dir/comm_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/ns_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
