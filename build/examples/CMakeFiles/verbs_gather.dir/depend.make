# Empty dependencies file for verbs_gather.
# This may be replaced when dependencies are built.
