file(REMOVE_RECURSE
  "CMakeFiles/verbs_gather.dir/verbs_gather.cpp.o"
  "CMakeFiles/verbs_gather.dir/verbs_gather.cpp.o.d"
  "verbs_gather"
  "verbs_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
