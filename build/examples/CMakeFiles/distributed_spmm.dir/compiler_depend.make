# Empty compiler generated dependencies file for distributed_spmm.
# This may be replaced when dependencies are built.
