file(REMOVE_RECURSE
  "CMakeFiles/distributed_spmm.dir/distributed_spmm.cpp.o"
  "CMakeFiles/distributed_spmm.dir/distributed_spmm.cpp.o.d"
  "distributed_spmm"
  "distributed_spmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
