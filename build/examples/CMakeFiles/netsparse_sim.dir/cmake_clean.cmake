file(REMOVE_RECURSE
  "CMakeFiles/netsparse_sim.dir/netsparse_sim.cpp.o"
  "CMakeFiles/netsparse_sim.dir/netsparse_sim.cpp.o.d"
  "netsparse_sim"
  "netsparse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsparse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
