# Empty compiler generated dependencies file for netsparse_sim.
# This may be replaced when dependencies are built.
