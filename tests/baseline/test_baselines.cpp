/** @file Tests for the SUOpt / SAOpt software baseline models. */

#include <gtest/gtest.h>

#include "baseline/baselines.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** Figure 1 matrix (see test_comm_pattern.cpp). */
Csr
figure1()
{
    Coo m;
    m.rows = m.cols = 8;
    m.push(0, 4);
    m.push(1, 1);
    m.push(2, 6);
    m.push(4, 3);
    m.push(5, 3);
    m.push(6, 7);
    m.push(7, 6);
    return Csr::fromCoo(m);
}

} // namespace

TEST(SuOpt, HandComputedVolumeAndTime)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    BaselineParams p;
    BaselineResult r = runSuOpt(m, part, 1, p);

    // Every node receives all 6 non-local properties of 4 B each.
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(r.perNodeRxBytes[n], 24u);
    EXPECT_EQ(r.totalWireBytes, 96u);
    EXPECT_EQ(r.totalPayloadBytes, 96u);
    // 24 B at 0.05 B/ps = 480 ps.
    EXPECT_EQ(r.commTicks, 480u);
    // SUOpt pays no headers: goodput == line utilization == 1 while
    // receiving (the model assumes perfect overlap).
    EXPECT_NEAR(r.tailGoodput, 1.0, 1e-9);
}

TEST(SuOpt, ScalesWithPropertyWidth)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    BaselineParams p;
    BaselineResult k1 = runSuOpt(m, part, 1, p);
    BaselineResult k16 = runSuOpt(m, part, 16, p);
    EXPECT_EQ(k16.totalWireBytes, 16u * k1.totalWireBytes);
    EXPECT_GE(k16.commTicks, 15 * k1.commTicks);
}

TEST(SaOpt, CountsRankFilteredPrs)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    BaselineParams p;
    p.ranksPerNode = 1; // one rank per node: node-perfect filtering
    BaselineResult r = runSaOpt(m, part, 1, p);
    // Unique remote properties: N0 1, N1 1, N2 1 (d/e pre-filtered).
    EXPECT_EQ(r.perNodePrs[0], 1u);
    EXPECT_EQ(r.perNodePrs[1], 1u);
    EXPECT_EQ(r.perNodePrs[2], 1u);
    EXPECT_EQ(r.perNodePrs[3], 0u);
}

TEST(SaOpt, MoreRanksMeansLessCrossRankFiltering)
{
    // With 2 ranks per node, d (row 4) and e (row 5) land in different
    // ranks of N2 and can no longer be deduplicated - exactly the
    // Conveyors limitation Table 7 calls out.
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    BaselineParams p;
    p.ranksPerNode = 2;
    BaselineResult r = runSaOpt(m, part, 1, p);
    EXPECT_EQ(r.perNodePrs[2], 2u);
}

TEST(SaOpt, SoftwareTimeDominatesSmallTransfers)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    BaselineParams p;
    p.ranksPerNode = 1;
    BaselineResult r = runSaOpt(m, part, 1, p);
    // N2 issues 1 and serves 1 -> 2 PRs of software handling.
    Tick expected_sw = 2 * p.softwareOverheadPerPr / p.coresPerNode;
    EXPECT_EQ(r.perNodeTicks[2], expected_sw);
}

TEST(SaOpt, MoreCoresNeverSlower)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Uk, 0.05);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    BaselineParams p;
    Tick prev = maxTick;
    for (std::uint32_t cores : {1u, 4u, 16u, 64u}) {
        p.coresPerNode = cores;
        BaselineResult r = runSaOpt(m, part, 16, p);
        EXPECT_LE(r.commTicks, prev);
        prev = r.commTicks;
    }
}

TEST(SaOpt, BeatsSuOptWhenRankFilteringIsEffective)
{
    // Sparsity-awareness wins when each rank sees enough reuse to
    // pre-filter most PRs and the properties are wide (the paper notes
    // SAOpt can fall below SUOpt at small K - Figure 12, stokes and
    // arabic K=1). Few ranks per node concentrate the reuse.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.5);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    BaselineParams p;
    p.ranksPerNode = 8;
    BaselineResult su = runSuOpt(m, part, 128, p);
    BaselineResult sa = runSaOpt(m, part, 128, p);
    EXPECT_LT(sa.commTicks, su.commTicks);
}

TEST(SaOpt, KDependenceMatchesFigure12)
{
    // SAOpt's edge over SUOpt grows with the property width: SUOpt's
    // redundant bytes scale with K while SAOpt's software cost does not.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.2);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    BaselineParams p;
    double prev = 0.0;
    for (std::uint32_t k : {1u, 16u, 128u}) {
        BaselineResult su = runSuOpt(m, part, k, p);
        BaselineResult sa = runSaOpt(m, part, k, p);
        double rel = static_cast<double>(su.commTicks) / sa.commTicks;
        EXPECT_GT(rel, prev);
        prev = rel;
    }
}

TEST(SaOpt, GoodputModelMatchesFigure10Shape)
{
    BaselineParams p;
    // Linear in the core count until the line saturates.
    double g1 = saOptIdealGoodput(1, 32, p);
    double g2 = saOptIdealGoodput(2, 32, p);
    double g64 = saOptIdealGoodput(64, 32, p);
    EXPECT_NEAR(g2, 2 * g1, 1e-9);
    EXPECT_LT(g64, 1.0); // far from the optimal 100% (paper's point)
    EXPECT_GT(g64, 10 * g1);
    // Wider properties raise goodput for the same PR rate.
    EXPECT_GT(saOptIdealGoodput(64, 128, p),
              saOptIdealGoodput(64, 16, p));
    // Never exceeds the line.
    EXPECT_LE(saOptIdealGoodput(10000, 256, p), 1.0);
}

TEST(NaiveSa, Table2ShapeForWebCrawls)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.1);
    NaiveSaParams p;
    NaiveSaResult r = runNaiveSa2Node(m, 32, p);
    // Paper Table 2: rates well below 1 Gbps, utilization < 1%.
    EXPECT_GT(r.transferRateGbps, 0.05);
    EXPECT_LT(r.transferRateGbps, 5.0);
    EXPECT_LT(r.lineUtilization, 0.05);
    EXPECT_LT(r.goodput, r.lineUtilization);
}

TEST(NaiveSa, SparserMatrixMovesLessData)
{
    NaiveSaParams p;
    NaiveSaResult web =
        runNaiveSa2Node(makeBenchmarkMatrix(MatrixKind::Uk, 0.1), 32, p);
    NaiveSaResult road = runNaiveSa2Node(
        makeBenchmarkMatrix(MatrixKind::Europe, 0.1), 32, p);
    // europe's scan-dominated runs achieve lower transfer rates.
    EXPECT_LT(road.transferRateGbps, web.transferRateGbps);
}
