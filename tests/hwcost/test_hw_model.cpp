/** @file Tests for the hardware area/power model (Section 9.5). */

#include <gtest/gtest.h>

#include "hwcost/hw_model.hh"

using namespace netsparse;

TEST(HwModel, SnicTotalsNearPaperValues)
{
    // Paper: ~1.43 mm^2, ~2.1 W at maximum activity, ~3.5 MB of SRAM.
    HwReport r = snicOverheads();
    EXPECT_GT(r.totalAreaMm2(), 0.9);
    EXPECT_LT(r.totalAreaMm2(), 2.5);
    double watts = r.totalStaticW() + r.totalDynamicW();
    EXPECT_GT(watts, 1.0);
    EXPECT_LT(watts, 4.0);
    double mb = static_cast<double>(r.totalSramBytes()) / (1 << 20);
    EXPECT_GT(mb, 3.0);
    EXPECT_LT(mb, 4.0);
}

TEST(HwModel, L2sDominateSnicAreaRigUnitsDominateDynamicPower)
{
    // Figure 20's qualitative breakdown.
    HwReport r = snicOverheads();
    const HwComponentCost *l2 = nullptr, *rig = nullptr;
    double max_area = 0, max_dyn = 0;
    std::string max_area_name, max_dyn_name;
    for (const auto &c : r.components) {
        if (c.name == "l2-caches")
            l2 = &c;
        if (c.name == "rig-units")
            rig = &c;
        if (c.areaMm2 > max_area) {
            max_area = c.areaMm2;
            max_area_name = c.name;
        }
        if (c.dynamicPowerW > max_dyn) {
            max_dyn = c.dynamicPowerW;
            max_dyn_name = c.name;
        }
    }
    ASSERT_TRUE(l2 && rig);
    EXPECT_EQ(max_area_name, "l2-caches");
    EXPECT_EQ(max_dyn_name, "rig-units");
}

TEST(HwModel, RigUnitBreakdownSumsToOneWithCamOnTop)
{
    // Table 9: the Pending PR Table CAM is the largest structure (53%).
    auto breakdown = rigUnitAreaBreakdown();
    double sum = 0;
    double pend = 0, largest = 0;
    for (const auto &[name, frac] : breakdown) {
        sum += frac;
        largest = std::max(largest, frac);
        if (name == "pending-pr-table")
            pend = frac;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(pend, largest);
    EXPECT_GT(pend, 0.3);
    EXPECT_LT(pend, 0.7);
}

TEST(HwModel, SwitchTotalsNearPaperValues)
{
    // Paper: caches 21.3 mm^2, concatenators 1.5 mm^2, ~10 W combined.
    HwReport r = switchOverheads();
    const HwComponentCost *caches = nullptr, *concat = nullptr;
    for (const auto &c : r.components) {
        if (c.name == "property-caches")
            caches = &c;
        if (c.name == "concat-deconcat")
            concat = &c;
    }
    ASSERT_TRUE(caches && concat);
    EXPECT_NEAR(caches->areaMm2, 21.3, 5.0);
    EXPECT_NEAR(concat->areaMm2, 1.8, 1.5);
    double watts = r.totalStaticW() + r.totalDynamicW();
    EXPECT_GT(watts, 4.0);
    EXPECT_LT(watts, 25.0);
}

TEST(HwModel, CrossbarScalesQuadraticallyWithRadix)
{
    SwitchHwParams small;
    small.crossbarRadix = 16;
    SwitchHwParams big;
    big.crossbarRadix = 64;
    double a_small = 0, a_big = 0;
    for (const auto &c : switchOverheads(small).components)
        if (c.name == "second-crossbar")
            a_small = c.areaMm2;
    for (const auto &c : switchOverheads(big).components)
        if (c.name == "second-crossbar")
            a_big = c.areaMm2;
    EXPECT_NEAR(a_big / a_small, 16.0, 1e-6);
}

TEST(HwModel, TechScalingShrinksAreaAndPower)
{
    double a = TechScaling::areaFactor(45.0, 10.0);
    double p = TechScaling::powerFactor(45.0, 10.0);
    EXPECT_LT(a, 1.0);
    EXPECT_LT(p, 1.0);
    EXPECT_LT(a, p); // area shrinks faster than power
    EXPECT_DOUBLE_EQ(TechScaling::areaFactor(10, 10), 1.0);
    // Going up in feature size grows the design.
    EXPECT_GT(TechScaling::areaFactor(10, 45), 1.0);
}

TEST(HwModel, MoreRigUnitsMoreAreaAndSram)
{
    SnicHwParams few;
    few.numRigUnits = 8;
    SnicHwParams many;
    many.numRigUnits = 64;
    HwReport a = snicOverheads(few);
    HwReport b = snicOverheads(many);
    EXPECT_LT(a.totalAreaMm2(), b.totalAreaMm2());
    EXPECT_LT(a.totalSramBytes(), b.totalSramBytes());
}
