/** @file Tests for the PR concatenation hardware (Section 6.1). */

#include <gtest/gtest.h>

#include <vector>

#include "concat/concatenator.hh"
#include "sim/rng.hh"

using namespace netsparse;

namespace {

PropertyRequest
readPr(PropIdx idx, NodeId src = 0)
{
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.src = src;
    pr.idx = idx;
    pr.propBytes = 64;
    pr.payloadBytes = 0;
    return pr;
}

PropertyRequest
responsePr(PropIdx idx, std::uint32_t payload, NodeId src = 0)
{
    PropertyRequest pr = readPr(idx, src);
    pr.type = PrType::Response;
    pr.propBytes = payload;
    pr.payloadBytes = payload;
    pr.checksum = propertyChecksum(idx);
    return pr;
}

struct Harness
{
    EventQueue eq;
    std::vector<Packet> out;
    ConcatConfig cfg;

    explicit Harness(ConcatConfig c) : cfg(c) {}

    Concatenator
    make()
    {
        return Concatenator(eq, cfg,
                            [this](Packet &&p) { out.push_back(std::move(p)); });
    }
};

} // namespace

TEST(Concatenator, FillsToMtuThenFlushes)
{
    ConcatConfig cfg;
    cfg.delay = 1 * ticks::us;
    Harness h(cfg);
    auto cc = h.make();

    // Read PRs are 18 B; the payload capacity is 1500-62 = 1438 B, so
    // 79 PRs fit (1422 B) and the eager check flushes right there.
    for (int i = 0; i < 79; ++i)
        cc.push(readPr(i), 5);
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_EQ(h.out[0].prs.size(), 79u);
    EXPECT_TRUE(h.out[0].concatenated);
    EXPECT_EQ(h.out[0].dest, 5u);
    EXPECT_LE(h.out[0].wireBytes(cfg.proto), cfg.proto.mtuBytes);
    EXPECT_EQ(cc.flushesByFill(), 1u);
    EXPECT_EQ(cc.pendingPrs(), 0u);
}

TEST(Concatenator, ExpiryFlushesPartialQueue)
{
    ConcatConfig cfg;
    cfg.delay = 500 * ticks::ns;
    Harness h(cfg);
    auto cc = h.make();

    cc.push(readPr(1), 3);
    cc.push(readPr(2), 3);
    EXPECT_TRUE(h.out.empty());
    EXPECT_EQ(cc.pendingPrs(), 2u);

    h.eq.run();
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_EQ(h.out[0].prs.size(), 2u);
    EXPECT_EQ(cc.flushesByExpiry(), 1u);
    // The PRs waited at most the configured delay.
    EXPECT_LE(cc.prWaitTicks().max(), static_cast<double>(cfg.delay));
}

TEST(Concatenator, ExpirationUsesFirstArrivalTime)
{
    ConcatConfig cfg;
    cfg.delay = 1000;
    Harness h(cfg);
    auto cc = h.make();
    cc.push(readPr(1), 0);
    // A later PR does not extend the deadline.
    h.eq.schedule(600, [&] { cc.push(readPr(2), 0); });
    h.eq.run();
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_EQ(h.eq.now(), 1000u);
    EXPECT_EQ(h.out[0].prs.size(), 2u);
}

TEST(Concatenator, SeparateQueuesPerTypeAndDest)
{
    ConcatConfig cfg;
    cfg.delay = 100;
    Harness h(cfg);
    auto cc = h.make();
    cc.push(readPr(1), 1);
    cc.push(readPr(2), 2);
    cc.push(responsePr(3, 64), 1);
    h.eq.run();
    ASSERT_EQ(h.out.size(), 3u);
    // Same-dest read and response were not mixed.
    for (const auto &p : h.out)
        for (const auto &pr : p.prs)
            EXPECT_EQ(pr.type, p.type);
}

TEST(Concatenator, DisabledModeEmitsSoloPackets)
{
    ConcatConfig cfg;
    cfg.enabled = false;
    Harness h(cfg);
    auto cc = h.make();
    cc.push(readPr(1), 7);
    cc.push(responsePr(2, 64), 7);
    ASSERT_EQ(h.out.size(), 2u);
    EXPECT_FALSE(h.out[0].concatenated);
    // Solo read packet: 50 + 10 + 18 = 78 bytes.
    EXPECT_EQ(h.out[0].wireBytes(cfg.proto), 78u);
    EXPECT_EQ(h.out[1].wireBytes(cfg.proto), 142u);
    EXPECT_TRUE(h.eq.empty()); // no timers armed
}

TEST(Concatenator, ZeroDelayFlushesImmediately)
{
    ConcatConfig cfg;
    cfg.delay = 0;
    Harness h(cfg);
    auto cc = h.make();
    cc.push(readPr(1), 4);
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_TRUE(h.out[0].concatenated);
    EXPECT_EQ(h.out[0].prs.size(), 1u);
}

TEST(Concatenator, LargeResponsesPackByPayload)
{
    // 512 B responses: 530 B per PR, capacity 1438 -> 2 per packet.
    ConcatConfig cfg;
    cfg.delay = 100;
    Harness h(cfg);
    auto cc = h.make();
    for (int i = 0; i < 5; ++i)
        cc.push(responsePr(i, 512), 9);
    h.eq.run();
    ASSERT_EQ(h.out.size(), 3u);
    EXPECT_EQ(h.out[0].prs.size(), 2u);
    EXPECT_EQ(h.out[1].prs.size(), 2u);
    EXPECT_EQ(h.out[2].prs.size(), 1u);
    for (const auto &p : h.out)
        EXPECT_LE(p.wireBytes(cfg.proto), cfg.proto.mtuBytes);
}

TEST(Concatenator, OversizedPrPanics)
{
    ConcatConfig cfg;
    Harness h(cfg);
    auto cc = h.make();
    EXPECT_THROW(cc.push(responsePr(1, 2000), 0), std::logic_error);
}

TEST(Concatenator, EqOccupancyIsBoundedByActiveQueues)
{
    ConcatConfig cfg;
    cfg.delay = 10 * ticks::us;
    Harness h(cfg);
    auto cc = h.make();
    const std::uint32_t dests = 50;
    for (NodeId d = 0; d < dests; ++d)
        cc.push(readPr(d), d);
    // One EQ entry per non-empty CQ, as in the hardware design.
    EXPECT_EQ(cc.maxEqOccupancy(), dests);
    h.eq.run();
    EXPECT_EQ(cc.packetsEmitted(), dests);
}

TEST(Concatenator, FlushAllDrainsEverything)
{
    ConcatConfig cfg;
    cfg.delay = 1 * ticks::s; // would otherwise wait forever
    Harness h(cfg);
    auto cc = h.make();
    cc.push(readPr(1), 0);
    cc.push(readPr(2), 1);
    cc.flushAll();
    EXPECT_EQ(h.out.size(), 2u);
    EXPECT_EQ(cc.pendingPrs(), 0u);
    h.eq.run(); // stale timers find newer generations and do nothing
    EXPECT_EQ(h.out.size(), 2u);
}

TEST(Concatenator, StatsAverages)
{
    ConcatConfig cfg;
    cfg.delay = 100;
    Harness h(cfg);
    auto cc = h.make();
    for (int i = 0; i < 10; ++i)
        cc.push(readPr(i), 0);
    h.eq.run();
    EXPECT_EQ(cc.prsPushed(), 10u);
    EXPECT_EQ(cc.packetsEmitted(), 1u);
    EXPECT_DOUBLE_EQ(cc.prsPerPacket().mean(), 10.0);
}

TEST(Concatenator, VirtualizedModeRecyclesPhysicalQueues)
{
    ConcatConfig cfg;
    cfg.delay = 10 * ticks::us;
    cfg.virtualized = true;
    cfg.physicalCqBytes = 128;
    cfg.numPhysicalCqs = 4;
    Harness h(cfg);
    auto cc = h.make();

    // Five destinations each need one physical CQ; the fifth push must
    // evict (flush) the fullest virtual CQ to free a block.
    cc.push(readPr(0), 0);
    cc.push(readPr(1), 0); // dest 0 now the fullest (36 B)
    cc.push(readPr(2), 1);
    cc.push(readPr(3), 2);
    cc.push(readPr(4), 3);
    EXPECT_TRUE(h.out.empty());
    cc.push(readPr(5), 4);
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_EQ(h.out[0].dest, 0u);
    EXPECT_EQ(h.out[0].prs.size(), 2u);
    h.eq.run();
    // Everything eventually leaves.
    std::size_t total = 0;
    for (auto &p : h.out)
        total += p.prs.size();
    EXPECT_EQ(total, 6u);
}

TEST(Concatenator, VirtualizedFillsLikeMtuQueues)
{
    ConcatConfig cfg;
    cfg.delay = 10 * ticks::us;
    cfg.virtualized = true;
    cfg.physicalCqBytes = 128;
    cfg.numPhysicalCqs = 64;
    Harness h(cfg);
    auto cc = h.make();
    for (int i = 0; i < 79; ++i)
        cc.push(readPr(i), 5);
    ASSERT_EQ(h.out.size(), 1u);
    EXPECT_EQ(h.out[0].prs.size(), 79u);
}

TEST(Deconcatenate, ReturnsAllPrs)
{
    Packet p;
    p.dest = 3;
    p.type = PrType::Read;
    p.concatenated = true;
    p.prs.push_back(readPr(1));
    p.prs.push_back(readPr(2));
    auto prs = deconcatenate(std::move(p));
    ASSERT_EQ(prs.size(), 2u);
    EXPECT_EQ(prs[0].idx, 1u);
    EXPECT_EQ(prs[1].idx, 2u);
}

TEST(Concatenator, RandomStreamNeverExceedsMtu)
{
    // Property test: random mixes of PR types, sizes and destinations
    // never produce an oversized packet and never lose a PR.
    ConcatConfig cfg;
    cfg.delay = 300 * ticks::ns;
    Harness h(cfg);
    auto cc = h.make();
    Rng rng(99);
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        NodeId dest = static_cast<NodeId>(rng.uniformInt(0, 15));
        if (rng.uniform() < 0.5) {
            cc.push(readPr(i), dest);
        } else {
            std::uint32_t payload = 4u << rng.uniformInt(0, 7); // 4..512
            cc.push(responsePr(i, payload), dest);
        }
        if (rng.uniform() < 0.01)
            h.eq.runUntil(h.eq.now() + 1 * ticks::us);
    }
    h.eq.run();
    std::size_t total = 0;
    for (const auto &p : h.out) {
        EXPECT_LE(p.wireBytes(cfg.proto), cfg.proto.mtuBytes);
        for (const auto &pr : p.prs) {
            EXPECT_EQ(pr.type, p.type);
        }
        total += p.prs.size();
    }
    EXPECT_EQ(total, static_cast<std::size_t>(n));
    EXPECT_EQ(cc.prsPushed(), static_cast<std::uint64_t>(n));
}
