/**
 * @file
 * Timing-focused tests for the concatenation hardware: expiration
 * ordering, wait-time accounting, and occupancy bookkeeping under
 * interleaved traffic.
 */

#include <gtest/gtest.h>

#include "concat/concatenator.hh"

using namespace netsparse;

namespace {

PropertyRequest
readPr(PropIdx idx)
{
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.idx = idx;
    pr.propBytes = 64;
    return pr;
}

} // namespace

TEST(ConcatTiming, ExpirationsFireInArrivalOrder)
{
    // CQs activated later expire later (the EQ head-check argument of
    // Section 6.1.2 relies on constant delay => FIFO expiry).
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 1000;
    std::vector<NodeId> order;
    Concatenator cc(eq, cfg, [&](Packet &&p) { order.push_back(p.dest); });

    cc.push(readPr(1), 7);
    eq.schedule(100, [&] { cc.push(readPr(2), 8); });
    eq.schedule(200, [&] { cc.push(readPr(3), 9); });
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 7u);
    EXPECT_EQ(order[1], 8u);
    EXPECT_EQ(order[2], 9u);
    EXPECT_EQ(eq.now(), 1200u);
}

TEST(ConcatTiming, WaitTimesAreMeasuredPerPr)
{
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 1000;
    Concatenator cc(eq, cfg, [](Packet &&) {});
    cc.push(readPr(1), 0);                            // waits 1000
    eq.schedule(600, [&] { cc.push(readPr(2), 0); }); // waits 400
    eq.run();
    EXPECT_EQ(cc.prWaitTicks().count(), 2u);
    EXPECT_DOUBLE_EQ(cc.prWaitTicks().max(), 1000.0);
    EXPECT_DOUBLE_EQ(cc.prWaitTicks().min(), 400.0);
    EXPECT_DOUBLE_EQ(cc.prWaitTicks().mean(), 700.0);
}

TEST(ConcatTiming, OccupancyReturnsToZero)
{
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 500;
    Concatenator cc(eq, cfg, [](Packet &&) {});
    for (int d = 0; d < 10; ++d)
        for (int i = 0; i < 5; ++i)
            cc.push(readPr(i), d);
    EXPECT_EQ(cc.pendingPrs(), 50u);
    EXPECT_EQ(cc.occupiedBytes(), 50u * 18u);
    EXPECT_GT(cc.maxOccupiedBytes(), 0u);
    eq.run();
    EXPECT_EQ(cc.pendingPrs(), 0u);
    EXPECT_EQ(cc.occupiedBytes(), 0u);
    EXPECT_EQ(cc.packetsEmitted(), 10u);
}

TEST(ConcatTiming, RefillAfterExpiryStartsANewWindow)
{
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 300;
    int packets = 0;
    Concatenator cc(eq, cfg, [&](Packet &&) { ++packets; });
    cc.push(readPr(1), 0);
    eq.runUntil(1000); // first window expired at t=300 (= now)
    EXPECT_EQ(packets, 1);
    EXPECT_EQ(eq.now(), 300u);
    cc.push(readPr(2), 0); // arrives at t=300
    eq.run();
    EXPECT_EQ(packets, 2);
    EXPECT_EQ(eq.now(), 600u); // second window = arrival + delay
}

TEST(ConcatTiming, FillFlushDoesNotDoubleFireOnExpiry)
{
    // A CQ that fills before its ET clears the EQ entry; the stale
    // timer must not emit an empty packet.
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 10000;
    int packets = 0;
    Concatenator cc(eq, cfg, [&](Packet &&p) {
        ++packets;
        EXPECT_FALSE(p.prs.empty());
    });
    for (int i = 0; i < 79; ++i) // fills and flushes immediately
        cc.push(readPr(i), 3);
    EXPECT_EQ(packets, 1);
    eq.run(); // the stale timer fires and must do nothing
    EXPECT_EQ(packets, 1);
    EXPECT_EQ(cc.flushesByExpiry(), 0u);
}

TEST(ConcatTiming, PerDestinationWindowsAreIndependent)
{
    EventQueue eq;
    ConcatConfig cfg;
    cfg.delay = 1000;
    std::vector<std::pair<NodeId, Tick>> emissions;
    Concatenator cc(eq, cfg, [&](Packet &&p) {
        emissions.push_back({p.dest, eq.now()});
    });
    cc.push(readPr(1), 0);
    eq.schedule(900, [&] { cc.push(readPr(2), 1); });
    eq.run();
    ASSERT_EQ(emissions.size(), 2u);
    EXPECT_EQ(emissions[0].second, 1000u);
    EXPECT_EQ(emissions[1].second, 1900u);
}
