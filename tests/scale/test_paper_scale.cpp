/**
 * @file
 * Paper-scale checks (ctest label `scale`; the nightly CI job).
 *
 * These run the 100M-nonzero arabic analogue (kCiPaperScale) across
 * 1024 nodes - minutes of work and hundreds of MB, so they are excluded
 * from the tier-1 suite twice over: the ctest label keeps them out of
 * `ctest -LE scale`, and each test skips unless NETSPARSE_SCALE_TESTS=1
 * so even a plain `ctest` stays fast.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/cluster.hh"
#include "sparse/stream_gen.hh"

using namespace netsparse;

namespace {

bool
scaleTestsEnabled()
{
    const char *v = std::getenv("NETSPARSE_SCALE_TESTS");
    return v && *v && *v != '0';
}

/** Peak resident set of this process so far, in bytes (VmHWM). */
std::uint64_t
peakRssBytes()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            std::istringstream is(line.substr(6));
            std::uint64_t kb = 0;
            is >> kb;
            return kb * 1024;
        }
    }
    return 0;
}

#define SKIP_UNLESS_SCALE()                                               \
    if (!scaleTestsEnabled())                                             \
    GTEST_SKIP() << "set NETSPARSE_SCALE_TESTS=1 to run paper-scale "     \
                    "tests"

} // namespace

TEST(PaperScale, StreamingBuildStaysUnderTheCooFootprint)
{
    SKIP_UNLESS_SCALE();
    // The claim that makes 100M+ nonzeros tractable: the builder's
    // peak memory is the final partitioned form (~4 bytes/nnz of
    // column indices plus row pointers) plus one chunk buffer. A
    // materializing build pays >= 8 bytes/nnz for the COO alone before
    // the CSR conversion doubles it, so an 8 bytes/nnz ceiling on the
    // build's RSS growth proves no global COO was ever held.
    std::uint64_t rss_before = peakRssBytes();
    PartitionedMatrix pm = buildPartitionedBenchmark(
        MatrixKind::Arabic, kCiPaperScale, 1024);
    std::uint64_t rss_after = peakRssBytes();

    EXPECT_GE(pm.nnz, 90'000'000u) << "CI paper-scale preset shrank";
    EXPECT_EQ(pm.nodes.size(), 1024u);
    EXPECT_EQ(pm.part.numParts(), 1024u);

    std::uint64_t growth = rss_after - rss_before;
    std::uint64_t budget = pm.nnz * 8;
    EXPECT_LT(growth, budget)
        << "streaming build grew RSS by " << (growth >> 20)
        << " MiB for " << pm.nnz << " nnz - a COO-sized footprint";
}

TEST(PaperScale, CiSmokeGatherCompletesInBudget)
{
    SKIP_UNLESS_SCALE();
    // The 1024-node, 100M-nnz arabic gather the nightly job runs. The
    // wall budget is generous (the CI job timeout is the hard gate);
    // the assertions pin what EXPERIMENTS.md reports at scale: the
    // F+C rate and the SmartNIC traffic reduction move toward the
    // paper's arabic-2005 characterization once warm-up is amortized.
    auto t0 = std::chrono::steady_clock::now();
    PartitionedMatrix pm = buildPartitionedBenchmark(
        MatrixKind::Arabic, kCiPaperScale, 1024);
    std::uint64_t nnz = pm.nnz;

    GatherWorkload work;
    work.numIdxs = pm.cols;
    work.part = pm.part;
    work.streams = pm.takeStreams();

    ClusterConfig cfg = defaultClusterConfig(1024);
    cfg.eventBatching = true;
    cfg.simShards = 4;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(std::move(work), 16);

    EXPECT_GT(r.commTicks, 0u);
    std::uint64_t idxs = r.sumNodes(
        [](const NodeRunStats &n) { return n.idxsProcessed; });
    EXPECT_EQ(idxs, nnz);
    EXPECT_EQ(r.sumNodes([](const NodeRunStats &n) {
                  return n.watchdogFailures + n.permanentFailures;
              }),
              0u);

    // At scale arabic's hub reuse dominates: the paper reports a 97%
    // filter+coalesce rate (Table 7). 1024 nodes leave ~100k nonzeros
    // per node, so warm-up still shaves the rate; the measured value
    // here is ~81% (EXPERIMENTS.md's convergence table), against ~74%
    // at the old 0.5-10M-nnz scales. Guard the at-scale band.
    std::uint64_t filtered = r.sumNodes(
        [](const NodeRunStats &n) { return n.filtered + n.coalesced; });
    std::uint64_t remote = idxs - r.sumNodes([](const NodeRunStats &n) {
                               return n.localIdxs;
                           });
    ASSERT_GT(remote, 0u);
    double fc = static_cast<double>(filtered) / remote;
    EXPECT_GT(fc, 0.75) << "F+C rate regressed below the at-scale band";

    double minutes =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        60.0;
    EXPECT_LT(minutes, 25.0) << "paper-scale smoke blew its budget";
}
