/**
 * @file
 * The paper-scale path's equivalence guarantees at test-friendly size:
 * a gather fed from the streaming builder produces byte-identical
 * statistics to one fed from the materialized matrix, and the batched
 * event execution (docs/scaling.md) stays byte-identical across shard
 * counts. The at-scale behaviour itself lives in tests/scale/ under
 * the nightly `scale` label.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "runtime/cluster.hh"
#include "sim/stats_export.hh"
#include "sparse/generators.hh"
#include "sparse/stream_gen.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

/** Run one gather under a private collector; return its JSON document. */
std::string
runToJson(ClusterConfig cfg, const Csr &m, const Partition1D &part,
          GatherRunResult *out = nullptr)
{
    StatsExport collector;
    collector.setCollect(true);
    StatsExport::Bind bind(collector);
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    if (out)
        *out = r;
    return collector.toJson();
}

/** Same, from a streaming-built workload. */
std::string
runToJson(ClusterConfig cfg, GatherWorkload &&work,
          GatherRunResult *out = nullptr)
{
    StatsExport collector;
    collector.setCollect(true);
    StatsExport::Bind bind(collector);
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(std::move(work), 16);
    if (out)
        *out = r;
    return collector.toJson();
}

GatherWorkload
streamedWorkload(MatrixKind kind, double scale, std::uint32_t nodes)
{
    PartitionedMatrix pm = buildPartitionedBenchmark(kind, scale, nodes);
    GatherWorkload work;
    work.numIdxs = pm.cols;
    work.part = pm.part;
    work.streams = pm.takeStreams();
    return work;
}

} // namespace

TEST(Scaling, StreamingWorkloadMatchesTheMaterializedMatrix)
{
    // Same seed, same scale: the streamed per-node index streams must
    // drive the cluster to the same final tick and the same stats
    // document as slicing the materialized CSR - byte for byte.
    for (MatrixKind kind : {MatrixKind::Arabic, MatrixKind::Europe}) {
        Csr m = makeBenchmarkMatrix(kind, 0.02);
        Partition1D part = Partition1D::equalRows(m.rows, 16);
        GatherRunResult mat;
        std::string ref = runToJson(shardableCluster(1), m, part, &mat);

        GatherRunResult str;
        std::string got = runToJson(
            shardableCluster(1), streamedWorkload(kind, 0.02, 16), &str);
        EXPECT_EQ(got, ref) << matrixName(kind);
        EXPECT_EQ(str.commTicks, mat.commTicks);
        EXPECT_EQ(str.executedEvents, mat.executedEvents);
        EXPECT_EQ(str.totalWireBytes, mat.totalWireBytes);
    }
}

TEST(Scaling, BatchedExecutionIsByteIdenticalAcrossShardCounts)
{
    // Event batching coarsens the schedule (delivery trains, batched
    // server reads) but must preserve the parallel engine's headline
    // guarantee: the same document at any shard count, with executed
    // events accounted as if every train member were its own event.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    ClusterConfig cfg = shardableCluster(1);
    cfg.eventBatching = true;
    GatherRunResult seq;
    std::string ref = runToJson(cfg, m, part, &seq);
    EXPECT_EQ(seq.simShards, 1u);

    for (std::uint32_t shards : {2u, 4u}) {
        ClusterConfig pcfg = shardableCluster(shards);
        pcfg.eventBatching = true;
        GatherRunResult par;
        std::string got = runToJson(pcfg, m, part, &par);
        EXPECT_EQ(par.simShards, shards);
        EXPECT_EQ(got, ref) << "batched stats diverged at " << shards
                            << " shards";
        EXPECT_EQ(par.commTicks, seq.commTicks);
        EXPECT_EQ(par.executedEvents, seq.executedEvents);
        EXPECT_EQ(par.finalTick, seq.finalTick);
    }
}

TEST(Scaling, BatchedExecutionCompletesTheGather)
{
    // Batching is a simulation-performance knob, not a model change:
    // every index is still processed and every remote read answered.
    Csr m = makeBenchmarkMatrix(MatrixKind::Stokes, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    ClusterConfig cfg = shardableCluster(1);
    cfg.eventBatching = true;
    GatherRunResult r;
    runToJson(cfg, m, part, &r);

    EXPECT_GT(r.commTicks, 0u);
    std::uint64_t idxs = r.sumNodes(
        [](const NodeRunStats &n) { return n.idxsProcessed; });
    EXPECT_EQ(idxs, m.nnz());
    EXPECT_EQ(r.sumNodes([](const NodeRunStats &n) {
                  return n.watchdogFailures + n.permanentFailures;
              }),
              0u);
}
