/**
 * @file
 * Cluster-level guarantees of the span tracer: the netsparse-spans-v1
 * document is byte-identical at 1, 2 and 4 shards in both capture
 * modes (1/N sampling and the tail-exemplar flight recorder); enabling
 * spans perturbs neither the run nor the other output documents; the
 * critical-path attribution of every exported span tiles its measured
 * latency exactly; and under the sharded engine the thread-bound
 * TraceWriter / TelemetrySink collectors stay shard-local (no
 * cross-shard event bleed at 4 shards).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/critical_path.hh"
#include "analysis/json_lite.hh"
#include "runtime/cluster.hh"
#include "runtime/job_scheduler.hh"
#include "sim/span.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sim/trace.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

/** One gather under private collectors; returns every document. */
struct CapturedRun
{
    std::string statsJson;
    std::string telemetryJson;
    std::string spansJson;
    GatherRunResult result;
};

CapturedRun
runCaptured(ClusterConfig cfg, const Csr &m, const Partition1D &part,
            bool spans)
{
    StatsExport stats;
    stats.setCollect(true);
    StatsExport::Bind statsBind(stats);
    TelemetrySink sink;
    sink.setCollect(true);
    TelemetrySink::Bind telemetryBind(sink);
    SpanSink spanSink;
    spanSink.setCollect(spans);
    SpanSink::Bind spanBind(spanSink);

    CapturedRun out;
    out.result = ClusterSim(cfg).runGather(m, part, 16);
    out.statsJson = stats.toJson();
    out.telemetryJson = sink.toJson();
    out.spansJson = spanSink.toJson();
    return out;
}

GatherWorkload
sliceWork(const Csr &m, std::uint32_t nodes)
{
    GatherWorkload w;
    w.numIdxs = m.cols;
    w.part = Partition1D::equalRows(m.rows, nodes);
    w.streams.reserve(nodes);
    for (NodeId nid = 0; nid < nodes; ++nid)
        w.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[w.part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[w.part.end(nid)]);
    return w;
}

/** Two tenants with staggered admission: the congested tail-mode run. */
std::vector<JobSpec>
twoJobs()
{
    static const Csr a = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    static const Csr q = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    std::vector<JobSpec> specs(2);
    specs[0].work = sliceWork(a, 16);
    specs[0].k = 16;
    specs[1].work = sliceWork(q, 16);
    specs[1].k = 8;
    specs[1].startDelay = 2 * ticks::us;
    return specs;
}

std::string
runJobsCaptured(ClusterConfig cfg)
{
    StatsExport stats;
    stats.setCollect(true);
    StatsExport::Bind statsBind(stats);
    SpanSink spanSink;
    spanSink.setCollect(true);
    SpanSink::Bind spanBind(spanSink);

    JobScheduler sched(cfg);
    MultiJobResult res = sched.run(twoJobs());
    EXPECT_EQ(res.jobs.size(), 2u);
    return spanSink.toJson();
}

#if NETSPARSE_TRACING_ENABLED
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}
#endif

} // namespace

TEST(SpansGather, SampledSpansAreByteIdenticalAcrossShardCounts)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    ClusterConfig cfg = shardableCluster(1);
    cfg.spans.sampleEvery = 16;
    CapturedRun seq = runCaptured(cfg, m, part, /*spans=*/true);
    EXPECT_EQ(seq.result.simShards, 1u);

    jsonlite::Value doc = jsonlite::parse(seq.spansJson);
    EXPECT_EQ(doc.at("schema").string, "netsparse-spans-v1");
    const jsonlite::Value &run = doc.at("runs").at(0);
    EXPECT_GT(run.at("recordedSpans").number, 0.0);
    EXPECT_GT(run.at("components").array.size(), 0u);
    const auto &spans = run.at("spans").array;
    ASSERT_GT(spans.size(), 0u);
    for (const jsonlite::Value &s : spans)
        EXPECT_EQ(s.at("kept").string, "sampled");

    for (std::uint32_t shards : {2u, 4u}) {
        ClusterConfig pcfg = shardableCluster(shards);
        pcfg.spans.sampleEvery = 16;
        CapturedRun par = runCaptured(pcfg, m, part, /*spans=*/true);
        EXPECT_EQ(par.result.simShards, shards);
        EXPECT_EQ(par.spansJson, seq.spansJson)
            << "sampled spans diverged at " << shards << " shards";
    }
}

TEST(SpansGather, TailExemplarSpansAreByteIdenticalAcrossShardCounts)
{
    ClusterConfig cfg = shardableCluster(1);
    cfg.spans.tailKeep = 8;
    cfg.spans.tailThreshold = 50 * ticks::us;
    std::string seq = runJobsCaptured(cfg);

    jsonlite::Value doc = jsonlite::parse(seq);
    const jsonlite::Value &run = doc.at("runs").at(0);
    const auto &spans = run.at("spans").array;
    ASSERT_GT(spans.size(), 0u);
    // The flight recorder keeps each tenant's makespan finisher, so
    // critical-path attribution of the makespan is always possible.
    std::set<double> finisherTenants;
    for (const jsonlite::Value &s : spans)
        if (s.at("finisher").boolean)
            finisherTenants.insert(s.at("tenant").number);
    EXPECT_EQ(finisherTenants.size(), 2u);

    for (std::uint32_t shards : {2u, 4u}) {
        ClusterConfig pcfg = shardableCluster(shards);
        pcfg.spans.tailKeep = 8;
        pcfg.spans.tailThreshold = 50 * ticks::us;
        EXPECT_EQ(runJobsCaptured(pcfg), seq)
            << "tail spans diverged at " << shards << " shards";
    }
}

TEST(SpansGather, SpanCaptureLeavesRunAndOtherDocumentsUnchanged)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(2);
    cfg.spans.sampleEvery = 16;

    CapturedRun off = runCaptured(cfg, m, part, /*spans=*/false);
    CapturedRun on = runCaptured(cfg, m, part, /*spans=*/true);

    // Span capture is passive: same clock, same traffic, same bytes.
    EXPECT_EQ(on.result.finalTick, off.result.finalTick);
    EXPECT_EQ(on.result.executedEvents, off.result.executedEvents);
    EXPECT_EQ(on.result.totalWireBytes, off.result.totalWireBytes);
    EXPECT_EQ(on.result.cacheHits, off.result.cacheHits);
    // ... and the other documents are byte-for-byte unchanged.
    EXPECT_EQ(on.statsJson, off.statsJson);
    EXPECT_EQ(on.telemetryJson, off.telemetryJson);
    // With the sink disabled no run section is even opened.
    EXPECT_EQ(off.spansJson.find("\"run\":0"), std::string::npos);
}

TEST(SpansGather, CriticalPathAttributionTilesEverySpanExactly)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(2);
    cfg.spans.sampleEvery = 8;
    CapturedRun run = runCaptured(cfg, m, part, /*spans=*/true);

    jsonlite::Value doc = jsonlite::parse(run.spansJson);
    const auto &spans = doc.at("runs").at(0).at("spans").array;
    ASSERT_GT(spans.size(), 0u);
    for (const jsonlite::Value &s : spans) {
        const auto &events = s.at("events").array;
        ASSERT_GT(events.size(), 0u);
        std::vector<CpEvent> cp;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const jsonlite::Value &e = events.at(i);
            // The exported parent chain never dangles.
            double parent = e.at("parent").number;
            EXPECT_EQ(parent, static_cast<double>(i) - 1.0);
            cp.push_back(CpEvent{
                static_cast<Tick>(e.at("tick").number),
                static_cast<Tick>(e.at("durTicks").number),
                static_cast<std::uint32_t>(e.at("comp").number),
                e.at("stage").string});
        }
        CriticalPath path = computeCriticalPath(
            static_cast<Tick>(s.at("issueTick").number),
            static_cast<Tick>(s.at("retireTick").number), cp);
        // The acceptance bar is "within 1 tick"; the tiling is exact.
        EXPECT_EQ(path.attributedTicks(),
                  static_cast<Tick>(s.at("totalTicks").number))
            << "span " << s.at("spanId").string;
    }

    // The report layer agrees and surfaces at least one exemplar.
    SpanReport report = analyzeSpans(doc);
    ASSERT_GT(report.exemplars.size(), 0u);
    for (const SpanExemplar &ex : report.exemplars)
        EXPECT_EQ(ex.path.attributedTicks(), ex.totalTicks);
}

TEST(SpansGather, ShardedCollectorsStayShardLocal)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(4);

#if NETSPARSE_TRACING_ENABLED
    const std::string base = "spans_itest_trace.json";
    TraceWriter ambient;
    ASSERT_TRUE(ambient.open(base));
    TraceWriter::Bind traceBind(ambient);
#endif

    CapturedRun run = runCaptured(cfg, m, part, /*spans=*/false);
    EXPECT_EQ(run.result.simShards, 4u);

#if NETSPARSE_TRACING_ENABLED
    ambient.close();

    // Each shard thread bound its own writer, so the per-shard files
    // exist and no component's events bled into another shard's file.
    // Per-shard infrastructure tracks ("sim.*") are expected in all.
    std::vector<std::set<std::string>> tracks(4);
    for (int s = 0; s < 4; ++s) {
        std::string path = TraceWriter::derivedPath(
            base, "shard" + std::to_string(s));
        std::string text = slurp(path);
        ASSERT_FALSE(text.empty()) << path;
        jsonlite::Value doc = jsonlite::parse(text);
        for (const jsonlite::Value &e : doc.at("traceEvents").array) {
            if (e.at("ph").string != "M" ||
                e.at("name").string != "thread_name")
                continue;
            const std::string &name = e.at("args").at("name").string;
            if (name.rfind("sim.", 0) != 0)
                tracks[s].insert(name);
        }
        EXPECT_GT(tracks[s].size(), 0u) << path;
        std::remove(path.c_str());
    }
    std::remove(base.c_str());
    for (int a = 0; a < 4; ++a)
        for (int b = a + 1; b < 4; ++b)
            for (const std::string &name : tracks[a])
                EXPECT_EQ(tracks[b].count(name), 0u)
                    << name << " bled between shards " << a << " and "
                    << b;
#endif

    // The telemetry collector is shard-local too: the merged document
    // carries every entity exactly once.
    jsonlite::Value tdoc = jsonlite::parse(run.telemetryJson);
    const auto &entities = tdoc.at("runs").at(0).at("entities").array;
    std::set<std::string> ids;
    for (const jsonlite::Value &e : entities)
        EXPECT_TRUE(ids.insert(e.at("id").string).second)
            << "duplicate telemetry entity " << e.at("id").string;
}
