/** @file Tests for the distributed kernel executors. */

#include <gtest/gtest.h>

#include "runtime/distributed_kernels.hh"
#include "sim/rng.hh"
#include "sparse/generators.hh"
#include "sparse/kernels.hh"

using namespace netsparse;

namespace {

std::vector<float>
randomDense(std::uint32_t n, std::uint32_t k, std::uint64_t seed)
{
    std::vector<float> v(static_cast<std::size_t>(n) * k);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<float>(splitmix64(seed + i) % 64) / 8.0f;
    return v;
}

ClusterConfig
smallCluster(std::uint32_t nodes)
{
    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    return cfg;
}

} // namespace

TEST(DistributedKernels, SpmmMatchesReferenceBitExactly)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 8, k = 8;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto x = randomDense(a.cols, k, 1);

    DistributedSpmm exec(smallCluster(nodes), a, part, k);
    DistributedKernelResult r = exec.run(x, 1);
    EXPECT_EQ(r.output, spmm(a, x, k));
    ASSERT_EQ(r.iterations.size(), 1u);
    EXPECT_GT(r.iterations[0].commTicks, 0u);
}

TEST(DistributedKernels, MultiIterationChainsOutputs)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Europe, 0.02);
    const std::uint32_t nodes = 8, k = 2, iters = 3;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto x = randomDense(a.cols, k, 2);

    DistributedSpmm exec(smallCluster(nodes), a, part, k);
    DistributedKernelResult r = exec.run(x, iters);

    // Reference: apply the kernel three times.
    std::vector<float> ref = x;
    for (std::uint32_t i = 0; i < iters; ++i)
        ref = spmm(a, ref, k);
    EXPECT_EQ(r.output, ref);
    EXPECT_EQ(r.iterations.size(), iters);
    EXPECT_EQ(r.totalCommTicks(), r.iterations[0].commTicks +
                                      r.iterations[1].commTicks +
                                      r.iterations[2].commTicks);
}

TEST(DistributedKernels, IterationsAreIndependentGathers)
{
    // Each iteration reconfigures the kernel (fresh Idx Filters and
    // invalidated caches), so every iteration re-fetches its uniques.
    Csr a = makeBenchmarkMatrix(MatrixKind::Uk, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto x = randomDense(a.cols, 1, 3);

    DistributedSpmm exec(smallCluster(nodes), a, part, 1);
    DistributedKernelResult r = exec.run(x, 2);
    ASSERT_EQ(r.iterations.size(), 2u);
    std::uint64_t prs0 = 0, prs1 = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        prs0 += r.iterations[0].nodes[n].prsIssued;
        prs1 += r.iterations[1].nodes[n].prsIssued;
    }
    EXPECT_EQ(prs0, prs1);
}

TEST(DistributedKernels, FunctionalOnlyModeSkipsSimulation)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Stokes, 0.02);
    const std::uint32_t nodes = 8, k = 4;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto x = randomDense(a.cols, k, 4);

    DistributedSpmm exec(smallCluster(nodes), a, part, k,
                         /*simulate=*/false);
    DistributedKernelResult r = exec.run(x, 2);
    EXPECT_TRUE(r.iterations.empty());
    EXPECT_EQ(r.totalCommTicks(), 0u);

    std::vector<float> ref = spmm(a, spmm(a, x, k), k);
    EXPECT_EQ(r.output, ref);
}

TEST(DistributedKernels, SpmvIsTheKEqualsOneCase)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto x = randomDense(a.cols, 1, 5);

    DistributedKernelResult r = distributedSpmv(smallCluster(nodes), a,
                                                part, x);
    EXPECT_EQ(r.output, spmv(a, x));
    ASSERT_EQ(r.iterations.size(), 1u);
    // SpMV moves 4 B properties.
    std::uint64_t payload = 0;
    for (const auto &n : r.iterations[0].nodes)
        payload += n.rxPayloadBytes;
    EXPECT_GT(payload, 0u);
    EXPECT_EQ(payload % 4, 0u);
}

TEST(DistributedKernels, SddmmMatchesReference)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 8, k = 4;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);
    auto u = randomDense(a.rows, k, 6);
    auto v = randomDense(a.cols, k, 7);

    DistributedSddmmResult r =
        distributedSddmm(smallCluster(nodes), a, part, u, v, k);
    EXPECT_EQ(r.values, sddmm(a, u, v, k));
    ASSERT_EQ(r.iterations.size(), 1u);
    EXPECT_GT(r.iterations[0].commTicks, 0u);
}

TEST(DistributedKernels, InvalidShapesPanic)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    Partition1D part = Partition1D::equalRows(a.rows, 8);
    DistributedSpmm exec(smallCluster(8), a, part, 4, false);
    EXPECT_THROW(exec.run(std::vector<float>(3), 1), std::logic_error);
    EXPECT_THROW(exec.run(randomDense(a.cols, 4, 1), 0),
                 std::logic_error);
}

TEST(AdaptiveBatch, ConvergesAndCompletesTheGather)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);

    ClusterConfig cfg = smallCluster(nodes);
    cfg.host.policy = BatchPolicy::Adaptive;
    cfg.host.batchSize = 1024;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(a, part, 16);
    EXPECT_GT(r.commTicks, 0u);
    for (const auto &n : r.nodes)
        EXPECT_EQ(n.rxResponses, n.prsIssued);
}

TEST(AdaptiveBatch, GrowsUndersizedBatches)
{
    // A tiny initial batch floods the host core with command issues;
    // the AIMD rule grows batches while the units stay busy, cutting
    // the command count well below the static policy's.
    Csr a = makeBenchmarkMatrix(MatrixKind::Uk, 0.05);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(a.rows, nodes);

    ClusterConfig adaptive = smallCluster(nodes);
    adaptive.host.policy = BatchPolicy::Adaptive;
    adaptive.host.batchSize = 128;
    adaptive.host.autoBatchMin = 128;
    GatherRunResult a_run = ClusterSim(adaptive).runGather(a, part, 16);

    ClusterConfig fixed = smallCluster(nodes);
    fixed.host.batchSize = 128;
    GatherRunResult s_run = ClusterSim(fixed).runGather(a, part, 16);

    std::uint64_t a_cmds = 0, s_cmds = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        a_cmds += a_run.nodes[n].commandsIssued;
        s_cmds += s_run.nodes[n].commandsIssued;
        EXPECT_EQ(a_run.nodes[n].rxResponses, a_run.nodes[n].prsIssued);
    }
    EXPECT_LT(a_cmds, s_cmds);
}