/**
 * @file
 * Fault-injection tests for the recovery paths: the watchdog (Section
 * 7.1: a lossy link eats packets, the RIG watchdog detects the stalled
 * operation, discards partial results and reports failure to the host)
 * and the reliable-PR layer (retransmission, NACK-refetch and duplicate
 * suppression turn the same faults into successful completions).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/verbs.hh"
#include "net/switch.hh"
#include "snic/snic.hh"

using namespace netsparse;

namespace {

struct FaultWorld
{
    EventQueue eq;
    ProtocolParams proto;
    std::unique_ptr<Snic> snic0, snic1;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<Link> down0, down1, up0, up1;

    explicit FaultWorld(Tick watchdog, RetryPolicy retry = {})
    {
        SnicConfig scfg;
        scfg.numRigUnits = 2;
        scfg.proto = proto;
        scfg.concat.proto = proto;
        scfg.concat.delay = 100 * ticks::ns;
        scfg.rigUnit.watchdogTimeout = watchdog;
        scfg.rigUnit.retry = retry;
        auto owner = [](PropIdx idx) {
            return static_cast<NodeId>(idx % 2);
        };
        snic0 = std::make_unique<Snic>(eq, scfg, 0, owner, 4096, "s0");
        snic1 = std::make_unique<Snic>(eq, scfg, 1, owner, 4096, "s1");
        SwitchConfig swcfg;
        swcfg.proto = proto;
        sw = std::make_unique<Switch>(eq, swcfg, 0, "sw");
        down0 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic0.get(), 0, "d0");
        down1 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic1.get(), 0, "d1");
        up0 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 0,
                                     "u0");
        up1 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 1,
                                     "u1");
        // All four links carry injectors; tests script faults on them
        // (zero rates: nothing fires unless scripted).
        for (Link *l : {down0.get(), down1.get(), up0.get(), up1.get()})
            l->configureFaults(FaultConfig{});
        sw->attachPort(0, down0.get(), true);
        sw->attachPort(1, down1.get(), true);
        sw->setRouteFn([](NodeId dest) -> std::uint32_t { return dest; });
        snic0->attachEgress(up0.get());
        snic1->attachEgress(up1.get());
    }

    IbvWc
    runGather(const std::vector<std::uint32_t> &idxs)
    {
        RigQueuePair qp(eq, *snic0);
        IbvSendWr wr;
        wr.wrId = 1;
        wr.rig.idxList = idxs.data();
        wr.rig.numIdxs = idxs.size();
        wr.rig.propBytes = 64;
        EXPECT_TRUE(qp.postSend(wr));
        eq.run();
        IbvWc wc;
        EXPECT_TRUE(qp.pollCq(wc));
        return wc;
    }
};

/** A short-fuse retry policy for unit-scale worlds. */
RetryPolicy
fastRetry(Tick timeout = 10 * ticks::us, std::uint32_t max_retries = 6)
{
    RetryPolicy p;
    p.enabled = true;
    p.timeout = timeout;
    p.maxRetries = max_retries;
    return p;
}

} // namespace

TEST(FaultInjection, LostReadPacketTripsTheWatchdog)
{
    FaultWorld w(50 * ticks::us);
    // Lose every read packet leaving node 0.
    w.up0->faults()->scriptDrop(
        [](const Packet &p) { return p.type == PrType::Read; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
    EXPECT_EQ(w.snic0->aggregateClientStats().watchdogFailures, 1u);
    EXPECT_GT(w.up0->packetsDropped(), 0u);
}

TEST(FaultInjection, LostResponsePacketTripsTheWatchdog)
{
    FaultWorld w(50 * ticks::us);
    w.down0->faults()->scriptDrop(
        [](const Packet &p) { return p.type == PrType::Response; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
}

TEST(FaultInjection, PartialLossStillFailsTheWholeOperation)
{
    FaultWorld w(50 * ticks::us);
    int count = 0;
    // Only the first read packet is lost; its PRs never complete.
    w.up0->faults()->scriptDrop([&](const Packet &p) {
        return p.type == PrType::Read && count++ == 0;
    });
    IbvWc wc = w.runGather({1, 3, 5, 7, 9});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
    // Some responses may have arrived before the failure; they are
    // either applied or discarded, but the op still reports failure.
}

TEST(FaultInjection, CleanNetworkNeverTimesOut)
{
    FaultWorld w(50 * ticks::us);
    IbvWc wc = w.runGather({1, 3, 5, 7, 9});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    EXPECT_EQ(w.snic0->aggregateClientStats().watchdogFailures, 0u);
}

TEST(FaultInjection, UnitIsReusableAfterAFailure)
{
    FaultWorld w(20 * ticks::us);
    bool lossy = true;
    w.up0->faults()->scriptDrop([&](const Packet &p) {
        return lossy && p.type == PrType::Read;
    });
    IbvWc wc = w.runGather({1, 3});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);

    // Heal the network; the same unit executes the retry successfully.
    lossy = false;
    IbvWc wc2 = w.runGather({1, 3});
    EXPECT_EQ(wc2.status, IbvWc::Status::Success);
}

// --- Reliable-PR transport: the same faults, but the gather succeeds ---

TEST(FaultInjection, RetransmissionRecoversLostReads)
{
    FaultWorld w(0, fastRetry());
    int count = 0;
    // The first read packet is lost; its PRs come back via retransmit.
    w.up0->faults()->scriptDrop([&](const Packet &p) {
        return p.type == PrType::Read && count++ == 0;
    });
    IbvWc wc = w.runGather({1, 3, 5, 7, 9});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    RigClientStats cs = w.snic0->aggregateClientStats();
    EXPECT_GT(cs.retransmits, 0u);
    EXPECT_EQ(cs.retriesExhausted, 0u);
    EXPECT_EQ(cs.responses, 5u);
}

TEST(FaultInjection, RetransmissionRecoversLostResponses)
{
    FaultWorld w(0, fastRetry());
    int count = 0;
    w.down0->faults()->scriptDrop([&](const Packet &p) {
        return p.type == PrType::Response && count++ == 0;
    });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    EXPECT_GT(w.snic0->aggregateClientStats().retransmits, 0u);
}

TEST(FaultInjection, CorruptResponseIsNackedAndRefetched)
{
    FaultWorld w(0, fastRetry());
    int count = 0;
    w.down0->faults()->scriptCorrupt(
        [&](const Packet &) { return count++ == 0; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    RigClientStats cs = w.snic0->aggregateClientStats();
    EXPECT_EQ(cs.corruptDropped, 1u);
    EXPECT_EQ(cs.nacks, 1u);
    EXPECT_EQ(w.down0->faults()->stats().corruptedPrs, 1u);
    // Every property was eventually applied exactly once.
    EXPECT_EQ(cs.responses, 3u);
}

TEST(FaultInjection, RetryBudgetExhaustionFailsTheCommand)
{
    FaultWorld w(0, fastRetry(5 * ticks::us, 2));
    // A black-hole network: every read is lost, forever.
    w.up0->faults()->scriptDrop(
        [](const Packet &p) { return p.type == PrType::Read; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
    RigClientStats cs = w.snic0->aggregateClientStats();
    EXPECT_GT(cs.retriesExhausted, 0u);
    EXPECT_GT(cs.retransmits, 0u);
}

TEST(FaultInjection, DuplicateResponsesAreSuppressed)
{
    // Retry fires faster than the round trip, so the original response
    // races its retransmitted twin; the loser must be suppressed and
    // the property applied exactly once. A batch large enough that the
    // command is still live when the twins land makes the suppression
    // observable (after completion they would count as stale instead).
    FaultWorld w(0, fastRetry(500 * ticks::ns, 20));
    std::vector<std::uint32_t> idxs;
    for (std::uint32_t i = 1; i < 4096; i += 2)
        idxs.push_back(i); // 2048 distinct remote idxs
    IbvWc wc = w.runGather(idxs);
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    RigClientStats cs = w.snic0->aggregateClientStats();
    EXPECT_GT(cs.retransmits, 0u);
    EXPECT_GT(cs.duplicatesSuppressed, 0u);
    EXPECT_EQ(cs.responses, 2048u);
}

TEST(FaultInjection, RandomDropsRecoverUnderRetry)
{
    FaultWorld w(0, fastRetry());
    FaultConfig fc;
    fc.dropRate = 0.3;
    fc.seed = 7;
    w.up0->configureFaults(fc);
    w.down0->configureFaults(fc);
    IbvWc wc = w.runGather({1, 3, 5, 7, 9, 11, 13, 15});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    EXPECT_EQ(w.snic0->aggregateClientStats().responses, 8u);
}

TEST(FaultInjection, LinkDownWindowDelaysButCompletes)
{
    FaultWorld w(0, fastRetry());
    FaultConfig fc;
    fc.linkDownRate = 0.5; // the first sends open a down window
    fc.linkDownTicks = 2 * ticks::us;
    fc.seed = 3;
    w.up0->configureFaults(fc);
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    const auto &fs = w.up0->faults()->stats();
    if (fs.downWindows > 0) {
        EXPECT_GT(fs.linkDownDrops, 0u);
        EXPECT_GT(w.snic0->aggregateClientStats().retransmits, 0u);
    }
}
