/**
 * @file
 * Fault-injection tests for the watchdog recovery path (Section 7.1):
 * a lossy link eats packets; the RIG watchdog detects the stalled
 * operation, discards partial results and reports failure to the host.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/verbs.hh"
#include "net/switch.hh"
#include "snic/snic.hh"

using namespace netsparse;

namespace {

struct FaultWorld
{
    EventQueue eq;
    ProtocolParams proto;
    std::unique_ptr<Snic> snic0, snic1;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<Link> down0, down1, up0, up1;

    explicit FaultWorld(Tick watchdog)
    {
        SnicConfig scfg;
        scfg.numRigUnits = 2;
        scfg.proto = proto;
        scfg.concat.proto = proto;
        scfg.concat.delay = 100 * ticks::ns;
        scfg.rigUnit.watchdogTimeout = watchdog;
        auto owner = [](PropIdx idx) {
            return static_cast<NodeId>(idx % 2);
        };
        snic0 = std::make_unique<Snic>(eq, scfg, 0, owner, 4096, "s0");
        snic1 = std::make_unique<Snic>(eq, scfg, 1, owner, 4096, "s1");
        SwitchConfig swcfg;
        swcfg.proto = proto;
        sw = std::make_unique<Switch>(eq, swcfg, 0, "sw");
        down0 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic0.get(), 0, "d0");
        down1 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic1.get(), 0, "d1");
        up0 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 0,
                                     "u0");
        up1 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 1,
                                     "u1");
        sw->attachPort(0, down0.get(), true);
        sw->attachPort(1, down1.get(), true);
        sw->setRouteFn([](NodeId dest) -> std::uint32_t { return dest; });
        snic0->attachEgress(up0.get());
        snic1->attachEgress(up1.get());
    }

    IbvWc
    runGather(const std::vector<std::uint32_t> &idxs)
    {
        RigQueuePair qp(eq, *snic0);
        IbvSendWr wr;
        wr.wrId = 1;
        wr.rig.idxList = idxs.data();
        wr.rig.numIdxs = idxs.size();
        wr.rig.propBytes = 64;
        EXPECT_TRUE(qp.postSend(wr));
        eq.run();
        IbvWc wc;
        EXPECT_TRUE(qp.pollCq(wc));
        return wc;
    }
};

} // namespace

TEST(FaultInjection, LostReadPacketTripsTheWatchdog)
{
    FaultWorld w(50 * ticks::us);
    // Lose every read packet leaving node 0.
    w.up0->setDropFilter(
        [](const Packet &p) { return p.type == PrType::Read; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
    EXPECT_EQ(w.snic0->aggregateClientStats().watchdogFailures, 1u);
    EXPECT_GT(w.up0->packetsDropped(), 0u);
}

TEST(FaultInjection, LostResponsePacketTripsTheWatchdog)
{
    FaultWorld w(50 * ticks::us);
    w.down0->setDropFilter(
        [](const Packet &p) { return p.type == PrType::Response; });
    IbvWc wc = w.runGather({1, 3, 5});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
}

TEST(FaultInjection, PartialLossStillFailsTheWholeOperation)
{
    FaultWorld w(50 * ticks::us);
    int count = 0;
    // Only the first read packet is lost; its PRs never complete.
    w.up0->setDropFilter([&](const Packet &p) {
        return p.type == PrType::Read && count++ == 0;
    });
    IbvWc wc = w.runGather({1, 3, 5, 7, 9});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);
    // Some responses may have arrived before the failure; they are
    // either applied or discarded, but the op still reports failure.
}

TEST(FaultInjection, CleanNetworkNeverTimesOut)
{
    FaultWorld w(50 * ticks::us);
    IbvWc wc = w.runGather({1, 3, 5, 7, 9});
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    EXPECT_EQ(w.snic0->aggregateClientStats().watchdogFailures, 0u);
}

TEST(FaultInjection, UnitIsReusableAfterAFailure)
{
    FaultWorld w(20 * ticks::us);
    bool lossy = true;
    w.up0->setDropFilter([&](const Packet &p) {
        return lossy && p.type == PrType::Read;
    });
    IbvWc wc = w.runGather({1, 3});
    EXPECT_EQ(wc.status, IbvWc::Status::WatchdogTimeout);

    // Heal the network; the same unit executes the retry successfully.
    lossy = false;
    IbvWc wc2 = w.runGather({1, 3});
    EXPECT_EQ(wc2.status, IbvWc::Status::Success);
}
