/**
 * @file
 * The hybrid flow/packet fidelity engine's contract (net/fidelity.hh,
 * docs/performance.md):
 *
 *  - hybrid runs are byte-identical across shard counts, like every
 *    other configuration;
 *  - on a congestion-free run (no link ever queues, so the detector
 *    never demotes) hybrid statistics are byte-identical to exact;
 *  - on congested runs - including under fault injection - hybrid
 *    preserves the logical event and byte accounting exactly and keeps
 *    the timing statistics within the documented epsilon;
 *  - flow counters behave: exact never flows, flow never demotes.
 *
 * Also covers the gated cluster.memory.* arena export (sim/arena.hh):
 * absent by default so the stats document stays byte-identical, present
 * under ClusterConfig::memoryStats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "runtime/cluster.hh"
#include "sim/stats_export.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** Documented validity envelope of hybrid timing statistics. */
constexpr double kEps = 0.02;

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
smallCluster(FidelityMode fidelity, std::uint32_t shards = 1)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    cfg.fidelity = fidelity;
    return cfg;
}

/** Run one gather under a private collector; return its JSON document. */
std::string
runToJson(ClusterConfig cfg, const Csr &m, const Partition1D &part,
          GatherRunResult *out = nullptr)
{
    StatsExport collector;
    collector.setCollect(true);
    StatsExport::Bind bind(collector);
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    if (out)
        *out = r;
    return collector.toJson();
}

double
relDelta(double a, double b)
{
    return a != 0.0 ? std::fabs(b - a) / std::fabs(a)
                    : std::fabs(b - a);
}

} // namespace

TEST(Fidelity, HybridStatsAreByteIdenticalAcrossShardCounts)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    GatherRunResult seq;
    std::string ref = runToJson(smallCluster(FidelityMode::Hybrid, 1),
                                m, part, &seq);
    EXPECT_GT(seq.flowPackets, 0u);

    for (std::uint32_t shards : {2u, 4u}) {
        GatherRunResult par;
        std::string got = runToJson(
            smallCluster(FidelityMode::Hybrid, shards), m, part, &par);
        EXPECT_EQ(par.simShards, shards);
        EXPECT_EQ(got, ref) << "hybrid stats diverged at " << shards
                            << " shards";
        EXPECT_EQ(par.commTicks, seq.commTicks);
        EXPECT_EQ(par.executedEvents, seq.executedEvents);
        // The regime decisions themselves are shard-invariant: they
        // are a pure function of link-local send history.
        EXPECT_EQ(par.flowPackets, seq.flowPackets);
        EXPECT_EQ(par.flowDemotions, seq.flowDemotions);
    }
}

TEST(Fidelity, HybridMatchesExactByteForByteWhenUncongested)
{
    // Effectively infinite wires: serialization rounds to zero ticks,
    // so no send ever finds the wire busy, the detector never demotes,
    // and every fusable hop takes the flow path. This is the
    // congestion-free regime where hybrid claims byte-identity.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    ClusterConfig exact_cfg = smallCluster(FidelityMode::Exact);
    exact_cfg.link.bandwidth = Bandwidth::fromGbps(1e14);
    GatherRunResult ex;
    std::string exact_json = runToJson(exact_cfg, m, part, &ex);
    ASSERT_EQ(ex.flowPackets, 0u);

    for (std::uint32_t shards : {1u, 2u, 4u}) {
        ClusterConfig cfg = smallCluster(FidelityMode::Hybrid, shards);
        cfg.link.bandwidth = Bandwidth::fromGbps(1e14);
        GatherRunResult hy;
        std::string hybrid_json = runToJson(cfg, m, part, &hy);
        EXPECT_EQ(hy.flowDemotions, 0u)
            << "a zero-serialization wire should never look congested";
        EXPECT_GT(hy.flowPackets, 0u);
        EXPECT_EQ(hybrid_json, exact_json)
            << "uncongested hybrid diverged from exact at " << shards
            << " shards";
        EXPECT_EQ(hy.commTicks, ex.commTicks);
        EXPECT_EQ(hy.executedEvents, ex.executedEvents);
        EXPECT_EQ(hy.totalWireBytes, ex.totalWireBytes);
    }
}

TEST(Fidelity, HybridStaysWithinEpsilonWhenCongested)
{
    // Default 400 Gbps wires: the gather's bursts queue, the detector
    // demotes, and fused/exact pipe work interleaves - the regime where
    // hybrid promises epsilon-bounded timing, not byte-identity.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    GatherRunResult ex, hy;
    runToJson(smallCluster(FidelityMode::Exact), m, part, &ex);
    runToJson(smallCluster(FidelityMode::Hybrid), m, part, &hy);

    EXPECT_GT(hy.flowPackets, 0u);
    // Logical accounting is preserved exactly: every packet, byte and
    // event exists in both runs, only scheduling bands differ.
    EXPECT_EQ(hy.executedEvents, ex.executedEvents);
    EXPECT_EQ(hy.totalWireBytes, ex.totalWireBytes);
    // Timing statistics stay within the documented envelope.
    EXPECT_LE(relDelta(static_cast<double>(ex.commTicks),
                       static_cast<double>(hy.commTicks)),
              kEps);
    EXPECT_LE(relDelta(ex.tailGoodput, hy.tailGoodput), kEps);
    EXPECT_LE(relDelta(ex.tailLineUtil, hy.tailLineUtil), kEps);
}

TEST(Fidelity, HybridStaysWithinEpsilonUnderFaultInjection)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    FaultConfig fc;
    fc.dropRate = 1e-3;
    fc.corruptRate = 1e-4;
    fc.seed = 7;

    ClusterConfig exact_cfg = smallCluster(FidelityMode::Exact);
    exact_cfg.faults = fc;
    ClusterConfig hybrid_cfg = smallCluster(FidelityMode::Hybrid);
    hybrid_cfg.faults = fc;

    GatherRunResult ex, hy;
    runToJson(exact_cfg, m, part, &ex);
    std::string hy1 = runToJson(hybrid_cfg, m, part, &hy);

    // Fault draws are keyed on per-link send sequences, which hybrid
    // does not alter, so the injected pattern is identical.
    EXPECT_EQ(hy.packetsDropped, ex.packetsDropped);
    EXPECT_EQ(hy.corruptedPrs, ex.corruptedPrs);
    EXPECT_EQ(hy.executedEvents, ex.executedEvents);
    EXPECT_LE(relDelta(static_cast<double>(ex.commTicks),
                       static_cast<double>(hy.commTicks)),
              kEps);

    // And the lossy hybrid run is still shard-invariant.
    hybrid_cfg.simShards = 2;
    std::string hy2 = runToJson(hybrid_cfg, m, part);
    EXPECT_EQ(hy2, hy1);
}

TEST(Fidelity, FlowCountersBehaveAcrossModes)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    GatherRunResult ex, hy, fl;
    runToJson(smallCluster(FidelityMode::Exact), m, part, &ex);
    runToJson(smallCluster(FidelityMode::Hybrid), m, part, &hy);
    runToJson(smallCluster(FidelityMode::Flow), m, part, &fl);

    EXPECT_EQ(ex.fidelity, FidelityMode::Exact);
    EXPECT_EQ(ex.flowPackets, 0u);
    EXPECT_EQ(ex.flowDemotions, 0u);

    EXPECT_EQ(hy.fidelity, FidelityMode::Hybrid);
    EXPECT_GT(hy.flowPackets, 0u);

    // Flow mode never demotes and fuses every capable hop.
    EXPECT_EQ(fl.fidelity, FidelityMode::Flow);
    EXPECT_EQ(fl.flowDemotions, 0u);
    EXPECT_GT(fl.flowPackets, hy.flowPackets);
    // Logical accounting is mode-invariant.
    EXPECT_EQ(fl.executedEvents, ex.executedEvents);
    EXPECT_EQ(fl.totalWireBytes, ex.totalWireBytes);
}

TEST(Fidelity, ParseAndNameRoundTrip)
{
    FidelityMode mode = FidelityMode::Exact;
    EXPECT_TRUE(parseFidelity("hybrid", mode));
    EXPECT_EQ(mode, FidelityMode::Hybrid);
    EXPECT_TRUE(parseFidelity("flow", mode));
    EXPECT_EQ(mode, FidelityMode::Flow);
    EXPECT_TRUE(parseFidelity("exact", mode));
    EXPECT_EQ(mode, FidelityMode::Exact);
    EXPECT_FALSE(parseFidelity("packet", mode));
    EXPECT_EQ(mode, FidelityMode::Exact);
    EXPECT_STREQ(fidelityName(FidelityMode::Hybrid), "hybrid");
}

TEST(Fidelity, MemoryStatsAreGated)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    // Off by default: no cluster.memory.* keys, so the document stays
    // byte-identical to pre-arena collectors.
    std::string off = runToJson(smallCluster(FidelityMode::Exact), m,
                                part);
    EXPECT_EQ(off.find("cluster.memory."), std::string::npos);

    ClusterConfig cfg = smallCluster(FidelityMode::Exact);
    cfg.memoryStats = true;
    std::string on = runToJson(cfg, m, part);
    EXPECT_NE(on.find("cluster.memory.arenaReservedBytes"),
              std::string::npos);
    EXPECT_NE(on.find("cluster.memory.arenaHighWaterBytes"),
              std::string::npos);
    EXPECT_NE(on.find("cluster.memory.arenaPoolHits"),
              std::string::npos);
}
