/**
 * @file
 * Telemetry's cluster-level guarantees: the netsparse-telemetry-v1
 * timeline is byte-identical at any shard count; enabling telemetry
 * does not perturb the simulated run; and with telemetry off the stats
 * document carries no PR-latency keys, staying byte-for-byte what the
 * telemetry-free simulator produced.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/json_lite.hh"
#include "runtime/cluster.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

/** One gather under private collectors; returns both JSON documents. */
struct CapturedRun
{
    std::string statsJson;
    std::string telemetryJson;
    GatherRunResult result;
};

CapturedRun
runCaptured(ClusterConfig cfg, const Csr &m, const Partition1D &part,
            bool telemetry)
{
    StatsExport stats;
    stats.setCollect(true);
    StatsExport::Bind statsBind(stats);
    TelemetrySink sink;
    sink.setCollect(telemetry);
    TelemetrySink::Bind telemetryBind(sink);

    CapturedRun out;
    out.result = ClusterSim(cfg).runGather(m, part, 16);
    out.statsJson = stats.toJson();
    out.telemetryJson = sink.toJson();
    return out;
}

} // namespace

TEST(TelemetryGather, TimelineIsByteIdenticalAcrossShardCounts)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    CapturedRun seq =
        runCaptured(shardableCluster(1), m, part, /*telemetry=*/true);
    EXPECT_EQ(seq.result.simShards, 1u);

    // The timeline is well-formed and carries the expected entities.
    jsonlite::Value doc = jsonlite::parse(seq.telemetryJson);
    EXPECT_EQ(doc.at("schema").string, "netsparse-telemetry-v1");
    const jsonlite::Value &run = doc.at("runs").at(0);
    EXPECT_GT(run.at("sampleTicks").array.size(), 0u);
    const auto &entities = run.at("entities").array;
    ASSERT_GT(entities.size(), 0u);
    bool saw_link = false, saw_switch = false, saw_rig = false,
         saw_sim = false;
    for (const jsonlite::Value &e : entities) {
        const std::string &kind = e.at("kind").string;
        saw_link |= kind == "link";
        saw_switch |= kind == "switch";
        saw_rig |= kind == "rig";
        saw_sim |= kind == "sim";
        // Every series is aligned to sampleTicks.
        for (const auto &[name, vals] : e.at("series").object)
            EXPECT_EQ(vals.array.size(),
                      run.at("sampleTicks").array.size())
                << e.at("id").string << "." << name;
    }
    EXPECT_TRUE(saw_link);
    EXPECT_TRUE(saw_switch);
    EXPECT_TRUE(saw_rig);
    EXPECT_TRUE(saw_sim);

    for (std::uint32_t shards : {2u, 4u}) {
        CapturedRun par = runCaptured(shardableCluster(shards), m, part,
                                      /*telemetry=*/true);
        EXPECT_EQ(par.result.simShards, shards);
        EXPECT_EQ(par.telemetryJson, seq.telemetryJson)
            << "telemetry diverged at " << shards << " shards";
        EXPECT_EQ(par.statsJson, seq.statsJson)
            << "stats diverged at " << shards << " shards";
    }
}

TEST(TelemetryGather, EnablingTelemetryDoesNotPerturbTheRun)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(2);

    CapturedRun off = runCaptured(cfg, m, part, /*telemetry=*/false);
    CapturedRun on = runCaptured(cfg, m, part, /*telemetry=*/true);

    // Sampling is passive: same events, same clock, same traffic.
    EXPECT_EQ(on.result.commTicks, off.result.commTicks);
    EXPECT_EQ(on.result.finalTick, off.result.finalTick);
    EXPECT_EQ(on.result.executedEvents, off.result.executedEvents);
    EXPECT_EQ(on.result.totalWireBytes, off.result.totalWireBytes);
    EXPECT_EQ(on.result.cacheHits, off.result.cacheHits);
}

TEST(TelemetryGather, StatsDocumentGainsPrLatencyOnlyWhenEnabled)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(1);

    CapturedRun off = runCaptured(cfg, m, part, /*telemetry=*/false);
    EXPECT_EQ(off.statsJson.find("prLatency"), std::string::npos);
    EXPECT_EQ(off.telemetryJson.find("\"run\":0"), std::string::npos);

    CapturedRun on = runCaptured(cfg, m, part, /*telemetry=*/true);
    jsonlite::Value stats = jsonlite::parse(on.statsJson);
    const jsonlite::Value &run = stats.at("runs").at(0);
    const jsonlite::Value &st = run.at("stats");
    ASSERT_TRUE(st.has("cluster.prLatency.totalNs"));
    ASSERT_TRUE(st.has("cluster.prLatency.responses"));
    // The stage decomposition and its tail percentiles are present.
    for (const char *stage :
         {"nicNs", "requestNetNs", "cacheNs", "remoteNs",
          "responseNetNs", "totalNs"}) {
        std::string base = std::string("cluster.prLatency.") + stage;
        EXPECT_TRUE(st.has(base)) << base;
        EXPECT_TRUE(st.has(base + ".p50")) << base;
        EXPECT_TRUE(st.has(base + ".p99")) << base;
        EXPECT_TRUE(st.has(base + ".p999")) << base;
    }
    // Every accepted response was timed end to end.
    double responses =
        st.at("cluster.prLatency.responses").at("value").number;
    EXPECT_GT(responses, 0.0);
    EXPECT_EQ(st.at("cluster.prLatency.totalNs").at("total").number,
              responses);
}
