/**
 * @file
 * The multi-tenant headline guarantees: a 3-job run with background
 * traffic, fair queueing and partitioned caches produces byte-identical
 * stats and telemetry documents at 1, 2 and 4 shards; the documents
 * carry the cluster.tenant<t>.* schema; and the FIFO vs fair-queueing
 * choice is a real behavioral knob, not a label.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/job_scheduler.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

GatherWorkload
sliceWork(const Csr &m, std::uint32_t nodes)
{
    GatherWorkload w;
    w.numIdxs = m.cols;
    w.part = Partition1D::equalRows(m.rows, nodes);
    w.streams.reserve(nodes);
    for (NodeId nid = 0; nid < nodes; ++nid)
        w.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[w.part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[w.part.end(nid)]);
    return w;
}

/** Three heterogeneous jobs: different matrices, K and admission. */
std::vector<JobSpec>
threeJobs()
{
    static const Csr a = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    static const Csr q = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    static const Csr e = makeBenchmarkMatrix(MatrixKind::Europe, 0.02);
    std::vector<JobSpec> specs(3);
    specs[0].work = sliceWork(a, 16);
    specs[0].k = 16;
    specs[1].work = sliceWork(q, 16);
    specs[1].k = 8;
    specs[1].startDelay = 2 * ticks::us;
    specs[2].work = sliceWork(e, 16);
    specs[2].k = 32;
    specs[2].startDelay = 5 * ticks::us;
    return specs;
}

struct CapturedRun
{
    std::string statsJson;
    std::string telemetryJson;
    MultiJobResult result;
};

CapturedRun
runCaptured(ClusterConfig cfg, bool telemetry = true)
{
    StatsExport stats;
    stats.setCollect(true);
    StatsExport::Bind statsBind(stats);
    TelemetrySink sink;
    sink.setCollect(telemetry);
    TelemetrySink::Bind telemetryBind(sink);

    BackgroundTrafficConfig bg;
    EXPECT_TRUE(BackgroundTrafficConfig::parse("incast:0.4:300", bg));

    CapturedRun out;
    JobScheduler sched(cfg);
    out.result = sched.run(threeJobs(), bg);
    out.statsJson = stats.toJson();
    out.telemetryJson = sink.toJson();
    return out;
}

} // namespace

TEST(MultiTenant, StatsAndTelemetryAreByteIdenticalAcrossShardCounts)
{
    ClusterConfig cfg = shardableCluster(1);
    cfg.fairQueue = true;
    cfg.tenantCachePartitioned = true;

    CapturedRun seq = runCaptured(cfg);
    EXPECT_EQ(seq.result.simShards, 1u);
    ASSERT_EQ(seq.result.jobs.size(), 3u);

    for (std::uint32_t shards : {2u, 4u}) {
        ClusterConfig pcfg = shardableCluster(shards);
        pcfg.fairQueue = true;
        pcfg.tenantCachePartitioned = true;
        CapturedRun par = runCaptured(pcfg);
        EXPECT_EQ(par.result.simShards, shards);
        EXPECT_GT(par.result.epochs, 0u);
        EXPECT_EQ(par.statsJson, seq.statsJson)
            << "stats diverged at " << shards << " shards";
        EXPECT_EQ(par.telemetryJson, seq.telemetryJson)
            << "telemetry diverged at " << shards << " shards";
        EXPECT_EQ(par.result.makespanTicks, seq.result.makespanTicks);
        EXPECT_EQ(par.result.executedEvents, seq.result.executedEvents);
        EXPECT_EQ(par.result.finalTick, seq.result.finalTick);
        EXPECT_EQ(par.result.totalWireBytes, seq.result.totalWireBytes);
        EXPECT_EQ(par.result.backgroundDelivered,
                  seq.result.backgroundDelivered);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(par.result.jobs[j].commTicks,
                      seq.result.jobs[j].commTicks);
    }
}

TEST(MultiTenant, DocumentCarriesTheTenantSchema)
{
    ClusterConfig cfg = shardableCluster(1);
    cfg.fairQueue = true;
    cfg.tenantCachePartitioned = true;
    CapturedRun run = runCaptured(cfg);

    for (const char *key :
         {"cluster.jobs", "cluster.makespanTicks",
          "cluster.tenant0.commTicks", "cluster.tenant1.startDelayTicks",
          "cluster.tenant2.tailGoodput", "cluster.tenant2.finishTimeNs",
          "cluster.background.packetsInjected",
          "cluster.background.packetsDelivered", "node0.job0.snic.",
          "node0.job2.snic.", ".fq.enqueued", ".tenant0.cache."})
        EXPECT_NE(run.statsJson.find(key), std::string::npos)
            << "missing " << key;
    // The legacy single-job headline key must NOT appear: the tenant
    // schema replaces it rather than aliasing job0 into it.
    EXPECT_EQ(run.statsJson.find("\"cluster.commTicks\""),
              std::string::npos);
    // Telemetry grew per-tenant entities alongside the per-job RIGs.
    EXPECT_NE(run.telemetryJson.find("node0.job1.rig"),
              std::string::npos);
    EXPECT_NE(run.telemetryJson.find("\"tenant\""), std::string::npos);
}

TEST(MultiTenant, FairQueueingChangesContendedTiming)
{
    // Under an incast flood the switch scheduling discipline must be
    // load-bearing: FIFO and per-tenant DRR produce different job
    // completion times (the bench quantifies the direction; here we
    // pin only that the knob is wired through to behavior).
    ClusterConfig fifo = shardableCluster(1);
    CapturedRun a = runCaptured(fifo, /*telemetry=*/false);

    ClusterConfig fq = shardableCluster(1);
    fq.fairQueue = true;
    CapturedRun b = runCaptured(fq, /*telemetry=*/false);

    EXPECT_EQ(a.statsJson.find(".fq.enqueued"), std::string::npos);
    EXPECT_NE(b.statsJson.find(".fq.enqueued"), std::string::npos);
    bool any_differs =
        a.result.makespanTicks != b.result.makespanTicks;
    for (std::size_t j = 0; j < 3; ++j)
        any_differs = any_differs || a.result.jobs[j].commTicks !=
                                         b.result.jobs[j].commTicks;
    EXPECT_TRUE(any_differs)
        << "fair queueing had no effect on a contended run";
}
