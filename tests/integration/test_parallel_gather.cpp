/**
 * @file
 * The parallel engine's headline guarantee: a gather produces
 * byte-identical statistics at any shard count. These tests run the
 * same small cluster at 1, 2 and 4 shards and compare the complete
 * netsparse-stats-v1 JSON documents, plus the scalar run results.
 */

#include <gtest/gtest.h>

#include <string>

#include "runtime/cluster.hh"
#include "sim/stats_export.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

/** Run one gather under a private collector; return its JSON document. */
std::string
runToJson(ClusterConfig cfg, const Csr &m, const Partition1D &part,
          GatherRunResult *out = nullptr)
{
    StatsExport collector;
    collector.setCollect(true);
    StatsExport::Bind bind(collector);
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    if (out)
        *out = r;
    return collector.toJson();
}

} // namespace

TEST(ParallelGather, StatsJsonIsByteIdenticalAcrossShardCounts)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    GatherRunResult seq;
    std::string ref = runToJson(shardableCluster(1), m, part, &seq);
    EXPECT_EQ(seq.simShards, 1u);
    EXPECT_EQ(seq.epochs, 0u);

    for (std::uint32_t shards : {2u, 4u}) {
        GatherRunResult par;
        std::string got =
            runToJson(shardableCluster(shards), m, part, &par);
        EXPECT_EQ(par.simShards, shards);
        EXPECT_GT(par.epochs, 0u);
        EXPECT_EQ(got, ref) << "stats diverged at " << shards
                            << " shards";
        // The scalar results agree too (same events, same end of time).
        EXPECT_EQ(par.commTicks, seq.commTicks);
        EXPECT_EQ(par.tailNode, seq.tailNode);
        EXPECT_EQ(par.executedEvents, seq.executedEvents);
        EXPECT_EQ(par.finalTick, seq.finalTick);
        EXPECT_EQ(par.totalWireBytes, seq.totalWireBytes);
    }
}

TEST(ParallelGather, FaultInjectionIsByteIdenticalAcrossShardCounts)
{
    // The resilience headline: fault draws are keyed on per-link send
    // sequences, never on global RNG state, so a lossy run is exactly
    // as shard-deterministic as a clean one - retransmits, NACKs and
    // all. Drop rate is high enough that recovery machinery engages.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(1);
    cfg.faults.dropRate = 2e-3;
    cfg.faults.corruptRate = 5e-4;
    cfg.faults.seed = 11;

    GatherRunResult seq;
    std::string ref = runToJson(cfg, m, part, &seq);
    EXPECT_TRUE(seq.faultsEnabled);
    EXPECT_TRUE(seq.recoveryEnabled);
    EXPECT_GT(seq.packetsDropped, 0u);
    // The gather still delivered everything: no host-visible failures.
    EXPECT_EQ(seq.sumNodes([](const NodeRunStats &n) {
                  return n.permanentFailures;
              }),
              0u);
    // The recovery counters made it into the exported document.
    EXPECT_NE(ref.find("cluster.recovery.retransmits"),
              std::string::npos);
    EXPECT_NE(ref.find("cluster.faults.packetsDropped"),
              std::string::npos);

    for (std::uint32_t shards : {2u, 4u}) {
        ClusterConfig pcfg = shardableCluster(shards);
        pcfg.faults = cfg.faults;
        GatherRunResult par;
        std::string got = runToJson(pcfg, m, part, &par);
        EXPECT_EQ(par.simShards, shards);
        EXPECT_EQ(got, ref) << "faulty stats diverged at " << shards
                            << " shards";
        EXPECT_EQ(par.commTicks, seq.commTicks);
        EXPECT_EQ(par.packetsDropped, seq.packetsDropped);
    }
}

TEST(ParallelGather, LookaheadIsTheCrossShardLinkLatency)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);
    ClusterConfig cfg = shardableCluster(4);
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    EXPECT_EQ(r.simShards, 4u);
    // All links share one configured latency, so the conservative
    // lookahead equals it exactly.
    EXPECT_EQ(r.lookaheadTicks, cfg.link.latency);
}

TEST(ParallelGather, AllTopologiesAreDeterministicWhenSharded)
{
    // HyperX and Dragonfly are fixed 128-node configurations; compare
    // the 1-shard and 4-shard documents on a tiny matrix.
    Csr m = makeBenchmarkMatrix(MatrixKind::Europe, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 128);
    for (TopologyKind kind :
         {TopologyKind::LeafSpine, TopologyKind::HyperX,
          TopologyKind::Dragonfly}) {
        ClusterConfig cfg = defaultClusterConfig(128);
        cfg.topology = kind;
        cfg.simShards = 1;
        GatherRunResult seq;
        std::string ref = runToJson(cfg, m, part, &seq);
        cfg.simShards = 4;
        GatherRunResult par;
        std::string got = runToJson(cfg, m, part, &par);
        EXPECT_EQ(par.simShards, 4u);
        EXPECT_EQ(got, ref)
            << "stats diverged on " << static_cast<int>(kind);
        EXPECT_EQ(par.lookaheadTicks, cfg.link.latency);
        EXPECT_EQ(par.commTicks, seq.commTicks);
    }
}

TEST(ParallelGather, RackCountCapsTheShardCount)
{
    // One rack: any request collapses to a sequential run.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 8);
    ClusterConfig cfg = defaultClusterConfig(8);
    cfg.nodesPerRack = 8;
    cfg.simShards = 4;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    EXPECT_EQ(r.simShards, 1u);
    EXPECT_EQ(r.epochs, 0u);
}
