/** @file Tests for end-to-end composition (Figures 13/14/21 machinery). */

#include <gtest/gtest.h>

#include "baseline/baselines.hh"
#include "runtime/cluster.hh"
#include "runtime/end_to_end.hh"
#include "sparse/generators.hh"

using namespace netsparse;

TEST(EndToEnd, CombinePhasesBoundsAndExtremes)
{
    EXPECT_EQ(combinePhases(100, 40, 0.0), 100u); // perfect overlap
    EXPECT_EQ(combinePhases(100, 40, 1.0), 140u); // fully serial
    EXPECT_EQ(combinePhases(100, 40, 0.5), 120u);
    EXPECT_EQ(combinePhases(40, 100, 0.5), 120u); // symmetric
    EXPECT_EQ(combinePhases(0, 100, 0.5), 100u);
    EXPECT_THROW(combinePhases(1, 1, 2.0), std::logic_error);
}

TEST(EndToEnd, ComposeMatchesHandComputation)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    std::vector<Tick> comm(nodes, 1000 * ticks::ns);

    EndToEndConfig cfg{spadeAccelerator(), 0.5};
    EndToEndResult r = composeEndToEnd(m, part, 16, comm, cfg);
    ASSERT_EQ(r.perNodeTotal.size(), nodes);

    Tick max_total = 0, max_comp = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        std::uint64_t nnz =
            m.rowPtr[part.end(n)] - m.rowPtr[part.begin(n)];
        Tick comp = spmmTime(cfg.device, nnz, part.size(n), 16);
        EXPECT_EQ(r.perNodeTotal[n], combinePhases(comp, comm[n], 0.5));
        max_total = std::max(max_total, r.perNodeTotal[n]);
        max_comp = std::max(max_comp, comp);
    }
    EXPECT_EQ(r.totalTicks, max_total);
    EXPECT_EQ(r.idealTicks, max_comp);
    EXPECT_LE(r.idealTicks, r.totalTicks);
}

TEST(EndToEnd, SingleNodeTimeScalesWithMatrix)
{
    Csr small = makeBenchmarkMatrix(MatrixKind::Uk, 0.02);
    Csr big = makeBenchmarkMatrix(MatrixKind::Uk, 0.05);
    auto dev = spadeAccelerator();
    EXPECT_LT(singleNodeTime(small, 16, dev), singleNodeTime(big, 16, dev));
    EXPECT_LT(singleNodeTime(small, 16, dev),
              singleNodeTime(small, 128, dev));
}

TEST(EndToEnd, DistributionBeatsSingleNodeWhenCommIsCheap)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.05);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    std::vector<Tick> free_comm(nodes, 0);
    EndToEndConfig cfg{spadeAccelerator(), 0.5};
    EndToEndResult r = composeEndToEnd(m, part, 16, free_comm, cfg);
    Tick t1 = singleNodeTime(m, 16, cfg.device);
    double speedup = static_cast<double>(t1) / r.totalTicks;
    EXPECT_GT(speedup, nodes * 0.5);
    EXPECT_LE(speedup, nodes * 1.05);
}

TEST(EndToEnd, NetSparseBeatsSoftwareBaselinesOnArabic)
{
    // The paper's headline ordering at one design point:
    // NetSparse > SAOpt > SUOpt for accelerated SpMM on a web crawl.
    // K=128 so SUOpt's redundant bytes dominate its ideal line rate
    // (at our reduced matrix scale, small K deflates SU redundancy).
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.5);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    const std::uint32_t k = 128;

    ClusterConfig ccfg = defaultClusterConfig(nodes);
    ccfg.nodesPerRack = 4;
    ccfg.numSpines = 4;
    GatherRunResult net = ClusterSim(ccfg).runGather(m, part, k);
    std::vector<Tick> net_comm(nodes);
    for (NodeId n = 0; n < nodes; ++n)
        net_comm[n] = net.nodes[n].finishTick;

    BaselineParams bp;
    bp.ranksPerNode = 8; // concentrate rank-level reuse (see above)
    BaselineResult su = runSuOpt(m, part, k, bp);
    BaselineResult sa = runSaOpt(m, part, k, bp);

    EndToEndConfig cfg{spadeAccelerator(), 0.5};
    Tick t1 = singleNodeTime(m, k, cfg.device);
    auto speedup = [&](const std::vector<Tick> &comm) {
        EndToEndResult r = composeEndToEnd(m, part, k, comm, cfg);
        return static_cast<double>(t1) / r.totalTicks;
    };
    double s_net = speedup(net_comm);
    double s_sa = speedup(sa.perNodeTicks);
    double s_su = speedup(su.perNodeTicks);
    EXPECT_GT(s_net, s_sa);
    EXPECT_GT(s_sa, s_su);
}
