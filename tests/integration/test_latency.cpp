/**
 * @file
 * Latency validation: the paper's Table 5 quotes 2.4 us intra-rack and
 * 5.4 us inter-rack round trips (450 ns links, 300 ns switch hops).
 * A single-property gather through a hand-built two-rack cluster must
 * land in that neighborhood once the fixed SNIC-side costs (doorbell,
 * DMA, concatenation delay, host-memory fetch) are added.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/verbs.hh"
#include "net/switch.hh"
#include "snic/snic.hh"

using namespace netsparse;

namespace {

/** node 0 under ToR A, node 1 under ToR B, one spine between. */
struct TwoRackWorld
{
    EventQueue eq;
    ProtocolParams proto;
    std::unique_ptr<Snic> snic0, snic1;
    std::unique_ptr<Switch> torA, torB, spine;
    std::vector<std::unique_ptr<Link>> links;

    Link *
    link(PacketSink *sink, std::uint32_t port, const char *name)
    {
        links.push_back(std::make_unique<Link>(eq, LinkConfig{}, proto,
                                               sink, port, name));
        return links.back().get();
    }

    TwoRackWorld()
    {
        SnicConfig scfg;
        scfg.numRigUnits = 2;
        scfg.proto = proto;
        scfg.concat.proto = proto;
        scfg.concat.delay = 227 * ticks::ns; // 500 cycles at 2.2 GHz
        auto owner = [](PropIdx idx) {
            return static_cast<NodeId>(idx % 2);
        };
        snic0 = std::make_unique<Snic>(eq, scfg, 0, owner, 4096, "s0");
        snic1 = std::make_unique<Snic>(eq, scfg, 1, owner, 4096, "s1");

        SwitchConfig tor_cfg;
        tor_cfg.proto = proto;
        tor_cfg.netsparseEnabled = true;
        tor_cfg.concat.proto = proto;
        tor_cfg.concat.delay = 62 * ticks::ns + 500; // 125 cy at 2 GHz
        tor_cfg.cache.totalBytes = 1 << 20;
        torA = std::make_unique<Switch>(eq, tor_cfg, 0, "torA");
        torB = std::make_unique<Switch>(eq, tor_cfg, 1, "torB");
        SwitchConfig spine_cfg;
        spine_cfg.proto = proto;
        spine = std::make_unique<Switch>(eq, spine_cfg, 2, "spine");

        // torA: port 0 host0, port 1 up. torB: port 0 host1, port 1 up.
        // spine: port 0 -> torA, port 1 -> torB.
        torA->attachPort(0, link(snic0.get(), 0, "a->h0"), true);
        torA->attachPort(1, link(spine.get(), 0, "a->sp"), false);
        torB->attachPort(0, link(snic1.get(), 0, "b->h1"), true);
        torB->attachPort(1, link(spine.get(), 1, "b->sp"), false);
        spine->attachPort(0, link(torA.get(), 1, "sp->a"), false);
        spine->attachPort(1, link(torB.get(), 1, "sp->b"), false);

        torA->setRouteFn([](NodeId d) -> std::uint32_t {
            return d == 0 ? 0 : 1;
        });
        torB->setRouteFn([](NodeId d) -> std::uint32_t {
            return d == 1 ? 0 : 1;
        });
        spine->setRouteFn([](NodeId d) -> std::uint32_t { return d; });
        torA->configureForKernel(64);
        torB->configureForKernel(64);

        snic0->attachEgress(link(torA.get(), 0, "h0->a"));
        snic1->attachEgress(link(torB.get(), 0, "h1->b"));
    }
};

} // namespace

TEST(Latency, SinglePropertyInterRackGather)
{
    TwoRackWorld w;
    std::vector<std::uint32_t> idx{1}; // homed on node 1, other rack
    RigQueuePair qp(w.eq, *w.snic0);
    IbvSendWr wr;
    wr.rig.idxList = idx.data();
    wr.rig.numIdxs = 1;
    wr.rig.propBytes = 64;
    ASSERT_TRUE(qp.postSend(wr));
    w.eq.run();
    IbvWc wc;
    ASSERT_TRUE(qp.pollCq(wc));
    EXPECT_EQ(wc.status, IbvWc::Status::Success);

    // Wire path (Table 5): 6 link crossings x 450 ns + 2 ToR hops
    // (300 ns + 8 ns cache) + 1 spine hop (300 ns) = 3.6 us one pair
    // of directions; SNIC-side fixed costs: doorbell 200 ns + idx DMA
    // 216 ns + NIC concat 227 ns each way + ToR concat 62 ns x4 +
    // server fetch ~516 ns + response DMA + completion ~400 ns.
    double us = ticks::toNs(w.eq.now()) / 1e3;
    EXPECT_GT(us, 4.0);
    EXPECT_LT(us, 8.0);
}

TEST(Latency, CacheHitHalvesTheRoundTrip)
{
    TwoRackWorld w;
    std::vector<std::uint32_t> idx{1};

    // First gather by node 0 warms torA's Property Cache.
    {
        RigQueuePair qp(w.eq, *w.snic0);
        IbvSendWr wr;
        wr.rig.idxList = idx.data();
        wr.rig.numIdxs = 1;
        wr.rig.propBytes = 64;
        ASSERT_TRUE(qp.postSend(wr));
        w.eq.run();
        IbvWc wc;
        ASSERT_TRUE(qp.pollCq(wc));
    }
    Tick first = w.eq.now();
    EXPECT_EQ(w.torA->cacheInserts(), 1u);

    // A second gather for the same idx must be served by torA: clear
    // node 0's filter (fresh "iteration" on the same switch state).
    w.snic0->configureForKernel();
    Tick start = w.eq.now();
    {
        RigQueuePair qp(w.eq, *w.snic0);
        IbvSendWr wr;
        wr.rig.idxList = idx.data();
        wr.rig.numIdxs = 1;
        wr.rig.propBytes = 64;
        ASSERT_TRUE(qp.postSend(wr));
        w.eq.run();
        IbvWc wc;
        ASSERT_TRUE(qp.pollCq(wc));
    }
    Tick second = w.eq.now() - start;
    EXPECT_EQ(w.torA->cacheHits(), 1u);
    // The served read never crossed the spine: markedly faster.
    EXPECT_LT(second, first * 3 / 4);
}
