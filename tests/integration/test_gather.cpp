/**
 * @file
 * Integration tests: full-cluster gathers through the complete NetSparse
 * stack, checking conservation invariants and functional completeness
 * for every ablation stage, matrix archetype and topology.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/comm_pattern.hh"
#include "runtime/cluster.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

ClusterConfig
smallCluster(std::uint32_t nodes, FeatureSet features = {})
{
    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.nodesPerRack = std::min<std::uint32_t>(4, nodes);
    cfg.numSpines = 4;
    cfg.features = features;
    return cfg;
}

/** Cluster-wide invariants every run must satisfy. */
void
checkInvariants(const GatherRunResult &r, const Csr &m,
                const Partition1D &part)
{
    std::uint64_t total_issued = 0, total_reads = 0, total_resp = 0;
    for (NodeId n = 0; n < part.numParts(); ++n) {
        const NodeRunStats &st = r.nodes[n];
        // Every idx of the node's stream was examined exactly once.
        std::uint64_t stream =
            m.rowPtr[part.end(n)] - m.rowPtr[part.begin(n)];
        EXPECT_EQ(st.idxsProcessed, stream) << "node " << n;
        // Each examined idx took exactly one of the four paths.
        EXPECT_EQ(st.localIdxs + st.filtered + st.coalesced +
                      st.prsIssued,
                  st.idxsProcessed)
            << "node " << n;
        // Every issued PR got exactly one response (checksum-verified
        // inside the RIG units).
        EXPECT_EQ(st.rxResponses, st.prsIssued) << "node " << n;
        EXPECT_EQ(st.watchdogFailures, 0u) << "node " << n;
        EXPECT_LE(st.finishTick, r.commTicks);
        total_issued += st.prsIssued;
        total_reads += st.rxReads;
        total_resp += st.rxResponses;
    }
    // Reads either reached a server SNIC or were served by a ToR cache.
    EXPECT_EQ(total_reads + r.prsServedByCache, total_issued);
    EXPECT_EQ(total_resp, total_issued);
    EXPECT_GT(r.commTicks, 0u);
    EXPECT_EQ(r.nodes[r.tailNode].finishTick, r.commTicks);
}

} // namespace

/** Sweep: all five ablation stages x three matrix archetypes. */
class GatherAblationTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, MatrixKind>>
{};

TEST_P(GatherAblationTest, InvariantsHoldAndGatherCompletes)
{
    auto [stage, kind] = GetParam();
    Csr m = makeBenchmarkMatrix(kind, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterConfig cfg = smallCluster(nodes,
                                     FeatureSet::ablationStage(stage));
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    checkInvariants(r, m, part);

    CommPattern cp = analyzeCommPattern(m, part);
    for (NodeId n = 0; n < nodes; ++n) {
        // A node can never fetch fewer distinct properties than it
        // needs, and with everything off it requests one per nonzero.
        EXPECT_GE(r.nodes[n].prsIssued, cp.nodes[n].uniqueRemote);
        EXPECT_EQ(r.nodes[n].remoteIdxs(), cp.nodes[n].remoteNnz);
        if (stage == 0)
            EXPECT_EQ(r.nodes[n].prsIssued, cp.nodes[n].remoteNnz);
    }
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndMatrices, GatherAblationTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::Values(MatrixKind::Arabic,
                                         MatrixKind::Europe,
                                         MatrixKind::Queen)),
    [](const auto &info) {
        return std::string(FeatureSet::stageName(std::get<0>(info.param))) +
               "_" + matrixName(std::get<1>(info.param));
    });

TEST(Gather, FilteringReducesTrafficMonotonically)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterSim rig_only(smallCluster(nodes, FeatureSet::rigOnly()));
    ClusterSim full(smallCluster(nodes, FeatureSet::full()));
    GatherRunResult a = rig_only.runGather(m, part, 16);
    GatherRunResult b = full.runGather(m, part, 16);
    std::uint64_t prs_a = 0, prs_b = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        prs_a += a.nodes[n].prsIssued;
        prs_b += b.nodes[n].prsIssued;
    }
    EXPECT_LT(prs_b, prs_a);
    EXPECT_LT(b.totalWireBytes, a.totalWireBytes);
}

TEST(Gather, ConcatenationPacksPrs)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    FeatureSet no_concat = FeatureSet::full();
    no_concat.concatNic = false;
    no_concat.concatSwitch = false;
    no_concat.switchCache = false;
    ClusterSim plain(smallCluster(nodes, no_concat));
    ClusterSim full(smallCluster(nodes, FeatureSet::full()));
    GatherRunResult a = plain.runGather(m, part, 16);
    GatherRunResult b = full.runGather(m, part, 16);
    EXPECT_NEAR(a.avgPrsPerPacket, 1.0, 1e-9);
    EXPECT_GT(b.avgPrsPerPacket, 2.0);
    // Sharing headers shrinks the bytes moved for the same payload.
    EXPECT_LT(b.totalWireBytes, a.totalWireBytes);
}

TEST(Gather, CacheServesSharedProperties)
{
    // All nodes of racks 1..3 read a shared pool of columns homed in
    // rack 0. Latencies are tightened so the response round trip is
    // much shorter than the run: later requesters then find their
    // rack-mates' fetches in the ToR cache.
    Coo coo;
    coo.rows = coo.cols = 1600; // 100 rows per node
    for (std::uint32_t r = 400; r < 1600; ++r) {
        for (int k = 0; k < 8; ++k) {
            std::uint32_t c = static_cast<std::uint32_t>(
                splitmix64(r * 8 + k) % 320); // pool: rack 0's columns
            coo.push(r, c);
        }
    }
    Csr m = Csr::fromCoo(coo);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterConfig cfg = smallCluster(nodes);
    cfg.link.latency = 5 * ticks::ns;
    cfg.switchPipelineLatency = 10 * ticks::ns;
    cfg.snic.pcie.latency = 10 * ticks::ns;
    cfg.snic.rigUnit.serverMemLatency = 10 * ticks::ns;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    checkInvariants(r, m, part);
    EXPECT_GT(r.cacheLookups, 0u);
    EXPECT_GT(r.cacheHits, 0u);
    EXPECT_EQ(r.prsServedByCache, r.cacheHits);
}

TEST(Gather, VirtualizedCqsAreFunctionallyEquivalent)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Uk, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterConfig plain_cfg = smallCluster(nodes);
    ClusterConfig virt_cfg = smallCluster(nodes);
    virt_cfg.virtualizedCqs = true;
    GatherRunResult a = ClusterSim(plain_cfg).runGather(m, part, 16);
    GatherRunResult b = ClusterSim(virt_cfg).runGather(m, part, 16);
    checkInvariants(b, m, part);
    // Same functional outcome: the same streams are gathered. Packet
    // timing shifts a little, so the count of in-flight duplicate PRs
    // (part of rxResponses) may differ by a hair.
    for (NodeId n = 0; n < nodes; ++n) {
        EXPECT_EQ(a.nodes[n].idxsProcessed, b.nodes[n].idxsProcessed);
        EXPECT_NEAR(static_cast<double>(a.nodes[n].rxResponses),
                    static_cast<double>(b.nodes[n].rxResponses),
                    0.02 * a.nodes[n].rxResponses + 2.0);
    }
}

class GatherTopologyTest : public ::testing::TestWithParam<TopologyKind>
{};

TEST_P(GatherTopologyTest, AllTopologiesDeliverTheGather)
{
    // The HyperX / Dragonfly configurations are fixed at 128 nodes.
    Csr m = makeBenchmarkMatrix(MatrixKind::Stokes, 0.02);
    const std::uint32_t nodes = 128;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);

    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.topology = GetParam();
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 4);
    checkInvariants(r, m, part);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GatherTopologyTest,
                         ::testing::Values(TopologyKind::LeafSpine,
                                           TopologyKind::HyperX,
                                           TopologyKind::Dragonfly),
                         [](const auto &info) {
                             switch (info.param) {
                               case TopologyKind::LeafSpine:
                                 return "leafspine";
                               case TopologyKind::HyperX:
                                 return "hyperx";
                               case TopologyKind::Dragonfly:
                                 return "dragonfly";
                             }
                             return "unknown";
                         });

TEST(Gather, PropertySizesFromSpmvToWide)
{
    // K = 1, 16, 128 all complete and move proportional payload.
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    std::uint64_t prev_payload = 0;
    for (std::uint32_t k : {1u, 16u, 128u}) {
        ClusterSim sim(smallCluster(nodes));
        GatherRunResult r = sim.runGather(m, part, k);
        checkInvariants(r, m, part);
        std::uint64_t payload = 0;
        for (const auto &n : r.nodes)
            payload += n.rxPayloadBytes;
        EXPECT_GT(payload, prev_payload);
        prev_payload = payload;
    }
}

TEST(Gather, SingleRackClusterWorks)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Europe, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.nodesPerRack = 8; // one rack: ToR only, no spines, no caching
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    checkInvariants(r, m, part);
    EXPECT_EQ(r.cacheLookups, 0u);
}

TEST(Gather, MismatchedPartitionPanics)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Europe, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 8);
    ClusterSim sim(smallCluster(16));
    EXPECT_THROW(sim.runGather(m, part, 16), std::logic_error);
}

TEST(Gather, PerPipeCacheModeSatisfiesInvariants)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    ClusterConfig cfg = smallCluster(nodes);
    cfg.cachePerPipe = true;
    ClusterSim sim(cfg);
    GatherRunResult r = sim.runGather(m, part, 16);
    checkInvariants(r, m, part);
}

TEST(Gather, DeterministicAcrossRuns)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Stokes, 0.02);
    const std::uint32_t nodes = 16;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    GatherRunResult a = ClusterSim(smallCluster(nodes)).runGather(m, part, 16);
    GatherRunResult b = ClusterSim(smallCluster(nodes)).runGather(m, part, 16);
    EXPECT_EQ(a.commTicks, b.commTicks);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    for (NodeId n = 0; n < nodes; ++n)
        EXPECT_EQ(a.nodes[n].finishTick, b.nodes[n].finishTick);
}
