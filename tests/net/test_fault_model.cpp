/**
 * @file
 * Unit tests for the deterministic fault-injection model: the --faults
 * spec parser, shard-stable per-link fault streams, and the per-class
 * verdict semantics (drop, corrupt, down, degrade).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/fault_model.hh"

using namespace netsparse;

namespace {

Packet
responsePacket(std::size_t num_prs = 1)
{
    Packet p;
    p.src = 0;
    p.dest = 1;
    p.type = PrType::Response;
    p.concatenated = num_prs > 1;
    for (std::size_t i = 0; i < num_prs; ++i) {
        PropertyRequest pr;
        pr.type = PrType::Response;
        pr.idx = static_cast<PropIdx>(i);
        pr.propBytes = 64;
        pr.payloadBytes = 64;
        pr.checksum = propertyChecksum(pr.idx);
        p.prs.push_back(pr);
    }
    return p;
}

Packet
readPacket()
{
    Packet p;
    p.src = 0;
    p.dest = 1;
    p.type = PrType::Read;
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.idx = 7;
    pr.propBytes = 64;
    p.prs.push_back(pr);
    return p;
}

} // namespace

TEST(FaultModel, ParsesAFullSpec)
{
    FaultConfig cfg = FaultConfig::parse(
        "drop:1e-4,corrupt:1e-5,down:1e-6,downUs:5,degrade:1e-5,"
        "degradeUs:20,degradeFactor:0.25,seed:42");
    EXPECT_DOUBLE_EQ(cfg.dropRate, 1e-4);
    EXPECT_DOUBLE_EQ(cfg.corruptRate, 1e-5);
    EXPECT_DOUBLE_EQ(cfg.linkDownRate, 1e-6);
    EXPECT_EQ(cfg.linkDownTicks, 5 * ticks::us);
    EXPECT_DOUBLE_EQ(cfg.degradeRate, 1e-5);
    EXPECT_EQ(cfg.degradeTicks, 20 * ticks::us);
    EXPECT_DOUBLE_EQ(cfg.degradeFactor, 0.25);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_TRUE(cfg.enabled());
}

TEST(FaultModel, EmptySpecDisablesEverything)
{
    FaultConfig cfg = FaultConfig::parse("");
    EXPECT_FALSE(cfg.enabled());
    EXPECT_DOUBLE_EQ(cfg.dropRate, 0.0);
}

TEST(FaultModel, ParserRejectsGarbage)
{
    EXPECT_THROW(FaultConfig::parse("warp:0.5"), std::runtime_error);
    EXPECT_THROW(FaultConfig::parse("drop"), std::runtime_error);
    EXPECT_THROW(FaultConfig::parse("drop:lots"), std::runtime_error);
    EXPECT_THROW(FaultConfig::parse("drop:1.5"), std::runtime_error);
    EXPECT_THROW(FaultConfig::parse("degradeFactor:0"),
                 std::runtime_error);
}

TEST(FaultModel, FaultStreamIsAPureFunctionOfSeedAndOrderingId)
{
    FaultConfig cfg;
    cfg.dropRate = 0.1;
    cfg.corruptRate = 0.05;
    cfg.seed = 5;
    LinkFaultInjector a(cfg, 17), b(cfg, 17), other(cfg, 18);
    bool diverged = false;
    for (int i = 0; i < 2000; ++i) {
        Packet pa = responsePacket(), pb = responsePacket();
        Packet pc = responsePacket();
        auto va = a.onSend(pa, 0);
        auto vb = b.onSend(pb, 0);
        auto vc = other.onSend(pc, 0);
        // Identical (seed, orderingId, seq) -> identical verdicts.
        EXPECT_EQ(va.dropOnWire, vb.dropOnWire);
        EXPECT_EQ(va.corrupted, vb.corrupted);
        if (va.dropOnWire != vc.dropOnWire ||
            va.corrupted != vc.corrupted)
            diverged = true;
    }
    EXPECT_EQ(a.stats().randomDrops, b.stats().randomDrops);
    EXPECT_EQ(a.stats().corruptedPrs, b.stats().corruptedPrs);
    // A different orderingId yields an independent stream.
    EXPECT_TRUE(diverged);
}

TEST(FaultModel, DropRateIsStatisticallyHonored)
{
    FaultConfig cfg;
    cfg.dropRate = 0.1;
    cfg.seed = 9;
    LinkFaultInjector inj(cfg, 0);
    for (int i = 0; i < 10000; ++i) {
        Packet p = responsePacket();
        inj.onSend(p, 0);
    }
    // Binomial(10000, 0.1): mean 1000, sigma ~30. Generous 5-sigma
    // bounds keep this deterministic test honest about the rate.
    EXPECT_GT(inj.stats().randomDrops, 850u);
    EXPECT_LT(inj.stats().randomDrops, 1150u);
}

TEST(FaultModel, LinkDownWindowDiscardsBeforeTheWire)
{
    FaultConfig cfg;
    cfg.linkDownRate = 0.999; // the first send opens a window
    cfg.linkDownTicks = 5 * ticks::us;
    LinkFaultInjector inj(cfg, 3);
    Packet p = responsePacket();
    auto v0 = inj.onSend(p, 0);
    EXPECT_TRUE(v0.dropBeforeWire);
    EXPECT_EQ(inj.stats().downWindows, 1u);
    // Inside the window everything dies; no new window is drawn.
    Packet q = responsePacket();
    auto v1 = inj.onSend(q, 2 * ticks::us);
    EXPECT_TRUE(v1.dropBeforeWire);
    EXPECT_EQ(inj.stats().downWindows, 1u);
    EXPECT_EQ(inj.stats().linkDownDrops, 2u);
    EXPECT_EQ(inj.stats().linkDownTicks, 5 * ticks::us);
}

TEST(FaultModel, CorruptionFlipsExactlyOneResponseChecksum)
{
    FaultConfig cfg;
    cfg.corruptRate = 0.999;
    LinkFaultInjector inj(cfg, 1);

    // Reads are pure headers: never corrupted.
    Packet r = readPacket();
    auto vr = inj.onSend(r, 0);
    EXPECT_FALSE(vr.corrupted);
    EXPECT_EQ(inj.stats().corruptedPrs, 0u);

    // A concatenated response loses exactly one PR's integrity.
    Packet p = responsePacket(8);
    auto vp = inj.onSend(p, 0);
    ASSERT_TRUE(vp.corrupted);
    std::size_t bad = 0;
    for (const auto &pr : p.prs)
        if (pr.checksum != propertyChecksum(pr.idx))
            ++bad;
    EXPECT_EQ(bad, 1u);
    EXPECT_EQ(inj.stats().corruptedPrs, 1u);
}

TEST(FaultModel, DegradeWindowScalesBandwidthWithoutLoss)
{
    FaultConfig cfg;
    cfg.degradeRate = 0.999;
    cfg.degradeTicks = 20 * ticks::us;
    cfg.degradeFactor = 0.25;
    LinkFaultInjector inj(cfg, 2);
    Packet p = responsePacket();
    auto v = inj.onSend(p, 0);
    EXPECT_FALSE(v.dropBeforeWire);
    EXPECT_FALSE(v.dropOnWire);
    EXPECT_DOUBLE_EQ(v.bandwidthFactor, 0.25);
    EXPECT_EQ(inj.stats().degradeWindows, 1u);
    // Past the window the link runs at full rate again.
    Packet q = responsePacket();
    // (degrade may re-trigger; with rate ~1 it will, opening a second
    // window - both verdicts still carry the degraded factor.)
    auto v2 = inj.onSend(q, 25 * ticks::us);
    EXPECT_DOUBLE_EQ(v2.bandwidthFactor, 0.25);
    EXPECT_EQ(inj.stats().degradeWindows, 2u);
}
