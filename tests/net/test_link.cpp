/** @file Tests for the link model (serialization, queueing, faults). */

#include <gtest/gtest.h>

#include <vector>

#include "net/link.hh"

using namespace netsparse;

namespace {

struct RecordingSink : PacketSink
{
    struct Arrival
    {
        Packet pkt;
        std::uint32_t port;
        Tick when;
    };

    explicit RecordingSink(EventQueue &eq) : eq(eq) {}

    void
    receivePacket(Packet &&pkt, std::uint32_t in_port) override
    {
        arrivals.push_back({std::move(pkt), in_port, eq.now()});
    }

    EventQueue &eq;
    std::vector<Arrival> arrivals;
};

Packet
soloPacket(std::uint32_t payload, NodeId dest = 1)
{
    Packet p;
    p.src = 0;
    p.dest = dest;
    p.type = PrType::Response;
    p.concatenated = false;
    PropertyRequest pr;
    pr.type = PrType::Response;
    pr.payloadBytes = payload;
    pr.propBytes = payload;
    p.prs.push_back(pr);
    return p;
}

} // namespace

TEST(Link, SerializationPlusPropagation)
{
    EventQueue eq;
    RecordingSink sink(eq);
    LinkConfig lc; // 400 Gbps, 450 ns
    Link link(eq, lc, {}, &sink, 7, "l0");

    // Solo response of 1362 B payload -> 1440 B wire -> 28.8 ns of
    // serialization at 0.05 B/ps, plus 450 ns of propagation.
    link.send(soloPacket(1362));
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0].port, 7u);
    EXPECT_EQ(sink.arrivals[0].when, 28800 * ticks::ps + 450 * ticks::ns);
    EXPECT_EQ(link.bytesSent(), 1440u);
    EXPECT_EQ(link.payloadBytesSent(), 1362u);
}

TEST(Link, BackToBackPacketsQueue)
{
    EventQueue eq;
    RecordingSink sink(eq);
    Link link(eq, {}, {}, &sink, 0, "l1");
    // Two 578 B-wire packets (78 B header + 500 B payload): 11.56 ns
    // of serialization each.
    link.send(soloPacket(500));
    link.send(soloPacket(500));
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    EXPECT_EQ(sink.arrivals[1].when - sink.arrivals[0].when,
              11560u * ticks::ps);
    EXPECT_EQ(link.busyTicks(), 23120u * ticks::ps);
}

TEST(Link, QueueDelayReflectsBacklog)
{
    EventQueue eq;
    RecordingSink sink(eq);
    Link link(eq, {}, {}, &sink, 0, "l2");
    EXPECT_EQ(link.queueDelay(), 0u);
    for (int i = 0; i < 10; ++i)
        link.send(soloPacket(1362)); // 28.8 ns each
    EXPECT_EQ(link.queueDelay(), 288u * ticks::ns);
    EXPECT_GT(link.queuedBytes(), 13000u);
    eq.run();
    EXPECT_EQ(link.queueDelay(), 0u);
}

TEST(Link, OversizedPacketPanics)
{
    EventQueue eq;
    RecordingSink sink(eq);
    Link link(eq, {}, {}, &sink, 0, "l3");
    EXPECT_THROW(link.send(soloPacket(2000)), std::logic_error);
}

TEST(Link, ScriptedDropLosesPacketsButBurnsWireTime)
{
    EventQueue eq;
    RecordingSink sink(eq);
    Link link(eq, {}, {}, &sink, 0, "l4");
    link.configureFaults(FaultConfig{});
    int dropped_so_far = 0;
    link.faults()->scriptDrop([&](const Packet &) {
        return dropped_so_far++ == 0; // lose only the first packet
    });
    link.send(soloPacket(100));
    link.send(soloPacket(100));
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    // The lost packet counts only in the drop statistics: sent
    // packet/byte/payload totals cover delivered packets exclusively.
    EXPECT_EQ(link.packetsDropped(), 1u);
    EXPECT_EQ(link.bytesDropped(), 178u); // 78 B header + 100 B payload
    EXPECT_EQ(link.faults()->stats().scriptedDrops, 1u);
    EXPECT_EQ(link.packetsSent(), 1u);
    EXPECT_EQ(link.bytesSent(), 178u);
    EXPECT_EQ(link.payloadBytesSent(), 100u);
    // But it still burned wire time: the survivor waited behind the
    // dropped packet's serialization.
    EXPECT_EQ(link.busyTicks(), 2u * 3560u * ticks::ps);
    EXPECT_GT(sink.arrivals[0].when, 450u * ticks::ns + 3u * ticks::ns);
}

TEST(Link, UtilizationTracksBusyFraction)
{
    EventQueue eq;
    RecordingSink sink(eq);
    Link link(eq, {}, {}, &sink, 0, "l5");
    link.send(soloPacket(1362)); // busy 28.8 ns, idle until 478.8 ns
    eq.run();
    EXPECT_NEAR(link.utilization(), 28.8 / 478.8, 1e-6);
}

namespace {

/** A fused-capable sink, so hybrid fidelity is eligible on the link. */
struct FusedSink : PacketSink
{
    bool fusedCapable() const override { return true; }
    Tick fusedIngressDelay() const override { return 0; }
    void
    receivePacket(Packet &&, std::uint32_t) override
    {
        ++exact;
    }
    void
    fusedDeliver(Packet &&, std::uint32_t) override
    {
        ++fused;
    }
    int exact = 0;
    int fused = 0;
};

} // namespace

TEST(Link, DroppedSendsFeedTheCongestionDetector)
{
    // Regression: faulted (dropped-on-wire) sends burn wire time but
    // used to bypass the congestion detector, so a queued burst whose
    // tail was lost never demoted the link - and, symmetrically, the
    // detector's window went stale until the next *delivered* packet.
    // Drops are load; they must drive regime decisions like any send.
    EventQueue eq;
    FusedSink sink;
    Link link(eq, {}, {}, &sink, 0, "l6");
    link.configureFaults(FaultConfig{});
    link.configureFidelity(FidelityMode::Hybrid, FlowFidelityConfig{});
    int sends = 0;
    link.faults()->scriptDrop([&](const Packet &) {
        int n = sends++;
        return n == 1 || n == 2; // lose the two queued packets
    });

    // t=0, idle wire: the first packet rides the flow path.
    link.send(soloPacket(100));
    EXPECT_EQ(link.flowPackets(), 1u);
    EXPECT_FALSE(link.demoted());

    // Two more sends at t=0 queue behind it - and both are dropped.
    // Queueing evidence from a dropped send must still demote.
    link.send(soloPacket(100));
    link.send(soloPacket(100));
    EXPECT_EQ(link.packetsDropped(), 2u);
    EXPECT_EQ(link.flowDemotions(), 1u);
    EXPECT_TRUE(link.demoted());

    // An idle-wire send inside the quiet period stays packet-exact.
    Tick busy = 3u * 3560u * ticks::ps;
    eq.schedule(busy + ticks::ns, [] {});
    eq.run();
    link.send(soloPacket(100));
    EXPECT_EQ(link.flowPackets(), 1u);

    // Once the wire has been quiet past the hold window, the link
    // re-promotes: the next send fuses again.
    eq.schedule(eq.now() + 20 * ticks::us, [] {});
    eq.run();
    link.send(soloPacket(100));
    EXPECT_EQ(link.flowPackets(), 2u);
    EXPECT_FALSE(link.demoted());
    eq.run();
    EXPECT_EQ(sink.fused, 2);
    EXPECT_EQ(sink.exact, 1);
}
