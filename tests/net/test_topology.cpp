/** @file Tests for topology construction and deterministic routing. */

#include <gtest/gtest.h>

#include <set>

#include "net/topology.hh"

using namespace netsparse;

TEST(Topology, LeafSpineShape)
{
    Topology t = Topology::leafSpine(8, 16, 16);
    EXPECT_EQ(t.numNodes(), 128u);
    EXPECT_EQ(t.numSwitches(), 24u);
    EXPECT_EQ(t.nodesPerTor(), 16u);
    for (SwitchId s = 0; s < 8; ++s) {
        EXPECT_TRUE(t.isTor(s));
        EXPECT_EQ(t.ports(s).size(), 32u); // 16 hosts + 16 spines
    }
    for (SwitchId s = 8; s < 24; ++s) {
        EXPECT_FALSE(t.isTor(s));
        EXPECT_EQ(t.ports(s).size(), 8u);
    }
    EXPECT_EQ(t.switchOf(0), 0u);
    EXPECT_EQ(t.switchOf(127), 7u);
}

TEST(Topology, LeafSpineHopCounts)
{
    Topology t = Topology::leafSpine(4, 4, 2);
    EXPECT_EQ(t.hopCount(0, 1), 1u);  // same rack: ToR only
    EXPECT_EQ(t.hopCount(0, 15), 3u); // ToR-spine-ToR
}

TEST(Topology, SingleRackHasNoSpines)
{
    Topology t = Topology::leafSpine(1, 8, 4);
    EXPECT_EQ(t.numSwitches(), 1u);
    EXPECT_EQ(t.route(0, 5), t.hostPort(5));
}

TEST(Topology, LeafSpineSpreadsTrafficAcrossSpines)
{
    // All traffic to a given node follows one deterministic path, but
    // different destinations inside a rack use different spines, so a
    // rack-pair flow never collapses onto a single uplink.
    Topology t = Topology::leafSpine(8, 16, 16);
    std::set<std::uint32_t> spines_used;
    for (NodeId dest = 16; dest < 32; ++dest) { // whole of rack 1
        std::uint32_t p = t.route(0, dest);
        EXPECT_EQ(t.route(0, dest), p); // deterministic
        EXPECT_EQ(t.ports(0)[p].kind, PortPeer::Kind::Switch);
        spines_used.insert(t.ports(0)[p].id);
    }
    EXPECT_EQ(spines_used.size(), 16u);
}

TEST(Topology, LeafSpineReadAndResponsePathsAreFixedPerNode)
{
    // The response to node a always enters a's ToR from the same spine,
    // independent of which rack served it (the property the shared ToR
    // cache model relies on).
    Topology t = Topology::leafSpine(8, 2, 4);
    NodeId a = 3;
    SwitchId ta = t.switchOf(a);
    std::uint32_t expected = 0xffffffff;
    for (SwitchId remote_tor = 0; remote_tor < 8; ++remote_tor) {
        if (remote_tor == ta)
            continue;
        std::uint32_t p = t.route(remote_tor, a);
        std::uint32_t spine = t.ports(remote_tor)[p].id;
        if (expected == 0xffffffff)
            expected = spine;
        EXPECT_EQ(spine, expected);
    }
}

TEST(Topology, PortPeersAreReciprocal)
{
    for (auto topo :
         {Topology::leafSpine(4, 4, 4), Topology::hyperX(2, 2, 2, 2, 2),
          Topology::dragonfly(3, 4, 2, 2)}) {
        for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
            const auto &ports = topo.ports(s);
            for (std::uint32_t p = 0; p < ports.size(); ++p) {
                if (ports[p].kind != PortPeer::Kind::Switch)
                    continue;
                const auto &back =
                    topo.ports(ports[p].id)[ports[p].peerPort];
                EXPECT_EQ(back.kind, PortPeer::Kind::Switch);
                EXPECT_EQ(back.id, s);
                EXPECT_EQ(back.peerPort, p);
            }
        }
    }
}

TEST(Topology, HyperXShapeAndReachability)
{
    Topology t = Topology::hyperX(4, 4, 2, 4, 4);
    EXPECT_EQ(t.numSwitches(), 32u);
    EXPECT_EQ(t.numNodes(), 128u);
    // Fully connected per dimension: worst case 3 switch hops + host.
    for (NodeId a = 0; a < 128; a += 17) {
        for (NodeId b = 0; b < 128; b += 13) {
            std::uint32_t hops = t.hopCount(a, b);
            EXPECT_GE(hops, 1u);
            EXPECT_LE(hops, 4u);
        }
    }
    // Inter-switch links carry the trunking multiplier.
    bool found_trunk = false;
    for (const auto &peer : t.ports(0)) {
        if (peer.kind == PortPeer::Kind::Switch) {
            EXPECT_DOUBLE_EQ(peer.bwMultiplier, 4.0);
            found_trunk = true;
        }
    }
    EXPECT_TRUE(found_trunk);
}

TEST(Topology, DragonflyShapeAndReachability)
{
    Topology t = Topology::dragonfly(4, 8, 4, 4);
    EXPECT_EQ(t.numSwitches(), 32u);
    EXPECT_EQ(t.numNodes(), 128u);
    // Minimal routing: at most switch-switch-switch-switch = 4 switches
    // (src ToR, gateway, remote gateway, dest ToR) + the host hop.
    for (NodeId a = 0; a < 128; a += 11) {
        for (NodeId b = 0; b < 128; b += 7) {
            std::uint32_t hops = t.hopCount(a, b);
            EXPECT_GE(hops, 1u);
            EXPECT_LE(hops, 5u);
        }
    }
}

TEST(Topology, RoutesConvergeToDestination)
{
    // Property: following route() hop by hop always reaches the host.
    for (auto topo :
         {Topology::leafSpine(4, 4, 3), Topology::hyperX(3, 2, 2, 3, 2),
          Topology::dragonfly(3, 3, 3, 2)}) {
        for (NodeId src = 0; src < topo.numNodes(); src += 5) {
            for (NodeId dst = 0; dst < topo.numNodes(); dst += 3) {
                SwitchId sw = topo.switchOf(src);
                int hops = 0;
                while (true) {
                    std::uint32_t port = topo.route(sw, dst);
                    const auto &peer = topo.ports(sw)[port];
                    if (peer.kind == PortPeer::Kind::Host) {
                        EXPECT_EQ(peer.id, dst);
                        break;
                    }
                    sw = peer.id;
                    ASSERT_LT(++hops, 16) << "routing loop";
                }
            }
        }
    }
}
