/** @file Tests for the 2-layer NetSparse wire protocol (Figure 6). */

#include <gtest/gtest.h>

#include "net/protocol.hh"

using namespace netsparse;

namespace {

PropertyRequest
pr(PrType type, std::uint32_t payload)
{
    PropertyRequest p;
    p.type = type;
    p.payloadBytes = payload;
    p.propBytes = payload ? payload : 64;
    return p;
}

} // namespace

TEST(Protocol, PaperHeaderArithmetic)
{
    // Section 6.1.1: without concatenation a PR packet needs
    // 50+10+18 = 78 B of headers; with concatenation, N PRs share
    // 50+12 B and add 18 B each.
    ProtocolParams proto;
    EXPECT_EQ(proto.soloWireBytes(pr(PrType::Read, 0)), 78u);
    EXPECT_EQ(proto.concatBaseBytes(), 62u);
    EXPECT_EQ(proto.prWireBytes(pr(PrType::Read, 0)), 18u);
    EXPECT_EQ(proto.prWireBytes(pr(PrType::Response, 64)), 82u);
}

TEST(Protocol, ConcatenatedPacketWireBytes)
{
    ProtocolParams proto;
    Packet pkt;
    pkt.concatenated = true;
    pkt.type = PrType::Response;
    for (int i = 0; i < 5; ++i)
        pkt.prs.push_back(pr(PrType::Response, 64));
    // 62 + 5 * (18 + 64).
    EXPECT_EQ(pkt.wireBytes(proto), 62u + 5u * 82u);
    EXPECT_EQ(pkt.payloadBytes(), 5u * 64u);
}

TEST(Protocol, SoloPacketWireBytes)
{
    ProtocolParams proto;
    Packet pkt;
    pkt.concatenated = false;
    pkt.prs.push_back(pr(PrType::Response, 512));
    EXPECT_EQ(pkt.wireBytes(proto), 78u + 512u);
}

TEST(Protocol, ConcatenationBreaksEvenImmediately)
{
    // The paper's argument: from N = 2 on, N concatenated PRs cost
    // less than N solo packets (62 + 18N < 78N). A lone PR pays 2 B
    // for the richer concatenation header (80 vs 78).
    ProtocolParams proto;
    EXPECT_EQ(proto.concatBaseBytes() + proto.prHeaderBytes, 80u);
    for (std::uint32_t n = 2; n <= 79; ++n) {
        std::uint64_t solo = static_cast<std::uint64_t>(n) * 78u;
        std::uint64_t concat = 62u + static_cast<std::uint64_t>(n) * 18u;
        EXPECT_LT(concat, solo) << "n=" << n;
    }
}

TEST(Protocol, ChecksumIsDeterministicPerIdx)
{
    EXPECT_EQ(propertyChecksum(123), propertyChecksum(123));
    EXPECT_NE(propertyChecksum(123), propertyChecksum(124));
    // Differs from the raw splitmix of the idx (domain-separated).
    EXPECT_NE(propertyChecksum(123), splitmix64(123));
}
