/** @file Tests for the switch model and its NetSparse ToR extensions. */

#include <gtest/gtest.h>

#include <vector>

#include "net/switch.hh"

using namespace netsparse;

namespace {

struct RecordingSink : PacketSink
{
    struct Arrival
    {
        Packet pkt;
        Tick when;
    };

    explicit RecordingSink(EventQueue &eq) : eq(eq) {}

    void
    receivePacket(Packet &&pkt, std::uint32_t) override
    {
        arrivals.push_back({std::move(pkt), eq.now()});
    }

    EventQueue &eq;
    std::vector<Arrival> arrivals;
};

PropertyRequest
readPr(PropIdx idx, NodeId src)
{
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.src = src;
    pr.idx = idx;
    pr.propBytes = 64;
    return pr;
}

PropertyRequest
responsePr(PropIdx idx, NodeId src)
{
    PropertyRequest pr = readPr(idx, src);
    pr.type = PrType::Response;
    pr.payloadBytes = pr.propBytes;
    pr.checksum = propertyChecksum(idx);
    return pr;
}

Packet
packetOf(PropertyRequest pr, NodeId dest)
{
    Packet p;
    p.src = pr.src;
    p.dest = dest;
    p.type = pr.type;
    p.concatenated = true;
    p.prs.push_back(std::move(pr));
    return p;
}

/**
 * A ToR with hosts 0 and 1 on ports 0/1 and an uplink on port 2.
 * "Node 9" lives beyond the uplink.
 */
struct TorHarness
{
    EventQueue eq;
    RecordingSink host0{eq}, host1{eq}, spine{eq};
    SwitchConfig cfg;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<Link> l0, l1, lup;

    explicit TorHarness(bool netsparse, Tick concat_delay = 100)
    {
        cfg.netsparseEnabled = netsparse;
        cfg.concat.delay = concat_delay;
        cfg.cache.totalBytes = 1 << 20;
        sw = std::make_unique<Switch>(eq, cfg, 0, "tor");
        l0 = std::make_unique<Link>(eq, LinkConfig{}, cfg.proto, &host0,
                                    0, "d0");
        l1 = std::make_unique<Link>(eq, LinkConfig{}, cfg.proto, &host1,
                                    0, "d1");
        lup = std::make_unique<Link>(eq, LinkConfig{}, cfg.proto, &spine,
                                     0, "up");
        sw->attachPort(0, l0.get(), true);
        sw->attachPort(1, l1.get(), true);
        sw->attachPort(2, lup.get(), false);
        sw->setRouteFn([](NodeId dest) -> std::uint32_t {
            return dest <= 1 ? dest : 2;
        });
        sw->configureForKernel(64);
    }
};

} // namespace

TEST(Switch, PlainForwardingAddsPipelineLatency)
{
    TorHarness h(false);
    h.sw->receivePacket(packetOf(readPr(5, 0), 1), 0);
    h.eq.run();
    ASSERT_EQ(h.host1.arrivals.size(), 1u);
    // 300 ns pipeline + 80 B wire (62+18) + 450 ns link.
    Tick wire = Bandwidth::fromGbps(400).serialize(80);
    EXPECT_EQ(h.host1.arrivals[0].when,
              300 * ticks::ns + wire + 450 * ticks::ns);
    EXPECT_EQ(h.sw->packetsForwarded(), 1u);
}

TEST(Switch, NetSparseTorReconcatenatesAcrossSources)
{
    // Two read packets from different hosts to the same remote node
    // merge into one packet in the middle pipe (cross-node concat).
    TorHarness h(true, 1 * ticks::us);
    h.sw->receivePacket(packetOf(readPr(100, 0), 9), 0);
    h.sw->receivePacket(packetOf(readPr(101, 1), 9), 1);
    h.eq.run();
    ASSERT_EQ(h.spine.arrivals.size(), 1u);
    EXPECT_EQ(h.spine.arrivals[0].pkt.prs.size(), 2u);
    EXPECT_EQ(h.spine.arrivals[0].pkt.dest, 9u);
}

TEST(Switch, ResponseEnteringRackPopulatesCache)
{
    TorHarness h(true);
    // A response from the spine (port 2) to host 0: gets cached.
    h.sw->receivePacket(packetOf(responsePr(42, 0), 0), 2);
    h.eq.run();
    ASSERT_EQ(h.host0.arrivals.size(), 1u);
    EXPECT_EQ(h.sw->cacheInserts(), 1u);

    // A later read from host 1 for the same idx is served by the ToR:
    // it comes back as a response and never reaches the spine.
    h.sw->receivePacket(packetOf(readPr(42, 1), 9), 1);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheHits(), 1u);
    EXPECT_EQ(h.sw->prsServedByCache(), 1u);
    EXPECT_TRUE(h.spine.arrivals.empty());
    ASSERT_EQ(h.host1.arrivals.size(), 1u);
    const Packet &resp = h.host1.arrivals[0].pkt;
    EXPECT_EQ(resp.type, PrType::Response);
    ASSERT_EQ(resp.prs.size(), 1u);
    EXPECT_EQ(resp.prs[0].idx, 42u);
    EXPECT_EQ(resp.prs[0].payloadBytes, 64u);
    EXPECT_EQ(resp.prs[0].checksum, propertyChecksum(42));
    EXPECT_EQ(resp.prs[0].src, 1u); // delivered to the right requester
}

TEST(Switch, ReadMissesContinueToTheSpine)
{
    TorHarness h(true);
    h.sw->receivePacket(packetOf(readPr(7, 0), 9), 0);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheLookups(), 1u);
    EXPECT_EQ(h.sw->cacheHits(), 0u);
    ASSERT_EQ(h.spine.arrivals.size(), 1u);
    EXPECT_EQ(h.spine.arrivals[0].pkt.type, PrType::Read);
}

TEST(Switch, IntraRackTrafficSkipsTheCache)
{
    TorHarness h(true);
    // host0 -> host1 read (both local): no lookup.
    h.sw->receivePacket(packetOf(readPr(7, 0), 1), 0);
    // response host1 -> host0 (local home): no insert.
    h.sw->receivePacket(packetOf(responsePr(7, 0), 0), 1);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheLookups(), 0u);
    EXPECT_EQ(h.sw->cacheInserts(), 0u);
    EXPECT_EQ(h.host0.arrivals.size(), 1u);
    EXPECT_EQ(h.host1.arrivals.size(), 1u);
}

TEST(Switch, ResponsesLeavingRackAreNotCached)
{
    TorHarness h(true);
    // A response generated by host 0 for a remote requester (node 9).
    h.sw->receivePacket(packetOf(responsePr(3, 9), 9), 0);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheInserts(), 0u);
    EXPECT_EQ(h.spine.arrivals.size(), 1u);
}

TEST(Switch, MixedHitAndMissSplitsThePacket)
{
    TorHarness h(true, 200);
    // Prime the cache with idx 50.
    h.sw->receivePacket(packetOf(responsePr(50, 0), 0), 2);
    h.eq.run();
    // One packet with two reads: idx 50 hits, idx 51 misses.
    Packet p = packetOf(readPr(50, 1), 9);
    p.prs.push_back(readPr(51, 1));
    h.sw->receivePacket(std::move(p), 1);
    h.eq.run();
    ASSERT_EQ(h.spine.arrivals.size(), 1u);
    EXPECT_EQ(h.spine.arrivals[0].pkt.prs.size(), 1u);
    EXPECT_EQ(h.spine.arrivals[0].pkt.prs[0].idx, 51u);
    // host1 got the served response (plus the earlier primer went to
    // host0).
    ASSERT_EQ(h.host1.arrivals.size(), 1u);
    EXPECT_EQ(h.host1.arrivals[0].pkt.type, PrType::Response);
}

TEST(Switch, CacheLatencyDelaysTheMiddlePipe)
{
    TorHarness h_plain(false);
    TorHarness h_ns(true, 0);
    h_plain.sw->receivePacket(packetOf(readPr(5, 0), 1), 0);
    h_ns.sw->receivePacket(packetOf(readPr(5, 0), 1), 0);
    h_plain.eq.run();
    h_ns.eq.run();
    // 16 cycles at 2 GHz = 8 ns extra.
    EXPECT_EQ(h_ns.host1.arrivals[0].when -
                  h_plain.host1.arrivals[0].when,
              8u * ticks::ns);
}

TEST(Switch, UnconfiguredNetSparseSwitchPanics)
{
    EventQueue eq;
    SwitchConfig cfg;
    cfg.netsparseEnabled = true;
    Switch sw(eq, cfg, 0, "tor");
    RecordingSink sink(eq);
    Link l(eq, {}, cfg.proto, &sink, 0, "l");
    sw.attachPort(0, &l, true);
    sw.setRouteFn([](NodeId) -> std::uint32_t { return 0; });
    sw.receivePacket(packetOf(readPr(1, 0), 0), 0);
    EXPECT_THROW(eq.run(), std::logic_error);
}
