/**
 * @file
 * Multi-pipe switch tests: a ToR with 8 ports (2 pipes of 4) under the
 * per-pipe Property Cache organization of Figure 8, checking pipe
 * selection, capacity splitting, and the read/response pipe pairing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/switch.hh"

using namespace netsparse;

namespace {

struct RecordingSink : PacketSink
{
    void
    receivePacket(Packet &&pkt, std::uint32_t) override
    {
        packets.push_back(std::move(pkt));
    }

    std::vector<Packet> packets;
};

PropertyRequest
readPr(PropIdx idx, NodeId src)
{
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.src = src;
    pr.idx = idx;
    pr.propBytes = 64;
    return pr;
}

PropertyRequest
responsePr(PropIdx idx, NodeId src)
{
    PropertyRequest pr = readPr(idx, src);
    pr.type = PrType::Response;
    pr.payloadBytes = pr.propBytes;
    pr.checksum = propertyChecksum(idx);
    return pr;
}

Packet
packetOf(PropertyRequest pr, NodeId dest)
{
    Packet p;
    p.src = pr.src;
    p.dest = dest;
    p.type = pr.type;
    p.concatenated = true;
    p.prs.push_back(std::move(pr));
    return p;
}

/**
 * 8-port ToR: hosts 0-3 on ports 0-3 (pipe 0), uplinks on ports 4-7
 * (pipe 1). Remote nodes 10+u route to uplink 4+u%4... we route every
 * remote node n to uplink 4 + (n % 4).
 */
struct MultiPipeHarness
{
    EventQueue eq;
    SwitchConfig cfg;
    std::unique_ptr<Switch> sw;
    std::vector<std::unique_ptr<RecordingSink>> sinks;
    std::vector<std::unique_ptr<Link>> links;

    explicit MultiPipeHarness(bool per_pipe, bool verify = false)
    {
        cfg.netsparseEnabled = true;
        cfg.cachePerPipe = per_pipe;
        cfg.verifyResponses = verify;
        cfg.concat.delay = 100;
        cfg.cache.totalBytes = 1 << 20;
        cfg.portsPerPipe = 4;
        sw = std::make_unique<Switch>(eq, cfg, 0, "tor");
        for (std::uint32_t p = 0; p < 8; ++p) {
            sinks.push_back(std::make_unique<RecordingSink>());
            links.push_back(std::make_unique<Link>(
                eq, LinkConfig{}, cfg.proto, sinks.back().get(), 0,
                "p" + std::to_string(p)));
            sw->attachPort(p, links.back().get(), p < 4);
        }
        sw->setRouteFn([](NodeId dest) -> std::uint32_t {
            return dest < 4 ? dest : 4 + dest % 4;
        });
        sw->configureForKernel(64);
    }
};

} // namespace

TEST(SwitchPipes, PerPipeModeCreatesOneCachePerPipe)
{
    MultiPipeHarness h(true);
    EXPECT_EQ(h.sw->numPipes(), 2u);
    // Capacity split across pipes.
    EXPECT_EQ(h.sw->pipeCache(0).capacityEntries(),
              (1u << 20) / 2 / 64);
}

TEST(SwitchPipes, SharedModeUsesOneFullSizeArray)
{
    MultiPipeHarness h(false);
    EXPECT_EQ(h.sw->numPipes(), 1u);
    EXPECT_EQ(h.sw->pipeCache(0).capacityEntries(), (1u << 20) / 64);
}

TEST(SwitchPipes, PerPipeHitNeedsMatchingPorts)
{
    MultiPipeHarness h(true);
    // Response to host 1 enters from uplink 5 -> deposits in pipe 1.
    h.sw->receivePacket(packetOf(responsePr(42, 1), 1), 5);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheInserts(), 1u);

    // Read from host 2 whose home routes through uplink 5 (pipe 1,
    // same as the deposit): hit.
    // Home node must satisfy 4 + n%4 == 5 -> n % 4 == 1, e.g. n = 9.
    h.sw->receivePacket(packetOf(readPr(42, 2), 9), 2);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheHits(), 1u);
    EXPECT_EQ(h.sw->prsServedByCache(), 1u);
}

TEST(SwitchPipes, SharedModeHitsAcrossPorts)
{
    MultiPipeHarness h(false);
    h.sw->receivePacket(packetOf(responsePr(7, 0), 0), 5);
    h.eq.run();
    // Read egressing via a *different* uplink still hits: one array.
    h.sw->receivePacket(packetOf(readPr(7, 3), 10), 3); // uplink 6
    h.eq.run();
    EXPECT_EQ(h.sw->cacheHits(), 1u);
}

TEST(SwitchPipes, ReadsAndResponsesConcatenateInTheirOwnPipes)
{
    MultiPipeHarness h(true);
    // Two reads from different hosts, same home -> same uplink pipe,
    // merged into one packet.
    h.sw->receivePacket(packetOf(readPr(100, 0), 8), 0);
    h.sw->receivePacket(packetOf(readPr(101, 1), 8), 1);
    h.eq.run();
    auto &uplink_sink = *h.sinks[4 + 8 % 4];
    ASSERT_EQ(uplink_sink.packets.size(), 1u);
    EXPECT_EQ(uplink_sink.packets[0].prs.size(), 2u);
}

TEST(SwitchPipes, CacheServedReadSkipsTheUplinkEntirely)
{
    MultiPipeHarness h(true);
    h.sw->receivePacket(packetOf(responsePr(50, 0), 0), 4);
    h.eq.run();
    std::size_t uplink_packets_before = 0;
    for (int p = 4; p < 8; ++p)
        uplink_packets_before += h.sinks[p]->packets.size();

    // Host 1 reads idx 50 from home 8 (uplink 4, pipe 1): served.
    h.sw->receivePacket(packetOf(readPr(50, 1), 8), 1);
    h.eq.run();
    std::size_t uplink_packets_after = 0;
    for (int p = 4; p < 8; ++p)
        uplink_packets_after += h.sinks[p]->packets.size();
    EXPECT_EQ(uplink_packets_after, uplink_packets_before);
    ASSERT_FALSE(h.sinks[1]->packets.empty());
    EXPECT_EQ(h.sinks[1]->packets.back().type, PrType::Response);
}

TEST(SwitchPipes, CorruptResponseIsNotCachedWhenVerifying)
{
    MultiPipeHarness h(true, /*verify=*/true);
    PropertyRequest bad = responsePr(42, 1);
    bad.checksum ^= 1; // corrupted on the wire upstream of the ToR
    h.sw->receivePacket(packetOf(bad, 1), 5);
    h.eq.run();
    // The poisoned payload never enters the Property Cache, but the
    // response is still forwarded so the RIG client can NACK it.
    EXPECT_EQ(h.sw->poisonRejected(), 1u);
    EXPECT_EQ(h.sw->cacheInserts(), 0u);
    ASSERT_FALSE(h.sinks[1]->packets.empty());
    EXPECT_EQ(h.sinks[1]->packets.back().type, PrType::Response);

    // A later read for the same idx must miss (nothing was cached).
    h.sw->receivePacket(packetOf(readPr(42, 2), 9), 2);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheHits(), 0u);
}

TEST(SwitchPipes, BypassCacheReadSkipsTheLookup)
{
    MultiPipeHarness h(true);
    // Seed the pipe-1 cache with idx 50 (deposit via uplink 4).
    h.sw->receivePacket(packetOf(responsePr(50, 0), 0), 4);
    h.eq.run();
    EXPECT_EQ(h.sw->cacheInserts(), 1u);

    // A NACK-refetch read carries bypassCache: it must go to the home
    // node even though the cache holds the idx (the copy is suspect).
    PropertyRequest refetch = readPr(50, 1);
    refetch.bypassCache = true;
    h.sw->receivePacket(packetOf(refetch, 8), 1); // home 8 -> uplink 4
    h.eq.run();
    EXPECT_EQ(h.sw->cacheBypasses(), 1u);
    EXPECT_EQ(h.sw->cacheHits(), 0u);
    EXPECT_EQ(h.sw->prsServedByCache(), 0u);
    ASSERT_FALSE(h.sinks[4]->packets.empty());
    EXPECT_EQ(h.sinks[4]->packets.back().type, PrType::Read);
}

TEST(SwitchPipes, ClusterRunsWithPerPipeCaches)
{
    // End-to-end sanity of per-pipe mode is covered by the cluster
    // integration tests; here verify reconfiguration keeps both pipes.
    MultiPipeHarness h(true);
    h.sw->configureForKernel(16);
    EXPECT_EQ(h.sw->numPipes(), 2u);
    EXPECT_EQ(h.sw->pipeCache(1).lineBytes(), 16u);
}
