/** @file Tests for the PCIe/DMA cost model. */

#include <gtest/gtest.h>

#include "snic/pcie.hh"

using namespace netsparse;

TEST(Pcie, TransferIsLatencyPlusSerialization)
{
    EventQueue eq;
    PcieModel pcie(eq, {});
    // 4 KB at 256 GB/s = 16 ns, plus 200 ns of latency.
    EXPECT_EQ(pcie.transfer(4096), 216u * ticks::ns);
    EXPECT_EQ(pcie.bytesMoved(), 4096u);
    EXPECT_EQ(pcie.transfers(), 1u);
}

TEST(Pcie, BackToBackTransfersChain)
{
    EventQueue eq;
    PcieModel pcie(eq, {});
    Tick first = pcie.transfer(4096);
    Tick second = pcie.transfer(4096);
    // The second starts when the first's serialization ends.
    EXPECT_EQ(second, first + 16 * ticks::ns);
}

TEST(Pcie, IdleLinkRestartsFromNow)
{
    EventQueue eq;
    PcieModel pcie(eq, {});
    pcie.transfer(4096);
    eq.schedule(1 * ticks::us, [] {});
    eq.run();
    // Well past the previous busy window: full latency again.
    EXPECT_EQ(pcie.transfer(4096), 1 * ticks::us + 216 * ticks::ns);
}

TEST(Pcie, ZeroByteDoorbellCostsOnlyLatency)
{
    EventQueue eq;
    PcieModel pcie(eq, {});
    EXPECT_EQ(pcie.transfer(0), 200u * ticks::ns);
    EXPECT_EQ(pcie.latency(), 200u * ticks::ns);
}
