/** @file Tests for the Idx Filter bitvector (Section 5.2). */

#include <gtest/gtest.h>

#include "snic/idx_filter.hh"

using namespace netsparse;

TEST(IdxFilter, StartsClear)
{
    IdxFilter f(1000);
    for (PropIdx i = 0; i < 1000; i += 37)
        EXPECT_FALSE(f.test(i));
}

TEST(IdxFilter, SetAndTest)
{
    IdxFilter f(256);
    f.set(0);
    f.set(63);
    f.set(64);
    f.set(255);
    EXPECT_TRUE(f.test(0));
    EXPECT_TRUE(f.test(63));
    EXPECT_TRUE(f.test(64));
    EXPECT_TRUE(f.test(255));
    EXPECT_FALSE(f.test(1));
    EXPECT_FALSE(f.test(65));
}

TEST(IdxFilter, SetIsIdempotent)
{
    IdxFilter f(64);
    f.set(10);
    f.set(10);
    EXPECT_TRUE(f.test(10));
}

TEST(IdxFilter, ClearResetsEverything)
{
    IdxFilter f(128);
    for (PropIdx i = 0; i < 128; ++i)
        f.set(i);
    f.clear();
    for (PropIdx i = 0; i < 128; ++i)
        EXPECT_FALSE(f.test(i));
}

TEST(IdxFilter, SizeBytesMatchesWidth)
{
    // One bit per idx, rounded up to 64-bit words.
    EXPECT_EQ(IdxFilter(1).sizeBytes(), 8u);
    EXPECT_EQ(IdxFilter(64).sizeBytes(), 8u);
    EXPECT_EQ(IdxFilter(65).sizeBytes(), 16u);
    // The paper's sizing argument: 16 GB of SNIC DRAM covers matrices
    // with over 100 billion columns.
    IdxFilter big(1ull << 30);
    EXPECT_EQ(big.sizeBytes(), (1ull << 30) / 8);
}

TEST(IdxFilter, OutOfRangePanics)
{
    IdxFilter f(100);
    EXPECT_THROW(f.test(100), std::logic_error);
    EXPECT_THROW(f.set(1000), std::logic_error);
}
