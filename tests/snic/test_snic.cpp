/** @file Tests for the SNIC assembly: dispatch, concat, backpressure. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hh"
#include "snic/snic.hh"

using namespace netsparse;

namespace {

struct RecordingSink : PacketSink
{
    void
    receivePacket(Packet &&pkt, std::uint32_t) override
    {
        packets.push_back(std::move(pkt));
    }

    std::vector<Packet> packets;
};

struct SnicHarness
{
    EventQueue eq;
    ProtocolParams proto;
    RecordingSink wire;
    std::unique_ptr<Snic> snic;
    std::unique_ptr<Link> egress;

    explicit SnicHarness(std::uint32_t units = 4)
    {
        SnicConfig cfg;
        cfg.numRigUnits = units;
        cfg.proto = proto;
        cfg.concat.proto = proto;
        cfg.concat.delay = 100 * ticks::ns;
        snic = std::make_unique<Snic>(
            eq, cfg, 0,
            [](PropIdx idx) { return static_cast<NodeId>(idx % 4); },
            1 << 16, "snic");
        egress = std::make_unique<Link>(eq, LinkConfig{}, proto, &wire, 0,
                                        "up");
        snic->attachEgress(egress.get());
    }
};

Packet
readPacket(std::initializer_list<PropIdx> idxs, NodeId dest = 0)
{
    Packet p;
    p.dest = dest;
    p.type = PrType::Read;
    p.concatenated = true;
    for (auto idx : idxs) {
        PropertyRequest pr;
        pr.type = PrType::Read;
        pr.src = 2;
        pr.srcTid = 1;
        pr.idx = idx;
        pr.propBytes = 64;
        p.prs.push_back(pr);
    }
    return p;
}

} // namespace

TEST(Snic, ServesIncomingReadsThroughServerUnits)
{
    SnicHarness h;
    h.snic->receivePacket(readPacket({4, 8, 12}), 0);
    h.eq.run();

    EXPECT_EQ(h.snic->rxReads(), 3u);
    RigServerStats st = h.snic->aggregateServerStats();
    EXPECT_EQ(st.readsServed, 3u);
    EXPECT_EQ(st.bytesFetched, 3u * 64u);

    // Responses leave concatenated toward the requester (node 2).
    ASSERT_EQ(h.wire.packets.size(), 1u);
    const Packet &out = h.wire.packets[0];
    EXPECT_EQ(out.dest, 2u);
    EXPECT_EQ(out.type, PrType::Response);
    ASSERT_EQ(out.prs.size(), 3u);
    for (const auto &pr : out.prs) {
        EXPECT_EQ(pr.payloadBytes, 64u);
        EXPECT_EQ(pr.checksum, propertyChecksum(pr.idx));
        EXPECT_EQ(pr.srcTid, 1u); // requester's tid preserved
    }
}

TEST(Snic, QControlRoundRobinsAcrossServerUnits)
{
    SnicHarness h(8); // 4 servers
    h.snic->receivePacket(readPacket({4, 8, 12, 16, 20, 24, 28, 32}), 0);
    h.eq.run();
    // With 1 PR/cycle pipelining per unit and round-robin dispatch,
    // all reads are served; per-unit stats exist only in aggregate, so
    // check the total and that responses arrived promptly.
    EXPECT_EQ(h.snic->aggregateServerStats().readsServed, 8u);
}

TEST(Snic, ResponseForUnknownTidPanics)
{
    SnicHarness h;
    Packet p;
    p.dest = 0;
    p.type = PrType::Response;
    p.concatenated = true;
    PropertyRequest pr;
    pr.type = PrType::Response;
    pr.src = 0;
    pr.srcTid = 60; // no such client unit
    pr.idx = 1;
    p.prs.push_back(pr);
    EXPECT_THROW(h.snic->receivePacket(std::move(p), 0),
                 std::logic_error);
}

TEST(Snic, RxCountersTrackTraffic)
{
    SnicHarness h;
    Packet p = readPacket({4, 8});
    std::uint64_t wire_bytes = p.wireBytes(h.proto);
    h.snic->receivePacket(std::move(p), 0);
    h.eq.run();
    EXPECT_EQ(h.snic->rxPackets(), 1u);
    EXPECT_EQ(h.snic->rxBytes(), wire_bytes);
    EXPECT_EQ(h.snic->rxPayloadBytes(), 0u);
}

TEST(Snic, BackpressureReflectsEgressQueueAndConcatOccupancy)
{
    SnicHarness h;
    EXPECT_FALSE(h.snic->txBackpressured());
    // Stuff the egress link far beyond the 2 MB Tx buffer.
    for (int i = 0; i < 3000; ++i) {
        Packet p;
        p.dest = 1;
        p.type = PrType::Response;
        p.concatenated = false;
        PropertyRequest pr;
        pr.type = PrType::Response;
        pr.payloadBytes = 1024;
        pr.propBytes = 1024;
        p.prs.push_back(pr);
        h.egress->send(std::move(p));
    }
    EXPECT_TRUE(h.snic->txBackpressured());
    h.eq.run();
    EXPECT_FALSE(h.snic->txBackpressured());
}

TEST(Snic, NeedsAtLeastTwoUnits)
{
    EventQueue eq;
    SnicConfig cfg;
    cfg.numRigUnits = 1;
    EXPECT_THROW(Snic(eq, cfg, 0, [](PropIdx) { return NodeId{0}; }, 16,
                      "bad"),
                 std::logic_error);
}

TEST(Snic, ConfigureForKernelClearsTheFilter)
{
    SnicHarness h;
    h.snic->idxFilter().set(100);
    EXPECT_TRUE(h.snic->idxFilter().test(100));
    h.snic->configureForKernel();
    EXPECT_FALSE(h.snic->idxFilter().test(100));
}
