/** @file Tests for the Pending PR Table CAM (Section 5.2). */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "sim/rng.hh"
#include "snic/pending_table.hh"

using namespace netsparse;

TEST(PendingTable, InsertContainsComplete)
{
    PendingPrTable t(4);
    EXPECT_FALSE(t.contains(5));
    t.insert(5);
    EXPECT_TRUE(t.contains(5));
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.complete(5), 1u);
    EXPECT_FALSE(t.contains(5));
    EXPECT_EQ(t.size(), 0u);
}

TEST(PendingTable, CoalescedWaitersAreServedTogether)
{
    PendingPrTable t(4);
    t.insert(9);
    t.addWaiter(9);
    t.addWaiter(9);
    EXPECT_EQ(t.size(), 1u); // waiters do not consume entries
    EXPECT_EQ(t.complete(9), 3u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(PendingTable, FullStallsAtCapacity)
{
    PendingPrTable t(2);
    t.insert(1);
    EXPECT_FALSE(t.full());
    t.insert(2);
    EXPECT_TRUE(t.full());
    EXPECT_THROW(t.insert(3), std::logic_error);
    t.complete(1);
    EXPECT_FALSE(t.full());
}

TEST(PendingTable, DuplicateEntriesWithoutCoalescing)
{
    // With coalescing disabled, the same idx can occupy several CAM
    // entries; each response retires exactly one.
    PendingPrTable t(8);
    t.insert(7);
    t.insert(7);
    t.insert(7);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.complete(7), 1u);
    EXPECT_EQ(t.complete(7), 1u);
    EXPECT_TRUE(t.contains(7));
    EXPECT_EQ(t.complete(7), 1u);
    EXPECT_FALSE(t.contains(7));
}

TEST(PendingTable, StaleResponseReturnsZero)
{
    PendingPrTable t(4);
    EXPECT_EQ(t.complete(42), 0u);
}

TEST(PendingTable, ResetDiscardsEverything)
{
    PendingPrTable t(4);
    t.insert(1);
    t.insert(2);
    t.addWaiter(2);
    t.reset();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.full());
    EXPECT_EQ(t.complete(1), 0u);
}

TEST(PendingTable, TracksMaxOccupancy)
{
    PendingPrTable t(8);
    t.insert(1);
    t.insert(2);
    t.insert(3);
    t.complete(1);
    t.complete(2);
    EXPECT_EQ(t.maxOccupancy(), 3u);
}

TEST(PendingTable, RandomizedAgainstReferenceMap)
{
    // Model-check the open-addressing table (Fibonacci hash, linear
    // probing, backward-shift deletion) against a simple reference:
    // collisions, duplicate outstanding entries, waiters, and erases in
    // arbitrary order must all agree.
    Rng rng(99);
    PendingPrTable t(64);
    // idx -> (outstanding, waiters)
    std::map<PropIdx, std::pair<std::uint32_t, std::uint32_t>> ref;
    std::uint32_t refTotal = 0;

    for (int op = 0; op < 20000; ++op) {
        PropIdx idx = rng.uniformInt(0, 200); // dense keys collide a lot
        switch (rng.uniformInt(0, 3)) {
          case 0: // insert
            if (refTotal < 64) {
                t.insert(idx);
                ++ref[idx].first;
                ++refTotal;
            }
            break;
          case 1: // addWaiter
            if (ref.count(idx) && ref[idx].first > 0) {
                t.addWaiter(idx);
                ++ref[idx].second;
            }
            break;
          default: { // complete
            std::uint32_t got = t.complete(idx);
            auto it = ref.find(idx);
            if (it == ref.end() || it->second.first == 0) {
                EXPECT_EQ(got, 0u);
            } else {
                --refTotal;
                if (it->second.first > 1) {
                    EXPECT_EQ(got, 1u);
                    --it->second.first;
                } else {
                    EXPECT_EQ(got, 1u + it->second.second);
                    ref.erase(it);
                }
            }
            break;
          }
        }
        ASSERT_EQ(t.size(), refTotal);
    }
    for (PropIdx idx = 0; idx <= 200; ++idx)
        EXPECT_EQ(t.contains(idx), ref.count(idx) > 0) << "idx " << idx;
}
