/** @file Tests for the RIG units driven through a mock SNIC context. */

#include <gtest/gtest.h>

#include <vector>

#include "snic/rig_unit.hh"

using namespace netsparse;

namespace {

/** A scripted SnicContext: captures PRs, controllable backpressure. */
class MockCtx : public SnicContext
{
  public:
    MockCtx(EventQueue &eq, std::uint64_t num_idxs)
        : eq_(eq), filter_(num_idxs), pcie_(eq, {})
    {}

    NodeId selfNode() const override { return 0; }

    NodeId
    ownerOf(PropIdx idx) const override
    {
        return static_cast<NodeId>(idx % 4); // idx % 4 == 0 -> local
    }

    void
    sendPr(PropertyRequest &&pr, NodeId dest) override
    {
        sent.push_back({std::move(pr), dest, eq_.now()});
    }

    bool txBackpressured() const override { return backpressured; }
    IdxFilter &idxFilter() override { return filter_; }
    PcieModel &pcie() override { return pcie_; }

    struct Sent
    {
        PropertyRequest pr;
        NodeId dest;
        Tick when;
    };

    std::vector<Sent> sent;
    bool backpressured = false;

  private:
    EventQueue &eq_;
    IdxFilter filter_;
    PcieModel pcie_;
};

/** Build a response for a captured read PR. */
PropertyRequest
respond(const PropertyRequest &read)
{
    PropertyRequest r = read;
    r.type = PrType::Response;
    r.payloadBytes = r.propBytes;
    r.checksum = propertyChecksum(r.idx);
    return r;
}

struct ClientHarness
{
    EventQueue eq;
    MockCtx ctx{eq, 1024};
    RigUnitConfig cfg;
    int completions = 0;
    bool lastSuccess = false;

    RigCommand
    command(const std::vector<std::uint32_t> &idxs)
    {
        RigCommand cmd;
        cmd.idxs = idxs.data();
        cmd.count = idxs.size();
        cmd.propBytes = 64;
        cmd.onComplete = [this](bool ok) {
            ++completions;
            lastSuccess = ok;
        };
        return cmd;
    }
};

} // namespace

TEST(RigClient, IssuesFiltersAndCoalesces)
{
    ClientHarness h;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 3);
    // Pre-fetched idx 9 (filter bit set); idx 8 is local (8 % 4 == 0);
    // idx 5 repeats (coalesced).
    h.ctx.idxFilter().set(9);
    std::vector<std::uint32_t> idxs{5, 9, 8, 5, 6};
    unit.start(h.command(idxs));
    h.eq.run();

    const auto &st = unit.stats();
    EXPECT_EQ(st.prsIssued, 2u); // 5 and 6
    EXPECT_EQ(st.filtered, 1u);  // 9
    EXPECT_EQ(st.localIdxs, 1u); // 8
    EXPECT_EQ(st.coalesced, 1u); // second 5
    EXPECT_EQ(st.idxsProcessed, idxs.size());
    ASSERT_EQ(h.ctx.sent.size(), 2u);

    const auto &pr = h.ctx.sent[0].pr;
    EXPECT_EQ(pr.type, PrType::Read);
    EXPECT_EQ(pr.src, 0u);
    EXPECT_EQ(pr.srcTid, 3u);
    EXPECT_EQ(pr.idx, 5u);
    EXPECT_EQ(pr.propBytes, 64u);
    EXPECT_EQ(h.ctx.sent[0].dest, 1u); // 5 % 4

    // Still waiting for responses.
    EXPECT_TRUE(unit.busy());
    EXPECT_EQ(h.completions, 0);

    unit.onResponse(respond(h.ctx.sent[0].pr));
    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
    EXPECT_FALSE(unit.busy());
    // The fetched idxs are now published in the filter.
    EXPECT_TRUE(h.ctx.idxFilter().test(5));
    EXPECT_TRUE(h.ctx.idxFilter().test(6));
}

TEST(RigClient, EmptyCommandCompletesImmediately)
{
    ClientHarness h;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs;
    unit.start(h.command(idxs));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
}

TEST(RigClient, AllLocalCompletesWithoutTraffic)
{
    ClientHarness h;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{0, 4, 8, 12};
    unit.start(h.command(idxs));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.ctx.sent.empty());
    EXPECT_EQ(unit.stats().localIdxs, 4u);
}

TEST(RigClient, StallsOnFullPendingTableAndResumes)
{
    ClientHarness h;
    h.cfg.pendingCapacity = 2;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1, 2, 3, 5};
    unit.start(h.command(idxs));
    h.eq.run();
    // Only two PRs fit in the pending table.
    EXPECT_EQ(h.ctx.sent.size(), 2u);
    EXPECT_GE(unit.stats().pendingStalls, 1u);

    unit.onResponse(respond(h.ctx.sent[0].pr));
    h.eq.run();
    EXPECT_EQ(h.ctx.sent.size(), 3u);

    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.run();
    EXPECT_EQ(h.ctx.sent.size(), 4u);

    unit.onResponse(respond(h.ctx.sent[2].pr));
    unit.onResponse(respond(h.ctx.sent[3].pr));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
}

TEST(RigClient, BackpressureRetriesLater)
{
    ClientHarness h;
    h.ctx.backpressured = true;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1, 2};
    unit.start(h.command(idxs));
    // Run a little: nothing can be sent.
    h.eq.runUntil(2 * ticks::us);
    EXPECT_TRUE(h.ctx.sent.empty());
    EXPECT_GE(unit.stats().txStalls, 1u);

    h.ctx.backpressured = false;
    h.eq.runUntil(4 * ticks::us);
    EXPECT_EQ(h.ctx.sent.size(), 2u);
}

TEST(RigClient, WatchdogFailsLostOperations)
{
    ClientHarness h;
    h.cfg.watchdogTimeout = 10 * ticks::us;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1, 2};
    unit.start(h.command(idxs));
    h.eq.run(); // responses never arrive
    EXPECT_EQ(h.completions, 1);
    EXPECT_FALSE(h.lastSuccess);
    EXPECT_EQ(unit.stats().watchdogFailures, 1u);
    EXPECT_FALSE(unit.busy());

    // A late response is recognized as stale, not delivered.
    ASSERT_GE(h.ctx.sent.size(), 1u);
    unit.onResponse(respond(h.ctx.sent[0].pr));
    EXPECT_EQ(unit.stats().staleResponses, 1u);
}

TEST(RigClient, WatchdogDoesNotFireOnSuccess)
{
    ClientHarness h;
    h.cfg.watchdogTimeout = 1 * ticks::ms;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1};
    unit.start(h.command(idxs));
    h.eq.runUntil(5 * ticks::us);
    ASSERT_EQ(h.ctx.sent.size(), 1u);
    unit.onResponse(respond(h.ctx.sent[0].pr));
    h.eq.run(); // runs past the watchdog deadline
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
    EXPECT_EQ(unit.stats().watchdogFailures, 0u);
}

TEST(RigClient, StaleResponseCannotRetireTheNextCommandsPending)
{
    // Regression: a late response from a watchdog-failed command carries
    // an idx the *next* command also requested. It must be rejected on
    // its stale reqId range, not retire the new command's pending entry
    // (which would complete the new command with a phantom response).
    ClientHarness h;
    h.cfg.watchdogTimeout = 10 * ticks::us;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{5};
    unit.start(h.command(idxs));
    h.eq.run(); // no response; the watchdog fails the command
    EXPECT_EQ(h.completions, 1);
    EXPECT_FALSE(h.lastSuccess);
    ASSERT_EQ(h.ctx.sent.size(), 1u);
    PropertyRequest old_response = respond(h.ctx.sent[0].pr);

    // The retry asks for the same idx; a fresh PR (new reqId) goes out.
    unit.start(h.command(idxs));
    h.eq.runUntil(h.eq.now() + 2 * ticks::us);
    ASSERT_EQ(h.ctx.sent.size(), 2u);
    EXPECT_NE(h.ctx.sent[1].pr.reqId, old_response.reqId);

    // The zombie response from the dead command arrives now.
    unit.onResponse(old_response);
    EXPECT_EQ(unit.stats().staleResponses, 1u);
    EXPECT_TRUE(unit.busy()); // it must NOT have completed the command
    EXPECT_EQ(h.completions, 1);

    // Only the new command's own response finishes it.
    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.runUntil(h.eq.now() + 2 * ticks::us);
    EXPECT_EQ(h.completions, 2);
    EXPECT_TRUE(h.lastSuccess);
}

TEST(RigClient, WatchdogResetLeavesNoStaleChunkEvent)
{
    // Regression: the watchdog fires while a scheduleChunk retry event
    // is still in flight (tx backpressure keeps rescheduling). The next
    // command must start its own chunk immediately; the stale event must
    // neither suppress it nor fire into the new command.
    ClientHarness h;
    h.cfg.watchdogTimeout = 10 * ticks::us;
    h.cfg.txRetryInterval = 100 * ticks::us; // stale event far out
    h.ctx.backpressured = true;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1, 2};
    unit.start(h.command(idxs));
    h.eq.runUntil(15 * ticks::us); // chunk stalls on tx; watchdog fires
    EXPECT_EQ(h.completions, 1);
    EXPECT_FALSE(h.lastSuccess);
    EXPECT_TRUE(h.ctx.sent.empty());

    // Network heals; the host retries straight away.
    h.ctx.backpressured = false;
    unit.start(h.command(idxs));
    h.eq.runUntil(20 * ticks::us);
    // Both PRs issued promptly -- not at the stale event's 100 us mark.
    ASSERT_EQ(h.ctx.sent.size(), 2u);
    unit.onResponse(respond(h.ctx.sent[0].pr));
    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.run();
    EXPECT_EQ(h.completions, 2);
    EXPECT_TRUE(h.lastSuccess);
    EXPECT_EQ(unit.stats().watchdogFailures, 1u);
}

TEST(RigClient, RetransmitBackoffDoublesAndExhaustsBudget)
{
    ClientHarness h;
    h.cfg.retry.enabled = true;
    h.cfg.retry.timeout = 10 * ticks::us;
    h.cfg.retry.backoff = 2.0;
    h.cfg.retry.maxRetries = 3;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1};
    unit.start(h.command(idxs));
    h.eq.run(); // responses never arrive; the budget runs dry

    const auto &st = unit.stats();
    EXPECT_EQ(st.retransmits, 3u);
    EXPECT_EQ(st.retriesExhausted, 1u);
    EXPECT_EQ(h.completions, 1);
    EXPECT_FALSE(h.lastSuccess);

    // 1 original + 3 retransmits, all carrying the same reqId.
    ASSERT_EQ(h.ctx.sent.size(), 4u);
    for (const auto &s : h.ctx.sent)
        EXPECT_EQ(s.pr.reqId, h.ctx.sent[0].pr.reqId);

    // Exponential backoff: each gap doubles the previous one.
    Tick d1 = h.ctx.sent[1].when - h.ctx.sent[0].when;
    Tick d2 = h.ctx.sent[2].when - h.ctx.sent[1].when;
    Tick d3 = h.ctx.sent[3].when - h.ctx.sent[2].when;
    EXPECT_EQ(d1, 10 * ticks::us);
    EXPECT_EQ(d2, 2 * d1);
    EXPECT_EQ(d3, 2 * d2);
}

TEST(RigClient, DuplicateResponseIsSuppressed)
{
    ClientHarness h;
    h.cfg.retry.enabled = true;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1, 2};
    unit.start(h.command(idxs));
    h.eq.runUntil(5 * ticks::us);
    ASSERT_EQ(h.ctx.sent.size(), 2u);

    // The same response lands twice (original + retransmit twin).
    unit.onResponse(respond(h.ctx.sent[0].pr));
    unit.onResponse(respond(h.ctx.sent[0].pr));
    EXPECT_EQ(unit.stats().duplicatesSuppressed, 1u);
    EXPECT_EQ(unit.stats().responses, 1u);

    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
    EXPECT_EQ(unit.stats().responses, 2u);
}

TEST(RigClient, CorruptResponseIsNackedAndRefetchedBypassingCache)
{
    ClientHarness h;
    h.cfg.retry.enabled = true;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1};
    unit.start(h.command(idxs));
    h.eq.runUntil(5 * ticks::us);
    ASSERT_EQ(h.ctx.sent.size(), 1u);

    PropertyRequest bad = respond(h.ctx.sent[0].pr);
    bad.checksum ^= 1;
    unit.onResponse(bad); // with retry on: NACK + refetch, no panic
    EXPECT_EQ(unit.stats().corruptDropped, 1u);
    EXPECT_EQ(unit.stats().nacks, 1u);
    EXPECT_TRUE(unit.busy());

    // The refetch reuses the reqId and asks the network to bypass the
    // (potentially poisoned) Property Cache.
    ASSERT_EQ(h.ctx.sent.size(), 2u);
    EXPECT_EQ(h.ctx.sent[1].pr.reqId, h.ctx.sent[0].pr.reqId);
    EXPECT_TRUE(h.ctx.sent[1].pr.bypassCache);
    EXPECT_FALSE(h.ctx.sent[0].pr.bypassCache);

    unit.onResponse(respond(h.ctx.sent[1].pr));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    EXPECT_TRUE(h.lastSuccess);
}

TEST(RigClient, CorruptResponsePanics)
{
    ClientHarness h;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs{1};
    unit.start(h.command(idxs));
    h.eq.run();
    ASSERT_EQ(h.ctx.sent.size(), 1u);
    PropertyRequest bad = respond(h.ctx.sent[0].pr);
    bad.checksum ^= 1;
    EXPECT_THROW(unit.onResponse(bad), std::logic_error);
}

TEST(RigClient, ThroughputIsOneIdxPerCycle)
{
    // 2200 local idxs at 2.2 GHz take ~1 us of pipeline time (plus the
    // initial DMA fill), exercising the chunked cycle accounting.
    ClientHarness h;
    RigClientUnit unit(h.eq, h.cfg, h.ctx, 0);
    std::vector<std::uint32_t> idxs(2200, 0); // all local
    unit.start(h.command(idxs));
    h.eq.run();
    EXPECT_EQ(h.completions, 1);
    // Initial DMA fill (16 ns serialization + 200 ns latency), 2200
    // cycles of pipeline, one more PCIe crossing for the completion.
    Tick expected = 216 * ticks::ns + 1 * ticks::us + 200 * ticks::ns;
    EXPECT_NEAR(static_cast<double>(h.eq.now()),
                static_cast<double>(expected), 60e3 /* 60 ns */);
}

TEST(RigServer, TurnsReadsIntoChecksummedResponses)
{
    EventQueue eq;
    MockCtx ctx(eq, 1024);
    RigUnitConfig cfg;
    RigServerUnit server(eq, cfg, ctx, 16);

    PropertyRequest read;
    read.type = PrType::Read;
    read.src = 2;
    read.srcTid = 5;
    read.idx = 77;
    read.reqId = 9;
    read.propBytes = 128;
    server.handleRead(std::move(read));
    eq.run();

    ASSERT_EQ(ctx.sent.size(), 1u);
    const auto &resp = ctx.sent[0].pr;
    EXPECT_EQ(ctx.sent[0].dest, 2u); // back to the requester
    EXPECT_EQ(resp.type, PrType::Response);
    EXPECT_EQ(resp.src, 2u);
    EXPECT_EQ(resp.srcTid, 5u); // requester's tid survives
    EXPECT_EQ(resp.reqId, 9u);
    EXPECT_EQ(resp.payloadBytes, 128u);
    EXPECT_EQ(resp.checksum, propertyChecksum(77));
    EXPECT_EQ(server.stats().readsServed, 1u);
    EXPECT_EQ(server.stats().bytesFetched, 128u);
}

TEST(RigServer, ResponsesPayHostFetchLatency)
{
    EventQueue eq;
    MockCtx ctx(eq, 1024);
    RigUnitConfig cfg;
    RigServerUnit server(eq, cfg, ctx, 16);
    PropertyRequest read;
    read.type = PrType::Read;
    read.src = 1;
    read.idx = 3;
    read.propBytes = 64;
    server.handleRead(std::move(read));
    eq.run();
    // At least PCIe latency + memory latency before the response.
    EXPECT_GE(eq.now(), 300 * ticks::ns);
}
