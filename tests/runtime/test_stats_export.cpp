/** @file Tests for the stats-registry export of gather results. */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/json_lite.hh"
#include "runtime/cluster.hh"
#include "sim/stats_export.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

GatherRunResult
smallRun()
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 2;
    return ClusterSim(cfg).runGather(m, part, 16);
}

} // namespace

TEST(StatsExport, ClusterAggregatesMatchTheResult)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);

    EXPECT_DOUBLE_EQ(reg.get("cluster.commTicks"),
                     static_cast<double>(r.commTicks));
    EXPECT_DOUBLE_EQ(reg.get("cluster.cacheHitRate"), r.cacheHitRate());
    EXPECT_DOUBLE_EQ(reg.get("cluster.tailGoodput"), r.tailGoodput);

    double prs = 0;
    for (const auto &n : r.nodes)
        prs += static_cast<double>(n.prsIssued);
    EXPECT_DOUBLE_EQ(reg.get("cluster.prsIssued"), prs);
}

TEST(StatsExport, PerNodeEntriesExistForEveryNode)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);
    for (std::size_t n = 0; n < r.nodes.size(); ++n) {
        std::string prefix = "node" + std::to_string(n) + ".";
        EXPECT_TRUE(reg.has(prefix + "finishTicks")) << prefix;
        EXPECT_DOUBLE_EQ(reg.get(prefix + "prsIssued"),
                         static_cast<double>(r.nodes[n].prsIssued));
        EXPECT_DOUBLE_EQ(reg.get(prefix + "fcRate"),
                         r.nodes[n].fcRate());
    }
}

TEST(StatsExport, DumpIsParseable)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("cluster.commTicks"), std::string::npos);
    EXPECT_NE(out.find("node0.rxBytes"), std::string::npos);
    // One "name value" pair per line.
    std::istringstream in(out);
    std::string name;
    double value;
    int lines = 0;
    while (in >> name >> value)
        ++lines;
    EXPECT_EQ(static_cast<std::size_t>(lines), reg.all().size());
}

TEST(StatsExport, JsonRoundTripsEveryRegisteredStat)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);

    Average avg;
    avg.sample(2.0);
    avg.sample(6.0);
    reg.setAverage("test.avg", avg);

    Histogram hist(0.0, 10.0, 5);
    hist.sample(-1.0); // underflow
    hist.sample(3.0);
    hist.sample(3.5);
    hist.sample(42.0); // overflow
    reg.setHistogram("test.hist", hist);

    std::ostringstream os;
    writeStatsJson(reg, os);
    jsonlite::Value doc = jsonlite::parse(os.str());
    ASSERT_TRUE(doc.isObject());

    // Every scalar comes back with its exact value.
    for (const auto &[stat_name, stat_value] : reg.all()) {
        ASSERT_TRUE(doc.has(stat_name)) << stat_name;
        const jsonlite::Value &e = doc.at(stat_name);
        EXPECT_EQ(e.at("type").string, "scalar") << stat_name;
        EXPECT_DOUBLE_EQ(e.at("value").number, stat_value) << stat_name;
    }

    const jsonlite::Value &a = doc.at("test.avg");
    EXPECT_EQ(a.at("type").string, "average");
    EXPECT_DOUBLE_EQ(a.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(a.at("sum").number, 8.0);
    EXPECT_DOUBLE_EQ(a.at("mean").number, 4.0);
    EXPECT_DOUBLE_EQ(a.at("min").number, 2.0);
    EXPECT_DOUBLE_EQ(a.at("max").number, 6.0);

    const jsonlite::Value &h = doc.at("test.hist");
    EXPECT_EQ(h.at("type").string, "histogram");
    EXPECT_DOUBLE_EQ(h.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(h.at("hi").number, 10.0);
    EXPECT_DOUBLE_EQ(h.at("total").number, 4.0);
    const jsonlite::Value &buckets = h.at("buckets");
    ASSERT_EQ(buckets.array.size(), hist.numBuckets());
    EXPECT_DOUBLE_EQ(buckets.at(0).number, 1.0); // underflow
    EXPECT_DOUBLE_EQ(buckets.at(2).number, 2.0); // [2, 4)
    EXPECT_DOUBLE_EQ(buckets.at(buckets.array.size() - 1).number,
                     1.0); // overflow
}

TEST(StatsExport, CollectorDocumentHoldsLabelledRuns)
{
    StatsExport &exp = StatsExport::instance();
    exp.reset();
    exp.setOutputPath("/dev/null");
    ASSERT_TRUE(exp.enabled());

    StatRegistry &first = exp.beginRun();
    first.set("cluster.commTicks", 123.0);
    StatRegistry &second = exp.beginRun("warmup");
    second.set("cluster.commTicks", 456.0);
    EXPECT_EQ(exp.numRuns(), 2u);

    jsonlite::Value doc = jsonlite::parse(exp.toJson());
    EXPECT_EQ(doc.at("schema").string, "netsparse-stats-v1");
    const jsonlite::Value &runs = doc.at("runs");
    ASSERT_EQ(runs.array.size(), 2u);
    EXPECT_DOUBLE_EQ(runs.at(0).at("run").number, 0.0);
    EXPECT_EQ(runs.at(0).at("label").string, "gather0");
    EXPECT_DOUBLE_EQ(
        runs.at(0).at("stats").at("cluster.commTicks").at("value").number,
        123.0);
    EXPECT_EQ(runs.at(1).at("label").string, "warmup");
    EXPECT_DOUBLE_EQ(
        runs.at(1).at("stats").at("cluster.commTicks").at("value").number,
        456.0);

    exp.reset(); // leave the process-wide collector clean for other tests
    EXPECT_FALSE(exp.enabled());
}

TEST(StatsExport, RunGatherDepositsDetailedSnapshotWhenEnabled)
{
    StatsExport &exp = StatsExport::instance();
    exp.reset();
    exp.setOutputPath("/dev/null");

    smallRun();
    ASSERT_EQ(exp.numRuns(), 1u);

    jsonlite::Value doc = jsonlite::parse(exp.toJson());
    const jsonlite::Value &stats = doc.at("runs").at(0).at("stats");
    // The documented naming contract (docs/observability.md): detailed
    // per-component counters appear alongside the cluster aggregates.
    for (const char *key :
         {"cluster.commTicks", "sim.executedEvents", "sim.finalTick",
          "node0.snic.rig0.prsIssued", "node0.snic.idxFilter.hits",
          "node0.snic.concat.prsPushed", "node0.tx.bytes",
          "tor0.cache.hits", "tor0.cache.lookups", "tor0.packetsForwarded",
          "spine0.packetsForwarded"})
        EXPECT_TRUE(stats.has(key)) << key;

    EXPECT_EQ(stats.at("node0.snic.concat.prsPerPacket").at("type").string,
              "average");
    EXPECT_EQ(stats.at("cluster.finishTimeNs").at("type").string,
              "histogram");

    exp.reset();
}
