/** @file Tests for the stats-registry export of gather results. */

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/cluster.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

GatherRunResult
smallRun()
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t nodes = 8;
    Partition1D part = Partition1D::equalRows(m.rows, nodes);
    ClusterConfig cfg = defaultClusterConfig(nodes);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 2;
    return ClusterSim(cfg).runGather(m, part, 16);
}

} // namespace

TEST(StatsExport, ClusterAggregatesMatchTheResult)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);

    EXPECT_DOUBLE_EQ(reg.get("cluster.commTicks"),
                     static_cast<double>(r.commTicks));
    EXPECT_DOUBLE_EQ(reg.get("cluster.cacheHitRate"), r.cacheHitRate());
    EXPECT_DOUBLE_EQ(reg.get("cluster.tailGoodput"), r.tailGoodput);

    double prs = 0;
    for (const auto &n : r.nodes)
        prs += static_cast<double>(n.prsIssued);
    EXPECT_DOUBLE_EQ(reg.get("cluster.prsIssued"), prs);
}

TEST(StatsExport, PerNodeEntriesExistForEveryNode)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);
    for (std::size_t n = 0; n < r.nodes.size(); ++n) {
        std::string prefix = "node" + std::to_string(n) + ".";
        EXPECT_TRUE(reg.has(prefix + "finishTicks")) << prefix;
        EXPECT_DOUBLE_EQ(reg.get(prefix + "prsIssued"),
                         static_cast<double>(r.nodes[n].prsIssued));
        EXPECT_DOUBLE_EQ(reg.get(prefix + "fcRate"),
                         r.nodes[n].fcRate());
    }
}

TEST(StatsExport, DumpIsParseable)
{
    GatherRunResult r = smallRun();
    StatRegistry reg;
    r.exportStats(reg);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("cluster.commTicks"), std::string::npos);
    EXPECT_NE(out.find("node0.rxBytes"), std::string::npos);
    // One "name value" pair per line.
    std::istringstream in(out);
    std::string name;
    double value;
    int lines = 0;
    while (in >> name >> value)
        ++lines;
    EXPECT_EQ(static_cast<std::size_t>(lines), reg.all().size());
}
