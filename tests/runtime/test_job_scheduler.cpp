/**
 * @file
 * JobScheduler unit tests: the single-job schedule is the legacy
 * cluster run, concurrent jobs all complete with correct per-tenant
 * accounting, admission delays defer issue, and the background-traffic
 * config parses exactly what docs/observability.md promises.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/job_scheduler.hh"
#include "sim/stats_export.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** 16 nodes over 4 racks, so up to 4 shards are available. */
ClusterConfig
shardableCluster(std::uint32_t shards = 1)
{
    ClusterConfig cfg = defaultClusterConfig(16);
    cfg.nodesPerRack = 4;
    cfg.numSpines = 4;
    cfg.simShards = shards;
    return cfg;
}

GatherWorkload
sliceWork(const Csr &m, std::uint32_t nodes)
{
    GatherWorkload w;
    w.numIdxs = m.cols;
    w.part = Partition1D::equalRows(m.rows, nodes);
    w.streams.reserve(nodes);
    for (NodeId nid = 0; nid < nodes; ++nid)
        w.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[w.part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[w.part.end(nid)]);
    return w;
}

} // namespace

TEST(JobScheduler, SingleJobMatchesTheLegacyClusterRun)
{
    // A one-job schedule with no background traffic must be the legacy
    // cluster run: same scalar results and a byte-identical stats
    // document (the scheduler takes the exact legacy path for it).
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Partition1D part = Partition1D::equalRows(m.rows, 16);

    StatsExport ref_stats;
    ref_stats.setCollect(true);
    GatherRunResult ref;
    {
        StatsExport::Bind bind(ref_stats);
        ClusterSim sim(shardableCluster());
        ref = sim.runGather(m, part, 16);
    }

    StatsExport got_stats;
    got_stats.setCollect(true);
    MultiJobResult mr;
    {
        StatsExport::Bind bind(got_stats);
        std::vector<JobSpec> specs(1);
        specs[0].work = sliceWork(m, 16);
        specs[0].k = 16;
        JobScheduler sched(shardableCluster());
        mr = sched.run(std::move(specs));
    }

    ASSERT_EQ(mr.jobs.size(), 1u);
    EXPECT_EQ(got_stats.toJson(), ref_stats.toJson());
    EXPECT_EQ(mr.jobs[0].commTicks, ref.commTicks);
    EXPECT_EQ(mr.jobs[0].tailNode, ref.tailNode);
    EXPECT_EQ(mr.jobs[0].totalWireBytes, ref.totalWireBytes);
    EXPECT_EQ(mr.makespanTicks, ref.commTicks);
    EXPECT_EQ(mr.executedEvents, ref.executedEvents);
    EXPECT_EQ(mr.backgroundPackets, 0u);
}

TEST(JobScheduler, ConcurrentJobsAllCompleteWithOwnAccounting)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    Csr q = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);

    std::vector<JobSpec> specs(2);
    specs[0].work = sliceWork(a, 16);
    specs[0].k = 16;
    specs[1].work = sliceWork(q, 16);
    specs[1].k = 8;
    JobScheduler sched(shardableCluster());
    MultiJobResult mr = sched.run(std::move(specs));

    ASSERT_EQ(mr.jobs.size(), 2u);
    for (const GatherRunResult &r : mr.jobs) {
        EXPECT_GT(r.commTicks, 0u);
        ASSERT_EQ(r.nodes.size(), 16u);
        EXPECT_GT(r.sumNodes([](const NodeRunStats &n) {
                      return n.prsIssued;
                  }),
                  0u);
    }
    EXPECT_EQ(mr.makespanTicks,
              std::max(mr.jobs[0].commTicks, mr.jobs[1].commTicks));
    // Per-tenant streams are independent: each job processed exactly
    // its own matrix's indices, sharing the fabric changes timing only.
    EXPECT_EQ(mr.jobs[0].sumNodes(
                  [](const NodeRunStats &n) { return n.idxsProcessed; }),
              static_cast<std::uint64_t>(a.nnz()));
    EXPECT_EQ(mr.jobs[1].sumNodes(
                  [](const NodeRunStats &n) { return n.idxsProcessed; }),
              static_cast<std::uint64_t>(q.nnz()));
}

TEST(JobScheduler, StartDelayDefersAdmission)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    const Tick delay = 20 * ticks::us;

    auto run_with_delay = [&](Tick d) {
        std::vector<JobSpec> specs(2);
        for (int j = 0; j < 2; ++j) {
            specs[j].work = sliceWork(m, 16);
            specs[j].k = 16;
        }
        specs[1].startDelay = d;
        JobScheduler sched(shardableCluster());
        return sched.run(std::move(specs));
    };

    MultiJobResult together = run_with_delay(0);
    MultiJobResult staggered = run_with_delay(delay);
    // The late job cannot finish before it is admitted, and admitting
    // it late pushes its completion past the contended-start run.
    EXPECT_GE(staggered.jobs[1].commTicks, delay);
    EXPECT_GT(staggered.jobs[1].commTicks, together.jobs[1].commTicks);
}

TEST(JobScheduler, BackgroundBudgetIsExactAndAccounted)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    BackgroundTrafficConfig bg;
    ASSERT_TRUE(BackgroundTrafficConfig::parse("alltoall:0.5:50", bg));

    std::vector<JobSpec> specs(1);
    specs[0].work = sliceWork(m, 16);
    specs[0].k = 16;
    JobScheduler sched(shardableCluster());
    MultiJobResult mr = sched.run(std::move(specs), bg);

    // Fixed per-source budget: every node sends exactly 50 packets.
    EXPECT_EQ(mr.backgroundPackets, 16u * 50u);
    EXPECT_EQ(mr.backgroundBytes, 16u * 50u * 1500u);
    EXPECT_GT(mr.backgroundDelivered, 0u);
    EXPECT_LE(mr.backgroundDelivered, mr.backgroundPackets);
    EXPECT_GT(mr.jobs[0].commTicks, 0u);
}

TEST(BackgroundTraffic, SpecParsing)
{
    BackgroundTrafficConfig bg;
    ASSERT_TRUE(BackgroundTrafficConfig::parse("incast:0.5", bg));
    EXPECT_EQ(bg.pattern, BackgroundPattern::Incast);
    EXPECT_DOUBLE_EQ(bg.load, 0.5);
    EXPECT_EQ(bg.packetsPerSource, 2000u); // default budget
    EXPECT_EQ(bg.packetBytes, 1500u);
    EXPECT_TRUE(bg.enabled());

    ASSERT_TRUE(BackgroundTrafficConfig::parse("storage:0.25:100:512",
                                               bg));
    EXPECT_EQ(bg.pattern, BackgroundPattern::Storage);
    EXPECT_EQ(bg.packetsPerSource, 100u);
    EXPECT_EQ(bg.packetBytes, 512u);

    // Malformed specs are rejected and leave the output untouched.
    BackgroundTrafficConfig keep = bg;
    for (const char *bad :
         {"incast", "bogus:0.5", "incast:0", "incast:-0.5", "incast:1.5",
          "incast:0.5:0", "incast:0.5:10:0", "incast:0.5:10:64:extra",
          ":0.5", "incast:abc"}) {
        EXPECT_FALSE(BackgroundTrafficConfig::parse(bad, bg)) << bad;
        EXPECT_EQ(bg.pattern, keep.pattern) << bad;
        EXPECT_DOUBLE_EQ(bg.load, keep.load) << bad;
    }
}
