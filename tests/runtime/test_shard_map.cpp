/**
 * @file
 * Unit tests for the rack-granular shard partition behind the parallel
 * engine: hosts stay with their ToR, spines spread evenly, and every
 * cross-shard edge of the component graph is a switch-to-switch link.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/topology.hh"
#include "runtime/shard_map.hh"

using namespace netsparse;

namespace {

/** The structural invariants every shard map must satisfy. */
void
checkMap(const Topology &topo, const ShardMap &map)
{
    ASSERT_EQ(map.switchShard.size(), topo.numSwitches());
    ASSERT_EQ(map.nodeShard.size(), topo.numNodes());
    for (SwitchId s = 0; s < topo.numSwitches(); ++s)
        EXPECT_LT(map.shardOfSwitch(s), map.numShards);
    // Hosts are indivisible from their ToR (doorbells and completions
    // cross that boundary without a Link).
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        EXPECT_EQ(map.shardOfNode(n),
                  map.shardOfSwitch(topo.switchOf(n)));
    // Every cross-shard edge is a switch-to-switch link: host-facing
    // ports never cross shards, so their latency-free coupling stays
    // inside one event queue.
    for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
        for (const PortPeer &peer : topo.ports(s)) {
            if (peer.kind == PortPeer::Kind::Host)
                EXPECT_EQ(map.shardOfNode(peer.id), map.shardOfSwitch(s));
        }
    }
    // Every shard owns at least one ToR (rack granularity).
    std::vector<std::uint32_t> tors(map.numShards, 0);
    for (SwitchId s = 0; s < topo.numSwitches(); ++s)
        if (topo.isTor(s))
            tors[map.shardOfSwitch(s)]++;
    for (std::uint32_t t : tors)
        EXPECT_GE(t, 1u);
}

/** RAII save/restore of the NETSPARSE_SIM_SHARDS variable. */
class ScopedShardEnv
{
  public:
    explicit ScopedShardEnv(const char *value)
    {
        const char *old = std::getenv("NETSPARSE_SIM_SHARDS");
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv("NETSPARSE_SIM_SHARDS", value, 1);
        else
            ::unsetenv("NETSPARSE_SIM_SHARDS");
    }
    ~ScopedShardEnv()
    {
        if (hadOld_)
            ::setenv("NETSPARSE_SIM_SHARDS", old_.c_str(), 1);
        else
            ::unsetenv("NETSPARSE_SIM_SHARDS");
    }

  private:
    bool hadOld_ = false;
    std::string old_;
};

} // namespace

TEST(ShardMap, LeafSpinePartitionIsContiguousAndBalanced)
{
    Topology topo = Topology::leafSpine(8, 16, 16);
    ASSERT_EQ(topo.numTors(), 8u);
    ShardMap map = ShardMap::build(topo, 4);
    EXPECT_EQ(map.numShards, 4u);
    checkMap(topo, map);

    // ToRs come first in leaf-spine construction: contiguous blocks of
    // two racks per shard, in rack order.
    std::uint32_t tor = 0;
    for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
        if (!topo.isTor(s))
            continue;
        EXPECT_EQ(map.shardOfSwitch(s), tor / 2) << "ToR " << tor;
        tor++;
    }
    // 16 spines over 4 shards: 4 each.
    std::vector<std::uint32_t> spines(4, 0);
    for (SwitchId s = 0; s < topo.numSwitches(); ++s)
        if (!topo.isTor(s))
            spines[map.shardOfSwitch(s)]++;
    for (std::uint32_t c : spines)
        EXPECT_EQ(c, 4u);
}

TEST(ShardMap, SingleShardOwnsEverything)
{
    Topology topo = Topology::leafSpine(4, 4, 4);
    ShardMap map = ShardMap::build(topo, 1);
    EXPECT_EQ(map.numShards, 1u);
    for (SwitchId s = 0; s < topo.numSwitches(); ++s)
        EXPECT_EQ(map.shardOfSwitch(s), 0u);
}

TEST(ShardMap, ClampsRequestsToTheRackCount)
{
    Topology topo = Topology::leafSpine(4, 4, 4);
    ShardMap map = ShardMap::build(topo, 64);
    EXPECT_EQ(map.numShards, 4u);
    checkMap(topo, map);
}

TEST(ShardMap, HyperXEverySwitchIsARackUnit)
{
    // Section 9.6 configuration: 4x4x2 switches, 4 hosts each.
    Topology topo = Topology::hyperX(4, 4, 2, 4, 4);
    ASSERT_EQ(topo.numTors(), 32u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        ShardMap map = ShardMap::build(topo, shards);
        EXPECT_EQ(map.numShards, shards);
        checkMap(topo, map);
        // All 32 switches host nodes, so shards split them evenly.
        std::vector<std::uint32_t> count(shards, 0);
        for (SwitchId s = 0; s < topo.numSwitches(); ++s)
            count[map.shardOfSwitch(s)]++;
        for (std::uint32_t c : count)
            EXPECT_EQ(c, 32u / shards);
    }
}

TEST(ShardMap, DragonflyPartitionHoldsItsInvariants)
{
    Topology topo = Topology::dragonfly(4, 8, 4, 4);
    ASSERT_EQ(topo.numTors(), 32u);
    for (std::uint32_t shards : {2u, 4u})
        checkMap(topo, ShardMap::build(topo, shards));
}

TEST(ResolveShardCount, ExplicitRequestWinsOverTheEnvironment)
{
    ScopedShardEnv env("7");
    EXPECT_EQ(resolveShardCount(3, 8), 3u);
    EXPECT_EQ(resolveShardCount(1, 8), 1u);
}

TEST(ResolveShardCount, UnsetEnvironmentMeansSequential)
{
    ScopedShardEnv env(nullptr);
    EXPECT_EQ(resolveShardCount(0, 8), 1u);
}

TEST(ResolveShardCount, ReadsIntegersFromTheEnvironment)
{
    ScopedShardEnv env("4");
    EXPECT_EQ(resolveShardCount(0, 8), 4u);
}

TEST(ResolveShardCount, ClampsToTheRackCount)
{
    ScopedShardEnv env("64");
    EXPECT_EQ(resolveShardCount(0, 8), 8u);
    EXPECT_EQ(resolveShardCount(64, 8), 8u);
}

TEST(ResolveShardCount, AutoPicksRacksCappedByHardware)
{
    ScopedShardEnv env("auto");
    std::uint32_t got = resolveShardCount(0, 8);
    EXPECT_GE(got, 1u);
    EXPECT_LE(got, 8u);
}

TEST(ResolveShardCount, RejectsGarbage)
{
    ScopedShardEnv env("zero");
    EXPECT_THROW(resolveShardCount(0, 8), std::logic_error);
}
