/** @file Tests for the ablation feature toggles. */

#include <gtest/gtest.h>

#include "runtime/feature_set.hh"

using namespace netsparse;

TEST(FeatureSet, DefaultsToFullDesign)
{
    FeatureSet f;
    EXPECT_TRUE(f.filter);
    EXPECT_TRUE(f.coalesce);
    EXPECT_TRUE(f.concatNic);
    EXPECT_TRUE(f.concatSwitch);
    EXPECT_TRUE(f.switchCache);
}

TEST(FeatureSet, RigOnlyDisablesEverything)
{
    FeatureSet f = FeatureSet::rigOnly();
    EXPECT_FALSE(f.filter);
    EXPECT_FALSE(f.coalesce);
    EXPECT_FALSE(f.concatNic);
    EXPECT_FALSE(f.concatSwitch);
    EXPECT_FALSE(f.switchCache);
}

TEST(FeatureSet, StagesAreCumulative)
{
    EXPECT_FALSE(FeatureSet::ablationStage(0).filter);
    EXPECT_TRUE(FeatureSet::ablationStage(1).filter);
    EXPECT_FALSE(FeatureSet::ablationStage(1).coalesce);
    EXPECT_TRUE(FeatureSet::ablationStage(2).coalesce);
    EXPECT_FALSE(FeatureSet::ablationStage(2).concatNic);
    EXPECT_TRUE(FeatureSet::ablationStage(3).concatNic);
    EXPECT_FALSE(FeatureSet::ablationStage(3).concatSwitch);
    EXPECT_TRUE(FeatureSet::ablationStage(4).concatSwitch);
    EXPECT_TRUE(FeatureSet::ablationStage(4).switchCache);
}

TEST(FeatureSet, StageNamesMatchTable8)
{
    EXPECT_STREQ(FeatureSet::stageName(0), "RIG");
    EXPECT_STREQ(FeatureSet::stageName(1), "Filter");
    EXPECT_STREQ(FeatureSet::stageName(2), "Coalesce");
    EXPECT_STREQ(FeatureSet::stageName(3), "ConcNIC");
    EXPECT_STREQ(FeatureSet::stageName(4), "Switch");
}

TEST(FeatureSet, OutOfRangeStagePanics)
{
    EXPECT_THROW(FeatureSet::ablationStage(5), std::logic_error);
}
