/** @file Tests for the roofline compute models. */

#include <gtest/gtest.h>

#include "compute/models.hh"
#include "sparse/generators.hh"

using namespace netsparse;

TEST(Compute, RooflineTakesTheBindingTerm)
{
    ComputeDevice d{"test", 1e9, 1e9, 1.0};
    // Compute-bound: many flops, few bytes.
    KernelCost heavy{1000000, 10};
    EXPECT_EQ(d.time(heavy), ticks::fromSeconds(1e6 / 1e9));
    // Memory-bound: few flops, many bytes.
    KernelCost wide{10, 1000000};
    EXPECT_EQ(d.time(wide), ticks::fromSeconds(1e6 / 1e9));
}

TEST(Compute, EfficiencyInflatesTime)
{
    ComputeDevice perfect{"p", 1e9, 1e9, 1.0};
    ComputeDevice real{"r", 1e9, 1e9, 0.5};
    KernelCost c{1000, 1000};
    EXPECT_EQ(real.time(c), 2 * perfect.time(c));
}

TEST(Compute, DeviceCatalog)
{
    EXPECT_EQ(spadeAccelerator().name, "spade");
    EXPECT_DOUBLE_EQ(spadeAccelerator().memBytesPerSec, 800e9);
    EXPECT_DOUBLE_EQ(cpuDdr().memBytesPerSec, 270e9);
    EXPECT_DOUBLE_EQ(cpuHbm().memBytesPerSec, 800e9);
}

TEST(Compute, SpmmTimeMonotoneInWorkload)
{
    auto dev = spadeAccelerator();
    EXPECT_LT(spmmTime(dev, 1000, 100, 16), spmmTime(dev, 2000, 100, 16));
    EXPECT_LT(spmmTime(dev, 1000, 100, 16), spmmTime(dev, 1000, 100, 64));
}

TEST(Compute, HbmBeatsDdrOnBandwidthBoundSpmm)
{
    // SpMM at K=128 is bandwidth-bound; HBM should win clearly.
    Tick ddr = spmmTime(cpuDdr(), 1 << 20, 1 << 16, 128);
    Tick hbm = spmmTime(cpuHbm(), 1 << 20, 1 << 16, 128);
    EXPECT_LT(hbm, ddr);
    EXPECT_NEAR(static_cast<double>(ddr) / hbm, 800.0 / 270.0, 0.2);
}

TEST(Compute, SpadeOutrunsCpusOnSpmm)
{
    Tick spade = spmmTime(spadeAccelerator(), 1 << 20, 1 << 16, 16);
    Tick cpu = spmmTime(cpuDdr(), 1 << 20, 1 << 16, 16);
    EXPECT_LT(spade, cpu);
}

TEST(Compute, UnconfiguredDevicePanics)
{
    ComputeDevice d;
    EXPECT_THROW(d.time({100, 100}), std::logic_error);
}

TEST(Compute, PeLevelTimeIsAtLeastTheFlatRoofline)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.02);
    auto dev = spadeAccelerator();
    Tick flat = spmmTime(dev, m.nnz(), m.rows, 16);
    Tick pe = spmmTimePeLevel(dev, m, 0, m.rows, 16);
    // Imbalance across PEs can only slow the block down.
    EXPECT_GE(pe, flat);
    // But not catastrophically for a whole matrix of rows.
    EXPECT_LT(pe, 10 * flat);
}

TEST(Compute, PeLevelBalancedMatrixMatchesRoofline)
{
    // A perfectly regular band matrix deals identical rows to every
    // PE, so the PE-level time collapses to the flat roofline.
    BandedFemParams p;
    p.rows = 1 << 13;
    p.band = 32;
    p.deg = 16;
    Csr m = Csr::fromCoo(makeBandedFem(p));
    auto dev = spadeAccelerator();
    Tick flat = spmmTime(dev, m.nnz(), m.rows, 16);
    Tick pe = spmmTimePeLevel(dev, m, 0, m.rows, 16);
    EXPECT_NEAR(static_cast<double>(pe), static_cast<double>(flat),
                0.05 * flat);
}

TEST(Compute, PeLevelSinglePeEqualsWholeDevice)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    auto dev = spadeAccelerator();
    EXPECT_EQ(spmmTimePeLevel(dev, m, 0, m.rows, 8, 1),
              spmmTime(dev, m.nnz(), m.rows, 8));
}
