/** @file Unit tests for 1-D partitioning. */

#include <gtest/gtest.h>

#include "sparse/generators.hh"
#include "sparse/partition.hh"

using namespace netsparse;

TEST(Partition, EqualRowsCoversEverythingOnce)
{
    Partition1D p = Partition1D::equalRows(100, 7);
    EXPECT_EQ(p.numParts(), 7u);
    EXPECT_EQ(p.total(), 100u);
    EXPECT_EQ(p.begin(0), 0u);
    EXPECT_EQ(p.end(6), 100u);
    std::uint32_t covered = 0;
    for (NodeId n = 0; n < 7; ++n) {
        EXPECT_EQ(p.end(n) - p.begin(n), p.size(n));
        covered += p.size(n);
    }
    EXPECT_EQ(covered, 100u);
}

TEST(Partition, OwnerOfAgreesWithRanges)
{
    Partition1D p = Partition1D::equalRows(1000, 13);
    for (std::uint32_t i = 0; i < 1000; ++i) {
        NodeId o = p.ownerOf(i);
        EXPECT_GE(i, p.begin(o));
        EXPECT_LT(i, p.end(o));
        EXPECT_EQ(p.localIndex(i), i - p.begin(o));
    }
}

TEST(Partition, ExactDivisionUsesFastPath)
{
    Partition1D p = Partition1D::equalRows(128, 8);
    for (std::uint32_t i = 0; i < 128; ++i)
        EXPECT_EQ(p.ownerOf(i), i / 16);
}

TEST(Partition, SinglePartOwnsAll)
{
    Partition1D p = Partition1D::equalRows(50, 1);
    EXPECT_EQ(p.numParts(), 1u);
    EXPECT_EQ(p.ownerOf(0), 0u);
    EXPECT_EQ(p.ownerOf(49), 0u);
}

TEST(Partition, OutOfRangePanics)
{
    Partition1D p = Partition1D::equalRows(10, 2);
    EXPECT_THROW(p.ownerOf(10), std::logic_error);
}

TEST(Partition, TooManyPartsPanics)
{
    EXPECT_THROW(Partition1D::equalRows(3, 5), std::logic_error);
}

TEST(Partition, EqualNnzBalancesSkewedMatrices)
{
    // A matrix whose first rows are dense and the rest nearly empty.
    Coo coo;
    coo.rows = coo.cols = 1000;
    for (std::uint32_t r = 0; r < 100; ++r)
        for (std::uint32_t k = 0; k < 50; ++k)
            coo.push(r, (r + k) % 1000);
    for (std::uint32_t r = 100; r < 1000; ++r)
        coo.push(r, r);
    Csr m = Csr::fromCoo(coo);

    Partition1D rows = Partition1D::equalRows(m.rows, 4);
    Partition1D nnz = Partition1D::equalNnz(m, 4);

    auto node_nnz = [&](const Partition1D &p, NodeId n) {
        return m.rowPtr[p.end(n)] - m.rowPtr[p.begin(n)];
    };
    // Row partitioning puts nearly everything on node 0.
    EXPECT_GT(node_nnz(rows, 0), 4 * node_nnz(rows, 3));
    // Nnz partitioning is much more even.
    std::uint64_t mx = 0, mn = m.nnz();
    for (NodeId n = 0; n < 4; ++n) {
        mx = std::max(mx, node_nnz(nnz, n));
        mn = std::min(mn, node_nnz(nnz, n));
    }
    EXPECT_LT(mx, 2 * mn + 100);
    // Still a complete, ordered partition.
    EXPECT_EQ(nnz.total(), m.rows);
    for (std::uint32_t i = 0; i < m.rows; i += 97) {
        NodeId o = nnz.ownerOf(i);
        EXPECT_GE(i, nnz.begin(o));
        EXPECT_LT(i, nnz.end(o));
    }
}

TEST(Partition, NonUniformBinarySearchPath)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
    Partition1D p = Partition1D::equalNnz(m, 16);
    for (std::uint32_t i = 0; i < m.rows; i += 31) {
        NodeId o = p.ownerOf(i);
        EXPECT_GE(i, p.begin(o));
        EXPECT_LT(i, p.end(o));
    }
}
