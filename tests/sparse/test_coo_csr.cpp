/** @file Unit tests for COO/CSR matrix containers. */

#include <gtest/gtest.h>

#include "sparse/coo.hh"
#include "sparse/csr.hh"

using namespace netsparse;

namespace {

/** The example matrix of the paper's Figure 1: 8x8, nonzeros a..g. */
Coo
figure1Matrix()
{
    Coo m;
    m.rows = m.cols = 8;
    m.push(0, 4); // a
    m.push(1, 1); // b
    m.push(2, 6); // c
    m.push(4, 3); // d
    m.push(5, 3); // e
    m.push(6, 7); // f
    m.push(7, 6); // g
    return m;
}

} // namespace

TEST(Coo, BasicConstruction)
{
    Coo m = figure1Matrix();
    EXPECT_EQ(m.nnz(), 7u);
    EXPECT_FALSE(m.hasValues());
    EXPECT_FLOAT_EQ(m.valueAt(0), 1.0f);
    m.validate();
}

TEST(Coo, ValuesTrackCoordinates)
{
    Coo m;
    m.rows = m.cols = 4;
    m.push(0, 1, 2.5f);
    m.push(3, 2, -1.0f);
    EXPECT_TRUE(m.hasValues());
    EXPECT_FLOAT_EQ(m.valueAt(1), -1.0f);
    m.validate();
}

TEST(Coo, SortRowMajorOrdersAndKeepsValues)
{
    Coo m;
    m.rows = m.cols = 4;
    m.push(3, 0, 3.0f);
    m.push(0, 2, 1.0f);
    m.push(0, 1, 2.0f);
    m.sortRowMajor();
    EXPECT_EQ(m.rowIdx, (std::vector<std::uint32_t>{0, 0, 3}));
    EXPECT_EQ(m.colIdx, (std::vector<std::uint32_t>{1, 2, 0}));
    EXPECT_EQ(m.vals, (std::vector<float>{2.0f, 1.0f, 3.0f}));
}

TEST(Coo, DedupeSumsValues)
{
    Coo m;
    m.rows = m.cols = 4;
    m.push(1, 1, 1.0f);
    m.push(1, 1, 2.0f);
    m.push(2, 0, 5.0f);
    m.sortRowMajor();
    m.dedupe();
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.vals[0], 3.0f);
    EXPECT_FLOAT_EQ(m.vals[1], 5.0f);
}

TEST(Coo, ValidatePanicsOnBadCoordinates)
{
    Coo m;
    m.rows = m.cols = 4;
    m.push(4, 0);
    EXPECT_THROW(m.validate(), std::logic_error);
}

TEST(Csr, FromCooMatchesStructure)
{
    Csr m = Csr::fromCoo(figure1Matrix());
    m.validate();
    EXPECT_EQ(m.rows, 8u);
    EXPECT_EQ(m.nnz(), 7u);
    EXPECT_EQ(m.rowDegree(0), 1u);
    EXPECT_EQ(m.rowDegree(3), 0u);
    EXPECT_EQ(m.rowCols(2)[0], 6u);
    EXPECT_EQ(m.rowCols(4)[0], 3u);
}

TEST(Csr, RoundTripThroughCoo)
{
    Coo orig = figure1Matrix();
    orig.sortRowMajor();
    Coo again = Csr::fromCoo(orig).toCoo();
    EXPECT_EQ(again.rowIdx, orig.rowIdx);
    EXPECT_EQ(again.colIdx, orig.colIdx);
}

TEST(Csr, TransposeTwiceIsIdentity)
{
    Csr m = Csr::fromCoo(figure1Matrix());
    Csr tt = m.transposed().transposed();
    EXPECT_EQ(tt.rowPtr, m.rowPtr);
    EXPECT_EQ(tt.colIdx, m.colIdx);
}

TEST(Csr, TransposeSwapsCoordinates)
{
    Csr m = Csr::fromCoo(figure1Matrix());
    Csr t = m.transposed();
    t.validate();
    EXPECT_EQ(t.rows, m.cols);
    // Column 3 of the original had rows {4, 5}.
    auto cols = t.rowCols(3);
    ASSERT_EQ(cols.size(), 2u);
    EXPECT_EQ(cols[0], 4u);
    EXPECT_EQ(cols[1], 5u);
}

TEST(Csr, ValuesSurviveFromCooAndTranspose)
{
    Coo c;
    c.rows = c.cols = 3;
    c.push(0, 2, 7.0f);
    c.push(2, 0, 3.0f);
    Csr m = Csr::fromCoo(c);
    EXPECT_FLOAT_EQ(m.valueAt(0), 7.0f);
    Csr t = m.transposed();
    // (0,2,7) becomes (2,0,7): stored last in row-major order of t.
    EXPECT_FLOAT_EQ(t.vals[1], 7.0f);
    EXPECT_FLOAT_EQ(t.vals[0], 3.0f);
}

TEST(Csr, ValidateCatchesBrokenRowPtr)
{
    Csr m = Csr::fromCoo(figure1Matrix());
    m.rowPtr[3] = 100;
    EXPECT_THROW(m.validate(), std::logic_error);
}
