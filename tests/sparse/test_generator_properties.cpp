/**
 * @file
 * Property tests for the workload generators: structural invariants
 * that must hold for any seed, plus the communication-relevant
 * characteristics each archetype was designed around (DESIGN.md).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/comm_pattern.hh"
#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** In-degree of the most popular column. */
std::uint64_t
hottestColumn(const Csr &m)
{
    std::vector<std::uint32_t> indeg(m.cols, 0);
    for (auto c : m.colIdx)
        ++indeg[c];
    std::uint64_t mx = 0;
    for (auto d : indeg)
        mx = std::max<std::uint64_t>(mx, d);
    return mx;
}

} // namespace

/** Seed sweep: every generator yields a valid matrix for any seed. */
class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GeneratorSeedTest, WebCrawlValidForAnySeed)
{
    WebCrawlParams p;
    p.rows = 4096;
    p.avgDeg = 8;
    p.seed = GetParam();
    Coo m = makeWebCrawl(p);
    m.validate();
    EXPECT_GT(m.nnz(), p.rows); // degree target keeps it non-trivial
}

TEST_P(GeneratorSeedTest, RoadNetworkValidForAnySeed)
{
    RoadNetworkParams p;
    p.rows = 4096;
    p.seed = GetParam();
    Coo m = makeRoadNetwork(p);
    m.validate();
}

TEST_P(GeneratorSeedTest, StokesValidForAnySeed)
{
    StokesLikeParams p;
    p.rows = 4096;
    p.band = 32;
    p.deg = 12;
    p.couplingJitter = 64;
    p.seed = GetParam();
    Coo m = makeStokesLike(p);
    m.validate();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

TEST(GeneratorProperties, WebCrawlConcentratesForeignLinks)
{
    // The zipf region popularity must concentrate traffic: the hottest
    // column absorbs far more links than a uniform spread would.
    Csr m = makeBenchmarkMatrix(MatrixKind::Arabic, 0.05);
    double uniform = static_cast<double>(m.nnz()) / m.cols;
    EXPECT_GT(static_cast<double>(hottestColumn(m)), 50.0 * uniform);
}

TEST(GeneratorProperties, ArchetypeOrderingsForFiltering)
{
    // Table 1's qualitative content: SA redundancy (what filtering can
    // remove) is high for the reuse-heavy archetypes, near zero for the
    // road network.
    const std::uint32_t nodes = 32;
    double sa[5];
    int i = 0;
    for (auto &bm : benchmarkSuite(0.25)) {
        Partition1D part = Partition1D::equalRows(bm.matrix.rows, nodes);
        sa[i++] = analyzeCommPattern(bm.matrix, part).saRedundancyRatio();
    }
    // arabic and queen well above 1 redundant per useful...
    EXPECT_GT(sa[0], 1.0);
    EXPECT_GT(sa[2], 1.0);
    // ...europe essentially none.
    EXPECT_LT(sa[1], 0.2);
}

TEST(GeneratorProperties, QueenHasPerfectDestinationLocality)
{
    Csr m = makeBenchmarkMatrix(MatrixKind::Queen, 0.25);
    Partition1D part = Partition1D::equalRows(m.rows, 32);
    EXPECT_NEAR(avgUniqueDestinations(m, part, 64), 1.0, 0.2);
}

TEST(GeneratorProperties, WebCrawlsShareAcrossRacks)
{
    // Section 3's sharing potential must be present for the web crawls
    // (it drives the Property Cache results) and absent for europe.
    Csr web = makeBenchmarkMatrix(MatrixKind::Uk, 0.25);
    Csr road = makeBenchmarkMatrix(MatrixKind::Europe, 0.25);
    Partition1D pw = Partition1D::equalRows(web.rows, 64);
    Partition1D pr = Partition1D::equalRows(road.rows, 64);
    EXPECT_GT(rackSharingFraction(web, pw, 16), 0.5);
    EXPECT_LT(rackSharingFraction(road, pr, 16), 0.1);
}

TEST(GeneratorProperties, StokesCouplingTargetsOnePartnerRegion)
{
    // Each node's far traffic concentrates around (node + N/2): few
    // unique destinations (Table 4's stokes = 1.85).
    Csr m = makeBenchmarkMatrix(MatrixKind::Stokes, 0.25);
    Partition1D part = Partition1D::equalRows(m.rows, 32);
    double dests = avgUniqueDestinations(m, part, 64);
    EXPECT_LT(dests, 6.0);
    EXPECT_GE(dests, 1.0);
}

TEST(GeneratorProperties, ScaleDoesNotChangeTheCharacter)
{
    // The SA redundancy ratio is a per-node structural property; it
    // drifts with size (reuse pools grow sublinearly) but must stay in
    // the same regime across a 4x size change rather than collapse.
    for (auto kind : {MatrixKind::Arabic, MatrixKind::Queen}) {
        Csr small = makeBenchmarkMatrix(kind, 0.125);
        Csr big = makeBenchmarkMatrix(kind, 0.5);
        double rs = analyzeCommPattern(
                        small, Partition1D::equalRows(small.rows, 32))
                        .saRedundancyRatio();
        double rb = analyzeCommPattern(
                        big, Partition1D::equalRows(big.rows, 32))
                        .saRedundancyRatio();
        EXPECT_LT(rs, 5.0 * rb) << matrixName(kind);
        EXPECT_GT(rs, rb / 5.0) << matrixName(kind);
        EXPECT_GT(rs, 1.0) << matrixName(kind); // stays reuse-heavy
        EXPECT_GT(rb, 1.0) << matrixName(kind);
    }
}
