/**
 * @file
 * The streaming builder's determinism contract (sparse/stream_gen.hh):
 * buildPartitionedMatrix emits byte-identical per-node partitions at
 * any chunk size, and those partitions concatenate to exactly the
 * matrix the materializing path produces. These are the guarantees
 * docs/scaling.md leans on for paper-scale runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sparse/generators.hh"
#include "sparse/stream_gen.hh"

using namespace netsparse;

namespace {

/** Structural equality of two partitioned builds. */
void
expectIdentical(const PartitionedMatrix &a, const PartitionedMatrix &b)
{
    ASSERT_EQ(a.rows, b.rows);
    ASSERT_EQ(a.cols, b.cols);
    ASSERT_EQ(a.nnz, b.nnz);
    ASSERT_EQ(a.part.boundaries(), b.part.boundaries());
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        EXPECT_EQ(a.nodes[n].firstRow, b.nodes[n].firstRow);
        EXPECT_EQ(a.nodes[n].rowPtr, b.nodes[n].rowPtr) << "node " << n;
        EXPECT_EQ(a.nodes[n].colIdx, b.nodes[n].colIdx) << "node " << n;
    }
}

} // namespace

TEST(StreamGen, ChunkSizeDoesNotChangeTheOutput)
{
    // The contract the paper-scale path depends on: chunkRows is a
    // buffer-size knob, not a semantic one. Cover a chunk smaller than
    // a node's row range, one that straddles node boundaries, and one
    // larger than the whole matrix.
    for (MatrixKind kind : {MatrixKind::Arabic, MatrixKind::Europe,
                            MatrixKind::Stokes}) {
        GeneratorParams p = benchmarkParams(kind, 0.05);
        PartitionedMatrix ref = buildPartitionedMatrix(p, 8, 1 << 10);
        expectIdentical(ref, buildPartitionedMatrix(p, 8, 1 << 16));
        expectIdentical(ref, buildPartitionedMatrix(p, 8, 1 << 20));
        expectIdentical(ref, buildPartitionedMatrix(p, 8, 1));
    }
}

TEST(StreamGen, MatchesTheMaterializingPath)
{
    // Concatenating the per-node partitions reproduces, row for row
    // and column for column, the CSR the materializing generator
    // builds - the two paths must stay interchangeable.
    for (MatrixKind kind : allMatrixKinds()) {
        GeneratorParams p = benchmarkParams(kind, 0.05);
        Csr m = Csr::fromCoo(makeMatrix(p));
        PartitionedMatrix pm = buildPartitionedMatrix(p, 8);
        ASSERT_EQ(pm.rows, m.rows);
        ASSERT_EQ(pm.nnz, m.nnz());
        for (const NodeCsr &node : pm.nodes) {
            for (std::uint32_t lr = 0; lr < node.numRows(); ++lr) {
                std::uint32_t r = node.firstRow + lr;
                auto begin = node.colIdx.begin() +
                             static_cast<std::ptrdiff_t>(node.rowPtr[lr]);
                auto end = node.colIdx.begin() +
                           static_cast<std::ptrdiff_t>(node.rowPtr[lr + 1]);
                std::vector<std::uint32_t> got(begin, end);
                std::vector<std::uint32_t> want(
                    m.colIdx.begin() +
                        static_cast<std::ptrdiff_t>(m.rowPtr[r]),
                    m.colIdx.begin() +
                        static_cast<std::ptrdiff_t>(m.rowPtr[r + 1]));
                ASSERT_EQ(got, want) << matrixName(kind) << " row " << r;
            }
        }
    }
}

TEST(StreamGen, TakeStreamsMovesTheColumnPayload)
{
    PartitionedMatrix pm =
        buildPartitionedBenchmark(MatrixKind::Queen, 0.05, 4);
    std::uint64_t nnz = pm.nnz;
    std::vector<std::uint64_t> node_nnz;
    for (const NodeCsr &n : pm.nodes)
        node_nnz.push_back(n.nnz());

    std::vector<std::vector<std::uint32_t>> streams = pm.takeStreams();
    ASSERT_EQ(streams.size(), node_nnz.size());
    std::uint64_t total = 0;
    for (std::size_t n = 0; n < streams.size(); ++n) {
        EXPECT_EQ(streams[n].size(), node_nnz[n]);
        total += streams[n].size();
    }
    EXPECT_EQ(total, nnz);
    // The payload moved out; the struct no longer holds a second copy.
    for (const NodeCsr &n : pm.nodes)
        EXPECT_TRUE(n.colIdx.empty());
}

TEST(StreamGen, PaperScaleReachesTheTableOneNnz)
{
    // Table 1 nonzero counts the full-size scales must reproduce
    // within generator noise (the analogues draw per-row degrees).
    struct Target
    {
        MatrixKind kind;
        double nnz;
    };
    // Spot-check the smallest kind only: materializing a full-size
    // matrix here would defeat the point. Scale linearity of the
    // generators makes nnz(s)/s constant, so check at a small scale.
    for (const auto &[kind, want_nnz] :
         {Target{MatrixKind::Arabic, 640e6},
          Target{MatrixKind::Europe, 108e6}}) {
        double s = paperScale(kind);
        ASSERT_GT(s, 1.0);
        PartitionedMatrix pm = buildPartitionedBenchmark(kind, 0.1, 4);
        double nnz_at_scale = static_cast<double>(pm.nnz) * (s / 0.1);
        EXPECT_NEAR(nnz_at_scale / want_nnz, 1.0, 0.15)
            << matrixName(kind);
    }
}
