/** @file Unit tests for Matrix Market I/O. */

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/mmio.hh"

using namespace netsparse;

TEST(Mmio, ReadsGeneralRealMatrix)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 2\n"
        "1 2 1.5\n"
        "3 4 -2.0\n");
    Coo m = readMatrixMarket(in);
    EXPECT_EQ(m.rows, 3u);
    EXPECT_EQ(m.cols, 4u);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.rowIdx[0], 0u);
    EXPECT_EQ(m.colIdx[0], 1u);
    EXPECT_FLOAT_EQ(m.vals[1], -2.0f);
}

TEST(Mmio, ReadsPatternMatrix)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n");
    Coo m = readMatrixMarket(in);
    EXPECT_FALSE(m.hasValues());
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(Mmio, SymmetricExpandsOffDiagonals)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 1.0\n");
    Coo m = readMatrixMarket(in);
    // (2,1) mirrors to (1,2); the diagonal entry does not.
    EXPECT_EQ(m.nnz(), 3u);
}

TEST(Mmio, RoundTripPreservesEverything)
{
    Coo m;
    m.rows = 5;
    m.cols = 7;
    m.push(0, 6, 1.25f);
    m.push(4, 0, -3.5f);
    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    Coo back = readMatrixMarket(in);
    EXPECT_EQ(back.rows, m.rows);
    EXPECT_EQ(back.cols, m.cols);
    EXPECT_EQ(back.rowIdx, m.rowIdx);
    EXPECT_EQ(back.colIdx, m.colIdx);
    EXPECT_EQ(back.vals, m.vals);
}

TEST(Mmio, PatternRoundTrip)
{
    Coo m;
    m.rows = m.cols = 3;
    m.push(0, 1);
    m.push(2, 2);
    std::ostringstream out;
    writeMatrixMarket(out, m);
    std::istringstream in(out.str());
    Coo back = readMatrixMarket(in);
    EXPECT_FALSE(back.hasValues());
    EXPECT_EQ(back.colIdx, m.colIdx);
}

TEST(Mmio, RejectsMalformedInput)
{
    {
        std::istringstream in("not matrix market\n1 1 0\n");
        EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix array real general\n2 2\n");
        EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
    }
    {
        // Out-of-range entry.
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n5 1 1.0\n");
        EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
    }
    {
        // Truncated entries.
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 1.0\n");
        EXPECT_THROW(readMatrixMarket(in), std::runtime_error);
    }
}

TEST(Mmio, MissingFileFails)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/file.mtx"),
                 std::runtime_error);
}
