/** @file Unit and property tests for the reference sparse kernels. */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "sparse/generators.hh"
#include "sparse/kernels.hh"

using namespace netsparse;

namespace {

Csr
smallMatrix()
{
    // [[1 0 2]
    //  [0 0 0]
    //  [0 3 4]]
    Coo c;
    c.rows = c.cols = 3;
    c.push(0, 0, 1.0f);
    c.push(0, 2, 2.0f);
    c.push(2, 1, 3.0f);
    c.push(2, 2, 4.0f);
    return Csr::fromCoo(c);
}

std::vector<float>
randomDense(std::uint32_t n, std::uint32_t k, std::uint64_t seed)
{
    std::vector<float> v(static_cast<std::size_t>(n) * k);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<float>((splitmix64(seed + i) % 100)) / 10.0f;
    return v;
}

} // namespace

TEST(Kernels, SpmvHandComputed)
{
    Csr a = smallMatrix();
    std::vector<float> x{10.0f, 20.0f, 30.0f};
    auto y = spmv(a, x);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_FLOAT_EQ(y[0], 1 * 10 + 2 * 30);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 3 * 20 + 4 * 30);
}

TEST(Kernels, SpmmEachColumnIsAnSpmv)
{
    Csr a = smallMatrix();
    const std::uint32_t k = 4;
    auto x = randomDense(3, k, 11);
    auto y = spmm(a, x, k);
    for (std::uint32_t j = 0; j < k; ++j) {
        std::vector<float> xcol(3);
        for (std::uint32_t i = 0; i < 3; ++i)
            xcol[i] = x[i * k + j];
        auto ycol = spmv(a, xcol);
        for (std::uint32_t i = 0; i < 3; ++i)
            EXPECT_FLOAT_EQ(y[i * k + j], ycol[i]);
    }
}

TEST(Kernels, SpmmWithIdentityReturnsX)
{
    const std::uint32_t n = 16, k = 3;
    Coo c;
    c.rows = c.cols = n;
    for (std::uint32_t i = 0; i < n; ++i)
        c.push(i, i, 1.0f);
    Csr eye = Csr::fromCoo(c);
    auto x = randomDense(n, k, 22);
    auto y = spmm(eye, x, k);
    EXPECT_EQ(y, x);
}

TEST(Kernels, PatternMatrixUsesImplicitOnes)
{
    Coo c;
    c.rows = c.cols = 2;
    c.push(0, 0);
    c.push(0, 1);
    Csr a = Csr::fromCoo(c);
    auto y = spmv(a, {3.0f, 4.0f});
    EXPECT_FLOAT_EQ(y[0], 7.0f);
}

TEST(Kernels, SddmmHandComputed)
{
    Csr a = smallMatrix();
    const std::uint32_t k = 2;
    // U rows: [1,0],[0,1],[1,1]; V rows: [2,0],[0,3],[1,1]
    std::vector<float> u{1, 0, 0, 1, 1, 1};
    std::vector<float> v{2, 0, 0, 3, 1, 1};
    auto out = sddmm(a, u, v, k);
    ASSERT_EQ(out.size(), a.nnz());
    // nnz order: (0,0,1),(0,2,2),(2,1,3),(2,2,4)
    EXPECT_FLOAT_EQ(out[0], 1.0f * (1 * 2 + 0 * 0));
    EXPECT_FLOAT_EQ(out[1], 2.0f * (1 * 1 + 0 * 1));
    EXPECT_FLOAT_EQ(out[2], 3.0f * (1 * 0 + 1 * 3));
    EXPECT_FLOAT_EQ(out[3], 4.0f * (1 * 1 + 1 * 1));
}

TEST(Kernels, SpmmLinearityProperty)
{
    Csr a = makeBenchmarkMatrix(MatrixKind::Queen, 0.02);
    const std::uint32_t k = 2;
    auto x1 = randomDense(a.cols, k, 1);
    auto x2 = randomDense(a.cols, k, 2);
    std::vector<float> sum(x1.size());
    for (std::size_t i = 0; i < sum.size(); ++i)
        sum[i] = x1[i] + x2[i];

    auto y1 = spmm(a, x1, k);
    auto y2 = spmm(a, x2, k);
    auto ys = spmm(a, sum, k);
    for (std::size_t i = 0; i < ys.size(); i += 101)
        EXPECT_NEAR(ys[i], y1[i] + y2[i], 1e-2f);
}

TEST(Kernels, CostModelsScaleLinearly)
{
    auto c1 = spmmCost(1000, 100, 16);
    auto c2 = spmmCost(2000, 100, 16);
    EXPECT_EQ(c1.flops * 2, c2.flops);
    EXPECT_GT(c2.bytes, c1.bytes);

    auto s1 = sddmmCost(1000, 16);
    auto s2 = sddmmCost(1000, 32);
    EXPECT_EQ(s1.flops * 2, s2.flops);
    EXPECT_GT(s2.bytes, s1.bytes);
}

TEST(Kernels, DimensionMismatchPanics)
{
    Csr a = smallMatrix();
    EXPECT_THROW(spmm(a, std::vector<float>(5), 2), std::logic_error);
    EXPECT_THROW(sddmm(a, std::vector<float>(6), std::vector<float>(5), 2),
                 std::logic_error);
}
