/** @file Unit and property tests for the synthetic matrix generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generators.hh"

using namespace netsparse;

namespace {

/** Mean nonzeros per row. */
double
avgDegree(const Csr &m)
{
    return static_cast<double>(m.nnz()) / m.rows;
}

} // namespace

TEST(Generators, WebCrawlShapeAndDeterminism)
{
    WebCrawlParams p;
    p.rows = 1 << 13;
    p.avgDeg = 12.0;
    Coo a = makeWebCrawl(p);
    Coo b = makeWebCrawl(p);
    a.validate();
    EXPECT_EQ(a.rowIdx, b.rowIdx);
    EXPECT_EQ(a.colIdx, b.colIdx);
    EXPECT_EQ(a.rows, p.rows);

    p.seed += 1;
    Coo c = makeWebCrawl(p);
    EXPECT_NE(a.colIdx, c.colIdx);
}

TEST(Generators, WebCrawlDegreeNearTarget)
{
    WebCrawlParams p;
    p.rows = 1 << 14;
    p.avgDeg = 20.0;
    Csr m = Csr::fromCoo(makeWebCrawl(p));
    EXPECT_NEAR(avgDegree(m), 20.0, 5.0);
}

TEST(Generators, WebCrawlHasPopularColumns)
{
    WebCrawlParams p;
    p.rows = 1 << 14;
    Csr m = Csr::fromCoo(makeWebCrawl(p));
    // Count the most popular column via the transpose.
    Csr t = m.transposed();
    std::uint64_t max_indeg = 0;
    for (std::uint32_t c = 0; c < t.rows; ++c)
        max_indeg = std::max(max_indeg, t.rowDegree(c));
    // Power-law reuse: the hottest column is far above the average.
    EXPECT_GT(max_indeg, 50 * static_cast<std::uint64_t>(avgDegree(m)));
}

TEST(Generators, RoadNetworkIsSparseAndNearDiagonal)
{
    RoadNetworkParams p;
    p.rows = 1 << 14;
    Coo coo = makeRoadNetwork(p);
    coo.validate();
    Csr m = Csr::fromCoo(coo);
    EXPECT_GT(avgDegree(m), 1.0);
    EXPECT_LT(avgDegree(m), 4.0);

    std::uint32_t width = static_cast<std::uint32_t>(
        std::sqrt(double(p.rows)));
    std::uint64_t near = 0;
    for (std::size_t i = 0; i < coo.nnz(); ++i) {
        std::int64_t d = std::int64_t(coo.colIdx[i]) - coo.rowIdx[i];
        if (std::llabs(d) <= width + 4)
            ++near;
    }
    // Most edges are chain or cross-street edges.
    EXPECT_GT(static_cast<double>(near) / coo.nnz(), 0.9);
}

TEST(Generators, BandedFemRespectsTheBand)
{
    BandedFemParams p;
    p.rows = 1 << 13;
    p.band = 64;
    p.deg = 30;
    Coo coo = makeBandedFem(p);
    coo.validate();
    for (std::size_t i = 0; i < coo.nnz(); ++i) {
        std::int64_t d = std::int64_t(coo.colIdx[i]) - coo.rowIdx[i];
        EXPECT_LE(std::llabs(d), 2 * p.band); // reflection can double
    }
    EXPECT_NEAR(avgDegree(Csr::fromCoo(coo)), p.deg, 1.0);
}

TEST(Generators, BandedFemHasDiagonal)
{
    BandedFemParams p;
    p.rows = 1024;
    Csr m = Csr::fromCoo(makeBandedFem(p));
    for (std::uint32_t r = 100; r < 110; ++r) {
        bool diag = false;
        for (auto c : m.rowCols(r))
            diag |= c == r;
        EXPECT_TRUE(diag) << "row " << r;
    }
}

TEST(Generators, StokesHasFarCouplingBlock)
{
    StokesLikeParams p;
    p.rows = 1 << 14;
    Coo coo = makeStokesLike(p);
    coo.validate();
    std::uint64_t far = 0;
    for (std::size_t i = 0; i < coo.nnz(); ++i) {
        std::int64_t d = std::llabs(std::int64_t(coo.colIdx[i]) -
                                    coo.rowIdx[i]);
        if (d > p.rows / 4)
            ++far;
    }
    double frac = static_cast<double>(far) / coo.nnz();
    EXPECT_NEAR(frac, p.pCoupled, 0.08);
}

TEST(Generators, SuiteHasFiveNamedMatrices)
{
    auto suite = benchmarkSuite(0.05);
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "arabic");
    EXPECT_EQ(suite[1].name, "europe");
    EXPECT_EQ(suite[2].name, "queen");
    EXPECT_EQ(suite[3].name, "stokes");
    EXPECT_EQ(suite[4].name, "uk");
    for (auto &bm : suite) {
        bm.matrix.validate();
        EXPECT_EQ(bm.matrix.rows, bm.matrix.cols);
        EXPECT_GT(bm.matrix.nnz(), 0u);
    }
}

TEST(Generators, ScaleGrowsTheMatrix)
{
    Csr small = makeBenchmarkMatrix(MatrixKind::Uk, 0.05);
    Csr big = makeBenchmarkMatrix(MatrixKind::Uk, 0.1);
    EXPECT_GT(big.rows, small.rows);
    EXPECT_GT(big.nnz(), small.nnz());
}

/** Property sweep: every kind builds a valid square matrix. */
class GeneratorKindTest : public ::testing::TestWithParam<MatrixKind>
{};

TEST_P(GeneratorKindTest, ProducesValidSquareMatrix)
{
    Csr m = makeBenchmarkMatrix(GetParam(), 0.05);
    m.validate();
    EXPECT_EQ(m.rows, m.cols);
    EXPECT_GT(m.nnz(), m.rows / 2);
    // Deterministic.
    Csr m2 = makeBenchmarkMatrix(GetParam(), 0.05);
    EXPECT_EQ(m.colIdx, m2.colIdx);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GeneratorKindTest,
    ::testing::ValuesIn(allMatrixKinds()),
    [](const auto &info) { return matrixName(info.param); });
