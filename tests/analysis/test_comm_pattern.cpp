/** @file Tests for the communication-pattern analytics (Section 3). */

#include <gtest/gtest.h>

#include "analysis/comm_pattern.hh"

using namespace netsparse;

namespace {

/**
 * The paper's Figure 1: an 8x8 matrix over 4 nodes (2 rows each).
 * Nonzeros: a(0,4) b(1,1) c(2,6) d(4,3) e(5,3) f(6,7) g(7,6).
 * Remote reads: a needs P4 from N2, c needs P6 from N3, d and e both
 * need P3 from N1; b, f, g are local.
 */
Csr
figure1()
{
    Coo m;
    m.rows = m.cols = 8;
    m.push(0, 4);
    m.push(1, 1);
    m.push(2, 6);
    m.push(4, 3);
    m.push(5, 3);
    m.push(6, 7);
    m.push(7, 6);
    return Csr::fromCoo(m);
}

} // namespace

TEST(CommPattern, Figure1ExactCounts)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    CommPattern cp = analyzeCommPattern(m, part);

    EXPECT_EQ(cp.totalRemoteNnz, 4u); // a, c, d, e
    EXPECT_EQ(cp.totalUseful, 3u);    // P4, P6, P3
    EXPECT_EQ(cp.totalSuReceived, 4u * 6u);

    EXPECT_EQ(cp.nodes[0].uniqueRemote, 1u);
    EXPECT_EQ(cp.nodes[1].uniqueRemote, 1u);
    EXPECT_EQ(cp.nodes[2].uniqueRemote, 1u);
    EXPECT_EQ(cp.nodes[3].uniqueRemote, 0u);
    EXPECT_EQ(cp.nodes[2].remoteNnz, 2u); // d and e share idx 3

    // Redundancy ratios as defined in Table 1.
    EXPECT_NEAR(cp.saRedundancyRatio(), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(cp.suRedundancyRatio(), (24.0 - 3.0) / 3.0, 1e-9);
}

TEST(CommPattern, OffRackSplit)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    // Racks of 2 nodes: {N0,N1}, {N2,N3}.
    CommPattern cp = analyzeCommPattern(m, part, 2);
    EXPECT_EQ(cp.nodes[0].uniqueRemoteOffRack, 1u); // P4 home N2
    EXPECT_EQ(cp.nodes[1].uniqueRemoteOffRack, 1u); // P6 home N3
    EXPECT_EQ(cp.nodes[2].uniqueRemoteOffRack, 1u); // P3 home N1
    EXPECT_EQ(cp.nodes[3].uniqueRemoteOffRack, 0u);
}

TEST(CommPattern, DestinationLocalityWindows)
{
    Csr m = figure1();
    Partition1D part = Partition1D::equalRows(8, 4);
    // N2's remote PR stream is [3, 3]: one window of 2, 1 unique dest.
    // Other nodes have single remote PRs (no full window of 2).
    EXPECT_DOUBLE_EQ(avgUniqueDestinations(m, part, 2), 1.0);
    // Window of 1: every PR is its own window with 1 destination.
    EXPECT_DOUBLE_EQ(avgUniqueDestinations(m, part, 1), 1.0);
}

TEST(CommPattern, DestinationLocalityCountsDistinctDests)
{
    // One node, 4 remote PRs alternating between two destinations.
    Coo c;
    c.rows = c.cols = 12;
    c.push(0, 4);
    c.push(0, 8);
    c.push(1, 5);
    c.push(1, 9);
    Csr m = Csr::fromCoo(c);
    Partition1D part = Partition1D::equalRows(12, 3);
    EXPECT_DOUBLE_EQ(avgUniqueDestinations(m, part, 4), 2.0);
    EXPECT_DOUBLE_EQ(avgUniqueDestinations(m, part, 2), 2.0);
}

TEST(CommPattern, RackSharingDetectsSharedProperties)
{
    // 4 nodes, racks of 2. Nodes 0 and 1 (rack 0) both read idx 6
    // (home: node 3, rack 1) -> that property is fully shared.
    Coo c;
    c.rows = c.cols = 8;
    c.push(0, 6);
    c.push(2, 6);
    Csr m = Csr::fromCoo(c);
    Partition1D part = Partition1D::equalRows(8, 4);
    EXPECT_DOUBLE_EQ(rackSharingFraction(m, part, 2), 1.0);

    // Adding an unshared off-rack property: the shared one contributes
    // 2 (node, property) pairs, the lone one 1 pair.
    Coo c2 = c;
    c2.push(1, 7);
    Csr m2 = Csr::fromCoo(c2);
    EXPECT_NEAR(rackSharingFraction(m2, part, 2), 2.0 / 3.0, 1e-9);
}

TEST(CommPattern, RackSharingIgnoresIntraRackHomes)
{
    // Node 0 reads idx 2 homed at node 1 = same rack; no off-rack PRs.
    Coo c;
    c.rows = c.cols = 8;
    c.push(0, 2);
    Csr m = Csr::fromCoo(c);
    Partition1D part = Partition1D::equalRows(8, 4);
    EXPECT_DOUBLE_EQ(rackSharingFraction(m, part, 2), 0.0);
}

TEST(CommPattern, HeaderShareMatchesTable3)
{
    // Table 3 assumes a 160 B total header stack. Values: K=1 -> 97.6%,
    // K=32 -> 55.6%, K=256 -> 13.5%.
    EXPECT_NEAR(headerShare(1, 160), 0.976, 0.001);
    EXPECT_NEAR(headerShare(2, 160), 0.952, 0.001);
    EXPECT_NEAR(headerShare(4, 160), 0.909, 0.001);
    EXPECT_NEAR(headerShare(8, 160), 0.833, 0.001);
    EXPECT_NEAR(headerShare(16, 160), 0.714, 0.001);
    EXPECT_NEAR(headerShare(32, 160), 0.556, 0.001);
    EXPECT_NEAR(headerShare(64, 160), 0.385, 0.001);
    EXPECT_NEAR(headerShare(128, 160), 0.238, 0.001);
    EXPECT_NEAR(headerShare(256, 160), 0.135, 0.001);
}

TEST(CommPattern, ActiveNodeProfileIsMonotoneDecreasing)
{
    std::vector<std::uint64_t> volumes{10, 5, 5, 1, 0};
    auto prof = activeNodeProfile(volumes, 10);
    ASSERT_EQ(prof.size(), 10u);
    EXPECT_EQ(prof[0], 4u); // the zero-volume node is never active
    for (std::size_t i = 1; i < prof.size(); ++i)
        EXPECT_LE(prof[i], prof[i - 1]);
    // After half the time only the largest node remains.
    EXPECT_EQ(prof[6], 1u);
}

TEST(CommPattern, ActiveNodeProfileAllZero)
{
    auto prof = activeNodeProfile({0, 0}, 4);
    for (auto v : prof)
        EXPECT_EQ(v, 0u);
}
