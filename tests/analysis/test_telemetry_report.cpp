/**
 * @file
 * Tests for the bottleneck analyzer over hand-built observability
 * documents: link/switch ranking, phase detection from the event
 * throughput, PR-stage attribution from the stats document, and
 * schema validation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/telemetry_report.hh"

using namespace netsparse;

namespace {

/** A minimal one-run timeline with the given entity array body. */
std::string
timelineWith(const std::string &entities)
{
    return std::string(R"({"schema":"netsparse-telemetry-v1","runs":[
      {"run":0,"label":"gather0","intervalTicks":100,"finalTick":350,
       "sampleTicks":[100,200,300],"entities":[)") +
           entities + "]}]}";
}

} // namespace

TEST(TelemetryReport, RanksLinksBySaturationThenPeak)
{
    jsonlite::Value doc = jsonlite::parse(timelineWith(R"(
      {"id":"lkA","kind":"link","series":
        {"utilization":[0.95,0.95,0.5],"queuedBytes":[10,5,0]}},
      {"id":"lkB","kind":"link","series":
        {"utilization":[1.0,0.2,0.2],"queuedBytes":[100,0,0]}},
      {"id":"lkIdle","kind":"link","series":
        {"utilization":[0,0,0],"queuedBytes":[0,0,0]}})"));

    TelemetryReport r = analyzeTelemetry(doc);
    EXPECT_EQ(r.numSamples, 3u);
    EXPECT_EQ(r.intervalTicks, 100u);
    EXPECT_EQ(r.finalTick, 350u);

    // lkA saturated 2/3 samples and outranks lkB's single saturated
    // sample despite lkB's higher peak; idle links are dropped.
    ASSERT_EQ(r.links.size(), 2u);
    EXPECT_EQ(r.links[0].id, "lkA");
    EXPECT_NEAR(r.links[0].fracAbove90, 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(r.links[0].peak, 0.95);
    EXPECT_EQ(r.links[0].peakTick, 100u);
    EXPECT_DOUBLE_EQ(r.links[0].peakQueueBytes, 10.0);
    EXPECT_EQ(r.links[0].peakQueueTick, 100u);
    EXPECT_EQ(r.links[1].id, "lkB");
    EXPECT_EQ(r.mostUtilizedLink(), "lkA");
}

TEST(TelemetryReport, RanksSwitchesAndDetectsPhases)
{
    jsonlite::Value doc = jsonlite::parse(timelineWith(R"(
      {"id":"tor0","kind":"switch","series":
        {"outQueueBytes":[10,800,0]}},
      {"id":"tor1","kind":"switch","series":
        {"outQueueBytes":[50,60,70]}},
      {"id":"sim","kind":"sim","series":
        {"events":[100,250,100]}})"));

    TelemetryReport r = analyzeTelemetry(doc);
    ASSERT_EQ(r.switches.size(), 2u);
    EXPECT_EQ(r.switches[0].id, "tor0");
    EXPECT_DOUBLE_EQ(r.switches[0].peak, 800.0);
    EXPECT_EQ(r.switches[0].peakTick, 200u);
    EXPECT_EQ(r.switches[1].id, "tor1");

    // 100 -> 250 is a >= 2x ramp-up, 250 -> 100 a >= 2x ramp-down.
    ASSERT_EQ(r.phases.size(), 2u);
    EXPECT_EQ(r.phases[0].tick, 200u);
    EXPECT_DOUBLE_EQ(r.phases[0].eventsBefore, 100.0);
    EXPECT_DOUBLE_EQ(r.phases[0].eventsAfter, 250.0);
    EXPECT_EQ(r.phases[1].tick, 300u);
}

TEST(TelemetryReport, AttributesDominantStageFromStats)
{
    jsonlite::Value telemetry = jsonlite::parse(timelineWith(""));
    // Two stages: responseNetNs holds 4 samples in the bucket around
    // 7.5 (total 30), nicNs 2 samples around 2.5 (total 5).
    jsonlite::Value stats = jsonlite::parse(R"(
      {"schema":"netsparse-stats-v1","runs":[{"run":0,"stats":{
        "cluster.prLatency.nicNs":
          {"type":"histogram","lo":0,"hi":10,"total":2,
           "p50":2.0,"p99":3.0,"buckets":[0,2,0,0]},
        "cluster.prLatency.nicNs.p50":{"type":"scalar","value":2.0},
        "cluster.prLatency.nicNs.p99":{"type":"scalar","value":3.0},
        "cluster.prLatency.responseNetNs":
          {"type":"histogram","lo":0,"hi":10,"total":4,
           "p50":7.0,"p99":8.0,"buckets":[0,0,4,0]},
        "cluster.prLatency.responseNetNs.p50":
          {"type":"scalar","value":7.0},
        "cluster.prLatency.responseNetNs.p99":
          {"type":"scalar","value":8.0},
        "cluster.prLatency.cacheNs":
          {"type":"histogram","lo":0,"hi":10,"total":0,
           "p50":0,"p99":0,"buckets":[0,0,0,0]}
      }}]})");

    TelemetryReport r = analyzeTelemetry(telemetry, &stats);
    // cacheNs has no samples and is dropped; the ranking is by
    // aggregate (midpoint-approximated) stage time.
    ASSERT_EQ(r.stages.size(), 2u);
    EXPECT_EQ(r.stages[0].name, "responseNetNs");
    EXPECT_DOUBLE_EQ(r.stages[0].totalNs, 30.0); // 4 x midpoint 7.5
    EXPECT_EQ(r.stages[0].samples, 4u);
    EXPECT_DOUBLE_EQ(r.stages[0].p50Ns, 7.0);
    EXPECT_DOUBLE_EQ(r.stages[0].p99Ns, 8.0);
    EXPECT_EQ(r.stages[1].name, "nicNs");
    EXPECT_DOUBLE_EQ(r.stages[1].totalNs, 5.0); // 2 x midpoint 2.5
    EXPECT_EQ(r.dominantStage(), "responseNetNs");

    // The printed report names both rankings.
    std::ostringstream os;
    printTelemetryReport(r, os);
    EXPECT_NE(os.str().find("dominant stage: responseNetNs"),
              std::string::npos);
}

TEST(TelemetryReport, RejectsForeignDocuments)
{
    jsonlite::Value wrong =
        jsonlite::parse(R"({"schema":"something-else","runs":[]})");
    EXPECT_THROW(analyzeTelemetry(wrong), std::runtime_error);

    jsonlite::Value telemetry = jsonlite::parse(timelineWith(""));
    jsonlite::Value badStats =
        jsonlite::parse(R"({"schema":"netsparse-telemetry-v1"})");
    EXPECT_THROW(analyzeTelemetry(telemetry, &badStats),
                 std::runtime_error);

    // A run index past the document is also a schema error.
    EXPECT_THROW(analyzeTelemetry(telemetry, nullptr, 5),
                 std::runtime_error);
}
