/** @file Tests for the segmented Property Cache (Section 6.2.2). */

#include <gtest/gtest.h>

#include "cache/property_cache.hh"
#include "net/protocol.hh"
#include "sim/rng.hh"

using namespace netsparse;

namespace {

PropertyCacheConfig
tinyConfig(std::uint64_t bytes = 1024, std::uint32_t ways = 4)
{
    PropertyCacheConfig cfg;
    cfg.totalBytes = bytes;
    cfg.ways = ways;
    return cfg;
}

} // namespace

TEST(PropertyCache, MissThenHitAfterInsert)
{
    PropertyCache c(tinyConfig());
    c.configureForKernel(64);
    std::uint64_t csum = 0;
    EXPECT_FALSE(c.lookup(42, csum));
    EXPECT_TRUE(c.insert(42, 0xabcd));
    EXPECT_TRUE(c.lookup(42, csum));
    EXPECT_EQ(csum, 0xabcdu);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.lookups(), 2u);
}

TEST(PropertyCache, DuplicateInsertIsANoOp)
{
    PropertyCache c(tinyConfig());
    c.configureForKernel(64);
    EXPECT_TRUE(c.insert(7, 111));
    EXPECT_FALSE(c.insert(7, 222));
    std::uint64_t csum = 0;
    EXPECT_TRUE(c.lookup(7, csum));
    EXPECT_EQ(csum, 111u); // the original value survives
    EXPECT_EQ(c.duplicateInserts(), 1u);
}

TEST(PropertyCache, CapacityMatchesModeGeometry)
{
    PropertyCacheConfig cfg = tinyConfig(32 << 10, 16);
    PropertyCache c(cfg);
    c.configureForKernel(64);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.capacityEntries(), (32u << 10) / 64u);
    // Smaller properties -> more entries: the whole capacity is usable
    // regardless of property size (the point of the segmented design).
    c.configureForKernel(16);
    EXPECT_EQ(c.capacityEntries(), (32u << 10) / 16u);
    c.configureForKernel(512);
    EXPECT_EQ(c.capacityEntries(), (32u << 10) / 512u);
}

TEST(PropertyCache, LineSizeRoundsUpToSupportedMode)
{
    PropertyCache c(tinyConfig(4096));
    c.configureForKernel(40); // K=10 -> next mode is 64 B
    EXPECT_EQ(c.lineBytes(), 64u);
    c.configureForKernel(4); // K=1 -> minimum 16 B line
    EXPECT_EQ(c.lineBytes(), 16u);
}

TEST(PropertyCache, ReconfigureInvalidates)
{
    PropertyCache c(tinyConfig());
    c.configureForKernel(64);
    c.insert(5, 99);
    c.configureForKernel(64);
    std::uint64_t csum = 0;
    EXPECT_FALSE(c.lookup(5, csum));
}

TEST(PropertyCache, InvalidateAllKeepsGeometry)
{
    PropertyCache c(tinyConfig());
    c.configureForKernel(32);
    c.insert(5, 99);
    c.invalidateAll();
    std::uint64_t csum = 0;
    EXPECT_FALSE(c.lookup(5, csum));
    EXPECT_EQ(c.lineBytes(), 32u);
}

TEST(PropertyCache, LruEvictionWithinASet)
{
    // 4 sets x 4 ways of 16 B lines = 256 B.
    PropertyCache c(tinyConfig(256, 4));
    c.configureForKernel(16);
    ASSERT_EQ(c.capacityEntries(), 16u);
    // Idxs congruent mod 4 share a set. Fill set 0 with 0,4,8,12.
    for (PropIdx i : {0u, 4u, 8u, 12u})
        EXPECT_TRUE(c.insert(i, i));
    // Touch 0 so 4 becomes LRU.
    std::uint64_t csum;
    EXPECT_TRUE(c.lookup(0, csum));
    // Inserting 16 (same set) evicts 4.
    EXPECT_TRUE(c.insert(16, 16));
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_TRUE(c.lookup(0, csum));
    EXPECT_FALSE(c.lookup(4, csum));
    EXPECT_TRUE(c.lookup(8, csum));
    EXPECT_TRUE(c.lookup(16, csum));
}

TEST(PropertyCache, ZeroCapacityIsDisabled)
{
    PropertyCache c(tinyConfig(0));
    c.configureForKernel(64);
    EXPECT_FALSE(c.enabled());
    EXPECT_FALSE(c.insert(1, 1));
    std::uint64_t csum;
    EXPECT_FALSE(c.lookup(1, csum));
    EXPECT_EQ(c.lookups(), 0u);
}

TEST(PropertyCache, OversizedPropertyIsFatal)
{
    PropertyCache c(tinyConfig());
    EXPECT_THROW(c.configureForKernel(1024), std::runtime_error);
}

TEST(PropertyCache, HitRateAndResetStats)
{
    PropertyCache c(tinyConfig());
    c.configureForKernel(16);
    c.insert(1, 1);
    std::uint64_t csum;
    c.lookup(1, csum);
    c.lookup(2, csum);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.lookups(), 0u);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
}

TEST(SegmentSelector, Figure9Example)
{
    // 32 segments, 32 B mode (2 segments per entry), segment bits
    // 1110x: the pair one before last -> enables bits 28 and 29.
    std::uint32_t mask = segmentEnableMask(32, 2, 0b11100);
    EXPECT_EQ(mask, 0b11u << 28);
    mask = segmentEnableMask(32, 2, 0b11101);
    EXPECT_EQ(mask, 0b11u << 28); // the LSB is ignored in 32 B mode
}

TEST(SegmentSelector, ModesEnableTheRightWidth)
{
    // 16 B mode: one segment.
    EXPECT_EQ(segmentEnableMask(32, 1, 5), 1u << 5);
    // 64 B mode: four adjacent segments, aligned.
    EXPECT_EQ(segmentEnableMask(32, 4, 9), 0xfu << 8);
    // 512 B mode: all 32 segments.
    EXPECT_EQ(segmentEnableMask(32, 32, 17), 0xffffffffu);
}

TEST(SegmentSelector, PopcountMatchesSegmentsPerEntry)
{
    for (std::uint32_t spe : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (std::uint32_t bits = 0; bits < 32; ++bits) {
            std::uint32_t mask = segmentEnableMask(32, spe, bits);
            EXPECT_EQ(static_cast<std::uint32_t>(
                          __builtin_popcount(mask)),
                      spe);
        }
    }
}

TEST(PropertyCache, RandomizedChecksumIntegrity)
{
    // Property test: the cache never returns a wrong value.
    PropertyCache c(tinyConfig(4096, 4));
    c.configureForKernel(64);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        PropIdx idx = rng.uniformInt(0, 499);
        if (rng.uniform() < 0.5) {
            c.insert(idx, propertyChecksum(idx));
        } else {
            std::uint64_t csum;
            if (c.lookup(idx, csum))
                ASSERT_EQ(csum, propertyChecksum(idx));
        }
    }
    EXPECT_GT(c.hits(), 0u);
    EXPECT_GT(c.evictions(), 0u);
}
