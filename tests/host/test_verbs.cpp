/** @file Tests for the verbs-style host API and the host driver. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "host/host_node.hh"
#include "host/verbs.hh"
#include "net/switch.hh"
#include "sim/event_queue.hh"
#include "snic/snic.hh"

using namespace netsparse;

namespace {

/** Two SNICs joined by one plain switch; properties: odd idx -> node 1. */
struct TwoNodeWorld
{
    EventQueue eq;
    ProtocolParams proto;
    SnicConfig scfg;
    std::unique_ptr<Snic> snic0, snic1;
    std::unique_ptr<Switch> sw;
    std::unique_ptr<Link> down0, down1, up0, up1;

    explicit TwoNodeWorld(std::uint32_t num_units = 4)
    {
        scfg.numRigUnits = num_units;
        scfg.proto = proto;
        scfg.concat.proto = proto;
        scfg.concat.delay = 100 * ticks::ns;
        auto owner = [](PropIdx idx) {
            return static_cast<NodeId>(idx % 2);
        };
        snic0 = std::make_unique<Snic>(eq, scfg, 0, owner, 1 << 16,
                                       "snic0");
        snic1 = std::make_unique<Snic>(eq, scfg, 1, owner, 1 << 16,
                                       "snic1");
        SwitchConfig swcfg;
        swcfg.proto = proto;
        sw = std::make_unique<Switch>(eq, swcfg, 0, "sw");
        down0 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic0.get(), 0, "d0");
        down1 = std::make_unique<Link>(eq, LinkConfig{}, proto,
                                       snic1.get(), 0, "d1");
        up0 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 0,
                                     "u0");
        up1 = std::make_unique<Link>(eq, LinkConfig{}, proto, sw.get(), 1,
                                     "u1");
        sw->attachPort(0, down0.get(), true);
        sw->attachPort(1, down1.get(), true);
        sw->setRouteFn([](NodeId dest) -> std::uint32_t { return dest; });
        snic0->attachEgress(up0.get());
        snic1->attachEgress(up1.get());
    }
};

} // namespace

TEST(Verbs, RigWorkRequestCompletesSuccessfully)
{
    TwoNodeWorld w;
    std::vector<std::uint32_t> idxs{1, 3, 5, 3, 7};
    RigQueuePair qp(w.eq, *w.snic0);
    IbvSendWr wr;
    wr.wrId = 77;
    wr.opcode = IbvWrOpcode::Rig;
    wr.rig.idxList = idxs.data();
    wr.rig.numIdxs = idxs.size();
    wr.rig.propBytes = 64;
    ASSERT_TRUE(qp.postSend(wr));
    EXPECT_EQ(qp.outstanding(), 1u);

    w.eq.run();
    IbvWc wc;
    ASSERT_TRUE(qp.pollCq(wc));
    EXPECT_EQ(wc.wrId, 77u);
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
    EXPECT_EQ(qp.outstanding(), 0u);
    EXPECT_FALSE(qp.pollCq(wc));

    // 4 unique odd idxs issued; the repeated 3 coalesced.
    RigClientStats st = w.snic0->aggregateClientStats();
    EXPECT_EQ(st.prsIssued, 4u);
    EXPECT_EQ(st.coalesced, 1u);
    EXPECT_EQ(st.responses, 4u);
}

TEST(Verbs, RdmaReadOpcodeIsAOneIdxRig)
{
    TwoNodeWorld w;
    std::vector<std::uint32_t> idx{9};
    RigQueuePair qp(w.eq, *w.snic0);
    IbvSendWr wr;
    wr.wrId = 1;
    wr.opcode = IbvWrOpcode::RdmaRead;
    wr.rig.idxList = idx.data();
    wr.rig.numIdxs = 1;
    wr.rig.propBytes = 4;
    ASSERT_TRUE(qp.postSend(wr));
    w.eq.run();
    IbvWc wc;
    ASSERT_TRUE(qp.pollCq(wc));
    EXPECT_EQ(wc.status, IbvWc::Status::Success);
}

TEST(Verbs, PostSendFailsWhenAllUnitsBusy)
{
    TwoNodeWorld w(4); // 2 client units
    std::vector<std::uint32_t> idxs(100, 1);
    RigQueuePair qp(w.eq, *w.snic0);
    IbvSendWr wr;
    wr.rig.idxList = idxs.data();
    wr.rig.numIdxs = idxs.size();
    wr.rig.propBytes = 64;
    EXPECT_TRUE(qp.postSend(wr));
    EXPECT_TRUE(qp.postSend(wr));
    EXPECT_FALSE(qp.postSend(wr)); // both client units occupied
    w.eq.run();
    // After completion, posting works again.
    EXPECT_TRUE(qp.postSend(wr));
    w.eq.run();
    EXPECT_EQ(qp.cqDepth(), 3u);
}

TEST(Verbs, CompletionHandlerFires)
{
    TwoNodeWorld w;
    std::vector<std::uint32_t> idxs{1};
    RigQueuePair qp(w.eq, *w.snic0);
    int notifications = 0;
    qp.setCompletionHandler([&] { ++notifications; });
    IbvSendWr wr;
    wr.rig.idxList = idxs.data();
    wr.rig.numIdxs = 1;
    wr.rig.propBytes = 64;
    ASSERT_TRUE(qp.postSend(wr));
    w.eq.run();
    EXPECT_EQ(notifications, 1);
}

TEST(HostNode, DrivesWholeStreamAcrossBatches)
{
    TwoNodeWorld w;
    HostConfig hcfg;
    hcfg.batchSize = 16;
    std::vector<std::uint32_t> stream;
    for (int i = 0; i < 100; ++i)
        stream.push_back(1 + 2 * (i % 13)); // odd -> remote
    HostNode host(w.eq, hcfg, *w.snic0, std::move(stream), 64);
    bool done = false;
    host.start([&] { done = true; });
    w.eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(host.done());
    EXPECT_EQ(host.failures(), 0u);
    EXPECT_EQ(host.commandsIssued(), 7u); // ceil(100 / 16)
    RigClientStats st = w.snic0->aggregateClientStats();
    EXPECT_EQ(st.idxsProcessed, 100u);
    // All 13 unique idxs fetched, everything else filtered/coalesced.
    EXPECT_EQ(st.responses, st.prsIssued);
    EXPECT_GE(st.prsIssued, 13u);
    EXPECT_EQ(st.prsIssued + st.filtered + st.coalesced, 100u);
}

TEST(HostNode, EmptyStreamFinishesInstantly)
{
    TwoNodeWorld w;
    HostNode host(w.eq, {}, *w.snic0, {}, 64);
    bool done = false;
    host.start([&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(host.finishTick(), 0u);
}

TEST(HostNode, AutoBatchSizingKeepsUnitsBusy)
{
    TwoNodeWorld w(8); // 4 client units
    HostConfig hcfg;   // batchSize = 0 -> auto
    std::vector<std::uint32_t> stream(100000, 1);
    HostNode host(w.eq, hcfg, *w.snic0, std::move(stream), 64);
    bool done = false;
    host.start([&] { done = true; });
    w.eq.run();
    EXPECT_TRUE(done);
    // Auto sizing targets ~2 batches per client unit.
    EXPECT_GE(host.commandsIssued(), 4u);
}
