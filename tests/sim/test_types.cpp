/** @file Unit tests for ticks, clocks and bandwidths. */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace netsparse;

TEST(Ticks, UnitRatios)
{
    EXPECT_EQ(ticks::ns, 1000u * ticks::ps);
    EXPECT_EQ(ticks::us, 1000u * ticks::ns);
    EXPECT_EQ(ticks::ms, 1000u * ticks::us);
    EXPECT_EQ(ticks::s, 1000u * ticks::ms);
}

TEST(Ticks, Conversions)
{
    EXPECT_DOUBLE_EQ(ticks::toSeconds(ticks::s), 1.0);
    EXPECT_DOUBLE_EQ(ticks::toNs(5 * ticks::ns), 5.0);
    EXPECT_EQ(ticks::fromSeconds(1e-6), ticks::us);
    EXPECT_EQ(ticks::fromSeconds(0.0), 0u);
}

TEST(Clock, PeriodOfRoundFrequencies)
{
    Clock ghz(1e9);
    EXPECT_EQ(ghz.period(), 1000u); // 1 ns
    EXPECT_EQ(ghz.cycles(10), 10000u);

    Clock two_ghz(2e9);
    EXPECT_EQ(two_ghz.period(), 500u);
}

TEST(Clock, NonIntegralPeriodDoesNotDriftSystematically)
{
    // 2.2 GHz has a 454.55 ps period; a million cycles should land
    // within one period of the exact value.
    Clock snic(2.2e9);
    double exact = 1e12 / 2.2e9 * 1e6;
    Tick measured = snic.cycles(1'000'000);
    EXPECT_NEAR(static_cast<double>(measured), exact, 455.0);
    EXPECT_DOUBLE_EQ(snic.frequency(), 2.2e9);
}

TEST(Bandwidth, SerializationTimes)
{
    // 400 Gbps = 50 GB/s = 0.05 bytes/ps -> 1500 B takes 30 ns.
    Bandwidth b = Bandwidth::fromGbps(400.0);
    EXPECT_EQ(b.serialize(1500), 30u * ticks::ns);
    EXPECT_DOUBLE_EQ(b.bytesPerSecond(), 50e9);

    Bandwidth pcie = Bandwidth::fromGBps(256.0);
    EXPECT_DOUBLE_EQ(pcie.bytesPerSecond(), 256e9);
    // 4 KB over 256 GB/s = 16 ns.
    EXPECT_EQ(pcie.serialize(4096), 16u * ticks::ns);
}

TEST(Bandwidth, SerializeRoundsUpAndZeroIsFree)
{
    Bandwidth b = Bandwidth::fromGbps(400.0);
    EXPECT_EQ(b.serialize(0), 0u);
    // One byte can never be free.
    EXPECT_GE(b.serialize(1), 1u);
    // Monotone in size.
    EXPECT_LE(b.serialize(100), b.serialize(101));
}
