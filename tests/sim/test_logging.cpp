/** @file Tests for the logging/error helpers. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace netsparse;

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(ns_panic("simulator bug: ", 42), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(ns_fatal("user error: ", "bad config"),
                 std::runtime_error);
}

TEST(Logging, PanicMessageCarriesFormattedArgs)
{
    try {
        ns_panic("value was ", 7, ", expected ", 8);
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("value was 7, expected 8"), std::string::npos);
    }
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(ns_assert(1 + 1 == 2, "math works"));
    EXPECT_THROW(ns_assert(1 + 1 == 3, "math broke at ", __LINE__),
                 std::logic_error);
}

TEST(Logging, VerboseToggle)
{
    bool before = verbose();
    setVerbose(false);
    EXPECT_FALSE(verbose());
    ns_inform("this line is suppressed");
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(before);
}
