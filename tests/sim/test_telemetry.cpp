/**
 * @file
 * Tests for the interval-telemetry probe and sink: the lazy boundary
 * sampling semantics ("a sample at B observes exactly the events with
 * tick < B"), the netsparse-telemetry-v1 document shape, and the
 * probe-open error path behind --telemetry-out.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json_lite.hh"
#include "sim/event_queue.hh"
#include "sim/telemetry.hh"

using namespace netsparse;

namespace {

/** A temp path that cleans up after the test. */
class TempFile
{
  public:
    explicit TempFile(const char *tag)
        : path_(std::string(::testing::TempDir()) + "netsparse_" + tag +
                ".json")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(TelemetryProbe, SamplesObserveExactlyEventsBeforeBoundary)
{
    EventQueue eq;
    TelemetryProbe probe(100);

    int counter = 0;
    std::vector<Tick> boundaries;
    probe.addEntity(0, "c", "test", {"count"},
                    [&](Tick boundary, std::vector<double> &out) {
                        boundaries.push_back(boundary);
                        out.push_back(static_cast<double>(counter));
                    });
    probe.attachTo(eq);

    for (Tick t : {Tick{50}, Tick{150}, Tick{250}})
        eq.schedule(t, [&] { ++counter; });
    eq.run();
    // Boundary 100 fired before the tick-150 event (counter was 1),
    // boundary 200 before the tick-250 event (counter was 2). The
    // trailing boundary needs the end-of-run flush.
    probe.flushUntil(300);

    EXPECT_EQ(probe.numSamples(), 3u);
    EXPECT_EQ(boundaries, (std::vector<Tick>{100, 200, 300}));
    std::vector<TelemetryEntity> entities = probe.takeEntities();
    ASSERT_EQ(entities.size(), 1u);
    EXPECT_EQ(entities[0].series[0],
              (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(probe.eventsPerInterval(),
              (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(TelemetryProbe, OneEventCanCrossManyBoundaries)
{
    EventQueue eq;
    TelemetryProbe probe(10);
    int counter = 0;
    probe.addEntity(0, "c", "test", {"count"},
                    [&](Tick, std::vector<double> &out) {
                        out.push_back(static_cast<double>(counter));
                    });
    probe.attachTo(eq);

    eq.schedule(35, [&] { ++counter; });
    eq.run();
    // Boundaries 10, 20 and 30 all precede the single tick-35 event.
    EXPECT_EQ(probe.numSamples(), 3u);
    probe.flushUntil(40);
    EXPECT_EQ(probe.numSamples(), 4u);
    std::vector<TelemetryEntity> entities = probe.takeEntities();
    EXPECT_EQ(entities[0].series[0],
              (std::vector<double>{0.0, 0.0, 0.0, 1.0}));
}

TEST(TelemetrySink, DocumentMatchesSchema)
{
    TelemetrySink sink;
    sink.setCollect(true);
    ASSERT_TRUE(sink.enabled());

    TelemetrySink::Run &run = sink.beginRun();
    run.intervalTicks = 100;
    run.finalTick = 250;
    run.sampleTicks = {100, 200};
    TelemetryEntity ent;
    ent.id = "lk0";
    ent.kind = "link";
    ent.seriesNames = {"utilization"};
    ent.series = {{0.5, 1.0}};
    run.entities.push_back(std::move(ent));

    jsonlite::Value doc = jsonlite::parse(sink.toJson());
    EXPECT_EQ(doc.at("schema").string, "netsparse-telemetry-v1");
    const jsonlite::Value &r0 = doc.at("runs").at(0);
    EXPECT_EQ(r0.at("label").string, "gather0"); // empty -> index
    EXPECT_EQ(r0.at("intervalTicks").number, 100.0);
    EXPECT_EQ(r0.at("finalTick").number, 250.0);
    EXPECT_EQ(r0.at("sampleTicks").array.size(), 2u);
    const jsonlite::Value &e0 = r0.at("entities").at(0);
    EXPECT_EQ(e0.at("id").string, "lk0");
    EXPECT_EQ(e0.at("kind").string, "link");
    EXPECT_EQ(e0.at("series").at("utilization").at(1).number, 1.0);
}

TEST(TelemetrySink, AbsorbAppendsRunsInOrder)
{
    TelemetrySink merged, worker;
    merged.setCollect(true);
    worker.setCollect(true);
    merged.beginRun().finalTick = 1;
    worker.beginRun().finalTick = 2;
    merged.absorb(std::move(worker));
    EXPECT_EQ(merged.numRuns(), 2u);

    jsonlite::Value doc = jsonlite::parse(merged.toJson());
    // Labels come from the final document position, so a parallel
    // sweep's merged document matches a sequential one.
    EXPECT_EQ(doc.at("runs").at(0).at("label").string, "gather0");
    EXPECT_EQ(doc.at("runs").at(1).at("label").string, "gather1");
    EXPECT_EQ(doc.at("runs").at(1).at("finalTick").number, 2.0);
}

TEST(TelemetrySink, SetOutputPathProbesTheFile)
{
    TelemetrySink bad;
    EXPECT_FALSE(
        bad.setOutputPath("/nonexistent-dir/netsparse/telemetry.json"));
    EXPECT_FALSE(bad.enabled());

    TempFile out("telemetry");
    TelemetrySink good;
    ASSERT_TRUE(good.setOutputPath(out.path()));
    EXPECT_TRUE(good.enabled());
    good.beginRun().finalTick = 7;
    good.writeFile();
    jsonlite::Value doc = jsonlite::parse(slurp(out.path()));
    EXPECT_EQ(doc.at("schema").string, "netsparse-telemetry-v1");
}
