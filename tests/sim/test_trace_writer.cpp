/** @file Tests for the Chrome-trace/Perfetto event trace writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/json_lite.hh"
#include "sim/trace.hh"

using namespace netsparse;

namespace {

/** A temp path that cleans up after the test. */
class TempFile
{
  public:
    explicit TempFile(const char *tag)
        : path_(std::string(::testing::TempDir()) + "netsparse_" + tag +
                ".json")
    {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(TraceWriter, DisabledWriterRecordsNothing)
{
    TraceWriter &tw = TraceWriter::instance();
    ASSERT_FALSE(tw.enabled());
    std::size_t before = tw.eventCount();

    // The instrumentation macro must not touch the writer when no
    // capture is active.
    NS_TRACE(tw.instant(tw.track("test"), "never", 123));
    EXPECT_EQ(tw.eventCount(), before);
}

TEST(TraceWriter, ProducesValidChromeTraceJson)
{
    TempFile out("trace");
    TraceWriter &tw = TraceWriter::instance();
    ASSERT_TRUE(tw.open(out.path()));

    std::uint32_t a = tw.track("compA");
    std::uint32_t b = tw.track("compB");
    tw.instant(a, "ev1", 1000, traceArgs({{"bytes", 64}}));
    tw.complete(b, "span", 500, 2500, traceArgs({{"prs", 3}}));
    tw.counter(a, "depth", 2000, 7.0);
    tw.instant(b, "ev2", 1500);
    tw.close();
    ASSERT_FALSE(tw.enabled());

    jsonlite::Value doc = jsonlite::parse(slurp(out.path()));
    ASSERT_TRUE(doc.isObject());
    ASSERT_TRUE(doc.has("traceEvents"));
    const jsonlite::Value &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    // process_name + 2 thread_name metadata + 4 events.
    int meta = 0, data = 0;
    for (const auto &e : events.array) {
        ASSERT_TRUE(e.isObject());
        ASSERT_TRUE(e.has("ph"));
        if (e.at("ph").string == "M")
            ++meta;
        else
            ++data;
    }
    EXPECT_EQ(meta, 3);
    EXPECT_EQ(data, 4);
}

TEST(TraceWriter, TimestampsAreSortedAndTickDerived)
{
    TempFile out("trace_order");
    TraceWriter &tw = TraceWriter::instance();
    ASSERT_TRUE(tw.open(out.path()));

    std::uint32_t t = tw.track("comp");
    // Emit out of timestamp order; close() must sort.
    tw.instant(t, "late", 3'000'000); // 3 us in ticks (ps)
    tw.instant(t, "early", 1'000'000);
    tw.complete(t, "span", 2'000'000, 2'500'000);
    tw.close();

    jsonlite::Value doc = jsonlite::parse(slurp(out.path()));
    double prev = -1.0;
    std::vector<std::string> order;
    for (const auto &e : doc.at("traceEvents").array) {
        if (e.at("ph").string == "M")
            continue;
        ASSERT_TRUE(e.at("ts").isNumber());
        EXPECT_GE(e.at("ts").number, prev);
        prev = e.at("ts").number;
        order.push_back(e.at("name").string);
    }
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "early");
    EXPECT_EQ(order[1], "span");
    EXPECT_EQ(order[2], "late");
    // "ts" is microseconds: 1e6 ticks (ps) = 1 us.
    EXPECT_DOUBLE_EQ(prev, 3.0);
}

TEST(TraceWriter, CompleteEventsCarryDurations)
{
    TempFile out("trace_dur");
    TraceWriter &tw = TraceWriter::instance();
    ASSERT_TRUE(tw.open(out.path()));
    tw.complete(tw.track("comp"), "span", 0, 4'000'000,
                traceArgs({{"k", 1}}));
    tw.close();

    jsonlite::Value doc = jsonlite::parse(slurp(out.path()));
    bool found = false;
    for (const auto &e : doc.at("traceEvents").array) {
        if (e.at("ph").string != "X")
            continue;
        found = true;
        EXPECT_DOUBLE_EQ(e.at("dur").number, 4.0);
        EXPECT_DOUBLE_EQ(e.at("args").at("k").number, 1.0);
    }
    EXPECT_TRUE(found);
}

TEST(TraceWriter, ThreadNameMetadataNamesEveryTrack)
{
    TempFile out("trace_meta");
    TraceWriter &tw = TraceWriter::instance();
    ASSERT_TRUE(tw.open(out.path()));
    std::uint32_t a = tw.track("node0.snic");
    EXPECT_EQ(tw.track("node0.snic"), a); // stable on re-lookup
    tw.instant(a, "ev", 0);
    tw.instant(tw.track("tor0"), "ev", 1);
    tw.close();

    jsonlite::Value doc = jsonlite::parse(slurp(out.path()));
    std::vector<std::string> names;
    for (const auto &e : doc.at("traceEvents").array) {
        if (e.at("ph").string == "M" &&
            e.at("name").string == "thread_name")
            names.push_back(e.at("args").at("name").string);
    }
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "node0.snic");
    EXPECT_EQ(names[1], "tor0");
}

TEST(TraceWriter, ReopenStartsAFreshCapture)
{
    TempFile first("trace_first");
    TempFile second("trace_second");
    TraceWriter &tw = TraceWriter::instance();

    ASSERT_TRUE(tw.open(first.path()));
    tw.instant(tw.track("comp"), "one", 10);
    ASSERT_TRUE(tw.open(second.path())); // implicitly closes the first
    tw.instant(tw.track("comp"), "two", 20);
    tw.close();

    jsonlite::Value a = jsonlite::parse(slurp(first.path()));
    jsonlite::Value b = jsonlite::parse(slurp(second.path()));
    auto dataNames = [](const jsonlite::Value &doc) {
        std::vector<std::string> out;
        for (const auto &e : doc.at("traceEvents").array)
            if (e.at("ph").string != "M")
                out.push_back(e.at("name").string);
        return out;
    };
    EXPECT_EQ(dataNames(a), std::vector<std::string>{"one"});
    EXPECT_EQ(dataNames(b), std::vector<std::string>{"two"});
}
