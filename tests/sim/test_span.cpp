/**
 * @file
 * Unit tests for the span-tracing primitives: the deterministic
 * sampling hash, the SpanParams capture-mode logic, the flight
 * recorder's loss-free tail pruning, the shard-partition invariance
 * of buildSpanRun, the critical-path tiling property, and
 * TraceWriter::derivedPath (the per-point/per-shard file naming the
 * sweep and shard engines use).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/critical_path.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

using namespace netsparse;

TEST(SpanId, DeterministicNonZeroAndIdentityKeyed)
{
    std::uint64_t a = spanIdFor(1, 0, 3, 0, 41);
    EXPECT_EQ(a, spanIdFor(1, 0, 3, 0, 41));
    EXPECT_NE(a, 0u);
    // Every identity field participates in the hash.
    EXPECT_NE(a, spanIdFor(2, 0, 3, 0, 41));
    EXPECT_NE(a, spanIdFor(1, 1, 3, 0, 41));
    EXPECT_NE(a, spanIdFor(1, 0, 4, 0, 41));
    EXPECT_NE(a, spanIdFor(1, 0, 3, 1, 41));
    EXPECT_NE(a, spanIdFor(1, 0, 3, 0, 42));
}

TEST(SpanId, SamplingRateIsApproximatelyOneInN)
{
    SpanParams p;
    p.sampleEvery = 16;
    int sampled = 0;
    const int total = 20000;
    for (int req = 0; req < total; ++req)
        if (p.sampled(spanIdFor(p.seed, 0, req % 32, 0,
                                static_cast<std::uint32_t>(req))))
            ++sampled;
    // 1/16 of 20000 = 1250; allow a generous band for hash variance.
    EXPECT_GT(sampled, total / 16 / 2);
    EXPECT_LT(sampled, total / 16 * 2);
}

TEST(SpanParams, ModesAndThresholds)
{
    SpanParams off;
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.sampleThreshold(), 0u);

    SpanParams all;
    all.sampleEvery = 1;
    EXPECT_TRUE(all.enabled());
    EXPECT_FALSE(all.recordAll());
    EXPECT_EQ(all.sampleThreshold(), ~0ull);
    EXPECT_TRUE(all.sampled(~0ull));

    SpanParams tail;
    tail.tailKeep = 4;
    EXPECT_TRUE(tail.enabled());
    EXPECT_TRUE(tail.recordAll());
    EXPECT_FALSE(tail.sampled(1)); // no sampling knob -> never sampled
}

namespace {

SpanRetire
mkRetire(std::uint64_t id, Tick issue, Tick retire,
         std::uint16_t tenant = 0)
{
    SpanRetire r;
    r.spanId = id;
    r.issueTick = issue;
    r.retireTick = retire;
    r.tenant = tenant;
    r.src = 0;
    r.reqId = static_cast<std::uint32_t>(id);
    return r;
}

} // namespace

TEST(SpanBuffer, TailKeepPrunesEverythingOutsideTopK)
{
    SpanParams p;
    p.tailKeep = 2;
    SpanBuffer buf(p);
    // Five spans with totals 10, 20, ..., 50.
    for (std::uint64_t id = 1; id <= 5; ++id) {
        buf.record(id, SpanStage::Issue, 0, 0);
        buf.retire(mkRetire(id, 0, id * 10));
    }
    // Top-2 by total: ids 5 (50) and 4 (40). Id 5 also ends last, so
    // it is the tenant finisher; 1 and 2 were evicted and pruned
    // (3 got displaced from the heap but was never re-checked until
    // eviction, so the count is the evicted ones).
    EXPECT_NE(buf.eventsOf(5), nullptr);
    EXPECT_NE(buf.eventsOf(4), nullptr);
    EXPECT_EQ(buf.eventsOf(1), nullptr);
    EXPECT_EQ(buf.eventsOf(2), nullptr);
    EXPECT_GE(buf.prunedSpans(), 2u);
    EXPECT_EQ(buf.retired().size(), 5u);
}

TEST(SpanBuffer, FinisherSurvivesPruningEvenWithTinyLatency)
{
    SpanParams p;
    p.tailKeep = 1;
    SpanBuffer buf(p);
    buf.record(10, SpanStage::Issue, 0, 0);
    buf.retire(mkRetire(10, 0, 1000)); // the big one
    buf.record(11, SpanStage::Issue, 0, 0);
    buf.retire(mkRetire(11, 2000, 2001)); // tiny, but retires last
    // 11 lost the top-1 heap slot to 10 but is the tenant finisher,
    // so its events must not be pruned.
    EXPECT_NE(buf.eventsOf(10), nullptr);
    EXPECT_NE(buf.eventsOf(11), nullptr);
}

TEST(SpanRun, MergeIsInvariantToHowBuffersPartitionTheRun)
{
    SpanParams p;
    p.tailKeep = 2;
    p.tailThreshold = 35;

    // The same execution recorded once into one buffer and once split
    // across two (events on the "remote" shard, retire on the owner).
    auto record = [&](SpanBuffer &issueSide, SpanBuffer &hopSide) {
        for (std::uint64_t id = 1; id <= 6; ++id) {
            issueSide.record(id, SpanStage::Issue, 0, id);
            hopSide.record(id, SpanStage::LinkTx, 1, id + 1, 2);
            issueSide.record(id, SpanStage::Retire, 0, id * 10);
            issueSide.retire(mkRetire(id, id, id * 10,
                                      id % 2 ? 0 : 1));
        }
    };
    SpanBuffer whole(p);
    record(whole, whole);
    SpanBuffer left(p), right(p);
    record(left, right);

    SpanRun a, b;
    a.params = b.params = p;
    buildSpanRun(a, {&whole});
    buildSpanRun(b, {&left, &right});

    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].info.spanId, b.spans[i].info.spanId);
        EXPECT_EQ(a.spans[i].kept, b.spans[i].kept);
        EXPECT_EQ(a.spans[i].finisher, b.spans[i].finisher);
        EXPECT_EQ(a.spans[i].events.size(), b.spans[i].events.size());
    }
    // Selection: threshold keeps 40/50/60 (ids 4,5,6); top-2 of the
    // rest adds 30 and 20 (ids 3,2); finishers 6 (tenant 1) and 5
    // (tenant 0) are already kept.
    EXPECT_EQ(a.spans.size(), 5u);
    EXPECT_EQ(a.spans.front().info.spanId, 6u); // largest total first
    EXPECT_TRUE(a.spans.front().finisher);
}

TEST(CriticalPath, SegmentsTileTheSpanExactly)
{
    // issue at 100; NIC egress at 150; wire 150..180; pipe 200..210;
    // retire at 400. Waits fill 100..150, 180..200 and 210..400.
    std::vector<CpEvent> events = {
        {100, 0, 0, "issue"},   {150, 0, 1, "nicEgress"},
        {150, 30, 2, "linkTx"}, {200, 10, 3, "switchPipe"},
        {400, 0, 0, "retire"},
    };
    CriticalPath cp = computeCriticalPath(100, 400, events);
    EXPECT_EQ(cp.attributedTicks(), cp.totalTicks());
    ASSERT_EQ(cp.segments.size(), 5u);
    EXPECT_TRUE(cp.segments[0].wait); // 100..150 waiting for the NIC
    EXPECT_EQ(cp.segments[0].ticks(), 50);
    EXPECT_FALSE(cp.segments[1].wait); // 150..180 on the wire
    EXPECT_EQ(cp.segments[1].stage, "linkTx");
    EXPECT_TRUE(cp.segments[4].wait); // 210..400 waiting to retire
    EXPECT_EQ(cp.segments[4].ticks(), 190);
}

TEST(CriticalPath, PreIssueEventsClampToZeroWidth)
{
    // A failed first attempt burned wire time before the accepted
    // attempt's issue tick; it must not break the tiling.
    std::vector<CpEvent> events = {
        {10, 30, 5, "linkTx"}, // earlier attempt, entirely pre-issue
        {100, 0, 0, "issue"},  {120, 10, 2, "linkTx"},
        {200, 0, 0, "retire"},
    };
    CriticalPath cp = computeCriticalPath(100, 200, events);
    EXPECT_EQ(cp.attributedTicks(), cp.totalTicks());
    for (const CpSegment &s : cp.segments) {
        EXPECT_GE(s.start, 100);
        EXPECT_LE(s.end, 200);
    }
}

TEST(TraceWriter, DerivedPathKeepsTheExtensionLast)
{
    EXPECT_EQ(TraceWriter::derivedPath("run.json", "point3"),
              "run.point3.json");
    EXPECT_EQ(TraceWriter::derivedPath("out/dir/run.json", "shard1"),
              "out/dir/run.shard1.json");
    // Dots in directory names must not be mistaken for extensions.
    EXPECT_EQ(TraceWriter::derivedPath("v1.2/trace", "point0"),
              "v1.2/trace.point0");
    EXPECT_EQ(TraceWriter::derivedPath("trace", "point0"),
              "trace.point0");
    EXPECT_EQ(TraceWriter::derivedPath("a.b/c.d.json", "p"),
              "a.b/c.d.p.json");
}
