/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace netsparse;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMomentsAndExtremes)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5); // buckets of width 2
    h.sample(-1.0);            // underflow
    h.sample(0.0);             // bucket 1
    h.sample(1.9);             // bucket 1
    h.sample(9.9);             // bucket 5
    h.sample(10.0);            // overflow
    h.sample(100.0);           // overflow
    EXPECT_EQ(h.totalSamples(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(h.numBuckets() - 1), 2u);
}

TEST(StatRegistry, SetAddGetDump)
{
    StatRegistry reg;
    EXPECT_FALSE(reg.has("x"));
    EXPECT_DOUBLE_EQ(reg.get("x"), 0.0);
    reg.set("node0.prs", 10);
    reg.add("node0.prs", 5);
    reg.add("node1.prs", 1);
    EXPECT_TRUE(reg.has("node0.prs"));
    EXPECT_DOUBLE_EQ(reg.get("node0.prs"), 15.0);

    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.prs"), std::string::npos);
    EXPECT_NE(out.find("node1.prs"), std::string::npos);
    // Sorted: node0 before node1.
    EXPECT_LT(out.find("node0.prs"), out.find("node1.prs"));
}
