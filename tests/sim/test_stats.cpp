/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace netsparse;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMomentsAndExtremes)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 15.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5); // buckets of width 2
    h.sample(-1.0);            // underflow
    h.sample(0.0);             // bucket 1
    h.sample(1.9);             // bucket 1
    h.sample(9.9);             // bucket 5
    h.sample(10.0);            // overflow
    h.sample(100.0);           // overflow
    EXPECT_EQ(h.totalSamples(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(h.numBuckets() - 1), 2u);
}

TEST(Histogram, PercentileEmptyAndClamping)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0); // empty

    for (int v = 0; v < 100; ++v)
        h.sample(static_cast<double>(v));
    // Out-of-range p clamps to [0, 100].
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(150.0), h.percentile(100.0));
}

TEST(Histogram, PercentileInterpolatesUniformDistribution)
{
    // One sample per integer 0..99 in 10-wide buckets: percentiles
    // interpolate to the exact rank values.
    Histogram h(0.0, 100.0, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(static_cast<double>(v));
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90.0), 90.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(Histogram, PercentileResolvesEdgeBinsToRange)
{
    Histogram under(0.0, 10.0, 5);
    under.sample(-3.0);
    EXPECT_DOUBLE_EQ(under.percentile(50.0), 0.0); // underflow -> lo

    Histogram over(0.0, 10.0, 5);
    over.sample(42.0);
    EXPECT_DOUBLE_EQ(over.percentile(50.0), 10.0); // overflow -> hi

    // A single in-range sample resolves to its bucket's right edge.
    Histogram one(0.0, 10.0, 5);
    one.sample(5.0); // bucket [4, 6)
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 6.0);
    EXPECT_DOUBLE_EQ(one.percentile(99.0), 6.0);
}

TEST(Histogram, MergeSumsMatchingGeometry)
{
    Histogram a(0.0, 10.0, 5);
    Histogram b(0.0, 10.0, 5);
    a.sample(1.0);
    a.sample(9.0);
    b.sample(1.5);
    b.sample(-1.0);
    b.sample(100.0);
    a.merge(b);
    EXPECT_EQ(a.totalSamples(), 5u);
    EXPECT_EQ(a.bucket(0), 1u);                  // underflow from b
    EXPECT_EQ(a.bucket(1), 2u);                  // 1.0 and 1.5
    EXPECT_EQ(a.bucket(5), 1u);                  // 9.0
    EXPECT_EQ(a.bucket(a.numBuckets() - 1), 1u); // overflow from b
}

TEST(Histogram, MergeIgnoresMismatchedGeometry)
{
    Histogram a(0.0, 10.0, 5);
    a.sample(1.0);
    Histogram widened(0.0, 20.0, 5);
    widened.sample(1.0);
    a.merge(widened);
    EXPECT_EQ(a.totalSamples(), 1u);
    Histogram rebucketed(0.0, 10.0, 10);
    rebucketed.sample(1.0);
    a.merge(rebucketed);
    EXPECT_EQ(a.totalSamples(), 1u);
}

TEST(StatRegistry, SetAddGetDump)
{
    StatRegistry reg;
    EXPECT_FALSE(reg.has("x"));
    EXPECT_DOUBLE_EQ(reg.get("x"), 0.0);
    reg.set("node0.prs", 10);
    reg.add("node0.prs", 5);
    reg.add("node1.prs", 1);
    EXPECT_TRUE(reg.has("node0.prs"));
    EXPECT_DOUBLE_EQ(reg.get("node0.prs"), 15.0);

    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.prs"), std::string::npos);
    EXPECT_NE(out.find("node1.prs"), std::string::npos);
    // Sorted: node0 before node1.
    EXPECT_LT(out.find("node0.prs"), out.find("node1.prs"));
}
