/** @file Unit tests for the parallel sweep executor. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats_export.hh"
#include "sim/sweep.hh"

using namespace netsparse;

TEST(SweepExecutor, SequentialRunsEveryPointInOrder)
{
    SweepExecutor exec(1);
    std::vector<std::size_t> order;
    exec.run(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SweepExecutor, ParallelCoversEveryPointExactlyOnce)
{
    SweepExecutor exec(4);
    std::vector<std::atomic<int>> hits(64);
    exec.run(64, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "point " << i;
}

TEST(SweepExecutor, ParallelMatchesSequentialResults)
{
    auto compute = [](std::size_t i) {
        // Some deterministic per-point work.
        std::uint64_t acc = i + 1;
        for (int r = 0; r < 1000; ++r)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        return acc;
    };
    std::vector<std::uint64_t> seq(40), par(40);
    SweepExecutor(1).run(40, [&](std::size_t i) { seq[i] = compute(i); });
    SweepExecutor(8).run(40, [&](std::size_t i) { par[i] = compute(i); });
    EXPECT_EQ(seq, par);
}

TEST(SweepExecutor, StatsRunsAbsorbedInIndexOrder)
{
    StatsExport collector;
    collector.setCollect(true);
    std::string json;
    {
        StatsExport::Bind bind(collector);
        SweepExecutor exec(4);
        exec.run(8, [&](std::size_t i) {
            StatRegistry &reg = StatsExport::instance().beginRun(
                "point" + std::to_string(i));
            reg.set("index", static_cast<double>(i));
        });
        json = collector.toJson();
    }
    // Regardless of which worker ran which point, the merged document
    // lists runs point0..point7 in sweep-index order.
    std::size_t pos = 0;
    for (int i = 0; i < 8; ++i) {
        std::string label = "\"label\":\"point" + std::to_string(i) + "\"";
        std::size_t found = json.find(label, pos);
        ASSERT_NE(found, std::string::npos) << label << " missing";
        pos = found;
    }
    collector.reset();
}

TEST(SweepExecutor, FirstExceptionByIndexPropagates)
{
    SweepExecutor exec(4);
    try {
        exec.run(16, [&](std::size_t i) {
            if (i == 3 || i == 11)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

TEST(SweepExecutor, JobsFromEnvDefaultsToOne)
{
    // The variable is unset in the test environment.
    if (!std::getenv("NETSPARSE_BENCH_JOBS"))
        EXPECT_EQ(SweepExecutor::jobsFromEnv(), 1u);
    SweepExecutor exec(0);
    std::vector<std::size_t> order;
    exec.run(3, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}
