/** @file Unit tests for the deterministic RNG utilities. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace netsparse;

TEST(SplitMix, IsDeterministicAndMixes)
{
    EXPECT_EQ(splitmix64(42), splitmix64(42));
    EXPECT_NE(splitmix64(42), splitmix64(43));
    // Single-bit input changes flip roughly half the output bits.
    std::uint64_t a = splitmix64(0x1000);
    std::uint64_t b = splitmix64(0x1001);
    int diff = __builtin_popcountll(a ^ b);
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1 << 30), b.uniformInt(0, 1 << 30));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniformInt(0, 1000) == b.uniformInt(0, 1000);
    EXPECT_LT(same, 10);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(6);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GeometricMeanIsApproximatelyRight)
{
    Rng rng(7);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(10.0));
    EXPECT_NEAR(sum / n, 10.0, 0.5);
    // Degenerate mean never returns zero.
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(rng.geometric(0.5), 1u);
}

TEST(Rng, ZipfStaysInRangeAndIsSkewed)
{
    Rng rng(8);
    const std::uint64_t n = 1000;
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < 50000; ++i) {
        auto v = rng.zipf(n, 1.2);
        ASSERT_LT(v, n);
        ++counts[v];
    }
    // Rank 0 must be much more popular than rank n/2.
    EXPECT_GT(counts[0], 10 * std::max<std::uint64_t>(1, counts[n / 2]));
    // Degenerate cases.
    EXPECT_EQ(rng.zipf(1, 1.2), 0u);
    EXPECT_EQ(rng.zipf(0, 1.2), 0u);
}
