/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace netsparse;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(50, [&] {
        eq.scheduleIn(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 75u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executedEvents(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil(30);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired.back(), 40u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RandomizedOrderingInvariant)
{
    // Property: regardless of insertion order, execution times are
    // non-decreasing.
    Rng rng(7);
    EventQueue eq;
    std::vector<Tick> fired;
    for (int i = 0; i < 1000; ++i) {
        Tick t = rng.uniformInt(0, 10000);
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 1000u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_GE(fired[i], fired[i - 1]);
}
