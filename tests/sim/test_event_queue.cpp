/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace netsparse;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(50, [&] {
        eq.scheduleIn(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 75u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executedEvents(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil(30);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30}));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired.back(), 40u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RandomizedOrderingInvariant)
{
    // Property: regardless of insertion order, execution times are
    // non-decreasing.
    Rng rng(7);
    EventQueue eq;
    std::vector<Tick> fired;
    for (int i = 0; i < 1000; ++i) {
        Tick t = rng.uniformInt(0, 10000);
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 1000u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_GE(fired[i], fired[i - 1]);
}

TEST(EventQueue, FifoTieBreakAcrossBucketBoundaries)
{
    // Same-tick FIFO must survive the two-level scheduler's routing:
    // schedule interleaved ticks that straddle a 4096-tick bucket edge
    // and land in the wheel, the current bucket, and the far heap.
    EventQueue eq;
    std::vector<std::pair<Tick, int>> order;
    const Tick ticks[] = {4095, 4096, 4095, 4096, 4097, 4095};
    for (int i = 0; i < 6; ++i) {
        Tick t = ticks[i];
        eq.schedule(t, [&order, &eq, i] {
            order.emplace_back(eq.now(), i);
        });
    }
    eq.run();
    ASSERT_EQ(order.size(), 6u);
    EXPECT_EQ(order[0], (std::pair<Tick, int>{4095, 0}));
    EXPECT_EQ(order[1], (std::pair<Tick, int>{4095, 2}));
    EXPECT_EQ(order[2], (std::pair<Tick, int>{4095, 5}));
    EXPECT_EQ(order[3], (std::pair<Tick, int>{4096, 1}));
    EXPECT_EQ(order[4], (std::pair<Tick, int>{4096, 3}));
    EXPECT_EQ(order[5], (std::pair<Tick, int>{4097, 4}));
}

TEST(EventQueue, FarHorizonEventsCascadeIntoTheWheel)
{
    // Events beyond the wheel's ~4.2 us window start in the far heap
    // and must still run in exact order, including FIFO at equal ticks.
    EventQueue eq;
    std::vector<int> order;
    const Tick far = Tick{4096} * 1024 * 3 + 17; // ~3 wheel horizons out
    eq.schedule(far, [&] { order.push_back(0); });
    eq.schedule(far, [&] { order.push_back(1); });
    eq.schedule(far - 1, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 0, 1}));
    EXPECT_EQ(eq.now(), far);
}

TEST(EventQueue, LargeClosuresFallBackToTheHeap)
{
    // Closures above the pool's inline slot size take the out-of-line
    // path; both must execute and destroy correctly.
    EventQueue eq;
    std::array<std::uint64_t, 32> big{}; // 256 B > inline slot
    big[31] = 42;
    std::uint64_t seen = 0;
    eq.schedule(10, [big, &seen] { seen = big[31]; });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, ExecutedEventsIsMonotonic)
{
    EventQueue eq;
    std::uint64_t last = 0;
    bool monotonic = true;
    for (int i = 0; i < 50; ++i) {
        eq.schedule(i * 7, [&] {
            if (eq.executedEvents() < last)
                monotonic = false;
            last = eq.executedEvents();
        });
    }
    std::uint64_t before = eq.executedEvents();
    eq.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.executedEvents(), before + 50);
}

TEST(EventQueue, RunUntilInclusiveAtBucketEdge)
{
    // The runUntil boundary must stay inclusive when the limit falls
    // exactly on a wheel-bucket edge.
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(4096, [&] { fired.push_back(eq.now()); });
    eq.schedule(4097, [&] { fired.push_back(eq.now()); });
    eq.runUntil(4096);
    EXPECT_EQ(fired, (std::vector<Tick>{4096}));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{4096, 4097}));
}

TEST(EventQueue, ScheduleAtNowDuringCallbackRunsSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        eq.scheduleIn(0, [&] { order.push_back(1); });
    });
    eq.schedule(100, [&] { order.push_back(2); });
    eq.run();
    // The zero-delay event is scheduled after event 2, so FIFO places
    // it last within tick 100.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RandomizedDeterministicReplay)
{
    // Two queues fed the same pseudo-random schedule must execute the
    // exact same event sequence - the bit-identical-stats property the
    // two-level scheduler has to preserve.
    auto drive = [](std::vector<std::uint64_t> &log) {
        Rng rng(1234);
        EventQueue eq;
        for (int i = 0; i < 5000; ++i) {
            Tick t = rng.uniformInt(0, 5'000'000); // spans far horizon
            eq.schedule(t, [&log, &eq, i] {
                log.push_back(eq.now() * 10000 + i);
            });
        }
        eq.run();
    };
    std::vector<std::uint64_t> a, b;
    drive(a);
    drive(b);
    ASSERT_EQ(a.size(), 5000u);
    EXPECT_EQ(a, b);
}
