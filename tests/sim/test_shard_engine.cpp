/**
 * @file
 * Unit tests for the parallel-engine building blocks: the delivery-key
 * ordering band, EventQueue::fastForward, EpochMailbox channels and the
 * ShardEngine epoch loop itself.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/shard_engine.hh"

using namespace netsparse;

// --- Delivery-key ordering band -------------------------------------

TEST(DeliveryKey, StaysBelowTheInternalBand)
{
    EXPECT_LT(EventQueue::deliveryKey(0, 0), EventQueue::internalKeyBase);
    EXPECT_LT(EventQueue::deliveryKey((1u << 23) - 1, (1ull << 40) - 1),
              EventQueue::internalKeyBase);
}

TEST(DeliveryKey, OrdersByLinkThenPerLinkSequence)
{
    EXPECT_LT(EventQueue::deliveryKey(0, 5), EventQueue::deliveryKey(1, 0));
    EXPECT_LT(EventQueue::deliveryKey(3, 7), EventQueue::deliveryKey(3, 8));
}

TEST(DeliveryKey, RejectsOutOfRangeComponents)
{
    EXPECT_THROW(EventQueue::deliveryKey(1u << 23, 0), std::logic_error);
    EXPECT_THROW(EventQueue::deliveryKey(0, 1ull << 40), std::logic_error);
}

TEST(DeliveryKey, SameTickDeliveriesRunBeforeInternalEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(10); });
    eq.scheduleDelivery(100, EventQueue::deliveryKey(7, 0),
                        [&] { order.push_back(1); });
    eq.scheduleDelivery(100, EventQueue::deliveryKey(2, 3),
                        [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10}));
}

TEST(DeliveryKey, ExecutionOrderIsInsertionIndependent)
{
    // The property the parallel merge relies on: the same same-tick
    // deliveries execute identically whether they were scheduled
    // locally (one insertion order) or merged from a channel (another).
    auto run = [](std::vector<std::uint32_t> linkOrder) {
        EventQueue eq;
        std::vector<std::uint32_t> order;
        for (std::uint32_t link : linkOrder)
            eq.scheduleDelivery(50, EventQueue::deliveryKey(link, 0),
                                [&order, link] { order.push_back(link); });
        eq.run();
        return order;
    };
    EXPECT_EQ(run({1, 2, 3}), run({3, 1, 2}));
    EXPECT_EQ(run({5, 4, 0}), run({0, 4, 5}));
}

TEST(DeliveryKey, RejectsKeysFromTheInternalBand)
{
    EventQueue eq;
    EXPECT_THROW(
        eq.scheduleDelivery(10, EventQueue::internalKeyBase, [] {}),
        std::logic_error);
}

// --- fastForward -----------------------------------------------------

TEST(EventQueueFastForward, AdvancesTheClockWithoutExecuting)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(100, [&] { ran = true; });
    eq.runUntil(60);
    eq.fastForward(80);
    EXPECT_EQ(eq.now(), 80u);
    EXPECT_FALSE(ran);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueFastForward, RefusesToTravelBackwardsOrSkipEvents)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    EXPECT_THROW(eq.fastForward(11), std::logic_error);
    eq.run();
    EXPECT_THROW(eq.fastForward(5), std::logic_error);
}

// --- EpochMailbox ----------------------------------------------------

TEST(EpochMailbox, DrainsInPushOrderAndEmpties)
{
    EpochMailbox<int> box;
    EXPECT_TRUE(box.empty());
    box.push(1);
    box.push(2);
    box.push(3);
    EXPECT_EQ(box.size(), 3u);
    std::vector<int> seen;
    box.drain([&](int &&v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(box.empty());
    box.push(4);
    seen.clear();
    box.drain([&](int &&v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{4}));
}

// --- ShardEngine -----------------------------------------------------

namespace {

struct Ball
{
    Tick when;
    std::uint64_t key;
    int hop;
};

} // namespace

TEST(ShardEngine, SingleShardRunsInlineWithoutThreads)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(5, [&] { ran++; });
    EpochMailbox<Ball> inbox;
    inbox.push(Ball{3, EventQueue::deliveryKey(0, 0), 0});

    std::vector<ShardEngine::Shard> shards(1);
    shards[0].eq = &eq;
    shards[0].drainInbox = [&] {
        inbox.drain([&](Ball &&b) {
            eq.scheduleDelivery(b.when, b.key, [&] { ran++; });
        });
    };
    ShardEngine::Result res =
        ShardEngine::run(std::move(shards), 100, maxTick);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(res.epochs, 0u);
    EXPECT_EQ(res.executedEvents, 2u);
    EXPECT_EQ(res.finalTick, 5u);
}

TEST(ShardEngine, TwoShardPingPongIsExactAndAlignsClocks)
{
    // A ball bounces between two shards over a latency-100 channel:
    // hop h executes at tick (h + 1) * 100 on shard h % 2. Only the
    // owning worker touches each shard's log, counter and queue; the
    // mailboxes are the sole cross-thread state, exactly as in the
    // cluster build.
    constexpr Tick latency = 100;
    constexpr int hops = 64;

    EventQueue queues[2];
    EpochMailbox<Ball> chan[2]; // chan[d]: deliveries into shard d
    std::vector<std::pair<int, Tick>> log[2];
    std::uint64_t seq[2] = {0, 0};

    // Worker-side bounce logic; runs on the shard that owns `self`.
    auto bounce = [&](int self, int hop) {
        log[self].emplace_back(hop, queues[self].now());
        if (hop + 1 < hops) {
            chan[1 - self].push(
                Ball{queues[self].now() + latency,
                     EventQueue::deliveryKey(
                         static_cast<std::uint32_t>(self), seq[self]++),
                     hop + 1});
        }
    };

    std::vector<ShardEngine::Shard> shards(2);
    for (int d = 0; d < 2; ++d) {
        shards[d].eq = &queues[d];
        shards[d].drainInbox = [&, d] {
            chan[d].drain([&, d](Ball &&b) {
                queues[d].scheduleDelivery(
                    b.when, b.key,
                    [&, d, hop = b.hop] { bounce(d, hop); });
            });
        };
    }
    // Seed: hop 0 arrives at shard 0 at tick `latency`.
    chan[0].push(Ball{latency, EventQueue::deliveryKey(1, 0), 0});

    ShardEngine::Result res =
        ShardEngine::run(std::move(shards), latency, maxTick);

    EXPECT_EQ(res.executedEvents, static_cast<std::uint64_t>(hops));
    EXPECT_EQ(res.finalTick, static_cast<Tick>(hops) * latency);
    EXPECT_GT(res.epochs, 0u);
    // Every hop landed on the right shard at the right tick.
    ASSERT_EQ(log[0].size() + log[1].size(),
              static_cast<std::size_t>(hops));
    for (int d = 0; d < 2; ++d) {
        for (auto [hop, tick] : log[d]) {
            EXPECT_EQ(hop % 2, d);
            EXPECT_EQ(tick, static_cast<Tick>(hop + 1) * latency);
        }
    }
    // fastForward aligned both clocks with the global final tick.
    EXPECT_EQ(queues[0].now(), res.finalTick);
    EXPECT_EQ(queues[1].now(), res.finalTick);
}

TEST(ShardEngine, StopsAtTheLimit)
{
    // Per-shard counters: shard workers run concurrently, so (like the
    // real cluster) a test must not share mutable state across shards.
    EventQueue q0, q1;
    int ran[2] = {0, 0};
    q0.schedule(10, [&] { ran[0]++; });
    q0.schedule(500, [&] { ran[0] += 100; });
    q1.schedule(20, [&] { ran[1]++; });

    std::vector<ShardEngine::Shard> shards(2);
    shards[0].eq = &q0;
    shards[1].eq = &q1;
    ShardEngine::Result res = ShardEngine::run(std::move(shards), 50, 100);
    EXPECT_EQ(ran[0], 1);
    EXPECT_EQ(ran[1], 1);
    EXPECT_EQ(res.executedEvents, 2u);
}

TEST(ShardEngine, PropagatesWorkerExceptions)
{
    EventQueue q0, q1;
    q0.schedule(10, [] { throw std::runtime_error("boom"); });
    q1.schedule(10, [] {});

    std::vector<ShardEngine::Shard> shards(2);
    shards[0].eq = &q0;
    shards[1].eq = &q1;
    EXPECT_THROW(ShardEngine::run(std::move(shards), 100, maxTick),
                 std::runtime_error);
}

TEST(ShardEngine, RejectsZeroLookaheadForMultipleShards)
{
    EventQueue q0, q1;
    std::vector<ShardEngine::Shard> shards(2);
    shards[0].eq = &q0;
    shards[1].eq = &q1;
    EXPECT_THROW(ShardEngine::run(std::move(shards), 0, maxTick),
                 std::logic_error);
}
