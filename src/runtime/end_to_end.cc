#include "runtime/end_to_end.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

Tick
combinePhases(Tick comp, Tick comm, double alpha)
{
    ns_assert(alpha >= 0.0 && alpha <= 1.0, "alpha out of range");
    Tick hi = std::max(comp, comm);
    Tick lo = std::min(comp, comm);
    return hi + static_cast<Tick>(alpha * static_cast<double>(lo));
}

EndToEndResult
composeEndToEnd(const Csr &m, const Partition1D &part, std::uint32_t k,
                const std::vector<Tick> &per_node_comm,
                const EndToEndConfig &cfg)
{
    const std::uint32_t n = part.numParts();
    ns_assert(per_node_comm.size() == n,
              "per-node communication vector size mismatch");

    EndToEndResult r;
    r.perNodeTotal.resize(n);
    Tick tail_total = 0;
    for (NodeId i = 0; i < n; ++i) {
        std::uint64_t nnz =
            m.rowPtr[part.end(i)] - m.rowPtr[part.begin(i)];
        Tick comp = spmmTime(cfg.device, nnz, part.size(i), k);
        Tick total = combinePhases(comp, per_node_comm[i],
                                   cfg.overlapAlpha);
        r.perNodeTotal[i] = total;
        r.idealTicks = std::max(r.idealTicks, comp);
        if (total > tail_total) {
            tail_total = total;
            r.tailCommTicks = per_node_comm[i];
            r.tailCompTicks = comp;
        }
    }
    r.totalTicks = tail_total;
    return r;
}

Tick
singleNodeTime(const Csr &m, std::uint32_t k, const ComputeDevice &device)
{
    return spmmTime(device, m.nnz(), m.rows, k);
}

} // namespace netsparse
