/**
 * @file
 * The cluster-to-shard binding used by the parallel simulation engine.
 *
 * A ShardMap fixes which shard (worker thread / private EventQueue)
 * owns every component of a cluster: each ToR switch together with the
 * hosts and SNICs of its rack forms the indivisible unit (they
 * exchange doorbells and completions synchronously, so they must share
 * a queue), and spine switches are spread across shards. The partition
 * is rack-granular, so every cross-shard edge in the component graph
 * is a Link - whose latency is the conservative lookahead bound
 * (sim/shard_engine.hh).
 *
 * The shard count comes from ClusterConfig::simShards, with the
 * NETSPARSE_SIM_SHARDS environment variable as the fallback:
 * unset/"1" runs sequentially, an integer asks for that many shards,
 * "racks" or "auto" picks one shard per rack capped at the host's
 * hardware concurrency. Requests are clamped to [1, racks].
 */

#ifndef NETSPARSE_RUNTIME_SHARD_MAP_HH
#define NETSPARSE_RUNTIME_SHARD_MAP_HH

#include <cstdint>
#include <vector>

#include "net/topology.hh"
#include "sim/types.hh"

namespace netsparse {

struct ShardMap
{
    std::uint32_t numShards = 1;
    /** Shard owning each switch (index: SwitchId). */
    std::vector<std::uint32_t> switchShard;
    /** Shard owning each host + SNIC pair (index: NodeId). */
    std::vector<std::uint32_t> nodeShard;

    std::uint32_t shardOfSwitch(SwitchId s) const
    {
        return switchShard[s];
    }
    std::uint32_t shardOfNode(NodeId n) const { return nodeShard[n]; }

    /** True when switches @p a and @p b live in different shards. */
    bool
    crossShard(SwitchId a, SwitchId b) const
    {
        return switchShard[a] != switchShard[b];
    }

    /**
     * Build the rack-granular map: @p shards clamped to [1, racks],
     * ToRs in contiguous blocks, spines spread proportionally, every
     * node co-located with its ToR.
     */
    static ShardMap build(const Topology &topo, std::uint32_t shards);
};

/**
 * Resolve the effective shard count for a cluster with @p racks racks:
 * @p requested when nonzero (0 = consult NETSPARSE_SIM_SHARDS, see
 * file comment), clamped to [1, racks].
 */
std::uint32_t resolveShardCount(std::uint32_t requested,
                                std::uint32_t racks);

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_SHARD_MAP_HH
