#include "runtime/distributed_kernels.hh"

#include "sim/logging.hh"

namespace netsparse {

namespace {

/**
 * Functionally execute one distributed SpMM iteration: every node
 * computes its own output rows from its matrix block and the (locally
 * held or gathered) input properties. Because writes are local and the
 * gather is exact, the result equals the single-node reference.
 */
std::vector<float>
spmmIteration(const Csr &a, const Partition1D &part,
              const std::vector<float> &x, std::uint32_t k)
{
    std::vector<float> y(static_cast<std::size_t>(a.rows) * k, 0.0f);
    for (NodeId node = 0; node < part.numParts(); ++node) {
        for (std::uint32_t r = part.begin(node); r < part.end(node);
             ++r) {
            float *yr = y.data() + static_cast<std::size_t>(r) * k;
            for (std::uint64_t i = a.rowPtr[r]; i < a.rowPtr[r + 1];
                 ++i) {
                const float *xc =
                    x.data() + static_cast<std::size_t>(a.colIdx[i]) * k;
                float v = a.valueAt(i);
                for (std::uint32_t j = 0; j < k; ++j)
                    yr[j] += v * xc[j];
            }
        }
    }
    return y;
}

} // namespace

DistributedSpmm::DistributedSpmm(ClusterConfig cfg, const Csr &a,
                                 const Partition1D &part, std::uint32_t k,
                                 bool simulate)
    : cfg_(std::move(cfg)), a_(a), part_(part), k_(k), simulate_(simulate)
{
    ns_assert(a_.rows == a_.cols,
              "multi-iteration SpMM needs a square matrix");
    ns_assert(part_.numParts() == cfg_.numNodes,
              "partition does not match the cluster size");
    ns_assert(k_ >= 1 && k_ <= 128, "K must be in [1, 128]");
}

DistributedKernelResult
DistributedSpmm::run(const std::vector<float> &x0,
                     std::uint32_t iterations)
{
    ns_assert(x0.size() == static_cast<std::size_t>(a_.cols) * k_,
              "x0 must be cols x K");
    ns_assert(iterations >= 1, "need at least one iteration");

    DistributedKernelResult result;
    std::vector<float> x = x0;
    for (std::uint32_t it = 0; it < iterations; ++it) {
        if (simulate_) {
            // Each iteration re-runs the control-plane setup (fresh Idx
            // Filters and invalidated Property Caches) and the gather.
            ClusterSim sim(cfg_);
            result.iterations.push_back(sim.runGather(a_, part_, k_));
        }
        x = spmmIteration(a_, part_, x, k_);
    }
    result.output = std::move(x);
    return result;
}

DistributedKernelResult
distributedSpmv(ClusterConfig cfg, const Csr &a, const Partition1D &part,
                const std::vector<float> &x, bool simulate)
{
    DistributedSpmm spmm(std::move(cfg), a, part, 1, simulate);
    return spmm.run(x, 1);
}

DistributedSddmmResult
distributedSddmm(ClusterConfig cfg, const Csr &a, const Partition1D &part,
                 const std::vector<float> &u, const std::vector<float> &v,
                 std::uint32_t k, bool simulate)
{
    ns_assert(u.size() == static_cast<std::size_t>(a.rows) * k,
              "U must be rows x K");
    ns_assert(v.size() == static_cast<std::size_t>(a.cols) * k,
              "V must be cols x K");
    ns_assert(part.numParts() == cfg.numNodes,
              "partition does not match the cluster size");

    DistributedSddmmResult result;
    if (simulate) {
        // The communication pattern of SDDMM matches the gather: each
        // nonzero reads the V row of its column index.
        ClusterSim sim(cfg);
        result.iterations.push_back(sim.runGather(a, part, k));
    }

    result.values.assign(a.nnz(), 0.0f);
    for (NodeId node = 0; node < part.numParts(); ++node) {
        for (std::uint32_t r = part.begin(node); r < part.end(node);
             ++r) {
            const float *ur = u.data() + static_cast<std::size_t>(r) * k;
            for (std::uint64_t i = a.rowPtr[r]; i < a.rowPtr[r + 1];
                 ++i) {
                const float *vc =
                    v.data() + static_cast<std::size_t>(a.colIdx[i]) * k;
                float dot = 0.0f;
                for (std::uint32_t j = 0; j < k; ++j)
                    dot += ur[j] * vc[j];
                result.values[i] = a.valueAt(i) * dot;
            }
        }
    }
    return result;
}

} // namespace netsparse
