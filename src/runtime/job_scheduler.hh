/**
 * @file
 * Multi-tenant job scheduler: N concurrent gather jobs on one fabric.
 *
 * A JobSpec is one tenant: its own workload (matrix partition and
 * per-node index streams), its own K, and an optional admission delay.
 * The scheduler instantiates one virtual SNIC slice per (node, tenant)
 * - each with its own RIG units, Idx Filter and retry state - sharing
 * the node's physical NIC egress link, and runs every job to
 * completion on the shared switches and links. PRs carry their
 * tenant id (net/protocol.hh), which tenant-qualifies the ToR Property
 * Cache keys and selects the fair-queueing lane at switch output
 * ports; optional synthetic background traffic (net/background.hh)
 * contends for the same wires.
 *
 * Determinism contract: like the single-job cluster, a multi-job run's
 * stats and telemetry documents are byte-identical at every shard
 * count. Everything tenant-related hangs off per-run-deterministic
 * state (construction-order ordering ids, per-(node,tenant) components
 * registered under cluster-wide order keys, hash-driven background
 * streams), so adding shards changes wall-clock time only.
 *
 * A single job with no background traffic takes the exact legacy
 * construction path - same component names, same stats document - so
 * ClusterSim::runGather delegates here unconditionally.
 */

#ifndef NETSPARSE_RUNTIME_JOB_SCHEDULER_HH
#define NETSPARSE_RUNTIME_JOB_SCHEDULER_HH

#include <string>
#include <vector>

#include "net/background.hh"
#include "runtime/cluster.hh"

namespace netsparse {

/** One tenant's admission request. */
struct JobSpec
{
    /** The job's matrix partition and per-node index streams. */
    GatherWorkload work;
    /** Property vector width (propBytes = 4 * k). */
    std::uint32_t k = 16;
    /** Admission time: hosts start issuing at this tick (0 = at t0). */
    Tick startDelay = 0;
    /** Display name ("job<t>" when empty). */
    std::string name;
};

/** The outcome of a multi-job run. */
struct MultiJobResult
{
    /** Per-tenant results, in JobSpec order. */
    std::vector<GatherRunResult> jobs;
    /** Last job completion (the multi-tenant "communication time"). */
    Tick makespanTicks = 0;

    // Shared-fabric totals (per-job splits are not defined for these).
    std::uint64_t totalWireBytes = 0;
    std::uint64_t packetsDropped = 0;
    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t prsServedByCache = 0;

    // Engine outcome (same meaning as GatherRunResult's copies).
    std::uint64_t executedEvents = 0;
    Tick finalTick = 0;
    std::uint32_t simShards = 1;
    Tick lookaheadTicks = 0;
    std::uint64_t epochs = 0;

    // Background traffic accounting (zero when disabled).
    std::uint64_t backgroundPackets = 0;
    std::uint64_t backgroundBytes = 0;
    std::uint64_t backgroundDelivered = 0;
    std::uint64_t backgroundDeliveredBytes = 0;
};

/**
 * Admits concurrent gather jobs onto one shared simulated fabric.
 * Construct-per-run, like ClusterSim.
 */
class JobScheduler
{
  public:
    explicit JobScheduler(ClusterConfig cfg);

    /**
     * Run every job to completion (plus the background traffic's fixed
     * packet budget) and collect per-tenant results. Fatals if any
     * host is still unfinished at ClusterConfig::maxSimTime.
     */
    MultiJobResult run(std::vector<JobSpec> &&jobs,
                       const BackgroundTrafficConfig &bg = {});

    const ClusterConfig &config() const { return cfg_; }

  private:
    ClusterConfig cfg_;
};

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_JOB_SCHEDULER_HH
