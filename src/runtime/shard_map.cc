#include "runtime/shard_map.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/logging.hh"

namespace netsparse {

ShardMap
ShardMap::build(const Topology &topo, std::uint32_t shards)
{
    ShardMap map;
    map.numShards = std::clamp<std::uint32_t>(shards, 1, topo.numTors());
    map.switchShard = topo.rackPartition(map.numShards);
    map.nodeShard.resize(topo.numNodes());
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        map.nodeShard[n] = map.switchShard[topo.switchOf(n)];
    return map;
}

std::uint32_t
resolveShardCount(std::uint32_t requested, std::uint32_t racks)
{
    std::uint32_t want = requested;
    if (want == 0) {
        const char *env = std::getenv("NETSPARSE_SIM_SHARDS");
        if (!env || !*env) {
            want = 1;
        } else if (!std::strcmp(env, "racks") ||
                   !std::strcmp(env, "auto")) {
            std::uint32_t cores = std::thread::hardware_concurrency();
            want = std::max<std::uint32_t>(1, std::min(racks, cores));
        } else {
            long v = std::strtol(env, nullptr, 10);
            ns_assert(v >= 1, "bad NETSPARSE_SIM_SHARDS: ", env);
            want = static_cast<std::uint32_t>(v);
        }
    }
    return std::clamp<std::uint32_t>(want, 1, std::max(1u, racks));
}

} // namespace netsparse
