#include "runtime/cluster.hh"

#include <algorithm>
#include <vector>

#include "runtime/job_scheduler.hh"
#include "sim/logging.hh"

namespace netsparse {

ClusterConfig
defaultClusterConfig(std::uint32_t nodes)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.nodesPerRack = std::min<std::uint32_t>(16, nodes);
    cfg.numSpines = 16;
    return cfg;
}

ClusterSim::ClusterSim(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.eventBatching) {
        if (cfg_.link.batchMaxPackets <= 1)
            cfg_.link.batchMaxPackets = 16;
        cfg_.snic.batchedServerReads = true;
    }
    ns_assert(cfg_.numNodes >= 1, "cluster needs nodes");
    ns_assert(!cfg_.features.switchCache || cfg_.features.concatSwitch,
              "the Property Cache lives in the middle pipes; enable "
              "switch concatenation with it");
}

GatherRunResult
ClusterSim::runGather(const Csr &m, const Partition1D &part,
                      std::uint32_t k)
{
    ns_assert(m.rows == m.cols, "distributed kernels use square matrices");
    ns_assert(part.numParts() == cfg_.numNodes,
              "partition has ", part.numParts(), " parts for ",
              cfg_.numNodes, " nodes");
    // Slice the per-node row-scan streams out of the global matrix;
    // the workload overload is the real entry point (paper-scale runs
    // reach it without ever holding a global matrix).
    GatherWorkload work;
    work.numIdxs = m.cols;
    work.part = part;
    work.streams.reserve(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid)
        work.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[part.end(nid)]);
    return runGather(std::move(work), k);
}

GatherRunResult
ClusterSim::runGather(GatherWorkload &&work, std::uint32_t k)
{
    // The single-job cluster is the degenerate schedule: one tenant,
    // no background traffic. The scheduler takes the exact legacy
    // construction path for it (runtime/job_scheduler.hh), so the
    // result and every observability document are unchanged.
    JobScheduler sched(cfg_);
    std::vector<JobSpec> jobs(1);
    jobs[0].work = std::move(work);
    jobs[0].k = k;
    MultiJobResult mr = sched.run(std::move(jobs));
    return std::move(mr.jobs[0]);
}

void
GatherRunResult::exportStats(StatRegistry &reg) const
{
    reg.set("cluster.commTicks", static_cast<double>(commTicks));
    reg.set("cluster.tailNode", static_cast<double>(tailNode));
    reg.set("cluster.totalWireBytes",
            static_cast<double>(totalWireBytes));
    reg.set("cluster.avgPrsPerPacket", avgPrsPerPacket);
    reg.set("cluster.cacheLookups", static_cast<double>(cacheLookups));
    reg.set("cluster.cacheHits", static_cast<double>(cacheHits));
    reg.set("cluster.cacheHitRate", cacheHitRate());
    reg.set("cluster.prsServedByCache",
            static_cast<double>(prsServedByCache));
    reg.set("cluster.tailGoodput", tailGoodput);
    reg.set("cluster.tailLineUtil", tailLineUtil);

    // Resilience keys, gated on their subsystems so a lossless,
    // retry-off run exports the exact pre-resilience document.
    if (recoveryEnabled) {
        reg.set("cluster.recovery.retransmits",
                static_cast<double>(sumNodes(
                    [](const NodeRunStats &n) { return n.retransmits; })));
        reg.set("cluster.recovery.nacks",
                static_cast<double>(sumNodes(
                    [](const NodeRunStats &n) { return n.nacks; })));
        reg.set("cluster.recovery.corruptDropped",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.corruptDropped;
                })));
        reg.set("cluster.recovery.duplicatesSuppressed",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.duplicatesSuppressed;
                })));
        reg.set("cluster.recovery.retriesExhausted",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.retriesExhausted;
                })));
        reg.set("cluster.recovery.watchdogFailures",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.watchdogFailures;
                })));
        reg.set("cluster.recovery.commandRetries",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.commandRetries;
                })));
        reg.set("cluster.recovery.permanentFailures",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.permanentFailures;
                })));
        reg.set("cluster.recovery.cachePoisonRejected",
                static_cast<double>(cachePoisonRejected));
        reg.set("cluster.recovery.cacheBypasses",
                static_cast<double>(cacheBypasses));
    }
    if (faultsEnabled) {
        reg.set("cluster.faults.packetsDropped",
                static_cast<double>(packetsDropped));
        reg.set("cluster.faults.corruptedPrs",
                static_cast<double>(corruptedPrs));
        reg.set("cluster.faults.linkDownDrops",
                static_cast<double>(linkDownDrops));
        reg.set("cluster.faults.linkDownTicks",
                static_cast<double>(linkDownTicks));
        reg.set("cluster.faults.degradedTicks",
                static_cast<double>(degradedTicks));
    }

    double prs = 0, filtered = 0, coalesced = 0, idxs = 0;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeRunStats &st = nodes[n];
        std::string prefix = "node" + std::to_string(n) + ".";
        reg.set(prefix + "finishTicks",
                static_cast<double>(st.finishTick));
        reg.set(prefix + "prsIssued", static_cast<double>(st.prsIssued));
        reg.set(prefix + "filtered", static_cast<double>(st.filtered));
        reg.set(prefix + "coalesced", static_cast<double>(st.coalesced));
        reg.set(prefix + "fcRate", st.fcRate());
        reg.set(prefix + "rxBytes", static_cast<double>(st.rxBytes));
        reg.set(prefix + "rxPackets", static_cast<double>(st.rxPackets));
        prs += static_cast<double>(st.prsIssued);
        filtered += static_cast<double>(st.filtered);
        coalesced += static_cast<double>(st.coalesced);
        idxs += static_cast<double>(st.idxsProcessed);
    }
    reg.set("cluster.prsIssued", prs);
    reg.set("cluster.filtered", filtered);
    reg.set("cluster.coalesced", coalesced);
    reg.set("cluster.idxsProcessed", idxs);

    // Distribution of node finish times (load imbalance, Figure 19).
    reg.setHistogram("cluster.finishTimeNs", finishTimeHistogram());
}

Histogram
GatherRunResult::finishTimeHistogram() const
{
    Histogram finish(0.0, ticks::toNs(commTicks) + 1.0, 20);
    for (const auto &st : nodes)
        finish.sample(ticks::toNs(st.finishTick));
    return finish;
}

} // namespace netsparse
