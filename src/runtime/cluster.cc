#include "runtime/cluster.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/shard_map.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard_engine.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"

namespace netsparse {

ClusterConfig
defaultClusterConfig(std::uint32_t nodes)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.nodesPerRack = std::min<std::uint32_t>(16, nodes);
    cfg.numSpines = 16;
    return cfg;
}

ClusterSim::ClusterSim(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.eventBatching) {
        if (cfg_.link.batchMaxPackets <= 1)
            cfg_.link.batchMaxPackets = 16;
        cfg_.snic.batchedServerReads = true;
    }
    ns_assert(cfg_.numNodes >= 1, "cluster needs nodes");
    ns_assert(!cfg_.features.switchCache || cfg_.features.concatSwitch,
              "the Property Cache lives in the middle pipes; enable "
              "switch concatenation with it");
}

GatherRunResult
ClusterSim::runGather(const Csr &m, const Partition1D &part,
                      std::uint32_t k)
{
    ns_assert(m.rows == m.cols, "distributed kernels use square matrices");
    ns_assert(part.numParts() == cfg_.numNodes,
              "partition has ", part.numParts(), " parts for ",
              cfg_.numNodes, " nodes");
    // Slice the per-node row-scan streams out of the global matrix;
    // the workload overload is the real entry point (paper-scale runs
    // reach it without ever holding a global matrix).
    GatherWorkload work;
    work.numIdxs = m.cols;
    work.part = part;
    work.streams.reserve(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid)
        work.streams.emplace_back(
            m.colIdx.begin() + m.rowPtr[part.begin(nid)],
            m.colIdx.begin() + m.rowPtr[part.end(nid)]);
    return runGather(std::move(work), k);
}

GatherRunResult
ClusterSim::runGather(GatherWorkload &&work, std::uint32_t k)
{
    const Partition1D &part = work.part;
    ns_assert(part.numParts() == cfg_.numNodes,
              "partition has ", part.numParts(), " parts for ",
              cfg_.numNodes, " nodes");
    ns_assert(work.streams.size() == cfg_.numNodes,
              "workload has ", work.streams.size(), " streams for ",
              cfg_.numNodes, " nodes");
    ns_assert(work.numIdxs >= part.total(),
              "property space smaller than the partition");
    const std::uint32_t prop_bytes = 4 * k;

    // --- Topology ---
    Topology topo = [&] {
        switch (cfg_.topology) {
          case TopologyKind::LeafSpine: {
            std::uint32_t racks =
                (cfg_.numNodes + cfg_.nodesPerRack - 1) /
                cfg_.nodesPerRack;
            return Topology::leafSpine(racks, cfg_.nodesPerRack,
                                       cfg_.numSpines);
          }
          case TopologyKind::HyperX:
            // 4x4x2 switches, 4 hosts each, width-4 trunks (Section 9.6)
            ns_assert(cfg_.numNodes == 128,
                      "the HyperX configuration is 128 nodes");
            return Topology::hyperX(4, 4, 2, 4, 4);
          case TopologyKind::Dragonfly:
            ns_assert(cfg_.numNodes == 128,
                      "the Dragonfly configuration is 128 nodes");
            return Topology::dragonfly(4, 8, 4, 4);
        }
        ns_panic("unknown topology kind");
    }();
    ns_assert(topo.numNodes() == cfg_.numNodes, "topology node mismatch");

    // --- Shard map and per-shard event queues ---
    // Rack-granular partition: a ToR plus its rack's hosts and SNICs
    // share one queue; a zero-latency link would leave no lookahead,
    // so such configurations fall back to a single shard.
    std::uint32_t shard_request =
        resolveShardCount(cfg_.simShards, topo.numTors());
    if (cfg_.link.latency == 0)
        shard_request = 1;
    ShardMap shard_map = ShardMap::build(topo, shard_request);
    const std::uint32_t num_shards = shard_map.numShards;

    std::vector<std::unique_ptr<EventQueue>> queues;
    queues.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s)
        queues.push_back(std::make_unique<EventQueue>());
    auto node_queue = [&](NodeId n) -> EventQueue & {
        return *queues[shard_map.shardOfNode(n)];
    };
    auto switch_queue = [&](SwitchId s) -> EventQueue & {
        return *queues[shard_map.shardOfSwitch(s)];
    };

    // --- SNICs ---
    SnicConfig snic_cfg = cfg_.snic;
    snic_cfg.proto = cfg_.proto;
    snic_cfg.rigUnit.filterEnabled = cfg_.features.filter;
    snic_cfg.rigUnit.coalesceEnabled = cfg_.features.coalesce;
    Clock snic_clock(snic_cfg.rigUnit.clockHz);
    snic_cfg.concat.proto = cfg_.proto;
    snic_cfg.concat.enabled = cfg_.features.concatNic;
    snic_cfg.concat.delay = snic_clock.cycles(cfg_.nicConcatDelayCycles);
    snic_cfg.concat.virtualized = cfg_.virtualizedCqs;
    // A lossy fabric needs the reliable-PR layer to terminate; the
    // user may also enable it explicitly on a lossless one.
    if (cfg_.faults.enabled())
        snic_cfg.rigUnit.retry.enabled = true;
    const bool recovery_enabled = snic_cfg.rigUnit.retry.enabled;

    auto owner_of = [&part](PropIdx idx) {
        return part.ownerOf(static_cast<std::uint32_t>(idx));
    };

    // Interval telemetry and the PR latency lifecycle share one gate:
    // both cost nothing (no collectors, no stamping, a dead probe
    // branch in the dispatch loop) unless the sink is enabled.
    const bool telemetry_on =
        TelemetrySink::instance().enabled() && cfg_.telemetryInterval > 0;

    std::vector<std::unique_ptr<Snic>> snics;
    snics.reserve(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        snics.push_back(std::make_unique<Snic>(
            node_queue(nid), snic_cfg, nid, owner_of, work.numIdxs,
            "node" + std::to_string(nid) + ".snic"));
        snics.back()->setOwnerPartition(part);
        if (telemetry_on)
            snics.back()->enablePrLatency();
    }

    // --- Switches ---
    Clock switch_clock(cfg_.switchClockHz);
    std::vector<std::unique_ptr<Switch>> switches;
    switches.reserve(topo.numSwitches());
    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        SwitchConfig sw_cfg;
        sw_cfg.proto = cfg_.proto;
        sw_cfg.pipelineLatency = cfg_.switchPipelineLatency;
        sw_cfg.pipeClockHz = cfg_.switchClockHz;
        bool tor_extensions =
            topo.isTor(sid) &&
            (cfg_.features.concatSwitch || cfg_.features.switchCache);
        sw_cfg.netsparseEnabled = tor_extensions;
        sw_cfg.concat.proto = cfg_.proto;
        sw_cfg.concat.enabled = cfg_.features.concatSwitch;
        sw_cfg.concat.delay =
            switch_clock.cycles(cfg_.switchConcatDelayCycles);
        sw_cfg.concat.virtualized = cfg_.virtualizedCqs;
        sw_cfg.cache = cfg_.cacheGeometry;
        sw_cfg.cache.totalBytes =
            cfg_.features.switchCache ? cfg_.propertyCacheBytes : 0;
        sw_cfg.cachePerPipe = cfg_.cachePerPipe;
        // Corrupt responses must not poison the rack caches.
        sw_cfg.verifyResponses = cfg_.faults.enabled();
        switches.push_back(std::make_unique<Switch>(
            switch_queue(sid), sw_cfg, sid,
            "switch" + std::to_string(sid)));
    }
    // Stats/telemetry identity of each switch ("tor<i>"/"spine<j>",
    // numbered in construction order like the stats document).
    std::vector<std::string> switch_names(topo.numSwitches());
    {
        std::uint32_t tors = 0, spines = 0;
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid)
            switch_names[sid] =
                topo.isTor(sid) ? "tor" + std::to_string(tors++)
                                : "spine" + std::to_string(spines++);
    }

    // --- Links ---
    // One directed link per (switch port, direction) plus one egress
    // link per host NIC. Ordering ids are assigned in construction
    // order - a per-run-deterministic numbering that forms the
    // same-tick arrival tie-break at every sink, which is what keeps
    // execution identical across shard counts.
    //
    // Cross-shard links (always switch-to-switch under the rack
    // partition) deposit deliveries into per-(src, dst) shard
    // mailboxes; their minimum latency is the engine's lookahead.
    struct alignas(64) PaddedMailbox
    {
        DeliveryMailbox box; // padded: neighbors belong to other threads
    };
    std::vector<std::vector<PaddedMailbox>> mailboxes(num_shards);
    for (auto &row : mailboxes)
        row = std::vector<PaddedMailbox>(num_shards);
    Tick lookahead = maxTick;
    std::uint32_t next_link_id = 0;
    std::vector<std::unique_ptr<Link>> links;
    // links[i] is sampled by the shard whose events drive it: its
    // sender's (telemetry registration below).
    std::vector<std::uint32_t> link_shards;

    auto bind_link = [&](Link &link, std::uint32_t src_shard,
                         std::uint32_t dst_shard, Tick latency) {
        link.setOrderingId(next_link_id++);
        link_shards.push_back(src_shard);
        // The injector keys its fault stream on the ordering id just
        // assigned, so the injected pattern is shard-count-invariant.
        if (cfg_.faults.enabled())
            link.configureFaults(cfg_.faults);
        // Fidelity after faults: the regime decision is per send, so a
        // faulted link may still fast-forward its uncongested spans.
        link.configureFidelity(cfg_.fidelity, cfg_.flow);
        if (src_shard != dst_shard) {
            link.setCrossShardOutbox(
                &mailboxes[src_shard][dst_shard].box);
            lookahead = std::min(lookahead, latency);
        }
    };

    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        const auto &ports = topo.ports(sid);
        for (std::uint32_t p = 0; p < ports.size(); ++p) {
            const PortPeer &peer = ports[p];
            LinkConfig lc = cfg_.link;
            lc.bandwidth = Bandwidth::fromGBps(
                cfg_.link.bandwidth.bytesPerSecond() / 1e9 *
                peer.bwMultiplier);
            PacketSink *sink = nullptr;
            std::uint32_t sink_port = 0;
            std::uint32_t dst_shard = 0;
            bool to_host = false;
            if (peer.kind == PortPeer::Kind::Host) {
                sink = snics[peer.id].get();
                to_host = true;
                dst_shard = shard_map.shardOfNode(peer.id);
                ns_assert(dst_shard == shard_map.shardOfSwitch(sid),
                          "host severed from its ToR by the partition");
            } else {
                sink = switches[peer.id].get();
                sink_port = peer.peerPort;
                dst_shard = shard_map.shardOfSwitch(peer.id);
            }
            links.push_back(std::make_unique<Link>(
                switch_queue(sid), lc, cfg_.proto, sink, sink_port,
                "sw" + std::to_string(sid) + ".p" + std::to_string(p)));
            bind_link(*links.back(), shard_map.shardOfSwitch(sid),
                      dst_shard, lc.latency);
            switches[sid]->attachPort(p, links.back().get(), to_host);
        }
    }
    // Host egress links (NIC -> ToR); always intra-shard.
    std::vector<Link *> nic_egress(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        SwitchId tor = topo.switchOf(nid);
        links.push_back(std::make_unique<Link>(
            node_queue(nid), cfg_.link, cfg_.proto, switches[tor].get(),
            topo.hostPort(nid), "node" + std::to_string(nid) + ".tx"));
        bind_link(*links.back(), shard_map.shardOfNode(nid),
                  shard_map.shardOfSwitch(tor), cfg_.link.latency);
        nic_egress[nid] = links.back().get();
        snics[nid]->attachEgress(links.back().get());
    }
    ns_assert(num_shards == 1 || (lookahead > 0 && lookahead != maxTick),
              "multi-shard run without a positive cross-shard latency");

    // --- Routing and per-kernel configuration ---
    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        Switch *sw = switches[sid].get();
        sw->setRouteFn([&topo, sid](NodeId dest) {
            return topo.route(sid, dest);
        });
        sw->configureForKernel(prop_bytes);
    }
    for (auto &snic : snics)
        snic->configureForKernel();

    // --- Hosts ---
    std::vector<std::unique_ptr<HostNode>> hosts;
    hosts.reserve(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        hosts.push_back(std::make_unique<HostNode>(
            node_queue(nid), cfg_.host, *snics[nid],
            std::move(work.streams[nid]), prop_bytes));
    }
    // Completion is read off HostNode::done() after the run; a shared
    // counter would be written concurrently from several shards.
    for (auto &h : hosts)
        h->start([] {});

    // --- Interval telemetry ---
    // One probe per shard; every entity is registered on the shard
    // whose events drive its state, under a cluster-wide order key
    // (links by ordering id, then switches, then RIGs) so the merged
    // document is independent of the shard count. Samplers read only
    // their own entity, and boundary samples observe exactly the
    // events with tick < boundary (sim/telemetry.hh), so every series
    // is byte-identical at 1/2/4 shards.
    const Tick tele_interval = cfg_.telemetryInterval;
    std::vector<std::unique_ptr<TelemetryProbe>> probes;
    if (telemetry_on) {
        probes.reserve(num_shards);
        for (std::uint32_t s = 0; s < num_shards; ++s) {
            probes.push_back(
                std::make_unique<TelemetryProbe>(tele_interval));
            probes.back()->attachTo(*queues[s]);
        }
        const std::size_t num_links = links.size();
        for (std::size_t i = 0; i < num_links; ++i) {
            Link *lk = links[i].get();
            probes[link_shards[i]]->addEntity(
                i, lk->name(), "link", {"utilization", "queuedBytes"},
                [lk, tele_interval, last_busy = Tick{0}](
                    Tick boundary, std::vector<double> &out) mutable {
                    // Wire time committed this interval over the
                    // interval; a burst that books the wire past the
                    // boundary can push it above 1 (the backlog then
                    // shows up in queuedBytes).
                    Tick busy = lk->busyTicks();
                    out.push_back(static_cast<double>(busy - last_busy) /
                                  static_cast<double>(tele_interval));
                    last_busy = busy;
                    out.push_back(lk->queuedBytesAt(boundary));
                });
        }
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
            Switch *sw = switches[sid].get();
            probes[shard_map.shardOfSwitch(sid)]->addEntity(
                num_links + sid, switch_names[sid], "switch",
                {"outQueueBytes", "cacheHits", "cacheMisses",
                 "cacheInserts"},
                [sw, last_hits = std::uint64_t{0},
                 last_lookups = std::uint64_t{0},
                 last_inserts = std::uint64_t{0}](
                    Tick boundary, std::vector<double> &out) mutable {
                    double backlog = 0.0;
                    for (const Link *l : sw->outLinks())
                        backlog += l->queuedBytesAt(boundary);
                    out.push_back(backlog);
                    std::uint64_t hits = sw->cacheHits();
                    std::uint64_t lookups = sw->cacheLookups();
                    std::uint64_t inserts = sw->cacheInserts();
                    out.push_back(
                        static_cast<double>(hits - last_hits));
                    out.push_back(static_cast<double>(
                        (lookups - last_lookups) - (hits - last_hits)));
                    out.push_back(
                        static_cast<double>(inserts - last_inserts));
                    last_hits = hits;
                    last_lookups = lookups;
                    last_inserts = inserts;
                });
        }
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            Snic *sn = snics[nid].get();
            probes[shard_map.shardOfNode(nid)]->addEntity(
                num_links + topo.numSwitches() + nid,
                "node" + std::to_string(nid) + ".rig", "rig",
                {"inflightPrs", "retransmits"},
                [sn, last_retx = std::uint64_t{0}](
                    Tick, std::vector<double> &out) mutable {
                    out.push_back(
                        static_cast<double>(sn->inflightPrs()));
                    std::uint64_t retx = sn->totalRetransmits();
                    out.push_back(static_cast<double>(retx - last_retx));
                    last_retx = retx;
                });
        }
    }

    // --- Run ---
    Tick final_tick = 0;
    std::uint64_t executed_events = 0;
    std::uint64_t epochs = 0;
    if (num_shards == 1) {
        queues[0]->runUntil(cfg_.maxSimTime);
        final_tick = queues[0]->now();
        executed_events = queues[0]->executedEvents();
    } else {
        std::vector<ShardEngine::Shard> shards(num_shards);
        for (std::uint32_t d = 0; d < num_shards; ++d) {
            shards[d].eq = queues[d].get();
            // Drain inbound mailboxes in fixed source order; the
            // banded delivery keys then restore the canonical event
            // order inside the destination queue.
            shards[d].drainInbox = [&mailboxes, &queues, d,
                                    num_shards] {
                EventQueue &dst = *queues[d];
                for (std::uint32_t s = 0; s < num_shards; ++s) {
                    mailboxes[s][d].box.drain(
                        [&dst](PendingDelivery &&rec) {
                            dst.scheduleDelivery(
                                rec.when, rec.key,
                                [sink = rec.sink, port = rec.port,
                                 fused = rec.fused,
                                 p = std::move(rec.pkt)]() mutable {
                                    if (fused)
                                        sink->fusedDeliver(std::move(p),
                                                           port);
                                    else
                                        sink->receivePacket(std::move(p),
                                                            port);
                                });
                        });
                }
            };
        }
        ShardEngine::Result res =
            ShardEngine::run(std::move(shards), lookahead,
                             cfg_.maxSimTime);
        final_tick = res.finalTick;
        executed_events = res.executedEvents;
        epochs = res.epochs;
    }
    std::uint32_t done_count = 0;
    for (const auto &h : hosts)
        done_count += h->done() ? 1 : 0;
    if (done_count != cfg_.numNodes) {
        ns_fatal("gather deadlocked or exceeded the simulation cap: ",
                 done_count, "/", cfg_.numNodes, " nodes finished by ",
                 ticks::toNs(final_tick), " ns");
    }

    // --- Merge telemetry ---
    if (telemetry_on) {
        // Boundaries past each shard's last event never fired in the
        // dispatch loop; sample them against the global final tick so
        // every probe ends with the same timeline.
        for (auto &p : probes)
            p->flushUntil(final_tick);
        const std::size_t samples = probes[0]->numSamples();
        for (const auto &p : probes)
            ns_assert(p->numSamples() == samples,
                      "telemetry probes disagree on the sample count");
        TelemetrySink::Run &trun = TelemetrySink::instance().beginRun();
        trun.intervalTicks = tele_interval;
        trun.finalTick = final_tick;
        trun.sampleTicks.reserve(samples);
        for (std::size_t i = 1; i <= samples; ++i)
            trun.sampleTicks.push_back(i * tele_interval);
        for (auto &p : probes)
            for (auto &e : p->takeEntities())
                trun.entities.push_back(std::move(e));
        std::sort(trun.entities.begin(), trun.entities.end(),
                  [](const TelemetryEntity &a, const TelemetryEntity &b) {
                      return a.order < b.order;
                  });
        // Per-shard event throughput is the one inherently
        // shard-dependent series; the document carries the cluster-wide
        // sum as a single trailing "sim" entity (exact: the counts are
        // integers far below 2^53).
        TelemetryEntity sim;
        sim.order = links.size() + topo.numSwitches() + cfg_.numNodes;
        sim.id = "sim";
        sim.kind = "sim";
        sim.seriesNames = {"events"};
        sim.series.emplace_back(samples, 0.0);
        for (const auto &p : probes) {
            const auto &ev = p->eventsPerInterval();
            for (std::size_t i = 0; i < samples; ++i)
                sim.series[0][i] += ev[i];
        }
        trun.entities.push_back(std::move(sim));
    }

    // --- Collect results ---
    GatherRunResult r;
    r.nodes.resize(cfg_.numNodes);
    std::uint64_t total_rx_prs = 0, total_rx_packets = 0;
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        NodeRunStats &st = r.nodes[nid];
        st.finishTick = hosts[nid]->finishTick();
        RigClientStats cs = snics[nid]->aggregateClientStats();
        st.idxsProcessed = cs.idxsProcessed;
        st.localIdxs = cs.localIdxs;
        st.prsIssued = cs.prsIssued;
        st.filtered = cs.filtered;
        st.coalesced = cs.coalesced;
        st.watchdogFailures = cs.watchdogFailures;
        st.pendingStalls = cs.pendingStalls;
        st.txStalls = cs.txStalls;
        st.commandsIssued = hosts[nid]->commandsIssued();
        st.retransmits = cs.retransmits;
        st.nacks = cs.nacks;
        st.corruptDropped = cs.corruptDropped;
        st.duplicatesSuppressed = cs.duplicatesSuppressed;
        st.retriesExhausted = cs.retriesExhausted;
        st.commandRetries = hosts[nid]->commandRetries();
        st.permanentFailures = hosts[nid]->permanentFailures();
        st.rxPackets = snics[nid]->rxPackets();
        st.rxBytes = snics[nid]->rxBytes();
        st.rxPayloadBytes = snics[nid]->rxPayloadBytes();
        st.rxResponses = snics[nid]->rxResponses();
        st.rxReads = snics[nid]->rxReads();
        total_rx_prs += st.rxResponses + st.rxReads;
        total_rx_packets += st.rxPackets;
        if (st.finishTick > r.commTicks) {
            r.commTicks = st.finishTick;
            r.tailNode = nid;
        }
    }
    r.recoveryEnabled = recovery_enabled;
    r.faultsEnabled = cfg_.faults.enabled();
    r.fidelity = cfg_.fidelity;
    for (const auto &l : links) {
        r.totalWireBytes += l->bytesSent();
        r.packetsDropped += l->packetsDropped();
        r.flowPackets += l->flowPackets();
        r.flowDemotions += l->flowDemotions();
        if (const LinkFaultInjector *fi = l->faults()) {
            r.corruptedPrs += fi->stats().corruptedPrs;
            r.linkDownDrops += fi->stats().linkDownDrops;
            r.linkDownTicks += fi->stats().linkDownTicks;
            r.degradedTicks += fi->stats().degradedTicks;
        }
    }
    for (const auto &sw : switches) {
        r.cacheLookups += sw->cacheLookups();
        r.cacheHits += sw->cacheHits();
        r.prsServedByCache += sw->prsServedByCache();
        r.cachePoisonRejected += sw->poisonRejected();
        r.cacheBypasses += sw->cacheBypasses();
    }
    r.avgPrsPerPacket =
        total_rx_packets ? static_cast<double>(total_rx_prs) /
                               total_rx_packets
                         : 0.0;
    r.executedEvents = executed_events;
    r.finalTick = final_tick;
    r.simShards = num_shards;
    r.lookaheadTicks = num_shards > 1 ? lookahead : 0;
    r.epochs = epochs;
    if (r.commTicks > 0) {
        double line_bpp = cfg_.link.bandwidth.bytesPerPs();
        const NodeRunStats &tail = r.tail();
        r.tailLineUtil = static_cast<double>(tail.rxBytes) /
                         (static_cast<double>(r.commTicks) * line_bpp);
        r.tailGoodput = static_cast<double>(tail.rxPayloadBytes) /
                        (static_cast<double>(r.commTicks) * line_bpp);
    }

    // --- Detailed observability snapshot (--stats-json) ---
    // Deposited while the components are still alive, so the snapshot
    // carries per-RIG-unit, per-concatenator and per-switch-cache
    // counters that GatherRunResult does not retain.
    if (StatsExport::instance().enabled()) {
        StatRegistry &reg = StatsExport::instance().beginRun();
        r.exportStats(reg);
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            std::string node = "node" + std::to_string(nid);
            snics[nid]->exportStats(reg, node + ".snic");
            const Link *tx = nic_egress[nid];
            reg.set(node + ".tx.packets",
                    static_cast<double>(tx->packetsSent()));
            reg.set(node + ".tx.bytes",
                    static_cast<double>(tx->bytesSent()));
            reg.set(node + ".tx.payloadBytes",
                    static_cast<double>(tx->payloadBytesSent()));
            reg.set(node + ".tx.busyTicks",
                    static_cast<double>(tx->busyTicks()));
            reg.set(node + ".tx.utilization", tx->utilization());
        }
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid)
            switches[sid]->exportStats(reg, switch_names[sid]);
        reg.set("sim.executedEvents",
                static_cast<double>(executed_events));
        reg.set("sim.finalTick", static_cast<double>(final_tick));
        if (telemetry_on) {
            // Cluster-wide PR latency decomposition; per-node averages
            // ride each SNIC's own exportStats above. Gated so the
            // telemetry-off document stays byte-identical.
            PrLatencyStats agg;
            for (const auto &sn : snics)
                agg.merge(*sn->prLatency());
            agg.exportStats(reg, "cluster.prLatency");
        }
        if (cfg_.memoryStats) {
            // Per-shard arena accounting (sim/arena.hh). Shard workers
            // were joined above, so their arenas have flushed into the
            // registry; fold in the calling thread's live arenas (the
            // sequential engine's buffers live here). Gated: these are
            // process-lifetime host diagnostics, outside the
            // byte-identical stats contract (see ClusterConfig).
            ArenaStats mem = ArenaStatsRegistry::instance().totals();
            mem.add(BufferArena<Packet>::local().stats());
            mem.add(BufferArena<PropertyRequest>::local().stats());
            reg.set("cluster.memory.arenaReservedBytes",
                    static_cast<double>(mem.reservedBytes));
            reg.set("cluster.memory.arenaHighWaterBytes",
                    static_cast<double>(mem.highWaterBytes));
            reg.set("cluster.memory.arenaPoolHits",
                    static_cast<double>(mem.poolHits));
            reg.set("cluster.memory.arenaPoolMisses",
                    static_cast<double>(mem.poolMisses));
        }
    }
    return r;
}

void
GatherRunResult::exportStats(StatRegistry &reg) const
{
    reg.set("cluster.commTicks", static_cast<double>(commTicks));
    reg.set("cluster.tailNode", static_cast<double>(tailNode));
    reg.set("cluster.totalWireBytes",
            static_cast<double>(totalWireBytes));
    reg.set("cluster.avgPrsPerPacket", avgPrsPerPacket);
    reg.set("cluster.cacheLookups", static_cast<double>(cacheLookups));
    reg.set("cluster.cacheHits", static_cast<double>(cacheHits));
    reg.set("cluster.cacheHitRate", cacheHitRate());
    reg.set("cluster.prsServedByCache",
            static_cast<double>(prsServedByCache));
    reg.set("cluster.tailGoodput", tailGoodput);
    reg.set("cluster.tailLineUtil", tailLineUtil);

    // Resilience keys, gated on their subsystems so a lossless,
    // retry-off run exports the exact pre-resilience document.
    if (recoveryEnabled) {
        reg.set("cluster.recovery.retransmits",
                static_cast<double>(sumNodes(
                    [](const NodeRunStats &n) { return n.retransmits; })));
        reg.set("cluster.recovery.nacks",
                static_cast<double>(sumNodes(
                    [](const NodeRunStats &n) { return n.nacks; })));
        reg.set("cluster.recovery.corruptDropped",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.corruptDropped;
                })));
        reg.set("cluster.recovery.duplicatesSuppressed",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.duplicatesSuppressed;
                })));
        reg.set("cluster.recovery.retriesExhausted",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.retriesExhausted;
                })));
        reg.set("cluster.recovery.watchdogFailures",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.watchdogFailures;
                })));
        reg.set("cluster.recovery.commandRetries",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.commandRetries;
                })));
        reg.set("cluster.recovery.permanentFailures",
                static_cast<double>(sumNodes([](const NodeRunStats &n) {
                    return n.permanentFailures;
                })));
        reg.set("cluster.recovery.cachePoisonRejected",
                static_cast<double>(cachePoisonRejected));
        reg.set("cluster.recovery.cacheBypasses",
                static_cast<double>(cacheBypasses));
    }
    if (faultsEnabled) {
        reg.set("cluster.faults.packetsDropped",
                static_cast<double>(packetsDropped));
        reg.set("cluster.faults.corruptedPrs",
                static_cast<double>(corruptedPrs));
        reg.set("cluster.faults.linkDownDrops",
                static_cast<double>(linkDownDrops));
        reg.set("cluster.faults.linkDownTicks",
                static_cast<double>(linkDownTicks));
        reg.set("cluster.faults.degradedTicks",
                static_cast<double>(degradedTicks));
    }

    double prs = 0, filtered = 0, coalesced = 0, idxs = 0;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeRunStats &st = nodes[n];
        std::string prefix = "node" + std::to_string(n) + ".";
        reg.set(prefix + "finishTicks",
                static_cast<double>(st.finishTick));
        reg.set(prefix + "prsIssued", static_cast<double>(st.prsIssued));
        reg.set(prefix + "filtered", static_cast<double>(st.filtered));
        reg.set(prefix + "coalesced", static_cast<double>(st.coalesced));
        reg.set(prefix + "fcRate", st.fcRate());
        reg.set(prefix + "rxBytes", static_cast<double>(st.rxBytes));
        reg.set(prefix + "rxPackets", static_cast<double>(st.rxPackets));
        prs += static_cast<double>(st.prsIssued);
        filtered += static_cast<double>(st.filtered);
        coalesced += static_cast<double>(st.coalesced);
        idxs += static_cast<double>(st.idxsProcessed);
    }
    reg.set("cluster.prsIssued", prs);
    reg.set("cluster.filtered", filtered);
    reg.set("cluster.coalesced", coalesced);
    reg.set("cluster.idxsProcessed", idxs);

    // Distribution of node finish times (load imbalance, Figure 19).
    reg.setHistogram("cluster.finishTimeNs", finishTimeHistogram());
}

Histogram
GatherRunResult::finishTimeHistogram() const
{
    Histogram finish(0.0, ticks::toNs(commTicks) + 1.0, 20);
    for (const auto &st : nodes)
        finish.sample(ticks::toNs(st.finishTick));
    return finish;
}

} // namespace netsparse
