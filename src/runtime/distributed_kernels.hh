/**
 * @file
 * Distributed sparse kernel executors.
 *
 * These combine the three layers of the repository into the "user
 * facing" operation the paper accelerates:
 *
 *  - functionally execute SpMM / SpMV / SDDMM with the operands 1-D
 *    partitioned across the cluster (results are bit-identical to the
 *    single-node reference kernels - writes are always local, reads of
 *    remote input properties are the gathers);
 *  - simulate the communication phase of every iteration through the
 *    full NetSparse hardware stack (ClusterSim), so each iteration
 *    yields both the numeric output and the cluster timing;
 *  - support multi-iteration kernels (Section 2.1): the output property
 *    array of one iteration becomes the input of the next, the Idx
 *    Filters are cleared and the Property Caches are re-configured by
 *    the control plane between iterations.
 */

#ifndef NETSPARSE_RUNTIME_DISTRIBUTED_KERNELS_HH
#define NETSPARSE_RUNTIME_DISTRIBUTED_KERNELS_HH

#include <cstdint>
#include <vector>

#include "runtime/cluster.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** Result of a (multi-iteration) distributed kernel execution. */
struct DistributedKernelResult
{
    /** The final output property array (rows x K, row-major). */
    std::vector<float> output;
    /** Communication results, one per executed iteration. */
    std::vector<GatherRunResult> iterations;

    /** Total simulated communication time across iterations. */
    Tick
    totalCommTicks() const
    {
        Tick t = 0;
        for (const auto &it : iterations)
            t += it.commTicks;
        return t;
    }
};

/**
 * Distributed SpMM executor: Y = A * X per iteration, with Y feeding
 * the next iteration's X.
 */
class DistributedSpmm
{
  public:
    /**
     * @param cfg cluster to simulate (numNodes must match @p part).
     * @param a the square sparse matrix (shared, must outlive this).
     * @param part 1-D partition of rows/properties over the nodes.
     * @param k property width in 4-byte elements.
     * @param simulate when false, skip the hardware simulation and only
     *        execute functionally (iterations[] stays empty).
     */
    DistributedSpmm(ClusterConfig cfg, const Csr &a,
                    const Partition1D &part, std::uint32_t k,
                    bool simulate = true);

    /** Run @p iterations iterations starting from @p x0 (cols x K). */
    DistributedKernelResult run(const std::vector<float> &x0,
                                std::uint32_t iterations = 1);

  private:
    ClusterConfig cfg_;
    const Csr &a_;
    const Partition1D &part_;
    std::uint32_t k_;
    bool simulate_;
};

/** One-iteration distributed SpMV (K = 1). */
DistributedKernelResult
distributedSpmv(ClusterConfig cfg, const Csr &a, const Partition1D &part,
                const std::vector<float> &x, bool simulate = true);

/**
 * Distributed SDDMM: out[i] = a.val[i] * dot(U[row(i)], V[col(i)]).
 * U is partitioned by rows (always local); V by columns (gathered).
 * @return per-nonzero values plus the gather's communication result.
 */
struct DistributedSddmmResult
{
    std::vector<float> values;
    std::vector<GatherRunResult> iterations;
};

DistributedSddmmResult
distributedSddmm(ClusterConfig cfg, const Csr &a, const Partition1D &part,
                 const std::vector<float> &u, const std::vector<float> &v,
                 std::uint32_t k, bool simulate = true);

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_DISTRIBUTED_KERNELS_HH
