#include "runtime/job_scheduler.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/shard_map.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard_engine.hh"
#include "sim/span.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sim/trace.hh"

namespace netsparse {

namespace {

/**
 * Per-node tenant demultiplexer: the sink of a host's downlink when
 * more than one virtual SNIC slice (or background traffic) shares the
 * node. Protocol packets dispatch to their tenant's slice in place (no
 * extra event, so packet timing matches the single-tenant sink); raw
 * background packets terminate here - they are pure load and carry
 * nothing deliverable.
 */
class TenantDemux : public PacketSink
{
  public:
    void attach(Snic *slice) { slices_.push_back(slice); }

    void
    receivePacket(Packet &&pkt, std::uint32_t in_port) override
    {
        if (pkt.rawBytes) {
            ++rawPackets_;
            rawBytes_ += pkt.rawBytes;
            return;
        }
        ns_assert(pkt.tenant < slices_.size(),
                  "packet for unknown tenant ", pkt.tenant);
        slices_[pkt.tenant]->receivePacket(std::move(pkt), in_port);
    }

    std::uint64_t rawPackets() const { return rawPackets_; }
    std::uint64_t rawBytes() const { return rawBytes_; }

  private:
    std::vector<Snic *> slices_;
    std::uint64_t rawPackets_ = 0;
    std::uint64_t rawBytes_ = 0;
};

/**
 * The per-tenant SLO document ("cluster.tenant<t>.*",
 * docs/observability.md): completion, goodput and work counters for
 * one job, keyed so concurrent jobs never collide in the registry.
 */
void
exportTenantStats(StatRegistry &reg, const std::string &prefix,
                  const GatherRunResult &r, Tick start_delay)
{
    reg.set(prefix + ".commTicks", static_cast<double>(r.commTicks));
    Tick duration =
        r.commTicks > start_delay ? r.commTicks - start_delay : 0;
    reg.set(prefix + ".durationTicks", static_cast<double>(duration));
    reg.set(prefix + ".startDelayTicks",
            static_cast<double>(start_delay));
    reg.set(prefix + ".tailNode", static_cast<double>(r.tailNode));
    reg.set(prefix + ".avgPrsPerPacket", r.avgPrsPerPacket);
    reg.set(prefix + ".prsServedByCache",
            static_cast<double>(r.prsServedByCache));
    reg.set(prefix + ".tailGoodput", r.tailGoodput);
    reg.set(prefix + ".tailLineUtil", r.tailLineUtil);
    double prs = 0, filtered = 0, coalesced = 0, idxs = 0;
    double rx_bytes = 0, rx_payload = 0, rx_packets = 0;
    for (const NodeRunStats &st : r.nodes) {
        prs += static_cast<double>(st.prsIssued);
        filtered += static_cast<double>(st.filtered);
        coalesced += static_cast<double>(st.coalesced);
        idxs += static_cast<double>(st.idxsProcessed);
        rx_bytes += static_cast<double>(st.rxBytes);
        rx_payload += static_cast<double>(st.rxPayloadBytes);
        rx_packets += static_cast<double>(st.rxPackets);
    }
    reg.set(prefix + ".prsIssued", prs);
    reg.set(prefix + ".filtered", filtered);
    reg.set(prefix + ".coalesced", coalesced);
    reg.set(prefix + ".idxsProcessed", idxs);
    reg.set(prefix + ".rxBytes", rx_bytes);
    reg.set(prefix + ".rxPayloadBytes", rx_payload);
    reg.set(prefix + ".rxPackets", rx_packets);
    reg.setHistogram(prefix + ".finishTimeNs", r.finishTimeHistogram());
}

} // namespace

JobScheduler::JobScheduler(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.eventBatching) {
        if (cfg_.link.batchMaxPackets <= 1)
            cfg_.link.batchMaxPackets = 16;
        cfg_.snic.batchedServerReads = true;
    }
    ns_assert(cfg_.numNodes >= 1, "cluster needs nodes");
    ns_assert(!cfg_.features.switchCache || cfg_.features.concatSwitch,
              "the Property Cache lives in the middle pipes; enable "
              "switch concatenation with it");
}

MultiJobResult
JobScheduler::run(std::vector<JobSpec> &&jobs,
                  const BackgroundTrafficConfig &bg)
{
    const auto T = static_cast<std::uint32_t>(jobs.size());
    ns_assert(T >= 1, "the scheduler needs at least one job");
    // A single job with no background traffic is the legacy cluster:
    // identical construction order, component names and stats
    // document, by design (see the header comment).
    const bool multi = T > 1 || bg.enabled();

    std::vector<std::uint32_t> prop_bytes(T);
    std::uint32_t max_prop_bytes = 0;
    for (std::uint32_t t = 0; t < T; ++t) {
        const JobSpec &job = jobs[t];
        ns_assert(job.work.part.numParts() == cfg_.numNodes,
                  "job ", t, ": partition has ",
                  job.work.part.numParts(), " parts for ", cfg_.numNodes,
                  " nodes");
        ns_assert(job.work.streams.size() == cfg_.numNodes,
                  "job ", t, ": workload has ", job.work.streams.size(),
                  " streams for ", cfg_.numNodes, " nodes");
        ns_assert(job.work.numIdxs >= job.work.part.total(),
                  "job ", t, ": property space smaller than the "
                  "partition");
        // The tenant id salts checksums and cache keys above bit 40.
        ns_assert(T == 1 || job.work.numIdxs <= (1ull << 40),
                  "job ", t, ": property space too large for "
                  "tenant-qualified keys");
        ns_assert(job.k >= 1, "job ", t, ": k must be positive");
        prop_bytes[t] = 4 * job.k;
        max_prop_bytes = std::max(max_prop_bytes, prop_bytes[t]);
    }

    // --- Topology ---
    Topology topo = [&] {
        switch (cfg_.topology) {
          case TopologyKind::LeafSpine: {
            std::uint32_t racks =
                (cfg_.numNodes + cfg_.nodesPerRack - 1) /
                cfg_.nodesPerRack;
            return Topology::leafSpine(racks, cfg_.nodesPerRack,
                                       cfg_.numSpines);
          }
          case TopologyKind::HyperX:
            // 4x4x2 switches, 4 hosts each, width-4 trunks (Section 9.6)
            ns_assert(cfg_.numNodes == 128,
                      "the HyperX configuration is 128 nodes");
            return Topology::hyperX(4, 4, 2, 4, 4);
          case TopologyKind::Dragonfly:
            ns_assert(cfg_.numNodes == 128,
                      "the Dragonfly configuration is 128 nodes");
            return Topology::dragonfly(4, 8, 4, 4);
        }
        ns_panic("unknown topology kind");
    }();
    ns_assert(topo.numNodes() == cfg_.numNodes, "topology node mismatch");

    // --- Shard map and per-shard event queues ---
    // Rack-granular partition: a ToR plus its rack's hosts and SNICs
    // share one queue; a zero-latency link would leave no lookahead,
    // so such configurations fall back to a single shard.
    std::uint32_t shard_request =
        resolveShardCount(cfg_.simShards, topo.numTors());
    if (cfg_.link.latency == 0)
        shard_request = 1;
    ShardMap shard_map = ShardMap::build(topo, shard_request);
    const std::uint32_t num_shards = shard_map.numShards;

    std::vector<std::unique_ptr<EventQueue>> queues;
    queues.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s)
        queues.push_back(std::make_unique<EventQueue>());

    // --- Span tracing (sim/span.hh) ---
    // One recorder per shard, reached through the shard's own queue;
    // the post-run merge restores one shard-count-invariant document.
    // An enabled sink with all-zero params (the NETSPARSE_SPANS_OUT
    // env path, where nothing touches ClusterConfig) falls back to the
    // representative 1/64 sample, matching the CLI default.
    const bool spans_on = SpanSink::instance().enabled();
    SpanParams span_params = cfg_.spans;
    if (spans_on && !span_params.enabled())
        span_params.sampleEvery = 64;
    std::vector<std::unique_ptr<SpanBuffer>> span_bufs;
    if (spans_on) {
        span_bufs.reserve(num_shards);
        for (std::uint32_t s = 0; s < num_shards; ++s) {
            span_bufs.push_back(
                std::make_unique<SpanBuffer>(span_params));
            queues[s]->setSpanBuffer(span_bufs.back().get());
        }
    }
    auto node_queue = [&](NodeId n) -> EventQueue & {
        return *queues[shard_map.shardOfNode(n)];
    };
    auto switch_queue = [&](SwitchId s) -> EventQueue & {
        return *queues[shard_map.shardOfSwitch(s)];
    };

    // --- SNICs: one virtual slice per (node, tenant) ---
    SnicConfig snic_base = cfg_.snic;
    snic_base.proto = cfg_.proto;
    snic_base.rigUnit.filterEnabled = cfg_.features.filter;
    snic_base.rigUnit.coalesceEnabled = cfg_.features.coalesce;
    Clock snic_clock(snic_base.rigUnit.clockHz);
    snic_base.concat.proto = cfg_.proto;
    snic_base.concat.enabled = cfg_.features.concatNic;
    snic_base.concat.delay =
        snic_clock.cycles(cfg_.nicConcatDelayCycles);
    snic_base.concat.virtualized = cfg_.virtualizedCqs;
    // A lossy fabric needs the reliable-PR layer to terminate; the
    // user may also enable it explicitly on a lossless one.
    if (cfg_.faults.enabled())
        snic_base.rigUnit.retry.enabled = true;
    if (spans_on) {
        snic_base.rigUnit.spanSampleThreshold =
            span_params.sampleThreshold();
        snic_base.rigUnit.spanRecordAll = span_params.recordAll();
        snic_base.rigUnit.spanSeed = span_params.seed;
    }
    const bool recovery_enabled = snic_base.rigUnit.retry.enabled;

    // Interval telemetry and the PR latency lifecycle share one gate:
    // both cost nothing (no collectors, no stamping, a dead probe
    // branch in the dispatch loop) unless the sink is enabled.
    const bool telemetry_on =
        TelemetrySink::instance().enabled() && cfg_.telemetryInterval > 0;

    // Slices are nid-major (snics[nid * T + t]): each tenant keeps its
    // own RIG units, Idx Filter and retry state; the node's physical
    // NIC egress link is shared below.
    std::vector<std::unique_ptr<Snic>> snics;
    snics.reserve(std::size_t{cfg_.numNodes} * T);
    auto snic_at = [&](NodeId nid, std::uint32_t t) -> Snic & {
        return *snics[std::size_t{nid} * T + t];
    };
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        for (std::uint32_t t = 0; t < T; ++t) {
            SnicConfig sc = snic_base;
            sc.tenant = static_cast<std::uint16_t>(t);
            std::string name =
                multi ? "node" + std::to_string(nid) + ".job" +
                            std::to_string(t) + ".snic"
                      : "node" + std::to_string(nid) + ".snic";
            const Partition1D *jpart = &jobs[t].work.part;
            snics.push_back(std::make_unique<Snic>(
                node_queue(nid), sc, nid,
                [jpart](PropIdx idx) {
                    return jpart->ownerOf(
                        static_cast<std::uint32_t>(idx));
                },
                jobs[t].work.numIdxs, std::move(name)));
            snics.back()->setOwnerPartition(jobs[t].work.part);
            if (telemetry_on)
                snics.back()->enablePrLatency();
        }
    }

    // Multi-tenant downlinks terminate at a per-node demux.
    std::vector<std::unique_ptr<TenantDemux>> demuxes;
    if (multi) {
        demuxes.reserve(cfg_.numNodes);
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            demuxes.push_back(std::make_unique<TenantDemux>());
            for (std::uint32_t t = 0; t < T; ++t)
                demuxes.back()->attach(&snic_at(nid, t));
        }
    }

    // --- Switches ---
    Clock switch_clock(cfg_.switchClockHz);
    std::vector<std::unique_ptr<Switch>> switches;
    switches.reserve(topo.numSwitches());
    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        SwitchConfig sw_cfg;
        sw_cfg.proto = cfg_.proto;
        sw_cfg.pipelineLatency = cfg_.switchPipelineLatency;
        sw_cfg.pipeClockHz = cfg_.switchClockHz;
        bool tor_extensions =
            topo.isTor(sid) &&
            (cfg_.features.concatSwitch || cfg_.features.switchCache);
        sw_cfg.netsparseEnabled = tor_extensions;
        sw_cfg.concat.proto = cfg_.proto;
        sw_cfg.concat.enabled = cfg_.features.concatSwitch;
        sw_cfg.concat.delay =
            switch_clock.cycles(cfg_.switchConcatDelayCycles);
        sw_cfg.concat.virtualized = cfg_.virtualizedCqs;
        // Concurrent tenants must not share concatenated packets: the
        // destination demux dispatches whole packets by tenant.
        sw_cfg.concat.tenantLanes = T;
        sw_cfg.cache = cfg_.cacheGeometry;
        sw_cfg.cache.totalBytes =
            cfg_.features.switchCache ? cfg_.propertyCacheBytes : 0;
        sw_cfg.cachePerPipe = cfg_.cachePerPipe;
        sw_cfg.numTenants = T;
        sw_cfg.tenantCachePartitioned =
            cfg_.tenantCachePartitioned && T > 1;
        sw_cfg.fairQueue = cfg_.fairQueue;
        // Corrupt responses must not poison the rack caches.
        sw_cfg.verifyResponses = cfg_.faults.enabled();
        switches.push_back(std::make_unique<Switch>(
            switch_queue(sid), sw_cfg, sid,
            "switch" + std::to_string(sid)));
    }
    // Stats/telemetry identity of each switch ("tor<i>"/"spine<j>",
    // numbered in construction order like the stats document).
    std::vector<std::string> switch_names(topo.numSwitches());
    {
        std::uint32_t tors = 0, spines = 0;
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid)
            switch_names[sid] =
                topo.isTor(sid) ? "tor" + std::to_string(tors++)
                                : "spine" + std::to_string(spines++);
    }

    // --- Links ---
    // One directed link per (switch port, direction) plus one egress
    // link per host NIC. Ordering ids are assigned in construction
    // order - a per-run-deterministic numbering that forms the
    // same-tick arrival tie-break at every sink, which is what keeps
    // execution identical across shard counts.
    //
    // Cross-shard links (always switch-to-switch under the rack
    // partition) deposit deliveries into per-(src, dst) shard
    // mailboxes; their minimum latency is the engine's lookahead.
    struct alignas(64) PaddedMailbox
    {
        DeliveryMailbox box; // padded: neighbors belong to other threads
    };
    std::vector<std::vector<PaddedMailbox>> mailboxes(num_shards);
    for (auto &row : mailboxes)
        row = std::vector<PaddedMailbox>(num_shards);
    Tick lookahead = maxTick;
    std::uint32_t next_link_id = 0;
    std::vector<std::unique_ptr<Link>> links;
    // links[i] is sampled by the shard whose events drive it: its
    // sender's (telemetry registration below).
    std::vector<std::uint32_t> link_shards;

    auto bind_link = [&](Link &link, std::uint32_t src_shard,
                         std::uint32_t dst_shard, Tick latency) {
        link.setOrderingId(next_link_id++);
        link_shards.push_back(src_shard);
        // The injector keys its fault stream on the ordering id just
        // assigned, so the injected pattern is shard-count-invariant.
        if (cfg_.faults.enabled())
            link.configureFaults(cfg_.faults);
        // Fidelity after faults: the regime decision is per send, so a
        // faulted link may still fast-forward its uncongested spans.
        link.configureFidelity(cfg_.fidelity, cfg_.flow);
        if (src_shard != dst_shard) {
            link.setCrossShardOutbox(
                &mailboxes[src_shard][dst_shard].box);
            lookahead = std::min(lookahead, latency);
        }
    };

    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        const auto &ports = topo.ports(sid);
        for (std::uint32_t p = 0; p < ports.size(); ++p) {
            const PortPeer &peer = ports[p];
            LinkConfig lc = cfg_.link;
            lc.bandwidth = Bandwidth::fromGBps(
                cfg_.link.bandwidth.bytesPerSecond() / 1e9 *
                peer.bwMultiplier);
            PacketSink *sink = nullptr;
            std::uint32_t sink_port = 0;
            std::uint32_t dst_shard = 0;
            bool to_host = false;
            if (peer.kind == PortPeer::Kind::Host) {
                sink = multi ? static_cast<PacketSink *>(
                                   demuxes[peer.id].get())
                             : static_cast<PacketSink *>(
                                   &snic_at(peer.id, 0));
                to_host = true;
                dst_shard = shard_map.shardOfNode(peer.id);
                ns_assert(dst_shard == shard_map.shardOfSwitch(sid),
                          "host severed from its ToR by the partition");
            } else {
                sink = switches[peer.id].get();
                sink_port = peer.peerPort;
                dst_shard = shard_map.shardOfSwitch(peer.id);
            }
            links.push_back(std::make_unique<Link>(
                switch_queue(sid), lc, cfg_.proto, sink, sink_port,
                "sw" + std::to_string(sid) + ".p" + std::to_string(p)));
            bind_link(*links.back(), shard_map.shardOfSwitch(sid),
                      dst_shard, lc.latency);
            switches[sid]->attachPort(p, links.back().get(), to_host);
        }
    }
    // Host egress links (NIC -> ToR); always intra-shard. Every tenant
    // slice of a node transmits through the same physical link - its
    // busy-until chain is where the slices contend.
    std::vector<Link *> nic_egress(cfg_.numNodes);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        SwitchId tor = topo.switchOf(nid);
        links.push_back(std::make_unique<Link>(
            node_queue(nid), cfg_.link, cfg_.proto, switches[tor].get(),
            topo.hostPort(nid), "node" + std::to_string(nid) + ".tx"));
        bind_link(*links.back(), shard_map.shardOfNode(nid),
                  shard_map.shardOfSwitch(tor), cfg_.link.latency);
        nic_egress[nid] = links.back().get();
        for (std::uint32_t t = 0; t < T; ++t)
            snic_at(nid, t).attachEgress(links.back().get());
    }
    ns_assert(num_shards == 1 || (lookahead > 0 && lookahead != maxTick),
              "multi-shard run without a positive cross-shard latency");

    // Span component id space, in cluster construction order: links by
    // ordering id (link.cc records LinkTx under orderingId directly),
    // then switches, then SNIC slices nid-major / tenant-minor. The
    // name table ships inside the spans document so every component id
    // resolves to its stats/telemetry identity.
    std::vector<std::string> span_comps;
    if (spans_on) {
        span_comps.reserve(links.size() + topo.numSwitches() +
                           snics.size());
        for (const auto &l : links)
            span_comps.push_back(l->name());
        const auto L = static_cast<std::uint32_t>(links.size());
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
            switches[sid]->setSpanComp(L + sid);
            span_comps.push_back(switch_names[sid]);
        }
        const auto S = static_cast<std::uint32_t>(topo.numSwitches());
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            for (std::uint32_t t = 0; t < T; ++t) {
                Snic &sn = snic_at(nid, t);
                sn.setSpanComp(L + S +
                               static_cast<std::uint32_t>(
                                   std::size_t{nid} * T + t));
                span_comps.push_back(sn.name());
            }
        }
    }

    // --- Routing and per-kernel configuration ---
    for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
        Switch *sw = switches[sid].get();
        sw->setRouteFn([&topo, sid](NodeId dest) {
            return topo.route(sid, dest);
        });
        // Shared or partitioned, the cache provisions for the widest
        // property in flight (capacity accounting only; checksums are
        // what is stored).
        sw->configureForKernel(max_prop_bytes);
    }
    for (auto &snic : snics)
        snic->configureForKernel();

    // --- Hosts: one per (node, tenant), admitted at its startDelay ---
    std::vector<std::unique_ptr<HostNode>> hosts;
    hosts.reserve(std::size_t{cfg_.numNodes} * T);
    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
        for (std::uint32_t t = 0; t < T; ++t) {
            hosts.push_back(std::make_unique<HostNode>(
                node_queue(nid), cfg_.host, snic_at(nid, t),
                std::move(jobs[t].work.streams[nid]), prop_bytes[t]));
            // Completion is read off HostNode::done() after the run; a
            // shared counter would be written concurrently from
            // several shards.
            if (jobs[t].startDelay == 0) {
                hosts.back()->start([] {});
            } else {
                HostNode *h = hosts.back().get();
                node_queue(nid).schedule(jobs[t].startDelay,
                                         [h] { h->start([] {}); });
            }
        }
    }
    auto host_at = [&](NodeId nid, std::uint32_t t) -> HostNode & {
        return *hosts[std::size_t{nid} * T + t];
    };

    // --- Background traffic ---
    std::vector<std::unique_ptr<BackgroundSource>> bg_sources;
    if (bg.enabled()) {
        bg_sources.reserve(cfg_.numNodes);
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            bg_sources.push_back(std::make_unique<BackgroundSource>(
                node_queue(nid), bg, nid, cfg_.numNodes,
                *nic_egress[nid]));
            bg_sources.back()->start();
        }
    }

    // --- Interval telemetry ---
    // One probe per shard; every entity is registered on the shard
    // whose events drive its state, under a cluster-wide order key
    // (links by ordering id, then switches, then RIGs, then tenants)
    // so the merged document is independent of the shard count.
    // Samplers read only their own entity, and boundary samples
    // observe exactly the events with tick < boundary
    // (sim/telemetry.hh), so every series is byte-identical at
    // 1/2/4 shards.
    const Tick tele_interval = cfg_.telemetryInterval;
    std::vector<std::unique_ptr<TelemetryProbe>> probes;
    if (telemetry_on) {
        probes.reserve(num_shards);
        for (std::uint32_t s = 0; s < num_shards; ++s) {
            probes.push_back(
                std::make_unique<TelemetryProbe>(tele_interval));
            probes.back()->attachTo(*queues[s]);
        }
        const std::size_t num_links = links.size();
        for (std::size_t i = 0; i < num_links; ++i) {
            Link *lk = links[i].get();
            probes[link_shards[i]]->addEntity(
                i, lk->name(), "link", {"utilization", "queuedBytes"},
                [lk, tele_interval, last_busy = Tick{0}](
                    Tick boundary, std::vector<double> &out) mutable {
                    // Wire time committed this interval over the
                    // interval; a burst that books the wire past the
                    // boundary can push it above 1 (the backlog then
                    // shows up in queuedBytes).
                    Tick busy = lk->busyTicks();
                    out.push_back(static_cast<double>(busy - last_busy) /
                                  static_cast<double>(tele_interval));
                    last_busy = busy;
                    out.push_back(lk->queuedBytesAt(boundary));
                });
        }
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid) {
            Switch *sw = switches[sid].get();
            probes[shard_map.shardOfSwitch(sid)]->addEntity(
                num_links + sid, switch_names[sid], "switch",
                {"outQueueBytes", "cacheHits", "cacheMisses",
                 "cacheInserts"},
                [sw, last_hits = std::uint64_t{0},
                 last_lookups = std::uint64_t{0},
                 last_inserts = std::uint64_t{0}](
                    Tick boundary, std::vector<double> &out) mutable {
                    double backlog = 0.0;
                    for (const Link *l : sw->outLinks())
                        backlog += l->queuedBytesAt(boundary);
                    out.push_back(backlog);
                    std::uint64_t hits = sw->cacheHits();
                    std::uint64_t lookups = sw->cacheLookups();
                    std::uint64_t inserts = sw->cacheInserts();
                    out.push_back(
                        static_cast<double>(hits - last_hits));
                    out.push_back(static_cast<double>(
                        (lookups - last_lookups) - (hits - last_hits)));
                    out.push_back(
                        static_cast<double>(inserts - last_inserts));
                    last_hits = hits;
                    last_lookups = lookups;
                    last_inserts = inserts;
                });
        }
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            for (std::uint32_t t = 0; t < T; ++t) {
                Snic *sn = &snic_at(nid, t);
                std::string rig_id =
                    multi ? "node" + std::to_string(nid) + ".job" +
                                std::to_string(t) + ".rig"
                          : "node" + std::to_string(nid) + ".rig";
                probes[shard_map.shardOfNode(nid)]->addEntity(
                    num_links + topo.numSwitches() +
                        std::size_t{nid} * T + t,
                    rig_id, "rig", {"inflightPrs", "retransmits"},
                    [sn, last_retx = std::uint64_t{0}](
                        Tick, std::vector<double> &out) mutable {
                        out.push_back(
                            static_cast<double>(sn->inflightPrs()));
                        std::uint64_t retx = sn->totalRetransmits();
                        out.push_back(
                            static_cast<double>(retx - last_retx));
                        last_retx = retx;
                    });
            }
        }
        if (multi) {
            // Cluster-wide per-tenant series. Each shard samples its
            // own slice of the tenant (its nodes' virtual SNICs) under
            // the tenant's shared order key and id; the merge below
            // folds same-id slices elementwise, so the published
            // series is the cluster-wide sum regardless of how nodes
            // landed on shards.
            const std::size_t base = links.size() + topo.numSwitches() +
                                     std::size_t{cfg_.numNodes} * T;
            for (std::uint32_t s = 0; s < num_shards; ++s) {
                for (std::uint32_t t = 0; t < T; ++t) {
                    std::vector<Snic *> slice;
                    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid)
                        if (shard_map.shardOfNode(nid) == s)
                            slice.push_back(&snic_at(nid, t));
                    if (slice.empty())
                        continue;
                    probes[s]->addEntity(
                        base + t, "tenant" + std::to_string(t),
                        "tenant", {"inflightPrs", "rxPayloadBytes"},
                        [slice = std::move(slice),
                         last_payload = std::uint64_t{0}](
                            Tick, std::vector<double> &out) mutable {
                            std::uint64_t inflight = 0, payload = 0;
                            for (const Snic *sn : slice) {
                                inflight += sn->inflightPrs();
                                payload += sn->rxPayloadBytes();
                            }
                            out.push_back(
                                static_cast<double>(inflight));
                            out.push_back(static_cast<double>(
                                payload - last_payload));
                            last_payload = payload;
                        });
                }
            }
        }
    }

    // --- Run ---
    Tick final_tick = 0;
    std::uint64_t executed_events = 0;
    std::uint64_t epochs = 0;
    if (num_shards == 1) {
        queues[0]->runUntil(cfg_.maxSimTime);
        final_tick = queues[0]->now();
        executed_events = queues[0]->executedEvents();
    } else {
        std::vector<ShardEngine::Shard> shards(num_shards);
        for (std::uint32_t d = 0; d < num_shards; ++d) {
            shards[d].eq = queues[d].get();
            // Drain inbound mailboxes in fixed source order; the
            // banded delivery keys then restore the canonical event
            // order inside the destination queue.
            shards[d].drainInbox = [&mailboxes, &queues, d,
                                    num_shards] {
                EventQueue &dst = *queues[d];
                for (std::uint32_t s = 0; s < num_shards; ++s) {
                    mailboxes[s][d].box.drain(
                        [&dst](PendingDelivery &&rec) {
                            dst.scheduleDelivery(
                                rec.when, rec.key,
                                [sink = rec.sink, port = rec.port,
                                 fused = rec.fused,
                                 p = std::move(rec.pkt)]() mutable {
                                    if (fused)
                                        sink->fusedDeliver(std::move(p),
                                                           port);
                                    else
                                        sink->receivePacket(std::move(p),
                                                            port);
                                });
                        });
                }
            };
        }
        ShardEngine::Result res =
            ShardEngine::run(std::move(shards), lookahead,
                             cfg_.maxSimTime);
        final_tick = res.finalTick;
        executed_events = res.executedEvents;
        epochs = res.epochs;
    }
    std::uint32_t done_count = 0;
    for (const auto &h : hosts)
        done_count += h->done() ? 1 : 0;
    if (done_count != cfg_.numNodes * T) {
        ns_fatal("gather deadlocked or exceeded the simulation cap: ",
                 done_count, "/", cfg_.numNodes * T,
                 " hosts finished by ", ticks::toNs(final_tick), " ns");
    }

    // --- Merge spans ---
    if (spans_on) {
        std::vector<SpanBuffer *> bufs;
        bufs.reserve(span_bufs.size());
        for (auto &b : span_bufs)
            bufs.push_back(b.get());
        SpanRun &srun = SpanSink::instance().beginRun();
        srun.params = span_params;
        srun.fidelity = fidelityName(cfg_.fidelity);
        srun.finalTick = final_tick;
        srun.components = span_comps;
        buildSpanRun(srun, bufs);
        // Also render the kept spans as Perfetto async spans when a
        // trace is being captured alongside.
        if (NS_TRACE_ON())
            exportSpansToTrace(TraceWriter::instance(), srun);
    }

    // --- Merge telemetry ---
    if (telemetry_on) {
        // Boundaries past each shard's last event never fired in the
        // dispatch loop; sample them against the global final tick so
        // every probe ends with the same timeline.
        for (auto &p : probes)
            p->flushUntil(final_tick);
        const std::size_t samples = probes[0]->numSamples();
        for (const auto &p : probes)
            ns_assert(p->numSamples() == samples,
                      "telemetry probes disagree on the sample count");
        TelemetrySink::Run &trun = TelemetrySink::instance().beginRun();
        trun.intervalTicks = tele_interval;
        trun.finalTick = final_tick;
        trun.sampleTicks.reserve(samples);
        for (std::size_t i = 1; i <= samples; ++i)
            trun.sampleTicks.push_back(i * tele_interval);
        for (auto &p : probes)
            for (auto &e : p->takeEntities())
                trun.entities.push_back(std::move(e));
        if (multi) {
            // Fold each tenant's per-shard slices into one entity.
            std::vector<TelemetryEntity> folded;
            for (auto &e : trun.entities) {
                if (e.kind != "tenant") {
                    folded.push_back(std::move(e));
                    continue;
                }
                auto it = std::find_if(
                    folded.begin(), folded.end(),
                    [&e](const TelemetryEntity &f) {
                        return f.kind == "tenant" && f.id == e.id;
                    });
                if (it == folded.end()) {
                    folded.push_back(std::move(e));
                    continue;
                }
                for (std::size_t si = 0; si < e.series.size(); ++si)
                    for (std::size_t j = 0; j < e.series[si].size();
                         ++j)
                        it->series[si][j] += e.series[si][j];
            }
            trun.entities = std::move(folded);
        }
        std::sort(trun.entities.begin(), trun.entities.end(),
                  [](const TelemetryEntity &a, const TelemetryEntity &b) {
                      return a.order < b.order;
                  });
        // Per-shard event throughput is the one inherently
        // shard-dependent series; the document carries the cluster-wide
        // sum as a single trailing "sim" entity (exact: the counts are
        // integers far below 2^53).
        TelemetryEntity sim;
        sim.order = links.size() + topo.numSwitches() +
                    std::size_t{cfg_.numNodes} * T + (multi ? T : 0);
        sim.id = "sim";
        sim.kind = "sim";
        sim.seriesNames = {"events"};
        sim.series.emplace_back(samples, 0.0);
        for (const auto &p : probes) {
            const auto &ev = p->eventsPerInterval();
            for (std::size_t i = 0; i < samples; ++i)
                sim.series[0][i] += ev[i];
        }
        trun.entities.push_back(std::move(sim));
    }

    // --- Collect results ---
    MultiJobResult mr;
    mr.jobs.resize(T);
    for (std::uint32_t t = 0; t < T; ++t) {
        GatherRunResult &r = mr.jobs[t];
        r.nodes.resize(cfg_.numNodes);
        std::uint64_t job_rx_prs = 0, job_rx_packets = 0;
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            NodeRunStats &st = r.nodes[nid];
            const HostNode &host = host_at(nid, t);
            const Snic &sn = snic_at(nid, t);
            st.finishTick = host.finishTick();
            RigClientStats cs = sn.aggregateClientStats();
            st.idxsProcessed = cs.idxsProcessed;
            st.localIdxs = cs.localIdxs;
            st.prsIssued = cs.prsIssued;
            st.filtered = cs.filtered;
            st.coalesced = cs.coalesced;
            st.watchdogFailures = cs.watchdogFailures;
            st.pendingStalls = cs.pendingStalls;
            st.txStalls = cs.txStalls;
            st.commandsIssued = host.commandsIssued();
            st.retransmits = cs.retransmits;
            st.nacks = cs.nacks;
            st.corruptDropped = cs.corruptDropped;
            st.duplicatesSuppressed = cs.duplicatesSuppressed;
            st.retriesExhausted = cs.retriesExhausted;
            st.commandRetries = host.commandRetries();
            st.permanentFailures = host.permanentFailures();
            st.rxPackets = sn.rxPackets();
            st.rxBytes = sn.rxBytes();
            st.rxPayloadBytes = sn.rxPayloadBytes();
            st.rxResponses = sn.rxResponses();
            st.rxReads = sn.rxReads();
            job_rx_prs += st.rxResponses + st.rxReads;
            job_rx_packets += st.rxPackets;
            if (st.finishTick > r.commTicks) {
                r.commTicks = st.finishTick;
                r.tailNode = nid;
            }
        }
        r.recoveryEnabled = recovery_enabled;
        r.faultsEnabled = cfg_.faults.enabled();
        r.fidelity = cfg_.fidelity;
        r.avgPrsPerPacket =
            job_rx_packets ? static_cast<double>(job_rx_prs) /
                                 job_rx_packets
                           : 0.0;
        r.executedEvents = executed_events;
        r.finalTick = final_tick;
        r.simShards = num_shards;
        r.lookaheadTicks = num_shards > 1 ? lookahead : 0;
        r.epochs = epochs;
        if (T > 1)
            for (const auto &sw : switches)
                r.prsServedByCache += sw->prsServedByCache(t);
        // The SLO denominator is the job's own active span: admission
        // (startDelay) to its tail node's completion. With one job at
        // t0 this is exactly the legacy commTicks window.
        Tick duration = r.commTicks > jobs[t].startDelay
                            ? r.commTicks - jobs[t].startDelay
                            : 0;
        if (duration > 0) {
            double line_bpp = cfg_.link.bandwidth.bytesPerPs();
            const NodeRunStats &tail = r.tail();
            r.tailLineUtil =
                static_cast<double>(tail.rxBytes) /
                (static_cast<double>(duration) * line_bpp);
            r.tailGoodput =
                static_cast<double>(tail.rxPayloadBytes) /
                (static_cast<double>(duration) * line_bpp);
        }
        mr.makespanTicks = std::max(mr.makespanTicks, r.commTicks);
    }
    for (const auto &l : links) {
        mr.totalWireBytes += l->bytesSent();
        mr.packetsDropped += l->packetsDropped();
    }
    for (const auto &sw : switches) {
        mr.cacheLookups += sw->cacheLookups();
        mr.cacheHits += sw->cacheHits();
        mr.prsServedByCache += sw->prsServedByCache();
    }
    mr.executedEvents = executed_events;
    mr.finalTick = final_tick;
    mr.simShards = num_shards;
    mr.lookaheadTicks = num_shards > 1 ? lookahead : 0;
    mr.epochs = epochs;
    for (const auto &src : bg_sources) {
        mr.backgroundPackets += src->packetsInjected();
        mr.backgroundBytes += src->bytesInjected();
    }
    for (const auto &d : demuxes) {
        mr.backgroundDelivered += d->rawPackets();
        mr.backgroundDeliveredBytes += d->rawBytes();
    }
    if (!multi) {
        // The legacy single-job result carries the fabric-wide totals
        // itself (shared-fabric splits are well defined with one
        // tenant).
        GatherRunResult &r = mr.jobs[0];
        for (const auto &l : links) {
            r.totalWireBytes += l->bytesSent();
            r.packetsDropped += l->packetsDropped();
            r.flowPackets += l->flowPackets();
            r.flowDemotions += l->flowDemotions();
            if (const LinkFaultInjector *fi = l->faults()) {
                r.corruptedPrs += fi->stats().corruptedPrs;
                r.linkDownDrops += fi->stats().linkDownDrops;
                r.linkDownTicks += fi->stats().linkDownTicks;
                r.degradedTicks += fi->stats().degradedTicks;
            }
        }
        for (const auto &sw : switches) {
            r.cacheLookups += sw->cacheLookups();
            r.cacheHits += sw->cacheHits();
            r.prsServedByCache += sw->prsServedByCache();
            r.cachePoisonRejected += sw->poisonRejected();
            r.cacheBypasses += sw->cacheBypasses();
        }
    }

    // --- Detailed observability snapshot (--stats-json) ---
    // Deposited while the components are still alive, so the snapshot
    // carries per-RIG-unit, per-concatenator and per-switch-cache
    // counters that GatherRunResult does not retain.
    if (StatsExport::instance().enabled()) {
        StatRegistry &reg = StatsExport::instance().beginRun();
        if (!multi) {
            // The legacy single-job document, byte for byte.
            mr.jobs[0].exportStats(reg);
        } else {
            reg.set("cluster.jobs", static_cast<double>(T));
            reg.set("cluster.makespanTicks",
                    static_cast<double>(mr.makespanTicks));
            reg.set("cluster.totalWireBytes",
                    static_cast<double>(mr.totalWireBytes));
            reg.set("cluster.cacheLookups",
                    static_cast<double>(mr.cacheLookups));
            reg.set("cluster.cacheHits",
                    static_cast<double>(mr.cacheHits));
            reg.set("cluster.prsServedByCache",
                    static_cast<double>(mr.prsServedByCache));
            for (std::uint32_t t = 0; t < T; ++t)
                exportTenantStats(reg,
                                  "cluster.tenant" + std::to_string(t),
                                  mr.jobs[t], jobs[t].startDelay);
            if (bg.enabled()) {
                reg.set("cluster.background.packetsInjected",
                        static_cast<double>(mr.backgroundPackets));
                reg.set("cluster.background.bytesInjected",
                        static_cast<double>(mr.backgroundBytes));
                reg.set("cluster.background.packetsDelivered",
                        static_cast<double>(mr.backgroundDelivered));
                reg.set("cluster.background.bytesDelivered",
                        static_cast<double>(
                            mr.backgroundDeliveredBytes));
            }
        }
        for (NodeId nid = 0; nid < cfg_.numNodes; ++nid) {
            std::string node = "node" + std::to_string(nid);
            for (std::uint32_t t = 0; t < T; ++t)
                snic_at(nid, t).exportStats(
                    reg, multi ? node + ".job" + std::to_string(t) +
                                     ".snic"
                               : node + ".snic");
            const Link *tx = nic_egress[nid];
            reg.set(node + ".tx.packets",
                    static_cast<double>(tx->packetsSent()));
            reg.set(node + ".tx.bytes",
                    static_cast<double>(tx->bytesSent()));
            reg.set(node + ".tx.payloadBytes",
                    static_cast<double>(tx->payloadBytesSent()));
            reg.set(node + ".tx.busyTicks",
                    static_cast<double>(tx->busyTicks()));
            reg.set(node + ".tx.utilization", tx->utilization());
        }
        for (SwitchId sid = 0; sid < topo.numSwitches(); ++sid)
            switches[sid]->exportStats(reg, switch_names[sid]);
        reg.set("sim.executedEvents",
                static_cast<double>(executed_events));
        reg.set("sim.finalTick", static_cast<double>(final_tick));
        if (telemetry_on) {
            // Cluster-wide PR latency decomposition; per-node averages
            // ride each SNIC's own exportStats above. Gated so the
            // telemetry-off document stays byte-identical.
            if (!multi) {
                PrLatencyStats agg;
                for (const auto &sn : snics)
                    agg.merge(*sn->prLatency());
                agg.exportStats(reg, "cluster.prLatency");
            } else {
                for (std::uint32_t t = 0; t < T; ++t) {
                    PrLatencyStats agg;
                    for (NodeId nid = 0; nid < cfg_.numNodes; ++nid)
                        agg.merge(*snic_at(nid, t).prLatency());
                    agg.exportStats(reg, "cluster.tenant" +
                                             std::to_string(t) +
                                             ".prLatency");
                }
            }
        }
        if (cfg_.memoryStats) {
            // Per-shard arena accounting (sim/arena.hh). Shard workers
            // were joined above, so their arenas have flushed into the
            // registry; fold in the calling thread's live arenas (the
            // sequential engine's buffers live here). Gated: these are
            // process-lifetime host diagnostics, outside the
            // byte-identical stats contract (see ClusterConfig).
            ArenaStats mem = ArenaStatsRegistry::instance().totals();
            mem.add(BufferArena<Packet>::local().stats());
            mem.add(BufferArena<PropertyRequest>::local().stats());
            reg.set("cluster.memory.arenaReservedBytes",
                    static_cast<double>(mem.reservedBytes));
            reg.set("cluster.memory.arenaHighWaterBytes",
                    static_cast<double>(mem.highWaterBytes));
            reg.set("cluster.memory.arenaPoolHits",
                    static_cast<double>(mem.poolHits));
            reg.set("cluster.memory.arenaPoolMisses",
                    static_cast<double>(mem.poolMisses));
        }
    }
    return mr;
}

} // namespace netsparse
