/**
 * @file
 * The NetSparse mechanism toggles used by the ablation study (Table 8).
 *
 * The event-driven simulator always models RIG offload (the software
 * baselines are evaluated analytically in ns_baseline); the remaining
 * four mechanisms can be enabled progressively:
 *
 *   stage 0  "RIG"       - offload only
 *   stage 1  "Filter"    - + Idx Filter
 *   stage 2  "Coalesce"  - + Pending PR Table coalescing
 *   stage 3  "ConcNIC"   - + NIC-level concatenation
 *   stage 4  "Switch"    - + switch concatenation and Property Cache
 */

#ifndef NETSPARSE_RUNTIME_FEATURE_SET_HH
#define NETSPARSE_RUNTIME_FEATURE_SET_HH

#include <cstdint>

#include "sim/logging.hh"

namespace netsparse {

/** Which NetSparse mechanisms are active. */
struct FeatureSet
{
    bool filter = true;
    bool coalesce = true;
    bool concatNic = true;
    bool concatSwitch = true;
    bool switchCache = true;

    /** RIG offload with everything else off. */
    static FeatureSet
    rigOnly()
    {
        return {false, false, false, false, false};
    }

    /** The full NetSparse design point. */
    static FeatureSet full() { return {}; }

    /** Cumulative ablation stage (see file comment). */
    static FeatureSet
    ablationStage(std::uint32_t stage)
    {
        ns_assert(stage <= 4, "ablation stage out of range: ", stage);
        FeatureSet f = rigOnly();
        if (stage >= 1)
            f.filter = true;
        if (stage >= 2)
            f.coalesce = true;
        if (stage >= 3)
            f.concatNic = true;
        if (stage >= 4) {
            f.concatSwitch = true;
            f.switchCache = true;
        }
        return f;
    }

    /** Display name of an ablation stage. */
    static const char *
    stageName(std::uint32_t stage)
    {
        switch (stage) {
          case 0: return "RIG";
          case 1: return "Filter";
          case 2: return "Coalesce";
          case 3: return "ConcNIC";
          case 4: return "Switch";
        }
        return "?";
    }
};

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_FEATURE_SET_HH
