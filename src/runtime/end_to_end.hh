/**
 * @file
 * End-to-end (communication + computation) performance composition for
 * Figures 13, 14 and 21.
 *
 * Per node, one kernel iteration interleaves accelerator compute with
 * remote gathers. The paper notes the two "(partially) overlap"
 * (Figure 14); this model composes them as
 *
 *     T_node = max(comp, comm) + alpha * min(comp, comm)
 *
 * where alpha in [0,1] is the non-overlapped fraction (alpha=0 is
 * perfect overlap, alpha=1 fully serial). The default alpha=0.5 places
 * NetSparse's 128-node speedup a little above half of the no-
 * communication ideal, matching the paper's headline result.
 */

#ifndef NETSPARSE_RUNTIME_END_TO_END_HH
#define NETSPARSE_RUNTIME_END_TO_END_HH

#include <cstdint>
#include <vector>

#include "compute/models.hh"
#include "sim/types.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** End-to-end composition parameters. */
struct EndToEndConfig
{
    ComputeDevice device;
    /** Non-overlapped fraction of the smaller phase. */
    double overlapAlpha = 0.5;
};

/** End-to-end outcome for one cluster size. */
struct EndToEndResult
{
    /** Cluster iteration time (tail node). */
    Tick totalTicks = 0;
    /** Tail node's communication and compute components. */
    Tick tailCommTicks = 0;
    Tick tailCompTicks = 0;
    /** Iteration time with communication assumed free (ideal line). */
    Tick idealTicks = 0;
    std::vector<Tick> perNodeTotal;
};

/** Compose one node's phases under the overlap model. */
Tick combinePhases(Tick comp, Tick comm, double alpha);

/**
 * Compose per-node communication times (from ClusterSim or a baseline)
 * with per-node SpMM compute times.
 */
EndToEndResult composeEndToEnd(const Csr &m, const Partition1D &part,
                               std::uint32_t k,
                               const std::vector<Tick> &per_node_comm,
                               const EndToEndConfig &cfg);

/** Whole-matrix single-node iteration time (the speedup baseline). */
Tick singleNodeTime(const Csr &m, std::uint32_t k,
                    const ComputeDevice &device);

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_END_TO_END_HH
