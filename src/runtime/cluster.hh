/**
 * @file
 * Cluster assembly and the end-to-end communication simulation.
 *
 * ClusterSim instantiates the whole machine of Table 5 / Figure 11 -
 * hosts, NetSparse SNICs, links, ToR and spine switches - for one of
 * the three topologies, runs a distributed gather (the communication
 * phase of one SpMM/SpMV/SDDMM iteration) through the event queue, and
 * reports the statistics the paper's tables and figures are built from.
 */

#ifndef NETSPARSE_RUNTIME_CLUSTER_HH
#define NETSPARSE_RUNTIME_CLUSTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "host/host_node.hh"
#include "net/link.hh"
#include "net/switch.hh"
#include "net/topology.hh"
#include "runtime/feature_set.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "snic/snic.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** Which network to build (Section 9.6). */
enum class TopologyKind
{
    LeafSpine,
    HyperX,
    Dragonfly,
};

/** Full-machine configuration (Table 5 defaults). */
struct ClusterConfig
{
    TopologyKind topology = TopologyKind::LeafSpine;
    std::uint32_t numNodes = 128;
    std::uint32_t nodesPerRack = 16;
    std::uint32_t numSpines = 16;

    LinkConfig link; // 400 Gbps, 450 ns
    ProtocolParams proto;
    SnicConfig snic;
    HostConfig host;

    /**
     * Fault injection (drops, corruption, link-down, degraded
     * bandwidth; see net/fault_model.hh). When any fault class is
     * active the cluster auto-enables the SNIC reliable-PR layer and
     * switch-side response verification so the gather still completes
     * correctly. All zeros (default) = the paper's lossless fabric.
     */
    FaultConfig faults;

    Tick switchPipelineLatency = 300 * ticks::ns;
    std::uint32_t switchConcatDelayCycles = 125; // at 2 GHz
    std::uint32_t nicConcatDelayCycles = 500;    // at 2.2 GHz
    double switchClockHz = 2e9;
    std::uint64_t propertyCacheBytes = 32ull << 20; // per ToR switch
    PropertyCacheConfig cacheGeometry;              // sizes filled below
    /** Strictly per-pipe caches (Figure 8) vs one shared array. */
    bool cachePerPipe = false;
    /**
     * Multi-tenant QoS (runtime/job_scheduler.hh). fairQueue arms
     * deficit-round-robin per-tenant lanes at every switch output
     * port; tenantCachePartitioned slices each ToR cache budget into
     * equal per-tenant partitions (only meaningful with > 1 job).
     * Both default off: FIFO output queues and one shared array.
     */
    bool fairQueue = false;
    bool tenantCachePartitioned = false;

    FeatureSet features;
    /** Use the Section 7.2 virtualized-CQ concatenators. */
    bool virtualizedCqs = false;

    /**
     * Batched event execution (docs/scaling.md): turns on link
     * delivery trains (LinkConfig::batchMaxPackets) and batched server
     * reads (SnicConfig::batchedServerReads) across the cluster.
     * Deterministic and shard-invariant, but a coarser timing model
     * than the default per-event execution: deliveries backed up on a
     * wire may land up to the train hold window late, and a packet's
     * read responses leave together at the last fetch completion. The
     * perf benchmark and the paper-scale presets enable it; figure
     * reproductions keep it off.
     */
    bool eventBatching = false;

    /**
     * Network fidelity regime (net/fidelity.hh, --fidelity). Exact
     * keeps per-packet delivery everywhere. Hybrid lets each link
     * fast-forward analytically (fused delivery events) while its
     * congestion detector sees an empty output queue and sub-threshold
     * utilization, demoting to packet fidelity otherwise; switch
     * internals (output queues, Property Cache ports, concatenator
     * delay queues) are always modeled exactly. Flow pins every capable
     * link to the analytical path regardless of congestion
     * (validation/ablation only). See docs/performance.md for the
     * validity envelope.
     */
    FidelityMode fidelity = FidelityMode::Exact;
    /** Congestion-detector tuning for Hybrid fidelity. */
    FlowFidelityConfig flow;

    /**
     * Export per-shard arena allocator accounting under
     * "cluster.memory.*" (--memory-stats). Off by default: the numbers
     * are a host-side diagnostic of the simulator process (they vary
     * with shard count and prior runs in the same process), so they are
     * excluded from the byte-identical stats contract.
     */
    bool memoryStats = false;

    /**
     * Shards (worker threads) for the parallel engine: 1 runs
     * sequentially, N partitions the cluster rack-granularly onto N
     * private event queues (src/runtime/shard_map.hh), 0 consults
     * NETSPARSE_SIM_SHARDS (default 1). Statistics are byte-identical
     * at any shard count.
     */
    std::uint32_t simShards = 0;

    /**
     * Simulated-time telemetry sampling interval (--telemetry-interval).
     * Takes effect only when the TelemetrySink is enabled; 0 disables
     * sampling even then. Also gates the per-PR latency lifecycle
     * collectors (net/pr_latency.hh).
     */
    Tick telemetryInterval = 10 * ticks::us;

    /**
     * Causal span tracing (sim/span.hh, --spans-out): 1/N sampling
     * and/or tail-exemplar capture. Takes effect only when the SpanSink
     * is enabled; the all-zero default records nothing and leaves every
     * other output document byte-identical.
     */
    SpanParams spans;

    /** Simulation safety cap; exceeding it is a deadlock. */
    Tick maxSimTime = 60 * ticks::s;
};

/** Per-node outcome of a gather run. */
struct NodeRunStats
{
    Tick finishTick = 0;
    std::uint64_t idxsProcessed = 0;
    std::uint64_t localIdxs = 0;
    std::uint64_t prsIssued = 0;
    std::uint64_t filtered = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t rxPackets = 0;
    std::uint64_t rxBytes = 0;
    std::uint64_t rxPayloadBytes = 0;
    std::uint64_t rxResponses = 0;
    std::uint64_t rxReads = 0;
    std::uint64_t watchdogFailures = 0;
    std::uint64_t pendingStalls = 0;
    std::uint64_t txStalls = 0;
    std::uint64_t commandsIssued = 0;

    // Recovery counters; nonzero only when the reliable-PR layer runs.
    std::uint64_t retransmits = 0;
    std::uint64_t nacks = 0;
    std::uint64_t corruptDropped = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t commandRetries = 0;
    std::uint64_t permanentFailures = 0;

    /** Remote idxs = PR opportunities before filtering/coalescing. */
    std::uint64_t
    remoteIdxs() const
    {
        return idxsProcessed - localIdxs;
    }

    /** Fraction of potential PRs dropped (Table 7, "F+C Rate"). */
    double
    fcRate() const
    {
        return remoteIdxs()
                   ? static_cast<double>(filtered + coalesced) /
                         remoteIdxs()
                   : 0.0;
    }
};

/** Whole-run outcome. */
struct GatherRunResult
{
    Tick commTicks = 0;
    NodeId tailNode = 0;
    std::vector<NodeRunStats> nodes;

    /** Sum over links of bytes placed on wires (counts every hop). */
    std::uint64_t totalWireBytes = 0;
    /** PRs per packet, averaged over packets delivered to NICs. */
    double avgPrsPerPacket = 0.0;

    std::uint64_t cacheLookups = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t prsServedByCache = 0;

    double tailGoodput = 0.0;
    double tailLineUtil = 0.0;

    /** Simulator events dispatched during the run (for bench_perf). */
    std::uint64_t executedEvents = 0;
    /** Simulated time when the event queue drained. */
    Tick finalTick = 0;

    // Parallel-engine observability (not part of the stats-JSON
    // contract: the exported document must stay byte-identical across
    // shard counts).
    /** Shards the run actually used (1 = sequential). */
    std::uint32_t simShards = 1;
    /** Conservative lookahead = min cross-shard link latency (0 seq). */
    Tick lookaheadTicks = 0;
    /** Epoch barriers the parallel run took (0 sequential). */
    std::uint64_t epochs = 0;

    // Hybrid-fidelity observability (also outside the stats-JSON
    // contract: a hybrid run's document must stay byte-identical to the
    // exact run's wherever the validity envelope holds).
    /** The fidelity regime this run used. */
    FidelityMode fidelity = FidelityMode::Exact;
    /** Packets delivered analytically (fused events), over all links. */
    std::uint64_t flowPackets = 0;
    /** Flow -> packet demotions the congestion detectors took. */
    std::uint64_t flowDemotions = 0;

    // Resilience observability. The flags gate the exported keys so a
    // zero-fault, retry-off run's document stays byte-identical to the
    // non-resilient simulator's.
    /** The reliable-PR layer was active this run. */
    bool recoveryEnabled = false;
    /** Fault injection was active this run. */
    bool faultsEnabled = false;
    /** Packets lost on links (all fault classes). */
    std::uint64_t packetsDropped = 0;
    /** Response PRs whose checksum was flipped in flight. */
    std::uint64_t corruptedPrs = 0;
    /** Packets discarded inside link-down windows. */
    std::uint64_t linkDownDrops = 0;
    /** Aggregate link-down window time over all links. */
    Tick linkDownTicks = 0;
    /** Aggregate degraded-bandwidth window time over all links. */
    Tick degradedTicks = 0;
    /** Corrupt responses the ToRs kept out of their caches. */
    std::uint64_t cachePoisonRejected = 0;
    /** Reads that bypassed the Property Cache (refetches). */
    std::uint64_t cacheBypasses = 0;

    /** Sum of a recovery counter over all nodes. */
    template <typename F>
    std::uint64_t
    sumNodes(F &&field) const
    {
        std::uint64_t total = 0;
        for (const auto &st : nodes)
            total += field(st);
        return total;
    }

    /** Cache hit rate over all ToR lookups. */
    double
    cacheHitRate() const
    {
        return cacheLookups ? static_cast<double>(cacheHits) / cacheLookups
                            : 0.0;
    }

    const NodeRunStats &tail() const { return nodes[tailNode]; }

    /**
     * Distribution of node finish times in nanoseconds - the exact
     * histogram exported as "cluster.finishTimeNs", so percentiles
     * computed from it agree with the stats JSON by construction.
     */
    Histogram finishTimeHistogram() const;

    /**
     * Export everything into a named stats registry (gem5/SST style),
     * under "cluster.*" aggregates and "nodeN.*" per-node values.
     */
    void exportStats(StatRegistry &reg) const;
};

/**
 * A gather described directly by its per-node index streams.
 *
 * This is the form the simulation actually consumes: each node's stream
 * is the concatenated column indices of its owned rows, in row-scan
 * order. Paper-scale runs build it with sparse/stream_gen.hh (via
 * PartitionedMatrix::takeStreams()) so no global matrix is ever held;
 * the Csr overload of runGather produces the identical workload by
 * slicing, so both paths yield byte-identical statistics.
 */
struct GatherWorkload
{
    /** Property-space width = matrix columns (sizes the Idx Filters). */
    std::uint32_t numIdxs = 0;
    /** Property ownership; numParts() must equal the cluster's nodes. */
    Partition1D part;
    /** streams[n] = node n's row-scan index stream (moved into hosts). */
    std::vector<std::vector<std::uint32_t>> streams;
};

/** Builds and runs one cluster. */
class ClusterSim
{
  public:
    explicit ClusterSim(ClusterConfig cfg);

    /**
     * Run the communication phase of one kernel iteration: every node
     * gathers the remote input properties its nonzeros touch.
     *
     * @param m the (square) sparse matrix.
     * @param part the 1-D partition; numParts() must equal numNodes.
     * @param k property width in 4-byte elements.
     */
    GatherRunResult runGather(const Csr &m, const Partition1D &part,
                              std::uint32_t k);

    /**
     * Same run, from pre-partitioned per-node streams (the streaming
     * paper-scale path). The workload's streams are consumed.
     */
    GatherRunResult runGather(GatherWorkload &&work, std::uint32_t k);

    const ClusterConfig &config() const { return cfg_; }

  private:
    ClusterConfig cfg_;
};

/** Table-5-default cluster configuration for @p nodes nodes. */
ClusterConfig defaultClusterConfig(std::uint32_t nodes = 128);

} // namespace netsparse

#endif // NETSPARSE_RUNTIME_CLUSTER_HH
