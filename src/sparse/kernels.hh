/**
 * @file
 * Reference implementations of the three sparse kernels the paper
 * targets: SpMM, SpMV and SDDMM (Section 2.1).
 *
 * Dense operands are row-major: a "property array" X for a matrix with C
 * columns and property size K is a C x K row-major float buffer; property
 * i occupies X[i*K .. i*K+K).
 *
 * These kernels are single-node references used (a) by the examples,
 * (b) to verify the distributed gather path end to end, and (c) by the
 * compute-time models as the operation/byte counters.
 */

#ifndef NETSPARSE_SPARSE_KERNELS_HH
#define NETSPARSE_SPARSE_KERNELS_HH

#include <cstdint>
#include <vector>

#include "sparse/csr.hh"

namespace netsparse {

/** Y = A * X; A is rows x cols, X is cols x K, Y is rows x K. */
std::vector<float> spmm(const Csr &a, const std::vector<float> &x,
                        std::uint32_t k);

/** y = A * x; the K=1 special case. */
std::vector<float> spmv(const Csr &a, const std::vector<float> &x);

/**
 * SDDMM: out[i] = a.val[i] * dot(U[row(i)], V[col(i)]).
 * U is rows x K, V is cols x K; returns one value per stored nonzero.
 */
std::vector<float> sddmm(const Csr &a, const std::vector<float> &u,
                         const std::vector<float> &v, std::uint32_t k);

/**
 * Operation and traffic counts for a kernel on one CSR block; feeds the
 * roofline compute models.
 */
struct KernelCost
{
    /** Floating-point multiply-adds. */
    std::uint64_t flops = 0;
    /** Bytes of memory traffic (matrix + dense operands, streamed). */
    std::uint64_t bytes = 0;
};

/** Cost of SpMM over @p nnz nonzeros and @p rows rows with width @p k. */
KernelCost spmmCost(std::uint64_t nnz, std::uint64_t rows, std::uint32_t k);

/** Cost of SDDMM over @p nnz nonzeros with width @p k. */
KernelCost sddmmCost(std::uint64_t nnz, std::uint32_t k);

} // namespace netsparse

#endif // NETSPARSE_SPARSE_KERNELS_HH
