#include "sparse/stream_gen.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

std::vector<std::vector<std::uint32_t>>
PartitionedMatrix::takeStreams()
{
    std::vector<std::vector<std::uint32_t>> streams;
    streams.reserve(nodes.size());
    for (auto &n : nodes) {
        streams.push_back(std::move(n.colIdx));
        n.rowPtr = {0};
        n.colIdx.clear();
    }
    nodes.clear();
    return streams;
}

PartitionedMatrix
buildPartitionedMatrix(const GeneratorParams &params,
                       std::uint32_t numNodes, std::uint32_t chunkRows)
{
    ns_assert(numNodes > 0, "need at least one node");
    ns_assert(chunkRows > 0, "chunk must hold at least one row");
    RowEmitter gen(params);
    const std::uint32_t rows = gen.rows();
    ns_assert(rows >= numNodes, "fewer rows than nodes");

    PartitionedMatrix pm;
    pm.rows = pm.cols = rows;
    pm.part = Partition1D::equalRows(rows, numNodes);
    pm.nodes.resize(numNodes);
    for (NodeId n = 0; n < numNodes; ++n) {
        pm.nodes[n].firstRow = pm.part.begin(n);
        pm.nodes[n].rowPtr.reserve(pm.part.size(n) + 1);
        // Row degrees concentrate near the mean; reserving for it
        // avoids most mid-build reallocation without overcommitting.
        pm.nodes[n].colIdx.reserve(static_cast<std::size_t>(
            pm.part.size(n) * std::max(1.0, gen.expectedDegree())));
    }

    // One bounded scratch buffer: rows of the current chunk, back to
    // back, with per-row end offsets. Chunking only bounds transient
    // memory - rows are appended to their owners in global row order
    // regardless, so any chunkRows yields identical partitions.
    std::vector<std::uint32_t> chunk_cols;
    std::vector<std::size_t> row_ends;
    for (std::uint32_t base = 0; base < rows; base += chunkRows) {
        std::uint32_t count =
            std::min<std::uint32_t>(chunkRows, rows - base);
        chunk_cols.clear();
        row_ends.clear();
        for (std::uint32_t i = 0; i < count; ++i) {
            gen.emitRow(base + i, chunk_cols);
            row_ends.push_back(chunk_cols.size());
        }
        std::size_t row_begin = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
            NodeCsr &dst = pm.nodes[pm.part.ownerOf(base + i)];
            dst.colIdx.insert(dst.colIdx.end(),
                              chunk_cols.begin() + row_begin,
                              chunk_cols.begin() + row_ends[i]);
            dst.rowPtr.push_back(dst.colIdx.size());
            row_begin = row_ends[i];
        }
        pm.nnz += chunk_cols.size();
    }
    for (NodeId n = 0; n < numNodes; ++n)
        ns_assert(pm.nodes[n].numRows() == pm.part.size(n),
                  "node ", n, " row count mismatch");
    return pm;
}

PartitionedMatrix
buildPartitionedBenchmark(MatrixKind kind, double scale,
                          std::uint32_t numNodes, std::uint32_t chunkRows)
{
    return buildPartitionedMatrix(benchmarkParams(kind, scale), numNodes,
                                  chunkRows);
}

double
paperScale(MatrixKind kind)
{
    // Paper Table 1 nnz over the analogue's nnz at scale 1 (the
    // comments in benchmarkParams()).
    switch (kind) {
      case MatrixKind::Arabic: return 640e6 / 3.67e6;
      case MatrixKind::Europe: return 108e6 / 0.55e6;
      case MatrixKind::Queen: return 330e6 / 5.18e6;
      case MatrixKind::Stokes: return 349e6 / 3.05e6;
      case MatrixKind::Uk: return 298e6 / 2.10e6;
    }
    ns_panic("unknown matrix kind");
}

} // namespace netsparse
