#include "sparse/csr.hh"

#include "sim/logging.hh"

namespace netsparse {

Csr
Csr::fromCoo(const Coo &coo)
{
    Csr m;
    m.rows = coo.rows;
    m.cols = coo.cols;
    m.rowPtr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
    m.colIdx.resize(coo.nnz());
    if (coo.hasValues())
        m.vals.resize(coo.nnz());

    for (std::size_t i = 0; i < coo.nnz(); ++i)
        ++m.rowPtr[coo.rowIdx[i] + 1];
    for (std::size_t r = 0; r < coo.rows; ++r)
        m.rowPtr[r + 1] += m.rowPtr[r];

    std::vector<std::uint64_t> cursor(m.rowPtr.begin(), m.rowPtr.end() - 1);
    for (std::size_t i = 0; i < coo.nnz(); ++i) {
        std::uint64_t pos = cursor[coo.rowIdx[i]]++;
        m.colIdx[pos] = coo.colIdx[i];
        if (coo.hasValues())
            m.vals[pos] = coo.vals[i];
    }
    return m;
}

Coo
Csr::toCoo() const
{
    Coo coo;
    coo.rows = rows;
    coo.cols = cols;
    coo.rowIdx.reserve(nnz());
    coo.colIdx.reserve(nnz());
    if (hasValues())
        coo.vals.reserve(nnz());
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint64_t i = rowPtr[r]; i < rowPtr[r + 1]; ++i) {
            coo.rowIdx.push_back(r);
            coo.colIdx.push_back(colIdx[i]);
            if (hasValues())
                coo.vals.push_back(vals[i]);
        }
    }
    return coo;
}

Csr
Csr::transposed() const
{
    Csr t;
    t.rows = cols;
    t.cols = rows;
    t.rowPtr.assign(static_cast<std::size_t>(cols) + 1, 0);
    t.colIdx.resize(nnz());
    if (hasValues())
        t.vals.resize(nnz());

    for (std::size_t i = 0; i < nnz(); ++i)
        ++t.rowPtr[colIdx[i] + 1];
    for (std::size_t c = 0; c < cols; ++c)
        t.rowPtr[c + 1] += t.rowPtr[c];

    std::vector<std::uint64_t> cursor(t.rowPtr.begin(), t.rowPtr.end() - 1);
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint64_t i = rowPtr[r]; i < rowPtr[r + 1]; ++i) {
            std::uint64_t pos = cursor[colIdx[i]]++;
            t.colIdx[pos] = r;
            if (hasValues())
                t.vals[pos] = vals[i];
        }
    }
    return t;
}

void
Csr::validate() const
{
    ns_assert(rowPtr.size() == static_cast<std::size_t>(rows) + 1,
              "rowPtr length mismatch");
    ns_assert(rowPtr.front() == 0, "rowPtr must start at zero");
    ns_assert(rowPtr.back() == nnz(), "rowPtr must end at nnz");
    ns_assert(vals.empty() || vals.size() == colIdx.size(),
              "value array length mismatch");
    for (std::uint32_t r = 0; r < rows; ++r)
        ns_assert(rowPtr[r] <= rowPtr[r + 1], "rowPtr not monotone at ", r);
    for (auto c : colIdx)
        ns_assert(c < cols, "col index out of range");
}

} // namespace netsparse
