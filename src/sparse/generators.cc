#include "sparse/generators.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace netsparse {

namespace {

/** Clamp a signed offset from @p r into [0, rows). */
std::uint32_t
clampedOffset(std::uint32_t r, std::int64_t off, std::uint32_t rows)
{
    std::int64_t c = static_cast<std::int64_t>(r) + off;
    if (c < 0)
        c = -c;
    if (c >= rows)
        c = 2 * static_cast<std::int64_t>(rows) - 2 - c;
    if (c < 0)
        c = 0;
    return static_cast<std::uint32_t>(c);
}

/** A signed geometric offset with mean magnitude ~ @p range, never 0. */
std::int64_t
signedGeometric(Rng &rng, double range)
{
    auto mag = static_cast<std::int64_t>(rng.geometric(range));
    return rng.uniform() < 0.5 ? -mag : mag;
}

/**
 * Independent RNG stream for one row: seed and row are mixed through
 * splitmix64 twice (once here, once in the Rng constructor), so streams
 * for adjacent rows share no structure.
 */
Rng
rowRng(std::uint64_t seed, std::uint32_t r)
{
    return Rng(splitmix64(seed) + r);
}

void
emitWebCrawlRow(const WebCrawlParams &p,
                const std::vector<std::uint32_t> &region_base,
                std::uint32_t r, std::vector<std::uint32_t> &out)
{
    Rng rng = rowRng(p.seed, r);
    auto num_regions = static_cast<std::uint32_t>(region_base.size());
    // Skewed out-degree: mostly small pages, a tail of link farms.
    double mean = rng.uniform() < 0.92 ? p.avgDeg * 0.72 : p.avgDeg * 4.2;
    auto deg = static_cast<std::uint32_t>(rng.geometric(mean));
    bool have_region = false;
    std::uint32_t region = 0;
    for (std::uint32_t k = 0; k < deg; ++k) {
        std::uint32_t c;
        if (rng.uniform() < p.pLocal) {
            c = clampedOffset(r, signedGeometric(rng, p.localRange),
                              p.rows);
        } else {
            // Foreign link: usually keeps pointing at the page's
            // current foreign host; sometimes hops to a new one.
            if (!have_region || rng.uniform() < p.pNewRegion) {
                region = static_cast<std::uint32_t>(
                    rng.zipf(num_regions, p.regionAlpha));
                have_region = true;
            }
            c = region_base[region] +
                static_cast<std::uint32_t>(
                    rng.uniformInt(0, p.regionWidth - 1));
        }
        out.push_back(c);
    }
}

void
emitRoadNetworkRow(const RoadNetworkParams &p, std::uint32_t r,
                   std::vector<std::uint32_t> &out)
{
    Rng rng = rowRng(p.seed, r);
    std::uint32_t width = p.gridWidth;
    if (r > 0 && rng.uniform() < p.pChain)
        out.push_back(r - 1);
    if (r + 1 < p.rows && rng.uniform() < p.pChain)
        out.push_back(r + 1);
    if (rng.uniform() < p.pCross) {
        std::int64_t off = rng.uniform() < 0.5 ? -std::int64_t(width)
                                               : std::int64_t(width);
        // Wiggle so cross edges are not all identical in stride.
        off += static_cast<std::int64_t>(rng.uniformInt(0, 4)) - 2;
        out.push_back(clampedOffset(r, off, p.rows));
    }
    if (rng.uniform() < p.pLong) {
        out.push_back(static_cast<std::uint32_t>(
            rng.uniformInt(0, p.rows - 1)));
    }
}

void
emitBandedFemRow(const BandedFemParams &p, std::uint32_t r,
                 std::vector<std::uint32_t> &out)
{
    Rng rng = rowRng(p.seed, r);
    std::int64_t band = p.band;
    // FEM stencils touch a dense cluster of neighbors inside the band.
    out.push_back(r); // diagonal
    for (std::uint32_t k = 1; k < p.deg; ++k) {
        auto off =
            static_cast<std::int64_t>(rng.uniformInt(0, 2 * band)) - band;
        if (off == 0)
            off = 1;
        out.push_back(clampedOffset(r, off, p.rows));
    }
}

void
emitStokesLikeRow(const StokesLikeParams &p, std::uint32_t r,
                  std::vector<std::uint32_t> &out)
{
    Rng rng = rowRng(p.seed, r);
    std::int64_t band = p.band;
    std::uint32_t half = p.rows / 2;
    out.push_back(r);
    for (std::uint32_t k = 1; k < p.deg; ++k) {
        if (rng.uniform() < p.pCoupled) {
            // Velocity-pressure style coupling: a far block at a fixed
            // stride, with a small jitter window.
            std::uint32_t target = (r + half) % p.rows;
            auto jit = static_cast<std::int64_t>(rng.uniformInt(
                           0, 2 * p.couplingJitter)) -
                       static_cast<std::int64_t>(p.couplingJitter);
            out.push_back(clampedOffset(target, jit, p.rows));
        } else {
            auto off = static_cast<std::int64_t>(
                           rng.uniformInt(0, 2 * band)) -
                       band;
            if (off == 0)
                off = 1;
            out.push_back(clampedOffset(r, off, p.rows));
        }
    }
}

} // namespace

RowEmitter::RowEmitter(const GeneratorParams &gp) : p_(gp)
{
    std::visit(
        [this](auto &p) {
            using T = std::decay_t<decltype(p)>;
            rows_ = p.rows;
            if constexpr (std::is_same_v<T, WebCrawlParams>) {
                ns_assert(p.rows > 1, "web crawl needs at least 2 rows");
                // Foreign host regions: zipf-popular link-target
                // neighborhoods, scattered across the index space by a
                // hash so popularity is not correlated with the
                // partition that owns the pages.
                if (p.numRegions == 0)
                    p.numRegions =
                        std::max<std::uint32_t>(16, p.rows / 1024);
                regionBase_.resize(p.numRegions);
                for (std::uint32_t h = 0; h < p.numRegions; ++h)
                    regionBase_[h] = static_cast<std::uint32_t>(
                        splitmix64(p.seed ^ (0x9000ull + h)) %
                        (p.rows - p.regionWidth));
            } else if constexpr (std::is_same_v<T, RoadNetworkParams>) {
                ns_assert(p.rows > 1,
                          "road network needs at least 2 rows");
                if (p.gridWidth == 0)
                    p.gridWidth = static_cast<std::uint32_t>(
                        std::sqrt(double(p.rows)));
            } else if constexpr (std::is_same_v<T, BandedFemParams>) {
                ns_assert(p.rows > 2 * p.band,
                          "band wider than the matrix");
            } else {
                ns_assert(p.rows > 4 * p.band,
                          "band wider than the matrix");
            }
        },
        p_);
}

void
RowEmitter::emitRow(std::uint32_t r, std::vector<std::uint32_t> &out) const
{
    ns_assert(r < rows_, "row ", r, " out of range");
    std::visit(
        [&](const auto &p) {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, WebCrawlParams>)
                emitWebCrawlRow(p, regionBase_, r, out);
            else if constexpr (std::is_same_v<T, RoadNetworkParams>)
                emitRoadNetworkRow(p, r, out);
            else if constexpr (std::is_same_v<T, BandedFemParams>)
                emitBandedFemRow(p, r, out);
            else
                emitStokesLikeRow(p, r, out);
        },
        p_);
}

double
RowEmitter::expectedDegree() const
{
    return std::visit(
        [](const auto &p) -> double {
            using T = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<T, WebCrawlParams>)
                return p.avgDeg;
            else if constexpr (std::is_same_v<T, RoadNetworkParams>)
                return 2.0 * p.pChain + p.pCross + p.pLong;
            else
                return static_cast<double>(p.deg);
        },
        p_);
}

std::uint32_t
generatorRows(const GeneratorParams &p)
{
    return std::visit([](const auto &g) { return g.rows; }, p);
}

Coo
makeMatrix(const GeneratorParams &gp)
{
    RowEmitter gen(gp);
    Coo m;
    m.rows = m.cols = gen.rows();
    auto expect = static_cast<std::size_t>(
        gen.rows() * std::max(1.0, gen.expectedDegree()));
    m.rowIdx.reserve(expect);
    m.colIdx.reserve(expect);
    std::vector<std::uint32_t> cols;
    for (std::uint32_t r = 0; r < gen.rows(); ++r) {
        cols.clear();
        gen.emitRow(r, cols);
        for (auto c : cols)
            m.push(r, c);
    }
    return m;
}

Coo
makeWebCrawl(const WebCrawlParams &p)
{
    return makeMatrix(p);
}

Coo
makeRoadNetwork(const RoadNetworkParams &p)
{
    return makeMatrix(p);
}

Coo
makeBandedFem(const BandedFemParams &p)
{
    return makeMatrix(p);
}

Coo
makeStokesLike(const StokesLikeParams &p)
{
    return makeMatrix(p);
}

const char *
matrixName(MatrixKind kind)
{
    switch (kind) {
      case MatrixKind::Arabic: return "arabic";
      case MatrixKind::Europe: return "europe";
      case MatrixKind::Queen: return "queen";
      case MatrixKind::Stokes: return "stokes";
      case MatrixKind::Uk: return "uk";
    }
    ns_panic("unknown matrix kind");
}

std::vector<MatrixKind>
allMatrixKinds()
{
    return {MatrixKind::Arabic, MatrixKind::Europe, MatrixKind::Queen,
            MatrixKind::Stokes, MatrixKind::Uk};
}

GeneratorParams
benchmarkParams(MatrixKind kind, double scale)
{
    ns_assert(scale > 0.0, "scale must be positive");
    auto scaled = [&](std::uint32_t base) {
        auto r = static_cast<std::uint32_t>(base * scale);
        return std::max<std::uint32_t>(r, 1024);
    };

    switch (kind) {
      case MatrixKind::Arabic: {
        WebCrawlParams p;
        p.rows = scaled(1 << 17); // 128k rows, ~3.6M nnz at scale 1
        p.avgDeg = 28.0;
        p.pLocal = 0.55;
        p.localRange = 150.0;
        p.numRegions = std::max<std::uint32_t>(32, p.rows / 4096);
        p.regionWidth = 16;
        p.regionAlpha = 1.3;
        p.pNewRegion = 0.05;
        return p;
      }
      case MatrixKind::Europe: {
        RoadNetworkParams p;
        p.rows = scaled(1 << 18); // 256k rows, ~550k nnz at scale 1
        p.pLong = 0.012;
        return p;
      }
      case MatrixKind::Queen: {
        BandedFemParams p;
        p.rows = scaled(1 << 16); // 64k rows, ~5.2M nnz at scale 1
        // FEM bandwidth tracks the mesh cross-section, which grows with
        // the problem; keep it about half a 128-node partition's rows.
        p.band = std::max<std::uint32_t>(64, p.rows / 256);
        p.deg = 79;
        return p;
      }
      case MatrixKind::Stokes: {
        StokesLikeParams p;
        p.rows = scaled(3 << 15); // 96k rows, ~3M nnz at scale 1
        // The coupling window scales with the problem cross-section.
        p.couplingJitter = std::max<std::uint32_t>(256, p.rows / 96);
        return p;
      }
      case MatrixKind::Uk: {
        WebCrawlParams p;
        p.rows = scaled(1 << 17); // 128k rows, ~2M nnz at scale 1
        p.avgDeg = 16.0;
        p.pLocal = 0.42;
        p.localRange = 400.0;
        p.numRegions = std::max<std::uint32_t>(64, p.rows / 1024);
        p.regionWidth = 16;
        p.regionAlpha = 1.08;
        p.pNewRegion = 0.20;
        p.seed = 0x00172002;
        return p;
      }
    }
    ns_panic("unknown matrix kind");
}

Csr
makeBenchmarkMatrix(MatrixKind kind, double scale)
{
    Coo coo = makeMatrix(benchmarkParams(kind, scale));
    coo.validate();
    return Csr::fromCoo(coo);
}

std::vector<BenchmarkMatrix>
benchmarkSuite(double scale)
{
    std::vector<BenchmarkMatrix> out;
    for (auto kind : allMatrixKinds())
        out.push_back({kind, matrixName(kind),
                       makeBenchmarkMatrix(kind, scale)});
    return out;
}

} // namespace netsparse
