#include "sparse/kernels.hh"

#include "sim/logging.hh"

namespace netsparse {

std::vector<float>
spmm(const Csr &a, const std::vector<float> &x, std::uint32_t k)
{
    ns_assert(x.size() == static_cast<std::size_t>(a.cols) * k,
              "X must be cols x K");
    std::vector<float> y(static_cast<std::size_t>(a.rows) * k, 0.0f);
    for (std::uint32_t r = 0; r < a.rows; ++r) {
        float *yr = y.data() + static_cast<std::size_t>(r) * k;
        for (std::uint64_t i = a.rowPtr[r]; i < a.rowPtr[r + 1]; ++i) {
            const float *xc =
                x.data() + static_cast<std::size_t>(a.colIdx[i]) * k;
            float v = a.valueAt(i);
            for (std::uint32_t j = 0; j < k; ++j)
                yr[j] += v * xc[j];
        }
    }
    return y;
}

std::vector<float>
spmv(const Csr &a, const std::vector<float> &x)
{
    return spmm(a, x, 1);
}

std::vector<float>
sddmm(const Csr &a, const std::vector<float> &u,
      const std::vector<float> &v, std::uint32_t k)
{
    ns_assert(u.size() == static_cast<std::size_t>(a.rows) * k,
              "U must be rows x K");
    ns_assert(v.size() == static_cast<std::size_t>(a.cols) * k,
              "V must be cols x K");
    std::vector<float> out(a.nnz(), 0.0f);
    for (std::uint32_t r = 0; r < a.rows; ++r) {
        const float *ur = u.data() + static_cast<std::size_t>(r) * k;
        for (std::uint64_t i = a.rowPtr[r]; i < a.rowPtr[r + 1]; ++i) {
            const float *vc =
                v.data() + static_cast<std::size_t>(a.colIdx[i]) * k;
            float dot = 0.0f;
            for (std::uint32_t j = 0; j < k; ++j)
                dot += ur[j] * vc[j];
            out[i] = a.valueAt(i) * dot;
        }
    }
    return out;
}

KernelCost
spmmCost(std::uint64_t nnz, std::uint64_t rows, std::uint32_t k)
{
    KernelCost c;
    c.flops = nnz * k; // one multiply-add per (nonzero, property element)
    // Streamed traffic: read each nonzero's index+value (8B) and its
    // input property row (4K bytes), write each output row once.
    c.bytes = nnz * (8 + 4ull * k) + rows * 4ull * k;
    return c;
}

KernelCost
sddmmCost(std::uint64_t nnz, std::uint32_t k)
{
    KernelCost c;
    c.flops = nnz * k;
    c.bytes = nnz * (8 + 8ull * k + 4); // U row + V row + output value
    return c;
}

} // namespace netsparse
