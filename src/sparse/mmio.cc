#include "sparse/mmio.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace netsparse {

Coo
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        ns_fatal("empty Matrix Market stream");

    std::istringstream header(line);
    std::string banner, object, fmt, field, symmetry;
    header >> banner >> object >> fmt >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        ns_fatal("missing %%MatrixMarket banner, got: ", line);
    if (object != "matrix" || fmt != "coordinate")
        ns_fatal("only 'matrix coordinate' is supported, got: ", line);
    bool pattern = field == "pattern";
    bool symmetric = symmetry == "symmetric";
    if (!pattern && field != "real" && field != "integer")
        ns_fatal("unsupported field type: ", field);
    if (!symmetric && symmetry != "general")
        ns_fatal("unsupported symmetry: ", symmetry);

    // Skip comments.
    do {
        if (!std::getline(in, line))
            ns_fatal("Matrix Market stream ended before the size line");
    } while (!line.empty() && line[0] == '%');

    std::istringstream sizes(line);
    std::uint64_t rows = 0, cols = 0, entries = 0;
    sizes >> rows >> cols >> entries;
    if (sizes.fail() || rows == 0 || cols == 0)
        ns_fatal("malformed size line: ", line);

    Coo m;
    m.rows = static_cast<std::uint32_t>(rows);
    m.cols = static_cast<std::uint32_t>(cols);
    m.rowIdx.reserve(symmetric ? 2 * entries : entries);
    m.colIdx.reserve(symmetric ? 2 * entries : entries);
    if (!pattern)
        m.vals.reserve(symmetric ? 2 * entries : entries);

    for (std::uint64_t i = 0; i < entries; ++i) {
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        in >> r >> c;
        if (!pattern)
            in >> v;
        if (in.fail())
            ns_fatal("malformed entry ", i + 1, " of ", entries);
        if (r == 0 || c == 0 || r > rows || c > cols)
            ns_fatal("entry ", i + 1, " out of range: ", r, " ", c);
        if (pattern) {
            m.push(static_cast<std::uint32_t>(r - 1),
                   static_cast<std::uint32_t>(c - 1));
            if (symmetric && r != c)
                m.push(static_cast<std::uint32_t>(c - 1),
                       static_cast<std::uint32_t>(r - 1));
        } else {
            m.push(static_cast<std::uint32_t>(r - 1),
                   static_cast<std::uint32_t>(c - 1),
                   static_cast<float>(v));
            if (symmetric && r != c)
                m.push(static_cast<std::uint32_t>(c - 1),
                       static_cast<std::uint32_t>(r - 1),
                       static_cast<float>(v));
        }
    }
    return m;
}

Coo
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ns_fatal("cannot open ", path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const Coo &m)
{
    out << "%%MatrixMarket matrix coordinate "
        << (m.hasValues() ? "real" : "pattern") << " general\n";
    out << m.rows << " " << m.cols << " " << m.nnz() << "\n";
    for (std::size_t i = 0; i < m.nnz(); ++i) {
        out << m.rowIdx[i] + 1 << " " << m.colIdx[i] + 1;
        if (m.hasValues())
            out << " " << m.vals[i];
        out << "\n";
    }
}

void
writeMatrixMarketFile(const std::string &path, const Coo &m)
{
    std::ofstream out(path);
    if (!out)
        ns_fatal("cannot open ", path, " for writing");
    writeMatrixMarket(out, m);
}

} // namespace netsparse
