/**
 * @file
 * Coordinate-format (COO) sparse matrix.
 */

#ifndef NETSPARSE_SPARSE_COO_HH
#define NETSPARSE_SPARSE_COO_HH

#include <cstdint>
#include <vector>

namespace netsparse {

/**
 * A sparse matrix as parallel arrays of (row, col[, value]) triples.
 *
 * Values are optional: graph-style "pattern" matrices leave vals empty,
 * in which case every nonzero has an implicit value of 1.0f.
 */
struct Coo
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> rowIdx;
    std::vector<std::uint32_t> colIdx;
    std::vector<float> vals;

    std::size_t nnz() const { return rowIdx.size(); }
    bool hasValues() const { return !vals.empty(); }

    /** Append one nonzero. */
    void
    push(std::uint32_t r, std::uint32_t c)
    {
        rowIdx.push_back(r);
        colIdx.push_back(c);
    }

    /** Append one nonzero with an explicit value. */
    void
    push(std::uint32_t r, std::uint32_t c, float v)
    {
        push(r, c);
        vals.push_back(v);
    }

    /** Value of nonzero @p i (1.0 for pattern matrices). */
    float
    valueAt(std::size_t i) const
    {
        return hasValues() ? vals[i] : 1.0f;
    }

    /** Sort nonzeros by (row, col). Stable with respect to duplicates. */
    void sortRowMajor();

    /**
     * Remove duplicate (row, col) entries, summing values.
     * @pre the matrix is sorted row-major.
     */
    void dedupe();

    /** Panic unless all coordinates are in range. */
    void validate() const;
};

} // namespace netsparse

#endif // NETSPARSE_SPARSE_COO_HH
