/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * The paper evaluates on five SuiteSparse matrices (arabic-2005,
 * europe_osm, queen_4147, stokes, uk-2002). Those files are not available
 * offline, so this module synthesizes structural analogues whose
 * *communication-relevant* characteristics match the paper's
 * characterization (Tables 1 and 4, Section 3):
 *
 *  - arabic / uk  : power-law web crawls. Lexicographic URL ordering gives
 *                   strong index locality; hub pages give heavy idx
 *                   repetition (high filter rates) and rack-level sharing.
 *  - europe_osm   : road network. Degree ~2, near-diagonal, almost no idx
 *                   repetition (SA ratio 1:0.02, filter rate 8%).
 *  - queen_4147   : 3-D FEM. Wide band around the diagonal; perfect
 *                   temporal destination locality (1.00 in Table 4).
 *  - stokes       : coupled solver. Band plus a far off-diagonal coupling
 *                   block, so every node talks to one far partner; no
 *                   rack-level sharing (cache hit rate 6%).
 *
 * All generators are deterministic for a given seed, and every row draws
 * from its own splitmix64-derived RNG stream: row r of a matrix is a pure
 * function of (params, r). That independence is what lets the streaming
 * builder (sparse/stream_gen.hh) emit per-node CSR partitions chunk by
 * chunk without ever materializing the global matrix, while staying
 * byte-equivalent to the materializing path here.
 */

#ifndef NETSPARSE_SPARSE_GENERATORS_HH
#define NETSPARSE_SPARSE_GENERATORS_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sparse/csr.hh"

namespace netsparse {

/**
 * Parameters for the power-law web-crawl generator.
 *
 * Pages are ordered lexicographically by URL, so links are either
 * *local* (same host: a short hop in index space) or *foreign*
 * (another host: a popular "region" of the index space, with popularity
 * following a zipf law). Links within one page tend to stay on the same
 * foreign host, which is what gives web crawls their strong temporal
 * remote destination locality (Table 4).
 */
struct WebCrawlParams
{
    std::uint32_t rows = 1 << 17;
    /** Mean out-degree. */
    double avgDeg = 28.0;
    /** Probability that a link targets a nearby page. */
    double pLocal = 0.55;
    /** Mean distance of a local link. */
    double localRange = 150.0;
    /** Number of foreign host regions; 0 means rows / 1024. */
    std::uint32_t numRegions = 0;
    /** Pages of one region a link can land on. */
    std::uint32_t regionWidth = 32;
    /** Zipf exponent of region popularity (higher -> more reuse). */
    double regionAlpha = 1.30;
    /** Chance a foreign link jumps to a new region mid-page. */
    double pNewRegion = 0.15;
    std::uint64_t seed = 0xA2AB1C;
};

/** Power-law web crawl (arabic-2005 / uk-2002 style). */
Coo makeWebCrawl(const WebCrawlParams &p);

/** Parameters for the road-network generator. */
struct RoadNetworkParams
{
    std::uint32_t rows = 1 << 18;
    /** Probability of each of the two along-road neighbors. */
    double pChain = 0.75;
    /** Probability of a cross-street edge (distance ~ gridWidth). */
    double pCross = 0.28;
    /** Cross-street stride; 0 means sqrt(rows). */
    std::uint32_t gridWidth = 0;
    /** Probability of a long-range edge (highway ramp / ferry). */
    double pLong = 0.03;
    std::uint64_t seed = 0xE00905;
};

/** Low-degree near-diagonal road network (europe_osm style). */
Coo makeRoadNetwork(const RoadNetworkParams &p);

/** Parameters for the banded FEM generator. */
struct BandedFemParams
{
    std::uint32_t rows = 1 << 16;
    /** Half bandwidth: columns fall in [r-band, r+band]. */
    std::uint32_t band = 96;
    /** Mean nonzeros per row. */
    std::uint32_t deg = 79;
    std::uint64_t seed = 0x04EE17;
};

/** Wide-band FEM matrix (queen_4147 style). */
Coo makeBandedFem(const BandedFemParams &p);

/** Parameters for the coupled-solver generator. */
struct StokesLikeParams
{
    std::uint32_t rows = 3 << 15;
    /** Half bandwidth of the local block. */
    std::uint32_t band = 64;
    /** Mean nonzeros per row. */
    std::uint32_t deg = 31;
    /** Fraction of nonzeros in the far coupling block. */
    double pCoupled = 0.25;
    /** Jitter around the coupling target. */
    std::uint32_t couplingJitter = 48;
    std::uint64_t seed = 0x570CE5;
};

/** Band + far-coupling solver matrix (stokes style). */
Coo makeStokesLike(const StokesLikeParams &p);

/** Any generator's parameter set, for kind-generic code. */
using GeneratorParams = std::variant<WebCrawlParams, RoadNetworkParams,
                                     BandedFemParams, StokesLikeParams>;

/** Row count described by a parameter set. */
std::uint32_t generatorRows(const GeneratorParams &p);

/** Materialize the matrix a parameter set describes. */
Coo makeMatrix(const GeneratorParams &p);

/**
 * Single-row emitter over any generator.
 *
 * emitRow(r) appends exactly the column indices makeMatrix() would push
 * for row r, in the same order, independent of every other row: each row
 * draws from its own RNG stream seeded by splitmix64(seed, r). The
 * materializing makeX() entry points are themselves built on this class,
 * so the equivalence is by construction, not by parallel maintenance.
 */
class RowEmitter
{
  public:
    explicit RowEmitter(const GeneratorParams &p);

    /** Total rows of the described matrix. */
    std::uint32_t rows() const { return rows_; }

    /** Append row @p r's column indices in emission order. */
    void emitRow(std::uint32_t r, std::vector<std::uint32_t> &out) const;

    /** Mean nonzeros per row the parameters target (for reserve()). */
    double expectedDegree() const;

  private:
    GeneratorParams p_; // defaults (numRegions, gridWidth) resolved
    std::uint32_t rows_ = 0;
    std::vector<std::uint32_t> regionBase_; // web crawl only
};

/** The five benchmark matrices of the paper's evaluation. */
enum class MatrixKind
{
    Arabic,
    Europe,
    Queen,
    Stokes,
    Uk,
};

/** Short lowercase name used in tables ("arabic", "europe", ...). */
const char *matrixName(MatrixKind kind);

/** All five kinds, in the paper's table order. */
std::vector<MatrixKind> allMatrixKinds();

/**
 * Resolved generator parameters for a paper benchmark analogue at a
 * given linear row-count scale. makeBenchmarkMatrix() materializes
 * these; buildPartitionedMatrix() (sparse/stream_gen.hh) streams them.
 */
GeneratorParams benchmarkParams(MatrixKind kind, double scale = 1.0);

/**
 * Build the structural analogue of a paper benchmark matrix.
 *
 * @param kind which matrix to synthesize.
 * @param scale linear scale on the row count (1.0 gives the default
 *        sizes, which are roughly 100-200x smaller than the SuiteSparse
 *        originals but preserve per-node structure at 128 nodes; see
 *        paperScale() in sparse/stream_gen.hh for full-size runs).
 */
Csr makeBenchmarkMatrix(MatrixKind kind, double scale = 1.0);

/** A named benchmark matrix. */
struct BenchmarkMatrix
{
    MatrixKind kind;
    std::string name;
    Csr matrix;
};

/** Generate the full 5-matrix suite. */
std::vector<BenchmarkMatrix> benchmarkSuite(double scale = 1.0);

} // namespace netsparse

#endif // NETSPARSE_SPARSE_GENERATORS_HH
