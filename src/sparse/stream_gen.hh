/**
 * @file
 * Streaming generation of partitioned matrices at paper scale.
 *
 * The paper's matrices carry 108-640M nonzeros; materializing one as a
 * global COO (8 bytes/nnz) plus its CSR conversion (12 bytes/nnz) costs
 * ~13 GB at arabic-2005 size, which is what kept the repo's experiments
 * 100-200x under scale (EXPERIMENTS.md). Because every generator row is
 * an independent function of (params, row) - see sparse/generators.hh -
 * the matrix can instead be *streamed*: rows are emitted in chunks and
 * appended directly to the per-node CSR partition that owns them, so
 * peak memory is the final partitioned form (~4 bytes/nnz for column
 * indices plus row pointers) plus one bounded chunk buffer. No global
 * COO or CSR is ever held.
 *
 * Determinism contract: buildPartitionedMatrix(params, nodes, chunk)
 * yields byte-identical per-node partitions for any chunkRows value,
 * and its concatenated rows equal Csr::fromCoo(makeMatrix(params))
 * exactly (fromCoo's counting sort is stable, so both paths carry each
 * row's columns in emission order). docs/scaling.md works through the
 * memory model and the paper-scale presets.
 */

#ifndef NETSPARSE_SPARSE_STREAM_GEN_HH
#define NETSPARSE_SPARSE_STREAM_GEN_HH

#include <cstdint>
#include <vector>

#include "sparse/generators.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** One node's contiguous row slice, in CSR form. */
struct NodeCsr
{
    /** Global index of the first owned row. */
    std::uint32_t firstRow = 0;
    /** Local row pointers: rowPtr[i+1]-rowPtr[i] = degree of row i. */
    std::vector<std::uint64_t> rowPtr{0};
    /** Column indices, rows concatenated in emission order. */
    std::vector<std::uint32_t> colIdx;

    std::uint32_t
    numRows() const
    {
        return static_cast<std::uint32_t>(rowPtr.size()) - 1;
    }

    std::uint64_t nnz() const { return rowPtr.back(); }
};

/** A matrix held only as its per-node partitions. */
struct PartitionedMatrix
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint64_t nnz = 0;
    Partition1D part;
    std::vector<NodeCsr> nodes;

    /**
     * Surrender the per-node column streams (each node's row-scan
     * index stream, exactly what HostNode consumes), dropping the row
     * pointers. Leaves the struct empty of payload; avoids doubling
     * memory when handing a paper-scale build to runGather().
     */
    std::vector<std::vector<std::uint32_t>> takeStreams();
};

/**
 * Stream-generate a matrix directly into per-node CSR partitions.
 *
 * @param params generator parameters (see benchmarkParams()).
 * @param numNodes parts of the equal-rows partition; peak transient
 *        memory is one chunk, final memory is the partitioned matrix.
 * @param chunkRows rows emitted per chunk buffer; any value yields
 *        identical output (the default balances buffer size against
 *        loop overhead).
 */
PartitionedMatrix buildPartitionedMatrix(const GeneratorParams &params,
                                         std::uint32_t numNodes,
                                         std::uint32_t chunkRows = 1
                                             << 16);

/** Streamed benchmarkParams(kind, scale) analogue. */
PartitionedMatrix buildPartitionedBenchmark(MatrixKind kind, double scale,
                                            std::uint32_t numNodes,
                                            std::uint32_t chunkRows = 1
                                                << 16);

/**
 * Row-count scale at which a kind's analogue reaches the nonzero count
 * of its SuiteSparse original (Table 1: arabic-2005 640M, europe_osm
 * 108M, queen_4147 330M, stokes 349M, uk-2002 298M).
 */
double paperScale(MatrixKind kind);

/**
 * Scale of the CI paper-scale smoke run: a ~100M-nnz arabic analogue
 * (3.7M rows), the smallest size at which the warm-up and redundancy
 * effects EXPERIMENTS.md tracks are amortized like the paper's.
 */
constexpr double kCiPaperScale = 28.0;

} // namespace netsparse

#endif // NETSPARSE_SPARSE_STREAM_GEN_HH
