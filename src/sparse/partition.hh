/**
 * @file
 * 1-D row partitioning of a square sparse matrix across cluster nodes.
 *
 * With 1-D partitioning (Section 2.1 of the paper), node i owns a
 * contiguous range of rows, the matching range of the input property
 * array, and the matching range of the output property array. Writes are
 * always local; reads of input properties whose index falls outside the
 * local range become remote Property Requests (PRs).
 */

#ifndef NETSPARSE_SPARSE_PARTITION_HH
#define NETSPARSE_SPARSE_PARTITION_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "sparse/csr.hh"

namespace netsparse {

/**
 * A 1-D partition: boundaries_[i] .. boundaries_[i+1]) is node i's range.
 */
class Partition1D
{
  public:
    Partition1D() = default;

    /** Split @p count indices into @p parts nearly-equal contiguous runs. */
    static Partition1D equalRows(std::uint32_t count, std::uint32_t parts);

    /**
     * Split rows so that each part holds a nearly-equal share of nonzeros
     * (greedy prefix split; still contiguous).
     */
    static Partition1D equalNnz(const Csr &m, std::uint32_t parts);

    /** Number of parts (nodes). */
    std::uint32_t numParts() const
    {
        return static_cast<std::uint32_t>(boundaries_.size()) - 1;
    }

    /** First index owned by @p part. */
    std::uint32_t begin(NodeId part) const { return boundaries_[part]; }

    /** One past the last index owned by @p part. */
    std::uint32_t end(NodeId part) const { return boundaries_[part + 1]; }

    /** Number of indices owned by @p part. */
    std::uint32_t
    size(NodeId part) const
    {
        return end(part) - begin(part);
    }

    /**
     * The node that owns global index @p idx. Inline: this is the
     * Destination Solver's lookup, called once per processed idx on
     * the RIG client fast path.
     */
    NodeId
    ownerOf(std::uint32_t idx) const
    {
        if (stride_ > 0 && idx < total_)
            return idx / stride_;
        return ownerOfSearch(idx);
    }

    /** Offset of @p idx within its owner's range. */
    std::uint32_t
    localIndex(std::uint32_t idx) const
    {
        return idx - boundaries_[ownerOf(idx)];
    }

    /** Total index count covered by the partition. */
    std::uint32_t total() const { return boundaries_.back(); }

    const std::vector<std::uint32_t> &boundaries() const
    {
        return boundaries_;
    }

  private:
    explicit Partition1D(std::vector<std::uint32_t> b);

    /** Binary-search slow path of ownerOf (non-uniform partitions). */
    NodeId ownerOfSearch(std::uint32_t idx) const;

    std::vector<std::uint32_t> boundaries_;
    // Fast path for equal-rows partitions: owner = idx / stride_.
    // An out-of-range idx fails the total_ guard and falls through to
    // ownerOfSearch, which carries the range assertion.
    std::uint32_t stride_ = 0;
    std::uint32_t total_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SPARSE_PARTITION_HH
