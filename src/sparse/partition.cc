#include "sparse/partition.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

Partition1D::Partition1D(std::vector<std::uint32_t> b)
    : boundaries_(std::move(b))
{
    ns_assert(boundaries_.size() >= 2, "partition needs at least one part");
    // Detect a uniform stride so ownerOf can avoid the binary search.
    std::uint32_t stride = boundaries_[1] - boundaries_[0];
    bool uniform = stride > 0;
    for (std::size_t i = 1; uniform && i + 1 < boundaries_.size(); ++i) {
        // The last part may be smaller; all earlier parts must match.
        std::uint32_t s = boundaries_[i + 1] - boundaries_[i];
        if (i + 2 < boundaries_.size() ? s != stride : s > stride)
            uniform = false;
    }
    stride_ = uniform ? stride : 0;
    total_ = boundaries_.back();
}

Partition1D
Partition1D::equalRows(std::uint32_t count, std::uint32_t parts)
{
    ns_assert(parts > 0 && count >= parts,
              "cannot split ", count, " rows into ", parts, " parts");
    std::uint32_t per = (count + parts - 1) / parts;
    std::vector<std::uint32_t> b;
    b.reserve(parts + 1);
    for (std::uint32_t p = 0; p <= parts; ++p)
        b.push_back(std::min(per * p, count));
    return Partition1D(std::move(b));
}

Partition1D
Partition1D::equalNnz(const Csr &m, std::uint32_t parts)
{
    ns_assert(parts > 0 && m.rows >= parts,
              "cannot split ", m.rows, " rows into ", parts, " parts");
    std::vector<std::uint32_t> b(parts + 1, 0);
    double target = static_cast<double>(m.nnz()) / parts;
    std::uint32_t row = 0;
    for (std::uint32_t p = 1; p < parts; ++p) {
        auto goal = static_cast<std::uint64_t>(target * p + 0.5);
        // Advance until the prefix nnz reaches the goal, but leave enough
        // rows for the remaining parts.
        std::uint32_t max_row = m.rows - (parts - p);
        while (row < max_row && m.rowPtr[row + 1] < goal)
            ++row;
        if (row < b[p - 1] + 1)
            row = b[p - 1] + 1;
        b[p] = row;
    }
    b[parts] = m.rows;
    return Partition1D(std::move(b));
}

NodeId
Partition1D::ownerOfSearch(std::uint32_t idx) const
{
    ns_assert(idx < boundaries_.back(), "index ", idx, " out of partition");
    auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), idx);
    return static_cast<NodeId>(it - boundaries_.begin()) - 1;
}

} // namespace netsparse
