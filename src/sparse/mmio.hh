/**
 * @file
 * Matrix Market (.mtx) coordinate-format I/O.
 *
 * Supports the subset of the format used by SuiteSparse downloads:
 * "matrix coordinate {real|integer|pattern} {general|symmetric}".
 * This lets users of the library run every experiment on the *actual*
 * paper matrices when they have them on disk.
 */

#ifndef NETSPARSE_SPARSE_MMIO_HH
#define NETSPARSE_SPARSE_MMIO_HH

#include <iosfwd>
#include <string>

#include "sparse/coo.hh"

namespace netsparse {

/** Parse a Matrix Market stream. Throws via ns_fatal on malformed input. */
Coo readMatrixMarket(std::istream &in);

/** Load a Matrix Market file from disk. */
Coo readMatrixMarketFile(const std::string &path);

/** Write @p m in Matrix Market coordinate format. */
void writeMatrixMarket(std::ostream &out, const Coo &m);

/** Write @p m to a file. */
void writeMatrixMarketFile(const std::string &path, const Coo &m);

} // namespace netsparse

#endif // NETSPARSE_SPARSE_MMIO_HH
