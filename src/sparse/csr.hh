/**
 * @file
 * Compressed sparse row (CSR) matrix.
 */

#ifndef NETSPARSE_SPARSE_CSR_HH
#define NETSPARSE_SPARSE_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hh"

namespace netsparse {

/**
 * CSR sparse matrix. rowPtr has rows+1 entries; the column indices of row
 * r live in colIdx[rowPtr[r] .. rowPtr[r+1]).
 */
struct Csr
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint64_t> rowPtr;
    std::vector<std::uint32_t> colIdx;
    std::vector<float> vals;

    std::size_t nnz() const { return colIdx.size(); }
    bool hasValues() const { return !vals.empty(); }

    /** Number of nonzeros in row @p r. */
    std::uint64_t
    rowDegree(std::uint32_t r) const
    {
        return rowPtr[r + 1] - rowPtr[r];
    }

    /** Column indices of row @p r. */
    std::span<const std::uint32_t>
    rowCols(std::uint32_t r) const
    {
        return {colIdx.data() + rowPtr[r],
                static_cast<std::size_t>(rowDegree(r))};
    }

    /** Value of nonzero @p i (1.0 for pattern matrices). */
    float
    valueAt(std::size_t i) const
    {
        return hasValues() ? vals[i] : 1.0f;
    }

    /** Build from a COO matrix (any nonzero order; duplicates kept). */
    static Csr fromCoo(const Coo &coo);

    /** Convert back to row-major-sorted COO. */
    Coo toCoo() const;

    /** Transposed copy (CSC of the original, expressed as CSR). */
    Csr transposed() const;

    /** Panic unless structurally consistent. */
    void validate() const;
};

} // namespace netsparse

#endif // NETSPARSE_SPARSE_CSR_HH
