#include "sparse/coo.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace netsparse {

void
Coo::sortRowMajor()
{
    std::vector<std::size_t> perm(nnz());
    std::iota(perm.begin(), perm.end(), 0);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (rowIdx[a] != rowIdx[b])
                             return rowIdx[a] < rowIdx[b];
                         return colIdx[a] < colIdx[b];
                     });

    auto apply = [&](auto &v) {
        using T = std::decay_t<decltype(v[0])>;
        std::vector<T> out(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = v[perm[i]];
        v = std::move(out);
    };
    apply(rowIdx);
    apply(colIdx);
    if (hasValues())
        apply(vals);
}

void
Coo::dedupe()
{
    if (nnz() == 0)
        return;
    std::size_t w = 0;
    for (std::size_t i = 1; i < nnz(); ++i) {
        if (rowIdx[i] == rowIdx[w] && colIdx[i] == colIdx[w]) {
            if (hasValues())
                vals[w] += vals[i];
        } else {
            ++w;
            rowIdx[w] = rowIdx[i];
            colIdx[w] = colIdx[i];
            if (hasValues())
                vals[w] = vals[i];
        }
    }
    rowIdx.resize(w + 1);
    colIdx.resize(w + 1);
    if (hasValues())
        vals.resize(w + 1);
}

void
Coo::validate() const
{
    ns_assert(rowIdx.size() == colIdx.size(),
              "row/col arrays differ in length");
    ns_assert(vals.empty() || vals.size() == rowIdx.size(),
              "value array length mismatch");
    for (std::size_t i = 0; i < nnz(); ++i) {
        ns_assert(rowIdx[i] < rows, "row index out of range at nnz ", i);
        ns_assert(colIdx[i] < cols, "col index out of range at nnz ", i);
    }
}

} // namespace netsparse
