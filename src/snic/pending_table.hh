/**
 * @file
 * The Pending PR Table (Section 5.2): a per-RIG-unit CAM tracking the
 * unit's outstanding PRs. A new idx that matches an outstanding entry is
 * "coalesced": no new PR is issued and the idx waits for the response of
 * the entry it matched. Only PRs from the same RIG unit coalesce (the
 * paper avoids cross-unit synchronization).
 */

#ifndef NETSPARSE_SNIC_PENDING_TABLE_HH
#define NETSPARSE_SNIC_PENDING_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace netsparse {

/** One Pending PR Table (a CAM with a fixed number of entries). */
class PendingPrTable
{
  public:
    explicit PendingPrTable(std::uint32_t capacity) : capacity_(capacity)
    {
        ns_assert(capacity_ > 0, "pending table needs capacity");
    }

    /** True when no more PRs can be tracked (the RIG unit must stall). */
    bool full() const { return total_ >= capacity_; }

    /** True when a PR for @p idx is outstanding. */
    bool contains(PropIdx idx) const { return entries_.count(idx) != 0; }

    /**
     * Track a newly issued PR. With coalescing disabled, several PRs
     * for the same idx can be outstanding at once; each occupies its
     * own CAM entry. @pre !full().
     */
    void
    insert(PropIdx idx)
    {
        ns_assert(!full(), "pending table overflow");
        ++entries_[idx].outstanding;
        ++total_;
        maxOccupancy_ = std::max<std::uint64_t>(maxOccupancy_, total_);
    }

    /** Coalesce another idx occurrence onto an outstanding entry. */
    void
    addWaiter(PropIdx idx)
    {
        auto it = entries_.find(idx);
        ns_assert(it != entries_.end(), "no pending entry for idx ", idx);
        ++it->second.waiters;
    }

    /**
     * A response arrived: retire one entry for @p idx.
     * @return number of idx occurrences it satisfies (1 + waiters once
     *         the last duplicate retires), or 0 when nothing was
     *         outstanding (stale response).
     */
    std::uint32_t
    complete(PropIdx idx)
    {
        auto it = entries_.find(idx);
        if (it == entries_.end())
            return 0;
        ns_assert(total_ > 0, "pending table accounting underflow");
        --total_;
        if (it->second.outstanding > 1) {
            --it->second.outstanding;
            return 1;
        }
        std::uint32_t served = 1 + it->second.waiters;
        entries_.erase(it);
        return served;
    }

    /** Discard every entry (watchdog-triggered RIG failure). */
    void
    reset()
    {
        entries_.clear();
        total_ = 0;
    }

    /** Outstanding PRs (CAM entries in use). */
    std::uint32_t size() const { return total_; }

    std::uint32_t capacity() const { return capacity_; }
    std::uint64_t maxOccupancy() const { return maxOccupancy_; }

  private:
    struct Entry
    {
        std::uint32_t outstanding = 0;
        std::uint32_t waiters = 0;
    };

    std::uint32_t capacity_;
    std::unordered_map<PropIdx, Entry> entries_;
    std::uint32_t total_ = 0;
    std::uint64_t maxOccupancy_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_PENDING_TABLE_HH
