/**
 * @file
 * The Pending PR Table (Section 5.2): a per-RIG-unit CAM tracking the
 * unit's outstanding PRs. A new idx that matches an outstanding entry is
 * "coalesced": no new PR is issued and the idx waits for the response of
 * the entry it matched. Only PRs from the same RIG unit coalesce (the
 * paper avoids cross-unit synchronization).
 */

#ifndef NETSPARSE_SNIC_PENDING_TABLE_HH
#define NETSPARSE_SNIC_PENDING_TABLE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace netsparse {

/**
 * One Pending PR Table (a CAM with a fixed number of entries).
 *
 * The table is on the per-idx hot path of every RIG client chunk, so it
 * is an open-addressing hash table over a fixed slot array sized at
 * construction: insert/complete never allocate, unlike a node-based map
 * which pays one heap round trip per outstanding PR.
 */
class PendingPrTable
{
  public:
    explicit PendingPrTable(std::uint32_t capacity) : capacity_(capacity)
    {
        ns_assert(capacity_ > 0, "pending table needs capacity");
        ns_assert(capacity_ <= 0xFFFF,
                  "pending capacity exceeds the 16-bit slot counter");
        // <= 50% load at full CAM occupancy keeps probe chains short.
        std::size_t want = static_cast<std::size_t>(capacity_) * 2;
        slotCount_ = 16;
        while (slotCount_ < want)
            slotCount_ *= 2;
        slots_.resize(slotCount_);
    }

    /** True when no more PRs can be tracked (the RIG unit must stall). */
    bool full() const { return total_ >= capacity_; }

    /** True when a PR for @p idx is outstanding. */
    bool contains(PropIdx idx) const { return find(idx) != nullptr; }

    /**
     * Track a newly issued PR. With coalescing disabled, several PRs
     * for the same idx can be outstanding at once; each occupies its
     * own CAM entry. @pre !full().
     */
    void
    insert(PropIdx idx)
    {
        ns_assert(!full(), "pending table overflow");
        ns_assert(idx <= 0xFFFFFFFFull,
                  "idx ", idx, " exceeds the 32-bit slot key");
        std::size_t i = slotOf(idx);
        while (slots_[i].outstanding != 0 && slots_[i].idx != idx)
            i = (i + 1) & (slotCount_ - 1);
        if (slots_[i].outstanding == 0) {
            slots_[i].idx = static_cast<std::uint32_t>(idx);
            slots_[i].waiters = 0;
        }
        ++slots_[i].outstanding;
        ++total_;
        maxOccupancy_ = std::max<std::uint64_t>(maxOccupancy_, total_);
    }

    /** Coalesce another idx occurrence onto an outstanding entry. */
    void
    addWaiter(PropIdx idx)
    {
        Slot *s = find(idx);
        ns_assert(s, "no pending entry for idx ", idx);
        // Waiters accumulate only while one PR is in flight; even a
        // degenerate single-idx stream coalesces a few thousand idxs
        // per RTT, far under the 16-bit ceiling.
        ns_assert(s->waiters < 0xFFFF, "waiter counter saturated");
        ++s->waiters;
    }

    /**
     * A response arrived: retire one entry for @p idx.
     * @return number of idx occurrences it satisfies (1 + waiters once
     *         the last duplicate retires), or 0 when nothing was
     *         outstanding (stale response).
     */
    std::uint32_t
    complete(PropIdx idx)
    {
        Slot *s = find(idx);
        if (!s)
            return 0;
        ns_assert(total_ > 0, "pending table accounting underflow");
        --total_;
        if (s->outstanding > 1) {
            --s->outstanding;
            return 1;
        }
        std::uint32_t served = 1 + s->waiters;
        erase(static_cast<std::size_t>(s - slots_.data()));
        return served;
    }

    /** Discard every entry (watchdog-triggered RIG failure). */
    void
    reset()
    {
        for (Slot &s : slots_)
            s.outstanding = 0;
        total_ = 0;
    }

    /** Outstanding PRs (CAM entries in use). */
    std::uint32_t size() const { return total_; }

    std::uint32_t capacity() const { return capacity_; }
    std::uint64_t maxOccupancy() const { return maxOccupancy_; }

  private:
    /**
     * An occupied CAM slot; outstanding == 0 marks it free. Packed to 8
     * bytes (8 slots per cache line): idxs are matrix columns, which
     * fit 32 bits, and outstanding is bounded by the table capacity.
     */
    struct Slot
    {
        std::uint32_t idx = 0;
        std::uint16_t outstanding = 0;
        std::uint16_t waiters = 0;
    };
    static_assert(sizeof(Slot) == 8, "pending slot must stay packed");

    std::size_t
    slotOf(std::uint64_t idx) const
    {
        // Fibonacci hashing spreads the dense, strided idx patterns of
        // real gathers across the table.
        return static_cast<std::size_t>(
                   (idx * 0x9E3779B97F4A7C15ull) >> 32) &
               (slotCount_ - 1);
    }

    Slot *
    find(PropIdx idx)
    {
        std::size_t i = slotOf(idx);
        while (slots_[i].outstanding != 0) {
            if (slots_[i].idx == idx)
                return &slots_[i];
            i = (i + 1) & (slotCount_ - 1);
        }
        return nullptr;
    }

    const Slot *
    find(PropIdx idx) const
    {
        return const_cast<PendingPrTable *>(this)->find(idx);
    }

    /** Backward-shift deletion keeps probe chains tombstone-free. */
    void
    erase(std::size_t i)
    {
        slots_[i].outstanding = 0;
        std::size_t hole = i;
        std::size_t j = (i + 1) & (slotCount_ - 1);
        while (slots_[j].outstanding != 0) {
            std::size_t home = slotOf(slots_[j].idx);
            // Move j into the hole unless j's probe chain starts after
            // the hole (circular interval test).
            bool between = hole <= j ? (hole < home && home <= j)
                                     : (hole < home || home <= j);
            if (!between) {
                slots_[hole] = slots_[j];
                slots_[j].outstanding = 0;
                hole = j;
            }
            j = (j + 1) & (slotCount_ - 1);
        }
    }

    std::uint32_t capacity_;
    std::size_t slotCount_;
    std::vector<Slot> slots_;
    std::uint32_t total_ = 0;
    std::uint64_t maxOccupancy_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_PENDING_TABLE_HH
