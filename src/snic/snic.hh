/**
 * @file
 * The NetSparse SmartNIC (Figure 4): RIG units (client and server),
 * the shared Idx Filter, the NIC-level (De)Concatenator, the transmit
 * buffer, and the Q Control dispatcher for incoming read PRs.
 */

#ifndef NETSPARSE_SNIC_SNIC_HH
#define NETSPARSE_SNIC_SNIC_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concat/concatenator.hh"
#include "net/link.hh"
#include "net/pr_latency.hh"
#include "net/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "snic/idx_filter.hh"
#include "snic/pcie.hh"
#include "snic/rig_unit.hh"

namespace netsparse {

/** Static SNIC parameters (Table 5 defaults). */
struct SnicConfig
{
    /** Total RIG units; half run as clients, half as servers. */
    std::uint32_t numRigUnits = 32;
    /**
     * Tenant (job) id of this SNIC slice. A multi-job run instantiates
     * one virtual SNIC per (node, tenant) sharing the node's physical
     * NIC egress; the id is stamped on every PR the slice issues. 0 on
     * single-job runs (the default document is unchanged).
     */
    std::uint16_t tenant = 0;
    RigUnitConfig rigUnit;
    /** NIC-level concatenation point. */
    ConcatConfig concat;
    ProtocolParams proto;
    PcieConfig pcie;
    /** Tx buffer; the RIG clients stall when it fills (backpressure). */
    std::uint64_t txBufferBytes = 2ull << 20;
    /**
     * Send all response PRs of one received packet's reads with a
     * single event at the last fetch completion (docs/scaling.md),
     * instead of one event per read. The per-PR pipeline, PCIe and
     * memory accounting are unchanged; responses of a packet leave
     * together at the latest of their fetch ticks - a skew bounded by
     * the packet's own PCIe serialization - and in packet order, so
     * the result stays deterministic and shard-invariant. Off by
     * default: the timing-exact model sends each response at its own
     * fetch tick.
     */
    bool batchedServerReads = false;
};

/**
 * One node's SmartNIC. Client units are addressed by tids
 * [0, numClients); server units by [numClients, numRigUnits).
 */
class Snic : public PacketSink, public SnicContext
{
  public:
    /**
     * @param owner_of the Destination Solver: property idx -> home node.
     * @param num_idxs Idx Filter width (columns of the sparse matrix).
     */
    Snic(EventQueue &eq, SnicConfig cfg, NodeId self,
         std::function<NodeId(PropIdx)> owner_of, std::uint64_t num_idxs,
         std::string name);

    /** Attach the egress link toward this node's ToR switch. */
    void attachEgress(Link *egress) { egress_ = egress; }

    /** Reset per-kernel state (Idx Filter) before an iteration. */
    void configureForKernel();

    // --- Host-facing interface (driven by the verbs layer) ---

    std::uint32_t numClientUnits() const
    {
        return static_cast<std::uint32_t>(clients_.size());
    }

    /** True while client unit @p c executes a command. */
    bool clientBusy(std::uint32_t c) const { return clients_[c]->busy(); }

    /**
     * Post a RIG work request to client unit @p c. The call models the
     * host's doorbell write: the command starts one PCIe crossing later.
     */
    void postRig(std::uint32_t c, RigCommand cmd);

    // --- Network-facing interface ---

    void receivePacket(Packet &&pkt, std::uint32_t inPort) override;

    // --- SnicContext (services for the RIG units) ---

    NodeId selfNode() const override { return self_; }
    std::uint16_t tenant() const override { return cfg_.tenant; }
    NodeId ownerOf(PropIdx idx) const override { return ownerOf_(idx); }
    const Partition1D *
    ownerPartition() const override
    {
        return ownerPart_ ? &*ownerPart_ : nullptr;
    }

    /**
     * Declare that ownerOf is backed by @p part (stored by value), so
     * the RIG clients can resolve owners inline. The caller guarantees
     * the two agree; the cluster builder passes the matrix partition.
     */
    void setOwnerPartition(Partition1D part)
    {
        ownerPart_.emplace(std::move(part));
    }
    void sendPr(PropertyRequest &&pr, NodeId dest) override;
    bool txBackpressured() const override;
    IdxFilter &idxFilter() override { return filter_; }
    PcieModel &pcie() override { return pcie_; }
    const std::string &nodeName() const override { return name_; }
    PrLatencyStats *prLatency() override { return prLatency_.get(); }
    std::uint32_t spanComp() const override { return spanComp_; }

    /** Set this SNIC's id in the run's span component name table
     *  (sim/span.hh); assigned by the scheduler when spans are on. */
    void setSpanComp(std::uint32_t comp) { spanComp_ = comp; }

    /**
     * Allocate the PR latency collector: the clients start recording
     * lifecycle stamps and the egress path starts stamping them. Left
     * off (null) unless telemetry is enabled, so the default fast path
     * and stats document are untouched.
     */
    void enablePrLatency();

    // --- Statistics ---

    RigClientStats aggregateClientStats() const;
    RigServerStats aggregateServerStats() const;

    /**
     * Register per-RIG-unit, Idx-Filter, concatenator and rx counters
     * under "<prefix>." (the docs/observability.md SNIC contract, e.g.
     * "node3.snic.rig0.prsIssued").
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;
    const Concatenator &concatenator() const { return *concat_; }
    std::uint64_t rxPackets() const { return rxPackets_; }
    std::uint64_t rxBytes() const { return rxBytes_; }
    std::uint64_t rxPayloadBytes() const { return rxPayloadBytes_; }
    std::uint64_t rxResponses() const { return rxResponses_; }
    std::uint64_t rxReads() const { return rxReads_; }

    /** Read PRs issued by this node still awaiting responses. */
    std::uint64_t inflightPrs() const;
    /** Retransmissions performed so far (telemetry retransmit rate). */
    std::uint64_t totalRetransmits() const;

    RigClientUnit &clientUnit(std::uint32_t c) { return *clients_[c]; }

    const std::string &name() const { return name_; }

    /**
     * The event queue this SNIC schedules on. Under the parallel
     * engine the host must share it (host/host_node.cc asserts so):
     * doorbells and completions cross the host/SNIC boundary without a
     * Link, so the pair is indivisible for sharding.
     */
    EventQueue &eventQueue() const { return eq_; }

  private:
    EventQueue &eq_;
    SnicConfig cfg_;
    NodeId self_;
    std::function<NodeId(PropIdx)> ownerOf_;
    std::optional<Partition1D> ownerPart_;
    std::string name_;

    IdxFilter filter_;
    PcieModel pcie_;
    std::vector<std::unique_ptr<RigClientUnit>> clients_;
    std::vector<std::unique_ptr<RigServerUnit>> servers_;
    std::unique_ptr<Concatenator> concat_;
    std::unique_ptr<PrLatencyStats> prLatency_;
    Link *egress_ = nullptr;
    std::uint32_t nextServer_ = 0; // Q Control round-robin pointer
    /** Span component id (sim/span.hh); meaningful only when spans on. */
    std::uint32_t spanComp_ = 0;

    std::uint64_t rxPackets_ = 0;
    std::uint64_t rxBytes_ = 0;
    std::uint64_t rxPayloadBytes_ = 0;
    std::uint64_t rxResponses_ = 0;
    std::uint64_t rxReads_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_SNIC_HH
