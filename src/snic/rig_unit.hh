/**
 * @file
 * RIG Units (Sections 5.1-5.3, Figure 5).
 *
 * A client RIG unit executes coarse-grained Remote Indexed Gather
 * commands: it DMAs a batch of nonzero idxs from host memory, walks them
 * at one idx per SNIC cycle in a pipelined fashion, drops redundant ones
 * against the node-wide Idx Filter (filtering) and its private Pending
 * PR Table (coalescing), resolves the destination node of survivors, and
 * emits read PRs toward the NIC concatenator. It stalls only when the
 * Pending PR Table is full or the NIC transmit path backpressures.
 *
 * A server RIG unit turns incoming read PRs into response PRs by
 * fetching the property from its host's memory over PCIe, pipelined at
 * one PR per cycle.
 *
 * Simulation note: idx processing is batched into chunk events
 * (chunkPerEvent idxs per event) with exact cycle accounting, which
 * preserves throughput and stall behaviour at a tiny event cost.
 */

#ifndef NETSPARSE_SNIC_RIG_UNIT_HH
#define NETSPARSE_SNIC_RIG_UNIT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "snic/idx_filter.hh"
#include "snic/pcie.hh"
#include "snic/pending_table.hh"
#include "sparse/partition.hh"

namespace netsparse {

struct PrLatencyStats;

/**
 * The reliable-PR transport policy of a client RIG unit.
 *
 * When enabled, every issued read PR is tracked until its response
 * arrives; a PR whose response is overdue is retransmitted with
 * exponential backoff under a bounded retry budget, corrupt responses
 * are NACKed and refetched from the home node (bypassing the Property
 * Cache), and duplicate responses - the flip side of retransmission -
 * are suppressed by reqId. Disabled by default: the lossless fabric of
 * the paper needs none of it, and the zero-fault event stream must stay
 * bit-identical to the non-resilient simulator.
 */
struct RetryPolicy
{
    bool enabled = false;
    /** Response timeout of a PR's first attempt. */
    Tick timeout = 100 * ticks::us;
    /** Timeout multiplier per successive attempt. */
    double backoff = 2.0;
    /** Retransmissions allowed per PR before the command fails. */
    std::uint32_t maxRetries = 6;
};

/** Per-RIG-unit parameters (Table 5 defaults). */
struct RigUnitConfig
{
    /** SNIC clock. */
    double clockHz = 2.2e9;
    /** Pending PR Table entries. */
    std::uint32_t pendingCapacity = 256;
    /** Idx Buffer SRAM (DMA staging for idx batches). */
    std::uint32_t idxBufferBytes = 4096;
    /** Rx Property Buffer SRAM. */
    std::uint32_t propBufferBytes = 4096;
    /** Idxs processed per simulation event. */
    std::uint32_t chunkPerEvent = 32;
    /** Drop PRs whose Idx Filter bit is set. */
    bool filterEnabled = true;
    /** Drop PRs matching an outstanding entry of this unit. */
    bool coalesceEnabled = true;
    /** How long to wait before re-checking a backpressured Tx path. */
    Tick txRetryInterval = 100 * ticks::ns;
    /** Host DRAM access latency seen by server units. */
    Tick serverMemLatency = 100 * ticks::ns;
    /** Watchdog timeout for a RIG operation; 0 disables (Section 7.1). */
    Tick watchdogTimeout = 0;
    /** Reliable-PR retransmission layer (see RetryPolicy). */
    RetryPolicy retry;

    // --- Span tracing (sim/span.hh); all-zero means capture is off and
    // --- sendReadPr pays a single always-false test per issued PR.
    /** Keep-if-below sampling threshold (SpanParams::sampleThreshold). */
    std::uint64_t spanSampleThreshold = 0;
    /** Assign a span id to every PR (tail-exemplar capture modes). */
    bool spanRecordAll = false;
    /** Sampling-hash seed (SpanParams::seed). */
    std::uint64_t spanSeed = 0;
};

/** One Remote Indexed Gather command (the IBV_WR_RIG work request). */
struct RigCommand
{
    /** Host-memory idx list (one entry per nonzero of the batch). */
    const std::uint32_t *idxs = nullptr;
    std::size_t count = 0;
    /** Property size in bytes (K * 4). */
    std::uint32_t propBytes = 0;
    /** Caller-chosen identifier. */
    std::uint64_t commandId = 0;
    /** Invoked once, with success=false on watchdog failure. */
    std::function<void(bool success)> onComplete;
};

/** Services an SNIC provides to its RIG units. */
class SnicContext
{
  public:
    virtual ~SnicContext() = default;

    /** This node's id. */
    virtual NodeId selfNode() const = 0;
    /** Tenant (job) id this SNIC slice belongs to; 0 on single-job
     *  runs (see PropertyRequest::tenant). */
    virtual std::uint16_t tenant() const { return 0; }
    /** The home node of a property (the Destination Solver's answer). */
    virtual NodeId ownerOf(PropIdx idx) const = 0;
    /**
     * The partition behind ownerOf, when there is one, or null. The
     * per-idx client loop uses it to resolve owners inline (the
     * equal-rows stride divide) instead of paying a virtual call plus
     * a std::function dispatch per nonzero. Must agree with ownerOf.
     */
    virtual const Partition1D *ownerPartition() const { return nullptr; }
    /** Hand a PR to the NIC transmit path. */
    virtual void sendPr(PropertyRequest &&pr, NodeId dest) = 0;
    /** True while the transmit buffer is too full to accept PRs. */
    virtual bool txBackpressured() const = 0;
    /** The node-wide Idx Filter. */
    virtual IdxFilter &idxFilter() = 0;
    /** The host-SNIC PCIe connection. */
    virtual PcieModel &pcie() = 0;

    /** Trace/stats identity of the owning SNIC (e.g. "node3.snic"). */
    virtual const std::string &
    nodeName() const
    {
        static const std::string fallback = "snic";
        return fallback;
    }

    /**
     * The node's PR latency collector, or null when lifecycle
     * accounting is off (the telemetry-disabled default).
     */
    virtual PrLatencyStats *prLatency() { return nullptr; }

    /** This SNIC's component id in the run's span name table
     *  (sim/span.hh); only consulted for PRs that carry a span id. */
    virtual std::uint32_t spanComp() const { return 0; }
};

/** Statistics of one client RIG unit. */
struct RigClientStats
{
    std::uint64_t commands = 0;
    std::uint64_t idxsProcessed = 0;
    std::uint64_t localIdxs = 0;
    std::uint64_t prsIssued = 0;
    std::uint64_t filtered = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t responses = 0;
    std::uint64_t staleResponses = 0;
    std::uint64_t pendingStalls = 0;
    std::uint64_t txStalls = 0;
    std::uint64_t watchdogFailures = 0;
    // Recovery counters; all zero unless RetryPolicy::enabled.
    std::uint64_t retransmits = 0;
    std::uint64_t nacks = 0;
    std::uint64_t corruptDropped = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t retriesExhausted = 0;
};

/** A RIG unit configured as a client thread. */
class RigClientUnit
{
  public:
    RigClientUnit(EventQueue &eq, const RigUnitConfig &cfg,
                  SnicContext &ctx, std::uint16_t tid);

    /** True while a command is executing. */
    bool busy() const { return active_; }

    std::uint16_t tid() const { return tid_; }

    /** Begin a RIG command. @pre !busy(). */
    void start(RigCommand cmd);

    /** Deliver a response PR addressed to this unit. */
    void onResponse(const PropertyRequest &pr);

    const RigClientStats &stats() const { return stats_; }

    /** The unit's Pending PR Table (occupancy statistics). */
    const PendingPrTable &pendingTable() const { return pending_; }

    /** Issued read PRs still awaiting a response (telemetry). */
    std::uint64_t outstandingPrs() const { return outstanding_; }

  private:
    /** One issued read PR awaiting its response (retry enabled). */
    struct InflightPr
    {
        PropIdx idx = 0;
        NodeId dest = invalidNode;
        /** Retransmissions performed so far. */
        std::uint32_t attempts = 0;
        /** When the next missing response triggers a retransmit. */
        Tick deadline = 0;
        /** Refetch after corruption: skip the Property Cache. */
        bool bypassCache = false;
    };

    void scheduleChunk(Tick when);
    /** Trace track for this unit ("<node>.rig<tid>"). */
    std::uint32_t traceTrack() const;
    void processChunk();
    void maybeComplete();
    void finish(bool success);
    /** Build and transmit one read PR; @p attempt > 0 on retransmits
     *  (span events tag re-sends instead of re-opening the span). */
    void sendReadPr(std::uint32_t reqId, PropIdx idx, NodeId dest,
                    bool bypassCache, std::uint32_t attempt = 0);
    /** Backoff delay before attempt number @p attempts times out. */
    Tick retryDelay(std::uint32_t attempts) const;
    /** Ensure the retry timer fires no later than @p deadline. */
    void armRetryTimer(Tick deadline);
    /** Retransmit every overdue in-flight PR; fail on budget burnout. */
    void checkRetransmits();

    EventQueue &eq_;
    RigUnitConfig cfg_;
    SnicContext &ctx_;
    std::uint16_t tid_;
    Clock clock_;
    PendingPrTable pending_;

    bool active_ = false;
    RigCommand cmd_;
    std::size_t nextIdx_ = 0;
    std::uint64_t outstanding_ = 0;
    std::uint32_t nextReqId_ = 0;
    /** First reqId of the live command: the staleness watermark. */
    std::uint32_t cmdReqIdBase_ = 0;
    bool chunkScheduled_ = false;
    bool waitingForPending_ = false;
    std::uint64_t epoch_ = 0; // invalidates watchdogs/events across cmds
    Tick lastWriteDone_ = 0;

    /** In-flight reads by reqId; ordered so retransmit scans are
     *  deterministic. Populated only when retry is enabled. */
    std::map<std::uint32_t, InflightPr> inflight_;
    /** Deadline the armed retry timer targets; 0 when unarmed. */
    Tick retryTimerAt_ = 0;
    /** Invalidates superseded retry-timer events. */
    std::uint64_t retryTimerGen_ = 0;

    RigClientStats stats_;
};

/** Statistics of one server RIG unit. */
struct RigServerStats
{
    std::uint64_t readsServed = 0;
    std::uint64_t bytesFetched = 0;
};

/** A RIG unit configured as a server thread. */
class RigServerUnit
{
  public:
    RigServerUnit(EventQueue &eq, const RigUnitConfig &cfg,
                  SnicContext &ctx, std::uint16_t tid);

    std::uint16_t tid() const { return tid_; }

    /** Serve one incoming read PR. */
    void handleRead(PropertyRequest &&pr);

    /**
     * Serve one read without scheduling the response event: performs
     * the full pipeline and PCIe/memory accounting, rewrites @p pr
     * into its response in place, and returns the fetch-complete tick.
     * The caller owns sending the response at (or after) that tick -
     * the SNIC's batched receive path (snic.cc) uses this to collapse
     * a packet's worth of reads into a single response-send event.
     */
    Tick prepareRead(PropertyRequest &pr);

    const RigServerStats &stats() const { return stats_; }

  private:
    EventQueue &eq_;
    RigUnitConfig cfg_;
    SnicContext &ctx_;
    std::uint16_t tid_;
    Clock clock_;
    Tick nextIssue_ = 0;

    RigServerStats stats_;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_RIG_UNIT_HH
