/**
 * @file
 * The Idx Filter (Section 5.2): a per-node bitvector, one bit per column
 * of the sparse matrix, allocated in SNIC DRAM and shared by all client
 * RIG units of the node. A set bit means the property for that idx has
 * already been fetched and written to host memory, so any further PR for
 * it is redundant and can be dropped ("filtering").
 *
 * The RIG units reach the filter through a small L1/L2 hierarchy; those
 * accesses are fully pipelined in the paper's design and therefore do
 * not limit idx throughput, so the simulator models them as free.
 *
 * Host-memory footprint: the modeled device owns the full bitvector, but
 * the simulator backs it with lazily allocated 4 KB pages. At paper
 * scale (1024 nodes over a 23M-column matrix) each node touches only its
 * local band plus the hot foreign regions, so most pages of most nodes
 * are never materialized; sizeBytes() keeps reporting the *modeled*
 * dense footprint (it feeds the stats document), residentBytes() the
 * simulator's actual one (docs/scaling.md).
 */

#ifndef NETSPARSE_SNIC_IDX_FILTER_HH
#define NETSPARSE_SNIC_IDX_FILTER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace netsparse {

/** One per-node Idx Filter bitvector (paged lazily per 4 KB). */
class IdxFilter
{
  public:
    /** @param num_idxs number of columns of the sparse matrix. */
    explicit IdxFilter(std::uint64_t num_idxs)
        : pages_((num_idxs + kPageIdxs - 1) / kPageIdxs),
          numIdxs_(num_idxs)
    {}

    /** True when the property for @p idx has already been fetched. */
    bool
    test(PropIdx idx) const
    {
        ns_assert(idx < numIdxs_, "idx ", idx, " outside the filter");
        const Page *pg = pages_[idx / kPageIdxs].get();
        if (!pg)
            return false;
        std::uint64_t off = idx & (kPageIdxs - 1);
        return (*pg)[off >> 6] >> (off & 63) & 1;
    }

    /** Mark @p idx as fetched. */
    void
    set(PropIdx idx)
    {
        ns_assert(idx < numIdxs_, "idx ", idx, " outside the filter");
        auto &slot = pages_[idx / kPageIdxs];
        if (!slot)
            slot = std::make_unique<Page>();
        std::uint64_t off = idx & (kPageIdxs - 1);
        (*slot)[off >> 6] |= 1ull << (off & 63);
    }

    /** Reset for a new kernel iteration (drops the resident pages). */
    void
    clear()
    {
        for (auto &pg : pages_)
            pg.reset();
    }

    /**
     * Modeled SNIC DRAM footprint in bytes: the dense bitvector the
     * hardware would allocate, independent of simulator paging (this
     * value is exported to the stats document).
     */
    std::uint64_t sizeBytes() const { return (numIdxs_ + 63) / 64 * 8; }

    /** Simulator-resident bytes (pages actually materialized). */
    std::uint64_t
    residentBytes() const
    {
        std::uint64_t n = 0;
        for (const auto &pg : pages_)
            n += pg ? sizeof(Page) : 0;
        return n;
    }

    std::uint64_t numIdxs() const { return numIdxs_; }

  private:
    /** Idxs per page: 32768 bits = one 4 KB page. */
    static constexpr std::uint64_t kPageIdxs = 32768;
    using Page = std::array<std::uint64_t, kPageIdxs / 64>;

    std::vector<std::unique_ptr<Page>> pages_;
    std::uint64_t numIdxs_;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_IDX_FILTER_HH
