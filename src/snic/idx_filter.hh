/**
 * @file
 * The Idx Filter (Section 5.2): a per-node bitvector, one bit per column
 * of the sparse matrix, allocated in SNIC DRAM and shared by all client
 * RIG units of the node. A set bit means the property for that idx has
 * already been fetched and written to host memory, so any further PR for
 * it is redundant and can be dropped ("filtering").
 *
 * The RIG units reach the filter through a small L1/L2 hierarchy; those
 * accesses are fully pipelined in the paper's design and therefore do
 * not limit idx throughput, so the simulator models them as free.
 */

#ifndef NETSPARSE_SNIC_IDX_FILTER_HH
#define NETSPARSE_SNIC_IDX_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace netsparse {

/** One per-node Idx Filter bitvector. */
class IdxFilter
{
  public:
    /** @param num_idxs number of columns of the sparse matrix. */
    explicit IdxFilter(std::uint64_t num_idxs)
        : bits_((num_idxs + 63) / 64, 0), numIdxs_(num_idxs)
    {}

    /** True when the property for @p idx has already been fetched. */
    bool
    test(PropIdx idx) const
    {
        ns_assert(idx < numIdxs_, "idx ", idx, " outside the filter");
        return bits_[idx >> 6] >> (idx & 63) & 1;
    }

    /** Mark @p idx as fetched. */
    void
    set(PropIdx idx)
    {
        ns_assert(idx < numIdxs_, "idx ", idx, " outside the filter");
        bits_[idx >> 6] |= 1ull << (idx & 63);
    }

    /** Reset for a new kernel iteration. */
    void
    clear()
    {
        std::fill(bits_.begin(), bits_.end(), 0);
    }

    /** SNIC DRAM footprint in bytes. */
    std::uint64_t sizeBytes() const { return bits_.size() * 8; }

    std::uint64_t numIdxs() const { return numIdxs_; }

  private:
    std::vector<std::uint64_t> bits_;
    std::uint64_t numIdxs_;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_IDX_FILTER_HH
