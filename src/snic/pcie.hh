/**
 * @file
 * A simple PCIe / DMA cost model (Table 5: Gen6, 256 GB/s, 200 ns
 * one-way latency). Transfers chain on a busy-until server so heavy DMA
 * activity exhibits queueing, although at 256 GB/s the host link is
 * never the bottleneck against a 400 Gbps (50 GB/s) network.
 */

#ifndef NETSPARSE_SNIC_PCIE_HH
#define NETSPARSE_SNIC_PCIE_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace netsparse {

/** PCIe parameters. */
struct PcieConfig
{
    Bandwidth bandwidth = Bandwidth::fromGBps(256.0);
    Tick latency = 200 * ticks::ns;
};

/** One node's PCIe connection between host and SNIC. */
class PcieModel
{
  public:
    PcieModel(EventQueue &eq, PcieConfig cfg) : eq_(eq), cfg_(cfg) {}

    /**
     * Occupy the link for a @p bytes transfer starting no earlier than
     * now. @return the completion time (data visible at the far side).
     */
    Tick
    transfer(std::uint64_t bytes)
    {
        Tick start = std::max(eq_.now(), busyUntil_);
        busyUntil_ = start + cfg_.bandwidth.serialize(bytes);
        bytesMoved_ += bytes;
        ++transfers_;
        return busyUntil_ + cfg_.latency;
    }

    /** One-way latency only (e.g. an MMIO doorbell write). */
    Tick latency() const { return cfg_.latency; }

    std::uint64_t bytesMoved() const { return bytesMoved_; }
    std::uint64_t transfers() const { return transfers_; }

  private:
    EventQueue &eq_;
    PcieConfig cfg_;
    Tick busyUntil_ = 0;
    std::uint64_t bytesMoved_ = 0;
    std::uint64_t transfers_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_SNIC_PCIE_HH
