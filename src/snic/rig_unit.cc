#include "snic/rig_unit.hh"

#include <algorithm>
#include <memory>

#include "net/pr_latency.hh"
#include "sim/logging.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

namespace netsparse {

RigClientUnit::RigClientUnit(EventQueue &eq, const RigUnitConfig &cfg,
                             SnicContext &ctx, std::uint16_t tid)
    : eq_(eq), cfg_(cfg), ctx_(ctx), tid_(tid), clock_(cfg.clockHz),
      pending_(cfg.pendingCapacity)
{}

std::uint32_t
RigClientUnit::traceTrack() const
{
    return TraceWriter::instance().track(ctx_.nodeName() + ".rig" +
                                         std::to_string(tid_));
}

void
RigClientUnit::start(RigCommand cmd)
{
    ns_assert(!active_, "RIG unit ", tid_, " is busy");
    ns_assert(cmd.idxs || cmd.count == 0, "command without an idx list");
    ns_assert(cmd.onComplete, "command without a completion callback");

    active_ = true;
    cmd_ = std::move(cmd);
    nextIdx_ = 0;
    outstanding_ = 0;
    waitingForPending_ = false;
    lastWriteDone_ = eq_.now();
    ++epoch_;
    ++stats_.commands;
    // reqIds are monotonic across commands (never reset), so the live
    // command's responses are exactly those in [cmdReqIdBase_,
    // nextReqId_) - the staleness test of onResponse.
    cmdReqIdBase_ = nextReqId_;

    NS_TRACE(tw.instant(
        traceTrack(), "cmd.start", eq_.now(),
        traceArgs({{"idxs", static_cast<double>(cmd_.count)},
                   {"commandId",
                    static_cast<double>(cmd_.commandId)}})));

    // DMA the idx batch from host memory into the Idx Buffer. Refills
    // during processing are double-buffered and fully hidden (16 ns of
    // PCIe serialization per 4 KB vs ~465 ns to process 1024 idxs), so
    // only the initial fill delays the pipeline.
    std::uint64_t first_fill =
        std::min<std::uint64_t>(cmd_.count * 4, cfg_.idxBufferBytes);
    Tick ready = cmd_.count ? ctx_.pcie().transfer(first_fill) : eq_.now();
    scheduleChunk(ready);

    if (cfg_.watchdogTimeout > 0) {
        std::uint64_t epoch = epoch_;
        eq_.scheduleIn(cfg_.watchdogTimeout, [this, epoch] {
            if (active_ && epoch_ == epoch) {
                // The operation timed out: discard partial results and
                // report failure to the host (Section 7.1). finish()
                // resets the pending table and all per-command state.
                ++stats_.watchdogFailures;
                finish(false);
            }
        });
    }
}

void
RigClientUnit::scheduleChunk(Tick when)
{
    if (chunkScheduled_)
        return;
    chunkScheduled_ = true;
    // Epoch-guard the callback: a chunk event scheduled by a command
    // the watchdog killed must not fire into (or clear the guard flag
    // of) the next command. finish() owns the flag reset on failure.
    std::uint64_t epoch = epoch_;
    eq_.schedule(std::max(when, eq_.now()), [this, epoch] {
        if (epoch_ != epoch)
            return;
        chunkScheduled_ = false;
        processChunk();
    });
}

void
RigClientUnit::processChunk()
{
    if (!active_)
        return;

    [[maybe_unused]] const Tick chunk_start = eq_.now();
    [[maybe_unused]] RigClientStats before;
    if (NS_TRACE_ON())
        before = stats_;
    std::uint32_t consumed = 0;
    enum class Stall
    {
        None,
        Pending,
        Tx,
    } stall = Stall::None;
    // Hoist the loop invariants: the context accessors are virtual and
    // this loop runs once per nonzero of the kernel.
    const NodeId self = ctx_.selfNode();
    const Partition1D *part = ctx_.ownerPartition();
    IdxFilter &filter = ctx_.idxFilter();
    while (consumed < cfg_.chunkPerEvent && nextIdx_ < cmd_.count) {
        PropIdx idx = cmd_.idxs[nextIdx_];
        ++consumed; // one pipeline slot per examined idx

        NodeId dest = part ? part->ownerOf(static_cast<std::uint32_t>(idx))
                           : ctx_.ownerOf(idx);
        if (dest == self) {
            ++stats_.localIdxs;
            ++stats_.idxsProcessed;
            ++nextIdx_;
            continue;
        }
        if (cfg_.filterEnabled && filter.test(idx)) {
            ++stats_.filtered;
            ++stats_.idxsProcessed;
            ++nextIdx_;
            continue;
        }
        if (cfg_.coalesceEnabled && pending_.contains(idx)) {
            pending_.addWaiter(idx);
            ++stats_.coalesced;
            ++stats_.idxsProcessed;
            ++nextIdx_;
            continue;
        }
        if (pending_.full()) {
            // Stall until a response frees an entry.
            ++stats_.pendingStalls;
            NS_TRACE(tw.instant(traceTrack(), "stall.pending",
                                eq_.now()));
            stall = Stall::Pending;
            break; // resumed by onResponse
        }
        if (ctx_.txBackpressured()) {
            ++stats_.txStalls;
            NS_TRACE(tw.instant(traceTrack(), "stall.tx", eq_.now()));
            stall = Stall::Tx;
            break;
        }

        pending_.insert(idx);
        ++outstanding_;
        ++stats_.prsIssued;
        ++stats_.idxsProcessed;
        ++nextIdx_;

        std::uint32_t reqId = nextReqId_++;
        if (cfg_.retry.enabled) {
            Tick deadline = eq_.now() + cfg_.retry.timeout;
            inflight_.emplace(reqId,
                              InflightPr{idx, dest, 0, deadline, false});
            armRetryTimer(deadline);
        }
        sendReadPr(reqId, idx, dest, false);
    }

    NS_TRACE(
        if (consumed) tw.complete(
            traceTrack(), "chunk", chunk_start,
            chunk_start + clock_.cycles(consumed),
            traceArgs(
                {{"idxs", static_cast<double>(consumed)},
                 {"issued", static_cast<double>(stats_.prsIssued -
                                                before.prsIssued)},
                 {"filtered", static_cast<double>(stats_.filtered -
                                                  before.filtered)},
                 {"coalesced",
                  static_cast<double>(stats_.coalesced -
                                      before.coalesced)}})));

    if (stall == Stall::Pending) {
        waitingForPending_ = true;
        return; // resumed by onResponse
    }
    if (stall == Stall::Tx) {
        scheduleChunk(eq_.now() + clock_.cycles(consumed) +
                      cfg_.txRetryInterval);
        return;
    }

    if (nextIdx_ < cmd_.count) {
        scheduleChunk(eq_.now() + clock_.cycles(consumed));
    } else {
        maybeComplete();
    }
}

void
RigClientUnit::onResponse(const PropertyRequest &pr)
{
    // Validate the response against the live command BEFORE touching
    // the pending table: a late response from a watchdog-failed
    // previous command must not retire a new command's entry for the
    // same idx. reqIds are monotonic and never reset, so anything
    // outside [cmdReqIdBase_, nextReqId_) belongs to a dead command.
    if (!active_ || pr.reqId < cmdReqIdBase_ || pr.reqId >= nextReqId_) {
        ++stats_.staleResponses;
        return;
    }

    std::uint32_t attempts = 0;
    if (cfg_.retry.enabled) {
        auto it = inflight_.find(pr.reqId);
        if (it == inflight_.end()) {
            // Already satisfied - the usual flip side of a retransmit
            // whose original eventually arrived. Suppress.
            ++stats_.duplicatesSuppressed;
            return;
        }
        if (pr.checksum != propertyChecksum(pr.idx, pr.tenant)) {
            // Corrupt payload: drop it and NACK-refetch from the home
            // node, bypassing the Property Cache so a poisoned entry
            // cannot serve the refetch. Counts against the budget.
            ++stats_.corruptDropped;
            NS_TRACE(tw.instant(traceTrack(), "pr.nack", eq_.now()));
            if (it->second.attempts >= cfg_.retry.maxRetries) {
                ++stats_.retriesExhausted;
                finish(false);
                return;
            }
            ++it->second.attempts;
            ++stats_.nacks;
            it->second.bypassCache = true;
            it->second.deadline =
                eq_.now() + retryDelay(it->second.attempts);
            armRetryTimer(it->second.deadline);
            sendReadPr(pr.reqId, it->second.idx, it->second.dest, true,
                       it->second.attempts);
            return;
        }
        attempts = it->second.attempts;
        inflight_.erase(it);
    }

    std::uint32_t served = pending_.complete(pr.idx);
    if (served == 0) {
        // An idx-less response (defensive: cannot happen for a
        // validated in-flight reqId); drop it.
        ++stats_.staleResponses;
        return;
    }
    ++stats_.responses;
    if (PrLatencyStats *lat = ctx_.prLatency())
        lat->record(pr, eq_.now());
    if (pr.spanId != 0) {
        if (SpanBuffer *sb = eq_.spans()) {
            sb->record(pr.spanId, SpanStage::Retire, ctx_.spanComp(),
                       eq_.now());
            sb->retire(SpanRetire{pr.spanId, pr.issueTick, eq_.now(),
                                  pr.tenant, pr.src, pr.srcTid, pr.reqId,
                                  pr.servedByCache, attempts});
        }
    }

    if (!cfg_.retry.enabled) {
        // The lossless fabric never corrupts; anything else is a
        // simulator bug.
        ns_assert(pr.checksum == propertyChecksum(pr.idx, pr.tenant),
                  "corrupt property for idx ", pr.idx);
    }

    // Write the property to host memory and publish the Idx Filter bit
    // so other units stop requesting it.
    lastWriteDone_ =
        std::max(lastWriteDone_, ctx_.pcie().transfer(pr.payloadBytes));
    if (cfg_.filterEnabled)
        ctx_.idxFilter().set(pr.idx);

    ns_assert(outstanding_ > 0, "response with nothing outstanding");
    --outstanding_;

    if (waitingForPending_) {
        waitingForPending_ = false;
        scheduleChunk(eq_.now());
    }
    maybeComplete();
}

void
RigClientUnit::sendReadPr(std::uint32_t reqId, PropIdx idx, NodeId dest,
                          bool bypassCache, std::uint32_t attempt)
{
    PropertyRequest pr;
    pr.type = PrType::Read;
    pr.src = ctx_.selfNode();
    pr.srcTid = tid_;
    pr.tenant = ctx_.tenant();
    pr.idx = idx;
    pr.reqId = reqId;
    pr.propBytes = cmd_.propBytes;
    pr.payloadBytes = 0;
    pr.bypassCache = bypassCache;
    pr.issueTick = eq_.now();
    if (cfg_.spanRecordAll || cfg_.spanSampleThreshold != 0) {
        // The id is a pure function of the PR's identity, so the same
        // request computes the same id (and sampling decision) on every
        // shard layout - and a retransmit reuses its original span.
        std::uint64_t id =
            spanIdFor(cfg_.spanSeed, pr.tenant, pr.src, tid_, reqId);
        if (cfg_.spanRecordAll || id <= cfg_.spanSampleThreshold) {
            pr.spanId = id;
            if (SpanBuffer *sb = eq_.spans())
                sb->record(id,
                           attempt ? SpanStage::Retransmit
                                   : SpanStage::Issue,
                           ctx_.spanComp(), eq_.now(), 0,
                           attempt ? attempt : idx);
        }
    }
    ctx_.sendPr(std::move(pr), dest);
}

Tick
RigClientUnit::retryDelay(std::uint32_t attempts) const
{
    double scale = 1.0;
    for (std::uint32_t i = 0; i < attempts; ++i)
        scale *= cfg_.retry.backoff;
    return static_cast<Tick>(
        static_cast<double>(cfg_.retry.timeout) * scale);
}

void
RigClientUnit::armRetryTimer(Tick deadline)
{
    if (retryTimerAt_ != 0 && retryTimerAt_ <= deadline)
        return; // the armed timer already fires early enough
    retryTimerAt_ = deadline;
    std::uint64_t gen = ++retryTimerGen_;
    std::uint64_t epoch = epoch_;
    eq_.schedule(std::max(deadline, eq_.now()), [this, gen, epoch] {
        if (epoch_ != epoch || gen != retryTimerGen_ || !active_)
            return;
        checkRetransmits();
    });
}

void
RigClientUnit::checkRetransmits()
{
    retryTimerAt_ = 0;
    Tick now = eq_.now();
    // std::map iterates in reqId order, keeping retransmission order -
    // and therefore the whole downstream event stream - deterministic.
    for (auto &[reqId, entry] : inflight_) {
        if (entry.deadline > now)
            continue;
        if (entry.attempts >= cfg_.retry.maxRetries) {
            // Retry budget exhausted: give up on the command the same
            // way the watchdog would, and let the host decide.
            ++stats_.retriesExhausted;
            NS_TRACE(tw.instant(traceTrack(), "pr.retriesExhausted",
                                eq_.now()));
            finish(false);
            return;
        }
        ++entry.attempts;
        entry.deadline = now + retryDelay(entry.attempts);
        ++stats_.retransmits;
        NS_TRACE(tw.instant(traceTrack(), "pr.retransmit", eq_.now()));
        sendReadPr(reqId, entry.idx, entry.dest, entry.bypassCache,
                   entry.attempts);
    }
    // Re-arm for the earliest remaining deadline.
    Tick earliest = 0;
    for (const auto &[reqId, entry] : inflight_)
        if (earliest == 0 || entry.deadline < earliest)
            earliest = entry.deadline;
    if (earliest != 0)
        armRetryTimer(earliest);
}

void
RigClientUnit::maybeComplete()
{
    if (!active_ || nextIdx_ < cmd_.count || outstanding_ > 0)
        return;
    finish(true);
}

void
RigClientUnit::finish(bool success)
{
    NS_TRACE(tw.instant(traceTrack(),
                        success ? "cmd.done" : "cmd.watchdogFail",
                        eq_.now()));
    active_ = false;
    ++epoch_;
    // Leave no per-command state behind for the next command: clear the
    // issue pipeline, the reliable-transport tracking, and (on failure)
    // the pending table, whose entries will never be answered usefully.
    // Bumping epoch_ above also invalidates any still-queued chunk,
    // watchdog or retry-timer events of this command.
    outstanding_ = 0;
    waitingForPending_ = false;
    chunkScheduled_ = false;
    inflight_.clear();
    retryTimerAt_ = 0;
    ++retryTimerGen_;
    if (!success)
        pending_.reset();
    auto cb = std::move(cmd_.onComplete);
    // Completion reaches the host after the last property write lands
    // plus one PCIe crossing for the notification.
    Tick when = std::max(eq_.now(), lastWriteDone_) + ctx_.pcie().latency();
    eq_.schedule(when, [cb = std::move(cb), success] { cb(success); });
}

RigServerUnit::RigServerUnit(EventQueue &eq, const RigUnitConfig &cfg,
                             SnicContext &ctx, std::uint16_t tid)
    : eq_(eq), cfg_(cfg), ctx_(ctx), tid_(tid), clock_(cfg.clockHz)
{}

Tick
RigServerUnit::prepareRead(PropertyRequest &pr)
{
    ns_assert(pr.type == PrType::Read, "server unit got a non-read PR");
    ++stats_.readsServed;
    stats_.bytesFetched += pr.propBytes;

    // Pipelined at one PR per cycle; each PR pays the host memory and
    // PCIe fetch latency.
    Tick issue = std::max(eq_.now(), nextIssue_);
    nextIssue_ = issue + clock_.period();
    Tick fetched = std::max(
        issue, ctx_.pcie().transfer(pr.propBytes) + cfg_.serverMemLatency);

    pr.type = PrType::Response;
    pr.payloadBytes = pr.propBytes;
    pr.checksum = propertyChecksum(pr.idx, pr.tenant);
    pr.fetchTick = fetched;
    if (pr.spanId != 0)
        if (SpanBuffer *sb = eq_.spans())
            sb->record(pr.spanId, SpanStage::Fetch, ctx_.spanComp(),
                       issue, fetched - issue, pr.propBytes);
    return fetched;
}

void
RigServerUnit::handleRead(PropertyRequest &&pr)
{
    Tick fetched = prepareRead(pr);
    eq_.schedule(fetched, [this, resp = std::move(pr)]() mutable {
        NodeId back = resp.src;
        ctx_.sendPr(std::move(resp), back);
    });
}

} // namespace netsparse
