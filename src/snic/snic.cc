#include "snic/snic.hh"

#include "sim/logging.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

namespace netsparse {

Snic::Snic(EventQueue &eq, SnicConfig cfg, NodeId self,
           std::function<NodeId(PropIdx)> owner_of, std::uint64_t num_idxs,
           std::string name)
    : eq_(eq), cfg_(cfg), self_(self), ownerOf_(std::move(owner_of)),
      name_(std::move(name)), filter_(num_idxs), pcie_(eq, cfg.pcie)
{
    ns_assert(cfg_.numRigUnits >= 2, "need at least 1 client + 1 server");
    std::uint32_t num_clients = cfg_.numRigUnits / 2;
    for (std::uint32_t c = 0; c < num_clients; ++c) {
        clients_.push_back(std::make_unique<RigClientUnit>(
            eq_, cfg_.rigUnit, *this, static_cast<std::uint16_t>(c)));
    }
    for (std::uint32_t s = num_clients; s < cfg_.numRigUnits; ++s) {
        servers_.push_back(std::make_unique<RigServerUnit>(
            eq_, cfg_.rigUnit, *this, static_cast<std::uint16_t>(s)));
    }
    concat_ = std::make_unique<Concatenator>(
        eq_, cfg_.concat,
        [this](Packet &&pkt) {
            ns_assert(egress_, "SNIC ", name_, " has no egress link");
            if (prLatency_ && pkt.type == PrType::Read) {
                // Lifecycle stamp: the reads leave the SNIC onto the
                // NIC egress link (net/pr_latency.hh).
                for (auto &pr : pkt.prs)
                    pr.egressTick = eq_.now();
            }
            if (pkt.spanned) {
                if (SpanBuffer *sb = eq_.spans()) {
                    for (const auto &pr : pkt.prs)
                        if (pr.spanId != 0)
                            sb->record(pr.spanId, SpanStage::NicEgress,
                                       spanComp_, eq_.now(), 0,
                                       pkt.prs.size());
                }
            }
            egress_->send(std::move(pkt));
        },
        name_ + ".concat");
}

void
Snic::enablePrLatency()
{
    if (!prLatency_)
        prLatency_ = std::make_unique<PrLatencyStats>();
}

std::uint64_t
Snic::inflightPrs() const
{
    std::uint64_t n = 0;
    for (const auto &c : clients_)
        n += c->outstandingPrs();
    return n;
}

std::uint64_t
Snic::totalRetransmits() const
{
    std::uint64_t n = 0;
    for (const auto &c : clients_)
        n += c->stats().retransmits;
    return n;
}

void
Snic::configureForKernel()
{
    filter_.clear();
}

void
Snic::postRig(std::uint32_t c, RigCommand cmd)
{
    ns_assert(c < clients_.size(), "no such client unit: ", c);
    ns_assert(!clients_[c]->busy(), "client unit ", c, " is busy");
    // The doorbell write crosses PCIe before the unit sees the command.
    eq_.scheduleIn(pcie_.latency(),
                   [this, c, moved = std::move(cmd)]() mutable {
                       clients_[c]->start(std::move(moved));
                   });
}

void
Snic::sendPr(PropertyRequest &&pr, NodeId dest)
{
    ns_assert(dest != self_, "PR addressed to its own node");
    concat_->push(std::move(pr), dest);
}

bool
Snic::txBackpressured() const
{
    if (!egress_)
        return false;
    return egress_->queuedBytes() + concat_->occupiedBytes() >
           cfg_.txBufferBytes;
}

void
Snic::receivePacket(Packet &&pkt, std::uint32_t in_port)
{
    (void)in_port;
    ++rxPackets_;
    rxBytes_ += pkt.wireBytes(cfg_.proto);
    rxPayloadBytes_ += pkt.payloadBytes();

    NS_TRACE(tw.instant(
        tw.track(name_), "rx", eq_.now(),
        traceArgs({{"bytes", static_cast<double>(
                                 pkt.wireBytes(cfg_.proto))},
                   {"prs", static_cast<double>(pkt.prs.size())}})));

    std::vector<PropertyRequest> prs = deconcatenate(std::move(pkt));
    if (cfg_.batchedServerReads) {
        // Prepare every read of the packet now (same per-PR pipeline
        // and round-robin dispatch as the per-event path), then send
        // all responses with one event at the last fetch completion.
        // Fetch ticks are nondecreasing across the packet (the shared
        // PCIe busy-until chain), so no response leaves early.
        std::vector<PropertyRequest> responses = acquirePrBuffer(prs.size());
        Tick last_fetch = 0;
        for (auto &pr : prs) {
            if (pr.type == PrType::Response) {
                ++rxResponses_;
                ns_assert(pr.src == self_,
                          "response delivered to the wrong node");
                ns_assert(pr.srcTid < clients_.size(),
                          "response for unknown client tid ", pr.srcTid);
                clients_[pr.srcTid]->onResponse(pr);
            } else {
                ++rxReads_;
                Tick fetched = servers_[nextServer_]->prepareRead(pr);
                nextServer_ = (nextServer_ + 1) %
                              static_cast<std::uint32_t>(servers_.size());
                last_fetch = std::max(last_fetch, fetched);
                responses.push_back(std::move(pr));
            }
        }
        recyclePrBuffer(std::move(prs));
        if (responses.empty()) {
            recyclePrBuffer(std::move(responses));
            return;
        }
        // This one event stands for one response send per read;
        // account the rest so executedEvents() stays comparable to
        // the per-event path (and shard-invariant: the whole burst is
        // node-local).
        eq_.addExecutedEvents(responses.size() - 1);
        eq_.schedule(last_fetch,
                     [this, rs = std::move(responses)]() mutable {
                         for (auto &resp : rs) {
                             NodeId back = resp.src;
                             sendPr(std::move(resp), back);
                         }
                         recyclePrBuffer(std::move(rs));
                     });
        return;
    }
    for (auto &pr : prs) {
        if (pr.type == PrType::Response) {
            ++rxResponses_;
            ns_assert(pr.src == self_,
                      "response delivered to the wrong node");
            ns_assert(pr.srcTid < clients_.size(),
                      "response for unknown client tid ", pr.srcTid);
            clients_[pr.srcTid]->onResponse(pr);
        } else {
            ++rxReads_;
            // Q Control: dispatch reads to server units round-robin.
            servers_[nextServer_]->handleRead(std::move(pr));
            nextServer_ = (nextServer_ + 1) %
                          static_cast<std::uint32_t>(servers_.size());
        }
    }
    recyclePrBuffer(std::move(prs));
}

RigClientStats
Snic::aggregateClientStats() const
{
    RigClientStats out;
    for (const auto &c : clients_) {
        const auto &s = c->stats();
        out.commands += s.commands;
        out.idxsProcessed += s.idxsProcessed;
        out.localIdxs += s.localIdxs;
        out.prsIssued += s.prsIssued;
        out.filtered += s.filtered;
        out.coalesced += s.coalesced;
        out.responses += s.responses;
        out.staleResponses += s.staleResponses;
        out.pendingStalls += s.pendingStalls;
        out.txStalls += s.txStalls;
        out.watchdogFailures += s.watchdogFailures;
        out.retransmits += s.retransmits;
        out.nacks += s.nacks;
        out.corruptDropped += s.corruptDropped;
        out.duplicatesSuppressed += s.duplicatesSuppressed;
        out.retriesExhausted += s.retriesExhausted;
    }
    return out;
}

RigServerStats
Snic::aggregateServerStats() const
{
    RigServerStats out;
    for (const auto &s : servers_) {
        out.readsServed += s->stats().readsServed;
        out.bytesFetched += s->stats().bytesFetched;
    }
    return out;
}

void
Snic::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    std::uint64_t filter_hits = 0;
    for (std::size_t c = 0; c < clients_.size(); ++c) {
        const RigClientStats &s = clients_[c]->stats();
        std::string rig = prefix + ".rig" + std::to_string(c);
        reg.set(rig + ".commands", static_cast<double>(s.commands));
        reg.set(rig + ".idxsProcessed",
                static_cast<double>(s.idxsProcessed));
        reg.set(rig + ".localIdxs", static_cast<double>(s.localIdxs));
        reg.set(rig + ".prsIssued", static_cast<double>(s.prsIssued));
        reg.set(rig + ".filtered", static_cast<double>(s.filtered));
        reg.set(rig + ".coalesced", static_cast<double>(s.coalesced));
        reg.set(rig + ".responses", static_cast<double>(s.responses));
        reg.set(rig + ".staleResponses",
                static_cast<double>(s.staleResponses));
        reg.set(rig + ".pendingStalls",
                static_cast<double>(s.pendingStalls));
        reg.set(rig + ".txStalls", static_cast<double>(s.txStalls));
        reg.set(rig + ".watchdogFailures",
                static_cast<double>(s.watchdogFailures));
        if (cfg_.rigUnit.retry.enabled) {
            // Recovery keys exist only when the reliable-PR layer is
            // on, keeping zero-fault documents byte-identical.
            reg.set(rig + ".retransmits",
                    static_cast<double>(s.retransmits));
            reg.set(rig + ".nacks", static_cast<double>(s.nacks));
            reg.set(rig + ".corruptDropped",
                    static_cast<double>(s.corruptDropped));
            reg.set(rig + ".duplicatesSuppressed",
                    static_cast<double>(s.duplicatesSuppressed));
            reg.set(rig + ".retriesExhausted",
                    static_cast<double>(s.retriesExhausted));
        }
        reg.set(rig + ".pendingMaxOccupancy",
                static_cast<double>(
                    clients_[c]->pendingTable().maxOccupancy()));
        filter_hits += s.filtered;
    }
    reg.set(prefix + ".idxFilter.hits",
            static_cast<double>(filter_hits));
    reg.set(prefix + ".idxFilter.sizeBytes",
            static_cast<double>(filter_.sizeBytes()));

    RigServerStats server = aggregateServerStats();
    reg.set(prefix + ".server.readsServed",
            static_cast<double>(server.readsServed));
    reg.set(prefix + ".server.bytesFetched",
            static_cast<double>(server.bytesFetched));

    concat_->exportStats(reg, prefix + ".concat");

    reg.set(prefix + ".rx.packets", static_cast<double>(rxPackets_));
    reg.set(prefix + ".rx.bytes", static_cast<double>(rxBytes_));
    reg.set(prefix + ".rx.payloadBytes",
            static_cast<double>(rxPayloadBytes_));
    reg.set(prefix + ".rx.responses",
            static_cast<double>(rxResponses_));
    reg.set(prefix + ".rx.reads", static_cast<double>(rxReads_));

    if (prLatency_) {
        // Lifecycle keys exist only when telemetry enabled the
        // collector, keeping the default document byte-identical.
        reg.setAverage(prefix + ".prLatency.totalNs",
                       prLatency_->totalAvgNs);
    }
}

} // namespace netsparse
