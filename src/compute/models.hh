/**
 * @file
 * Roofline compute-time models for the per-node computation phase.
 *
 * The paper pairs every node with a SPADE accelerator (128 PEs at 1 GHz
 * with 800 GB/s HBM, Table 5) for Figures 13/14, and with Sapphire
 * Rapids CPUs (DDR or HBM, Section 9.6) for Figure 21. End-to-end
 * results only need each node's compute time for its share of the
 * kernel; a bandwidth/compute roofline over the kernel's exact
 * operation and byte counts reproduces those ratios.
 */

#ifndef NETSPARSE_COMPUTE_MODELS_HH
#define NETSPARSE_COMPUTE_MODELS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "sparse/kernels.hh"

namespace netsparse {

/** A roofline device: peak MACs/s and sustained memory bandwidth. */
struct ComputeDevice
{
    std::string name;
    /** Peak multiply-accumulates per second. */
    double peakMacsPerSec = 0.0;
    /** Sustained memory bandwidth, bytes per second. */
    double memBytesPerSec = 0.0;
    /** Achievable fraction of the roofline (efficiency). */
    double efficiency = 0.7;

    /** Time to execute a kernel with the given cost. */
    Tick time(const KernelCost &cost) const;
};

/** SPADE-like accelerator: 128 PEs at 1 GHz, HBM 64 GB at 800 GB/s. */
ComputeDevice spadeAccelerator();

/** Sapphire-Rapids-like CPU with DDR (48 cores, 270 GB/s). */
ComputeDevice cpuDdr();

/** Sapphire-Rapids-like CPU with HBM (56 cores, 800 GB/s). */
ComputeDevice cpuHbm();

/** SpMM compute time for one node's block. */
Tick spmmTime(const ComputeDevice &dev, std::uint64_t nnz,
              std::uint64_t rows, std::uint32_t k);

/**
 * PE-level SpMM time: rows of the CSR block [row0, row1) are dealt
 * round-robin over @p num_pes processing elements (SPADE-style); the
 * slowest PE's roofline time is the block's time. Captures the
 * intra-node imbalance a flat roofline hides on skewed matrices.
 */
Tick spmmTimePeLevel(const ComputeDevice &dev, const Csr &m,
                     std::uint32_t row0, std::uint32_t row1,
                     std::uint32_t k, std::uint32_t num_pes = 128);

} // namespace netsparse

#endif // NETSPARSE_COMPUTE_MODELS_HH
