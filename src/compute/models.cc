#include "compute/models.hh"

#include <vector>

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

Tick
ComputeDevice::time(const KernelCost &cost) const
{
    ns_assert(peakMacsPerSec > 0 && memBytesPerSec > 0 && efficiency > 0,
              "compute device ", name, " not configured");
    double flop_time = static_cast<double>(cost.flops) / peakMacsPerSec;
    double mem_time = static_cast<double>(cost.bytes) / memBytesPerSec;
    double t = std::max(flop_time, mem_time) / efficiency;
    return ticks::fromSeconds(t);
}

ComputeDevice
spadeAccelerator()
{
    // 128 PEs x 1 GHz, one MAC per PE per cycle; 800 GB/s HBM.
    return {"spade", 128e9, 800e9, 0.7};
}

ComputeDevice
cpuDdr()
{
    // 48 cores x 2 AVX-512 FMA units x 16 lanes x ~2 GHz.
    return {"cpu-ddr", 48 * 2.0 * 16 * 2e9, 270e9, 0.55};
}

ComputeDevice
cpuHbm()
{
    return {"cpu-hbm", 56 * 2.0 * 16 * 2e9, 800e9, 0.55};
}

Tick
spmmTime(const ComputeDevice &dev, std::uint64_t nnz, std::uint64_t rows,
         std::uint32_t k)
{
    return dev.time(spmmCost(nnz, rows, k));
}

Tick
spmmTimePeLevel(const ComputeDevice &dev, const Csr &m,
                std::uint32_t row0, std::uint32_t row1, std::uint32_t k,
                std::uint32_t num_pes)
{
    ns_assert(row1 <= m.rows && row0 <= row1, "bad row range");
    ns_assert(num_pes > 0, "need at least one PE");
    // Per-PE nonzero and row totals under round-robin row dealing.
    std::vector<std::uint64_t> pe_nnz(num_pes, 0), pe_rows(num_pes, 0);
    for (std::uint32_t r = row0; r < row1; ++r) {
        std::uint32_t pe = (r - row0) % num_pes;
        pe_nnz[pe] += m.rowDegree(r);
        ++pe_rows[pe];
    }
    // Each PE owns 1/num_pes of the compute and memory roofline.
    ComputeDevice pe_dev = dev;
    pe_dev.peakMacsPerSec /= num_pes;
    pe_dev.memBytesPerSec /= num_pes;
    Tick worst = 0;
    for (std::uint32_t pe = 0; pe < num_pes; ++pe)
        worst = std::max(worst,
                         pe_dev.time(spmmCost(pe_nnz[pe], pe_rows[pe],
                                              k)));
    return worst;
}

} // namespace netsparse
