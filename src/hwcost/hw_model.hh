/**
 * @file
 * Analytic area/power model of the NetSparse hardware extensions
 * (Section 9.5, Figure 20, Table 9).
 *
 * The paper synthesizes RTL at 45 nm (Design Compiler + FreePDK45),
 * models SRAM/CAM with CACTI, and scales to 10 nm with the
 * Stillmaker-Baas equations. Those tools are unavailable offline, so
 * this module reproduces the *methodology shape*: per-structure SRAM/CAM
 * capacity accounting, technology scaling factors, and density/energy
 * coefficients anchored to the component values the paper reports. The
 * relative breakdowns (which structure dominates what) follow from the
 * capacities, not from hard-coded percentages.
 */

#ifndef NETSPARSE_HWCOST_HW_MODEL_HH
#define NETSPARSE_HWCOST_HW_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace netsparse {

/** Cost of one hardware structure. */
struct HwComponentCost
{
    std::string name;
    double areaMm2 = 0.0;
    double staticPowerW = 0.0;
    double dynamicPowerW = 0.0;
    std::uint64_t sramBytes = 0;
};

/** A cost report with per-component rows and totals. */
struct HwReport
{
    std::vector<HwComponentCost> components;

    double totalAreaMm2() const;
    double totalStaticW() const;
    double totalDynamicW() const;
    std::uint64_t totalSramBytes() const;
};

/** Technology scaling (Stillmaker-Baas style factors). */
struct TechScaling
{
    /** Area ratio when moving a design from @p from_nm to @p to_nm. */
    static double areaFactor(double from_nm, double to_nm);
    /** Dynamic power ratio for the same move at iso-frequency. */
    static double powerFactor(double from_nm, double to_nm);
};

/** Memory-technology coefficients at the target node (10 nm). */
struct HwCoefficients
{
    /** Plain SRAM density. */
    double sramMm2PerMb = 0.45;
    /** CAM cells cost extra comparators per bit. */
    double camAreaMultiplier = 4.0;
    /** Large switch-grade SRAM arrays (with tags and muxing). */
    double cacheMm2PerMb = 0.666;
    /** Static power per mm^2 of SRAM-dominated logic. */
    double staticWPerMm2 = 0.35;
    /** Dynamic energy per byte accessed, joules (SRAM read+write). */
    double dynamicJPerByte = 0.6e-12;
    /** Logic area per RIG unit (destination solver, PR generator...). */
    double rigLogicMm2 = 0.0011;
    /**
     * Peak bytes/s a RIG unit touches at maximum activity: per cycle it
     * reads an idx, searches the CAM, probes the filter hierarchy and
     * moves buffer entries (~24 B of SRAM activity per cycle).
     */
    double rigPeakBytesPerSec = 2.2e9 * 24;
    /** L1 bytes touched per cycle (filter probes dominate). */
    double l1BytesPerCycle = 16.0;
};

/** SNIC extension inventory (Table 5 defaults). */
struct SnicHwParams
{
    std::uint32_t numRigUnits = 32;
    std::uint32_t idxBufferBytes = 4096;
    std::uint32_t propBufferBytes = 4096;
    std::uint32_t pendingEntries = 256;
    std::uint32_t pendingEntryBytes = 14; // idx CAM key + state
    std::uint32_t lsqEntries = 64;
    std::uint32_t lsqEntryBytes = 16;
    std::uint32_t numL1 = 16;
    std::uint32_t l1Bytes = 32 << 10;
    std::uint32_t numL2 = 16;
    std::uint32_t l2Bytes = 128 << 10;
    std::uint32_t concatSramBytes = 512 << 10;
};

/** Switch extension inventory. */
struct SwitchHwParams
{
    std::uint64_t cacheBytes = 32ull << 20;
    std::uint32_t numPipes = 8;
    std::uint32_t concatSramBytesPerPipe = 512 << 10;
    std::uint32_t crossbarRadix = 32;
};

/** Figure 20: SNIC extension breakdown. */
HwReport snicOverheads(const SnicHwParams &p = {},
                       const HwCoefficients &c = {});

/** Table 9: fraction of one RIG unit's area per structure. */
std::vector<std::pair<std::string, double>>
rigUnitAreaBreakdown(const SnicHwParams &p = {},
                     const HwCoefficients &c = {});

/** Section 9.5 (2): switch extension breakdown (incl. 2nd crossbar). */
HwReport switchOverheads(const SwitchHwParams &p = {},
                         const HwCoefficients &c = {});

} // namespace netsparse

#endif // NETSPARSE_HWCOST_HW_MODEL_HH
