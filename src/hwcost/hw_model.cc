#include "hwcost/hw_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace netsparse {

double
HwReport::totalAreaMm2() const
{
    double a = 0;
    for (const auto &c : components)
        a += c.areaMm2;
    return a;
}

double
HwReport::totalStaticW() const
{
    double w = 0;
    for (const auto &c : components)
        w += c.staticPowerW;
    return w;
}

double
HwReport::totalDynamicW() const
{
    double w = 0;
    for (const auto &c : components)
        w += c.dynamicPowerW;
    return w;
}

std::uint64_t
HwReport::totalSramBytes() const
{
    std::uint64_t b = 0;
    for (const auto &c : components)
        b += c.sramBytes;
    return b;
}

double
TechScaling::areaFactor(double from_nm, double to_nm)
{
    ns_assert(from_nm > 0 && to_nm > 0, "bad process nodes");
    // First-order: area tracks the square of the feature size. The
    // Stillmaker-Baas fits deviate below 20 nm; fold that in with a
    // mild density-loss exponent.
    double linear = to_nm / from_nm;
    return std::pow(linear, 1.9);
}

double
TechScaling::powerFactor(double from_nm, double to_nm)
{
    // Dynamic power ~ C * V^2 * f: capacitance tracks the linear
    // dimension; voltage scaling has largely stalled, contributing a
    // weaker factor.
    double linear = to_nm / from_nm;
    return std::pow(linear, 1.3);
}

namespace {

HwComponentCost
sramComponent(const std::string &name, std::uint64_t bytes,
              double mm2_per_mb, double access_bytes_per_sec,
              const HwCoefficients &c)
{
    HwComponentCost out;
    out.name = name;
    out.sramBytes = bytes;
    out.areaMm2 = static_cast<double>(bytes) / (1 << 20) * mm2_per_mb;
    out.staticPowerW = out.areaMm2 * c.staticWPerMm2;
    out.dynamicPowerW = access_bytes_per_sec * c.dynamicJPerByte;
    return out;
}

} // namespace

HwReport
snicOverheads(const SnicHwParams &p, const HwCoefficients &c)
{
    HwReport r;

    // RIG units: buffers + CAM + LSQ + logic, all active every cycle at
    // maximum activity.
    std::uint64_t unit_sram =
        p.idxBufferBytes + p.propBufferBytes +
        static_cast<std::uint64_t>(p.lsqEntries) * p.lsqEntryBytes;
    std::uint64_t unit_cam = static_cast<std::uint64_t>(p.pendingEntries) *
                             p.pendingEntryBytes;
    HwComponentCost rig = sramComponent(
        "rig-units", p.numRigUnits * (unit_sram + unit_cam),
        c.sramMm2PerMb, p.numRigUnits * c.rigPeakBytesPerSec, c);
    // CAM cells and logic add area beyond the plain SRAM estimate.
    rig.areaMm2 += p.numRigUnits *
                   (static_cast<double>(unit_cam) / (1 << 20) *
                        c.sramMm2PerMb * (c.camAreaMultiplier - 1.0) +
                    c.rigLogicMm2);
    rig.staticPowerW = rig.areaMm2 * c.staticWPerMm2;
    r.components.push_back(rig);

    r.components.push_back(sramComponent(
        "l1-caches", static_cast<std::uint64_t>(p.numL1) * p.l1Bytes,
        c.sramMm2PerMb, p.numL1 * 2.2e9 * c.l1BytesPerCycle, c));
    r.components.push_back(sramComponent(
        "l2-caches", static_cast<std::uint64_t>(p.numL2) * p.l2Bytes,
        c.sramMm2PerMb * 1.15, p.numL2 * 2.2e9 * 0.5, c));
    r.components.push_back(sramComponent(
        "concat-deconcat", p.concatSramBytes, c.sramMm2PerMb,
        // Worst case: the full 400 Gbps stream through the CQs twice.
        2.0 * 50e9, c));
    return r;
}

std::vector<std::pair<std::string, double>>
rigUnitAreaBreakdown(const SnicHwParams &p, const HwCoefficients &c)
{
    double mb = 1 << 20;
    double idx = p.idxBufferBytes / mb * c.sramMm2PerMb;
    double prop = p.propBufferBytes / mb * c.sramMm2PerMb;
    double pend = p.pendingEntries * p.pendingEntryBytes / mb *
                  c.sramMm2PerMb * c.camAreaMultiplier;
    double lsq = p.lsqEntries * p.lsqEntryBytes / mb * c.sramMm2PerMb *
                 1.6; // LSQ entries carry CAM-ish address matching
    double rest = c.rigLogicMm2;
    double total = idx + prop + pend + lsq + rest;
    return {
        {"idx-buffer", idx / total},
        {"pending-pr-table", pend / total},
        {"property-buffer", prop / total},
        {"lsq", lsq / total},
        {"rest", rest / total},
    };
}

HwReport
switchOverheads(const SwitchHwParams &p, const HwCoefficients &c)
{
    HwReport r;
    r.components.push_back(sramComponent(
        "property-caches", p.cacheBytes, c.cacheMm2PerMb,
        // All pipes streaming lookups + inserts at line rate.
        p.numPipes * 50e9 * 0.5, c));
    r.components.push_back(sramComponent(
        "concat-deconcat",
        static_cast<std::uint64_t>(p.numPipes) * p.concatSramBytesPerPipe,
        c.sramMm2PerMb, p.numPipes * 50e9, c));

    // Second crossbar: the literature places a stand-alone 32x32
    // crossbar below 5 mm^2 (Section 9.5); scale quadratically with
    // radix from that anchor.
    HwComponentCost xbar;
    xbar.name = "second-crossbar";
    double radix_ratio = static_cast<double>(p.crossbarRadix) / 32.0;
    xbar.areaMm2 = 4.5 * radix_ratio * radix_ratio;
    xbar.staticPowerW = xbar.areaMm2 * c.staticWPerMm2 * 0.4;
    xbar.dynamicPowerW = 3.0 * radix_ratio;
    r.components.push_back(xbar);
    return r;
}

} // namespace netsparse
