#include "cache/property_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace netsparse {

std::uint32_t
segmentEnableMask(std::uint32_t numSegments,
                  std::uint32_t segmentsPerEntry,
                  std::uint32_t segmentBits)
{
    ns_assert(segmentsPerEntry > 0 && segmentsPerEntry <= numSegments,
              "bad segments per entry");
    ns_assert(numSegments % segmentsPerEntry == 0,
              "segments per entry must divide the segment count");
    // In Mode S, the selector ignores the low log2(segmentsPerEntry)
    // segment bits and enables the whole aligned group.
    std::uint32_t group = (segmentBits % numSegments) / segmentsPerEntry;
    std::uint32_t mask =
        segmentsPerEntry == 32 ? 0xffffffffu
                               : ((1u << segmentsPerEntry) - 1u);
    return mask << (group * segmentsPerEntry);
}

PropertyCache::PropertyCache(const PropertyCacheConfig &cfg) : cfg_(cfg)
{
    ns_assert(cfg_.ways > 0, "cache needs at least one way");
    ns_assert(cfg_.minLineBytes > 0 &&
                  cfg_.maxLineBytes % cfg_.minLineBytes == 0,
              "line sizes must nest");
    // The way array is allocated lazily by configureForKernel, sized
    // for the mode the kernel actually uses - not for the worst-case
    // minimum-line mode, whose array can be 4x larger.
    lineBytes_ = cfg_.minLineBytes;
}

void
PropertyCache::configureForKernel(std::uint32_t propertyBytes)
{
    if (!enabled()) {
        lineBytes_ = cfg_.minLineBytes;
        numSets_ = 0;
        ways_.reset();
        wayCapacity_ = 0;
        return;
    }
    if (propertyBytes > cfg_.maxLineBytes) {
        ns_fatal("property size ", propertyBytes,
                 " exceeds the largest cache line ", cfg_.maxLineBytes,
                 "; tile the property array (Section 6.2.2)");
    }
    // Round the mode up to the next supported line size.
    lineBytes_ = cfg_.minLineBytes;
    while (lineBytes_ < propertyBytes)
        lineBytes_ *= 2;

    std::uint64_t entries = cfg_.totalBytes / lineBytes_;
    numSets_ = std::max<std::uint64_t>(1, entries / cfg_.ways);
    // Grow-only: carried-over entries are dead anyway once the epoch
    // advances, so invalidation never rewrites the (multi-megabyte)
    // way array. calloc hands back zero-on-demand pages, so even the
    // initial allocation costs nothing until sets are actually touched.
    std::uint64_t needed = numSets_ * cfg_.ways;
    if (wayCapacity_ < needed) {
        ways_.reset(
            static_cast<Way *>(std::calloc(needed, sizeof(Way))));
        ns_assert(ways_, "property cache allocation failed");
        wayCapacity_ = needed;
    }
    ++epoch_;
    useClock_ = 0;
}

void
PropertyCache::invalidateAll()
{
    ++epoch_;
}

bool
PropertyCache::lookup(PropIdx idx, std::uint64_t &checksum)
{
    if (!enabled() || !ways_)
        return false;
    ++lookups_;
    std::uint64_t s = idx % numSets_;
    std::uint64_t tag = idx / numSets_;
    Way *ws = set(s);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (live(ws[w]) && ws[w].tag == tag) {
            ++hits_;
            ws[w].lastUse = ++useClock_;
            checksum = ws[w].checksum;
            return true;
        }
    }
    return false;
}

bool
PropertyCache::insert(PropIdx idx, std::uint64_t checksum)
{
    if (!enabled() || !ways_)
        return false;
    std::uint64_t s = idx % numSets_;
    std::uint64_t tag = idx / numSets_;
    Way *ws = set(s);

    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (live(ws[w]) && ws[w].tag == tag) {
            ++duplicateInserts_;
            return false;
        }
    }
    // Prefer an invalid way; otherwise evict the least recently used.
    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!live(ws[w])) {
            victim = &ws[w];
            break;
        }
        if (!victim || ws[w].lastUse < victim->lastUse)
            victim = &ws[w];
    }
    ns_assert(victim, "no victim way found");
    if (live(*victim))
        ++evictions_;
    victim->epoch = epoch_;
    victim->tag = tag;
    victim->checksum = checksum;
    victim->lastUse = ++useClock_;
    ++inserts_;
    return true;
}

void
PropertyCache::resetStats()
{
    lookups_ = hits_ = inserts_ = evictions_ = duplicateInserts_ = 0;
}

void
PropertyCache::exportStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.set(prefix + ".lookups", static_cast<double>(lookups_));
    reg.set(prefix + ".hits", static_cast<double>(hits_));
    reg.set(prefix + ".hitRate", hitRate());
    reg.set(prefix + ".inserts", static_cast<double>(inserts_));
    reg.set(prefix + ".evictions", static_cast<double>(evictions_));
    reg.set(prefix + ".duplicateInserts",
            static_cast<double>(duplicateInserts_));
    reg.set(prefix + ".capacityEntries",
            static_cast<double>(capacityEntries()));
    reg.set(prefix + ".lineBytes", static_cast<double>(lineBytes_));
}

} // namespace netsparse
