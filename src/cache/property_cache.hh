/**
 * @file
 * The in-switch Property Cache (Section 6.2.2, Figure 9).
 *
 * A set-associative cache indexed by the property idx that returns the
 * property value. To support different kernels' property sizes with full
 * capacity utilization, the data array is built from fixed-width (16 B)
 * *segments*: a property of S bytes occupies S/16 adjacent segments of
 * the same set/way. Before a kernel runs, the control plane configures
 * the single property size (the "Mode"), which also invalidates all
 * contents (sparse kernels are short-lived, so there is no cross-kernel
 * reuse to preserve).
 *
 * The simulator stores one 64-bit checksum per entry in place of the
 * property bytes; capacity accounting still uses the true property size.
 */

#ifndef NETSPARSE_CACHE_PROPERTY_CACHE_HH
#define NETSPARSE_CACHE_PROPERTY_CACHE_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace netsparse {

/** Static (hardware) parameters of a Property Cache instance. */
struct PropertyCacheConfig
{
    /** Total data capacity in bytes; 0 disables the cache. */
    std::uint64_t totalBytes = 32ull << 20;
    /** Smallest supported property ("min cache line"). */
    std::uint32_t minLineBytes = 16;
    /** Largest supported property ("max cache line"). */
    std::uint32_t maxLineBytes = 512;
    /** Number of 16 B data segments (maxLine / minLine). */
    std::uint32_t numSegments = 32;
    /** Associativity. */
    std::uint32_t ways = 16;
    /** Access latency in switch-pipe cycles (Table 5: 16). */
    std::uint32_t latencyCycles = 16;
};

/**
 * Pure model of the Segment Selector of Figure 9: given the configured
 * mode (property size) and the segment bits of an idx, produce the
 * 32-bit enable bitmask that activates the segment(s) holding the value.
 */
std::uint32_t segmentEnableMask(std::uint32_t numSegments,
                                std::uint32_t segmentsPerEntry,
                                std::uint32_t segmentBits);

/** One Property Cache (one per switch middle pipe). */
class PropertyCache
{
  public:
    explicit PropertyCache(const PropertyCacheConfig &cfg);

    /**
     * Control-plane reconfiguration before a kernel: set the property
     * size and invalidate everything.
     */
    void configureForKernel(std::uint32_t propertyBytes);

    /** Invalidate all entries without changing the mode. */
    void invalidateAll();

    /**
     * Look up @p idx (read-PR path). On a hit, @p checksum receives the
     * stored value and the entry's recency is refreshed.
     * @return true on hit.
     */
    bool lookup(PropIdx idx, std::uint64_t &checksum);

    /**
     * Insert @p idx (response-PR path). Does nothing when the value is
     * already present. Evicts the set's LRU way when the set is full.
     * @return true when a new entry was written.
     */
    bool insert(PropIdx idx, std::uint64_t checksum);

    /** Entries the cache can hold in the current mode. */
    std::uint64_t capacityEntries() const { return numSets_ * cfg_.ways; }

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t latencyCycles() const { return cfg_.latencyCycles; }
    bool enabled() const { return cfg_.totalBytes > 0; }

    // Statistics.
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t duplicateInserts() const { return duplicateInserts_; }

    /** Hit rate over all lookups so far (0 when no lookups). */
    double
    hitRate() const
    {
        return lookups_ ? static_cast<double>(hits_) / lookups_ : 0.0;
    }

    void resetStats();

    /**
     * Register every counter under "<prefix>." (the docs/observability.md
     * property-cache contract, e.g. "tor0.cache.hits").
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /**
     * One way. Validity is epoch-based: a way holds a live entry only
     * when its epoch matches the cache's. Bumping the cache epoch
     * invalidates every entry in O(1), which makes the per-kernel
     * reconfiguration of a multi-megabyte cache free instead of a
     * full-array rewrite on the simulator's critical path.
     */
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t checksum = 0;
        std::uint64_t lastUse = 0;
        std::uint64_t epoch = 0; // 0 = never written
    };

    Way *set(std::uint64_t s) { return ways_.get() + s * cfg_.ways; }

    bool live(const Way &w) const { return w.epoch == epoch_; }

    struct FreeDeleter
    {
        void operator()(Way *p) const { std::free(p); }
    };

    PropertyCacheConfig cfg_;
    std::uint32_t lineBytes_ = 0;
    std::uint64_t numSets_ = 0;
    /**
     * calloc-backed, not a vector: an all-zero Way is exactly the
     * "never written" state (epoch 0 < any live epoch), so fresh
     * zero-on-demand pages from the allocator stand in for the
     * multi-megabyte memset a vector resize would do up front.
     */
    std::unique_ptr<Way[], FreeDeleter> ways_;
    std::uint64_t wayCapacity_ = 0;
    std::uint64_t useClock_ = 0;
    std::uint64_t epoch_ = 1;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t duplicateInserts_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_CACHE_PROPERTY_CACHE_HH
