#include "net/topology.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace netsparse {

void
Topology::addSwitchLink(SwitchId a, SwitchId b, double bw_mult)
{
    ns_assert(a != b, "self link on switch ", a);
    auto pa = static_cast<std::uint32_t>(ports_[a].size());
    auto pb = static_cast<std::uint32_t>(ports_[b].size());
    ports_[a].push_back({PortPeer::Kind::Switch, b, bw_mult, pb});
    ports_[b].push_back({PortPeer::Kind::Switch, a, bw_mult, pa});
}

void
Topology::attachHost(SwitchId s, NodeId n)
{
    ports_[s].push_back({PortPeer::Kind::Host, n, 1.0, 0});
    hostSwitch_[n] = s;
    hostPort_[n] = static_cast<std::uint32_t>(ports_[s].size()) - 1;
    torFlag_[s] = true;
}

Topology
Topology::leafSpine(std::uint32_t racks, std::uint32_t nodes_per_rack,
                    std::uint32_t spines)
{
    ns_assert(racks >= 1 && nodes_per_rack >= 1, "empty leaf-spine");
    Topology t;
    t.name_ = "leaf-spine";
    t.numNodes_ = racks * nodes_per_rack;
    t.nodesPerTor_ = nodes_per_rack;
    std::uint32_t num_switches = racks + (racks > 1 ? spines : 0);
    t.ports_.resize(num_switches);
    t.torFlag_.assign(num_switches, false);
    t.hostSwitch_.resize(t.numNodes_);
    t.hostPort_.resize(t.numNodes_);

    // ToR switches are 0..racks-1, spines follow. Hosts first so host
    // ports form the low "down" port range of each ToR.
    for (std::uint32_t r = 0; r < racks; ++r) {
        for (std::uint32_t h = 0; h < nodes_per_rack; ++h)
            t.attachHost(r, r * nodes_per_rack + h);
    }
    if (racks > 1) {
        for (std::uint32_t s = 0; s < spines; ++s) {
            for (std::uint32_t r = 0; r < racks; ++r)
                t.addSwitchLink(r, racks + s, 1.0);
        }
    }
    t.computeRoutes();
    return t;
}

Topology
Topology::hyperX(std::uint32_t dx, std::uint32_t dy, std::uint32_t dz,
                 std::uint32_t hosts_per_switch, std::uint32_t width)
{
    ns_assert(dx >= 1 && dy >= 1 && dz >= 1, "empty HyperX");
    Topology t;
    t.name_ = "hyperx";
    std::uint32_t num_switches = dx * dy * dz;
    t.numNodes_ = num_switches * hosts_per_switch;
    t.nodesPerTor_ = hosts_per_switch;
    t.ports_.resize(num_switches);
    t.torFlag_.assign(num_switches, false);
    t.hostSwitch_.resize(t.numNodes_);
    t.hostPort_.resize(t.numNodes_);

    auto sid = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        return (z * dy + y) * dx + x;
    };

    for (std::uint32_t s = 0; s < num_switches; ++s) {
        for (std::uint32_t h = 0; h < hosts_per_switch; ++h)
            t.attachHost(s, s * hosts_per_switch + h);
    }

    double bw = static_cast<double>(width);
    for (std::uint32_t z = 0; z < dz; ++z) {
        for (std::uint32_t y = 0; y < dy; ++y) {
            for (std::uint32_t x = 0; x < dx; ++x) {
                for (std::uint32_t x2 = x + 1; x2 < dx; ++x2)
                    t.addSwitchLink(sid(x, y, z), sid(x2, y, z), bw);
                for (std::uint32_t y2 = y + 1; y2 < dy; ++y2)
                    t.addSwitchLink(sid(x, y, z), sid(x, y2, z), bw);
                for (std::uint32_t z2 = z + 1; z2 < dz; ++z2)
                    t.addSwitchLink(sid(x, y, z), sid(x, y, z2), bw);
            }
        }
    }
    t.computeRoutes();
    return t;
}

Topology
Topology::dragonfly(std::uint32_t groups, std::uint32_t per_group,
                    std::uint32_t hosts_per_switch,
                    std::uint32_t inter_group_links)
{
    ns_assert(groups >= 1 && per_group >= 1, "empty Dragonfly");
    Topology t;
    t.name_ = "dragonfly";
    std::uint32_t num_switches = groups * per_group;
    t.numNodes_ = num_switches * hosts_per_switch;
    t.nodesPerTor_ = hosts_per_switch;
    t.ports_.resize(num_switches);
    t.torFlag_.assign(num_switches, false);
    t.hostSwitch_.resize(t.numNodes_);
    t.hostPort_.resize(t.numNodes_);

    for (std::uint32_t s = 0; s < num_switches; ++s) {
        for (std::uint32_t h = 0; h < hosts_per_switch; ++h)
            t.attachHost(s, s * hosts_per_switch + h);
    }

    // Full connectivity inside each group.
    for (std::uint32_t g = 0; g < groups; ++g) {
        for (std::uint32_t a = 0; a < per_group; ++a) {
            for (std::uint32_t b = a + 1; b < per_group; ++b)
                t.addSwitchLink(g * per_group + a, g * per_group + b, 1.0);
        }
    }
    // Parallel global links between every group pair, endpoints spread
    // round-robin over the group members.
    for (std::uint32_t g1 = 0; g1 < groups; ++g1) {
        for (std::uint32_t g2 = g1 + 1; g2 < groups; ++g2) {
            for (std::uint32_t l = 0; l < inter_group_links; ++l) {
                std::uint32_t a =
                    g1 * per_group + (g2 * inter_group_links + l) %
                                         per_group;
                std::uint32_t b =
                    g2 * per_group + (g1 * inter_group_links + l) %
                                         per_group;
                t.addSwitchLink(a, b, 1.0);
            }
        }
    }
    t.computeRoutes();
    return t;
}

void
Topology::computeRoutes()
{
    std::uint32_t n = numSwitches();
    candidates_.assign(n, {});
    for (auto &per_dest : candidates_)
        per_dest.resize(n);
    distance_.assign(n, std::vector<std::uint16_t>(n, 0xffff));

    for (SwitchId dest = 0; dest < n; ++dest) {
        auto &dist = distance_[dest]; // dist[sw] = hops from sw to dest
        dist[dest] = 0;
        std::deque<SwitchId> frontier{dest};
        while (!frontier.empty()) {
            SwitchId cur = frontier.front();
            frontier.pop_front();
            for (const auto &peer : ports_[cur]) {
                if (peer.kind != PortPeer::Kind::Switch)
                    continue;
                if (dist[peer.id] == 0xffff) {
                    dist[peer.id] =
                        static_cast<std::uint16_t>(dist[cur] + 1);
                    frontier.push_back(peer.id);
                }
            }
        }

        for (SwitchId sw = 0; sw < n; ++sw) {
            if (sw == dest || dist[sw] == 0xffff)
                continue;
            // Candidate ports: any neighbor one hop closer to dest.
            auto &candidates = candidates_[sw][dest];
            const auto &pl = ports_[sw];
            for (std::uint16_t p = 0; p < pl.size(); ++p) {
                if (pl[p].kind == PortPeer::Kind::Switch &&
                    dist[pl[p].id] + 1 == dist[sw])
                    candidates.push_back(p);
            }
            ns_assert(!candidates.empty(), "no route from ", sw, " to ",
                      dest);
        }
    }

    // distance_[dest][sw] computed above is symmetric in an undirected
    // graph, so it can be read either way.
}

std::uint32_t
Topology::route(SwitchId sw, NodeId dest) const
{
    SwitchId ds = hostSwitch_[dest];
    if (ds == sw)
        return hostPort_[dest];
    const auto &candidates = candidates_[sw][ds];
    ns_assert(!candidates.empty(), "no route from switch ", sw,
              " to node ", dest);
    // Deterministic per-destination-node spreading over the equal-cost
    // ports (see file comment).
    return candidates[dest % candidates.size()];
}

std::uint32_t
Topology::hopCount(NodeId a, NodeId b) const
{
    SwitchId sa = hostSwitch_[a];
    SwitchId sb = hostSwitch_[b];
    if (sa == sb)
        return 1;
    return 1u + distance_[sb][sa];
}

std::uint32_t
Topology::numTors() const
{
    return static_cast<std::uint32_t>(
        std::count(torFlag_.begin(), torFlag_.end(), true));
}

std::vector<std::uint32_t>
Topology::rackPartition(std::uint32_t shards) const
{
    std::uint32_t tors = numTors();
    ns_assert(shards >= 1 && shards <= tors, "shard count ", shards,
              " outside [1, ", tors, "]");
    std::vector<std::uint32_t> assignment(numSwitches(), 0);
    std::uint32_t tor = 0, spine = 0;
    std::uint32_t spines = numSwitches() - tors;
    for (SwitchId s = 0; s < numSwitches(); ++s) {
        if (torFlag_[s]) {
            assignment[s] = tor++ * shards / tors;
        } else {
            // Proportional spread keeps the spine load per shard even
            // whether or not the counts divide.
            assignment[s] = spine++ * shards / spines;
        }
    }
    return assignment;
}

} // namespace netsparse
