#include "net/switch.hh"

#include "sim/logging.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

namespace netsparse {

Switch::Switch(EventQueue &eq, SwitchConfig cfg, SwitchId id,
               std::string name)
    : eq_(eq), cfg_(cfg), id_(id), name_(std::move(name))
{
    Clock pipe_clock(cfg_.pipeClockHz);
    cacheLatency_ = pipe_clock.cycles(cfg_.cache.latencyCycles);
    if (cfg_.numTenants > 1)
        servedByCacheTenant_.assign(cfg_.numTenants, 0);
}

void
Switch::attachPort(std::uint32_t port, Link *out, bool to_host)
{
    ns_assert(port == out_.size(), "ports must be attached in order");
    out_.push_back(out);
    hostPort_.push_back(to_host);
    if (cfg_.fairQueue) {
        OutPortFq fq;
        fq.lanes.resize(cfg_.numTenants + 1);
        fq.deficit.assign(cfg_.numTenants + 1, 0);
        fq_.push_back(std::move(fq));
    }
}

void
Switch::configureForKernel(std::uint32_t prop_bytes)
{
    if (!cfg_.netsparseEnabled)
        return;
    ns_assert(!out_.empty(), "configure called before ports attached");

    std::uint32_t pipes =
        (static_cast<std::uint32_t>(out_.size()) + cfg_.portsPerPipe - 1) /
        cfg_.portsPerPipe;

    if (caches_.empty()) {
        if (cfg_.tenantCachePartitioned && cfg_.numTenants > 1) {
            // Per-tenant isolation: each job owns an equal slice of
            // the budget, so one tenant's working set cannot evict
            // another's. Orthogonal to (and exclusive with) the
            // per-pipe organization.
            ns_assert(!cfg_.cachePerPipe,
                      "tenant-partitioned cache is exclusive with "
                      "cachePerPipe on ", name_);
            PropertyCacheConfig per_tenant = cfg_.cache;
            per_tenant.totalBytes =
                cfg_.cache.totalBytes / cfg_.numTenants;
            for (std::uint32_t t = 0; t < cfg_.numTenants; ++t)
                caches_.push_back(
                    std::make_unique<PropertyCache>(per_tenant));
        } else if (cfg_.cachePerPipe) {
            PropertyCacheConfig per_pipe = cfg_.cache;
            per_pipe.totalBytes = cfg_.cache.totalBytes / pipes;
            for (std::uint32_t p = 0; p < pipes; ++p)
                caches_.push_back(
                    std::make_unique<PropertyCache>(per_pipe));
        } else {
            caches_.push_back(
                std::make_unique<PropertyCache>(cfg_.cache));
        }
    }
    for (auto &c : caches_)
        c->configureForKernel(prop_bytes);

    concats_.clear();
    for (std::uint32_t p = 0; p < pipes; ++p) {
        concats_.push_back(std::make_unique<Concatenator>(
            eq_, cfg_.concat,
            [this](Packet &&pkt) { forward(std::move(pkt)); },
            name_ + ".pipe" + std::to_string(p) + ".concat"));
    }
}

void
Switch::recordPipeSpan(const Packet &pkt, Tick arrival, Tick delay,
                       std::uint32_t inPort)
{
    // Identical events from the exact and fused delivery paths: both
    // describe [arrival, arrival + pipe delay], so the regime a
    // deterministic congestion detector picks never changes the span
    // document.
    SpanBuffer *sb = eq_.spans();
    if (!sb)
        return;
    for (const auto &pr : pkt.prs)
        if (pr.spanId != 0)
            sb->record(pr.spanId, SpanStage::SwitchPipe, spanComp_,
                       arrival, delay, inPort);
}

void
Switch::receivePacket(Packet &&pkt, std::uint32_t in_port)
{
    Tick delay = cfg_.pipelineLatency;
    if (cfg_.netsparseEnabled)
        delay += cacheLatency_;
    if (pkt.spanned)
        recordPipeSpan(pkt, eq_.now(), delay, in_port);
    NS_TRACE(tw.complete(
        tw.track(name_), "pipe", eq_.now(), eq_.now() + delay,
        traceArgs({{"prs", static_cast<double>(pkt.prs.size())},
                   {"inPort", static_cast<double>(in_port)}})));
    eq_.scheduleIn(delay, [this, p = std::move(pkt), in_port]() mutable {
        // Raw background packets carry no PRs: the middle pipes have
        // nothing to do with them, they just cross to their egress.
        if (cfg_.netsparseEnabled && !p.rawBytes)
            processMiddlePipe(std::move(p), in_port);
        else
            forward(std::move(p));
    });
}

void
Switch::fusedDeliver(Packet &&pkt, std::uint32_t in_port)
{
    // The fused hop (net/fidelity.hh): the upstream link scheduled this
    // call directly at arrival + fusedIngressDelay(), skipping the
    // arrival-time event receivePacket would have burned re-scheduling
    // the pipe work. Account that elided event so executedEvents()
    // matches the exact path, and emit the same pipe span.
    eq_.addExecutedEvents(1);
    if (pkt.spanned)
        recordPipeSpan(pkt, eq_.now() - fusedIngressDelay(),
                       fusedIngressDelay(), in_port);
    NS_TRACE(tw.complete(
        tw.track(name_), "pipe", eq_.now() - fusedIngressDelay(),
        eq_.now(),
        traceArgs({{"prs", static_cast<double>(pkt.prs.size())},
                   {"inPort", static_cast<double>(in_port)}})));
    if (cfg_.netsparseEnabled && !pkt.rawBytes)
        processMiddlePipe(std::move(pkt), in_port);
    else
        forward(std::move(pkt));
}

PropertyCache &
Switch::cacheFor(const PropertyRequest &pr, std::uint32_t pipe)
{
    if (cfg_.tenantCachePartitioned && cfg_.numTenants > 1) {
        std::uint32_t t = pr.tenant < cfg_.numTenants
                              ? pr.tenant
                              : cfg_.numTenants - 1;
        return *caches_[t];
    }
    // With the shared organization there is a single cache array; in
    // per-pipe mode each middle pipe owns a slice (see header comment).
    ns_assert(!cfg_.cachePerPipe || pipe < caches_.size(),
              "pipe ", pipe, " has no cache slice on ", name_);
    return *caches_[cfg_.cachePerPipe ? pipe : 0];
}

void
Switch::processMiddlePipe(Packet &&pkt, std::uint32_t in_port)
{
    ns_assert(!concats_.empty(),
              "NetSparse switch ", name_, " was not configured");

    bool from_host = hostPort_[in_port];
    std::uint32_t egress = route_(pkt.dest);
    bool egress_host = hostPort_[egress];

    // Reads use the pipe of their egress port; responses the pipe of
    // their ingress port (Figure 8).
    std::uint32_t pipe = pkt.type == PrType::Read ? pipeOf(egress)
                                                  : pipeOf(in_port);
    // Every attached port maps to a configured pipe; a pipe index out
    // of range means configureForKernel built fewer pipes than the
    // port layout implies, and silently wrapping it would route PRs
    // through the wrong pipe's cache slice.
    ns_assert(pipe < concats_.size(), "pipe ", pipe, " out of range on ",
              name_, " (", concats_.size(), " middle pipes)");
    Concatenator &concat = *concats_[pipe];

    NodeId pkt_dest = pkt.dest;
    std::vector<PropertyRequest> prs = deconcatenate(std::move(pkt));
    NS_TRACE(tw.instant(
        tw.track(name_), "deconcat", eq_.now(),
        traceArgs({{"prs", static_cast<double>(prs.size())}})));
    for (auto &pr : prs) {
        if (pr.type == PrType::Read && from_host) {
            // Lifecycle stamp: the read reached its requester's ToR
            // middle pipe (net/pr_latency.hh).
            pr.torIngressTick = eq_.now();
        }
        if (pr.type == PrType::Read && from_host && !egress_host &&
            pr.bypassCache) {
            // A corruption refetch: the requester demands the
            // authoritative home-node copy, not a possibly-poisoned
            // cached one.
            ++cacheBypasses_;
            if (pr.spanId != 0)
                if (SpanBuffer *sb = eq_.spans())
                    sb->record(pr.spanId, SpanStage::CacheBypass,
                               spanComp_, eq_.now(), 0, pr.idx);
            NS_TRACE(tw.instant(
                tw.track(name_), "cache.bypass", eq_.now(),
                traceArgs({{"idx", static_cast<double>(pr.idx)}})));
        } else if (pr.type == PrType::Read && from_host && !egress_host) {
            // A read leaving the rack: try to serve it locally.
            std::uint64_t csum = 0;
            if (cacheFor(pr, pipe).lookup(cacheKey(pr), csum)) {
                pr.type = PrType::Response;
                pr.payloadBytes = pr.propBytes;
                pr.checksum = csum;
                pr.fetchTick = eq_.now();
                pr.servedByCache = true;
                ++servedByCache_;
                if (!servedByCacheTenant_.empty())
                    ++servedByCacheTenant_[pr.tenant < cfg_.numTenants
                                               ? pr.tenant
                                               : cfg_.numTenants - 1];
                if (pr.spanId != 0)
                    if (SpanBuffer *sb = eq_.spans())
                        sb->record(pr.spanId, SpanStage::CacheHit,
                                   spanComp_, eq_.now(), 0, pr.idx);
                NS_TRACE(tw.instant(
                    tw.track(name_), "cache.hit", eq_.now(),
                    traceArgs(
                        {{"idx", static_cast<double>(pr.idx)}})));
                NodeId back = pr.src;
                concat.push(std::move(pr), back);
                continue;
            }
            if (pr.spanId != 0)
                if (SpanBuffer *sb = eq_.spans())
                    sb->record(pr.spanId, SpanStage::CacheMiss,
                               spanComp_, eq_.now(), 0, pr.idx);
            NS_TRACE(tw.instant(
                tw.track(name_), "cache.miss", eq_.now(),
                traceArgs({{"idx", static_cast<double>(pr.idx)}})));
        } else if (pr.type == PrType::Response && !from_host &&
                   egress_host && cfg_.verifyResponses &&
                   pr.checksum != propertyChecksum(pr.idx, pr.tenant)) {
            // A corrupt response must not poison the cache. It is
            // still forwarded: the requesting RIG unit detects the bad
            // checksum and NACK-refetches.
            ++poisonRejected_;
            NS_TRACE(tw.instant(
                tw.track(name_), "cache.poisonRejected", eq_.now(),
                traceArgs({{"idx", static_cast<double>(pr.idx)}})));
        } else if (pr.type == PrType::Response && !from_host &&
                   egress_host) {
            // A response entering the rack: remember it for neighbors.
            PropertyCache &cache = cacheFor(pr, pipe);
            [[maybe_unused]] std::uint64_t evictionsBefore =
                cache.evictions();
            [[maybe_unused]] bool written =
                cache.insert(cacheKey(pr), pr.checksum);
            NS_TRACE(
                if (written) tw.instant(
                    tw.track(name_),
                    cache.evictions() > evictionsBefore
                        ? "cache.evict"
                        : "cache.insert",
                    eq_.now(),
                    traceArgs({{"idx",
                                static_cast<double>(pr.idx)}})));
        }
        concat.push(std::move(pr), pkt_dest);
    }
    recyclePrBuffer(std::move(prs));
}

void
Switch::forward(Packet &&pkt)
{
    std::uint32_t p = route_(pkt.dest);
    ns_assert(p < out_.size() && out_[p], "bad egress port ", p, " on ",
              name_);
    ++forwarded_;
    if (!cfg_.fairQueue) {
        out_[p]->send(std::move(pkt));
        return;
    }
    OutPortFq &fq = fq_[p];
    if (fq.queued == 0 && out_[p]->queueDelay() == 0) {
        // Uncontended port: bypass the lanes so timing is identical to
        // FIFO when there is nothing to arbitrate between.
        out_[p]->send(std::move(pkt));
        return;
    }
    fq.lanes[laneOf(pkt)].push_back(std::move(pkt));
    ++fq.queued;
    ++fqQueued_;
    ++fqEnqueued_;
    scheduleDrain(p);
}

void
Switch::scheduleDrain(std::uint32_t p)
{
    OutPortFq &fq = fq_[p];
    if (fq.drainScheduled || fq.queued == 0)
        return;
    fq.drainScheduled = true;
    // Wake exactly when the wire frees: one packet leaves per drain
    // event, so the link's busy-until chain never grows beyond one
    // arbitrated packet and the lanes keep their backlog.
    eq_.scheduleIn(out_[p]->queueDelay(), [this, p] { drainPort(p); });
}

void
Switch::drainPort(std::uint32_t p)
{
    OutPortFq &fq = fq_[p];
    fq.drainScheduled = false;
    if (fq.queued == 0)
        return;
    std::uint32_t lanes = static_cast<std::uint32_t>(fq.lanes.size());
    // Deficit round robin, quantum = MTU: since no packet exceeds the
    // MTU, one full pass over the lanes always releases a packet -
    // bound the scan accordingly.
    std::uint32_t scanned = 0;
    for (;;) {
        ns_assert(scanned++ <= 2 * lanes,
                  "DRR failed to release a packet on ", name_);
        auto &lane = fq.lanes[fq.rr];
        if (lane.empty()) {
            // An idle lane forfeits its deficit (standard DRR).
            fq.deficit[fq.rr] = 0;
            fq.rr = (fq.rr + 1) % lanes;
            continue;
        }
        auto wire = static_cast<std::int64_t>(
            lane.front().wireBytes(cfg_.proto));
        if (fq.deficit[fq.rr] < wire) {
            fq.deficit[fq.rr] +=
                static_cast<std::int64_t>(cfg_.proto.mtuBytes);
            fq.rr = (fq.rr + 1) % lanes;
            continue;
        }
        fq.deficit[fq.rr] -= wire;
        Packet pkt = std::move(lane.front());
        lane.pop_front();
        --fq.queued;
        --fqQueued_;
        out_[p]->send(std::move(pkt));
        break;
    }
    scheduleDrain(p);
}

std::uint64_t
Switch::cacheLookups() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches_)
        n += c->lookups();
    return n;
}

std::uint64_t
Switch::cacheHits() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches_)
        n += c->hits();
    return n;
}

std::uint64_t
Switch::cacheInserts() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches_)
        n += c->inserts();
    return n;
}

std::uint64_t
Switch::cacheEvictions() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches_)
        n += c->evictions();
    return n;
}

void
Switch::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.set(prefix + ".packetsForwarded",
            static_cast<double>(forwarded_));
    if (cfg_.fairQueue)
        reg.set(prefix + ".fq.enqueued",
                static_cast<double>(fqEnqueued_));
    if (!cfg_.netsparseEnabled)
        return;
    reg.set(prefix + ".prsServedByCache",
            static_cast<double>(servedByCache_));
    for (std::size_t t = 0; t < servedByCacheTenant_.size(); ++t)
        reg.set(prefix + ".tenant" + std::to_string(t) +
                    ".prsServedByCache",
                static_cast<double>(servedByCacheTenant_[t]));
    if (cfg_.verifyResponses) {
        // Resilience keys exist only when fault handling is on, so a
        // zero-fault run's document is unchanged.
        reg.set(prefix + ".cache.poisonRejected",
                static_cast<double>(poisonRejected_));
        reg.set(prefix + ".cache.bypasses",
                static_cast<double>(cacheBypasses_));
    }
    if (caches_.size() == 1) {
        caches_[0]->exportStats(reg, prefix + ".cache");
    } else {
        // Sliced caches (per pipe or per tenant): export each slice
        // and the aggregate counters.
        const char *slice =
            cfg_.tenantCachePartitioned ? ".tenant" : ".pipe";
        for (std::size_t p = 0; p < caches_.size(); ++p)
            caches_[p]->exportStats(
                reg, prefix + slice + std::to_string(p) + ".cache");
        reg.set(prefix + ".cache.lookups",
                static_cast<double>(cacheLookups()));
        reg.set(prefix + ".cache.hits",
                static_cast<double>(cacheHits()));
        reg.set(prefix + ".cache.hitRate",
                cacheLookups() ? static_cast<double>(cacheHits()) /
                                     cacheLookups()
                               : 0.0);
        reg.set(prefix + ".cache.inserts",
                static_cast<double>(cacheInserts()));
        reg.set(prefix + ".cache.evictions",
                static_cast<double>(cacheEvictions()));
    }
    // Middle-pipe concatenators, aggregated into one "<prefix>.concat".
    Average prs_per_packet, pr_wait;
    std::uint64_t pushed = 0, emitted = 0, by_fill = 0, by_expiry = 0;
    for (const auto &c : concats_) {
        pushed += c->prsPushed();
        emitted += c->packetsEmitted();
        by_fill += c->flushesByFill();
        by_expiry += c->flushesByExpiry();
        prs_per_packet.merge(c->prsPerPacket());
        pr_wait.merge(c->prWaitTicks());
    }
    reg.set(prefix + ".concat.prsPushed", static_cast<double>(pushed));
    reg.set(prefix + ".concat.packetsEmitted",
            static_cast<double>(emitted));
    reg.set(prefix + ".concat.flushesByFill",
            static_cast<double>(by_fill));
    reg.set(prefix + ".concat.flushesByExpiry",
            static_cast<double>(by_expiry));
    reg.setAverage(prefix + ".concat.prsPerPacket", prs_per_packet);
    reg.setAverage(prefix + ".concat.prWaitTicks", pr_wait);
}

} // namespace netsparse
