#include "net/fidelity.hh"

namespace netsparse {

const char *
fidelityName(FidelityMode mode)
{
    switch (mode) {
      case FidelityMode::Exact: return "exact";
      case FidelityMode::Hybrid: return "hybrid";
      case FidelityMode::Flow: return "flow";
    }
    return "?";
}

bool
parseFidelity(const std::string &text, FidelityMode &out)
{
    if (text == "exact") {
        out = FidelityMode::Exact;
        return true;
    }
    if (text == "hybrid") {
        out = FidelityMode::Hybrid;
        return true;
    }
    if (text == "flow") {
        out = FidelityMode::Flow;
        return true;
    }
    return false;
}

} // namespace netsparse
