/**
 * @file
 * Cluster topology descriptions and deterministic routing.
 *
 * Three topologies from the paper are supported:
 *  - Leaf-Spine (Figure 11): racks of hosts under ToR switches, all ToRs
 *    connected to every spine.
 *  - HyperX (Section 9.6): switches on a 3-D grid, fully connected along
 *    each dimension. The paper's "width 4" trunking is modeled as a 4x
 *    bandwidth multiplier on inter-switch links.
 *  - Dragonfly (Section 9.6): fully-connected groups with parallel
 *    inter-group links, minimal routing.
 *
 * Routing is deterministic: per destination switch, a BFS computes the
 * shortest-path candidate ports, and the tie among equal-cost ports is
 * broken by the destination *node* id (D-mod-k style). Every packet to
 * a given node therefore follows one fixed path - deterministic, loop
 * free - while traffic to different nodes spreads across the parallel
 * spines/links, avoiding rack-pair hotspots.
 */

#ifndef NETSPARSE_NET_TOPOLOGY_HH
#define NETSPARSE_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace netsparse {

/** What is attached at the far end of a switch port. */
struct PortPeer
{
    enum class Kind : std::uint8_t
    {
        None,
        Host,
        Switch,
    };

    Kind kind = Kind::None;
    std::uint32_t id = 0;
    /** Bandwidth multiplier (trunked links), 1.0 for plain links. */
    double bwMultiplier = 1.0;
    /** The matching port index on the peer switch (Switch kind only). */
    std::uint32_t peerPort = 0;
};

/** A switch-level description of the cluster graph plus route tables. */
class Topology
{
  public:
    /** racks ToR switches, @p nodesPerRack hosts each, @p spines spines. */
    static Topology leafSpine(std::uint32_t racks,
                              std::uint32_t nodesPerRack,
                              std::uint32_t spines);

    /**
     * 3-D HyperX: dims[0] x dims[1] x dims[2] switches, fully connected
     * along each dimension with @p width-trunked links.
     */
    static Topology hyperX(std::uint32_t dx, std::uint32_t dy,
                           std::uint32_t dz, std::uint32_t hostsPerSwitch,
                           std::uint32_t width);

    /**
     * Dragonfly: @p groups groups of @p switchesPerGroup fully-connected
     * switches; each group pair is joined by @p interGroupLinks parallel
     * links whose endpoints are spread round-robin over the group.
     */
    static Topology dragonfly(std::uint32_t groups,
                              std::uint32_t switchesPerGroup,
                              std::uint32_t hostsPerSwitch,
                              std::uint32_t interGroupLinks);

    std::uint32_t numNodes() const { return numNodes_; }
    std::uint32_t numSwitches() const
    {
        return static_cast<std::uint32_t>(ports_.size());
    }

    /** The switch node @p n attaches to (also its "rack" identity). */
    SwitchId switchOf(NodeId n) const { return hostSwitch_[n]; }

    /** The switch port node @p n attaches to. */
    std::uint32_t hostPort(NodeId n) const { return hostPort_[n]; }

    /** True when switch @p s has hosts attached (ToR / edge switch). */
    bool isTor(SwitchId s) const { return torFlag_[s]; }

    /** Port list of switch @p s. */
    const std::vector<PortPeer> &ports(SwitchId s) const
    {
        return ports_[s];
    }

    /**
     * Output port of switch @p sw toward node @p dest (a host port when
     * the node attaches here, a switch port otherwise).
     */
    std::uint32_t route(SwitchId sw, NodeId dest) const;

    /** Hop count (switches traversed) from node @p a to node @p b. */
    std::uint32_t hopCount(NodeId a, NodeId b) const;

    /** Human-readable topology name. */
    const std::string &name() const { return name_; }

    /** Nodes attached to the same switch as @p n (including @p n). */
    std::uint32_t nodesPerTor() const { return nodesPerTor_; }

    /** Number of switches with hosts attached (= racks). */
    std::uint32_t numTors() const;

    /**
     * Rack-granular partition of the switch graph into @p shards
     * pieces for the parallel engine (sim/shard_engine.hh): ToR r of R
     * gets shard r*shards/R (contiguous rack blocks), switches without
     * hosts (spines) are spread proportionally. Every host then lives
     * in its ToR's shard, so the only cross-shard edges are
     * switch-to-switch links - each one a Link whose latency bounds
     * the engine's lookahead. @p shards must be in [1, numTors()].
     *
     * @return per-switch shard ids.
     */
    std::vector<std::uint32_t> rackPartition(std::uint32_t shards) const;

  private:
    void addSwitchLink(SwitchId a, SwitchId b, double bwMult);
    void attachHost(SwitchId s, NodeId n);
    void computeRoutes();

    std::string name_;
    std::uint32_t numNodes_ = 0;
    std::uint32_t nodesPerTor_ = 0;
    std::vector<SwitchId> hostSwitch_;
    std::vector<std::uint32_t> hostPort_;
    std::vector<std::vector<PortPeer>> ports_;
    std::vector<bool> torFlag_;
    /** candidates_[sw][destSwitch]: equal-cost shortest-path ports. */
    std::vector<std::vector<std::vector<std::uint16_t>>> candidates_;
    /** distance_[sw][destSwitch] in switch hops. */
    std::vector<std::vector<std::uint16_t>> distance_;
};

} // namespace netsparse

#endif // NETSPARSE_NET_TOPOLOGY_HH
