/**
 * @file
 * Deterministic per-link fault injection (the "lossy network" model).
 *
 * The paper assumes a lossless fabric (Section 7.1); this module lets us
 * relax that assumption in a controlled, reproducible way. Every link
 * owns a LinkFaultInjector that draws per-packet fault decisions from a
 * stateless splitmix64 hash keyed on (seed, link orderingId, per-link
 * send sequence). Because the sequence of sends on any one link is
 * identical at every shard count, the injected fault pattern - and
 * therefore the stats JSON - is byte-identical at 1, 2 or 4 shards.
 *
 * Four fault classes are modeled:
 *  - drop:    independent per-packet loss; the packet burns wire time
 *             (the NIC transmitted it) but is never delivered.
 *  - corrupt: payload corruption; one response PR's checksum is flipped
 *             and the packet is delivered. Receivers detect the bad
 *             checksum and NACK/refetch (see docs/resilience.md).
 *  - down:    transient link-down windows; sends inside a window are
 *             discarded before touching the wire (the port is dead).
 *  - degrade: transient bandwidth degradation; serialization runs at
 *             degradeFactor of the configured rate for the window.
 */

#ifndef NETSPARSE_NET_FAULT_MODEL_HH
#define NETSPARSE_NET_FAULT_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "net/protocol.hh"
#include "sim/types.hh"

namespace netsparse {

/** Cluster-wide fault-injection knobs (see FaultConfig::parse). */
struct FaultConfig
{
    /** Per-packet probability of a random wire drop. */
    double dropRate = 0.0;
    /** Per-packet probability of payload corruption (responses). */
    double corruptRate = 0.0;
    /** Per-send probability of opening a link-down window. */
    double linkDownRate = 0.0;
    /** Length of one link-down window. */
    Tick linkDownTicks = 5 * ticks::us;
    /** Per-send probability of opening a degraded-bandwidth window. */
    double degradeRate = 0.0;
    /** Length of one degraded-bandwidth window. */
    Tick degradeTicks = 20 * ticks::us;
    /** Bandwidth multiplier inside a degraded window, in (0, 1]. */
    double degradeFactor = 0.25;
    /** Root seed; every link derives its own stream from it. */
    std::uint64_t seed = 1;

    /** True when any fault class is active. */
    bool
    enabled() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 ||
               linkDownRate > 0.0 || degradeRate > 0.0;
    }

    /**
     * Parse a CLI spec: comma-separated key:value pairs, e.g.
     * "drop:1e-4,corrupt:1e-5,down:1e-6,downUs:5,degrade:1e-5,
     *  degradeUs:20,degradeFactor:0.25,seed:7".
     * Unknown keys or malformed values are fatal (user error).
     */
    static FaultConfig parse(const std::string &spec);
};

/**
 * The per-link fault engine. Owned by a Link; consulted once per send.
 *
 * Decisions are pure functions of (seed, orderingId, sendSeq, fault
 * class), so two runs - or the same run at different shard counts -
 * inject exactly the same faults at the same points in the traffic.
 */
class LinkFaultInjector
{
  public:
    /** What Link::send should do with the packet. */
    struct Verdict
    {
        /** Discard before serialization (link down: no wire time). */
        bool dropBeforeWire = false;
        /** Discard after serialization (random loss: burns wire time). */
        bool dropOnWire = false;
        /** A PR checksum was flipped in place; deliver normally. */
        bool corrupted = false;
        /** Serialization bandwidth multiplier for this packet. */
        double bandwidthFactor = 1.0;
    };

    /** Per-category fault counters (exported via the link's stats). */
    struct Stats
    {
        std::uint64_t randomDrops = 0;
        std::uint64_t scriptedDrops = 0;
        std::uint64_t corruptedPrs = 0;
        std::uint64_t linkDownDrops = 0;
        std::uint64_t downWindows = 0;
        Tick linkDownTicks = 0;
        std::uint64_t degradeWindows = 0;
        Tick degradedTicks = 0;
    };

    LinkFaultInjector(const FaultConfig &cfg, std::uint32_t orderingId)
        : cfg_(cfg),
          streamBase_(splitmix64(cfg.seed ^
                                 (0x9e3779b97f4a7c15ull *
                                  (orderingId + 1))))
    {}

    /**
     * Judge (and possibly mutate) @p pkt about to be sent at @p now.
     * Advances the per-link send sequence; call exactly once per send.
     */
    Verdict onSend(Packet &pkt, Tick now);

    /**
     * Test hooks: scripted drop / corrupt predicates evaluated before
     * the probabilistic draws. A scripted drop loses the packet on the
     * wire; a scripted corruption flips the first response PR checksum.
     */
    void
    scriptDrop(std::function<bool(const Packet &)> fn)
    {
        scriptedDrop_ = std::move(fn);
    }
    void
    scriptCorrupt(std::function<bool(const Packet &)> fn)
    {
        scriptedCorrupt_ = std::move(fn);
    }

    const Stats &stats() const { return stats_; }
    std::uint64_t sendSeq() const { return seq_; }

  private:
    /** Uniform [0,1) draw for (current seq, fault-class salt). */
    double
    draw(std::uint64_t salt) const
    {
        std::uint64_t h = splitmix64(splitmix64(streamBase_ + seq_) ^
                                     salt);
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    }

    /** Flip one response PR's checksum; returns false if none. */
    bool corruptPacket(Packet &pkt);

    FaultConfig cfg_;
    std::uint64_t streamBase_;
    /** Packets offered to this injector so far (the draw key). */
    std::uint64_t seq_ = 0;
    Tick downUntil_ = 0;
    Tick degradedUntil_ = 0;
    std::function<bool(const Packet &)> scriptedDrop_;
    std::function<bool(const Packet &)> scriptedCorrupt_;
    Stats stats_;
};

} // namespace netsparse

#endif // NETSPARSE_NET_FAULT_MODEL_HH
