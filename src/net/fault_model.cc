#include "net/fault_model.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace netsparse {

namespace {

/** Salts keeping the per-class draws independent at one send seq. */
constexpr std::uint64_t saltDrop = 0x64726f70ull;      // "drop"
constexpr std::uint64_t saltCorrupt = 0x636f7272ull;   // "corr"
constexpr std::uint64_t saltDown = 0x646f776eull;      // "down"
constexpr std::uint64_t saltDegrade = 0x64656772ull;   // "degr"
constexpr std::uint64_t saltVictim = 0x76696374ull;    // "vict"

/** The corruption pattern: a checksum no honest sender ever produces. */
constexpr std::uint64_t corruptionMask = 0xbadc0ffee0ddf00dull;

double
parseDouble(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double d = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        ns_fatal("--faults: bad value for '", key, "': ", val);
    return d;
}

} // namespace

FaultConfig
FaultConfig::parse(const std::string &spec)
{
    FaultConfig cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t colon = item.find(':');
        if (colon == std::string::npos)
            ns_fatal("--faults: expected key:value, got '", item, "'");
        std::string key = item.substr(0, colon);
        std::string val = item.substr(colon + 1);
        if (key == "drop") {
            cfg.dropRate = parseDouble(key, val);
        } else if (key == "corrupt") {
            cfg.corruptRate = parseDouble(key, val);
        } else if (key == "down") {
            cfg.linkDownRate = parseDouble(key, val);
        } else if (key == "downUs") {
            cfg.linkDownTicks =
                static_cast<Tick>(parseDouble(key, val) * ticks::us);
        } else if (key == "degrade") {
            cfg.degradeRate = parseDouble(key, val);
        } else if (key == "degradeUs") {
            cfg.degradeTicks =
                static_cast<Tick>(parseDouble(key, val) * ticks::us);
        } else if (key == "degradeFactor") {
            cfg.degradeFactor = parseDouble(key, val);
        } else if (key == "seed") {
            cfg.seed = static_cast<std::uint64_t>(parseDouble(key, val));
        } else {
            ns_fatal("--faults: unknown key '", key,
                     "' (expected drop, corrupt, down, downUs, degrade,"
                     " degradeUs, degradeFactor or seed)");
        }
    }
    if (cfg.dropRate < 0 || cfg.dropRate >= 1 || cfg.corruptRate < 0 ||
        cfg.corruptRate >= 1 || cfg.linkDownRate < 0 ||
        cfg.linkDownRate >= 1 || cfg.degradeRate < 0 ||
        cfg.degradeRate >= 1)
        ns_fatal("--faults: rates must lie in [0, 1)");
    if (cfg.degradeFactor <= 0 || cfg.degradeFactor > 1)
        ns_fatal("--faults: degradeFactor must lie in (0, 1]");
    return cfg;
}

bool
LinkFaultInjector::corruptPacket(Packet &pkt)
{
    // Only response payloads carry data worth corrupting; reads are
    // pure headers and header corruption is modeled as a drop.
    if (pkt.type != PrType::Response || pkt.prs.empty())
        return false;
    std::uint64_t victim =
        splitmix64(splitmix64(streamBase_ + seq_) ^ saltVictim) %
        pkt.prs.size();
    pkt.prs[victim].checksum ^= corruptionMask;
    ++stats_.corruptedPrs;
    return true;
}

LinkFaultInjector::Verdict
LinkFaultInjector::onSend(Packet &pkt, Tick now)
{
    Verdict v;

    // Link-down windows: a dead port discards everything before the
    // wire. Window openings are drawn per send so the pattern stays a
    // pure function of the link's traffic sequence.
    if (now < downUntil_) {
        ++stats_.linkDownDrops;
        ++seq_;
        v.dropBeforeWire = true;
        return v;
    }
    if (cfg_.linkDownRate > 0.0 && draw(saltDown) < cfg_.linkDownRate) {
        downUntil_ = now + cfg_.linkDownTicks;
        ++stats_.downWindows;
        stats_.linkDownTicks += cfg_.linkDownTicks;
        ++stats_.linkDownDrops;
        ++seq_;
        v.dropBeforeWire = true;
        return v;
    }

    // Degraded-bandwidth windows slow serialization but lose nothing.
    if (cfg_.degradeRate > 0.0 && now >= degradedUntil_ &&
        draw(saltDegrade) < cfg_.degradeRate) {
        degradedUntil_ = now + cfg_.degradeTicks;
        ++stats_.degradeWindows;
        stats_.degradedTicks += cfg_.degradeTicks;
    }
    if (now < degradedUntil_)
        v.bandwidthFactor = cfg_.degradeFactor;

    // Scripted faults (tests) take precedence over the random draws.
    if (scriptedDrop_ && scriptedDrop_(pkt)) {
        ++stats_.scriptedDrops;
        ++seq_;
        v.dropOnWire = true;
        return v;
    }
    if (scriptedCorrupt_ && scriptedCorrupt_(pkt))
        v.corrupted = corruptPacket(pkt);

    if (cfg_.dropRate > 0.0 && draw(saltDrop) < cfg_.dropRate) {
        ++stats_.randomDrops;
        ++seq_;
        v.dropOnWire = true;
        return v;
    }
    if (!v.corrupted && cfg_.corruptRate > 0.0 &&
        draw(saltCorrupt) < cfg_.corruptRate)
        v.corrupted = corruptPacket(pkt);

    ++seq_;
    return v;
}

} // namespace netsparse
