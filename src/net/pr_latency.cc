#include "net/pr_latency.hh"

namespace netsparse {

namespace {

double
deltaNs(Tick from, Tick to)
{
    return ticks::toNs(to - from);
}

} // namespace

void
PrLatencyStats::record(const PropertyRequest &pr, Tick now)
{
    // A zero stamp means the stage never happened on this run (e.g. no
    // ToR middle pipes) - skip the deltas that depend on it rather
    // than pollute the histograms with bogus zero-origin spans.
    if (pr.issueTick == 0)
        return;
    ++responses;
    if (pr.servedByCache)
        ++cacheServed;
    totalNs.sample(deltaNs(pr.issueTick, now));
    totalAvgNs.sample(deltaNs(pr.issueTick, now));
    if (pr.egressTick >= pr.issueTick && pr.egressTick != 0) {
        nicNs.sample(deltaNs(pr.issueTick, pr.egressTick));
        if (pr.torIngressTick >= pr.egressTick && pr.torIngressTick != 0)
            requestNetNs.sample(deltaNs(pr.egressTick, pr.torIngressTick));
    }
    if (pr.fetchTick != 0) {
        if (pr.torIngressTick != 0 && pr.fetchTick >= pr.torIngressTick) {
            double d = deltaNs(pr.torIngressTick, pr.fetchTick);
            (pr.servedByCache ? cacheNs : remoteNs).sample(d);
        }
        if (now >= pr.fetchTick)
            responseNetNs.sample(deltaNs(pr.fetchTick, now));
    }
}

void
PrLatencyStats::merge(const PrLatencyStats &o)
{
    nicNs.merge(o.nicNs);
    requestNetNs.merge(o.requestNetNs);
    cacheNs.merge(o.cacheNs);
    remoteNs.merge(o.remoteNs);
    responseNetNs.merge(o.responseNetNs);
    totalNs.merge(o.totalNs);
    totalAvgNs.merge(o.totalAvgNs);
    responses += o.responses;
    cacheServed += o.cacheServed;
}

void
PrLatencyStats::exportStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    auto stage = [&](const std::string &name, const Histogram &h) {
        const std::string base = prefix + "." + name;
        reg.setHistogram(base, h);
        reg.set(base + ".p50", h.percentile(50.0));
        reg.set(base + ".p90", h.percentile(90.0));
        reg.set(base + ".p99", h.percentile(99.0));
        reg.set(base + ".p999", h.percentile(99.9));
    };
    stage("nicNs", nicNs);
    stage("requestNetNs", requestNetNs);
    stage("cacheNs", cacheNs);
    stage("remoteNs", remoteNs);
    stage("responseNetNs", responseNetNs);
    stage("totalNs", totalNs);
    reg.set(prefix + ".responses", static_cast<double>(responses));
    reg.set(prefix + ".cacheServed", static_cast<double>(cacheServed));
}

} // namespace netsparse
