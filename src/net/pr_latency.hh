/**
 * @file
 * Per-PR latency lifecycle accounting (the Fig. 14 style breakdown).
 *
 * Every property request carries stage timestamps (see the stamp
 * fields in net/protocol.hh): RIG issue -> SNIC egress -> requester's
 * ToR ingress -> fetch (ToR Property Cache hit or remote DRAM) ->
 * response accepted at the client. PrLatencyStats turns the stamps of
 * each accepted response into stage-delta histograms:
 *
 *   nicNs          issue -> egress: NIC-side time (concatenation
 *                  wait, transmit buffering) before serialization
 *   requestNetNs   egress -> ToR ingress: first-hop serialization,
 *                  queueing, propagation and the ingress pipe
 *   cacheNs        ToR ingress -> fetch, responses served by the
 *                  Property Cache (the middle-pipe lookup path)
 *   remoteNs       ToR ingress -> fetch, cache misses: spine network
 *                  plus the home node's PCIe/DRAM fetch
 *   responseNetNs  fetch -> client: the response's way back
 *   totalNs        issue -> client, every accepted response
 *
 * A stage whose stamps are absent (e.g. no middle pipes on a baseline
 * run) simply records nothing. Collection is gated by the cluster on
 * telemetry being enabled, so the lossless fast path and the exported
 * stats document are untouched otherwise; per-node collectors merge
 * exactly (integer bucket counts), keeping the cluster-wide document
 * byte-identical at any shard count.
 */

#ifndef NETSPARSE_NET_PR_LATENCY_HH
#define NETSPARSE_NET_PR_LATENCY_HH

#include <string>

#include "net/protocol.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace netsparse {

/** Stage-delta latency accumulators for one collector (node/cluster). */
struct PrLatencyStats
{
    /**
     * Shared histogram geometry: [0, 100 us) in ns, 50 ns buckets.
     * Every collector uses it so per-node histograms merge exactly
     * into the cluster-wide ones and percentile() interpolates on the
     * same grid everywhere.
     */
    static constexpr double histLoNs = 0.0;
    static constexpr double histHiNs = 100000.0;
    static constexpr std::size_t histBuckets = 2000;

    Histogram nicNs{histLoNs, histHiNs, histBuckets};
    Histogram requestNetNs{histLoNs, histHiNs, histBuckets};
    Histogram cacheNs{histLoNs, histHiNs, histBuckets};
    Histogram remoteNs{histLoNs, histHiNs, histBuckets};
    Histogram responseNetNs{histLoNs, histHiNs, histBuckets};
    Histogram totalNs{histLoNs, histHiNs, histBuckets};

    /** End-to-end latency summary (count/mean/min/max) for per-node
     *  export, where full histograms would bloat the document. */
    Average totalAvgNs;

    std::uint64_t responses = 0;
    std::uint64_t cacheServed = 0;

    /** Record one accepted response; @p now is the client's tick. */
    void record(const PropertyRequest &pr, Tick now);

    /** Fold another collector in (exact; geometries are shared). */
    void merge(const PrLatencyStats &o);

    /**
     * Register the full decomposition under "<prefix>.": per stage a
     * histogram "<prefix>.<stage>" plus exact-percentile scalars
     * ".p50/.p90/.p99/.p999", and the ".responses"/".cacheServed"
     * counters. Used for the cluster-wide aggregate.
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;
};

} // namespace netsparse

#endif // NETSPARSE_NET_PR_LATENCY_HH
