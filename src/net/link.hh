/**
 * @file
 * A unidirectional network link with serialization, queueing and
 * propagation delay.
 *
 * The link is modeled as a single server: a packet occupies the wire for
 * wireBytes/bandwidth, waits behind earlier packets (busy-until chain),
 * then propagates for the configured latency. This captures the
 * first-order queueing contention that shapes the paper's results; the
 * network is lossless (Section 7.1) unless a fault model is configured,
 * in which case the link's LinkFaultInjector decides per packet whether
 * it is dropped, corrupted, delayed or discarded (see
 * net/fault_model.hh).
 */

#ifndef NETSPARSE_NET_LINK_HH
#define NETSPARSE_NET_LINK_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_model.hh"
#include "net/fidelity.hh"
#include "net/protocol.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace netsparse {

/** Anything that can accept packets from a link. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;

    /** Deliver @p pkt, which arrived on the receiver's port @p inPort. */
    virtual void receivePacket(Packet &&pkt, std::uint32_t inPort) = 0;

    /**
     * Flow-fidelity fusion (net/fidelity.hh): a sink whose
     * receivePacket does nothing but schedule ingress work a fixed
     * delay later may advertise that delay here, letting an uncongested
     * link schedule fusedDeliver directly at arrival + delay - one
     * event per hop instead of two, with identical modeled timing.
     * A negative-equivalent answer (fusedCapable() == false, the
     * default) keeps per-packet exact delivery.
     */
    virtual bool fusedCapable() const { return false; }
    /** Ingress delay fused delivery skips over (fusedCapable only). */
    virtual Tick fusedIngressDelay() const { return 0; }
    /**
     * Run the ingress work at now() == arrival + fusedIngressDelay(),
     * accounting the elided hop event (EventQueue::addExecutedEvents)
     * so the logical event count matches the exact path.
     */
    virtual void
    fusedDeliver(Packet &&pkt, std::uint32_t inPort)
    {
        receivePacket(std::move(pkt), inPort);
    }
};

/**
 * A packet in flight across a shard boundary: everything the receiving
 * shard needs to schedule the delivery on its own queue under the same
 * (tick, delivery key) the sending shard would have used locally.
 */
struct PendingDelivery
{
    Tick when = 0;
    std::uint64_t key = 0;
    PacketSink *sink = nullptr;
    std::uint32_t port = 0;
    /** Flow-fidelity fused hop: schedule sink->fusedDeliver instead. */
    bool fused = false;
    Packet pkt;
};

/** The per-(source shard, destination shard) delivery channel. */
using DeliveryMailbox = EpochMailbox<PendingDelivery>;

/** Static link parameters. */
struct LinkConfig
{
    Bandwidth bandwidth = Bandwidth::fromGbps(400.0);
    Tick latency = 450 * ticks::ns;

    /**
     * Delivery-train batching (docs/scaling.md). When a burst backs up
     * the wire, consecutive deliveries whose arrival falls within
     * batchHoldTicks of the train head are executed by one scheduled
     * event at the train's deadline, in exact (tick, key) order;
     * telemetry-identified link backlogs are where the event count
     * concentrates, and this collapses them by up to batchMaxPackets.
     * Deliveries on an idle wire stay exactly on time. 1 disables
     * (the default: timing-exact per-packet delivery). Statistics stay
     * byte-identical across shard counts either way - a cross-shard
     * train splits into per-packet events at the same ticks and keys,
     * and the executed-event accounting matches by construction.
     */
    std::uint32_t batchMaxPackets = 1;
    /** Train hold window beyond the head packet's arrival. */
    Tick batchHoldTicks = 500 * ticks::ns;
};

/** One directed link. */
class Link
{
  public:
    Link(EventQueue &eq, LinkConfig cfg, ProtocolParams proto,
         PacketSink *sink, std::uint32_t sinkPort, std::string name);

    /** Enqueue @p pkt for transmission. */
    void send(Packet &&pkt);

    /** Time the wire is already committed beyond now. */
    Tick
    queueDelay() const
    {
        return busyUntil_ > eq_.now() ? busyUntil_ - eq_.now() : 0;
    }

    /** Bytes of transmit buffering currently committed. */
    std::uint64_t
    queuedBytes() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(queueDelay()) *
            cfg_.bandwidth.bytesPerPs());
    }

    /**
     * Attach a fault injector configured from @p cfg. Must run after
     * setOrderingId: the injector keys its deterministic fault stream
     * on the link's cluster-wide ordering id.
     */
    void
    configureFaults(const FaultConfig &cfg)
    {
        faults_ = std::make_unique<LinkFaultInjector>(cfg, orderingId_);
    }

    /** The attached injector, or nullptr when the link is lossless. */
    LinkFaultInjector *faults() { return faults_.get(); }
    const LinkFaultInjector *faults() const { return faults_.get(); }

    /**
     * Assign the cluster-wide ordering id used to build delivery keys.
     * Ids must be unique per cluster and identical across runs (the
     * builder assigns them in construction order) - they are the
     * same-tick tie-break at a sink, so they are what keeps execution
     * independent of the shard count.
     */
    void setOrderingId(std::uint32_t id) { orderingId_ = id; }
    std::uint32_t orderingId() const { return orderingId_; }

    /**
     * Mark this link as crossing a shard boundary: deliveries are
     * deposited into @p outbox (drained by the destination shard at
     * the next epoch barrier) instead of being scheduled on the
     * sender's queue. The link's latency must be >= the engine's
     * lookahead.
     */
    void setCrossShardOutbox(DeliveryMailbox *outbox) { outbox_ = outbox; }
    bool crossShard() const { return outbox_ != nullptr; }

    /**
     * Select the link's fidelity regime (net/fidelity.hh). Must run
     * after construction and before the first send; Exact (the
     * default) keeps the per-packet delivery path untouched.
     */
    void
    configureFidelity(FidelityMode mode, const FlowFidelityConfig &flow)
    {
        flowEligible_ = mode != FidelityMode::Exact &&
                        sink_->fusedCapable();
        alwaysFlow_ = mode == FidelityMode::Flow;
        flowCfg_ = flow;
        sinkIngressDelay_ = flowEligible_ ? sink_->fusedIngressDelay()
                                          : 0;
    }

    /** Packets delivered analytically (flow regime, fused events). */
    std::uint64_t flowPackets() const { return flowPackets_; }
    /** Flow -> packet regime transitions the detector took. */
    std::uint64_t flowDemotions() const { return demotions_; }
    /** True while the congestion detector holds the link at packet
     *  fidelity (diagnostics; reads the owning queue's clock). */
    bool
    demoted() const
    {
        return flowEligible_ && !alwaysFlow_ &&
               congestedUntil_ > eq_.now();
    }

    // Statistics.
    std::uint64_t packetsSent() const { return packets_; }
    std::uint64_t bytesSent() const { return bytes_; }
    std::uint64_t payloadBytesSent() const { return payloadBytes_; }
    std::uint64_t packetsDropped() const { return dropped_; }
    std::uint64_t bytesDropped() const { return droppedBytes_; }
    Tick busyTicks() const { return busyTicks_; }
    const std::string &name() const { return name_; }

    /** Utilization of the wire over [0, now]. */
    double
    utilization() const
    {
        return eq_.now() ? static_cast<double>(busyTicks_) / eq_.now()
                         : 0.0;
    }

    /**
     * Absolute tick the wire is committed until. Telemetry samplers
     * use this (not queueDelay(), which is relative to the owning
     * queue's clock) so occupancy at a sample boundary is computed
     * against the boundary tick, which every shard agrees on.
     */
    Tick busyUntilTick() const { return busyUntil_; }

    /** Bytes of transmit buffering committed beyond tick @p t. */
    double
    queuedBytesAt(Tick t) const
    {
        return busyUntil_ > t
                   ? static_cast<double>(busyUntil_ - t) *
                         cfg_.bandwidth.bytesPerPs()
                   : 0.0;
    }

    const LinkConfig &config() const { return cfg_; }

  private:
    /**
     * A delivery train: packets whose arrivals share one hold window,
     * delivered together at @p deadline by a single event (intra-shard)
     * or as per-packet mailbox records at the same tick (cross-shard).
     */
    struct Train
    {
        Tick deadline = 0;
        std::uint32_t count = 0;
        std::vector<Packet> pkts; // empty on cross-shard links
    };

    /** Route one sent packet through the train batcher. */
    void sendBatched(Tick arrival, std::uint64_t key, Tick start,
                     Packet &&pkt);

    /** Deliver the oldest train (its scheduled flush event). */
    void flushTrain();

    /**
     * Feed one send into the congestion detector (net/fidelity.hh):
     * updates the sliding utilization window and, when the send was
     * queued or the window is hot, extends the demotion window from
     * the busy-until chain. Every send that burns wire time must pass
     * through here - including faulted (dropped) ones, whose wire time
     * otherwise never ages busyUntil_ out of the detector and can
     * leave a quiet link demoted for the rest of the run.
     * @return true when this send demands packet fidelity right now.
     */
    bool updateCongestion(Tick now, Tick start, Tick ser);

    /**
     * The congestion detector query, evaluated on the send path.
     * @return true when this packet should take the flow-level path.
     */
    bool flowRegime(Tick now, Tick start, Tick ser);

    EventQueue &eq_;
    LinkConfig cfg_;
    ProtocolParams proto_;
    PacketSink *sink_;
    std::uint32_t sinkPort_;
    std::string name_;

    Tick busyUntil_ = 0;
    std::unique_ptr<LinkFaultInjector> faults_;
    std::uint32_t orderingId_ = 0;
    /** Delivered-packet count; the low half of the delivery key. */
    std::uint64_t deliverySeq_ = 0;
    DeliveryMailbox *outbox_ = nullptr;
    /** Open and not-yet-flushed trains, oldest first (see Train). */
    std::deque<Train> trains_;

    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t droppedBytes_ = 0;
    Tick busyTicks_ = 0;

    // Hybrid-fidelity state (configureFidelity / flowRegime). All of it
    // is link-local and mutated only on the send path, so regime
    // decisions are deterministic and shard-count-invariant.
    bool flowEligible_ = false;
    bool alwaysFlow_ = false;
    FlowFidelityConfig flowCfg_;
    Tick sinkIngressDelay_ = 0;
    /** Demoted to packet fidelity until this tick (0 = flow regime). */
    Tick congestedUntil_ = 0;
    /** Sliding utilization window (flowCfg_.utilizationWindow). */
    Tick windowStart_ = 0;
    Tick windowBusy_ = 0;
    std::uint64_t flowPackets_ = 0;
    std::uint64_t demotions_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_NET_LINK_HH
