/**
 * @file
 * The NetSparse two-layer network protocol (Section 6.1.1, Figure 6).
 *
 * NetSparse packets ride on top of RDMA ("upper layers", 50 B of header).
 * The concatenation layer (12 B) carries the PR type, destination,
 * property length and PR count; the PR layer (18 B per PR) carries each
 * PR's source node, source RIG-unit id, property idx and request id.
 * Read PRs have no payload; response PRs carry the property value.
 *
 * Without concatenation, a lone PR instead uses a 10 B single-PR layer
 * under the upper layers, giving the paper's 50+10+18 = 78 B header.
 */

#ifndef NETSPARSE_NET_PROTOCOL_HH
#define NETSPARSE_NET_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace netsparse {

/** The two PR types of the protocol. */
enum class PrType : std::uint8_t
{
    Read,
    Response,
};

/** One Property Request: a fine-grained remote read or its response. */
struct PropertyRequest
{
    PrType type = PrType::Read;
    /** Node that issued the original read. */
    NodeId src = invalidNode;
    /** RIG unit (thread) id within the source SNIC. */
    std::uint16_t srcTid = 0;
    /**
     * Tenant (job) id of the issuing virtual SNIC slice. Rides the PR
     * with zero wire-size cost - the real header's QP number already
     * identifies the tenant - and keys per-tenant cache partitions,
     * fair-queueing lanes and SLO accounting. 0 on single-job runs.
     */
    std::uint16_t tenant = 0;
    /** Property index (the nonzero's cid). */
    PropIdx idx = 0;
    /** Per-unit request identifier. */
    std::uint32_t reqId = 0;
    /**
     * The kernel's property size in bytes (the concatenation-layer "Len"
     * field). Lets an in-switch cache hit turn a read into a response.
     */
    std::uint32_t propBytes = 0;
    /** Payload bytes: 0 for reads, K*4 for responses. */
    std::uint32_t payloadBytes = 0;
    /** Deterministic checksum of the property data (responses). */
    std::uint64_t checksum = 0;
    /**
     * Skip the in-switch Property Cache for this read (a header flag
     * bit, no wire-size cost). Set on corruption refetches so a
     * poisoned cache entry cannot satisfy them.
     */
    bool bypassCache = false;

    // --- PR latency lifecycle stamps (observability only) ---
    // Simulation-side metadata like bypassCache: the stamps ride the
    // struct with zero wire-size cost and are ignored by every
    // component except the stampers below and the latency collector
    // at the requesting client (net/pr_latency.hh). Zero means "not
    // stamped" (e.g. the ToR stamp on a run without the NetSparse
    // middle pipes). On a retransmitted PR the stamps describe the
    // attempt whose response was accepted.
    /** RIG client issued the read (RigClientUnit::sendReadPr). */
    Tick issueTick = 0;
    /** The read left the SNIC onto the NIC egress link. */
    Tick egressTick = 0;
    /** The read entered the requester's ToR middle pipe. */
    Tick torIngressTick = 0;
    /** The property was produced: ToR cache hit or remote fetch done. */
    Tick fetchTick = 0;
    /** The response was manufactured by a ToR Property Cache hit. */
    bool servedByCache = false;

    /**
     * Causal span id (sim/span.hh), assigned at issue time to PRs the
     * span tracer records; 0 (the default) means "not traced". Like
     * the lifecycle stamps it is simulation-side metadata with zero
     * wire cost, and it survives the in-place read->response rewrite
     * at the server or the ToR cache, so response-path hops attribute
     * to the same span.
     */
    std::uint64_t spanId = 0;
};

/** Header-size and MTU parameters (paper Table 5 defaults). */
struct ProtocolParams
{
    /** RDMA and below ("upper layers"). */
    std::uint32_t upperHeaderBytes = 50;
    /** Concatenation-layer header. */
    std::uint32_t concatHeaderBytes = 12;
    /** Per-PR header. */
    std::uint32_t prHeaderBytes = 18;
    /** Single-PR layer used when concatenation is disabled. */
    std::uint32_t soloHeaderBytes = 10;
    /** Maximum transmission unit. */
    std::uint32_t mtuBytes = 1500;

    /** Fixed per-packet overhead of a concatenated packet. */
    std::uint32_t
    concatBaseBytes() const
    {
        return upperHeaderBytes + concatHeaderBytes;
    }

    /** Wire size of one PR inside a concatenated packet. */
    std::uint32_t
    prWireBytes(const PropertyRequest &pr) const
    {
        return prHeaderBytes + pr.payloadBytes;
    }

    /** Wire size of a lone, unconcatenated PR packet. */
    std::uint32_t
    soloWireBytes(const PropertyRequest &pr) const
    {
        return upperHeaderBytes + soloHeaderBytes + prHeaderBytes +
               pr.payloadBytes;
    }
};

/**
 * A network packet: one or more PRs of the same type headed to the same
 * destination node (concatenated), or a single PR (vanilla).
 */
struct Packet
{
    NodeId src = invalidNode;
    NodeId dest = invalidNode;
    PrType type = PrType::Read;
    /** True when the packet uses the concatenation layer. */
    bool concatenated = false;
    /** Tenant id of the PRs inside (see PropertyRequest::tenant). */
    std::uint16_t tenant = 0;
    /**
     * Raw (non-PR) wire size. Nonzero marks a background-traffic
     * packet: it carries no PRs, occupies exactly rawBytes on the
     * wire, skips the NetSparse middle pipes, and is discarded at the
     * destination node. 0 for every protocol packet.
     */
    std::uint32_t rawBytes = 0;
    /**
     * True when at least one PR inside carries a span id. Set at the
     * concatenation point that built the packet; links and switches
     * test this single flag before scanning prs for span hops, so a
     * run with spans disabled pays one always-false branch per packet.
     */
    bool spanned = false;
    std::vector<PropertyRequest> prs;

    /** Total bytes on the wire, headers included. */
    std::uint64_t
    wireBytes(const ProtocolParams &proto) const
    {
        if (rawBytes)
            return rawBytes;
        if (!concatenated) {
            std::uint64_t b = 0;
            for (const auto &pr : prs)
                b += proto.soloWireBytes(pr);
            return b;
        }
        std::uint64_t b = proto.concatBaseBytes();
        for (const auto &pr : prs)
            b += proto.prWireBytes(pr);
        return b;
    }

    /** Payload (useful property data) bytes carried. */
    std::uint64_t
    payloadBytes() const
    {
        std::uint64_t b = 0;
        for (const auto &pr : prs)
            b += pr.payloadBytes;
        return b;
    }
};

/** The deterministic "property value" checksum for end-to-end checking. */
constexpr std::uint64_t
propertyChecksum(PropIdx idx)
{
    return splitmix64(idx ^ 0x0e75ea5eULL);
}

/**
 * Tenant-salted variant: concurrent jobs gather from different
 * matrices, so the same idx names different property data per tenant.
 * Salting the checksum makes a cross-tenant mixup detectable end to
 * end, exactly like corruption. Idxs are 32-bit in practice, so the
 * salt occupies otherwise-clear high bits and tenant 0 reproduces the
 * single-job checksum bit for bit.
 */
constexpr std::uint64_t
propertyChecksum(PropIdx idx, std::uint16_t tenant)
{
    return propertyChecksum(
        idx ^ (static_cast<std::uint64_t>(tenant) << 40));
}

} // namespace netsparse

#endif // NETSPARSE_NET_PROTOCOL_HH
