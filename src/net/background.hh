/**
 * @file
 * Synthetic background traffic for multi-tenant interference studies.
 *
 * A BackgroundSource per host injects raw packets (Packet::rawBytes -
 * no PRs, exactly rawBytes on the wire) into that host's NIC egress
 * link, contending with the gather jobs for fabric bandwidth. Switches
 * forward raw packets without middle-pipe processing and the
 * destination's demux discards them on arrival, so the traffic is pure
 * load: it consumes link time and queue space and nothing else.
 *
 * Determinism: every inter-packet gap and destination draw is a pure
 * splitmix64 hash of (seed, source node, packet ordinal) - no stateful
 * RNG - and each source schedules only on its own node's event queue,
 * so the injected stream is byte-identical across shard counts. The
 * per-source budget is a fixed packet count, never "until the jobs
 * finish": a completion-triggered stop would couple the background
 * stream to job timing and break shard invariance of the tail.
 *
 * Patterns:
 *  - Incast:   every source sends to one victim node (the victim
 *              itself stays silent), concentrating load on the
 *              victim's downlink - the classic many-to-one burst.
 *  - AllToAll: each packet picks a hash-uniform destination, spreading
 *              load across the whole fabric.
 *  - Storage:  each source streams bursts of 8 back-to-back packets to
 *              a fixed partner (nid + N/2 mod N), modeling replication
 *              or backup flows - few, fat, long-lived.
 */

#ifndef NETSPARSE_NET_BACKGROUND_HH
#define NETSPARSE_NET_BACKGROUND_HH

#include <string>

#include "net/link.hh"
#include "net/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace netsparse {

enum class BackgroundPattern { Incast, AllToAll, Storage };

const char *backgroundPatternName(BackgroundPattern p);

/** Static background-traffic parameters (one config for all sources). */
struct BackgroundTrafficConfig
{
    BackgroundPattern pattern = BackgroundPattern::AllToAll;
    /** Injection rate as a fraction of one host NIC's line rate. */
    double load = 0.0;
    /** Raw bytes per injected packet (wire bytes, headers included). */
    std::uint32_t packetBytes = 1500;
    /** Fixed per-source packet budget; 0 disables the source. */
    std::uint32_t packetsPerSource = 0;
    /** Base seed of the deterministic gap/destination streams. */
    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return load > 0.0 && packetsPerSource > 0;
    }

    /**
     * Parse "pattern:load[:packets[:bytes]]" (e.g. "incast:0.5:2000").
     * Patterns: incast | alltoall | storage. Returns false (and leaves
     * @p out untouched) on a malformed spec.
     */
    static bool parse(const std::string &spec,
                      BackgroundTrafficConfig &out);
};

/** One host's background injector, driving its NIC egress link. */
class BackgroundSource
{
  public:
    BackgroundSource(EventQueue &eq, const BackgroundTrafficConfig &cfg,
                     NodeId self, std::uint32_t numNodes, Link &egress);

    /** Schedule the first injection (no-op for a silent source). */
    void start();

    std::uint64_t packetsInjected() const { return injected_; }
    std::uint64_t bytesInjected() const { return bytesInjected_; }

  private:
    void inject(std::uint32_t ordinal);
    NodeId destOf(std::uint32_t ordinal) const;
    Tick gapAfter(std::uint32_t ordinal) const;

    EventQueue &eq_;
    BackgroundTrafficConfig cfg_;
    NodeId self_;
    std::uint32_t numNodes_;
    Link &egress_;

    std::uint64_t injected_ = 0;
    std::uint64_t bytesInjected_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_NET_BACKGROUND_HH
