/**
 * @file
 * Hybrid flow/packet network fidelity (docs/performance.md).
 *
 * Every Link runs in one of two regimes:
 *
 *  - **flow level**: delivery ticks are computed in closed form from the
 *    busy-until chain (serialization + latency) at send time, and the
 *    hop's delivery event is *fused* with the sink's ingress work: one
 *    event at arrival + ingress delay runs the switch pipe directly,
 *    under the same traffic-derived delivery key the exact path would
 *    have used. Logical event and byte accounting is preserved
 *    (EventQueue::addExecutedEvents), so `sim.executedEvents` and every
 *    statistic stay meaningful.
 *  - **packet level**: the existing exact path - a delivery event per
 *    packet at its arrival tick (optionally train-batched when event
 *    batching is on).
 *
 * A per-link congestion detector decides the regime: a link is demoted
 * to packet fidelity the moment its output queue is nonempty (a send
 * finds the wire busy) or its utilization over a sliding window crosses
 * the demotion threshold, and promoted back after a configurable quiet
 * period with an idle wire. The detector reads the same busy-until /
 * utilization state the TelemetryProbe link samplers use, evaluated at
 * send time - a pure function of link-local state, so regime decisions
 * are deterministic and identical at any shard count.
 *
 * Switch-internal contention points - output queues, Property Cache
 * ports, concatenator delay queues - always stay exact: fusion elides
 * only the hop's *scheduling overhead*, never the modeled timing, so
 * the four NetSparse mechanisms are never approximated.
 */

#ifndef NETSPARSE_NET_FIDELITY_HH
#define NETSPARSE_NET_FIDELITY_HH

#include <string>

#include "sim/types.hh"

namespace netsparse {

/** Network fidelity of a cluster run (--fidelity=exact|hybrid|flow). */
enum class FidelityMode
{
    /** Packet level everywhere: the reference timing model. */
    Exact,
    /** Flow level on uncongested links, packet level on congested. */
    Hybrid,
    /** Flow level everywhere (no demotion; validation tool). */
    Flow,
};

/** Congestion detector knobs (FidelityMode::Hybrid). */
struct FlowFidelityConfig
{
    /**
     * Demote when wire utilization over a sliding window of
     * utilizationWindow ticks reaches this fraction, even if no send
     * ever observed a queue (a near-saturated but perfectly paced
     * wire).
     */
    double demoteUtilization = 0.90;
    Tick utilizationWindow = 5 * ticks::us;
    /**
     * Promote back to flow level once the wire has been idle (no
     * queueing evidence) for this long past the last congested
     * busy-until.
     */
    Tick quietPeriod = 5 * ticks::us;
};

/** Display / CLI name of a fidelity mode. */
const char *fidelityName(FidelityMode mode);

/**
 * Parse a --fidelity value ("exact", "hybrid", "flow").
 * @return false when @p text names no mode (@p out untouched).
 */
bool parseFidelity(const std::string &text, FidelityMode &out);

} // namespace netsparse

#endif // NETSPARSE_NET_FIDELITY_HH
