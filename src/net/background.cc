#include "net/background.hh"

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace netsparse {

const char *
backgroundPatternName(BackgroundPattern p)
{
    switch (p) {
    case BackgroundPattern::Incast:
        return "incast";
    case BackgroundPattern::AllToAll:
        return "alltoall";
    case BackgroundPattern::Storage:
        return "storage";
    }
    return "?";
}

bool
BackgroundTrafficConfig::parse(const std::string &spec,
                               BackgroundTrafficConfig &out)
{
    BackgroundTrafficConfig cfg;
    std::size_t a = spec.find(':');
    if (a == std::string::npos)
        return false;
    std::string pattern = spec.substr(0, a);
    if (pattern == "incast")
        cfg.pattern = BackgroundPattern::Incast;
    else if (pattern == "alltoall")
        cfg.pattern = BackgroundPattern::AllToAll;
    else if (pattern == "storage")
        cfg.pattern = BackgroundPattern::Storage;
    else
        return false;

    const char *rest = spec.c_str() + a + 1;
    char *end = nullptr;
    cfg.load = std::strtod(rest, &end);
    if (end == rest || cfg.load <= 0.0 || cfg.load > 1.0)
        return false;
    cfg.packetsPerSource = 2000;
    if (*end == ':') {
        rest = end + 1;
        unsigned long v = std::strtoul(rest, &end, 10);
        if (end == rest || v == 0)
            return false;
        cfg.packetsPerSource = static_cast<std::uint32_t>(v);
    }
    if (*end == ':') {
        rest = end + 1;
        unsigned long v = std::strtoul(rest, &end, 10);
        if (end == rest || v == 0)
            return false;
        cfg.packetBytes = static_cast<std::uint32_t>(v);
    }
    if (*end != '\0')
        return false;
    out = cfg;
    return true;
}

BackgroundSource::BackgroundSource(EventQueue &eq,
                                   const BackgroundTrafficConfig &cfg,
                                   NodeId self, std::uint32_t num_nodes,
                                   Link &egress)
    : eq_(eq), cfg_(cfg), self_(self), numNodes_(num_nodes),
      egress_(egress)
{
    ns_assert(numNodes_ > 1, "background traffic needs >= 2 nodes");
}

NodeId
BackgroundSource::destOf(std::uint32_t ordinal) const
{
    switch (cfg_.pattern) {
    case BackgroundPattern::Incast:
        return static_cast<NodeId>(cfg_.seed % numNodes_);
    case BackgroundPattern::AllToAll: {
        std::uint64_t h = splitmix64(
            cfg_.seed ^ (static_cast<std::uint64_t>(self_) << 32) ^
            (0xb9ull << 56) ^ ordinal);
        auto dest = static_cast<NodeId>(h % numNodes_);
        return dest == self_ ? (dest + 1) % numNodes_ : dest;
    }
    case BackgroundPattern::Storage:
        return static_cast<NodeId>((self_ + numNodes_ / 2) % numNodes_);
    }
    return 0;
}

Tick
BackgroundSource::gapAfter(std::uint32_t ordinal) const
{
    // Mean gap = serialization time / load fraction, jittered by a
    // stateless hash to +/- 50% so sources do not phase-lock.
    Tick ser = egress_.config().bandwidth.serialize(cfg_.packetBytes);
    auto base = static_cast<double>(ser) / cfg_.load;
    std::uint64_t h = splitmix64(
        cfg_.seed ^ (static_cast<std::uint64_t>(self_) << 32) ^
        (0x6aull << 56) ^ ordinal);
    double jitter =
        0.5 + static_cast<double>(h % 1000003) / 1000003.0;
    if (cfg_.pattern == BackgroundPattern::Storage) {
        // Bursts of 8 back-to-back packets, then a long idle gap that
        // restores the configured mean rate.
        if (ordinal % 8 != 7)
            return ser;
        return static_cast<Tick>(8.0 * base * jitter);
    }
    return static_cast<Tick>(base * jitter);
}

void
BackgroundSource::start()
{
    if (!cfg_.enabled())
        return;
    // The incast victim and a storage node that is its own partner
    // stay silent.
    if (destOf(0) == self_)
        return;
    // Desynchronized start: each source begins a hash-deterministic
    // fraction of one mean gap into the run.
    std::uint64_t h = splitmix64(
        cfg_.seed ^ (static_cast<std::uint64_t>(self_) << 32) ^
        (0x57ull << 56));
    Tick first = static_cast<Tick>(
        static_cast<double>(gapAfter(0)) *
        (static_cast<double>(h % 1000003) / 1000003.0));
    eq_.scheduleIn(first, [this] { inject(0); });
}

void
BackgroundSource::inject(std::uint32_t ordinal)
{
    Packet pkt;
    pkt.src = self_;
    pkt.dest = destOf(ordinal);
    pkt.rawBytes = cfg_.packetBytes;
    ++injected_;
    bytesInjected_ += cfg_.packetBytes;
    egress_.send(std::move(pkt));
    if (ordinal + 1 < cfg_.packetsPerSource)
        eq_.scheduleIn(gapAfter(ordinal),
                       [this, next = ordinal + 1] { inject(next); });
}

} // namespace netsparse
