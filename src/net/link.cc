#include "net/link.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace netsparse {

Link::Link(EventQueue &eq, LinkConfig cfg, ProtocolParams proto,
           PacketSink *sink, std::uint32_t sinkPort, std::string name)
    : eq_(eq), cfg_(cfg), proto_(proto), sink_(sink), sinkPort_(sinkPort),
      name_(std::move(name))
{
    ns_assert(sink_, "link ", name_, " has no sink");
}

void
Link::send(Packet &&pkt)
{
    std::uint64_t wire = pkt.wireBytes(proto_);
    ns_assert(wire <= proto_.mtuBytes, "packet exceeds MTU on ", name_,
              ": ", wire, " > ", proto_.mtuBytes);

    LinkFaultInjector::Verdict verdict;
    if (faults_)
        verdict = faults_->onSend(pkt, eq_.now());

    if (verdict.dropBeforeWire) {
        // A dead port (link-down window) discards the packet before
        // serialization: no wire time is burned.
        ++dropped_;
        droppedBytes_ += wire;
        NS_TRACE(tw.instant(tw.track(name_), "fault.linkDown",
                            eq_.now()));
        return;
    }

    Tick start = std::max(eq_.now(), busyUntil_);
    Tick ser = cfg_.bandwidth.serialize(wire);
    if (verdict.bandwidthFactor != 1.0)
        ser = static_cast<Tick>(static_cast<double>(ser) /
                                verdict.bandwidthFactor);
    busyUntil_ = start + ser;
    busyTicks_ += ser;

    NS_TRACE(tw.complete(
        tw.track(name_), "tx", start, busyUntil_,
        traceArgs({{"bytes", static_cast<double>(wire)},
                   {"prs", static_cast<double>(pkt.prs.size())},
                   {"dest", static_cast<double>(pkt.dest)}})));

    if (verdict.dropOnWire) {
        // A dropped packet burns wire time (accounted above via
        // busyTicks_) but is never delivered, so it counts only in the
        // drop statistics - not in the sent packet/byte/payload totals.
        ++dropped_;
        droppedBytes_ += wire;
        NS_TRACE(tw.instant(tw.track(name_), "drop", busyUntil_));
        return;
    }
    if (verdict.corrupted)
        NS_TRACE(tw.instant(tw.track(name_), "fault.corrupt",
                            busyUntil_));

    ++packets_;
    bytes_ += wire;
    payloadBytes_ += pkt.payloadBytes();

    Tick arrival = busyUntil_ + cfg_.latency;
    std::uint64_t key = EventQueue::deliveryKey(orderingId_,
                                               deliverySeq_++);
    if (outbox_) {
        // Cross-shard edge: hand the packet to the destination shard's
        // mailbox; it schedules the delivery on its own queue under the
        // same key at the next epoch barrier.
        outbox_->push(PendingDelivery{arrival, key, sink_, sinkPort_,
                                      std::move(pkt)});
        return;
    }
    // The callback owns the packet until delivery (moved into pooled
    // event storage; no heap holder).
    eq_.scheduleDelivery(arrival, key,
                         [this, p = std::move(pkt)]() mutable {
                             sink_->receivePacket(std::move(p), sinkPort_);
                         });
}

} // namespace netsparse
