#include "net/link.hh"

#include "sim/arena.hh"
#include "sim/logging.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

namespace netsparse {

Link::Link(EventQueue &eq, LinkConfig cfg, ProtocolParams proto,
           PacketSink *sink, std::uint32_t sinkPort, std::string name)
    : eq_(eq), cfg_(cfg), proto_(proto), sink_(sink), sinkPort_(sinkPort),
      name_(std::move(name))
{
    ns_assert(sink_, "link ", name_, " has no sink");
}

void
Link::send(Packet &&pkt)
{
    std::uint64_t wire = pkt.wireBytes(proto_);
    ns_assert(wire <= proto_.mtuBytes, "packet exceeds MTU on ", name_,
              ": ", wire, " > ", proto_.mtuBytes);

    LinkFaultInjector::Verdict verdict;
    if (faults_)
        verdict = faults_->onSend(pkt, eq_.now());

    if (verdict.dropBeforeWire) {
        // A dead port (link-down window) discards the packet before
        // serialization: no wire time is burned.
        ++dropped_;
        droppedBytes_ += wire;
        NS_TRACE(tw.instant(tw.track(name_), "fault.linkDown",
                            eq_.now()));
        return;
    }

    Tick start = std::max(eq_.now(), busyUntil_);
    Tick ser = cfg_.bandwidth.serialize(wire);
    if (verdict.bandwidthFactor != 1.0)
        ser = static_cast<Tick>(static_cast<double>(ser) /
                                verdict.bandwidthFactor);
    busyUntil_ = start + ser;
    busyTicks_ += ser;

    NS_TRACE(tw.complete(
        tw.track(name_), "tx", start, busyUntil_,
        traceArgs({{"bytes", static_cast<double>(wire)},
                   {"prs", static_cast<double>(pkt.prs.size())},
                   {"dest", static_cast<double>(pkt.dest)}})));

    if (pkt.spanned) {
        // Wire occupancy of every traced PR aboard; recorded before the
        // drop verdict because a dropped-then-retransmitted attempt
        // really burned this wire time. Links use their cluster-wide
        // ordering id as the span component id (the scheduler registers
        // the name table in the same order).
        if (SpanBuffer *sb = eq_.spans())
            for (const auto &pr : pkt.prs)
                if (pr.spanId != 0)
                    sb->record(pr.spanId, SpanStage::LinkTx, orderingId_,
                               start, ser, wire);
    }

    if (verdict.dropOnWire) {
        // A dropped packet burns wire time (accounted above via
        // busyTicks_) but is never delivered, so it counts only in the
        // drop statistics - not in the sent packet/byte/payload totals.
        // The congestion detector must still see that wire time: on a
        // lossy link the drops are part of the load, and skipping the
        // update here left re-promotion reading a busyUntil_ the
        // detector never aged past (the window stayed stale until the
        // next delivered packet, if any ever came).
        if (flowEligible_ && !alwaysFlow_)
            updateCongestion(eq_.now(), start, ser);
        ++dropped_;
        droppedBytes_ += wire;
        NS_TRACE(tw.instant(tw.track(name_), "drop", busyUntil_));
        return;
    }
    if (verdict.corrupted)
        NS_TRACE(tw.instant(tw.track(name_), "fault.corrupt",
                            busyUntil_));

    ++packets_;
    bytes_ += wire;
    payloadBytes_ += pkt.payloadBytes();

    Tick arrival = busyUntil_ + cfg_.latency;
    std::uint64_t key = EventQueue::deliveryKey(orderingId_,
                                               deliverySeq_++);
    if (flowEligible_ && flowRegime(eq_.now(), start, ser)) {
        // Flow level: the delivery tick is already known in closed
        // form, and the sink's receivePacket would only re-schedule
        // the ingress work a fixed delay later - so schedule that work
        // directly, under the same delivery key. One event per hop;
        // fusedDeliver accounts the elided one.
        Tick when = arrival + sinkIngressDelay_;
        ++flowPackets_;
        if (outbox_) {
            outbox_->push(PendingDelivery{when, key, sink_, sinkPort_,
                                          true, std::move(pkt)});
            return;
        }
        eq_.scheduleDelivery(when, key,
                             [this, p = std::move(pkt)]() mutable {
                                 sink_->fusedDeliver(std::move(p),
                                                     sinkPort_);
                             });
        return;
    }
    // Zero-latency links cannot train: a same-tick flush could race
    // the append (and such configurations run single-shard anyway).
    if (cfg_.batchMaxPackets > 1 && cfg_.latency > 0) {
        sendBatched(arrival, key, start, std::move(pkt));
        return;
    }
    if (outbox_) {
        // Cross-shard edge: hand the packet to the destination shard's
        // mailbox; it schedules the delivery on its own queue under the
        // same key at the next epoch barrier.
        outbox_->push(PendingDelivery{arrival, key, sink_, sinkPort_,
                                      false, std::move(pkt)});
        return;
    }
    // The callback owns the packet until delivery (moved into pooled
    // event storage; no heap holder).
    eq_.scheduleDelivery(arrival, key,
                         [this, p = std::move(pkt)]() mutable {
                             sink_->receivePacket(std::move(p), sinkPort_);
                         });
}

void
Link::sendBatched(Tick arrival, std::uint64_t key, Tick start,
                  Packet &&pkt)
{
    // Arrivals are nondecreasing (busy-until chain) and keys strictly
    // increase, so appending to the newest train keeps every train's
    // packets in exact (tick, key) order, and train deadlines are
    // nondecreasing front to back - no delivery can overtake another.
    if (!trains_.empty()) {
        Train &back = trains_.back();
        if (back.count < cfg_.batchMaxPackets && arrival <= back.deadline) {
            ++back.count;
            if (outbox_)
                outbox_->push(PendingDelivery{back.deadline, key, sink_,
                                              sinkPort_, false,
                                              std::move(pkt)});
            else
                back.pkts.push_back(std::move(pkt));
            return;
        }
    }
    // Open a train when the wire is backlogged (the burst case the
    // batching targets), or when an exact-time delivery would overtake
    // packets an older (full) train is still holding.
    bool backlogged = start > eq_.now();
    bool would_overtake =
        !trains_.empty() && arrival <= trains_.back().deadline;
    if (backlogged || would_overtake) {
        Train t;
        t.deadline = arrival + cfg_.batchHoldTicks;
        t.count = 1;
        if (outbox_) {
            outbox_->push(PendingDelivery{t.deadline, key, sink_,
                                          sinkPort_, false,
                                          std::move(pkt)});
        } else {
            t.pkts = BufferArena<Packet>::local().acquire(
                cfg_.batchMaxPackets);
            t.pkts.push_back(std::move(pkt));
            eq_.scheduleDelivery(t.deadline, key,
                                 [this] { flushTrain(); });
        }
        trains_.push_back(std::move(t));
        return;
    }
    // Idle wire: deliver exactly on time, per packet.
    if (outbox_) {
        outbox_->push(PendingDelivery{arrival, key, sink_, sinkPort_,
                                      false, std::move(pkt)});
        return;
    }
    eq_.scheduleDelivery(arrival, key,
                         [this, p = std::move(pkt)]() mutable {
                             sink_->receivePacket(std::move(p), sinkPort_);
                         });
}

void
Link::flushTrain()
{
    ns_assert(!trains_.empty(), "train flush with no train");
    Train t = std::move(trains_.front());
    trains_.pop_front();
    // This one event stands for the whole train; account the rest so
    // executedEvents() equals the cross-shard (per-packet) execution.
    eq_.addExecutedEvents(t.pkts.size() - 1);
    for (auto &p : t.pkts)
        sink_->receivePacket(std::move(p), sinkPort_);
    BufferArena<Packet>::local().recycle(std::move(t.pkts));
}

bool
Link::updateCongestion(Tick now, Tick start, Tick ser)
{
    // Sliding utilization window: restart once it lapses, otherwise
    // accumulate this packet's wire time into it. busyUntil_ already
    // includes the current packet (send() updates it first).
    if (now - windowStart_ >= flowCfg_.utilizationWindow) {
        windowStart_ = now;
        windowBusy_ = 0;
    }
    windowBusy_ += ser;
    bool queued = start > now;
    bool hot = static_cast<double>(windowBusy_) >
               flowCfg_.demoteUtilization *
                   static_cast<double>(flowCfg_.utilizationWindow);
    if (queued || hot) {
        if (congestedUntil_ <= now)
            ++demotions_;
        Tick until = busyUntil_ + flowCfg_.quietPeriod;
        if (until > congestedUntil_)
            congestedUntil_ = until;
        return true;
    }
    return false;
}

bool
Link::flowRegime(Tick now, Tick start, Tick ser)
{
    if (alwaysFlow_)
        return true;
    if (updateCongestion(now, start, ser))
        return false;
    return congestedUntil_ <= now;
}

} // namespace netsparse
