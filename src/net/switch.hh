/**
 * @file
 * Network switch model, with optional NetSparse ToR extensions
 * (Section 6.2.1, Figure 8).
 *
 * A plain switch forwards packets: arrival -> pipeline latency ->
 * deterministic route -> output link (which models serialization and
 * queueing).
 *
 * A NetSparse ToR switch adds the "middle pipes": each arriving packet
 * is deconcatenated, every PR optionally interacts with the Property
 * Cache, and the PRs re-concatenate (sharing headers across PRs from
 * different sources) before heading to their output ports through the
 * second crossbar.
 *
 * Cache organization: by default the switch's cache budget behaves as
 * one shared cache (the middle-pipe layer plus the second crossbar make
 * every pipe's SRAM reachable; with our per-destination deterministic
 * routing this is the organization that keeps a read's lookup and the
 * matching response's insert in the same array for every source/home
 * pair). Set cachePerPipe to model strictly per-pipe caches as in
 * Figure 8 - reads then use the pipe of their egress port and responses
 * the pipe of their ingress port, which requires rack-pair-symmetric
 * routing to be effective.
 *
 * Cache gating (the cache stores only properties fetched from remote
 * racks, for sharing within the local rack):
 *  - read PR:     looked up only when it arrives from a local host and
 *                 leaves toward the spine (home outside this rack);
 *  - response PR: inserted only when it arrives from the spine and is
 *                 destined to a local host.
 */

#ifndef NETSPARSE_NET_SWITCH_HH
#define NETSPARSE_NET_SWITCH_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/property_cache.hh"
#include "concat/concatenator.hh"
#include "net/link.hh"
#include "net/protocol.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace netsparse {

/** Static switch parameters. */
struct SwitchConfig
{
    ProtocolParams proto;
    /** Ingress-to-egress pipeline latency (Table 5: 300 ns). */
    Tick pipelineLatency = 300 * ticks::ns;
    /** Ports grouped per pipe (32 ports / 8 pipes = 4). */
    std::uint32_t portsPerPipe = 4;
    /** Switch pipe clock (2 GHz). */
    double pipeClockHz = 2e9;
    /** True for ToR switches carrying the NetSparse extensions. */
    bool netsparseEnabled = false;
    /** Per-middle-pipe concatenator settings (delay in ticks). */
    ConcatConfig concat;
    /** Whole-switch Property Cache budget. */
    PropertyCacheConfig cache;
    /** Split the cache per middle pipe (Figure 8) vs one shared array. */
    bool cachePerPipe = false;
    /**
     * Verify response checksums before Property Cache insertion and
     * reject mismatches (cache poisoning protection). Enabled by the
     * cluster whenever fault injection is active; off by default so the
     * lossless fast path stays untouched.
     */
    bool verifyResponses = false;
    /**
     * Concurrent tenants (jobs) sharing this switch. More than one
     * tenant-qualifies every Property Cache key (the same idx names
     * different data per tenant) and sizes the fair-queueing lanes and
     * per-tenant counters. 1 (the default) keeps the single-job fast
     * path - and its stats document - untouched.
     */
    std::uint32_t numTenants = 1;
    /**
     * Partition the cache budget into per-tenant slices of
     * totalBytes / numTenants (isolation) instead of one shared array
     * (statistical multiplexing). Requires numTenants > 1; mutually
     * exclusive with cachePerPipe.
     */
    bool tenantCachePartitioned = false;
    /**
     * Deficit-round-robin fair queueing at the output ports, one lane
     * per tenant plus one for raw background traffic, quantum = MTU.
     * Default FIFO: packets go straight to the output link's busy-until
     * chain in arrival order, exactly the pre-QoS behaviour.
     */
    bool fairQueue = false;
};

/** One switch. */
class Switch : public PacketSink
{
  public:
    Switch(EventQueue &eq, SwitchConfig cfg, SwitchId id,
           std::string name);

    /**
     * Attach the outgoing link of @p port. @p toHost marks "down" ports.
     * Ports must be attached contiguously from 0.
     */
    void attachPort(std::uint32_t port, Link *out, bool toHost);

    /** Install the routing function: destination node -> output port. */
    void
    setRouteFn(std::function<std::uint32_t(NodeId)> fn)
    {
        route_ = std::move(fn);
    }

    /** Control plane: configure caches for a kernel and invalidate. */
    void configureForKernel(std::uint32_t propBytes);

    void receivePacket(Packet &&pkt, std::uint32_t inPort) override;

    /**
     * Flow-fidelity fusion (net/fidelity.hh): receivePacket above does
     * nothing at arrival except re-schedule the pipe work a fixed delay
     * later, so an uncongested upstream link may schedule fusedDeliver
     * directly at arrival + fusedIngressDelay() under the same delivery
     * key - identical modeled timing, one event per hop instead of two.
     */
    bool fusedCapable() const override { return true; }
    Tick
    fusedIngressDelay() const override
    {
        return cfg_.pipelineLatency +
               (cfg_.netsparseEnabled ? cacheLatency_ : 0);
    }
    void fusedDeliver(Packet &&pkt, std::uint32_t inPort) override;

    SwitchId id() const { return id_; }
    const std::string &name() const { return name_; }

    // Aggregated statistics over all middle pipes.
    std::uint64_t cacheLookups() const;
    std::uint64_t cacheHits() const;
    std::uint64_t cacheInserts() const;
    std::uint64_t cacheEvictions() const;
    std::uint64_t prsServedByCache() const { return servedByCache_; }
    std::uint64_t packetsForwarded() const { return forwarded_; }
    /** Per-tenant slice of prsServedByCache (numTenants > 1 only). */
    std::uint64_t
    prsServedByCache(std::uint32_t tenant) const
    {
        return tenant < servedByCacheTenant_.size()
                   ? servedByCacheTenant_[tenant]
                   : 0;
    }
    /** Packets still waiting in fair-queueing lanes (diagnostics). */
    std::uint64_t fqQueuedPackets() const { return fqQueued_; }
    /** Packets that went through a fair-queueing lane (vs direct). */
    std::uint64_t fqEnqueued() const { return fqEnqueued_; }
    /** Corrupt responses kept out of the cache (verifyResponses). */
    std::uint64_t poisonRejected() const { return poisonRejected_; }
    /** Reads that skipped the cache on the requester's demand. */
    std::uint64_t cacheBypasses() const { return cacheBypasses_; }

    /**
     * Register this switch's counters under "<prefix>." following the
     * docs/observability.md contract: "<prefix>.packetsForwarded",
     * "<prefix>.prsServedByCache", "<prefix>.cache.*" (ToRs with the
     * extensions) and "<prefix>.concat.*" aggregated over middle pipes.
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /** Attached output links in port order (telemetry samplers). */
    const std::vector<Link *> &outLinks() const { return out_; }

    /** Set this switch's id in the run's span component name table
     *  (sim/span.hh); assigned by the scheduler when spans are on. */
    void setSpanComp(std::uint32_t comp) { spanComp_ = comp; }

    /** The middle-pipe Property Cache of pipe @p i (for tests). */
    PropertyCache &pipeCache(std::uint32_t i) { return *caches_[i]; }
    std::uint32_t numPipes() const
    {
        return static_cast<std::uint32_t>(caches_.size());
    }

  private:
    void forward(Packet &&pkt);
    void processMiddlePipe(Packet &&pkt, std::uint32_t inPort);
    std::uint32_t pipeOf(std::uint32_t port) const
    {
        return port / cfg_.portsPerPipe;
    }
    /** The cache array serving @p pr through middle pipe @p pipe. */
    PropertyCache &cacheFor(const PropertyRequest &pr,
                            std::uint32_t pipe);
    /** Tenant-qualified Property Cache key (see SwitchConfig). */
    PropIdx
    cacheKey(const PropertyRequest &pr) const
    {
        if (cfg_.numTenants <= 1)
            return pr.idx;
        return pr.idx | (static_cast<PropIdx>(pr.tenant) << 40);
    }
    /** Fair-queueing lane of @p pkt (tenants, then raw traffic). */
    std::uint32_t
    laneOf(const Packet &pkt) const
    {
        if (pkt.rawBytes)
            return cfg_.numTenants;
        return pkt.tenant < cfg_.numTenants ? pkt.tenant
                                            : cfg_.numTenants - 1;
    }
    /** One DRR arbitration step on output port @p p. */
    void drainPort(std::uint32_t p);
    /** Arm the drain event of port @p p if it is not armed. */
    void scheduleDrain(std::uint32_t p);

    EventQueue &eq_;
    SwitchConfig cfg_;
    SwitchId id_;
    std::string name_;

    std::vector<Link *> out_;
    std::vector<bool> hostPort_;
    std::function<std::uint32_t(NodeId)> route_;

    // Middle-pipe hardware (only populated when netsparseEnabled).
    std::vector<std::unique_ptr<PropertyCache>> caches_;
    std::vector<std::unique_ptr<Concatenator>> concats_;
    Tick cacheLatency_ = 0;

    /** Record the pipe-crossing span event for a traced packet. */
    void recordPipeSpan(const Packet &pkt, Tick arrival, Tick delay,
                        std::uint32_t inPort);

    /** Span component id (sim/span.hh); meaningful only when spans on. */
    std::uint32_t spanComp_ = 0;
    std::uint64_t servedByCache_ = 0;
    std::uint64_t forwarded_ = 0;
    std::uint64_t poisonRejected_ = 0;
    std::uint64_t cacheBypasses_ = 0;
    /** Per-tenant cache-serve counters (sized when numTenants > 1). */
    std::vector<std::uint64_t> servedByCacheTenant_;

    /**
     * Per-output-port deficit-round-robin arbiter (fairQueue only).
     * Invariant: drainScheduled <=> some lane is nonempty. A packet
     * arriving at an idle, lane-empty port is sent directly (identical
     * timing to FIFO when uncontended); otherwise it waits in its lane
     * and one packet leaves per drain event, re-armed at the output
     * link's queueDelay so the wire never idles under backlog.
     */
    struct OutPortFq
    {
        std::vector<std::deque<Packet>> lanes;
        std::vector<std::int64_t> deficit;
        std::uint32_t rr = 0;
        bool drainScheduled = false;
        std::uint64_t queued = 0;
    };
    std::vector<OutPortFq> fq_;
    std::uint64_t fqQueued_ = 0;
    std::uint64_t fqEnqueued_ = 0;
};

} // namespace netsparse

#endif // NETSPARSE_NET_SWITCH_HH
