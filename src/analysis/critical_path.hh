/**
 * @file
 * Critical-path attribution over recorded PR spans.
 *
 * A span (sim/span.hh, exported as netsparse-spans-v1) is a list of
 * causally ordered events - issue, NIC egress, per-hop wire occupancy,
 * switch pipes, cache outcome, remote fetch, retire - each with a
 * start tick and a duration. The analyzer walks that chain with a
 * cursor from the issue tick: any gap before an event is *wait* time
 * attributed to the component the PR was waiting on (the event's
 * component), and the part of the event's service interval past the
 * cursor is *service* time. The produced segments tile
 * [issueTick, retireTick] exactly, so the attribution always sums to
 * the span's measured total latency - the property the acceptance
 * gate checks. Events that lie entirely before the cursor (e.g. the
 * wire time of a dropped earlier attempt under retry, which precedes
 * the accepted attempt's issue tick) contribute zero-width segments
 * and are skipped.
 *
 * The document-level entry point analyzeSpans() parses a
 * netsparse-spans-v1 value and builds the critical path of the tail
 * exemplars and the per-tenant makespan finishers; the example CLI
 * examples/telemetry_report.cpp prints it via printSpanReport().
 */

#ifndef NETSPARSE_ANALYSIS_CRITICAL_PATH_HH
#define NETSPARSE_ANALYSIS_CRITICAL_PATH_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/json_lite.hh"
#include "sim/types.hh"

namespace netsparse {

/** One span event as the analyzer sees it (schema-agnostic). */
struct CpEvent
{
    Tick tick = 0;
    Tick dur = 0;
    /** Component id (index into the run's name table). */
    std::uint32_t comp = 0;
    /** Stage name ("issue", "linkTx", ...). */
    std::string stage;
};

/** One attributed segment of the critical path. */
struct CpSegment
{
    Tick start = 0;
    Tick end = 0;
    std::uint32_t comp = 0;
    std::string stage;
    /** True: waiting for this component; false: being serviced by it. */
    bool wait = false;

    Tick ticks() const { return end - start; }
};

/** Aggregate of segments sharing (wait, stage, comp). */
struct CpContribution
{
    std::string stage;
    std::uint32_t comp = 0;
    bool wait = false;
    Tick ticks = 0;
};

/** The attributed critical path of one span. */
struct CriticalPath
{
    Tick issueTick = 0;
    Tick retireTick = 0;
    /** Segments in time order; they tile [issueTick, retireTick]. */
    std::vector<CpSegment> segments;

    Tick totalTicks() const { return retireTick - issueTick; }
    /** Sum over segments; equals totalTicks() by construction. */
    Tick attributedTicks() const;

    /** (wait, stage, comp) aggregates, largest first. */
    std::vector<CpContribution> contributions() const;
    /** Per-component totals (wait + service), largest first. */
    std::vector<std::pair<std::uint32_t, Tick>> byComp() const;
};

/**
 * Attribute @p events (already in the document's causal sort order)
 * against the [issue, retire] interval. See the file comment for the
 * cursor-walk semantics.
 */
CriticalPath computeCriticalPath(Tick issueTick, Tick retireTick,
                                 const std::vector<CpEvent> &events);

/** One analyzed exemplar span. */
struct SpanExemplar
{
    std::string spanId;
    std::uint32_t tenant = 0;
    NodeId src = 0;
    std::uint32_t reqId = 0;
    Tick totalTicks = 0;
    bool servedByCache = false;
    std::uint32_t retransmits = 0;
    /** Why the span was kept ("sampled", "tail", "finisher"). */
    std::string kept;
    /** True for the tenant's last-retiring (makespan) span. */
    bool finisher = false;
    CriticalPath path;
};

/** The condensed span report of one run. */
struct SpanReport
{
    std::string label;
    std::string fidelity;
    Tick finalTick = 0;
    std::uint64_t recordedSpans = 0;
    std::uint64_t keptSpans = 0;
    /** Component id -> name, from the document. */
    std::vector<std::string> components;
    /** Largest-latency spans first, then any finisher not in the top. */
    std::vector<SpanExemplar> exemplars;

    const std::string &componentName(std::uint32_t comp) const;
};

/**
 * Analyze run @p runIndex of a parsed netsparse-spans-v1 document:
 * build critical paths for the @p maxExemplars largest spans plus
 * every per-tenant finisher. Throws std::runtime_error on documents
 * that do not follow the schema.
 */
SpanReport analyzeSpans(const jsonlite::Value &spans,
                        std::size_t runIndex = 0,
                        std::size_t maxExemplars = 3);

/** Print the human-readable per-stage/per-component breakdown. */
void printSpanReport(const SpanReport &r, std::ostream &os);

} // namespace netsparse

#endif // NETSPARSE_ANALYSIS_CRITICAL_PATH_HH
