/**
 * @file
 * A minimal recursive-descent JSON parser (no third-party
 * dependency), shared by the analysis tools and the tests. Validates
 * syntax strictly enough to guarantee that a document accepted here
 * also loads with Python's json.load, and gives callers structured
 * access to objects, arrays, numbers and strings.
 */

#ifndef NETSPARSE_ANALYSIS_JSON_LITE_HH
#define NETSPARSE_ANALYSIS_JSON_LITE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonlite {

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    bool has(const std::string &key) const
    {
        return type == Type::Object && object.count(key) != 0;
    }

    const Value &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (type != Type::Object || it == object.end())
            throw std::runtime_error("json_lite: no key " + key);
        return it->second;
    }

    const Value &
    at(std::size_t i) const
    {
        if (type != Type::Array || i >= array.size())
            throw std::runtime_error("json_lite: bad array index");
        return array[i];
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json_lite: " + why + " at offset " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("bad escape");
                char e = s_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out += e;
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                  case 'f':
                    break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        fail("bad \\u escape");
                    pos_ += 4; // tests don't need the code point
                    break;
                  default:
                    fail("bad escape character");
                }
            } else {
                out += c;
            }
        }
    }

    Value
    parseValue()
    {
        char c = peek();
        Value v;
        switch (c) {
          case '{': {
            v.type = Value::Type::Object;
            ++pos_;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                std::string key = parseString();
                expect(':');
                v.object[key] = parseValue();
                char d = peek();
                ++pos_;
                if (d == '}')
                    return v;
                if (d != ',')
                    fail("expected ',' or '}'");
            }
          }
          case '[': {
            v.type = Value::Type::Array;
            ++pos_;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(parseValue());
                char d = peek();
                ++pos_;
                if (d == ']')
                    return v;
                if (d != ',')
                    fail("expected ',' or ']'");
            }
          }
          case '"':
            v.type = Value::Type::String;
            v.string = parseString();
            return v;
          default: {
            if (consumeLiteral("true")) {
                v.type = Value::Type::Bool;
                v.boolean = true;
                return v;
            }
            if (consumeLiteral("false")) {
                v.type = Value::Type::Bool;
                return v;
            }
            if (consumeLiteral("null"))
                return v;
            // Number.
            std::size_t start = pos_;
            if (c == '-')
                ++pos_;
            bool digits = false;
            auto eatDigits = [&] {
                while (pos_ < s_.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(s_[pos_]))) {
                    ++pos_;
                    digits = true;
                }
            };
            eatDigits();
            if (pos_ < s_.size() && s_[pos_] == '.') {
                ++pos_;
                eatDigits();
            }
            if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
                ++pos_;
                if (pos_ < s_.size() &&
                    (s_[pos_] == '+' || s_[pos_] == '-'))
                    ++pos_;
                digits = false;
                eatDigits();
            }
            if (!digits)
                fail("invalid number");
            v.type = Value::Type::Number;
            v.number = std::strtod(s_.substr(start, pos_ - start).c_str(),
                                   nullptr);
            return v;
          }
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Parse @p text, throwing std::runtime_error on malformed JSON. */
inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonlite

#endif // NETSPARSE_ANALYSIS_JSON_LITE_HH
