#include "analysis/comm_pattern.hh"

#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace netsparse {

CommPattern
analyzeCommPattern(const Csr &m, const Partition1D &part,
                   std::uint32_t nodesPerRack)
{
    const std::uint32_t parts = part.numParts();
    CommPattern out;
    out.nodes.resize(parts);

    // One reusable membership bitmap over the column space.
    std::vector<bool> seen(m.cols, false);
    std::vector<std::uint32_t> touched;

    for (NodeId node = 0; node < parts; ++node) {
        NodeCommStats &st = out.nodes[node];
        RackId rack = nodesPerRack ? node / nodesPerRack : node;
        touched.clear();
        for (std::uint32_t r = part.begin(node); r < part.end(node); ++r) {
            for (auto c : m.rowCols(r)) {
                ++st.nnz;
                NodeId owner = part.ownerOf(c);
                if (owner == node)
                    continue;
                ++st.remoteNnz;
                if (!seen[c]) {
                    seen[c] = true;
                    touched.push_back(c);
                    ++st.uniqueRemote;
                    RackId owner_rack =
                        nodesPerRack ? owner / nodesPerRack : owner;
                    if (owner_rack != rack)
                        ++st.uniqueRemoteOffRack;
                }
            }
        }
        st.suReceived = m.cols - part.size(node);
        for (auto c : touched)
            seen[c] = false;

        out.totalUseful += st.uniqueRemote;
        out.totalRemoteNnz += st.remoteNnz;
        out.totalSuReceived += st.suReceived;
    }
    return out;
}

double
avgUniqueDestinations(const Csr &m, const Partition1D &part,
                      std::uint32_t window)
{
    ns_assert(window > 0, "window must be positive");
    const std::uint32_t parts = part.numParts();

    double window_sum = 0.0;
    std::uint64_t window_count = 0;

    std::vector<std::uint32_t> last_seen(parts, 0);
    std::uint32_t epoch = 0;

    for (NodeId node = 0; node < parts; ++node) {
        std::uint32_t in_window = 0;
        std::uint32_t unique = 0;
        for (std::uint32_t r = part.begin(node); r < part.end(node); ++r) {
            for (auto c : m.rowCols(r)) {
                NodeId owner = part.ownerOf(c);
                if (owner == node)
                    continue;
                if (in_window == 0) {
                    ++epoch;
                    unique = 0;
                }
                if (last_seen[owner] != epoch) {
                    last_seen[owner] = epoch;
                    ++unique;
                }
                if (++in_window == window) {
                    window_sum += unique;
                    ++window_count;
                    in_window = 0;
                }
            }
        }
        // Partial trailing windows are dropped, matching the paper's
        // "64 consecutive PRs" methodology.
    }
    return window_count ? window_sum / window_count : 0.0;
}

double
rackSharingFraction(const Csr &m, const Partition1D &part,
                    std::uint32_t nodesPerRack, std::uint32_t minSharers)
{
    ns_assert(nodesPerRack > 0, "rack size must be positive");
    const std::uint32_t parts = part.numParts();
    const std::uint32_t racks = (parts + nodesPerRack - 1) / nodesPerRack;

    std::uint64_t shared_pairs = 0;
    std::uint64_t total_pairs = 0;

    // Per-rack map: off-rack property -> number of rack nodes needing it.
    std::unordered_map<std::uint32_t, std::uint32_t> sharers;
    std::vector<bool> seen(m.cols, false);
    std::vector<std::uint32_t> touched;

    for (RackId rack = 0; rack < racks; ++rack) {
        sharers.clear();
        NodeId first = rack * nodesPerRack;
        NodeId last = std::min<NodeId>(first + nodesPerRack, parts);
        for (NodeId node = first; node < last; ++node) {
            touched.clear();
            for (std::uint32_t r = part.begin(node); r < part.end(node);
                 ++r) {
                for (auto c : m.rowCols(r)) {
                    NodeId owner = part.ownerOf(c);
                    if (owner == node)
                        continue;
                    if (owner / nodesPerRack == rack)
                        continue; // homed inside the rack
                    if (!seen[c]) {
                        seen[c] = true;
                        touched.push_back(c);
                        ++sharers[c];
                    }
                }
            }
            for (auto c : touched)
                seen[c] = false;
        }
        for (const auto &[c, count] : sharers) {
            total_pairs += count;
            if (count >= minSharers)
                shared_pairs += count;
        }
    }
    return total_pairs ? static_cast<double>(shared_pairs) /
                             static_cast<double>(total_pairs)
                       : 0.0;
}

double
headerShare(std::uint32_t kElems, std::uint32_t headerBytes)
{
    double payload = 4.0 * kElems;
    return headerBytes / (headerBytes + payload);
}

std::vector<std::uint32_t>
activeNodeProfile(const std::vector<std::uint64_t> &perNodeVolume,
                  std::uint32_t samples)
{
    ns_assert(samples > 0, "need at least one sample");
    std::uint64_t max_volume = 0;
    for (auto v : perNodeVolume)
        max_volume = std::max(max_volume, v);

    std::vector<std::uint32_t> profile(samples, 0);
    if (max_volume == 0)
        return profile;

    for (std::uint32_t s = 0; s < samples; ++s) {
        double t = static_cast<double>(s) / samples * max_volume;
        std::uint32_t active = 0;
        for (auto v : perNodeVolume) {
            if (static_cast<double>(v) > t)
                ++active;
        }
        profile[s] = active;
    }
    return profile;
}

} // namespace netsparse
