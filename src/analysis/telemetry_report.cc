#include "analysis/telemetry_report.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace netsparse {

namespace {

/** Throughput ratio between intervals that marks a phase boundary. */
constexpr double phaseShiftRatio = 2.0;

std::vector<double>
numbers(const jsonlite::Value &arr)
{
    std::vector<double> out;
    out.reserve(arr.array.size());
    for (const auto &v : arr.array) {
        if (!v.isNumber())
            throw std::runtime_error("telemetry series holds a "
                                     "non-number");
        out.push_back(v.number);
    }
    return out;
}

/** Approximate aggregate of a stats histogram via bucket midpoints. */
double
histogramSum(const jsonlite::Value &hist)
{
    double lo = hist.at("lo").number;
    double hi = hist.at("hi").number;
    const auto &buckets = hist.at("buckets").array;
    if (buckets.size() < 3)
        return 0.0;
    std::size_t inner = buckets.size() - 2;
    double width = (hi - lo) / static_cast<double>(inner);
    double sum = buckets.front().number * lo +
                 buckets.back().number * hi;
    for (std::size_t i = 1; i + 1 < buckets.size(); ++i) {
        double mid = lo + (static_cast<double>(i) - 0.5) * width;
        sum += buckets[i].number * mid;
    }
    return sum;
}

} // namespace

std::string
TelemetryReport::mostUtilizedLink() const
{
    return links.empty() ? std::string() : links.front().id;
}

std::string
TelemetryReport::dominantStage() const
{
    return stages.empty() ? std::string() : stages.front().name;
}

TelemetryReport
analyzeTelemetry(const jsonlite::Value &telemetry,
                 const jsonlite::Value *stats, std::size_t runIndex)
{
    if (!telemetry.has("schema") ||
        telemetry.at("schema").string != "netsparse-telemetry-v1")
        throw std::runtime_error("not a netsparse-telemetry-v1 "
                                 "document");
    const jsonlite::Value &run = telemetry.at("runs").at(runIndex);

    TelemetryReport r;
    r.intervalTicks = static_cast<Tick>(run.at("intervalTicks").number);
    r.finalTick = static_cast<Tick>(run.at("finalTick").number);
    std::vector<double> sample_ticks = numbers(run.at("sampleTicks"));
    r.numSamples = sample_ticks.size();

    // Link series are kept around after the overall ranking: the
    // per-tenant ranking below re-scans them restricted to each
    // tenant's active sample window.
    struct LinkSeries
    {
        std::string id;
        std::vector<double> util;
    };
    std::vector<LinkSeries> link_series;
    struct TenantSeries
    {
        std::uint32_t tenant;
        std::vector<double> inflight;
    };
    std::vector<TenantSeries> tenant_series;

    for (const auto &entity : run.at("entities").array) {
        const std::string &id = entity.at("id").string;
        const std::string &kind = entity.at("kind").string;
        const jsonlite::Value &ser = entity.at("series");
        if (kind == "link") {
            std::vector<double> util = numbers(ser.at("utilization"));
            std::vector<double> queued = numbers(ser.at("queuedBytes"));
            link_series.push_back(LinkSeries{id, util});
            BottleneckEntry e;
            e.id = id;
            e.kind = kind;
            std::size_t above = 0;
            for (std::size_t i = 0; i < util.size(); ++i) {
                if (util[i] >= 0.9)
                    ++above;
                if (util[i] > e.peak) {
                    e.peak = util[i];
                    e.peakTick = static_cast<Tick>(sample_ticks[i]);
                }
                if (queued[i] > e.peakQueueBytes) {
                    e.peakQueueBytes = queued[i];
                    e.peakQueueTick = static_cast<Tick>(sample_ticks[i]);
                }
            }
            e.fracAbove90 =
                util.empty() ? 0.0
                             : static_cast<double>(above) /
                                   static_cast<double>(util.size());
            if (e.peak > 0.0)
                r.links.push_back(std::move(e));
        } else if (kind == "switch") {
            std::vector<double> backlog = numbers(ser.at("outQueueBytes"));
            BottleneckEntry e;
            e.id = id;
            e.kind = kind;
            for (std::size_t i = 0; i < backlog.size(); ++i) {
                if (backlog[i] > e.peak) {
                    e.peak = backlog[i];
                    e.peakTick = static_cast<Tick>(sample_ticks[i]);
                }
            }
            if (e.peak > 0.0)
                r.switches.push_back(std::move(e));
        } else if (kind == "tenant" && id.rfind("tenant", 0) == 0) {
            // Entity ids follow "tenant<t>" (job_scheduler.cc).
            std::uint32_t t = static_cast<std::uint32_t>(
                std::strtoul(id.c_str() + 6, nullptr, 10));
            tenant_series.push_back(
                TenantSeries{t, numbers(ser.at("inflightPrs"))});
        } else if (kind == "sim") {
            std::vector<double> events = numbers(ser.at("events"));
            for (std::size_t i = 1; i < events.size(); ++i) {
                double before = events[i - 1];
                double after = events[i];
                bool shift =
                    (before > 0.0 &&
                     (after >= before * phaseShiftRatio ||
                      after * phaseShiftRatio <= before)) ||
                    (before == 0.0 && after > 0.0);
                if (shift) {
                    r.phases.push_back(PhaseBoundary{
                        static_cast<Tick>(sample_ticks[i]), before,
                        after});
                }
            }
        }
    }

    // Rank: links by time saturated, then by peak; switches by peak
    // backlog. Ties break on id to keep the report deterministic.
    std::sort(r.links.begin(), r.links.end(),
              [](const BottleneckEntry &a, const BottleneckEntry &b) {
                  if (a.fracAbove90 != b.fracAbove90)
                      return a.fracAbove90 > b.fracAbove90;
                  if (a.peak != b.peak)
                      return a.peak > b.peak;
                  return a.id < b.id;
              });
    std::sort(r.switches.begin(), r.switches.end(),
              [](const BottleneckEntry &a, const BottleneckEntry &b) {
                  if (a.peak != b.peak)
                      return a.peak > b.peak;
                  return a.id < b.id;
              });

    // --- PR latency stage attribution (needs the stats document) ---
    // The same extraction serves the cluster-wide decomposition and
    // the per-tenant ones; only the key prefix differs
    // ("cluster.prLatency." vs "cluster.tenant<t>.prLatency.").
    auto stage_totals = [](const jsonlite::Value &sreg,
                           const std::string &prefix) {
        static const char *stage_names[] = {
            "nicNs", "requestNetNs", "cacheNs", "remoteNs",
            "responseNetNs",
        };
        std::vector<StageTotal> stages;
        for (const char *name : stage_names) {
            std::string key = prefix + name;
            if (!sreg.has(key))
                continue;
            const jsonlite::Value &hist = sreg.at(key);
            StageTotal st;
            st.name = name;
            st.samples = static_cast<std::uint64_t>(
                hist.at("total").number);
            st.totalNs = histogramSum(hist);
            st.p50Ns = sreg.has(key + ".p50")
                           ? sreg.at(key + ".p50").at("value").number
                           : 0.0;
            st.p99Ns = sreg.has(key + ".p99")
                           ? sreg.at(key + ".p99").at("value").number
                           : 0.0;
            if (st.samples > 0)
                stages.push_back(std::move(st));
        }
        std::sort(stages.begin(), stages.end(),
                  [](const StageTotal &a, const StageTotal &b) {
                      if (a.totalNs != b.totalNs)
                          return a.totalNs > b.totalNs;
                      return a.name < b.name;
                  });
        return stages;
    };
    const jsonlite::Value *sreg = nullptr;
    if (stats) {
        if (!stats->has("schema") ||
            stats->at("schema").string != "netsparse-stats-v1")
            throw std::runtime_error("not a netsparse-stats-v1 "
                                     "document");
        sreg = &stats->at("runs").at(runIndex).at("stats");
        r.stages = stage_totals(*sreg, "cluster.prLatency.");
    }

    // --- Per-tenant slices ---
    std::sort(tenant_series.begin(), tenant_series.end(),
              [](const TenantSeries &a, const TenantSeries &b) {
                  return a.tenant < b.tenant;
              });
    for (const TenantSeries &ts : tenant_series) {
        TenantReport tr;
        tr.tenant = ts.tenant;
        // Active sample window: [first, last] sample with PRs in
        // flight. A tenant that never went in flight gets no report.
        std::size_t lo = ts.inflight.size(), hi = 0;
        for (std::size_t i = 0; i < ts.inflight.size(); ++i) {
            if (ts.inflight[i] > 0.0) {
                if (lo == ts.inflight.size())
                    lo = i;
                hi = i;
            }
        }
        if (lo == ts.inflight.size())
            continue;
        tr.activeStart = static_cast<Tick>(sample_ticks[lo]);
        tr.activeEnd = static_cast<Tick>(sample_ticks[hi]);
        for (const LinkSeries &ls : link_series) {
            BottleneckEntry e;
            e.id = ls.id;
            e.kind = "link";
            std::size_t above = 0, window = 0;
            for (std::size_t i = lo;
                 i <= hi && i < ls.util.size(); ++i) {
                ++window;
                if (ls.util[i] >= 0.9)
                    ++above;
                if (ls.util[i] > e.peak) {
                    e.peak = ls.util[i];
                    e.peakTick = static_cast<Tick>(sample_ticks[i]);
                }
            }
            e.fracAbove90 =
                window == 0 ? 0.0
                            : static_cast<double>(above) /
                                  static_cast<double>(window);
            if (e.peak > 0.0)
                tr.links.push_back(std::move(e));
        }
        std::sort(tr.links.begin(), tr.links.end(),
                  [](const BottleneckEntry &a, const BottleneckEntry &b) {
                      if (a.fracAbove90 != b.fracAbove90)
                          return a.fracAbove90 > b.fracAbove90;
                      if (a.peak != b.peak)
                          return a.peak > b.peak;
                      return a.id < b.id;
                  });
        if (sreg)
            tr.stages = stage_totals(
                *sreg, "cluster.tenant" + std::to_string(ts.tenant) +
                           ".prLatency.");
        r.tenants.push_back(std::move(tr));
    }
    return r;
}

void
printTelemetryReport(const TelemetryReport &r, std::ostream &os)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "telemetry report: %zu samples x %.2f us, run ends at "
                  "%.2f us\n",
                  r.numSamples, ticks::toNs(r.intervalTicks) / 1e3,
                  ticks::toNs(r.finalTick) / 1e3);
    os << buf;

    os << "\nsaturated links (by time at >= 90% utilization):\n";
    std::size_t shown = 0;
    for (const auto &e : r.links) {
        if (shown++ >= 10)
            break;
        std::snprintf(buf, sizeof(buf),
                      "  %-14s %5.1f%% of run saturated, peak %.2f at "
                      "%.2f us, peak queue %.0f B at %.2f us\n",
                      e.id.c_str(), 100.0 * e.fracAbove90, e.peak,
                      ticks::toNs(e.peakTick) / 1e3, e.peakQueueBytes,
                      ticks::toNs(e.peakQueueTick) / 1e3);
        os << buf;
    }
    if (r.links.empty())
        os << "  (no link carried traffic)\n";

    os << "\nswitches (by peak output backlog):\n";
    shown = 0;
    for (const auto &e : r.switches) {
        if (shown++ >= 5)
            break;
        std::snprintf(buf, sizeof(buf),
                      "  %-14s peak %.0f B queued at %.2f us\n",
                      e.id.c_str(), e.peak,
                      ticks::toNs(e.peakTick) / 1e3);
        os << buf;
    }
    if (r.switches.empty())
        os << "  (no switch reported backlog)\n";

    os << "\nphase boundaries (cluster event throughput shifts):\n";
    for (const auto &p : r.phases) {
        std::snprintf(buf, sizeof(buf),
                      "  %10.2f us: %.0f -> %.0f events/interval\n",
                      ticks::toNs(p.tick) / 1e3, p.eventsBefore,
                      p.eventsAfter);
        os << buf;
    }
    if (r.phases.empty())
        os << "  (steady throughput; none detected)\n";

    if (!r.stages.empty()) {
        os << "\nPR latency decomposition (by aggregate stage time):\n";
        for (const auto &st : r.stages) {
            std::snprintf(buf, sizeof(buf),
                          "  %-14s %12.0f ns total over %llu PRs "
                          "(p50 %.0f ns, p99 %.0f ns)\n",
                          st.name.c_str(), st.totalNs,
                          static_cast<unsigned long long>(st.samples),
                          st.p50Ns, st.p99Ns);
            os << buf;
        }
        std::snprintf(buf, sizeof(buf),
                      "  dominant stage: %s\n",
                      r.dominantStage().c_str());
        os << buf;
    }
    if (!r.links.empty()) {
        std::snprintf(buf, sizeof(buf),
                      "\nmost utilized link: %s\n",
                      r.mostUtilizedLink().c_str());
        os << buf;
    }

    for (const auto &t : r.tenants) {
        std::snprintf(buf, sizeof(buf),
                      "\ntenant %u (active %.2f - %.2f us):\n", t.tenant,
                      ticks::toNs(t.activeStart) / 1e3,
                      ticks::toNs(t.activeEnd) / 1e3);
        os << buf;
        shown = 0;
        for (const auto &e : t.links) {
            if (shown++ >= 5)
                break;
            std::snprintf(buf, sizeof(buf),
                          "  %-14s %5.1f%% of window saturated, peak "
                          "%.2f at %.2f us\n",
                          e.id.c_str(), 100.0 * e.fracAbove90, e.peak,
                          ticks::toNs(e.peakTick) / 1e3);
            os << buf;
        }
        if (t.links.empty())
            os << "  (no link carried traffic in the window)\n";
        for (const auto &st : t.stages) {
            std::snprintf(buf, sizeof(buf),
                          "  stage %-14s %12.0f ns total over %llu PRs "
                          "(p99 %.0f ns)\n",
                          st.name.c_str(), st.totalNs,
                          static_cast<unsigned long long>(st.samples),
                          st.p99Ns);
            os << buf;
        }
        if (!t.stages.empty()) {
            std::snprintf(buf, sizeof(buf), "  dominant stage: %s\n",
                          t.dominantStage().c_str());
            os << buf;
        }
    }
}

} // namespace netsparse
