/**
 * @file
 * Static communication-pattern analytics over a partitioned sparse
 * matrix. These reproduce the motivation studies of Section 3:
 *
 *  - SU / SA useful-to-redundant transfer ratios (Table 1)
 *  - packet-header share of SA traffic (Table 3)
 *  - temporal remote destination locality (Table 4)
 *  - intra-rack property-sharing potential (Section 3)
 *  - inter-node communication imbalance (Figure 19)
 *
 * Everything here is exact counting on the matrix structure; no
 * event-driven simulation is involved.
 */

#ifndef NETSPARSE_ANALYSIS_COMM_PATTERN_HH
#define NETSPARSE_ANALYSIS_COMM_PATTERN_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "sparse/csr.hh"
#include "sparse/partition.hh"

namespace netsparse {

/** Per-node communication counts for one kernel iteration. */
struct NodeCommStats
{
    /** Nonzeros owned by the node. */
    std::uint64_t nnz = 0;
    /** Nonzeros whose input property is remote (= vanilla SA PRs). */
    std::uint64_t remoteNnz = 0;
    /** Distinct remote properties the node actually needs ("useful"). */
    std::uint64_t uniqueRemote = 0;
    /** Of those, distinct properties homed outside the node's rack. */
    std::uint64_t uniqueRemoteOffRack = 0;
    /** Properties the node would receive under SU (all non-local ones). */
    std::uint64_t suReceived = 0;
};

/** Whole-cluster communication pattern summary. */
struct CommPattern
{
    std::vector<NodeCommStats> nodes;

    std::uint64_t totalUseful = 0;
    std::uint64_t totalRemoteNnz = 0;
    std::uint64_t totalSuReceived = 0;

    /** Redundant SU transfers per useful one (Table 1, row SU). */
    double
    suRedundancyRatio() const
    {
        if (totalUseful == 0)
            return 0.0;
        return static_cast<double>(totalSuReceived - totalUseful) /
               static_cast<double>(totalUseful);
    }

    /** Redundant SA transfers per useful one (Table 1, row SA). */
    double
    saRedundancyRatio() const
    {
        if (totalUseful == 0)
            return 0.0;
        return static_cast<double>(totalRemoteNnz - totalUseful) /
               static_cast<double>(totalUseful);
    }
};

/**
 * Count the pattern stats for @p m under @p part.
 *
 * @param nodesPerRack group size used for the off-rack split; pass 0 to
 *        treat every node as its own rack (no off-rack stats).
 */
CommPattern analyzeCommPattern(const Csr &m, const Partition1D &part,
                               std::uint32_t nodesPerRack = 0);

/**
 * Table 4: the average number of distinct destination nodes among
 * @p window consecutive (unfiltered) PRs issued by a node, averaged over
 * all full windows of all nodes.
 */
double avgUniqueDestinations(const Csr &m, const Partition1D &part,
                             std::uint32_t window = 64);

/**
 * Section 3 sharing study: the fraction of useful (node, property) pairs,
 * where the property is homed outside the node's rack, whose property is
 * useful to at least @p minSharers nodes of that same rack.
 */
double rackSharingFraction(const Csr &m, const Partition1D &part,
                           std::uint32_t nodesPerRack,
                           std::uint32_t minSharers = 2);

/**
 * Table 3: fraction of SA traffic consumed by headers when each PR
 * travels alone, for a property of @p kElems 4-byte elements.
 */
double headerShare(std::uint32_t kElems, std::uint32_t headerBytes = 78);

/**
 * Figure 19: given per-node communication volumes, the number of nodes
 * still active at each of @p samples evenly spaced normalized times,
 * assuming every node drains its volume at an equal rate.
 */
std::vector<std::uint32_t>
activeNodeProfile(const std::vector<std::uint64_t> &perNodeVolume,
                  std::uint32_t samples);

} // namespace netsparse

#endif // NETSPARSE_ANALYSIS_COMM_PATTERN_HH
