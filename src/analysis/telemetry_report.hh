/**
 * @file
 * Post-run bottleneck attribution over the observability documents.
 *
 * The analyzer consumes a netsparse-telemetry-v1 timeline (and
 * optionally the matching netsparse-stats-v1 snapshot) and condenses
 * them into the questions a performance investigation starts with:
 * which links and switches saturated, for how long and when; where
 * the run's phase boundaries are (from the cluster-wide event
 * throughput); and which PR lifecycle stage dominates end-to-end
 * latency. The example CLI examples/telemetry_report.cpp prints the
 * result; tests drive analyzeTelemetry() directly.
 */

#ifndef NETSPARSE_ANALYSIS_TELEMETRY_REPORT_HH
#define NETSPARSE_ANALYSIS_TELEMETRY_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/json_lite.hh"
#include "sim/types.hh"

namespace netsparse {

/** One link or switch ranked by how saturated its timeline is. */
struct BottleneckEntry
{
    std::string id;
    std::string kind;
    /** Fraction of sample intervals at >= 90% wire utilization
     *  (links; 0 for switches). */
    double fracAbove90 = 0.0;
    /** Peak utilization (links) / peak output backlog bytes
     *  (switches). */
    double peak = 0.0;
    /** Simulated time of the peak sample. */
    Tick peakTick = 0;
    /** Peak transmit backlog in bytes (links). */
    double peakQueueBytes = 0.0;
    Tick peakQueueTick = 0;
};

/** A detected shift in cluster-wide event throughput. */
struct PhaseBoundary
{
    /** Tick of the sample boundary the shift was detected at. */
    Tick tick = 0;
    /** Events per interval before / after the boundary. */
    double eventsBefore = 0.0;
    double eventsAfter = 0.0;
};

/** Aggregate time attributed to one PR lifecycle stage. */
struct StageTotal
{
    std::string name;
    /** Approximate total nanoseconds (histogram bucket midpoints). */
    double totalNs = 0.0;
    std::uint64_t samples = 0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
};

/**
 * Per-tenant slice of the report (multi-tenant runs). The tenant's
 * active window comes from its inflightPrs telemetry series; the
 * link ranking is the saturation ranking restricted to that window,
 * answering "which links were hot while this tenant ran", and the
 * stage ranking joins the tenant's own cluster.tenant<t>.prLatency.*
 * histograms from the stats document.
 */
struct TenantReport
{
    std::uint32_t tenant = 0;
    /** First / last sample tick with PRs in flight. */
    Tick activeStart = 0;
    Tick activeEnd = 0;
    /** Links ranked by time-above-90% within the active window. */
    std::vector<BottleneckEntry> links;
    /** Lifecycle stages ranked by aggregate time (needs stats). */
    std::vector<StageTotal> stages;

    std::string
    dominantStage() const
    {
        return stages.empty() ? std::string() : stages.front().name;
    }
};

/** The condensed report (see the file comment). */
struct TelemetryReport
{
    Tick intervalTicks = 0;
    Tick finalTick = 0;
    std::size_t numSamples = 0;

    /** Links ranked by time-above-90%, then peak utilization. */
    std::vector<BottleneckEntry> links;
    /** Switches ranked by peak output backlog. */
    std::vector<BottleneckEntry> switches;
    /** Throughput shifts in sample order. */
    std::vector<PhaseBoundary> phases;

    /** Lifecycle stages ranked by aggregate time; empty without a
     *  stats document (or when the run had no latency collectors). */
    std::vector<StageTotal> stages;

    /** Per-tenant slices, in tenant order (multi-tenant runs only). */
    std::vector<TenantReport> tenants;

    /** Convenience: ids of the top-ranked entries ("" when empty). */
    std::string mostUtilizedLink() const;
    std::string dominantStage() const;
};

/**
 * Analyze run @p runIndex of a parsed telemetry document, optionally
 * joining the same-index run of a parsed stats document for the PR
 * latency stage ranking. Throws std::runtime_error on documents that
 * do not follow the schemas in docs/observability.md.
 */
TelemetryReport analyzeTelemetry(const jsonlite::Value &telemetry,
                                 const jsonlite::Value *stats = nullptr,
                                 std::size_t runIndex = 0);

/** Print the human-readable ranked report. */
void printTelemetryReport(const TelemetryReport &r, std::ostream &os);

} // namespace netsparse

#endif // NETSPARSE_ANALYSIS_TELEMETRY_REPORT_HH
