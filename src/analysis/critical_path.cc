#include "analysis/critical_path.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <tuple>

namespace netsparse {

Tick
CriticalPath::attributedTicks() const
{
    Tick sum = 0;
    for (const CpSegment &s : segments)
        sum += s.ticks();
    return sum;
}

std::vector<CpContribution>
CriticalPath::contributions() const
{
    // Key order (wait, stage, comp) makes the aggregate - and with it
    // the printed report - deterministic before the by-size sort.
    std::map<std::tuple<bool, std::string, std::uint32_t>, Tick> agg;
    for (const CpSegment &s : segments)
        agg[{s.wait, s.stage, s.comp}] += s.ticks();
    std::vector<CpContribution> out;
    out.reserve(agg.size());
    for (const auto &[key, ticks] : agg)
        out.push_back(CpContribution{std::get<1>(key), std::get<2>(key),
                                     std::get<0>(key), ticks});
    std::stable_sort(out.begin(), out.end(),
                     [](const CpContribution &a, const CpContribution &b) {
                         return a.ticks > b.ticks;
                     });
    return out;
}

std::vector<std::pair<std::uint32_t, Tick>>
CriticalPath::byComp() const
{
    std::map<std::uint32_t, Tick> agg;
    for (const CpSegment &s : segments)
        agg[s.comp] += s.ticks();
    std::vector<std::pair<std::uint32_t, Tick>> out(agg.begin(),
                                                    agg.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return out;
}

CriticalPath
computeCriticalPath(Tick issueTick, Tick retireTick,
                    const std::vector<CpEvent> &events)
{
    CriticalPath cp;
    cp.issueTick = issueTick;
    cp.retireTick = retireTick;
    if (retireTick < issueTick)
        throw std::runtime_error("critical path: retire before issue");

    Tick cursor = issueTick;
    for (const CpEvent &e : events) {
        // Clamp the event's service interval to the span window: under
        // retry, failed-attempt events precede the accepted attempt's
        // issue tick and must collapse to zero width, or the segments
        // would no longer tile [issue, retire].
        Tick s = std::max(e.tick, issueTick);
        Tick t = e.tick + e.dur;
        if (t > retireTick)
            t = retireTick;
        if (s > retireTick)
            s = retireTick;
        if (s > cursor) {
            cp.segments.push_back(
                CpSegment{cursor, s, e.comp, e.stage, true});
            cursor = s;
        }
        if (t > cursor) {
            cp.segments.push_back(
                CpSegment{cursor, t, e.comp, e.stage, false});
            cursor = t;
        }
    }
    // A well-formed span ends with its retire event at retireTick, so
    // this is defensive: never leave the tiling short.
    if (cursor < retireTick)
        cp.segments.push_back(CpSegment{
            cursor, retireTick,
            cp.segments.empty() ? 0 : cp.segments.back().comp,
            "unattributed", true});
    return cp;
}

const std::string &
SpanReport::componentName(std::uint32_t comp) const
{
    static const std::string unknown = "?";
    return comp < components.size() ? components[comp] : unknown;
}

SpanReport
analyzeSpans(const jsonlite::Value &spans, std::size_t runIndex,
             std::size_t maxExemplars)
{
    if (!spans.has("schema") ||
        spans.at("schema").string != "netsparse-spans-v1")
        throw std::runtime_error("not a netsparse-spans-v1 document");
    const jsonlite::Value &run = spans.at("runs").at(runIndex);

    SpanReport r;
    r.label = run.at("label").string;
    r.fidelity = run.at("fidelity").string;
    r.finalTick = static_cast<Tick>(run.at("finalTick").number);
    r.recordedSpans =
        static_cast<std::uint64_t>(run.at("recordedSpans").number);
    for (const auto &c : run.at("components").array)
        r.components.push_back(c.string);

    const auto &all = run.at("spans").array;
    r.keptSpans = all.size();

    auto build = [&](const jsonlite::Value &span) {
        SpanExemplar ex;
        ex.spanId = span.at("spanId").string;
        ex.tenant =
            static_cast<std::uint32_t>(span.at("tenant").number);
        ex.src = static_cast<NodeId>(span.at("src").number);
        ex.reqId = static_cast<std::uint32_t>(span.at("reqId").number);
        ex.totalTicks = static_cast<Tick>(span.at("totalTicks").number);
        ex.servedByCache = span.at("servedByCache").boolean;
        ex.retransmits =
            static_cast<std::uint32_t>(span.at("retransmits").number);
        ex.kept = span.at("kept").string;
        ex.finisher = span.at("finisher").boolean;
        std::vector<CpEvent> events;
        for (const auto &e : span.at("events").array) {
            CpEvent ev;
            ev.tick = static_cast<Tick>(e.at("tick").number);
            ev.dur = static_cast<Tick>(e.at("durTicks").number);
            ev.comp = static_cast<std::uint32_t>(e.at("comp").number);
            ev.stage = e.at("stage").string;
            events.push_back(std::move(ev));
        }
        ex.path = computeCriticalPath(
            static_cast<Tick>(span.at("issueTick").number),
            static_cast<Tick>(span.at("retireTick").number), events);
        return ex;
    };

    // Spans are stored largest-total-first: the head of the list is
    // the tail exemplar set. Finishers outside the head ride along so
    // makespan attribution is always present.
    for (std::size_t i = 0; i < all.size() && i < maxExemplars; ++i)
        r.exemplars.push_back(build(all.at(i)));
    for (std::size_t i = maxExemplars; i < all.size(); ++i)
        if (all.at(i).at("finisher").boolean)
            r.exemplars.push_back(build(all.at(i)));
    return r;
}

void
printSpanReport(const SpanReport &r, std::ostream &os)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "span report: %s, %llu PRs recorded, %llu kept, run "
                  "ends at %.2f us (%s fidelity)\n",
                  r.label.c_str(),
                  static_cast<unsigned long long>(r.recordedSpans),
                  static_cast<unsigned long long>(r.keptSpans),
                  ticks::toNs(r.finalTick) / 1e3, r.fidelity.c_str());
    os << buf;

    for (const SpanExemplar &ex : r.exemplars) {
        std::snprintf(buf, sizeof(buf),
                      "\n%s %s: tenant %u, src %u, reqId %u, "
                      "%.2f us total%s%s%s\n",
                      ex.finisher ? "makespan finisher" : "tail exemplar",
                      ex.spanId.c_str(), ex.tenant, ex.src, ex.reqId,
                      ticks::toNs(ex.totalTicks) / 1e3,
                      ex.servedByCache ? ", served by ToR cache" : "",
                      ex.retransmits ? ", retransmitted" : "",
                      ex.kept == "sampled" ? " (sampled)" : "");
        os << buf;
        double total = static_cast<double>(ex.path.totalTicks());
        if (total <= 0)
            continue;
        std::size_t shown = 0;
        for (const CpContribution &c : ex.path.contributions()) {
            if (shown++ >= 8)
                break;
            std::snprintf(buf, sizeof(buf),
                          "  %5.1f%%  %-8s %-12s at %-24s %10.2f us\n",
                          100.0 * static_cast<double>(c.ticks) / total,
                          c.wait ? "queued" : "service", c.stage.c_str(),
                          r.componentName(c.comp).c_str(),
                          ticks::toNs(c.ticks) / 1e3);
            os << buf;
        }
        os << "  by component:";
        shown = 0;
        for (const auto &[comp, ticks] : ex.path.byComp()) {
            if (shown++ >= 4)
                break;
            std::snprintf(buf, sizeof(buf), " %s %.0f%%",
                          r.componentName(comp).c_str(),
                          100.0 * static_cast<double>(ticks) / total);
            os << buf;
        }
        os << '\n';
    }
    if (r.exemplars.empty())
        os << "  (no spans kept; raise --span-sample or the tail "
              "knobs)\n";
}

} // namespace netsparse
