/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator measures time in integer picoseconds ("ticks"), like gem5.
 * All hardware clocks and link rates used in the paper's Table 5 convert
 * exactly or near-exactly into picoseconds:
 *   - SNIC clock 2.2 GHz   -> ~455 ps period
 *   - switch pipes 2 GHz   -> 500 ps period
 *   - 400 Gbps link        -> 50 bytes/ns -> 0.05 bytes/ps
 */

#ifndef NETSPARSE_SIM_TYPES_HH
#define NETSPARSE_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace netsparse {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unscheduled. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Identifier of a cluster node (host + SNIC pair). */
using NodeId = std::uint32_t;

/** Identifier of a rack (group of nodes under one ToR switch). */
using RackId = std::uint32_t;

/** Identifier of a switch in the network graph. */
using SwitchId = std::uint32_t;

/** Property index: the column id (cid) of a nonzero in the sparse matrix. */
using PropIdx = std::uint64_t;

/** Sentinel node id used for "no node" / broadcast-invalid situations. */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

namespace ticks {

constexpr Tick ps = 1;
constexpr Tick ns = 1000 * ps;
constexpr Tick us = 1000 * ns;
constexpr Tick ms = 1000 * us;
constexpr Tick s = 1000 * ms;

/** Convert a tick count to (floating point) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(s);
}

/** Convert a tick count to (floating point) nanoseconds. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ns);
}

/** Convert (floating point) seconds to ticks, rounding to nearest. */
constexpr Tick
fromSeconds(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(s) + 0.5);
}

} // namespace ticks

/**
 * A clock domain: converts between cycles and ticks.
 *
 * Periods are kept in double picoseconds internally so that non-integral
 * periods (e.g. 2.2 GHz -> 454.55 ps) accumulate without systematic drift.
 */
class Clock
{
  public:
    /** Construct a clock from a frequency in Hz. */
    explicit Clock(double freq_hz)
        : periodPs_(1e12 / freq_hz), freqHz_(freq_hz)
    {}

    /** Ticks consumed by @p cycles clock cycles (rounded to nearest). */
    Tick
    cycles(std::uint64_t n) const
    {
        return static_cast<Tick>(periodPs_ * static_cast<double>(n) + 0.5);
    }

    /** One clock period in ticks (rounded). */
    Tick period() const { return cycles(1); }

    /** The clock frequency in Hz. */
    double frequency() const { return freqHz_; }

  private:
    double periodPs_;
    double freqHz_;
};

/**
 * A bandwidth: converts between byte counts and serialization time.
 */
class Bandwidth
{
  public:
    /** Construct from bits per second. */
    static Bandwidth
    fromGbps(double gbps)
    {
        return Bandwidth(gbps * 1e9 / 8.0);
    }

    /** Construct from bytes per second. */
    static Bandwidth
    fromGBps(double gbytes_per_s)
    {
        return Bandwidth(gbytes_per_s * 1e9);
    }

    /** Time in ticks to move @p bytes at this rate (rounded up). */
    Tick
    serialize(std::uint64_t bytes) const
    {
        double t = static_cast<double>(bytes) / bytesPerPs_;
        return static_cast<Tick>(t + 0.999999);
    }

    /** The rate in bytes per second. */
    double bytesPerSecond() const { return bytesPerPs_ * 1e12; }

    /** The rate in bytes per picosecond. */
    double bytesPerPs() const { return bytesPerPs_; }

  private:
    explicit Bandwidth(double bytes_per_s)
        : bytesPerPs_(bytes_per_s / 1e12)
    {}

    double bytesPerPs_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_TYPES_HH
