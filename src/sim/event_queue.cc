#include "sim/event_queue.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace netsparse {

namespace {

/** Dispatch events between event-queue trace samples (keeps traces of
 *  multi-million-event runs bounded while still showing queue depth). */
constexpr std::uint64_t traceSampleInterval = 1024;

} // namespace

void
EventQueue::schedule(Tick when, Callback fn)
{
    ns_assert(when >= now_, "event scheduled in the past: when=", when,
              " now=", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Copy out the entry before popping so the callback may schedule
    // new events (which can reallocate the heap storage).
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = e.when;
    ++executed_;
    if (executed_ % traceSampleInterval == 0) {
        NS_TRACE(tw.counter(tw.track("sim.eq"), "pendingEvents", now_,
                            static_cast<double>(heap_.size())));
    }
    e.fn();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        step();
    return now_;
}

} // namespace netsparse
