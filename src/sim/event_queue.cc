#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/telemetry.hh"
#include "sim/trace.hh"

namespace netsparse {

namespace {

/** Dispatch events between event-queue trace samples (keeps traces of
 *  multi-million-event runs bounded while still showing queue depth). */
constexpr std::uint64_t traceSampleInterval = 1024;

} // namespace

EventQueue::~EventQueue()
{
    // Destroy pending closures without invoking them (a closure may own
    // a Packet or a completion callback with non-trivial state).
    auto drop = [this](const Ref &r) {
        EventPool::Slot &s = pool_.slot(r.slot);
        s.fn(s.buf, detail::EventOp::Drop);
    };
    for (const Ref &r : cur_)
        drop(r);
    for (const auto &bucket : ring_)
        for (const Ref &r : bucket)
            drop(r);
    for (const Ref &r : far_)
        drop(r);
}

void
EventQueue::enqueue(Tick when, std::uint64_t key, std::uint32_t slot)
{
    Ref r{when, key, slot};
    std::uint64_t b = bucketOf(when);
    if (b <= cursor_) {
        // The active bucket, or behind an already-rotated cursor (the
        // cursor can sit ahead of now() after a far-heap jump); either
        // way it belongs to the dispatch heap.
        cur_.push_back(r);
        std::push_heap(cur_.begin(), cur_.end(), Later{});
    } else if (b - cursor_ < numBuckets) {
        ring_[b % numBuckets].push_back(r);
        ++nearSize_;
    } else {
        far_.push_back(r);
        std::push_heap(far_.begin(), far_.end(), Later{});
    }
    ++size_;
}

void
EventQueue::pullFar()
{
    while (!far_.empty() &&
           bucketOf(far_.front().when) - cursor_ < numBuckets) {
        std::pop_heap(far_.begin(), far_.end(), Later{});
        Ref r = far_.back();
        far_.pop_back();
        std::uint64_t b = bucketOf(r.when);
        if (b <= cursor_) {
            cur_.push_back(r);
            std::push_heap(cur_.begin(), cur_.end(), Later{});
        } else {
            ring_[b % numBuckets].push_back(r);
            ++nearSize_;
        }
    }
}

bool
EventQueue::advance()
{
    if (!cur_.empty())
        return true;
    if (nearSize_ > 0) {
        // Rotate to the next occupied bucket. Each occupied slot maps to
        // a unique absolute bucket inside the window, so the first
        // non-empty slot is the earliest.
        for (std::size_t i = 1; i < numBuckets; ++i) {
            auto &bucket = ring_[(cursor_ + i) % numBuckets];
            if (bucket.empty())
                continue;
            cursor_ += i;
            nearSize_ -= bucket.size();
            cur_.swap(bucket); // recycles vector capacity both ways
            std::make_heap(cur_.begin(), cur_.end(), Later{});
            pullFar();
            return true;
        }
        ns_panic("near-event accounting out of sync");
    }
    if (!far_.empty()) {
        // The wheel is empty: jump the window to the far heap's head.
        cursor_ = bucketOf(far_.front().when);
        pullFar(); // lands the head (bucket == cursor_) in cur_
        return true;
    }
    return false;
}

Tick
EventQueue::nextEventTick() const
{
    if (size_ == 0)
        return maxTick;
    if (!cur_.empty())
        return cur_.front().when;
    if (nearSize_ > 0) {
        for (std::size_t i = 1; i < numBuckets; ++i) {
            const auto &bucket = ring_[(cursor_ + i) % numBuckets];
            if (bucket.empty())
                continue;
            Tick best = maxTick;
            for (const Ref &r : bucket)
                best = std::min(best, r.when);
            return best;
        }
    }
    return far_.front().when;
}

bool
EventQueue::step()
{
    if (!advance())
        return false;
    if (cur_.front().when >= probeNext_) {
        // Telemetry boundary: the event about to run is the first at
        // or past it, so the state right now is exactly the product
        // of every event with an earlier tick - sample before
        // executing (see sim/telemetry.hh for why this definition is
        // shard-count-invariant).
        probeNext_ = probe_->onBoundary(cur_.front().when);
    }
    std::pop_heap(cur_.begin(), cur_.end(), Later{});
    Ref r = cur_.back();
    cur_.pop_back();
    now_ = r.when;
    --size_;
    ++executed_;
    if (executed_ % traceSampleInterval == 0) {
        NS_TRACE(tw.counter(tw.track("sim.eq"), "pendingEvents", now_,
                            static_cast<double>(size_)));
    }
    EventPool::Slot &s = pool_.slot(r.slot);
    s.fn(s.buf, detail::EventOp::Run);
    pool_.release(r.slot);
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (advance() && cur_.front().when <= limit)
        step();
    return now_;
}

void
EventQueue::fastForward(Tick t)
{
    ns_assert(t >= now_, "fastForward into the past: t=", t, " now=",
              now_);
    ns_assert(empty() || nextEventTick() >= t,
              "fastForward would skip pending events");
    now_ = t;
}

} // namespace netsparse
