#include "sim/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace netsparse {

namespace {
bool gVerbose = true;
} // namespace

void
setVerbose(bool verbose)
{
    gVerbose = verbose;
}

bool
verbose()
{
    return gVerbose;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throw instead of abort() so tests can assert on panics; uncaught,
    // the exception still terminates the process with a diagnostic.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gVerbose)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace netsparse
