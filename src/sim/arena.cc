#include "sim/arena.hh"

namespace netsparse {

ArenaStatsRegistry &
ArenaStatsRegistry::instance()
{
    // Leaked on purpose: thread_local arenas flush here from thread
    // exit paths that may run during process teardown.
    static ArenaStatsRegistry *reg = new ArenaStatsRegistry;
    return *reg;
}

void
ArenaStatsRegistry::flush(const ArenaStats &stats)
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_.add(stats);
}

ArenaStats
ArenaStatsRegistry::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
}

} // namespace netsparse
