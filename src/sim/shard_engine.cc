#include "sim/shard_engine.hh"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace netsparse {

namespace {

void
atomicMinTick(std::atomic<Tick> &slot, Tick value)
{
    Tick seen = slot.load(std::memory_order_relaxed);
    while (value < seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

ShardEngine::Result
ShardEngine::run(std::vector<Shard> shards, Tick lookahead, Tick limit)
{
    const std::size_t numShards = shards.size();
    ns_assert(numShards > 0, "shard engine needs at least one shard");
    for (const Shard &s : shards)
        ns_assert(s.eq, "shard without an event queue");

    Result result;
    if (numShards == 1) {
        // Degenerate sharding: plain sequential execution, no threads,
        // no barriers. The delivery-key merge order is the same one the
        // local scheduling path uses, so this is the N-shard reference.
        if (shards[0].drainInbox)
            shards[0].drainInbox();
        result.finalTick = shards[0].eq->runUntil(limit);
        result.executedEvents = shards[0].eq->executedEvents();
        return result;
    }
    ns_assert(lookahead > 0,
              "conservative sharding needs positive lookahead");

    // The epoch window start is the earliest pending tick across all
    // shards, computed as a min-reduction right before each barrier.
    // Double-buffered by epoch parity: while epoch e reads buffer
    // (e & 1), buffer ((e + 1) & 1) is being reset for the next epoch.
    std::atomic<Tick> windowStart[2] = {maxTick, maxTick};
    std::atomic<bool> failed{false};
    std::vector<std::exception_ptr> errors(numShards);
    std::atomic<std::uint64_t> epochs{0};
    std::barrier<> barrier(static_cast<std::ptrdiff_t>(numShards));

    // Capture the ambient trace configuration on the calling thread;
    // workers bind private writers so concurrent shards never share a
    // sink (per-shard files, like the sweep runner's per-point files).
    const bool traceActive = TraceWriter::instance().enabled();
    const std::string tracePath = TraceWriter::instance().path();

    auto worker = [&](std::size_t self) {
        TraceWriter shardTrace;
        std::unique_ptr<TraceWriter::Bind> traceBind;
        if (traceActive) {
            // "dir/run.json" -> "dir/run.shard2.json": keep the
            // extension last so trace viewers recognize the files.
            shardTrace.open(TraceWriter::derivedPath(
                tracePath, "shard" + std::to_string(self)));
            traceBind = std::make_unique<TraceWriter::Bind>(shardTrace);
        }
        EventQueue &eq = *shards[self].eq;
        for (std::uint64_t e = 0;; ++e) {
            try {
                if (shards[self].drainInbox)
                    shards[self].drainInbox();
            } catch (...) {
                if (!errors[self])
                    errors[self] = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
            atomicMinTick(windowStart[e & 1], eq.nextEventTick());
            barrier.arrive_and_wait();
            // Every worker reads the same reduced value and the same
            // failure flag (both written before the barrier), so all
            // shards leave the loop at the same epoch.
            // start == maxTick means no shard has pending work and the
            // just-drained channels were empty: the system is globally
            // idle (deliveries produced in epoch e are merged at epoch
            // e + 1 before this reduction, so in-flight work always
            // shows up here).
            Tick start = windowStart[e & 1].load(std::memory_order_relaxed);
            if (start == maxTick || start > limit ||
                failed.load(std::memory_order_relaxed)) {
                if (self == 0)
                    epochs.store(e, std::memory_order_relaxed);
                break;
            }
            Tick end = start + lookahead - 1;
            if (end < start || end > limit) // saturate near maxTick
                end = limit;
            try {
                eq.runUntil(end);
            } catch (...) {
                if (!errors[self])
                    errors[self] = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
            windowStart[(e + 1) & 1].store(maxTick,
                                           std::memory_order_relaxed);
            barrier.arrive_and_wait();
        }
        if (traceBind) {
            traceBind.reset();
            shardTrace.close();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(numShards);
    for (std::size_t i = 0; i < numShards; ++i)
        pool.emplace_back(worker, i);
    for (std::thread &t : pool)
        t.join();

    for (std::size_t i = 0; i < numShards; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);

    result.epochs = epochs.load(std::memory_order_relaxed);
    for (const Shard &s : shards) {
        result.finalTick = std::max(result.finalTick, s.eq->now());
        result.executedEvents += s.eq->executedEvents();
    }
    // Align every shard clock with the global end of simulation so
    // time-normalized statistics (link utilization, goodput) read the
    // same denominator a single-queue run would.
    for (const Shard &s : shards)
        s.eq->fastForward(result.finalTick);
    return result;
}

} // namespace netsparse
