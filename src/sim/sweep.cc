#include "sim/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/span.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "sim/trace.hh"

namespace netsparse {

unsigned
SweepExecutor::jobsFromEnv()
{
    const char *env = std::getenv("NETSPARSE_BENCH_JOBS");
    if (!env || !*env)
        return 1;
    long v = std::strtol(env, nullptr, 10);
    if (v < 1)
        return 1;
    return static_cast<unsigned>(v);
}

void
SweepExecutor::run(std::size_t n,
                   const std::function<void(std::size_t)> &point)
{
    unsigned workers =
        static_cast<unsigned>(jobs_ < n ? jobs_ : (n ? n : 1));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            point(i);
        return;
    }

    StatsExport &ambientStats = StatsExport::instance();
    const bool collectStats = ambientStats.enabled();
    TraceWriter &ambientTrace = TraceWriter::instance();
    const bool captureTrace = ambientTrace.enabled();
    const std::string tracePath = ambientTrace.path();

    TelemetrySink &ambientTelemetry = TelemetrySink::instance();
    const bool collectTelemetry = ambientTelemetry.enabled();

    SpanSink &ambientSpans = SpanSink::instance();
    const bool collectSpans = ambientSpans.enabled();

    // Per-point sinks, absorbed in index order after the join so the
    // merged documents match a sequential sweep byte for byte.
    std::vector<std::unique_ptr<StatsExport>> pointStats(n);
    std::vector<std::unique_ptr<TelemetrySink>> pointTelemetry(n);
    std::vector<std::unique_ptr<SpanSink>> pointSpans(n);
    for (std::size_t i = 0; i < n; ++i) {
        pointStats[i] = std::make_unique<StatsExport>();
        pointStats[i]->setCollect(collectStats);
        pointTelemetry[i] = std::make_unique<TelemetrySink>();
        pointTelemetry[i]->setCollect(collectTelemetry);
        pointSpans[i] = std::make_unique<SpanSink>();
        pointSpans[i]->setCollect(collectSpans);
    }

    std::atomic<std::size_t> next{0};
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::size_t firstErrorIndex = n;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                StatsExport::Bind statsBind(*pointStats[i]);
                TelemetrySink::Bind telemetryBind(*pointTelemetry[i]);
                SpanSink::Bind spanBind(*pointSpans[i]);
                if (captureTrace) {
                    // Event traces cannot be merged after the fact
                    // (track ids collide), so each point writes its
                    // own file: "dir/run.json" -> "dir/run.point3.json"
                    // rather than the old "dir/run.json.point3", which
                    // broke tooling expecting the extension last.
                    TraceWriter pointTrace;
                    TraceWriter::Bind traceBind(pointTrace);
                    std::string path = TraceWriter::derivedPath(
                        tracePath, "point" + std::to_string(i));
                    if (!pointTrace.open(path))
                        ns_warn("sweep: cannot open per-point trace ",
                                path, "; point ", i, " runs untraced");
                    point(i);
                    pointTrace.close();
                } else {
                    point(i);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (i < firstErrorIndex) {
                    firstErrorIndex = i;
                    firstError = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);

    if (collectStats)
        for (std::size_t i = 0; i < n; ++i)
            ambientStats.absorb(std::move(*pointStats[i]));
    if (collectTelemetry)
        for (std::size_t i = 0; i < n; ++i)
            ambientTelemetry.absorb(std::move(*pointTelemetry[i]));
    if (collectSpans)
        for (std::size_t i = 0; i < n; ++i)
            ambientSpans.absorb(std::move(*pointSpans[i]));
}

} // namespace netsparse
