#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "sim/logging.hh"

namespace netsparse {

namespace {

/** Close the global writer at process exit so aborted runs keep the
 *  trace. */
void
atexitFlush()
{
    TraceWriter::global().close();
}

/** The calling thread's bound writer; null means "use the global". */
thread_local TraceWriter *tlsWriter = nullptr;

/** Ticks (ps) to the trace_events "ts" unit (us), keeping ps precision. */
double
toTraceUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

std::string
traceArgs(std::initializer_list<std::pair<const char *, double>> kvs)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[k, v] : kvs) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << k << "\":" << v;
    }
    return os.str();
}

TraceWriter &
TraceWriter::instance()
{
    return tlsWriter ? *tlsWriter : global();
}

TraceWriter &
TraceWriter::global()
{
    static TraceWriter writer;
    return writer;
}

TraceWriter::Bind::Bind(TraceWriter &w) : prev_(tlsWriter)
{
    tlsWriter = &w;
}

TraceWriter::Bind::~Bind()
{
    tlsWriter = prev_;
}

bool
TraceWriter::open(const std::string &path)
{
    if (enabled_)
        close();
    std::FILE *probe = std::fopen(path.c_str(), "w");
    if (!probe) {
        ns_warn("cannot open trace output ", path);
        return false;
    }
    std::fclose(probe);

    // once_flag, not a bare bool: sweep workers open per-point writers
    // concurrently (src/sim/sweep.cc).
    static std::once_flag atexit_once;
    std::call_once(atexit_once, [] { std::atexit(atexitFlush); });

    path_ = path;
    enabled_ = true;
    events_.clear();
    tracks_.clear();
    trackNames_.clear();
    return true;
}

std::uint32_t
TraceWriter::track(const std::string &name)
{
    auto it = tracks_.find(name);
    if (it != tracks_.end())
        return it->second;
    auto id = static_cast<std::uint32_t>(trackNames_.size());
    tracks_.emplace(name, id);
    trackNames_.push_back(name);
    return id;
}

void
TraceWriter::instant(std::uint32_t track, const char *name, Tick ts,
                     std::string args)
{
    events_.push_back(
        Event{ts, 0, 'i', track, name, std::move(args), 0, 0});
}

void
TraceWriter::complete(std::uint32_t track, const char *name, Tick start,
                      Tick end, std::string args)
{
    ns_assert(end >= start, "trace span ends before it starts: ", name);
    events_.push_back(Event{start, end - start, 'X', track, name,
                            std::move(args), 0, 0});
}

void
TraceWriter::counter(std::uint32_t track, const char *name, Tick ts,
                     double value)
{
    events_.push_back(Event{ts, 0, 'C', track, name, {}, value, 0});
}

void
TraceWriter::asyncBegin(std::uint32_t track, const char *name,
                        std::uint64_t id, Tick ts, std::string args)
{
    events_.push_back(
        Event{ts, 0, 'b', track, name, std::move(args), 0, id});
}

void
TraceWriter::asyncEnd(std::uint32_t track, const char *name,
                      std::uint64_t id, Tick ts)
{
    events_.push_back(Event{ts, 0, 'e', track, name, {}, 0, id});
}

std::string
TraceWriter::derivedPath(const std::string &base, const std::string &tag)
{
    // Insert ".<tag>" before the final extension of the last path
    // component (never before a dot inside a directory name), so
    // "out/trace.json" derives "out/trace.point3.json" and an
    // extension-less base simply appends.
    std::size_t slash = base.find_last_of("/\\");
    std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos || dot <= start)
        return base + "." + tag;
    return base.substr(0, dot) + "." + tag + base.substr(dot);
}

void
TraceWriter::writeEvents(std::FILE *f)
{
    // Stable sort keeps same-tick events in emission order, and makes
    // the "ts" sequence monotonically non-decreasing for consumers.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    std::fputs("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n", f);
    std::fputs("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
               "\"tid\":0,\"args\":{\"name\":\"netsparse\"}}",
               f);
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        std::fprintf(f,
                     ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                     "\"pid\":0,\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                     t, trackNames_[t].c_str());
    }
    for (const Event &e : events_) {
        std::fprintf(f,
                     ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":0,"
                     "\"tid\":%u,\"ts\":%.6f",
                     e.name, e.ph, e.tid, toTraceUs(e.ts));
        if (e.ph == 'X')
            std::fprintf(f, ",\"dur\":%.6f", toTraceUs(e.dur));
        if (e.ph == 'i')
            std::fputs(",\"s\":\"t\"", f);
        if (e.ph == 'b' || e.ph == 'e')
            std::fprintf(f, ",\"cat\":\"span\",\"id\":\"0x%llx\"",
                         static_cast<unsigned long long>(e.id));
        if (e.ph == 'C')
            std::fprintf(f, ",\"args\":{\"value\":%g}", e.value);
        else if (!e.args.empty())
            std::fprintf(f, ",\"args\":{%s}", e.args.c_str());
        std::fputc('}', f);
    }
    std::fputs("\n]\n}\n", f);
}

void
TraceWriter::close()
{
    if (!enabled_)
        return;
    enabled_ = false;
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        ns_warn("cannot write trace output ", path_);
    } else {
        writeEvents(f);
        std::fclose(f);
    }
    events_.clear();
    tracks_.clear();
    trackNames_.clear();
    path_.clear();
}

} // namespace netsparse
