/**
 * @file
 * Event tracing in the Chrome trace_events ("Perfetto") JSON format.
 *
 * Components feed a TraceWriter with instant, duration ("complete") and
 * counter events keyed by a track (one per component name, rendered as
 * a thread row in Perfetto) and a tick-derived timestamp. Events are
 * buffered, sorted by timestamp and written as one JSON document on
 * close(), so the output always loads in ui.perfetto.dev or
 * chrome://tracing regardless of the order spans retire in.
 *
 * instance() resolves to the calling thread's *bound* writer - by
 * default the process-wide one behind --trace-out, but a parallel sweep
 * (sim/sweep.hh) binds a private per-run writer on each worker thread
 * with TraceWriter::Bind so concurrent simulations capture into
 * separate files. Single-threaded tools keep the singleton facade
 * unchanged.
 *
 * Overhead discipline: tracing costs one inlined boolean test per
 * instrumentation site when disabled at runtime, and compiles away
 * entirely when NETSPARSE_TRACING_ENABLED is defined to 0 (CMake option
 * NETSPARSE_DISABLE_TRACING). Hot per-idx paths are never traced
 * individually; they aggregate into chunk-level events.
 *
 * See docs/observability.md for the event schema and a Perfetto
 * walkthrough.
 */

#ifndef NETSPARSE_SIM_TRACE_HH
#define NETSPARSE_SIM_TRACE_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/types.hh"

#ifndef NETSPARSE_TRACING_ENABLED
#define NETSPARSE_TRACING_ENABLED 1
#endif

namespace netsparse {

/**
 * Render a trace-event argument dictionary body ("k1":v1,"k2":v2) from
 * numeric key/value pairs. Only built when a trace is being captured,
 * so the std::string cost is off the simulation fast path.
 */
std::string
traceArgs(std::initializer_list<std::pair<const char *, double>> kvs);

/** An event-trace sink (see the thread-binding notes above). */
class TraceWriter
{
  public:
    /** The writer bound to the calling thread (default: global()). */
    static TraceWriter &instance();

    /** The process-wide writer behind --trace-out / atexit flushing. */
    static TraceWriter &global();

    /**
     * RAII thread binding: while alive, instance() on this thread
     * resolves to the given writer (bindings nest).
     */
    class Bind
    {
      public:
        explicit Bind(TraceWriter &w);
        ~Bind();
        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        TraceWriter *prev_;
    };

    /** Per-run writers are plain objects; see Bind. */
    TraceWriter() = default;
    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /**
     * Start capturing and arrange for the trace to land at @p path
     * (written on close(), which also runs atexit as a safety net).
     * @return false when the path is not writable.
     */
    bool open(const std::string &path);

    /** Sort, write and clear the capture; disables further capture. */
    void close();

    /** True while a capture is active (the per-site fast-path test). */
    bool enabled() const { return enabled_; }

    /** The output path of the active capture (empty when disabled). */
    const std::string &path() const { return path_; }

    /**
     * The track (Perfetto thread row) for a component name. Tracks are
     * created on first use; the name is emitted as thread_name metadata.
     */
    std::uint32_t track(const std::string &name);

    /** A point event at @p ts on @p track. */
    void instant(std::uint32_t track, const char *name, Tick ts,
                 std::string args = {});

    /** A span [@p start, @p end] on @p track. */
    void complete(std::uint32_t track, const char *name, Tick start,
                  Tick end, std::string args = {});

    /** A sampled counter value at @p ts (rendered as a graph row). */
    void counter(std::uint32_t track, const char *name, Tick ts,
                 double value);

    /**
     * Open an async span (Perfetto 'b' event). Async events with the
     * same @p id nest into one stacked flow regardless of track order;
     * the span tracer (sim/span.hh) uses the 64-bit span id. Must be
     * paired with an asyncEnd of the same name and id.
     */
    void asyncBegin(std::uint32_t track, const char *name,
                    std::uint64_t id, Tick ts, std::string args = {});

    /** Close an async span (Perfetto 'e' event). */
    void asyncEnd(std::uint32_t track, const char *name,
                  std::uint64_t id, Tick ts);

    /** Events captured so far (for tests). */
    std::size_t eventCount() const { return events_.size(); }

    /**
     * Derive a sibling output path for a per-worker capture: inserts
     * ".<tag>" before the final extension so directory components are
     * honored and the file keeps a loadable suffix -
     * derivedPath("out/trace.json", "point3") == "out/trace.point3.json",
     * derivedPath("trace", "shard0") == "trace.shard0". Used for the
     * parallel sweep's per-point traces and the sharded engine's
     * per-shard traces (docs/observability.md).
     */
    static std::string derivedPath(const std::string &base,
                                   const std::string &tag);

  private:
    struct Event
    {
        Tick ts;
        Tick dur;       // complete events only
        char ph;        // 'i', 'X', 'C', 'b' or 'e'
        std::uint32_t tid;
        const char *name; // string literal owned by the caller
        std::string args;
        double value;     // counter events only
        std::uint64_t id; // async events only
    };

    void writeEvents(std::FILE *f);

    bool enabled_ = false;
    std::string path_;
    std::vector<Event> events_;
    std::unordered_map<std::string, std::uint32_t> tracks_;
    std::vector<std::string> trackNames_;
};

} // namespace netsparse

/**
 * NS_TRACE(stmts...): run the instrumentation statements only while a
 * capture is active; `tw` names the writer inside the body. Compiles to
 * nothing when tracing is disabled at build time.
 */
#if NETSPARSE_TRACING_ENABLED
/** True while a capture is active (for instrumentation-only setup). */
#define NS_TRACE_ON() (::netsparse::TraceWriter::instance().enabled())
#define NS_TRACE(...)                                                       \
    do {                                                                    \
        ::netsparse::TraceWriter &tw =                                      \
            ::netsparse::TraceWriter::instance();                           \
        if (tw.enabled()) {                                                 \
            __VA_ARGS__;                                                    \
        }                                                                   \
    } while (0)
#else
#define NS_TRACE_ON() false
#define NS_TRACE(...)                                                       \
    do {                                                                    \
    } while (0)
#endif

#endif // NETSPARSE_SIM_TRACE_HH
