/**
 * @file
 * Parallel execution of independent sweep points.
 *
 * The bench harness evaluates a grid of (matrix, parameter) points, each
 * an independent simulation. SweepExecutor runs those points across a
 * small thread pool while preserving the observable behavior of a
 * sequential sweep:
 *
 *  - each worker thread binds a private StatsExport and (when a trace
 *    capture is active) a private TraceWriter around every point, so
 *    concurrent simulations never share a sink;
 *  - per-point stats runs are absorb()ed into the ambient collector in
 *    point-index order, making the emitted stats JSON byte-identical to
 *    a sequential run;
 *  - per-point traces land next to the ambient trace path as
 *    "<path>.point<i>";
 *  - the first exception (by point index) is rethrown on the calling
 *    thread after all workers join.
 *
 * jobs <= 1 (the default; see jobsFromEnv / NETSPARSE_BENCH_JOBS) runs
 * points inline on the calling thread with the ambient sinks untouched.
 */

#ifndef NETSPARSE_SIM_SWEEP_HH
#define NETSPARSE_SIM_SWEEP_HH

#include <cstddef>
#include <functional>

namespace netsparse {

class SweepExecutor
{
  public:
    /** A pool of @p jobs workers (values < 1 behave like 1). */
    explicit SweepExecutor(unsigned jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

    /** Worker count from NETSPARSE_BENCH_JOBS (default 1: sequential). */
    static unsigned jobsFromEnv();

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p point for every index in [0, n). Points must be
     * independent: results should go into pre-sized per-index storage,
     * not shared accumulators. Blocks until all points finish.
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &point);

  private:
    unsigned jobs_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_SWEEP_HH
