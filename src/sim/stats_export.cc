#include "sim/stats_export.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace netsparse {

namespace {

void
atexitWrite()
{
    StatsExport::global().writeFile();
}

/** The calling thread's bound collector; null means "use the global". */
thread_local StatsExport *tlsExport = nullptr;

} // namespace

void
writeJsonNumber(std::ostream &os, double v)
{
    if (v != v || v > 1e308 || v < -1e308) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeStatsJson(const StatRegistry &reg, std::ostream &os)
{
    os << "{";
    bool first = true;
    auto comma = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
    };

    for (const auto &[name, value] : reg.all()) {
        comma();
        os << '"' << jsonEscape(name) << "\": {\"type\":\"scalar\","
           << "\"value\":";
        writeJsonNumber(os, value);
        os << '}';
    }
    for (const auto &[name, avg] : reg.averages()) {
        comma();
        os << '"' << jsonEscape(name) << "\": {\"type\":\"average\","
           << "\"count\":" << avg.count() << ",\"sum\":";
        writeJsonNumber(os, avg.sum());
        os << ",\"mean\":";
        writeJsonNumber(os, avg.mean());
        os << ",\"min\":";
        writeJsonNumber(os, avg.min());
        os << ",\"max\":";
        writeJsonNumber(os, avg.max());
        os << '}';
    }
    for (const auto &[name, hist] : reg.histograms()) {
        comma();
        os << '"' << jsonEscape(name) << "\": {\"type\":\"histogram\","
           << "\"lo\":";
        writeJsonNumber(os, hist.lo());
        os << ",\"hi\":";
        writeJsonNumber(os, hist.hi());
        os << ",\"total\":" << hist.totalSamples() << ",\"p50\":";
        writeJsonNumber(os, hist.percentile(50.0));
        os << ",\"p99\":";
        writeJsonNumber(os, hist.percentile(99.0));
        os << ",\"buckets\":[";
        for (std::size_t b = 0; b < hist.numBuckets(); ++b) {
            if (b)
                os << ',';
            os << hist.bucket(b);
        }
        os << "]}";
    }
    os << "\n}";
}

StatsExport &
StatsExport::instance()
{
    return tlsExport ? *tlsExport : global();
}

StatsExport &
StatsExport::global()
{
    static StatsExport exporter;
    return exporter;
}

StatsExport::Bind::Bind(StatsExport &s) : prev_(tlsExport)
{
    tlsExport = &s;
}

StatsExport::Bind::~Bind()
{
    tlsExport = prev_;
}

bool
StatsExport::setOutputPath(const std::string &path)
{
    // Probe-open now (append mode: creates the file, keeps any
    // content) so a bad path - most commonly a directory that does
    // not exist - fails loudly up front instead of producing a silent
    // empty run when the atexit write finally discovers it.
    if (!path.empty()) {
        std::ofstream probe(path, std::ios::app);
        if (!probe) {
            ns_warn("cannot open stats output ", path);
            return false;
        }
    }
    path_ = path;
    written_ = false;

    static bool atexit_registered = false;
    if (!atexit_registered) {
        std::atexit(atexitWrite);
        atexit_registered = true;
    }
    return true;
}

StatRegistry &
StatsExport::beginRun(const std::string &label)
{
    auto run = std::make_unique<Run>();
    // Empty labels stay empty until serialization ("gather<N>" by final
    // document position), so a run's number reflects where it lands
    // after any sweep-order absorb(), not which collector created it.
    run->label = label;
    runs_.push_back(std::move(run));
    written_ = false;
    return runs_.back()->registry;
}

void
StatsExport::absorb(StatsExport &&other)
{
    if (other.runs_.empty())
        return;
    runs_.reserve(runs_.size() + other.runs_.size());
    for (auto &run : other.runs_)
        runs_.push_back(std::move(run));
    other.runs_.clear();
    written_ = false;
}

std::string
StatsExport::toJson() const
{
    std::ostringstream os;
    os << "{\n\"schema\": \"netsparse-stats-v1\",\n\"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (i)
            os << ',';
        const std::string &label = runs_[i]->label;
        os << "\n{\"run\":" << i << ",\"label\":\""
           << (label.empty() ? "gather" + std::to_string(i)
                             : jsonEscape(label))
           << "\",\"stats\":";
        writeStatsJson(runs_[i]->registry, os);
        os << '}';
    }
    os << "\n]\n}\n";
    return os.str();
}

void
StatsExport::writeFile()
{
    if (path_.empty() || written_)
        return;
    std::ofstream os(path_);
    if (!os) {
        ns_warn("cannot write stats output ", path_);
        return;
    }
    os << toJson();
    written_ = true;
}

void
StatsExport::reset()
{
    runs_.clear();
    path_.clear();
    collect_ = false;
    written_ = false;
}

} // namespace netsparse
