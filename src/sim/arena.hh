/**
 * @file
 * Per-shard (thread-local) buffer arenas.
 *
 * The simulator's hottest allocation pattern is short-lived vectors that
 * shuttle payloads between components on one simulation thread: a
 * packet's PR list is born at a concatenation point and dies at a
 * deconcatenation point; a link delivery train's packet list is born
 * when a burst opens the train and dies when it flushes. BufferArena
 * recycles those vectors so steady-state traffic never touches the
 * allocator: acquire() hands back a previously grown buffer, recycle()
 * returns it cleared but with its capacity intact.
 *
 * One arena instance exists per thread (BufferArena<T>::local()), which
 * under the parallel engine means one per shard worker - no locks on
 * the hot path, and deterministic behavior because a buffer's capacity
 * never influences simulated time.
 *
 * Accounting: each arena tracks the bytes of capacity it is holding
 * (reserved) and the most it ever held (high water). When a shard
 * worker exits, its arena's destructor flushes those numbers into the
 * process-wide ArenaStatsRegistry; runGather reads the registry (plus
 * the calling thread's live arenas) to export the gated
 * `cluster.memory.*` stats keys. The registry keeps process-lifetime
 * totals - the stats are a host-side diagnostic of the simulator
 * itself, not part of the deterministic model, which is why the export
 * is off by default (ClusterConfig::memoryStats).
 */

#ifndef NETSPARSE_SIM_ARENA_HH
#define NETSPARSE_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace netsparse {

/** Aggregated arena accounting (see ArenaStatsRegistry). */
struct ArenaStats
{
    /** Capacity bytes currently parked in arenas. */
    std::uint64_t reservedBytes = 0;
    /** Sum of per-arena high-water capacity bytes. */
    std::uint64_t highWaterBytes = 0;
    /** acquire() calls served from a recycled buffer. */
    std::uint64_t poolHits = 0;
    /** acquire() calls that had to construct a fresh vector. */
    std::uint64_t poolMisses = 0;

    void
    add(const ArenaStats &o)
    {
        reservedBytes += o.reservedBytes;
        highWaterBytes += o.highWaterBytes;
        poolHits += o.poolHits;
        poolMisses += o.poolMisses;
    }
};

/**
 * Process-wide collection point for arenas whose threads have exited
 * (shard workers are joined before runGather exports statistics, so
 * their arenas flush here first). Mutex-protected; touched only at
 * thread exit and stats-export time, never on the simulation hot path.
 */
class ArenaStatsRegistry
{
  public:
    static ArenaStatsRegistry &instance();

    /** Fold a dying arena's accounting into the process totals. */
    void flush(const ArenaStats &stats);

    /** Totals over every arena flushed so far (process lifetime). */
    ArenaStats totals() const;

  private:
    mutable std::mutex mu_;
    ArenaStats totals_;
};

/** A thread-local pool of recycled std::vector<T> buffers. */
template <typename T>
class BufferArena
{
  public:
    /** Retired buffers kept per arena; excess recycles are freed. */
    static constexpr std::size_t maxPooled = 64;

    ~BufferArena() { ArenaStatsRegistry::instance().flush(stats()); }

    /** A cleared buffer with capacity for at least @p reserve items. */
    std::vector<T>
    acquire(std::size_t reserve)
    {
        std::vector<T> buf;
        if (!pool_.empty()) {
            buf = std::move(pool_.back());
            pool_.pop_back();
            reserved_ -= buf.capacity() * sizeof(T);
            ++stats_.poolHits;
        } else {
            ++stats_.poolMisses;
        }
        buf.reserve(reserve);
        return buf;
    }

    /** Return a buffer; its capacity feeds the next acquire(). */
    void
    recycle(std::vector<T> &&buf)
    {
        if (pool_.size() >= maxPooled)
            return; // freed: the arena is at its retention cap
        buf.clear();
        reserved_ += buf.capacity() * sizeof(T);
        if (reserved_ > highWater_)
            highWater_ = reserved_;
        pool_.push_back(std::move(buf));
    }

    /** This arena's accounting (live snapshot, owning thread only). */
    ArenaStats
    stats() const
    {
        ArenaStats s = stats_;
        s.reservedBytes = reserved_;
        s.highWaterBytes = highWater_;
        return s;
    }

    /** The calling thread's (= shard's) arena. */
    static BufferArena &
    local()
    {
        thread_local BufferArena arena;
        return arena;
    }

  private:
    std::vector<std::vector<T>> pool_;
    std::uint64_t reserved_ = 0;
    std::uint64_t highWater_ = 0;
    ArenaStats stats_;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_ARENA_HH
