/**
 * @file
 * Causal per-PR span tracing: the flight recorder behind --spans-out.
 *
 * A sampled Property Request carries an 8-byte span id (see
 * net/protocol.hh) assigned at issue time by a stateless splitmix64
 * draw over (seed, tenant, source node, RIG unit, reqId) - the same
 * idiom the fault injector uses - so whether a PR is traced is a pure
 * function of the request's identity, independent of shard count and
 * execution order. Every component a traced PR passes through appends
 * one SpanEvent (issue, NIC egress, per-hop wire occupancy, switch
 * pipe, Property-Cache outcome, remote fetch, retransmit, retire) to
 * its event queue's SpanBuffer; the scheduler merges the per-shard
 * buffers after the run into span trees that are byte-identical at
 * any shard count.
 *
 * Two capture modes compose:
 *
 *  - sampled (1/N): only PRs whose span id falls under the sample
 *    threshold are recorded at all - the cheap steady-state mode;
 *  - tail exemplar (top-K and/or latency threshold): every PR is
 *    recorded, and at retire time the flight recorder retroactively
 *    keeps the spans whose total latency lands in the tail, pruning
 *    the rest. A per-shard keep-heap under the global (total, spanId)
 *    order makes the pruning loss-free: a span retires on exactly one
 *    shard, so the global top-K is a subset of the union of per-shard
 *    top-Ks and the merged selection is shard-invariant. The
 *    per-tenant last-retiring span (the makespan finisher) is always
 *    kept so critical-path attribution of the makespan is possible.
 *
 * The export schema is netsparse-spans-v1 (docs/observability.md);
 * spans are also emitted as Perfetto async-span events through the
 * TraceWriter when a trace is being captured. With spans disabled the
 * per-event cost is one null-pointer test behind a per-packet flag,
 * and every other output document is unchanged byte for byte.
 */

#ifndef NETSPARSE_SIM_SPAN_HH
#define NETSPARSE_SIM_SPAN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace netsparse {

class TraceWriter;

/** The causal stages a span's events are tagged with. The enum order
 *  is the same-tick sort rank at merge time, chosen to follow the PR
 *  lifecycle, so it is part of the output contract. */
enum class SpanStage : std::uint8_t
{
    Issue,      ///< RIG client emitted the read (detail: property idx).
    Retransmit, ///< Reliable-PR layer re-sent the read (detail: attempt).
    NicEgress,  ///< The PR left its SNIC concatenator (detail: PRs/pkt).
    LinkTx,     ///< Wire occupancy on one link (dur: serialization).
    SwitchPipe, ///< Switch ingress pipe + cache port (dur: pipe delay).
    CacheHit,   ///< ToR Property Cache manufactured the response.
    CacheMiss,  ///< ToR Property Cache lookup missed.
    CacheBypass,///< Read skipped the cache (corruption refetch).
    Fetch,      ///< Remote server pipeline + PCIe + DRAM (dur: fetch).
    Retire,     ///< Accepted response retired at the issuing client.
};

/** Stable stage name ("issue", "linkTx", ...) for the JSON export. */
const char *spanStageName(SpanStage s);

/** One recorded event of a span. Events are grouped per span id inside
 *  the buffers; the id itself is the map key, not stored per event. */
struct SpanEvent
{
    Tick tick = 0;
    Tick dur = 0;
    /** Cluster-wide component id: index into the run's name table. */
    std::uint32_t comp = 0;
    SpanStage stage = SpanStage::Issue;
    /** Stage-specific detail (property idx, attempt, PRs per packet). */
    std::uint64_t detail = 0;
};

/** Span capture configuration (ClusterConfig::spans). */
struct SpanParams
{
    /** Record 1 in N issued PRs (0 = no sampling). */
    std::uint32_t sampleEvery = 0;
    /** Keep the K largest-latency spans per run (0 = off). */
    std::uint32_t tailKeep = 0;
    /** Also keep every span with total latency >= this (0 = off). */
    Tick tailThreshold = 0;
    /** Sampling-hash seed; fixed default keeps documents reproducible. */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;

    bool
    enabled() const
    {
        return sampleEvery != 0 || tailKeep != 0 || tailThreshold != 0;
    }

    /** Tail modes must see every PR to select retroactively. */
    bool recordAll() const { return tailKeep != 0 || tailThreshold != 0; }

    /** Keep-if-below threshold over the uniform 64-bit id space. */
    std::uint64_t
    sampleThreshold() const
    {
        if (sampleEvery == 0)
            return 0;
        if (sampleEvery == 1)
            return ~0ull;
        return ~0ull / sampleEvery;
    }

    bool
    sampled(std::uint64_t spanId) const
    {
        return sampleEvery != 0 && spanId <= sampleThreshold();
    }
};

/**
 * The deterministic span id of one issued PR. A pure function of the
 * request's identity, so every shard layout computes the same id and
 * the 1/N sampling decision (id <= threshold) is shard-invariant.
 * Never returns 0 (0 on a PR means "not traced").
 */
inline std::uint64_t
spanIdFor(std::uint64_t seed, std::uint16_t tenant, NodeId src,
          std::uint16_t srcTid, std::uint32_t reqId)
{
    std::uint64_t h = splitmix64(seed ^ 0x5370616eull); // "Span"
    h = splitmix64(h ^ (static_cast<std::uint64_t>(tenant) << 48) ^
                   (static_cast<std::uint64_t>(src) << 16) ^ srcTid);
    h = splitmix64(h ^ reqId);
    return h ? h : 1;
}

/** Retire-time summary of one recorded span (the selection record). */
struct SpanRetire
{
    std::uint64_t spanId = 0;
    Tick issueTick = 0;
    Tick retireTick = 0;
    std::uint16_t tenant = 0;
    NodeId src = invalidNode;
    std::uint16_t srcTid = 0;
    std::uint32_t reqId = 0;
    bool servedByCache = false;
    std::uint32_t retransmits = 0;

    Tick totalTicks() const { return retireTick - issueTick; }
};

/**
 * The per-event-queue span recorder. Components reach it through
 * EventQueue::spans() (null when capture is off), so under the sharded
 * engine every shard appends to its own buffer with no synchronization;
 * recording order within a buffer follows per-shard execution order.
 */
class SpanBuffer
{
  public:
    explicit SpanBuffer(const SpanParams &params) : params_(params) {}

    /** Append one event to span @p spanId. */
    void
    record(std::uint64_t spanId, SpanStage stage, std::uint32_t comp,
           Tick tick, Tick dur = 0, std::uint64_t detail = 0)
    {
        open_[spanId].push_back(SpanEvent{tick, dur, comp, stage, detail});
    }

    /**
     * The issuing client's accepted response arrived: close the span.
     * In tail mode this is where the flight recorder decides - spans
     * that can no longer land in the kept set (not sampled, below the
     * latency threshold, pushed out of the per-shard top-K keep-heap,
     * and not the tenant's current last finisher) have their local
     * events pruned immediately, bounding sequential-run memory.
     */
    void retire(const SpanRetire &rec);

    /** Retire-time summaries, in local retire order. */
    const std::vector<SpanRetire> &retired() const { return retired_; }

    /** Spans whose events were pruned by the flight recorder. */
    std::uint64_t prunedSpans() const { return pruned_; }

    /** Events of @p spanId still held here (empty vector if none). */
    const std::vector<SpanEvent> *
    eventsOf(std::uint64_t spanId) const
    {
        auto it = open_.find(spanId);
        return it == open_.end() ? nullptr : &it->second;
    }

    const SpanParams &params() const { return params_; }

  private:
    /** Drop @p spanId's local events unless some keeper references it. */
    void maybePrune(std::uint64_t spanId);

    SpanParams params_;
    /** Events by span id: local stages of own spans plus hop events of
     *  spans issued on other shards (never retired here). */
    std::unordered_map<std::uint64_t, std::vector<SpanEvent>> open_;
    std::vector<SpanRetire> retired_;

    /** Tail keep-heap: min-heap of (total, spanId) under the global
     *  "larger total wins, smaller id breaks ties" order. */
    std::vector<std::pair<Tick, std::uint64_t>> heap_;
    std::unordered_set<std::uint64_t> heapIds_;
    /** Spans kept outright (sampled or over the latency threshold). */
    std::unordered_set<std::uint64_t> keptIds_;
    /** Per-tenant last-retiring span: tenant -> (retireTick, spanId). */
    std::unordered_map<std::uint16_t, std::pair<Tick, std::uint64_t>>
        finisher_;
    std::uint64_t pruned_ = 0;
};

/** One exported span: summary, keep reason, and its sorted event tree. */
struct SpanRecord
{
    SpanRetire info;
    /** Why the span was kept: "sampled" or "tail". */
    std::string kept;
    /** True for the per-tenant last-retiring (makespan-defining) span. */
    bool finisher = false;
    std::vector<SpanEvent> events;
    /** events[i]'s causal parent: index into events, -1 for the root. */
    std::vector<int> parent;
};

/** One run section of the netsparse-spans-v1 document. */
struct SpanRun
{
    std::string label;
    SpanParams params;
    /** Fidelity regime of the run ("exact", "hybrid", "flow"). */
    std::string fidelity;
    Tick finalTick = 0;
    /** Spans recorded before selection (retired with a span id). */
    std::uint64_t recordedSpans = 0;
    /** Component id -> name, in cluster construction order. */
    std::vector<std::string> components;
    /** Kept spans, largest total latency first. */
    std::vector<SpanRecord> spans;
};

/**
 * Merge the per-shard buffers of one run into @p run: apply the
 * selection (sampled union tail union per-tenant finishers), gather and
 * sort each kept span's events by (tick, stage rank, comp, dur,
 * detail), and build the parent chain. Deterministic for any @p bufs
 * partition of the same execution, which is what makes the document
 * byte-identical at 1/2/4 shards.
 */
void buildSpanRun(SpanRun &run, const std::vector<SpanBuffer *> &bufs);

/**
 * Emit @p run's kept spans as Perfetto async-span events ('b'/'e',
 * id = span id) on @p tw, one pair per critical-path segment, tagged
 * with tenant and fidelity regime.
 */
void exportSpansToTrace(TraceWriter &tw, const SpanRun &run);

/** The collector behind --spans-out; mirrors TelemetrySink. */
class SpanSink
{
  public:
    /** The sink bound to the calling thread (default: global()). */
    static SpanSink &instance();

    /** The process-wide sink behind --spans-out / atexit. */
    static SpanSink &global();

    /** RAII thread binding for sweep workers. */
    class Bind
    {
      public:
        explicit Bind(SpanSink &s);
        ~Bind();
        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        SpanSink *prev_;
    };

    SpanSink() = default;
    SpanSink(const SpanSink &) = delete;
    SpanSink &operator=(const SpanSink &) = delete;

    /**
     * Enable collection and write the document to @p path at
     * writeFile() / process exit. Probe-opens immediately; returns
     * false (collection stays off) when the path cannot be created.
     */
    bool setOutputPath(const std::string &path);

    /** Enable (or disable) collection without an output path. */
    void setCollect(bool on) { collect_ = on; }

    /** True when the scheduler should capture spans. */
    bool enabled() const { return collect_ || !path_.empty(); }

    /** Open a new run section ("gather<N>" label when empty). */
    SpanRun &beginRun(const std::string &label = {});

    /** Move every run of @p other to the end of this document. */
    void absorb(SpanSink &&other);

    /** The whole document as a JSON string. */
    std::string toJson() const;

    /** Write the document to the configured path. */
    void writeFile();

    /** Drop collected runs and disable (tests / repeated tools). */
    void reset();

    std::size_t numRuns() const { return runs_.size(); }
    const SpanRun &run(std::size_t i) const { return *runs_[i]; }

  private:
    std::string path_;
    bool collect_ = false;
    std::vector<std::unique_ptr<SpanRun>> runs_;
    bool written_ = false;
};

} // namespace netsparse

#endif // NETSPARSE_SIM_SPAN_HH
